// TtCores storage/materialization and the initializer statistics that back
// the paper's §3.2 (sampled Gaussian, Algorithm 3).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/check.h"
#include "tensor/stats.h"
#include "tt/tt_cores.h"
#include "tt/tt_init.h"

namespace ttrec {
namespace {

TEST(TtCores, GeometryMatchesShape) {
  TtShape s = MakeTtShapeExplicit(1000, 16, {10, 10, 10}, {2, 2, 4}, 8);
  TtCores cores(s);
  EXPECT_EQ(cores.num_cores(), 3);
  EXPECT_EQ(cores.num_rows(), 1000);
  EXPECT_EQ(cores.emb_dim(), 16);
  // Core 0: slices are (1 x 2*8).
  EXPECT_EQ(cores.SliceRows(0), 1);
  EXPECT_EQ(cores.SliceCols(0), 16);
  // Core 1: (8 x 2*8).
  EXPECT_EQ(cores.SliceRows(1), 8);
  EXPECT_EQ(cores.SliceCols(1), 16);
  // Core 2: (8 x 4*1).
  EXPECT_EQ(cores.SliceRows(2), 8);
  EXPECT_EQ(cores.SliceCols(2), 4);
  EXPECT_EQ(cores.TotalParams(), s.TotalParams());
  EXPECT_EQ(cores.MemoryBytes(), s.TotalParams() * 4);
}

TEST(TtCores, SliceAddressing) {
  TtShape s = MakeTtShapeExplicit(8, 4, {2, 4}, {2, 2}, 3);
  TtCores cores(s);
  // Slices are contiguous partitions of each core.
  EXPECT_EQ(cores.Slice(0, 1) - cores.Slice(0, 0), cores.SliceSize(0));
  EXPECT_EQ(cores.Slice(1, 3) - cores.Slice(1, 0), 3 * cores.SliceSize(1));
  EXPECT_THROW(cores.Slice(0, 2), IndexError);
  EXPECT_THROW(cores.Slice(2, 0), IndexError);
}

TEST(TtCores, MaterializeRowRankOneHandComputed) {
  // 2 cores, rank 1: W(i, j) factors as g0(i0, j0) * g1(i1, j1).
  TtShape s = MakeTtShapeExplicit(4, 4, {2, 2}, {2, 2}, 1);
  TtCores cores(s);
  // Core 0 slices (1 x 2): [i0][j0].
  cores.core(0).data()[0] = 1.0f;  // i0=0: (1, 2)
  cores.core(0).data()[1] = 2.0f;
  cores.core(0).data()[2] = 3.0f;  // i0=1: (3, 4)
  cores.core(0).data()[3] = 4.0f;
  // Core 1 slices (1 x 2).
  cores.core(1).data()[0] = 5.0f;  // i1=0: (5, 6)
  cores.core(1).data()[1] = 6.0f;
  cores.core(1).data()[2] = 7.0f;  // i1=1: (7, 8)
  cores.core(1).data()[3] = 8.0f;

  // Row r = i0*2 + i1; entry j = j0*2 + j1 = g0(i0,j0)*g1(i1,j1).
  float row[4];
  cores.MaterializeRow(0, row);  // i0=0, i1=0
  EXPECT_FLOAT_EQ(row[0], 1.0f * 5.0f);
  EXPECT_FLOAT_EQ(row[1], 1.0f * 6.0f);
  EXPECT_FLOAT_EQ(row[2], 2.0f * 5.0f);
  EXPECT_FLOAT_EQ(row[3], 2.0f * 6.0f);
  cores.MaterializeRow(3, row);  // i0=1, i1=1
  EXPECT_FLOAT_EQ(row[0], 3.0f * 7.0f);
  EXPECT_FLOAT_EQ(row[3], 4.0f * 8.0f);
}

TEST(TtCores, MaterializeFullMatchesPerRow) {
  TtShape s = MakeTtShapeExplicit(30, 8, {3, 10}, {2, 4}, 3);
  TtCores cores(s);
  Rng rng(5);
  InitializeTtCores(cores, TtInit::kGaussian, rng);
  Tensor full = cores.MaterializeFull();
  ASSERT_EQ(full.dim(0), 30);
  ASSERT_EQ(full.dim(1), 8);
  std::vector<float> row(8);
  for (int64_t r : {int64_t{0}, int64_t{13}, int64_t{29}}) {
    cores.MaterializeRow(r, row.data());
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(full.data()[r * 8 + j], row[static_cast<size_t>(j)]);
    }
  }
}

class InitVarianceSweep : public ::testing::TestWithParam<TtInit> {};

// Every init strategy must deliver materialized entries with variance
// ~ 1/(3 * num_rows) — the N(0, 1/(3n)) target of §3.2.
TEST_P(InitVarianceSweep, ProductVarianceMatchesTarget) {
  const TtInit init = GetParam();
  TtShape s = MakeTtShapeExplicit(4096, 16, {16, 16, 16}, {2, 2, 4}, 8);
  TtCores cores(s);
  Rng rng(42);
  InitializeTtCores(cores, init, rng);
  Tensor full = cores.MaterializeFull();
  RunningMoments m;
  m.AddAll(full.span());
  const double target_var = 1.0 / (3.0 * 4096.0);
  EXPECT_NEAR(m.mean(), 0.0, 3.0 * std::sqrt(target_var));
  EXPECT_NEAR(m.variance() / target_var, 1.0, 0.35) << TtInitName(init);
}

INSTANTIATE_TEST_SUITE_P(Strategies, InitVarianceSweep,
                         ::testing::Values(TtInit::kUniform, TtInit::kGaussian,
                                           TtInit::kSampledGaussian));

// The point of Algorithm 3 (paper Fig. 3): the product density of
// sampled-Gaussian cores has far less mass near zero than the product of
// plain Gaussian cores, i.e. it is a better approximation of the flat-ish
// N(0, 1/(3n)) target.
TEST(SampledGaussianInit, ReducesNearZeroMassVsGaussian) {
  TtShape s = MakeTtShapeExplicit(4096, 16, {16, 16, 16}, {2, 2, 4}, 1);
  const double sigma = std::sqrt(1.0 / (3.0 * 4096.0));

  auto near_zero_fraction = [&](TtInit init) {
    TtCores cores(s);
    Rng rng(7);
    InitializeTtCores(cores, init, rng);
    Tensor full = cores.MaterializeFull();
    int64_t near = 0;
    for (float x : full.span()) {
      if (std::abs(x) < 0.2 * sigma) ++near;
    }
    return static_cast<double>(near) / static_cast<double>(full.numel());
  };

  const double frac_gauss = near_zero_fraction(TtInit::kGaussian);
  const double frac_sampled = near_zero_fraction(TtInit::kSampledGaussian);
  // A true N(0, sigma^2) has ~15.9% of its mass within 0.2 sigma.
  EXPECT_GT(frac_gauss, 0.3);       // spiked product-of-normals
  EXPECT_LT(frac_sampled, 0.16);    // close to (or below) the Gaussian target
}

// Empirical KL of the materialized-entry histogram against N(0, 1/(3n)):
// sampled Gaussian must beat plain Gaussian (Fig. 3 right vs left). This
// holds in the paper's operating regime (rank >= 4): summing >= rank terms
// per entry lets the CLT smooth the hole-at-zero of tail-sampled factors
// into a near-exact Gaussian, while plain-Gaussian cores keep a spiked,
// leptokurtic product. (At rank 1-2 the sampled product is bimodal and
// actually worse — measured explicitly in bench/fig3_init_pdf.)
TEST(SampledGaussianInit, LowerKlToTargetThanGaussian) {
  TtShape s = MakeTtShapeExplicit(4096, 16, {16, 16, 16}, {2, 2, 4}, 8);
  const double target_var = 1.0 / (3.0 * 4096.0);
  const double span = 4.0 * std::sqrt(target_var);

  auto kl_of = [&](TtInit init) {
    TtCores cores(s);
    Rng rng(11);
    InitializeTtCores(cores, init, rng);
    Tensor full = cores.MaterializeFull();
    Histogram h(-span, span, 101);
    h.AddAll(full.span());
    return KlHistogramVsGaussian(h, 0.0, target_var);
  };
  EXPECT_LT(kl_of(TtInit::kSampledGaussian), kl_of(TtInit::kGaussian));
}

TEST(TtInit, NameRoundTrip) {
  for (TtInit i : {TtInit::kUniform, TtInit::kGaussian,
                   TtInit::kSampledGaussian}) {
    EXPECT_EQ(TtInitFromName(TtInitName(i)), i);
  }
  EXPECT_THROW(TtInitFromName("bogus"), ConfigError);
}

TEST(TtInit, PerCoreStddevSolvesProductEquation) {
  TtShape s = MakeTtShapeExplicit(1000, 16, {10, 10, 10}, {2, 2, 4}, 8);
  const double target = 1e-4;
  const double st = PerCoreStddev(s, target);
  // prod(inner ranks) * st^(2d) == target.
  EXPECT_NEAR(64.0 * std::pow(st, 6.0), target, 1e-12);
}

}  // namespace
}  // namespace ttrec
