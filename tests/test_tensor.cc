// Unit tests for the dense tensor substrate: Tensor, checks, stats.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/check.h"
#include "tensor/stats.h"
#include "tensor/tensor.h"

namespace ttrec {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.numel(), 0);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.ndim(), 0);
}

TEST(Tensor, ShapeConstructorZeroInitializes) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.ndim(), 2);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, DataConstructorChecksSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), ShapeError);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({0, 3}), ShapeError);
  EXPECT_THROW(Tensor({2, -1}), ShapeError);
}

TEST(Tensor, AtIndexingRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
  t.at({1, 1}) = 42.0f;
  EXPECT_EQ(t[4], 42.0f);
}

TEST(Tensor, AtRejectsBadIndices) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({2, 0}), IndexError);
  EXPECT_THROW(t.at({0, 3}), IndexError);
  EXPECT_THROW(t.at({0, -1}), IndexError);
  EXPECT_THROW(t.at({0}), IndexError);
  EXPECT_THROW((void)t[-1], IndexError);
  EXPECT_THROW((void)t[6], IndexError);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  t.Reshape({3, 2});
  EXPECT_EQ(t.at({2, 1}), 5.0f);
  EXPECT_THROW(t.Reshape({4, 2}), ShapeError);
}

TEST(Tensor, FillAndAxpy) {
  Tensor a({2, 2});
  a.Fill(1.0f);
  Tensor b({2, 2});
  b.Fill(2.0f);
  a.Axpy(0.5f, b);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 2.0f);
  Tensor c({4});
  EXPECT_THROW(a.Axpy(1.0f, c), ShapeError);
}

TEST(Tensor, Norm) {
  Tensor t({2}, {3.0f, 4.0f});
  EXPECT_DOUBLE_EQ(t.Norm(), 5.0);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {1, 2.5, 2});
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a, b), 1.0);
}

TEST(RunningMoments, MatchesClosedForm) {
  RunningMoments m;
  for (int i = 1; i <= 5; ++i) m.Add(i);
  EXPECT_EQ(m.count(), 5);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.0);  // population variance of 1..5
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
}

TEST(Histogram, BinningAndDensity) {
  Histogram h(0.0, 1.0, 10);
  h.Add(0.05);
  h.Add(0.15);
  h.Add(0.15);
  h.Add(2.0);   // clamped into last bin
  h.Add(-1.0);  // clamped into first bin
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(9), 1);
  // Density integrates to 1.
  double mass = 0.0;
  for (int i = 0; i < h.num_bins(); ++i) mass += h.Density(i) * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

TEST(Histogram, RejectsBadConfig) {
  EXPECT_THROW(Histogram(1.0, 0.0, 10), ConfigError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

// The paper's §3.2 claim: over (mu, sigma2), KL(U(a,b) || N) is minimized at
// mu = (a+b)/2 and sigma2 = (b-a)^2 / 12.
TEST(KlDivergence, MinimizedAtMatchedGaussian) {
  const double a = -0.1;
  const double b = 0.1;
  const double best_mu = 0.0;
  const double best_sigma2 = (b - a) * (b - a) / 12.0;
  const double best = KlUniformVsGaussian(a, b, best_mu, best_sigma2);
  for (double mu : {-0.05, -0.01, 0.01, 0.05}) {
    EXPECT_GT(KlUniformVsGaussian(a, b, mu, best_sigma2), best);
  }
  for (double scale : {0.25, 0.5, 2.0, 4.0}) {
    EXPECT_GT(KlUniformVsGaussian(a, b, best_mu, best_sigma2 * scale), best);
  }
}

// Table 1's ordering: for the DLRM uniform target U(-1/sqrt(n), 1/sqrt(n)),
// KL to N(0, 1/(3n)) is far smaller than to N(0,1), N(0,1/2), N(0,1/8).
TEST(KlDivergence, PaperTable1Ordering) {
  const double n = 1e6;
  const double a = -1.0 / std::sqrt(n);
  const double b = 1.0 / std::sqrt(n);
  const double kl_matched = KlUniformVsGaussian(a, b, 0.0, 1.0 / (3.0 * n));
  const double kl_eighth = KlUniformVsGaussian(a, b, 0.0, 1.0 / 8.0);
  const double kl_half = KlUniformVsGaussian(a, b, 0.0, 0.5);
  const double kl_unit = KlUniformVsGaussian(a, b, 0.0, 1.0);
  EXPECT_LT(kl_matched, kl_eighth);
  EXPECT_LT(kl_eighth, kl_half);
  EXPECT_LT(kl_half, kl_unit);
}

TEST(KlDivergence, EmpiricalMatchesClosedForm) {
  // Histogram of an exact uniform density vs its KL-optimal Gaussian.
  const double a = -1.0;
  const double b = 1.0;
  Histogram h(a, b, 200);
  for (int i = 0; i < 200000; ++i) {
    h.Add(a + (b - a) * (i + 0.5) / 200000.0);
  }
  const double sigma2 = (b - a) * (b - a) / 12.0;
  const double kl_emp = KlHistogramVsGaussian(h, 0.0, sigma2);
  const double kl_exact = KlUniformVsGaussian(a, b, 0.0, sigma2);
  EXPECT_NEAR(kl_emp, kl_exact, 1e-3);
}

TEST(GaussianPdf, NormalizesAndPeaks) {
  EXPECT_NEAR(GaussianPdf(0.0, 0.0, 1.0), 0.3989422804014327, 1e-12);
  EXPECT_GT(GaussianPdf(0.0, 0.0, 1.0), GaussianPdf(1.0, 0.0, 1.0));
  EXPECT_THROW(GaussianPdf(0.0, 0.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace ttrec
