// src/serve/ subsystem: metrics primitives, queue semantics, micro-batch
// assembly round-trips, and the headline concurrency contract — N producer
// threads against a batching consumer produce logits bitwise identical to a
// sequential single-request session. Built to run clean under TSan
// (-DTTREC_SANITIZE=thread) as well as ASan/UBSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "serve/inference_server.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_metrics.h"
#include "tensor/check.h"
#include "tt/tt_shapes.h"

namespace ttrec {
namespace {

using serve::InferenceRequest;
using serve::InferenceResult;
using serve::PendingRequest;

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(StripedCounter, AddAndTotal) {
  serve::StripedCounter c;
  EXPECT_EQ(c.Total(), 0);
  c.Add(5);
  c.Add(-2);
  EXPECT_EQ(c.Total(), 3);
  c.Reset();
  EXPECT_EQ(c.Total(), 0);
}

TEST(StripedCounter, ConcurrentAddsAreLossless) {
  serve::StripedCounter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Total(), int64_t{kThreads} * kAddsPerThread);
}

TEST(LatencyHistogram, EmptyReturnsZero) {
  serve::LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0);
  EXPECT_DOUBLE_EQ(h.PercentileMicros(50), 0.0);
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 0.0);
}

TEST(LatencyHistogram, PercentilesTrackKnownDistribution) {
  serve::LatencyHistogram h;
  // 1..1000 µs, one sample each: p50 ~ 500, p99 ~ 990.
  for (int64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.TotalCount(), 1000);
  EXPECT_NEAR(h.MeanMicros(), 500.5, 1.0);
  // Geometric buckets grow ~1.25x, so percentiles carry ~25% resolution.
  EXPECT_NEAR(h.PercentileMicros(50), 500.0, 130.0);
  EXPECT_NEAR(h.PercentileMicros(99), 990.0, 260.0);
  EXPECT_LE(h.PercentileMicros(50), h.PercentileMicros(95));
  EXPECT_LE(h.PercentileMicros(95), h.PercentileMicros(99));
}

TEST(LatencyHistogram, ConcurrentRecordsKeepTotalCount) {
  serve::LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) h.Record(1 + (t * kPerThread + i) % 997);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(), int64_t{kThreads} * kPerThread);
}

TEST(ServeMetrics, SnapshotAndJson) {
  serve::ServeMetrics m;
  m.RecordBatch(4);
  for (int i = 0; i < 4; ++i) m.RecordRequestOk(100 + i, 10);
  m.RecordRequestFailed();
  const serve::ServeMetricsSnapshot s = m.Snapshot();
  EXPECT_EQ(s.requests_ok, 4);
  EXPECT_EQ(s.requests_failed, 1);
  EXPECT_EQ(s.batches, 1);
  EXPECT_EQ(s.samples, 4);
  EXPECT_DOUBLE_EQ(s.mean_batch_size, 4.0);
  EXPECT_GT(s.latency_mean_us, 0.0);
  const std::string json = serve::ToJson(s);
  EXPECT_NE(json.find("\"requests_ok\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests_failed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"batch_size_hist\":{\"4\":1}"), std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

PendingRequest MakePending(int64_t tag) {
  PendingRequest pr;
  pr.request.dense = Tensor({1, 1});
  pr.request.dense[0] = static_cast<float>(tag);
  pr.enqueued_at = std::chrono::steady_clock::now();
  return pr;
}

TEST(RequestQueue, PopBatchRespectsMaxItemsAndOrder) {
  serve::RequestQueue q(/*capacity=*/16);
  for (int64_t i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(MakePending(i)));
  EXPECT_EQ(q.size(), 5u);
  auto batch = q.PopBatch(3, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ(batch[static_cast<size_t>(i)].request.dense[0],
                    static_cast<float>(i));
  }
  batch = q.PopBatch(100, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);  // greedy drain, no waiting past the deadline
}

TEST(RequestQueue, CloseFailsPushAndDrainsPops) {
  serve::RequestQueue q(16);
  ASSERT_TRUE(q.Push(MakePending(7)));
  q.Close();
  EXPECT_TRUE(q.closed());

  PendingRequest late = MakePending(8);
  std::future<InferenceResult> late_future = late.promise.get_future();
  EXPECT_FALSE(q.Push(std::move(late)));
  EXPECT_THROW(late_future.get(), std::runtime_error);

  // The item enqueued before Close is still drained...
  auto batch = q.PopBatch(10, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_FLOAT_EQ(batch[0].request.dense[0], 7.0f);
  // ...then empty-batch is the consumer's exit signal.
  EXPECT_TRUE(q.PopBatch(10, std::chrono::microseconds(0)).empty());
}

TEST(RequestQueue, CloseWakesBlockedProducersExactlyOnce) {
  // Regression: producers blocked in Push on a full queue must observe
  // Close() promptly, and each must fail its promise exactly once (the
  // queue never touches a promise it did not accept). A double-set would
  // throw std::future_error from Push; a missed wake-up would hang the
  // join below.
  serve::RequestQueue q(2);
  ASSERT_TRUE(q.Push(MakePending(0)));
  ASSERT_TRUE(q.Push(MakePending(1)));  // full from here on

  constexpr int kProducers = 8;
  std::vector<std::future<InferenceResult>> futures;
  std::vector<std::thread> producers;
  std::atomic<int> push_failed{0};
  std::atomic<int> push_ok{0};
  std::mutex futures_mu;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      PendingRequest pr = MakePending(100 + p);
      std::future<InferenceResult> f = pr.promise.get_future();
      {
        std::lock_guard<std::mutex> lock(futures_mu);
        futures.push_back(std::move(f));
      }
      if (q.Push(std::move(pr))) {
        push_ok.fetch_add(1);
      } else {
        push_failed.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(push_failed.load() + push_ok.load(), kProducers);
  EXPECT_EQ(push_failed.load(), kProducers);  // queue stayed full throughout

  // Every blocked producer's future fails with the typed shutdown error —
  // none hang, none are left unset.
  for (auto& f : futures) {
    EXPECT_THROW(f.get(), serve::ServerShutdown);
  }

  // The two accepted items still drain.
  auto batch = q.PopBatch(10, std::chrono::microseconds(0));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(q.PopBatch(10, std::chrono::microseconds(0)).empty());
}

TEST(RequestQueue, PushUntilTimesOutAndLeavesItemWithCaller) {
  serve::RequestQueue q(1);
  PendingRequest first = MakePending(0);
  ASSERT_EQ(q.PushUntil(first, serve::kNoDeadline),
            serve::RequestQueue::PushResult::kOk);

  PendingRequest second = MakePending(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.PushUntil(second, t0 + std::chrono::milliseconds(5)),
            serve::RequestQueue::PushResult::kTimedOut);
  // The item (promise included) stays with the caller: its future is still
  // pending, proving the queue never touched it.
  std::future<InferenceResult> f = second.promise.get_future();
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);

  EXPECT_EQ(q.TryPush(second), serve::RequestQueue::PushResult::kTimedOut);
  q.PopBatch(1, std::chrono::microseconds(0));
  EXPECT_EQ(q.TryPush(second), serve::RequestQueue::PushResult::kOk);
  EXPECT_EQ(q.high_water(), 1u);
}

TEST(RequestQueue, CloseWakesBlockedConsumer) {
  serve::RequestQueue q(4);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    // Blocks on empty queue until Close.
    auto batch = q.PopBatch(10, std::chrono::microseconds(1000));
    woke.store(batch.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
  EXPECT_TRUE(woke.load());
}

// ---------------------------------------------------------------------------
// MicroBatcher: Assemble is the inverse of SplitSamples
// ---------------------------------------------------------------------------

SyntheticCriteoConfig ServeDataConfig(int num_tables = 4, int64_t rows = 200) {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "serve_test";
  cfg.spec.num_dense = 13;
  cfg.spec.table_rows.assign(static_cast<size_t>(num_tables), rows);
  cfg.zipf_exponent = 1.1;
  cfg.seed = 21;
  return cfg;
}

TEST(MicroBatcher, AssembleRoundTripsSplitSamples) {
  SyntheticCriteo data(ServeDataConfig());
  const MiniBatch original = data.EvalBatch(9);
  std::vector<InferenceRequest> requests = serve::SplitSamples(original);
  ASSERT_EQ(requests.size(), 9u);

  std::vector<PendingRequest> pending;
  for (InferenceRequest& r : requests) {
    PendingRequest pr;
    pr.request = std::move(r);
    pending.push_back(std::move(pr));
  }
  serve::MicroBatcher batcher(/*num_tables=*/4, /*num_dense=*/13);
  serve::MicroBatch mb = batcher.Assemble(std::move(pending));

  ASSERT_EQ(mb.batch.batch_size(), original.batch_size());
  ASSERT_EQ(mb.sample_offsets.size(), 10u);
  for (size_t r = 0; r < 9; ++r) {
    EXPECT_EQ(mb.sample_offsets[r], static_cast<int64_t>(r));
  }
  // Dense features survive concatenation bitwise.
  ASSERT_EQ(mb.batch.dense.numel(), original.dense.numel());
  for (int64_t i = 0; i < original.dense.numel(); ++i) {
    EXPECT_EQ(mb.batch.dense[i], original.dense[i]);
  }
  // Per-table CSR structure is reassembled exactly.
  ASSERT_EQ(mb.batch.sparse.size(), original.sparse.size());
  for (size_t t = 0; t < original.sparse.size(); ++t) {
    EXPECT_EQ(mb.batch.sparse[t].indices, original.sparse[t].indices);
    EXPECT_EQ(mb.batch.sparse[t].offsets, original.sparse[t].offsets);
  }
  // Labels are zero-filled (sizing only, never read by the forward pass).
  for (float label : mb.batch.labels) EXPECT_EQ(label, 0.0f);
}

TEST(MicroBatcher, MixedWeightsMaterializeAllOnes) {
  SyntheticCriteo data(ServeDataConfig(/*num_tables=*/1));
  std::vector<InferenceRequest> requests =
      serve::SplitSamples(data.EvalBatch(2));
  // Give request 0 explicit weights; request 1 stays implicit (all-ones).
  requests[0].sparse[0].weights.assign(
      requests[0].sparse[0].indices.size(), 2.0f);
  std::vector<PendingRequest> pending;
  for (InferenceRequest& r : requests) {
    PendingRequest pr;
    pr.request = std::move(r);
    pending.push_back(std::move(pr));
  }
  serve::MicroBatcher batcher(1, 13);
  serve::MicroBatch mb = batcher.Assemble(std::move(pending));
  const CsrBatch& merged = mb.batch.sparse[0];
  ASSERT_EQ(merged.weights.size(), merged.indices.size());
  size_t i = 0;
  const size_t n0 = static_cast<size_t>(merged.offsets[1]);  // request 0's lookups
  for (; i < n0; ++i) EXPECT_FLOAT_EQ(merged.weights[i], 2.0f);
  for (; i < merged.weights.size(); ++i) {
    EXPECT_FLOAT_EQ(merged.weights[i], 1.0f);  // materialized implicit ones
  }
}

// ---------------------------------------------------------------------------
// End-to-end serving
// ---------------------------------------------------------------------------

DlrmConfig ServeDlrmConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.index_policy = IndexPolicy::kThrow;
  return cfg;
}

// Mixed backend model: dense bag + plain TT + cached TT + dense bag, so the
// serving path exercises every ForwardInference implementation at once.
std::unique_ptr<DlrmModel> BuildServeModel(const DatasetSpec& spec, Rng& rng,
                                           DlrmConfig cfg) {
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      spec.table_rows[0], cfg.emb_dim, PoolingMode::kSum,
      DenseEmbeddingInit::UniformScaled(), rng));
  {
    TtEmbeddingConfig tt;
    tt.shape = MakeTtShape(spec.table_rows[1], cfg.emb_dim, 3, 4);
    tables.push_back(
        std::make_unique<TtEmbeddingAdapter>(tt, TtInit::kSampledGaussian, rng));
  }
  {
    CachedTtConfig ct;
    ct.tt.shape = MakeTtShape(spec.table_rows[2], cfg.emb_dim, 3, 4);
    ct.cache_capacity = 32;
    ct.warmup_iterations = 2;
    ct.refresh_interval = 2;
    tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
        ct, TtInit::kSampledGaussian, rng));
  }
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      spec.table_rows[3], cfg.emb_dim, PoolingMode::kSum,
      DenseEmbeddingInit::UniformScaled(), rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

TEST(InferenceSession, ConstForwardMatchesTrainingForwardBitwise) {
  Rng rng(31);
  SyntheticCriteo data(ServeDataConfig());
  std::unique_ptr<DlrmModel> model =
      BuildServeModel(data.config().spec, rng, ServeDlrmConfig());
  // Warm + freeze the cached table through the training-path forward.
  std::vector<float> warm(32);
  for (int i = 0; i < 6; ++i) {
    model->PredictLogits(data.NextBatch(32), warm.data());
  }
  const MiniBatch batch = data.EvalBatch(24);
  std::vector<float> mutable_logits(24), const_logits(24);
  model->PredictLogits(batch, mutable_logits.data());
  serve::InferenceSession session(*model);
  session.Run(batch, const_logits.data());
  for (size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(const_logits[i], mutable_logits[i]) << "sample " << i;
  }
}

TEST(InferenceServer, MultiProducerBatchedMatchesSequentialBitwise) {
  Rng rng(47);
  SyntheticCriteo data(ServeDataConfig());
  std::unique_ptr<DlrmModel> model =
      BuildServeModel(data.config().spec, rng, ServeDlrmConfig());
  std::vector<float> warm(32);
  for (int i = 0; i < 6; ++i) {
    model->PredictLogits(data.NextBatch(32), warm.data());
  }

  constexpr int64_t kRequests = 96;
  const MiniBatch trace = data.EvalBatch(kRequests);
  const std::vector<InferenceRequest> requests = serve::SplitSamples(trace);

  // Sequential reference: one request at a time through a private session.
  std::vector<float> reference(kRequests);
  {
    serve::InferenceSession sequential(*model);
    for (size_t i = 0; i < requests.size(); ++i) {
      MiniBatch one;
      one.dense = requests[i].dense;
      one.sparse = requests[i].sparse;
      one.labels.assign(1, 0.0f);
      sequential.Run(one, &reference[i]);
    }
  }

  // Concurrent: N producer threads against a batching consumer. A long
  // max_wait forces real coalescing so the bitwise claim is tested on
  // genuinely multi-request micro-batches.
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 16;
  cfg.max_wait = std::chrono::microseconds(2000);
  serve::InferenceServer server(*model, cfg);

  constexpr int kProducers = 6;
  std::vector<float> served(kRequests);
  std::atomic<int64_t> max_micro_batch{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = static_cast<size_t>(p); i < requests.size();
           i += kProducers) {
        InferenceRequest copy;
        copy.dense = requests[i].dense;
        copy.sparse = requests[i].sparse;
        const InferenceResult res = server.Submit(std::move(copy)).get();
        ASSERT_EQ(res.logits.size(), 1u);
        served[i] = res.logits[0];
        int64_t seen = max_micro_batch.load();
        while (seen < res.micro_batch_size &&
               !max_micro_batch.compare_exchange_weak(seen,
                                                      res.micro_batch_size)) {
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();

  for (int64_t i = 0; i < kRequests; ++i) {
    EXPECT_EQ(served[static_cast<size_t>(i)],
              reference[static_cast<size_t>(i)])
        << "request " << i;
  }
  // The claim is only interesting if batching actually happened.
  EXPECT_GT(max_micro_batch.load(), 1);

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_ok, kRequests);
  EXPECT_EQ(snap.requests_failed, 0);
  EXPECT_EQ(snap.samples, kRequests);
  EXPECT_TRUE(snap.has_cache);  // table 2 carries the LFU cache
  server.Shutdown();
}

TEST(InferenceServer, MalformedRequestFailsOnlyItsOwnFuture) {
  Rng rng(53);
  SyntheticCriteo data(ServeDataConfig());
  std::unique_ptr<DlrmModel> model =
      BuildServeModel(data.config().spec, rng, ServeDlrmConfig());
  serve::InferenceServer server(*model, {});

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(3));

  // Out-of-range index under kThrow: rejected at Submit.
  reqs[0].sparse[0].indices[0] = data.config().spec.table_rows[0] + 99;
  auto bad_index = server.Submit(std::move(reqs[0]));
  EXPECT_THROW(bad_index.get(), IndexError);

  // Wrong dense width: rejected at Submit.
  reqs[1].dense = Tensor({1, 2});
  auto bad_shape = server.Submit(std::move(reqs[1]));
  EXPECT_THROW(bad_shape.get(), ShapeError);

  // A well-formed request right after still serves.
  const InferenceResult ok = server.Submit(std::move(reqs[2])).get();
  EXPECT_EQ(ok.logits.size(), 1u);

  const serve::ServeMetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.requests_ok, 1);
  EXPECT_EQ(snap.requests_failed, 2);
}

TEST(InferenceServer, SubmitAfterShutdownFailsFast) {
  Rng rng(59);
  SyntheticCriteo data(ServeDataConfig());
  std::unique_ptr<DlrmModel> model =
      BuildServeModel(data.config().spec, rng, ServeDlrmConfig());
  serve::InferenceServer server(*model, {});
  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(2));
  EXPECT_EQ(server.Submit(std::move(reqs[0])).get().logits.size(), 1u);
  server.Shutdown();
  server.Shutdown();  // idempotent
  auto rejected = server.Submit(std::move(reqs[1]));
  EXPECT_THROW(rejected.get(), std::runtime_error);
}

}  // namespace
}  // namespace ttrec
