// GEMM / batched-GEMM correctness against the reference oracle, across a
// parameterized sweep of shapes and transpose combinations.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/batched_gemm.h"
#include "tensor/check.h"
#include "tensor/gemm.h"
#include "tensor/random.h"

namespace ttrec {
namespace {

std::vector<float> RandomVec(Rng& rng, int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

using GemmCase = std::tuple<int, int, int, int, int, float, float>;
// (m, n, k, ta, tb, alpha, beta)

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto [m, n, k, tai, tbi, alpha, beta] = GetParam();
  const Trans ta = tai ? Trans::kYes : Trans::kNo;
  const Trans tb = tbi ? Trans::kYes : Trans::kNo;
  Rng rng(1234 + m * 7 + n * 11 + k * 13 + tai + 2 * tbi);
  const int64_t a_elems = static_cast<int64_t>(m) * k;
  const int64_t b_elems = static_cast<int64_t>(k) * n;
  std::vector<float> a = RandomVec(rng, a_elems);
  std::vector<float> b = RandomVec(rng, b_elems);
  std::vector<float> c = RandomVec(rng, static_cast<int64_t>(m) * n);
  std::vector<float> c_ref = c;

  const int64_t lda = (ta == Trans::kNo) ? k : m;
  const int64_t ldb = (tb == Trans::kNo) ? n : k;
  Gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(),
       n);
  GemmRef(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
          c_ref.data(), n);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-4f * (std::abs(c_ref[i]) + 1.0f))
        << "mismatch at " << i << " for m=" << m << " n=" << n << " k=" << k
        << " ta=" << tai << " tb=" << tbi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 33),   // m
                       ::testing::Values(1, 3, 8, 32),       // n
                       ::testing::Values(1, 4, 17, 64),      // k
                       ::testing::Values(0, 1),              // ta
                       ::testing::Values(0, 1),              // tb
                       ::testing::Values(1.0f, 0.5f),        // alpha
                       ::testing::Values(0.0f, 1.0f)));      // beta

TEST(Gemm, DegenerateKActsAsScale) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 2, 0.5f,
       c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

TEST(Gemm, RejectsBadLeadingDims) {
  std::vector<float> a(6), b(6), c(4);
  EXPECT_THROW(Gemm(Trans::kNo, Trans::kNo, 2, 2, 3, 1.0f, a.data(), 2,
                    b.data(), 2, 0.0f, c.data(), 2),
               ShapeError);
}

TEST(Gemv, MatchesGemm) {
  Rng rng(99);
  const int64_t m = 5, n = 7;
  std::vector<float> a = RandomVec(rng, m * n);
  std::vector<float> x = RandomVec(rng, n);
  std::vector<float> y(static_cast<size_t>(m), 0.0f);
  std::vector<float> y_ref(static_cast<size_t>(m), 0.0f);
  Gemv(Trans::kNo, m, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
  GemmRef(Trans::kNo, Trans::kNo, m, 1, n, 1.0f, a.data(), n, x.data(), 1,
          0.0f, y_ref.data(), 1);
  for (int64_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5f);

  std::vector<float> yt(static_cast<size_t>(n), 0.0f);
  std::vector<float> yt_ref(static_cast<size_t>(n), 0.0f);
  std::vector<float> xm = RandomVec(rng, m);
  Gemv(Trans::kYes, m, n, 1.0f, a.data(), n, xm.data(), 0.0f, yt.data());
  GemmRef(Trans::kYes, Trans::kNo, n, 1, m, 1.0f, a.data(), n, xm.data(), 1,
          0.0f, yt_ref.data(), 1);
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(yt[i], yt_ref[i], 1e-5f);
}

TEST(BatchedGemm, MatchesIndividualGemms) {
  Rng rng(7);
  const int64_t count = 37, m = 4, n = 6, k = 5;
  std::vector<std::vector<float>> as, bs, cs, cs_ref;
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < count; ++i) {
    as.push_back(RandomVec(rng, m * k));
    bs.push_back(RandomVec(rng, k * n));
    cs.emplace_back(static_cast<size_t>(m * n), 0.0f);
    cs_ref.emplace_back(static_cast<size_t>(m * n), 0.0f);
  }
  for (int64_t i = 0; i < count; ++i) {
    ap.push_back(as[static_cast<size_t>(i)].data());
    bp.push_back(bs[static_cast<size_t>(i)].data());
    cp.push_back(cs[static_cast<size_t>(i)].data());
  }
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  BatchedGemm(shape, ap, bp, cp);
  for (int64_t i = 0; i < count; ++i) {
    GemmRef(Trans::kNo, Trans::kNo, m, n, k, 1.0f,
            as[static_cast<size_t>(i)].data(), k,
            bs[static_cast<size_t>(i)].data(), n, 0.0f,
            cs_ref[static_cast<size_t>(i)].data(), n);
    for (size_t j = 0; j < cs[static_cast<size_t>(i)].size(); ++j) {
      EXPECT_NEAR(cs[static_cast<size_t>(i)][j],
                  cs_ref[static_cast<size_t>(i)][j], 1e-5f);
    }
  }
}

TEST(BatchedGemm, RejectsMismatchedArraysAndNulls) {
  std::vector<float> buf(4, 0.0f);
  std::vector<const float*> two = {buf.data(), buf.data()};
  std::vector<const float*> one = {buf.data()};
  std::vector<float*> mut_two = {buf.data(), buf.data()};
  BatchedGemmShape shape;
  shape.m = shape.n = shape.k = 2;
  EXPECT_THROW(BatchedGemm(shape, two, one, mut_two), ShapeError);
  std::vector<const float*> with_null = {buf.data(), nullptr};
  EXPECT_THROW(BatchedGemm(shape, two, with_null, mut_two), IndexError);
}

TEST(StridedBatchedGemm, MatchesPointerVersion) {
  Rng rng(21);
  const int64_t count = 9, m = 3, n = 4, k = 2;
  std::vector<float> a = RandomVec(rng, count * m * k);
  std::vector<float> b = RandomVec(rng, count * k * n);
  std::vector<float> c(static_cast<size_t>(count * m * n), 0.0f);
  std::vector<float> c_ref(static_cast<size_t>(count * m * n), 0.0f);
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  StridedBatchedGemm(shape, a.data(), m * k, b.data(), k * n, c.data(), m * n,
                     count);
  for (int64_t i = 0; i < count; ++i) {
    GemmRef(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data() + i * m * k, k,
            b.data() + i * k * n, n, 0.0f, c_ref.data() + i * m * n, n);
  }
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], c_ref[i], 1e-5f);
}

}  // namespace
}  // namespace ttrec
