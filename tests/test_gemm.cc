// GEMM / batched-GEMM correctness against the reference oracle, across a
// parameterized sweep of shapes and transpose combinations, plus the
// per-SIMD-tier conformance sweeps: every dispatch tier this machine can
// run (scalar always; AVX2/AVX-512 when detected) is forced in turn and
// checked against GemmRef over exhaustive ragged-tail shapes — the tiers
// differ bitwise (vector kernels apply alpha/beta after the k loop), so
// agreement is gated by tolerance against the oracle, never tier-vs-tier.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "tensor/batched_gemm.h"
#include "tensor/check.h"
#include "tensor/cpu_features.h"
#include "tensor/gemm.h"
#include "tensor/random.h"

namespace ttrec {
namespace {

std::vector<float> RandomVec(Rng& rng, int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

using GemmCase = std::tuple<int, int, int, int, int, float, float>;
// (m, n, k, ta, tb, alpha, beta)

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesReference) {
  const auto [m, n, k, tai, tbi, alpha, beta] = GetParam();
  const Trans ta = tai ? Trans::kYes : Trans::kNo;
  const Trans tb = tbi ? Trans::kYes : Trans::kNo;
  Rng rng(1234 + m * 7 + n * 11 + k * 13 + tai + 2 * tbi);
  const int64_t a_elems = static_cast<int64_t>(m) * k;
  const int64_t b_elems = static_cast<int64_t>(k) * n;
  std::vector<float> a = RandomVec(rng, a_elems);
  std::vector<float> b = RandomVec(rng, b_elems);
  std::vector<float> c = RandomVec(rng, static_cast<int64_t>(m) * n);
  std::vector<float> c_ref = c;

  const int64_t lda = (ta == Trans::kNo) ? k : m;
  const int64_t ldb = (tb == Trans::kNo) ? n : k;
  Gemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta, c.data(),
       n);
  GemmRef(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
          c_ref.data(), n);
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], c_ref[i], 1e-4f * (std::abs(c_ref[i]) + 1.0f))
        << "mismatch at " << i << " for m=" << m << " n=" << n << " k=" << k
        << " ta=" << tai << " tb=" << tbi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Combine(::testing::Values(1, 2, 7, 16, 33),   // m
                       ::testing::Values(1, 3, 8, 32),       // n
                       ::testing::Values(1, 4, 17, 64),      // k
                       ::testing::Values(0, 1),              // ta
                       ::testing::Values(0, 1),              // tb
                       ::testing::Values(1.0f, 0.5f),        // alpha
                       ::testing::Values(0.0f, 1.0f)));      // beta

TEST(Gemm, DegenerateKActsAsScale) {
  std::vector<float> c = {1.0f, 2.0f, 3.0f, 4.0f};
  Gemm(Trans::kNo, Trans::kNo, 2, 2, 0, 1.0f, nullptr, 1, nullptr, 2, 0.5f,
       c.data(), 2);
  EXPECT_FLOAT_EQ(c[0], 0.5f);
  EXPECT_FLOAT_EQ(c[3], 2.0f);
}

TEST(Gemm, RejectsBadLeadingDims) {
  std::vector<float> a(6), b(6), c(4);
  EXPECT_THROW(Gemm(Trans::kNo, Trans::kNo, 2, 2, 3, 1.0f, a.data(), 2,
                    b.data(), 2, 0.0f, c.data(), 2),
               ShapeError);
}

TEST(Gemv, MatchesGemm) {
  Rng rng(99);
  const int64_t m = 5, n = 7;
  std::vector<float> a = RandomVec(rng, m * n);
  std::vector<float> x = RandomVec(rng, n);
  std::vector<float> y(static_cast<size_t>(m), 0.0f);
  std::vector<float> y_ref(static_cast<size_t>(m), 0.0f);
  Gemv(Trans::kNo, m, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
  GemmRef(Trans::kNo, Trans::kNo, m, 1, n, 1.0f, a.data(), n, x.data(), 1,
          0.0f, y_ref.data(), 1);
  for (int64_t i = 0; i < m; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5f);

  std::vector<float> yt(static_cast<size_t>(n), 0.0f);
  std::vector<float> yt_ref(static_cast<size_t>(n), 0.0f);
  std::vector<float> xm = RandomVec(rng, m);
  Gemv(Trans::kYes, m, n, 1.0f, a.data(), n, xm.data(), 0.0f, yt.data());
  GemmRef(Trans::kYes, Trans::kNo, n, 1, m, 1.0f, a.data(), n, xm.data(), 1,
          0.0f, yt_ref.data(), 1);
  for (int64_t i = 0; i < n; ++i) EXPECT_NEAR(yt[i], yt_ref[i], 1e-5f);
}

TEST(BatchedGemm, MatchesIndividualGemms) {
  Rng rng(7);
  const int64_t count = 37, m = 4, n = 6, k = 5;
  std::vector<std::vector<float>> as, bs, cs, cs_ref;
  std::vector<const float*> ap, bp;
  std::vector<float*> cp;
  for (int64_t i = 0; i < count; ++i) {
    as.push_back(RandomVec(rng, m * k));
    bs.push_back(RandomVec(rng, k * n));
    cs.emplace_back(static_cast<size_t>(m * n), 0.0f);
    cs_ref.emplace_back(static_cast<size_t>(m * n), 0.0f);
  }
  for (int64_t i = 0; i < count; ++i) {
    ap.push_back(as[static_cast<size_t>(i)].data());
    bp.push_back(bs[static_cast<size_t>(i)].data());
    cp.push_back(cs[static_cast<size_t>(i)].data());
  }
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  BatchedGemm(shape, ap, bp, cp);
  for (int64_t i = 0; i < count; ++i) {
    GemmRef(Trans::kNo, Trans::kNo, m, n, k, 1.0f,
            as[static_cast<size_t>(i)].data(), k,
            bs[static_cast<size_t>(i)].data(), n, 0.0f,
            cs_ref[static_cast<size_t>(i)].data(), n);
    for (size_t j = 0; j < cs[static_cast<size_t>(i)].size(); ++j) {
      EXPECT_NEAR(cs[static_cast<size_t>(i)][j],
                  cs_ref[static_cast<size_t>(i)][j], 1e-5f);
    }
  }
}

TEST(BatchedGemm, RejectsMismatchedArraysAndNulls) {
  std::vector<float> buf(4, 0.0f);
  std::vector<const float*> two = {buf.data(), buf.data()};
  std::vector<const float*> one = {buf.data()};
  std::vector<float*> mut_two = {buf.data(), buf.data()};
  BatchedGemmShape shape;
  shape.m = shape.n = shape.k = 2;
  EXPECT_THROW(BatchedGemm(shape, two, one, mut_two), ShapeError);
  std::vector<const float*> with_null = {buf.data(), nullptr};
  EXPECT_THROW(BatchedGemm(shape, two, with_null, mut_two), IndexError);
}

TEST(StridedBatchedGemm, MatchesPointerVersion) {
  Rng rng(21);
  const int64_t count = 9, m = 3, n = 4, k = 2;
  std::vector<float> a = RandomVec(rng, count * m * k);
  std::vector<float> b = RandomVec(rng, count * k * n);
  std::vector<float> c(static_cast<size_t>(count * m * n), 0.0f);
  std::vector<float> c_ref(static_cast<size_t>(count * m * n), 0.0f);
  BatchedGemmShape shape;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  StridedBatchedGemm(shape, a.data(), m * k, b.data(), k * n, c.data(), m * n,
                     count);
  for (int64_t i = 0; i < count; ++i) {
    GemmRef(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data() + i * m * k, k,
            b.data() + i * k * n, n, 0.0f, c_ref.data() + i * m * n, n);
  }
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], c_ref[i], 1e-5f);
}

// Restores the forced dispatch tier on scope exit, so a failing test can't
// leak its tier into the rest of the binary.
class TierGuard {
 public:
  TierGuard() : saved_(ActiveSimdTier()) {}
  ~TierGuard() { SetSimdTier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  SimdTier saved_;
};

// Every tier this machine can actually execute: scalar is always present,
// vector tiers only when CPUID reports them (SetSimdTier would clamp an
// unsupported request anyway, which would silently re-test a lower tier).
std::vector<SimdTier> TestableTiers() {
  std::vector<SimdTier> tiers;
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

// Exhaustive small-shape conformance of the dispatched kernels against
// GemmRef: every m,n,k in 1..17 hits every panel width and ragged tail of
// every tier (16/8/4/scalar columns for AVX2, masked 16-wide for AVX-512,
// row blocks of 4 plus 3/2/1 remainders), crossed with all transpose
// combinations and the alpha/beta special cases the kernels branch on
// (alpha 0 short-circuits in the front-end; beta 0 skips the C load).
TEST(GemmTierConformance, ExhaustiveSmallShapesMatchReference) {
  constexpr int kMaxDim = 17;
  const float kAlphas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  const float kBetas[] = {0.0f, 1.0f, -1.0f, 0.5f};
  Rng rng(4242);
  // One shared random pool, large enough for any operand below.
  const std::vector<float> pool = RandomVec(rng, 2 * kMaxDim * kMaxDim);
  std::vector<float> c_base = RandomVec(rng, kMaxDim * kMaxDim);

  TierGuard guard;
  for (SimdTier tier : TestableTiers()) {
    SetSimdTier(tier);
    int64_t cases = 0, bad = 0;
    for (int m = 1; m <= kMaxDim; ++m) {
      for (int n = 1; n <= kMaxDim; ++n) {
        for (int k = 1; k <= kMaxDim; ++k) {
          for (int tai = 0; tai < 2; ++tai) {
            for (int tbi = 0; tbi < 2; ++tbi) {
              const Trans ta = tai ? Trans::kYes : Trans::kNo;
              const Trans tb = tbi ? Trans::kYes : Trans::kNo;
              const int64_t lda = tai ? m : k;
              const int64_t ldb = tbi ? k : n;
              for (float alpha : kAlphas) {
                for (float beta : kBetas) {
                  std::vector<float> c(c_base.begin(),
                                       c_base.begin() + m * n);
                  std::vector<float> c_ref = c;
                  Gemm(ta, tb, m, n, k, alpha, pool.data(), lda,
                       pool.data() + kMaxDim * kMaxDim, ldb, beta, c.data(),
                       n);
                  GemmRef(ta, tb, m, n, k, alpha, pool.data(), lda,
                          pool.data() + kMaxDim * kMaxDim, ldb, beta,
                          c_ref.data(), n);
                  ++cases;
                  for (int i = 0; i < m * n; ++i) {
                    const float tol =
                        1e-4f * (std::abs(c_ref[static_cast<size_t>(i)]) +
                                 1.0f);
                    if (std::abs(c[static_cast<size_t>(i)] -
                                 c_ref[static_cast<size_t>(i)]) > tol) {
                      if (bad < 5) {
                        ADD_FAILURE()
                            << "tier=" << SimdTierName(tier) << " m=" << m
                            << " n=" << n << " k=" << k << " ta=" << tai
                            << " tb=" << tbi << " alpha=" << alpha
                            << " beta=" << beta << " elem " << i << ": got "
                            << c[static_cast<size_t>(i)] << " want "
                            << c_ref[static_cast<size_t>(i)];
                      }
                      ++bad;
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
    EXPECT_EQ(bad, 0) << "tier=" << SimdTierName(tier) << ": " << bad
                      << " mismatched elements across " << cases << " cases";
  }
}

// The same kernel must produce bitwise-identical output regardless of
// operand alignment: tails are chosen by shape, never by pointer value, so
// shifting every operand off 64-byte alignment cannot change a single bit.
TEST(GemmTierConformance, AlignmentInvariantBitwise) {
  const int64_t m = 7, n = 13, k = 9;
  Rng rng(77);
  const std::vector<float> a = RandomVec(rng, m * k + 1);
  const std::vector<float> b = RandomVec(rng, k * n + 1);
  const std::vector<float> c0 = RandomVec(rng, m * n + 1);

  TierGuard guard;
  for (SimdTier tier : TestableTiers()) {
    SetSimdTier(tier);
    std::vector<float> c_aligned(c0.begin(), c0.begin() + m * n);
    Gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a.data(), k, b.data(), n,
         0.5f, c_aligned.data(), n);

    // Shift every operand by one float (4 bytes) — guaranteed misaligned
    // for 32/64-byte vectors.
    std::vector<float> a_off(a.begin(), a.end());
    std::vector<float> b_off(b.begin(), b.end());
    std::vector<float> c_off(c0.begin(), c0.end());
    std::copy(a.begin(), a.end() - 1, a_off.begin() + 1);
    std::copy(b.begin(), b.end() - 1, b_off.begin() + 1);
    std::copy(c0.begin(), c0.end() - 1, c_off.begin() + 1);
    Gemm(Trans::kNo, Trans::kNo, m, n, k, 1.0f, a_off.data() + 1, k,
         b_off.data() + 1, n, 0.5f, c_off.data() + 1, n);

    EXPECT_EQ(std::memcmp(c_aligned.data(), c_off.data() + 1,
                          static_cast<size_t>(m * n) * sizeof(float)),
              0)
        << "tier=" << SimdTierName(tier)
        << ": result depends on operand alignment";
  }
}

// Axpy is the shared pooling kernel (both the fused and staged TT forward
// accumulate through it), so each tier's version is checked against the
// plain loop. Vector tiers use FMA, which rounds differently from
// mul-then-add — tolerance, not bitwise.
TEST(GemmTierConformance, AxpyMatchesScalarLoop) {
  Rng rng(55);
  TierGuard guard;
  for (SimdTier tier : TestableTiers()) {
    SetSimdTier(tier);
    for (int64_t n : {0, 1, 3, 7, 8, 15, 16, 17, 33, 100}) {
      for (float alpha : {0.0f, 1.0f, -1.0f, 0.5f}) {
        const std::vector<float> x = RandomVec(rng, n);
        std::vector<float> y = RandomVec(rng, n);
        std::vector<float> y_ref = y;
        Axpy(n, alpha, x.data(), y.data());
        for (int64_t i = 0; i < n; ++i) {
          y_ref[static_cast<size_t>(i)] +=
              alpha * x[static_cast<size_t>(i)];
        }
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_NEAR(y[static_cast<size_t>(i)],
                      y_ref[static_cast<size_t>(i)], 1e-5f)
              << "tier=" << SimdTierName(tier) << " n=" << n
              << " alpha=" << alpha << " i=" << i;
        }
      }
    }
  }
}

// TTREC_SIMD resolves on the next (re-)resolution: a recognized name forces
// that tier (clamped to what the CPU supports), garbage falls back to the
// detected tier with a warning.
TEST(SimdDispatch, EnvOverrideSelectsTier) {
  const SimdTier detected = DetectedSimdTier();
  TierGuard guard;

  ASSERT_EQ(setenv("TTREC_SIMD", "scalar", 1), 0);
  ResetSimdTier();
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);

  ASSERT_EQ(setenv("TTREC_SIMD", "definitely-not-a-tier", 1), 0);
  ResetSimdTier();
  EXPECT_EQ(ActiveSimdTier(), detected);

  // Requesting above what the CPU supports clamps to detected (a no-op
  // when the machine already supports avx512).
  ASSERT_EQ(setenv("TTREC_SIMD", "avx512", 1), 0);
  ResetSimdTier();
  EXPECT_LE(static_cast<int>(ActiveSimdTier()), static_cast<int>(detected));

  ASSERT_EQ(unsetenv("TTREC_SIMD"), 0);
  ResetSimdTier();
  EXPECT_EQ(ActiveSimdTier(), detected);
}

TEST(SimdDispatch, ReportsNamesAndCpuModel) {
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx512), "avx512");
  EXPECT_FALSE(std::string(CpuModelName()).empty());
}

}  // namespace
}  // namespace ttrec
