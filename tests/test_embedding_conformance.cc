// Interface-conformance property suite: every EmbeddingOp implementation
// must satisfy the same contracts — forward determinism, weight/pooling
// semantics, output overwrite (not accumulate), index validation, and (for
// trainable ops) loss reduction under its optimizer.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "baselines/hashed_embedding.h"
#include "baselines/lowrank_embedding.h"
#include "baselines/t3nsor_embedding.h"
#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

constexpr int64_t kRows = 60;
constexpr int64_t kDim = 8;

struct OpFactory {
  std::string name;
  bool trainable;
  std::function<std::unique_ptr<EmbeddingOp>(uint64_t seed)> make;
};

std::vector<OpFactory> AllFactories() {
  std::vector<OpFactory> fs;
  fs.push_back({"dense", true, [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  return std::make_unique<DenseEmbeddingBag>(
                      kRows, kDim, PoolingMode::kSum,
                      DenseEmbeddingInit::UniformScaled(), rng);
                }});
  fs.push_back({"tt", true, [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  TtEmbeddingConfig cfg;
                  cfg.shape = MakeTtShape(kRows, kDim, 3, 4);
                  return std::make_unique<TtEmbeddingAdapter>(
                      cfg, TtInit::kGaussian, rng);
                }});
  fs.push_back({"tt_dedup", true,
                [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  TtEmbeddingConfig cfg;
                  cfg.shape = MakeTtShape(kRows, kDim, 3, 4);
                  cfg.deduplicate = true;
                  return std::make_unique<TtEmbeddingAdapter>(
                      cfg, TtInit::kGaussian, rng);
                }});
  fs.push_back({"cached_tt", true,
                [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  CachedTtConfig cfg;
                  cfg.tt.shape = MakeTtShape(kRows, kDim, 3, 4);
                  cfg.cache_capacity = 8;
                  cfg.warmup_iterations = 2;
                  cfg.refresh_interval = 1;
                  return std::make_unique<CachedTtEmbeddingAdapter>(
                      cfg, TtInit::kGaussian, rng);
                }});
  fs.push_back({"t3nsor", true,
                [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  TtEmbeddingConfig cfg;
                  cfg.shape = MakeTtShape(kRows, kDim, 3, 4);
                  return std::make_unique<T3nsorEmbeddingBag>(
                      cfg, TtInit::kGaussian, rng);
                }});
  fs.push_back({"hashed", true,
                [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  return std::make_unique<HashedEmbeddingBag>(
                      kRows, 16, kDim, PoolingMode::kSum, rng);
                }});
  fs.push_back({"lowrank", true,
                [](uint64_t seed) -> std::unique_ptr<EmbeddingOp> {
                  Rng rng(seed);
                  return std::make_unique<LowRankEmbeddingBag>(
                      kRows, kDim, 3, PoolingMode::kSum, rng);
                }});
  return fs;
}

class EmbeddingConformance : public ::testing::TestWithParam<OpFactory> {};

TEST_P(EmbeddingConformance, ReportsGeometryAndPositiveMemory) {
  auto op = GetParam().make(1);
  EXPECT_EQ(op->num_rows(), kRows);
  EXPECT_EQ(op->emb_dim(), kDim);
  EXPECT_GT(op->MemoryBytes(), 0);
  EXPECT_FALSE(op->Name().empty());
}

TEST_P(EmbeddingConformance, ForwardOverwritesOutput) {
  auto op = GetParam().make(2);
  CsrBatch batch = CsrBatch::FromIndices({1, 2});
  std::vector<float> a(static_cast<size_t>(2 * kDim), 123.0f);
  std::vector<float> b(static_cast<size_t>(2 * kDim), -777.0f);
  op->Forward(batch, a.data());
  op->Forward(batch, b.data());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << GetParam().name << " output " << i;
  }
}

TEST_P(EmbeddingConformance, EmptyBagsYieldZeros) {
  auto op = GetParam().make(3);
  CsrBatch batch;
  batch.indices = {5};
  batch.offsets = {0, 0, 1, 1};  // bags 0 and 2 empty
  std::vector<float> out(static_cast<size_t>(3 * kDim), 9.0f);
  op->Forward(batch, out.data());
  for (int64_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(out[static_cast<size_t>(j)], 0.0f) << GetParam().name;
    EXPECT_EQ(out[static_cast<size_t>(2 * kDim + j)], 0.0f)
        << GetParam().name;
  }
}

TEST_P(EmbeddingConformance, WeightsScaleLinearly) {
  auto op = GetParam().make(4);
  CsrBatch unweighted = CsrBatch::FromIndices({7});
  CsrBatch weighted = unweighted;
  weighted.weights = {2.5f};
  std::vector<float> a(static_cast<size_t>(kDim)), b(a.size());
  op->Forward(unweighted, a.data());
  op->Forward(weighted, b.data());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i], 2.5f * a[i], 1e-4f) << GetParam().name;
  }
}

TEST_P(EmbeddingConformance, RejectsOutOfRangeIndices) {
  auto op = GetParam().make(5);
  std::vector<float> out(static_cast<size_t>(kDim));
  CsrBatch too_big = CsrBatch::FromIndices({kRows});
  EXPECT_THROW(op->Forward(too_big, out.data()), IndexError)
      << GetParam().name;
  CsrBatch negative = CsrBatch::FromIndices({-1});
  EXPECT_THROW(op->Forward(negative, out.data()), IndexError)
      << GetParam().name;
}

TEST_P(EmbeddingConformance, SgdTrainingReducesRegressionLoss) {
  if (!GetParam().trainable) GTEST_SKIP();
  auto op = GetParam().make(6);
  CsrBatch batch = CsrBatch::FromIndices({11, 23});
  std::vector<float> target(static_cast<size_t>(2 * kDim));
  Rng trng(9);
  for (float& x : target) x = static_cast<float>(trng.Uniform(-0.3, 0.3));
  std::vector<float> out(target.size()), grad(target.size());
  double first = -1, last = -1;
  for (int step = 0; step < 250; ++step) {
    op->Forward(batch, out.data());
    double loss = 0;
    for (size_t i = 0; i < out.size(); ++i) {
      const float d = out[i] - target[i];
      loss += 0.5 * d * d;
      grad[i] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    op->Backward(batch, grad.data());
    op->ApplySgd(0.3f);
  }
  EXPECT_LT(last, 0.05 * first + 1e-9) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EmbeddingConformance, ::testing::ValuesIn(AllFactories()),
    [](const ::testing::TestParamInfo<OpFactory>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace ttrec
