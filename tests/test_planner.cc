// Capacity planner: budget satisfaction, compression ordering, rank
// degradation, infeasible budgets, tiny-table protection, and end-to-end
// model construction from a plan.
#include <gtest/gtest.h>

#include "dlrm/capacity_planner.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

TEST(CapacityPlanner, GenerousBudgetKeepsEverythingDense) {
  const DatasetSpec spec = KaggleSpec().Scaled(1000);
  const int64_t dense = spec.TotalEmbeddingParams(16) * 4;
  const CapacityPlan plan = PlanCapacity(spec, 16, dense * 2);
  EXPECT_TRUE(plan.fits);
  EXPECT_EQ(plan.total_bytes, plan.dense_bytes);
  for (const TablePlan& t : plan.tables) EXPECT_FALSE(t.compress);
}

TEST(CapacityPlanner, CompressesLargestTablesFirst) {
  const DatasetSpec spec = KaggleSpec().Scaled(1000);
  const int64_t dense = spec.TotalEmbeddingParams(16) * 4;
  // Budget forcing roughly the top tables into TT.
  const CapacityPlan plan = PlanCapacity(spec, 16, dense / 3);
  ASSERT_TRUE(plan.fits);
  EXPECT_LE(plan.total_bytes, dense / 3);

  // Every compressed table must be at least as large (in rows) as every
  // uncompressed table that TT could have shrunk.
  int64_t smallest_compressed = INT64_MAX;
  for (const TablePlan& t : plan.tables) {
    if (t.compress) smallest_compressed = std::min(smallest_compressed, t.rows);
  }
  ASSERT_LT(smallest_compressed, INT64_MAX);
  for (const TablePlan& t : plan.tables) {
    if (!t.compress &&
        TtTableBytes(t.rows, 16, 3, 8) < t.rows * 16 * 4) {
      EXPECT_LE(t.rows, smallest_compressed)
          << "larger shrinkable table left dense";
    }
  }
}

TEST(CapacityPlanner, TighterBudgetsLowerRanksMonotonically) {
  const DatasetSpec spec = KaggleSpec().Scaled(200);
  const int64_t dense = spec.TotalEmbeddingParams(16) * 4;
  int64_t prev_total = INT64_MAX;
  for (double frac : {0.5, 0.2, 0.1, 0.05, 0.02}) {
    const CapacityPlan plan = PlanCapacity(
        spec, 16, static_cast<int64_t>(frac * static_cast<double>(dense)));
    EXPECT_LE(plan.total_bytes, prev_total) << "frac " << frac;
    prev_total = plan.total_bytes;
    if (plan.fits) {
      EXPECT_LE(plan.total_bytes,
                static_cast<int64_t>(frac * static_cast<double>(dense)));
    }
  }
}

TEST(CapacityPlanner, InfeasibleBudgetReportsNoFit) {
  const DatasetSpec spec = KaggleSpec().Scaled(1000);
  const CapacityPlan plan = PlanCapacity(spec, 16, /*budget_bytes=*/64);
  EXPECT_FALSE(plan.fits);
  // Still the most aggressive valid plan: all shrinkable tables at min rank.
  for (const TablePlan& t : plan.tables) {
    if (t.compress) {
      EXPECT_EQ(t.rank, 8);
    }
  }
  EXPECT_GT(plan.CompressionRatio(), 1.0);
}

TEST(CapacityPlanner, TinyTablesStayDense) {
  // A table so small that TT at min rank is bigger than dense must never be
  // compressed, however tight the budget.
  DatasetSpec spec;
  spec.name = "mixed";
  spec.table_rows = {40, 2000000};
  const CapacityPlan plan = PlanCapacity(spec, 16, /*budget_bytes=*/4096);
  EXPECT_FALSE(plan.tables[0].compress);
  EXPECT_TRUE(plan.tables[1].compress);
}

TEST(CapacityPlanner, Validation) {
  const DatasetSpec spec = KaggleSpec().Scaled(1000);
  EXPECT_THROW(PlanCapacity(spec, 16, 0), ConfigError);
  PlannerOptions bad;
  bad.allowed_ranks = {};
  EXPECT_THROW(PlanCapacity(spec, 16, 1 << 20, bad), ConfigError);
  bad.allowed_ranks = {32, 8};
  EXPECT_THROW(PlanCapacity(spec, 16, 1 << 20, bad), ConfigError);
}

TEST(CapacityPlanner, ToStringMentionsFitAndRatio) {
  const DatasetSpec spec = KaggleSpec().Scaled(2000);
  const CapacityPlan plan = PlanCapacity(spec, 16, 1 << 20);
  const std::string s = plan.ToString();
  EXPECT_NE(s.find("fits="), std::string::npos);
  EXPECT_NE(s.find("dense"), std::string::npos);
}

TEST(CapacityPlanner, PlanBuildsWorkingModel) {
  // End to end: realize a plan as a DlrmModel and check the memory matches
  // the plan's accounting.
  const DatasetSpec spec = KaggleSpec().Scaled(2000);
  const int64_t dense = spec.TotalEmbeddingParams(16) * 4;
  const CapacityPlan plan = PlanCapacity(spec, 16, dense / 5);
  ASSERT_TRUE(plan.fits);

  Rng rng(5);
  DlrmConfig dlrm;
  dlrm.emb_dim = 16;
  dlrm.bottom_hidden = {16};
  dlrm.top_hidden = {16};
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (const TablePlan& t : plan.tables) {
    if (t.compress) {
      TtEmbeddingConfig cfg;
      cfg.shape = MakeTtShape(t.rows, 16, 3, t.rank);
      tables.push_back(std::make_unique<TtEmbeddingAdapter>(
          cfg, TtInit::kSampledGaussian, rng));
    } else {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          t.rows, 16, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
    }
  }
  DlrmModel model(dlrm, std::move(tables), rng);
  EXPECT_EQ(model.EmbeddingMemoryBytes(), plan.total_bytes);
}

}  // namespace
}  // namespace ttrec
