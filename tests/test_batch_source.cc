// BatchSource contract: trace record/replay round-trips the stream
// bitwise, cursors save/restore exactly, and the skew-shift source builds
// deterministic full minibatches whose eval stream never perturbs training.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "data/batch_source.h"
#include "data/criteo_synth.h"
#include "data/skew_shift_source.h"
#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {
namespace {

SyntheticCriteoConfig TinyCriteo() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

SkewShiftSourceConfig TinySkew() {
  SkewShiftSourceConfig cfg;
  cfg.scenario.tables = {{300, 1.2, 4.0}, {200, 1.05, 1.0}, {150, 0.9, 1.0}};
  cfg.scenario.lookups_per_iteration = 12;
  cfg.scenario.phase_length = 16;
  cfg.scenario.seed = 0xBEEF;
  cfg.num_dense = 5;
  return cfg;
}

void ExpectBatchEq(const MiniBatch& a, const MiniBatch& b) {
  ASSERT_EQ(a.dense.shape(), b.dense.shape());
  ASSERT_EQ(0, std::memcmp(a.dense.data(), b.dense.data(),
                           sizeof(float) * a.dense.numel()));
  ASSERT_EQ(a.labels, b.labels);
  ASSERT_EQ(a.sparse.size(), b.sparse.size());
  for (size_t t = 0; t < a.sparse.size(); ++t) {
    EXPECT_EQ(a.sparse[t].indices, b.sparse[t].indices) << "table " << t;
    EXPECT_EQ(a.sparse[t].offsets, b.sparse[t].offsets) << "table " << t;
    EXPECT_EQ(a.sparse[t].weights, b.sparse[t].weights) << "table " << t;
  }
}

std::string StateOf(const BatchSource& s) {
  std::ostringstream ss;
  BinaryWriter w(ss);
  s.SaveState(w);
  return ss.str();
}

void RestoreState(BatchSource& s, const std::string& bytes) {
  std::istringstream ss(bytes);
  BinaryReader r(ss);
  s.LoadState(r);
}

// --- TraceReplaySource ----------------------------------------------------

TEST(TraceReplay, RecordThenReplayMatchesOriginalStreamBitwise) {
  SyntheticCriteo live(TinyCriteo());
  TraceReplaySource trace =
      TraceReplaySource::Record(live, /*train_batches=*/6,
                                /*train_batch_size=*/16, /*eval_batches=*/2,
                                /*eval_batch_size=*/32);
  EXPECT_EQ(trace.num_tables(), live.num_tables());
  EXPECT_EQ(trace.train_size(), 6);

  SyntheticCriteo fresh(TinyCriteo());
  for (int i = 0; i < 6; ++i) {
    SCOPED_TRACE(i);
    ExpectBatchEq(trace.NextBatch(16), fresh.NextBatch(16));
  }
  for (uint64_t s = 1; s <= 2; ++s) {
    ExpectBatchEq(trace.EvalBatch(32, s), fresh.EvalBatch(32, s));
  }
}

TEST(TraceReplay, LoopWrapsAndNoLoopThrowsOnExhaustion) {
  SyntheticCriteo live(TinyCriteo());
  TraceReplaySource looped =
      TraceReplaySource::Record(live, 3, 8, /*eval_batches=*/0, 8);
  MiniBatch first = looped.NextBatch(8);
  looped.NextBatch(8);
  looped.NextBatch(8);
  ExpectBatchEq(looped.NextBatch(8), first);  // wrapped

  SyntheticCriteo live2(TinyCriteo());
  std::vector<MiniBatch> train;
  for (int i = 0; i < 2; ++i) train.push_back(live2.NextBatch(8));
  TraceReplaySource finite(std::move(train), {}, /*loop=*/false);
  finite.NextBatch(8);
  finite.NextBatch(8);
  EXPECT_THROW(finite.NextBatch(8), ConfigError);
}

TEST(TraceReplay, BatchSizeMismatchAndMissingEvalThrowTyped) {
  SyntheticCriteo live(TinyCriteo());
  TraceReplaySource trace = TraceReplaySource::Record(live, 2, 16, 0, 16);
  EXPECT_THROW(trace.NextBatch(8), ConfigError);
  EXPECT_THROW(trace.EvalBatch(16, 1), ConfigError);
}

TEST(TraceReplay, CursorSavesAndRestoresMidTrace) {
  SyntheticCriteo live(TinyCriteo());
  TraceReplaySource a = TraceReplaySource::Record(live, 5, 8, 0, 8);
  TraceReplaySource b = a;  // identical trace, independent cursor
  a.NextBatch(8);
  a.NextBatch(8);
  const std::string cursor = StateOf(a);
  EXPECT_EQ(a.cursor(), 2);

  RestoreState(b, cursor);
  EXPECT_EQ(b.cursor(), 2);
  ExpectBatchEq(a.NextBatch(8), b.NextBatch(8));

  // A cursor beyond the recorded trace is corruption, not silent wrap.
  TraceReplaySource c = TraceReplaySource::Record(live, 1, 8, 0, 8);
  EXPECT_THROW(RestoreState(c, cursor), TtRecError);
}

// --- SkewShiftBatchSource -------------------------------------------------

TEST(SkewShiftSource, BatchesHaveFullMiniBatchShape) {
  SkewShiftBatchSource src(TinySkew());
  EXPECT_EQ(src.num_tables(), 3);
  MiniBatch b = src.NextBatch(20);
  EXPECT_EQ(b.batch_size(), 20);
  ASSERT_EQ(b.dense.shape(), (std::vector<int64_t>{20, 5}));
  ASSERT_EQ(b.sparse.size(), 3u);
  for (const CsrBatch& t : b.sparse) {
    EXPECT_EQ(t.num_bags(), 20);
    t.ValidateStructure();
    EXPECT_GT(t.num_lookups(), 0);
  }
  for (float y : b.labels) EXPECT_TRUE(y == 0.0f || y == 1.0f);
  // One scenario iteration per sample.
  EXPECT_EQ(src.scenario().iteration(), 20);
}

TEST(SkewShiftSource, IdenticalConfigsProduceIdenticalStreams) {
  SkewShiftBatchSource a(TinySkew());
  SkewShiftBatchSource b(TinySkew());
  for (int i = 0; i < 4; ++i) {
    SCOPED_TRACE(i);
    ExpectBatchEq(a.NextBatch(10), b.NextBatch(10));
  }
}

TEST(SkewShiftSource, EvalIsDeterministicPerSeedAndSideEffectFree) {
  SkewShiftBatchSource a(TinySkew());
  SkewShiftBatchSource b(TinySkew());
  a.NextBatch(10);
  b.NextBatch(10);

  // Eval calls on `a` must not perturb its training stream.
  ExpectBatchEq(a.EvalBatch(16, 1), a.EvalBatch(16, 1));
  a.EvalBatch(16, 7);
  ExpectBatchEq(a.NextBatch(10), b.NextBatch(10));

  // Different eval seeds draw different batches (same distribution).
  MiniBatch e1 = a.EvalBatch(64, 1);
  MiniBatch e2 = a.EvalBatch(64, 2);
  bool differs = false;
  for (size_t t = 0; t < e1.sparse.size() && !differs; ++t) {
    differs = e1.sparse[t].indices != e2.sparse[t].indices;
  }
  EXPECT_TRUE(differs);
}

TEST(SkewShiftSource, SaveLoadResumesStreamExactlyAcrossPhaseBoundary) {
  SkewShiftBatchSource a(TinySkew());
  a.NextBatch(10);  // 10 scenario iterations (phase_length 16)
  const std::string cursor = StateOf(a);

  // Continue past the phase boundary on both the original and a restored
  // copy; streams must match bitwise.
  SkewShiftBatchSource b(TinySkew());
  RestoreState(b, cursor);
  for (int i = 0; i < 3; ++i) {
    SCOPED_TRACE(i);
    ExpectBatchEq(a.NextBatch(10), b.NextBatch(10));
  }
  EXPECT_GT(a.scenario().phase(), 0);
}

TEST(SkewShiftSource, TeacherValuesAreBoundedAndSeedStable) {
  SkewShiftBatchSource a(TinySkew());
  SkewShiftBatchSource b(TinySkew());
  for (int t = 0; t < a.num_tables(); ++t) {
    for (int64_t r = 0; r < 50; ++r) {
      const double v = a.TeacherValue(t, r);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
      EXPECT_EQ(v, b.TeacherValue(t, r));
    }
  }
}

TEST(SkewShiftScenarioState, SaveLoadReplaysIterationStreamExactly) {
  SkewShiftConfig cfg = TinySkew().scenario;
  SkewShiftScenario a(cfg);
  for (int i = 0; i < 12; ++i) a.NextBatch();

  std::ostringstream os;
  BinaryWriter w(os);
  a.SaveState(w);

  SkewShiftScenario b(cfg);
  std::istringstream is(os.str());
  BinaryReader r(is);
  b.LoadState(r);
  EXPECT_EQ(b.iteration(), 12);

  for (int i = 0; i < 10; ++i) {  // crosses the phase-16 boundary
    const auto ba = a.NextBatch();
    const auto bb = b.NextBatch();
    ASSERT_EQ(ba.size(), bb.size());
    for (size_t t = 0; t < ba.size(); ++t) {
      EXPECT_EQ(ba[t].indices, bb[t].indices) << "iter " << i << " table " << t;
    }
  }
}

}  // namespace
}  // namespace ttrec
