// Sharded serving tests (src/shard/ + the InferenceServer integration):
// the ShardPlan partitioner (coverage, determinism, LPT packing, row-range
// boundaries, serialization, capacity-planner input), the bitwise identity
// property — router fan-out/join logits == single-process const forward,
// across strategies x shard counts x batches with empty bags, duplicate
// ids, per-lookup weights, and out-of-range ids under kClampToZero — the
// sharded InferenceServer (per-shard metrics, topology snapshot), the
// coordinated two-phase hot-swap under a live hammer, and generation-metric
// retention. Suites all match the `Shard*` TSan CI filter.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/capacity_planner.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "serve/inference_server.h"
#include "serve/inference_session.h"
#include "serve/micro_batcher.h"
#include "serve/serve_errors.h"
#include "shard/embedding_shard.h"
#include "shard/shard_plan.h"
#include "shard/shard_router.h"
#include "tensor/check.h"
#include "tensor/serialize.h"
#include "tt/tt_shapes.h"

namespace ttrec {
namespace {

using shard::BuildShards;
using shard::MakeShardPlan;
using shard::PartitionStrategy;
using shard::ShardPiece;
using shard::ShardPlan;
using shard::ShardRouter;

// ---------------------------------------------------------------------------
// ShardPlan: the partitioner
// ---------------------------------------------------------------------------

TEST(ShardPlan, TableStrategyPacksByBytesLpt) {
  const std::vector<int64_t> rows = {100, 200, 300, 400};
  const std::vector<int64_t> bytes = {100, 80, 60, 10};
  const ShardPlan plan =
      MakeShardPlan(rows, bytes, PartitionStrategy::kTable, 2);

  EXPECT_EQ(plan.num_shards(), 2);
  EXPECT_EQ(plan.num_tables(), 4);
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(plan.single_owner(t));
    EXPECT_EQ(plan.table_pieces(t)[0].rows(), rows[static_cast<size_t>(t)]);
  }
  // LPT: 100 -> s0, 80 -> s1, 60 -> s1 (80 < 100), 10 -> s0 (100 < 140).
  EXPECT_EQ(plan.table_pieces(0)[0].shard, 0);
  EXPECT_EQ(plan.table_pieces(1)[0].shard, 1);
  EXPECT_EQ(plan.table_pieces(2)[0].shard, 1);
  EXPECT_EQ(plan.table_pieces(3)[0].shard, 0);
  EXPECT_EQ(plan.shard_bytes(0), 110);
  EXPECT_EQ(plan.shard_bytes(1), 140);
}

TEST(ShardPlan, RowRangeCoversEveryRowExactlyOnce) {
  const std::vector<int64_t> rows = {100, 7, 1};
  const std::vector<int64_t> bytes = {1000, 70, 10};
  for (int num_shards : {1, 2, 4, 7}) {
    const ShardPlan plan =
        MakeShardPlan(rows, bytes, PartitionStrategy::kRowRange, num_shards);
    for (int t = 0; t < plan.num_tables(); ++t) {
      // Walking PieceFor over every row must visit contiguous, ascending
      // shard pieces that tile [0, rows).
      int64_t covered = 0;
      for (const ShardPiece& p : plan.table_pieces(t)) {
        EXPECT_EQ(p.row_begin, covered);
        EXPECT_GT(p.rows(), 0);
        covered = p.row_end;
        for (int64_t r = p.row_begin; r < p.row_end; ++r) {
          EXPECT_EQ(&plan.PieceFor(t, r), &p);
        }
      }
      EXPECT_EQ(covered, rows[static_cast<size_t>(t)]);
      // More shards than rows: empty slices are skipped, never emitted.
      EXPECT_LE(plan.table_pieces(t).size(),
                static_cast<size_t>(
                    std::min<int64_t>(num_shards,
                                      rows[static_cast<size_t>(t)])));
    }
    EXPECT_THROW(plan.PieceFor(0, rows[0]), IndexError);
    EXPECT_THROW(plan.PieceFor(0, -1), IndexError);
  }
}

TEST(ShardPlan, DeterministicForIdenticalInputs) {
  const std::vector<int64_t> rows = {512, 64, 2048, 64};
  const std::vector<int64_t> bytes = {4096, 512, 512, 512};
  for (PartitionStrategy s :
       {PartitionStrategy::kTable, PartitionStrategy::kRowRange}) {
    const ShardPlan a = MakeShardPlan(rows, bytes, s, 3);
    const ShardPlan b = MakeShardPlan(rows, bytes, s, 3);
    ASSERT_EQ(a.pieces().size(), b.pieces().size());
    for (size_t i = 0; i < a.pieces().size(); ++i) {
      EXPECT_EQ(a.pieces()[i].table, b.pieces()[i].table);
      EXPECT_EQ(a.pieces()[i].shard, b.pieces()[i].shard);
      EXPECT_EQ(a.pieces()[i].row_begin, b.pieces()[i].row_begin);
      EXPECT_EQ(a.pieces()[i].row_end, b.pieces()[i].row_end);
      EXPECT_EQ(a.pieces()[i].bytes, b.pieces()[i].bytes);
    }
  }
}

TEST(ShardPlan, SaveLoadRoundTrips) {
  const ShardPlan plan = MakeShardPlan({300, 50}, {3000, 500},
                                       PartitionStrategy::kRowRange, 4);
  std::stringstream ss;
  BinaryWriter w(ss);
  plan.Save(w);
  w.Finish();

  BinaryReader r(ss);
  const ShardPlan loaded = ShardPlan::Load(r);
  r.Finish();

  EXPECT_EQ(loaded.strategy(), plan.strategy());
  EXPECT_EQ(loaded.num_shards(), plan.num_shards());
  EXPECT_EQ(loaded.ToString(), plan.ToString());
  ASSERT_EQ(loaded.pieces().size(), plan.pieces().size());
  for (size_t i = 0; i < plan.pieces().size(); ++i) {
    EXPECT_EQ(loaded.pieces()[i].shard, plan.pieces()[i].shard);
    EXPECT_EQ(loaded.pieces()[i].row_begin, plan.pieces()[i].row_begin);
  }
}

TEST(ShardPlan, RejectsGapsOverlapsAndDuplicateShards) {
  // Gap: rows [0, 10) with a piece covering only [0, 5).
  EXPECT_THROW(ShardPlan(PartitionStrategy::kRowRange, 2,
                         {ShardPiece{0, 0, 0, 5, 1}}, {10}),
               ConfigError);
  // Overlap.
  EXPECT_THROW(ShardPlan(PartitionStrategy::kRowRange, 2,
                         {ShardPiece{0, 0, 0, 6, 1}, ShardPiece{0, 1, 5, 10, 1}},
                         {10}),
               ConfigError);
  // Two pieces of one table on one shard.
  EXPECT_THROW(ShardPlan(PartitionStrategy::kRowRange, 2,
                         {ShardPiece{0, 0, 0, 5, 1}, ShardPiece{0, 0, 5, 10, 1}},
                         {10}),
               ConfigError);
  // Shard id outside the fleet.
  EXPECT_THROW(ShardPlan(PartitionStrategy::kRowRange, 2,
                         {ShardPiece{0, 2, 0, 10, 1}}, {10}),
               ConfigError);
}

TEST(ShardPlan, CapacityPlannerBytesDrivePlacement) {
  DatasetSpec spec;
  spec.name = "shard_capacity";
  spec.table_rows = {2000000, 4000, 2000, 1000};
  const int64_t emb_dim = 16;
  const int64_t budget = 8LL << 20;
  const PlannerOptions options;

  const CapacityPlan cap = PlanCapacity(spec, emb_dim, budget, options);
  const ShardPlan plan = shard::MakeShardPlanFromCapacity(
      spec, emb_dim, budget, PartitionStrategy::kTable, 2, options);

  // Placement is driven by the planner's per-table byte estimates: the
  // plan's total resident bytes are exactly the capacity plan's total.
  int64_t plan_bytes = 0;
  for (int s = 0; s < plan.num_shards(); ++s) plan_bytes += plan.shard_bytes(s);
  EXPECT_EQ(plan_bytes, cap.total_bytes);
  EXPECT_EQ(plan.num_tables(), static_cast<int>(spec.table_rows.size()));
  // The 2M-row table must have been TT-compressed to fit the budget; its
  // piece packs by the compressed footprint, not 2M * emb_dim * 4.
  EXPECT_TRUE(cap.tables[0].compress);
  EXPECT_EQ(plan.table_pieces(0)[0].bytes, cap.tables[0].bytes);
}

TEST(ShardPlan, ToStringListsEveryShard) {
  const ShardPlan plan =
      MakeShardPlan({100}, {400}, PartitionStrategy::kRowRange, 3);
  const std::string dump = plan.ToString();
  EXPECT_NE(dump.find("shard plan: row partition"), std::string::npos);
  EXPECT_NE(dump.find("shard 0:"), std::string::npos);
  EXPECT_NE(dump.find("shard 2:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bitwise identity: sharded fan-out/join == single-process forward
// ---------------------------------------------------------------------------

/// Mixed-operator model under kClampToZero: dense kSum, dense kMean, TT,
/// and cached-TT with mean pooling — every PoolPrefetchedRows
/// implementation in the tree takes part in the identity check.
std::shared_ptr<const DlrmModel> BuildMixedModel(const DatasetSpec& spec,
                                                 Rng& rng) {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.index_policy = IndexPolicy::kClampToZero;
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      spec.table_rows[0], cfg.emb_dim, PoolingMode::kSum,
      DenseEmbeddingInit::UniformScaled(), rng));
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      spec.table_rows[1], cfg.emb_dim, PoolingMode::kMean,
      DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tt;
  tt.shape = MakeTtShape(spec.table_rows[2], cfg.emb_dim, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tt, TtInit::kSampledGaussian, rng));
  CachedTtConfig cached;
  cached.tt.shape = MakeTtShape(spec.table_rows[3], cfg.emb_dim, 3, 4);
  cached.tt.pooling = PoolingMode::kMean;
  cached.cache_capacity = 32;
  cached.warmup_iterations = 1;
  cached.refresh_interval = 2;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      cached, TtInit::kSampledGaussian, rng));
  auto model = std::make_unique<DlrmModel>(cfg, std::move(tables), rng);

  // Populate (and stop refreshing) the LFU cache through the training-path
  // forward, so the identity check exercises both the hit and miss paths of
  // the cached table.
  SyntheticCriteoConfig warm_cfg;
  warm_cfg.spec = spec;
  warm_cfg.seed = 17;
  SyntheticCriteo warm(warm_cfg);
  std::vector<float> logits(32);
  for (int i = 0; i < 6; ++i) {
    model->PredictLogits(warm.NextBatch(32), logits.data());
  }
  return std::shared_ptr<const DlrmModel>(std::move(model));
}

DatasetSpec MixedSpec() {
  DatasetSpec spec;
  spec.name = "shard_identity";
  spec.num_dense = 13;
  spec.table_rows = {120, 97, 260, 200};
  return spec;
}

/// A batch exercising every routing edge case at once: empty bags,
/// duplicate ids inside a bag, per-lookup weights, and (table 1) an
/// out-of-range id the kClampToZero sanitize pass must absorb.
MiniBatch EdgeCaseBatch(const SyntheticCriteo& data) {
  MiniBatch batch = data.EvalBatch(6, 5);
  CsrBatch& t0 = batch.sparse[0];
  t0.indices = {5, 5, 7, 0, 3, 119, 119, 119};
  t0.offsets = {0, 2, 2, 5, 5, 8, 8};  // bags 1, 3, 5 empty; dups in 0 and 4
  t0.weights = {0.5f, 1.5f, 1.0f, -2.0f, 0.25f, 3.0f, 1.0f, 0.125f};
  CsrBatch& t1 = batch.sparse[1];
  t1.indices = {0, 96, 500, 42, 13, 13};  // 500 is out of range: clamped
  t1.offsets = {0, 2, 3, 3, 4, 6, 6};
  t1.weights.clear();
  return batch;
}

TEST(ShardIdentity, RouterMatchesSingleProcessBitwise) {
  Rng rng(211);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> model = BuildMixedModel(spec, rng);

  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  data_cfg.seed = 23;
  SyntheticCriteo data(data_cfg);

  std::vector<MiniBatch> batches;
  batches.push_back(data.EvalBatch(1, 2));
  batches.push_back(data.EvalBatch(5, 3));
  batches.push_back(data.EvalBatch(32, 4));
  batches.push_back(EdgeCaseBatch(data));

  InferenceScratch ref_scratch;
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kTable, PartitionStrategy::kRowRange}) {
    for (const int num_shards : {1, 2, 4, 7}) {
      auto plan = std::make_shared<const ShardPlan>(
          shard::MakeShardPlanForModel(*model, strategy, num_shards));
      ShardRouter router(model, plan, BuildShards(model, plan));
      for (size_t bi = 0; bi < batches.size(); ++bi) {
        const MiniBatch& batch = batches[bi];
        const size_t B = static_cast<size_t>(batch.batch_size());
        std::vector<float> ref(B, 0.0f), out(B, -1.0f);
        model->PredictLogits(batch, ref.data(), ref_scratch);
        router.Run(batch, out.data());
        EXPECT_EQ(std::memcmp(ref.data(), out.data(), B * sizeof(float)), 0)
            << shard::ToString(strategy) << " x " << num_shards
            << " shards, batch " << bi << ": sharded logits diverge";

        // Telemetry bookkeeping: every lookup was routed exactly once.
        int64_t routed = 0;
        for (const int64_t n : router.last_shard_lookups()) routed += n;
        int64_t expected = 0;
        for (const CsrBatch& cb : batch.sparse) expected += cb.num_lookups();
        EXPECT_EQ(routed, expected);
      }
    }
  }
}

TEST(ShardIdentity, ExpiredDeadlineThrowsTyped) {
  Rng rng(223);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> model = BuildMixedModel(spec, rng);
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  SyntheticCriteo data(data_cfg);

  auto plan = std::make_shared<const ShardPlan>(
      shard::MakeShardPlanForModel(*model, PartitionStrategy::kRowRange, 2));
  ShardRouter router(model, plan, BuildShards(model, plan));
  const MiniBatch batch = data.EvalBatch(4);
  std::vector<float> out(4);
  EXPECT_THROW(router.Run(batch, out.data(),
                          std::chrono::steady_clock::now() -
                              std::chrono::milliseconds(1)),
               serve::DeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Sharded InferenceServer
// ---------------------------------------------------------------------------

serve::InferenceRequest CopyRequest(const serve::InferenceRequest& r) {
  serve::InferenceRequest copy;
  copy.dense = r.dense;
  copy.sparse = r.sparse;
  copy.deadline = r.deadline;
  return copy;
}

std::vector<float> Reference(const DlrmModel& model,
                             const std::vector<serve::InferenceRequest>& reqs) {
  std::vector<float> ref(reqs.size());
  serve::InferenceSession session(model);
  for (size_t i = 0; i < reqs.size(); ++i) {
    MiniBatch one;
    one.dense = reqs[i].dense;
    one.sparse = reqs[i].sparse;
    one.labels.assign(1, 0.0f);
    session.Run(one, &ref[i]);
  }
  return ref;
}

TEST(ShardServer, ServesBitwiseIdenticalLogitsWithTopologyMetrics) {
  Rng rng(229);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> model = BuildMixedModel(spec, rng);
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  SyntheticCriteo data(data_cfg);

  const std::vector<serve::InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(16));
  const std::vector<float> ref = Reference(*model, reqs);

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  cfg.num_shards = 4;
  cfg.partition = PartitionStrategy::kRowRange;
  serve::InferenceServer server(model, cfg);

  ASSERT_NE(server.shard_plan(), nullptr);
  EXPECT_EQ(server.shard_plan()->num_shards(), 4);

  for (size_t i = 0; i < reqs.size(); ++i) {
    const serve::InferenceResult res =
        server.Submit(CopyRequest(reqs[i])).get();
    ASSERT_EQ(res.logits.size(), 1u);
    EXPECT_EQ(res.logits[0], ref[i]) << "request " << i;
  }
  server.Shutdown();

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_ok, static_cast<int64_t>(reqs.size()));
  EXPECT_EQ(snap.num_shards, 4);
  EXPECT_EQ(snap.partition, "row");
  ASSERT_EQ(snap.shards.size(), 4u);
  int64_t lookups = 0;
  for (const serve::ShardSnapshot& s : snap.shards) lookups += s.lookups;
  EXPECT_GT(lookups, 0);
  EXPECT_NE(server.MetricsJson().find("\"sharding\""), std::string::npos);
}

TEST(ShardServer, UnshardedSnapshotHasNoShardingBlock) {
  Rng rng(233);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> model = BuildMixedModel(spec, rng);
  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  serve::InferenceServer server(model, cfg);
  EXPECT_EQ(server.shard_plan(), nullptr);
  EXPECT_EQ(server.MetricsJson().find("\"sharding\""), std::string::npos);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Coordinated two-phase hot-swap
// ---------------------------------------------------------------------------

TEST(ShardSwap, HammerFourShardsEveryResponseOneGeneration) {
  Rng rng_a(239), rng_b(241);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> a = BuildMixedModel(spec, rng_a);
  std::shared_ptr<const DlrmModel> b = BuildMixedModel(spec, rng_b);
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  SyntheticCriteo data(data_cfg);

  const std::vector<serve::InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(8));
  const std::vector<float> ref_a = Reference(*a, reqs);
  const std::vector<float> ref_b = Reference(*b, reqs);

  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.governor.enabled = false;
  cfg.num_shards = 4;
  cfg.partition = PartitionStrategy::kRowRange;
  serve::InferenceServer server(a, cfg);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    int i = 0;
    while (!stop.load()) {
      server.SwapModel(++i % 2 == 0 ? a : b);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const size_t idx =
            static_cast<size_t>(p * kPerProducer + i) % reqs.size();
        const serve::InferenceResult res =
            server.Submit(CopyRequest(reqs[idx])).get();
        ASSERT_EQ(res.logits.size(), 1u);
        // Bitwise one fleet or the other: a logit matching neither means a
        // micro-batch fanned out over a torn mixed-generation fleet.
        if (res.logits[0] != ref_a[idx] && res.logits[0] != ref_b[idx]) {
          torn.fetch_add(1);
        }
        ASSERT_GE(res.model_generation, 1u);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true);
  swapper.join();

  EXPECT_EQ(torn.load(), 0);
  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_ok, int64_t{kProducers} * kPerProducer);
  EXPECT_EQ(snap.requests_failed, 0);  // typed outcomes only, no drops
  EXPECT_GT(snap.swaps_ok, 2);
  // With retention off (the default), per-generation counters partition the
  // total exactly, and every successful swap prepared a standby per shard.
  int64_t by_generation = 0;
  for (const auto& g : snap.generations) by_generation += g.requests_ok;
  EXPECT_EQ(by_generation, snap.requests_ok);
  ASSERT_EQ(snap.shards.size(), 4u);
  for (const serve::ShardSnapshot& s : snap.shards) {
    EXPECT_EQ(s.swaps_prepared, snap.swaps_ok);
  }
  server.Shutdown();
}

TEST(ShardSwap, RejectedPrepareKeepsIncumbentFleet) {
  Rng rng_a(251), rng_c(257);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> a = BuildMixedModel(spec, rng_a);
  DatasetSpec other = spec;
  other.table_rows[0] += 8;  // row-count mismatch: swap must be rejected
  std::shared_ptr<const DlrmModel> c = BuildMixedModel(other, rng_c);
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  SyntheticCriteo data(data_cfg);

  const std::vector<serve::InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(2));
  const std::vector<float> ref_a = Reference(*a, reqs);

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  cfg.num_shards = 2;
  serve::InferenceServer server(a, cfg);

  EXPECT_THROW(server.SwapModel(c), ConfigError);
  EXPECT_EQ(server.generation(), 1u);
  const serve::InferenceResult res = server.Submit(CopyRequest(reqs[0])).get();
  EXPECT_EQ(res.model_generation, 1u);
  EXPECT_EQ(res.logits[0], ref_a[0]);  // incumbent fleet untouched
  server.Shutdown();

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.swaps_rejected, 1);
  EXPECT_EQ(snap.swaps_ok, 0);
  for (const serve::ShardSnapshot& s : snap.shards) {
    EXPECT_EQ(s.swaps_prepared, 0);  // a rejected prepare is never counted
  }
}

// ---------------------------------------------------------------------------
// Generation-metric retention (the MetricsJson unbounded-growth fix)
// ---------------------------------------------------------------------------

TEST(ShardGenMetrics, RetentionPrunesRetiredGenerations) {
  serve::ServeMetrics m;
  m.SetGenerationRetention(2);
  for (uint64_t g = 1; g <= 5; ++g) {
    m.Generation(g)->ok.Add(static_cast<int64_t>(g));
    if (g > 1) m.RecordSwapOk(g);
  }
  const serve::ServeMetricsSnapshot snap = m.Snapshot();
  ASSERT_EQ(snap.generations.size(), 2u);
  EXPECT_EQ(snap.generations[0].generation, 4u);
  EXPECT_EQ(snap.generations[0].requests_ok, 4);
  EXPECT_EQ(snap.generations[1].generation, 5u);
  EXPECT_EQ(snap.generations[1].requests_ok, 5);
}

TEST(ShardGenMetrics, ZeroRetentionKeepsEveryGeneration) {
  serve::ServeMetrics m;  // retention defaults to 0 = unbounded
  for (uint64_t g = 1; g <= 5; ++g) {
    m.Generation(g)->ok.Add(1);
    if (g > 1) m.RecordSwapOk(g);
  }
  EXPECT_EQ(m.Snapshot().generations.size(), 5u);
}

TEST(ShardGenMetrics, PrunedBlockStaysRecordableForLaggingConsumers) {
  serve::ServeMetrics m;
  m.SetGenerationRetention(1);
  std::shared_ptr<serve::ServeMetrics::GenerationBlock> lagging =
      m.Generation(1);
  m.RecordSwapOk(2);   // generation 1 pruned from reporting
  m.Generation(2)->ok.Add(1);  // a consumer re-pins onto the new generation
  lagging->ok.Add(7);  // a consumer mid-batch on gen 1 — must not crash
  const serve::ServeMetricsSnapshot snap = m.Snapshot();
  ASSERT_EQ(snap.generations.size(), 1u);
  EXPECT_EQ(snap.generations[0].generation, 2u);
}

TEST(ShardGenMetrics, ServerPrunesRetiredBlocksFromMetricsJson) {
  Rng rng(263);
  const DatasetSpec spec = MixedSpec();
  std::shared_ptr<const DlrmModel> model = BuildMixedModel(spec, rng);
  SyntheticCriteoConfig data_cfg;
  data_cfg.spec = spec;
  SyntheticCriteo data(data_cfg);
  const std::vector<serve::InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(6));

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  cfg.keep_generation_metrics = 1;
  serve::InferenceServer server(model, cfg);
  for (int swap = 0; swap < 3; ++swap) {
    server.Submit(CopyRequest(reqs[static_cast<size_t>(swap)])).get();
    server.SwapModel(model);
  }
  server.Submit(CopyRequest(reqs[3])).get();
  server.Shutdown();

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_ok, 4);
  ASSERT_EQ(snap.generations.size(), 1u);  // only the serving generation
  EXPECT_EQ(snap.generations[0].generation, 4u);
}

}  // namespace
}  // namespace ttrec
