// TT shape algebra: factorization, parameter counts vs the paper's Table 2,
// mixed-radix row digits, validation failures.
#include <gtest/gtest.h>

#include <numeric>

#include "tensor/check.h"
#include "tt/tt_shapes.h"

namespace ttrec {
namespace {

TEST(FactorizeRows, CoversAndIsBalanced) {
  for (int64_t n : {1, 7, 100, 12345, 10131227, 40790948}) {
    for (int d : {2, 3, 4}) {
      const auto f = FactorizeRows(n, d);
      ASSERT_EQ(static_cast<int>(f.size()), d);
      int64_t prod = 1;
      for (int64_t x : f) prod *= x;
      EXPECT_GE(prod, n) << "n=" << n << " d=" << d;
      // Balanced: max/min ratio stays small.
      EXPECT_LE(f.back(), 2 * f.front() + 2) << "n=" << n << " d=" << d;
      // Sorted ascending.
      EXPECT_TRUE(std::is_sorted(f.begin(), f.end()));
      // Not wastefully large: product less than n * max_factor.
      EXPECT_LT(prod, (n + 1) * (f.back() + 1));
    }
  }
}

TEST(FactorizeCols, ExactProduct) {
  for (int64_t n : {16, 32, 64, 128, 12, 60}) {
    for (int d : {2, 3, 4}) {
      const auto f = FactorizeCols(n, d);
      ASSERT_EQ(static_cast<int>(f.size()), d);
      int64_t prod = 1;
      for (int64_t x : f) prod *= x;
      EXPECT_EQ(prod, n) << "n=" << n << " d=" << d;
    }
  }
}

TEST(FactorizeCols, Emb16ThreeCores) {
  // The paper's Table 2 column factors for dim 16 are (2, 2, 4).
  const auto f = FactorizeCols(16, 3);
  EXPECT_EQ(f, (std::vector<int64_t>{2, 2, 4}));
}

TEST(FactorizeCols, PrimeWithTrailingOnes) {
  const auto f = FactorizeCols(7, 3);
  int64_t prod = 1;
  for (int64_t x : f) prod *= x;
  EXPECT_EQ(prod, 7);
}

TEST(TtShape, RowDigitsRoundTrip) {
  TtShape s = MakeTtShape(1000, 16, 3, 8);
  for (int64_t row : {int64_t{0}, int64_t{1}, int64_t{499}, int64_t{999}}) {
    const auto digits = s.RowDigits(row);
    EXPECT_EQ(s.RowFromDigits(digits), row);
  }
  EXPECT_THROW(s.RowDigits(-1), IndexError);
  EXPECT_THROW(s.RowDigits(1000), IndexError);
}

TEST(TtShape, ParamCountFormula) {
  TtShape s = MakeTtShapeExplicit(10131227, 16, {200, 220, 250}, {2, 2, 4}, 16);
  // Matches the paper Table 2 row 1, R = 16: 135040 parameters.
  EXPECT_EQ(s.CoreParams(0), 1 * 200 * 2 * 16);
  EXPECT_EQ(s.CoreParams(1), 16 * 220 * 2 * 16);
  EXPECT_EQ(s.CoreParams(2), 16 * 250 * 4 * 1);
  EXPECT_EQ(s.TotalParams(), 135040);
  // Memory reduction ~1200x as in Table 2.
  EXPECT_NEAR(s.CompressionRatio(), 1200.0, 1.0);
}

// All 7 Kaggle tables from the paper's Table 2, all three ranks: parameter
// counts and memory reductions must match the published numbers.
struct Table2Row {
  int64_t rows;
  std::vector<int64_t> row_factors;
  int64_t rank;
  int64_t params;
  int64_t reduction;  // paper rounds down
};

class PaperTable2 : public ::testing::TestWithParam<Table2Row> {};

TEST_P(PaperTable2, MatchesPublishedNumbers) {
  const Table2Row& row = GetParam();
  TtShape s = MakeTtShapeExplicit(row.rows, 16, row.row_factors, {2, 2, 4},
                                  row.rank);
  EXPECT_EQ(s.TotalParams(), row.params);
  EXPECT_EQ(static_cast<int64_t>(s.CompressionRatio()), row.reduction);
}

INSTANTIATE_TEST_SUITE_P(
    KaggleTables, PaperTable2,
    ::testing::Values(
        Table2Row{10131227, {200, 220, 250}, 16, 135040, 1200},
        Table2Row{10131227, {200, 220, 250}, 32, 495360, 327},
        Table2Row{10131227, {200, 220, 250}, 64, 1891840, 85},
        Table2Row{8351593, {200, 200, 209}, 16, 122176, 1093},
        Table2Row{8351593, {200, 200, 209}, 32, 449152, 297},
        Table2Row{7046547, {200, 200, 200}, 16, 121600, 927},
        Table2Row{7046547, {200, 200, 200}, 64, 1715200, 65},
        Table2Row{5461306, {166, 175, 188}, 32, 393088, 222},
        Table2Row{2202608, {125, 130, 136}, 16, 79264, 444},
        Table2Row{286181, {53, 72, 75}, 32, 160448, 28},
        Table2Row{142572, {50, 52, 55}, 64, 446464, 5}));

TEST(TtShape, ValidationFailures) {
  // Col product mismatch.
  EXPECT_THROW(MakeTtShapeExplicit(100, 16, {5, 5, 5}, {2, 2, 2}, 4),
               ConfigError);
  // Row product too small.
  EXPECT_THROW(MakeTtShapeExplicit(1000, 16, {5, 5, 5}, {2, 2, 4}, 4),
               ConfigError);
  // Bad rank.
  EXPECT_THROW(MakeTtShape(100, 16, 3, 0), ConfigError);
  // Single core not allowed.
  TtShape s;
  s.num_rows = 10;
  s.emb_dim = 4;
  s.row_factors = {10};
  s.col_factors = {4};
  s.ranks = {1, 1};
  EXPECT_THROW(s.Validate(), ConfigError);
}

TEST(TtShape, CompressionGrowsWithRowsShrinksWithRank) {
  const double c_small = MakeTtShape(100000, 16, 3, 32).CompressionRatio();
  const double c_large = MakeTtShape(10000000, 16, 3, 32).CompressionRatio();
  EXPECT_GT(c_large, c_small);
  const double c_r8 = MakeTtShape(10000000, 16, 3, 8).CompressionRatio();
  const double c_r64 = MakeTtShape(10000000, 16, 3, 64).CompressionRatio();
  EXPECT_GT(c_r8, c_r64);
}

TEST(TtShape, ToStringMentionsShape) {
  TtShape s = MakeTtShape(1000, 16, 3, 8);
  const std::string str = s.ToString();
  EXPECT_NE(str.find("1000x16"), std::string::npos);
  EXPECT_NE(str.find("reduction"), std::string::npos);
}

}  // namespace
}  // namespace ttrec
