// Fault-injection utilities for the crash-safety and self-healing tests.
//
// Three fault families, matching the failure modes the checkpoint and
// trainer hardening defends against:
//   - file faults: truncation (torn write / crash mid-save) and byte
//     flips (media corruption) applied to an on-disk snapshot;
//   - stream faults: an ostream that starts failing after a byte budget
//     (disk full), driving the writer's error paths;
//   - gradient faults: an EmbeddingOp wrapper that poisons grad_output
//     with NaNs on chosen Backward calls (a flipped bit in an
//     accumulator), driving the non-finite-gradient guard.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <utility>
#include <vector>

#include "dlrm/embedding_op.h"
#include "tensor/check.h"

namespace ttrec {
namespace testing {

inline uint64_t FileSize(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  TTREC_CHECK(is.is_open(), "FileSize: cannot open ", path);
  return static_cast<uint64_t>(is.tellg());
}

/// Truncates `path` to its first `bytes` bytes (a torn write: the process
/// died mid-save, or the filesystem lost the tail).
inline void TruncateFileAt(const std::string& path, uint64_t bytes) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "TruncateFileAt: cannot open ", path);
  std::vector<char> head(static_cast<size_t>(bytes));
  is.read(head.data(), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(is.gcount() == static_cast<std::streamsize>(bytes),
              "TruncateFileAt: file shorter than ", bytes, " bytes");
  is.close();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(head.data(), static_cast<std::streamsize>(head.size()));
  TTREC_CHECK(os.good(), "TruncateFileAt: rewrite failed");
}

/// XORs `mask` into the byte at `offset` (a single flipped bit or burst
/// error on the storage medium).
inline void FlipByte(const std::string& path, uint64_t offset,
                     unsigned char mask = 0x40) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  TTREC_CHECK(f.is_open(), "FlipByte: cannot open ", path);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  TTREC_CHECK(f.gcount() == 1, "FlipByte: offset ", offset, " past EOF");
  c = static_cast<char>(c ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  TTREC_CHECK(f.good(), "FlipByte: write-back failed");
}

/// Streambuf that accepts `budget` bytes and then fails every write —
/// the disk filled up mid-checkpoint.
class FailAfterStreambuf : public std::streambuf {
 public:
  explicit FailAfterStreambuf(uint64_t budget) : budget_(budget) {}

 protected:
  int_type overflow(int_type ch) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    if (static_cast<uint64_t>(n) > budget_) {
      budget_ = 0;
      return 0;  // short write -> stream enters the fail state
    }
    budget_ -= static_cast<uint64_t>(n);
    return n;
  }

 private:
  uint64_t budget_;
};

/// EmbeddingOp decorator that replaces grad_output with NaNs on the
/// `fault_on_call`-th Backward (0-based), then behaves normally again —
/// a transient hardware fault. Everything else delegates, including
/// Name(), so checkpoints of a wrapped model stay format-identical.
class NanGradInjector : public EmbeddingOp {
 public:
  NanGradInjector(std::unique_ptr<EmbeddingOp> inner, int64_t fault_on_call)
      : inner_(std::move(inner)), fault_on_call_(fault_on_call) {}

  void Forward(const CsrBatch& batch, float* output) override {
    inner_->Forward(batch, output);
  }
  void Backward(const CsrBatch& batch, const float* grad_output) override {
    if (backward_calls_++ == fault_on_call_) {
      const std::vector<float> poisoned(
          static_cast<size_t>(batch.num_bags() * emb_dim()),
          std::numeric_limits<float>::quiet_NaN());
      inner_->Backward(batch, poisoned.data());
      return;
    }
    inner_->Backward(batch, grad_output);
  }
  void ApplySgd(float lr) override { inner_->ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    inner_->ApplyUpdate(opt);
  }
  void SaveState(BinaryWriter& w) const override { inner_->SaveState(w); }
  void LoadState(BinaryReader& r) override { inner_->LoadState(r); }
  void SaveOptState(BinaryWriter& w) const override {
    inner_->SaveOptState(w);
  }
  void LoadOptState(BinaryReader& r) override { inner_->LoadOptState(r); }
  void ZeroGrad() override { inner_->ZeroGrad(); }
  double GradSqNorm() const override { return inner_->GradSqNorm(); }
  void ScaleGrads(float scale) override { inner_->ScaleGrads(scale); }
  int64_t num_rows() const override { return inner_->num_rows(); }
  int64_t emb_dim() const override { return inner_->emb_dim(); }
  int64_t MemoryBytes() const override { return inner_->MemoryBytes(); }
  std::string Name() const override { return inner_->Name(); }

  int64_t backward_calls() const { return backward_calls_; }

 private:
  std::unique_ptr<EmbeddingOp> inner_;
  int64_t fault_on_call_;
  int64_t backward_calls_ = 0;
};

}  // namespace testing
}  // namespace ttrec
