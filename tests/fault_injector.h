// Fault-injection utilities for the crash-safety, self-healing, and
// overload tests.
//
// Five fault families, matching the failure modes the checkpoint, trainer,
// and serving hardening defends against:
//   - file faults: truncation (torn write / crash mid-save) and byte
//     flips (media corruption) applied to an on-disk snapshot;
//   - stream faults: an ostream that starts failing after a byte budget
//     (disk full), driving the writer's error paths;
//   - gradient faults: an EmbeddingOp wrapper that poisons grad_output
//     with NaNs on chosen Backward calls (a flipped bit in an
//     accumulator), driving the non-finite-gradient guard;
//   - latency faults: an EmbeddingOp wrapper that slows or fully stalls
//     lookups (a degraded replica, a page-cache miss storm), driving the
//     load governor and deadline paths;
//   - load faults: an open-loop request generator that overruns serving
//     capacity on purpose and classifies every future's outcome.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dlrm/embedding_op.h"
#include "serve/inference_server.h"
#include "serve/serve_errors.h"
#include "tensor/check.h"

namespace ttrec {
namespace testing {

inline uint64_t FileSize(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  TTREC_CHECK(is.is_open(), "FileSize: cannot open ", path);
  return static_cast<uint64_t>(is.tellg());
}

/// Truncates `path` to its first `bytes` bytes (a torn write: the process
/// died mid-save, or the filesystem lost the tail).
inline void TruncateFileAt(const std::string& path, uint64_t bytes) {
  std::ifstream is(path, std::ios::binary);
  TTREC_CHECK(is.is_open(), "TruncateFileAt: cannot open ", path);
  std::vector<char> head(static_cast<size_t>(bytes));
  is.read(head.data(), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(is.gcount() == static_cast<std::streamsize>(bytes),
              "TruncateFileAt: file shorter than ", bytes, " bytes");
  is.close();
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(head.data(), static_cast<std::streamsize>(head.size()));
  TTREC_CHECK(os.good(), "TruncateFileAt: rewrite failed");
}

/// XORs `mask` into the byte at `offset` (a single flipped bit or burst
/// error on the storage medium).
inline void FlipByte(const std::string& path, uint64_t offset,
                     unsigned char mask = 0x40) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  TTREC_CHECK(f.is_open(), "FlipByte: cannot open ", path);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  TTREC_CHECK(f.gcount() == 1, "FlipByte: offset ", offset, " past EOF");
  c = static_cast<char>(c ^ mask);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
  TTREC_CHECK(f.good(), "FlipByte: write-back failed");
}

/// Streambuf that accepts `budget` bytes and then fails every write —
/// the disk filled up mid-checkpoint.
class FailAfterStreambuf : public std::streambuf {
 public:
  explicit FailAfterStreambuf(uint64_t budget) : budget_(budget) {}

 protected:
  int_type overflow(int_type ch) override {
    if (budget_ == 0) return traits_type::eof();
    --budget_;
    return ch;
  }
  std::streamsize xsputn(const char* /*s*/, std::streamsize n) override {
    if (static_cast<uint64_t>(n) > budget_) {
      budget_ = 0;
      return 0;  // short write -> stream enters the fail state
    }
    budget_ -= static_cast<uint64_t>(n);
    return n;
  }

 private:
  uint64_t budget_;
};

/// EmbeddingOp decorator that replaces grad_output with NaNs on the
/// `fault_on_call`-th Backward (0-based), then behaves normally again —
/// a transient hardware fault. Everything else delegates, including
/// Name(), so checkpoints of a wrapped model stay format-identical.
class NanGradInjector : public EmbeddingOp {
 public:
  NanGradInjector(std::unique_ptr<EmbeddingOp> inner, int64_t fault_on_call)
      : inner_(std::move(inner)), fault_on_call_(fault_on_call) {}

  void Forward(const CsrBatch& batch, float* output) override {
    inner_->Forward(batch, output);
  }
  void Backward(const CsrBatch& batch, const float* grad_output) override {
    if (backward_calls_++ == fault_on_call_) {
      const std::vector<float> poisoned(
          static_cast<size_t>(batch.num_bags() * emb_dim()),
          std::numeric_limits<float>::quiet_NaN());
      inner_->Backward(batch, poisoned.data());
      return;
    }
    inner_->Backward(batch, grad_output);
  }
  void ApplySgd(float lr) override { inner_->ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    inner_->ApplyUpdate(opt);
  }
  void SaveState(BinaryWriter& w) const override { inner_->SaveState(w); }
  void LoadState(BinaryReader& r) override { inner_->LoadState(r); }
  void SaveOptState(BinaryWriter& w) const override {
    inner_->SaveOptState(w);
  }
  void LoadOptState(BinaryReader& r) override { inner_->LoadOptState(r); }
  void ZeroGrad() override { inner_->ZeroGrad(); }
  double GradSqNorm() const override { return inner_->GradSqNorm(); }
  void ScaleGrads(float scale) override { inner_->ScaleGrads(scale); }
  int64_t num_rows() const override { return inner_->num_rows(); }
  int64_t emb_dim() const override { return inner_->emb_dim(); }
  int64_t MemoryBytes() const override { return inner_->MemoryBytes(); }
  std::string Name() const override { return inner_->Name(); }

  int64_t backward_calls() const { return backward_calls_; }

 private:
  std::unique_ptr<EmbeddingOp> inner_;
  int64_t fault_on_call_;
  int64_t backward_calls_ = 0;
};

/// EmbeddingOp decorator that delays (or fully stalls) every lookup — a
/// degraded replica whose consumer drains slower than producers submit.
/// Overrides the serving path (ForwardInference) as well as the training
/// one, so overload tests can pin the queue's drain rate precisely; the
/// delay and stall gate are adjustable mid-flight from the test thread.
class SlowEmbeddingInjector : public EmbeddingOp {
 public:
  SlowEmbeddingInjector(std::unique_ptr<EmbeddingOp> inner,
                        std::chrono::microseconds delay)
      : inner_(std::move(inner)), delay_us_(delay.count()) {}

  void set_delay(std::chrono::microseconds delay) {
    delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

  /// While stalled, every lookup blocks until set_stalled(false) — the
  /// consumer is wedged, not merely slow. Releasing wakes all waiters.
  void set_stalled(bool stalled) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stalled_ = stalled;
    }
    cv_.notify_all();
  }

  int64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  void Forward(const CsrBatch& batch, float* output) override {
    Delay();
    inner_->Forward(batch, output);
  }
  void ForwardInference(const CsrBatch& batch,
                        float* output) const override {
    Delay();
    inner_->ForwardInference(batch, output);
  }
  void Backward(const CsrBatch& batch, const float* grad_output) override {
    inner_->Backward(batch, grad_output);
  }
  void ApplySgd(float lr) override { inner_->ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    inner_->ApplyUpdate(opt);
  }
  void SaveState(BinaryWriter& w) const override { inner_->SaveState(w); }
  void LoadState(BinaryReader& r) override { inner_->LoadState(r); }
  void SaveOptState(BinaryWriter& w) const override {
    inner_->SaveOptState(w);
  }
  void LoadOptState(BinaryReader& r) override { inner_->LoadOptState(r); }
  void ZeroGrad() override { inner_->ZeroGrad(); }
  double GradSqNorm() const override { return inner_->GradSqNorm(); }
  void ScaleGrads(float scale) override { inner_->ScaleGrads(scale); }
  void CollectStats(obs::MetricRegistry& reg) const override {
    inner_->CollectStats(reg);
  }
  void ResetStats() override { inner_->ResetStats(); }
  int64_t num_rows() const override { return inner_->num_rows(); }
  int64_t emb_dim() const override { return inner_->emb_dim(); }
  int64_t MemoryBytes() const override { return inner_->MemoryBytes(); }
  int64_t WorkspaceBytes(int num_threads = 0) const override {
    return inner_->WorkspaceBytes(num_threads);
  }
  std::string Name() const override { return inner_->Name(); }

 private:
  void Delay() const {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !stalled_; });
    }
    const int64_t us = delay_us_.load(std::memory_order_relaxed);
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
  }

  std::unique_ptr<EmbeddingOp> inner_;
  std::atomic<int64_t> delay_us_;
  mutable std::atomic<int64_t> lookups_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  bool stalled_ = false;
};

/// Where every future of an overload run ended up. The overload contract
/// under test: ok + shed + deadline + shutdown == submitted (each request
/// resolves exactly once with a typed outcome — no hangs, no leaks) and
/// other == 0.
struct OverloadOutcome {
  int64_t submitted = 0;
  int64_t ok = 0;        // logits delivered
  int64_t shed = 0;      // ServerOverloaded
  int64_t deadline = 0;  // DeadlineExceeded
  int64_t shutdown = 0;  // ServerShutdown
  int64_t other = 0;     // anything else — a test failure when nonzero

  int64_t resolved() const { return ok + shed + deadline + shutdown + other; }

  void Merge(const OverloadOutcome& o) {
    submitted += o.submitted;
    ok += o.ok;
    shed += o.shed;
    deadline += o.deadline;
    shutdown += o.shutdown;
    other += o.other;
  }
};

/// Open-loop load: `num_threads` producers each fire `requests_per_thread`
/// Submits back-to-back (no pacing, no reaction to rejections — the
/// clients that actually melt servers), then harvest every future. The
/// factory runs on the producer thread per request; use it to vary
/// payloads or attach deadlines.
class OverloadGenerator {
 public:
  using RequestFactory = std::function<serve::InferenceRequest()>;

  OverloadGenerator(serve::InferenceServer& server, RequestFactory factory)
      : server_(server), factory_(std::move(factory)) {
    TTREC_CHECK(factory_ != nullptr, "OverloadGenerator: factory required");
  }

  OverloadOutcome Run(int num_threads, int requests_per_thread) {
    OverloadOutcome total;
    std::mutex merge_mu;
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        OverloadOutcome mine;
        std::vector<std::future<serve::InferenceResult>> futures;
        futures.reserve(static_cast<size_t>(requests_per_thread));
        for (int i = 0; i < requests_per_thread; ++i) {
          futures.push_back(server_.Submit(factory_()));
          ++mine.submitted;
        }
        for (auto& f : futures) {
          try {
            f.get();
            ++mine.ok;
          } catch (const serve::ServerOverloaded&) {
            ++mine.shed;
          } catch (const serve::DeadlineExceeded&) {
            ++mine.deadline;
          } catch (const serve::ServerShutdown&) {
            ++mine.shutdown;
          } catch (...) {
            ++mine.other;
          }
        }
        std::lock_guard<std::mutex> lock(merge_mu);
        total.Merge(mine);
      });
    }
    for (std::thread& t : threads) t.join();
    return total;
  }

 private:
  serve::InferenceServer& server_;
  RequestFactory factory_;
};

}  // namespace testing
}  // namespace ttrec
