// MLP layers: forward shapes, gradient checks against finite differences,
// SGD semantics, and interaction/loss gradient checks.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dlrm/interaction.h"
#include "dlrm/loss.h"
#include "dlrm/mlp.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

std::vector<float> RandomVec(Rng& rng, int64_t n, double scale = 1.0) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-scale, scale));
  return v;
}

TEST(LinearLayer, ForwardMatchesManual) {
  Rng rng(1);
  LinearLayer layer(2, 3, /*relu=*/false, rng);
  layer.weight().Fill(0.0f);
  layer.weight().at({0, 0}) = 1.0f;  // y0 = x0
  layer.weight().at({1, 1}) = 2.0f;  // y1 = 2 x1
  layer.weight().at({2, 0}) = 1.0f;  // y2 = x0 + x1 + b2
  layer.weight().at({2, 1}) = 1.0f;
  layer.bias().Fill(0.0f);
  layer.bias().at({2}) = 0.5f;

  std::vector<float> x = {1.0f, 2.0f, -1.0f, 0.0f};
  std::vector<float> y(6);
  layer.Forward(x.data(), 2, y.data());
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 4.0f);
  EXPECT_FLOAT_EQ(y[2], 3.5f);
  EXPECT_FLOAT_EQ(y[3], -1.0f);
  EXPECT_FLOAT_EQ(y[4], 0.0f);
  EXPECT_FLOAT_EQ(y[5], -0.5f);
}

TEST(LinearLayer, ReluClampsAndGates) {
  Rng rng(2);
  LinearLayer layer(1, 1, /*relu=*/true, rng);
  layer.weight().at({0, 0}) = 1.0f;
  layer.bias().at({0}) = 0.0f;
  std::vector<float> x = {-2.0f};
  std::vector<float> y(1);
  layer.Forward(x.data(), 1, y.data());
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  // Gradient through a dead unit is zero.
  std::vector<float> dy = {1.0f}, dx(1, -9.0f);
  layer.Backward(dy.data(), 1, dx.data());
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(layer.weight_grad()[0], 0.0f);
}

class MlpGradSweep : public ::testing::TestWithParam<
                         std::tuple<int64_t, int64_t, int64_t, bool>> {};

TEST_P(MlpGradSweep, FiniteDifferenceCheck) {
  const auto [in_dim, hidden, batch, final_relu] = GetParam();
  Rng rng(static_cast<uint64_t>(in_dim * 13 + hidden * 7 + batch));
  Mlp mlp({in_dim, hidden, 3}, final_relu, rng);
  std::vector<float> x = RandomVec(rng, batch * in_dim);
  std::vector<float> g = RandomVec(rng, batch * 3);

  auto loss = [&]() {
    std::vector<float> y(static_cast<size_t>(batch * 3));
    mlp.Forward(x.data(), batch, y.data());
    double s = 0.0;
    for (size_t i = 0; i < y.size(); ++i) s += static_cast<double>(g[i]) * y[i];
    return s;
  };
  (void)loss();  // prime caches
  std::vector<float> dx(static_cast<size_t>(batch * in_dim));
  mlp.Backward(g.data(), batch, dx.data());

  const double eps = 1e-3;
  // Check dX entries.
  Rng pick(7);
  for (int trial = 0; trial < 4; ++trial) {
    const int64_t i = pick.RandInt(batch * in_dim);
    const float orig = x[static_cast<size_t>(i)];
    x[static_cast<size_t>(i)] = orig + static_cast<float>(eps);
    const double lp = loss();
    x[static_cast<size_t>(i)] = orig - static_cast<float>(eps);
    const double lm = loss();
    x[static_cast<size_t>(i)] = orig;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[static_cast<size_t>(i)], fd, 5e-2 * (std::abs(fd) + 1.0));
  }
  // Check a few weight entries of each layer.
  (void)loss();
  mlp.ZeroGrad();
  mlp.Backward(g.data(), batch, nullptr);
  for (int l = 0; l < mlp.num_layers(); ++l) {
    Tensor& w = mlp.layer(l).weight();
    const Tensor& dw = mlp.layer(l).weight_grad();
    for (int trial = 0; trial < 3; ++trial) {
      const int64_t i = pick.RandInt(w.numel());
      const float orig = w[i];
      w[i] = orig + static_cast<float>(eps);
      const double lp = loss();
      w[i] = orig - static_cast<float>(eps);
      const double lm = loss();
      w[i] = orig;
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(dw[i], fd, 5e-2 * (std::abs(fd) + 1.0))
          << "layer " << l << " entry " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MlpGradSweep,
    ::testing::Combine(::testing::Values(2, 5), ::testing::Values(3, 8),
                       ::testing::Values(1, 4), ::testing::Bool()));

TEST(Mlp, SgdReducesRegressionLoss) {
  Rng rng(5);
  Mlp mlp({4, 16, 2}, /*final_relu=*/false, rng);
  std::vector<float> x = RandomVec(rng, 8 * 4);
  std::vector<float> target = RandomVec(rng, 8 * 2);
  double first = -1.0, last = -1.0;
  for (int step = 0; step < 300; ++step) {
    std::vector<float> y(16);
    mlp.Forward(x.data(), 8, y.data());
    std::vector<float> dy(16);
    double loss = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      const float d = y[i] - target[i];
      loss += 0.5 * d * d;
      dy[i] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    mlp.Backward(dy.data(), 8, nullptr);
    mlp.ApplySgd(0.02f);
  }
  EXPECT_LT(last, 0.05 * first);
}

TEST(Mlp, RejectsBadConfigAndBatchMismatch) {
  Rng rng(6);
  EXPECT_THROW(Mlp({4}, false, rng), ConfigError);
  Mlp mlp({2, 2}, false, rng);
  std::vector<float> x(4), y(4), dy(6);
  mlp.Forward(x.data(), 2, y.data());
  EXPECT_THROW(mlp.Backward(dy.data(), 3, nullptr), TtRecError);
}

TEST(Mlp, ParamCountFormula) {
  Rng rng(7);
  Mlp mlp({13, 64, 16}, true, rng);
  EXPECT_EQ(mlp.NumParams(), 13 * 64 + 64 + 64 * 16 + 16);
  EXPECT_EQ(mlp.MemoryBytes(), mlp.NumParams() * 4);
}

// ---------------------------------------------------------------------------
// DotInteraction
// ---------------------------------------------------------------------------

TEST(DotInteraction, ForwardHandComputed) {
  DotInteraction inter(3, 2);
  EXPECT_EQ(inter.num_pairs(), 3);
  EXPECT_EQ(inter.out_dim(), 2 + 3);
  // One sample: z0=(1,2), z1=(3,4), z2=(-1,0).
  std::vector<float> z0 = {1, 2}, z1 = {3, 4}, z2 = {-1, 0};
  std::vector<const float*> feats = {z0.data(), z1.data(), z2.data()};
  std::vector<float> out(5);
  inter.Forward(feats, 1, out.data());
  EXPECT_FLOAT_EQ(out[0], 1.0f);
  EXPECT_FLOAT_EQ(out[1], 2.0f);
  EXPECT_FLOAT_EQ(out[2], 11.0f);  // z0.z1
  EXPECT_FLOAT_EQ(out[3], -1.0f);  // z0.z2
  EXPECT_FLOAT_EQ(out[4], -3.0f);  // z1.z2
}

TEST(DotInteraction, BackwardFiniteDifference) {
  const int F = 4;
  const int64_t d = 3, B = 2;
  DotInteraction inter(F, d);
  Rng rng(9);
  std::vector<std::vector<float>> feats(static_cast<size_t>(F));
  std::vector<const float*> fptrs;
  for (int f = 0; f < F; ++f) {
    feats[static_cast<size_t>(f)] = RandomVec(rng, B * d);
    fptrs.push_back(feats[static_cast<size_t>(f)].data());
  }
  std::vector<float> g = RandomVec(rng, B * inter.out_dim());

  auto loss = [&]() {
    std::vector<float> out(static_cast<size_t>(B * inter.out_dim()));
    inter.Forward(fptrs, B, out.data());
    double s = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(g[i]) * out[i];
    }
    return s;
  };
  (void)loss();
  std::vector<std::vector<float>> grads(static_cast<size_t>(F));
  std::vector<float*> gptrs;
  for (int f = 0; f < F; ++f) {
    grads[static_cast<size_t>(f)].resize(static_cast<size_t>(B * d));
    gptrs.push_back(grads[static_cast<size_t>(f)].data());
  }
  inter.Backward(g.data(), B, gptrs);

  const double eps = 1e-3;
  Rng pick(10);
  for (int f = 0; f < F; ++f) {
    for (int trial = 0; trial < 3; ++trial) {
      const int64_t i = pick.RandInt(B * d);
      float& slot = feats[static_cast<size_t>(f)][static_cast<size_t>(i)];
      const float orig = slot;
      slot = orig + static_cast<float>(eps);
      const double lp = loss();
      slot = orig - static_cast<float>(eps);
      const double lm = loss();
      slot = orig;
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grads[static_cast<size_t>(f)][static_cast<size_t>(i)], fd,
                  5e-2 * (std::abs(fd) + 1.0));
    }
  }
}

TEST(DotInteraction, Validation) {
  DotInteraction inter(2, 2);
  std::vector<float> z(4);
  std::vector<const float*> one = {z.data()};
  std::vector<float> out(8);
  EXPECT_THROW(inter.Forward(one, 1, out.data()), ShapeError);
  EXPECT_THROW(DotInteraction(0, 2), ConfigError);
}

// ---------------------------------------------------------------------------
// Loss and metrics
// ---------------------------------------------------------------------------

TEST(BceWithLogits, MatchesClosedFormAndGradient) {
  std::vector<float> logits = {0.0f, 2.0f, -3.0f};
  std::vector<float> labels = {1.0f, 0.0f, 1.0f};
  std::vector<float> grad(3);
  const double loss = BceWithLogits(logits, labels, grad.data());
  auto bce = [](double x, double y) {
    const double p = 1.0 / (1.0 + std::exp(-x));
    return -(y * std::log(p) + (1 - y) * std::log(1 - p));
  };
  const double expected =
      (bce(0, 1) + bce(2, 0) + bce(-3, 1)) / 3.0;
  EXPECT_NEAR(loss, expected, 1e-9);
  for (int i = 0; i < 3; ++i) {
    const double sig = 1.0 / (1.0 + std::exp(-logits[static_cast<size_t>(i)]));
    EXPECT_NEAR(grad[static_cast<size_t>(i)],
                (sig - labels[static_cast<size_t>(i)]) / 3.0, 1e-7);
  }
}

TEST(BceWithLogits, StableAtExtremeLogits) {
  std::vector<float> logits = {100.0f, -100.0f};
  std::vector<float> labels = {1.0f, 0.0f};
  const double loss = BceWithLogits(logits, labels, nullptr);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-6);
  EXPECT_THROW(
      BceWithLogits(logits, std::vector<float>{0.5f, 0.0f}, nullptr),
      TtRecError);
}

TEST(BinaryAccuracy, ThresholdAtZeroLogit) {
  std::vector<float> logits = {1.0f, -1.0f, 0.5f, -0.5f};
  std::vector<float> labels = {1.0f, 0.0f, 0.0f, 1.0f};
  EXPECT_DOUBLE_EQ(BinaryAccuracy(logits, labels), 0.5);
}

TEST(AucRoc, PerfectAndRandomAndTies) {
  std::vector<float> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(
      AucRoc(std::vector<float>{0.9f, 0.1f, 0.8f, 0.2f}, labels), 1.0);
  EXPECT_DOUBLE_EQ(
      AucRoc(std::vector<float>{0.1f, 0.9f, 0.2f, 0.8f}, labels), 0.0);
  // All-ties: 0.5.
  EXPECT_DOUBLE_EQ(
      AucRoc(std::vector<float>{0.5f, 0.5f, 0.5f, 0.5f}, labels), 0.5);
  // Single class: 0.5 by convention.
  EXPECT_DOUBLE_EQ(AucRoc(std::vector<float>{0.1f, 0.9f},
                          std::vector<float>{1.0f, 1.0f}),
                   0.5);
}

}  // namespace
}  // namespace ttrec
