// Dataset specs, synthetic Criteo generator, trace utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "data/criteo_synth.h"
#include "data/table_specs.h"
#include "data/trace.h"
#include "tensor/check.h"
#include "tensor/stats.h"

namespace ttrec {
namespace {

TEST(TableSpecs, KaggleMatchesPaper) {
  const DatasetSpec& spec = KaggleSpec();
  EXPECT_EQ(spec.num_tables(), 26);
  EXPECT_EQ(spec.num_dense, 13);
  // Total model size at dim 16 is ~2.16 GB (paper §6): 26 tables, ~33.76M
  // rows, 4-byte floats.
  const double gb = static_cast<double>(spec.TotalEmbeddingParams(16)) * 4.0 /
                    (1e9);
  EXPECT_NEAR(gb, 2.16, 0.1);
  // The 7 largest tables are the paper's Table 2 set and hold ~99% of it.
  const auto top7 = spec.LargestTables(7);
  int64_t top_params = 0;
  for (int t : top7) top_params += spec.table_rows[static_cast<size_t>(t)];
  EXPECT_GT(static_cast<double>(top_params) /
                static_cast<double>(spec.TotalEmbeddingParams(1)),
            0.99);
  EXPECT_EQ(spec.table_rows[static_cast<size_t>(top7[0])], 10131227);
  EXPECT_EQ(spec.table_rows[static_cast<size_t>(top7[6])], 142572);
}

TEST(TableSpecs, TerabyteMatchesPaperScale) {
  const DatasetSpec& spec = TerabyteSpec();
  EXPECT_EQ(spec.num_tables(), 26);
  // ~12.57 GB at dim 16 (paper §6).
  const double gb = static_cast<double>(spec.TotalEmbeddingParams(16)) * 4.0 /
                    (1e9);
  EXPECT_NEAR(gb, 12.57, 0.7);
}

TEST(TableSpecs, LargestTablesSortedDescending) {
  const auto top = KaggleSpec().LargestTables(26);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(KaggleSpec().table_rows[static_cast<size_t>(top[i - 1])],
              KaggleSpec().table_rows[static_cast<size_t>(top[i])]);
  }
  EXPECT_THROW(KaggleSpec().LargestTables(27), ConfigError);
}

TEST(TableSpecs, ScaledDividesWithFloor) {
  const DatasetSpec scaled = KaggleSpec().Scaled(1000);
  EXPECT_EQ(scaled.table_rows[2], 10131227 / 1000);
  EXPECT_EQ(scaled.table_rows[8], 4);  // tiny table clamped to 4
  EXPECT_THROW(KaggleSpec().Scaled(0), ConfigError);
}

TEST(TableSpecs, PaperRowFactorsCoverTable2) {
  for (int64_t rows : {10131227, 8351593, 7046547, 5461306, 2202608, 286181,
                       142572}) {
    const auto f = PaperRowFactors(rows);
    ASSERT_EQ(f.size(), 3u) << rows;
    EXPECT_GE(f[0] * f[1] * f[2], rows);
  }
  EXPECT_TRUE(PaperRowFactors(999).empty());
}

SyntheticCriteoConfig SmallSynthConfig() {
  SyntheticCriteoConfig cfg;
  cfg.spec = KaggleSpec().Scaled(10000);
  cfg.seed = 321;
  return cfg;
}

TEST(SyntheticCriteo, BatchGeometry) {
  SyntheticCriteo data(SmallSynthConfig());
  MiniBatch b = data.NextBatch(32);
  EXPECT_EQ(b.batch_size(), 32);
  EXPECT_EQ(b.dense.dim(0), 32);
  EXPECT_EQ(b.dense.dim(1), 13);
  ASSERT_EQ(static_cast<int>(b.sparse.size()), 26);
  for (int t = 0; t < 26; ++t) {
    EXPECT_EQ(b.sparse[static_cast<size_t>(t)].num_bags(), 32);
    EXPECT_EQ(b.sparse[static_cast<size_t>(t)].num_lookups(), 32);  // P = 1
    EXPECT_NO_THROW(b.sparse[static_cast<size_t>(t)].Validate(
        data.config().spec.table_rows[static_cast<size_t>(t)]));
  }
  for (float y : b.labels) EXPECT_TRUE(y == 0.0f || y == 1.0f);
}

TEST(SyntheticCriteo, PoolingFactorControlsLookups) {
  SyntheticCriteoConfig cfg = SmallSynthConfig();
  cfg.pooling_factor = 10;
  SyntheticCriteo data(cfg);
  MiniBatch b = data.NextBatch(8);
  for (const CsrBatch& cb : b.sparse) {
    EXPECT_EQ(cb.num_bags(), 8);
    EXPECT_EQ(cb.num_lookups(), 80);
  }
}

TEST(SyntheticCriteo, EvalBatchesDeterministicAndDisjointFromTrain) {
  SyntheticCriteo a(SmallSynthConfig());
  SyntheticCriteo b(SmallSynthConfig());
  (void)a.NextBatch(16);  // advance a's training stream only
  MiniBatch ea = a.EvalBatch(16, 7);
  MiniBatch eb = b.EvalBatch(16, 7);
  EXPECT_EQ(ea.labels, eb.labels);
  EXPECT_EQ(ea.sparse[0].indices, eb.sparse[0].indices);
  EXPECT_LT(MaxAbsDiff(ea.dense, eb.dense), 1e-9);
  // Different eval seed -> different batch.
  MiniBatch ec = b.EvalBatch(16, 8);
  EXPECT_NE(ea.sparse[0].indices, ec.sparse[0].indices);
}

TEST(SyntheticCriteo, IndicesAreZipfSkewed) {
  SyntheticCriteoConfig cfg = SmallSynthConfig();
  cfg.zipf_exponent = 1.2;
  SyntheticCriteo data(cfg);
  // Table 2 (largest): collect index frequencies over many samples.
  std::unordered_map<int64_t, int64_t> counts;
  for (int i = 0; i < 40; ++i) {
    MiniBatch b = data.NextBatch(256);
    for (int64_t idx : b.sparse[2].indices) ++counts[idx];
  }
  // Skew: the most frequent index should hold far more than the uniform
  // share of 10240 / ~1013 rows ~ 10.
  int64_t max_count = 0;
  for (const auto& [k, v] : counts) max_count = std::max(max_count, v);
  EXPECT_GT(max_count, 500);
  // And the support should be much narrower than the table.
  EXPECT_LT(static_cast<int64_t>(counts.size()),
            data.config().spec.table_rows[2]);
}

TEST(SyntheticCriteo, TeacherValuesDeterministicBounded) {
  SyntheticCriteo data(SmallSynthConfig());
  for (int64_t row : {int64_t{0}, int64_t{1}, int64_t{3}}) {
    const double v = data.TeacherValue(0, row);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
    EXPECT_EQ(v, data.TeacherValue(0, row));
  }
  EXPECT_THROW(data.TeacherValue(-1, 0), IndexError);
  EXPECT_THROW(data.TeacherValue(0, int64_t{1} << 40), IndexError);
}

TEST(SyntheticCriteo, LabelsCorrelateWithTeacherLogit) {
  // The generator must produce learnable labels: empirical click rate
  // conditioned on a positive teacher logit must exceed that on a negative
  // one.
  SyntheticCriteoConfig cfg = SmallSynthConfig();
  cfg.teacher_scale = 3.0;
  cfg.label_flip_prob = 0.0;
  SyntheticCriteo data(cfg);
  int64_t pos_clicks = 0, pos_total = 0, neg_clicks = 0, neg_total = 0;
  for (int i = 0; i < 20; ++i) {
    MiniBatch b = data.NextBatch(256);
    for (int64_t s = 0; s < b.batch_size(); ++s) {
      std::vector<int64_t> rows;
      for (int t = 0; t < data.num_tables(); ++t) {
        rows.push_back(
            b.sparse[static_cast<size_t>(t)]
                .indices[static_cast<size_t>(s)]);
      }
      const double logit = data.TeacherLogit(rows, b.dense.data() + s * 13);
      const bool y = b.labels[static_cast<size_t>(s)] > 0.5f;
      if (logit > 0) {
        ++pos_total;
        if (y) ++pos_clicks;
      } else {
        ++neg_total;
        if (y) ++neg_clicks;
      }
    }
  }
  ASSERT_GT(pos_total, 100);
  ASSERT_GT(neg_total, 100);
  const double p_pos = static_cast<double>(pos_clicks) / pos_total;
  const double p_neg = static_cast<double>(neg_clicks) / neg_total;
  EXPECT_GT(p_pos, p_neg + 0.2);
}

TEST(SyntheticCriteo, RejectsBadConfig) {
  SyntheticCriteoConfig cfg = SmallSynthConfig();
  cfg.pooling_factor = 0;
  EXPECT_THROW(SyntheticCriteo{cfg}, ConfigError);
  cfg = SmallSynthConfig();
  cfg.label_flip_prob = 0.9;
  EXPECT_THROW(SyntheticCriteo{cfg}, ConfigError);
  cfg = SmallSynthConfig();
  cfg.zipf_exponent = -1.0;
  EXPECT_THROW(SyntheticCriteo{cfg}, ConfigError);
}

TEST(TopKStabilityTracker, ChurnDropsAsCountsAccumulate) {
  // A stationary Zipf stream: early snapshots churn, late ones stabilize
  // (the Figure 9 phenomenon).
  TopKStabilityTracker tracker(50);
  ZipfSampler zipf(10000, 1.2);
  Rng rng(5);
  const double first = [&] {
    for (int i = 0; i < 500; ++i) tracker.Record(zipf.Sample(rng));
    return tracker.SnapshotChurn();
  }();
  EXPECT_EQ(first, 1.0);  // first snapshot: everything is new
  double late = 1.0;
  for (int s = 0; s < 20; ++s) {
    for (int i = 0; i < 20000; ++i) tracker.Record(zipf.Sample(rng));
    late = tracker.SnapshotChurn();
  }
  EXPECT_LT(late, 0.10);
}

TEST(TopKStabilityTracker, TopKIsByFrequency) {
  TopKStabilityTracker tracker(2);
  for (int i = 0; i < 5; ++i) tracker.Record(7);
  for (int i = 0; i < 3; ++i) tracker.Record(8);
  tracker.Record(9);
  const auto top = tracker.TopK();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 7);
  EXPECT_EQ(top[1], 8);
  EXPECT_EQ(tracker.total_accesses(), 9);
}

TEST(ControlledHitRateTrace, AchievesRequestedRate) {
  Rng rng(77);
  std::vector<int64_t> cached = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  for (double rate : {0.0, 0.5, 0.9, 1.0}) {
    const auto trace = ControlledHitRateTrace(1000, cached, rate, 20000, rng);
    int64_t hits = 0;
    for (int64_t row : trace) {
      if (row < 10) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / 20000.0, rate, 0.02) << rate;
  }
}

TEST(ControlledHitRateTrace, Validation) {
  Rng rng(1);
  std::vector<int64_t> cached = {0};
  EXPECT_THROW(ControlledHitRateTrace(10, cached, 1.5, 10, rng), ConfigError);
  EXPECT_THROW(ControlledHitRateTrace(10, {}, 0.5, 10, rng), ConfigError);
  EXPECT_NO_THROW(ControlledHitRateTrace(10, {}, 0.0, 10, rng));
}

}  // namespace
}  // namespace ttrec
