// Independent TT oracle: evaluates Eq. (2) element by element — an explicit
// sum over all rank-index tuples with no GEMM, no reshaping, no shared code
// with the library kernels — and checks MaterializeRow, the batched
// forward, and TT-SVD against it. This breaks any possibility of a
// consistent-but-wrong index convention passing the cross-checks.
#include <gtest/gtest.h>

#include <vector>

#include "tt/tt_decompose.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

// W((i_1,j_1),...,(i_d,j_d)) = sum over (r_1..r_{d-1}) of
//   prod_k G_k[r_{k-1}, i_k, j_k, r_k],   r_0 = r_d = 0.
// Slice storage is [i_k][r_{k-1}][j_k][r_k] (slice-major), so
// G_k entry = Slice(k, i_k)[r_{k-1} * (n_k * R_k) + j_k * R_k + r_k].
double OracleElement(const TtCores& cores, int64_t row, int64_t col) {
  const TtShape& s = cores.shape();
  const int d = s.num_cores();
  const std::vector<int64_t> idig = s.RowDigits(row);

  // Column digits, most significant first.
  std::vector<int64_t> jdig(static_cast<size_t>(d));
  int64_t denom = s.emb_dim;
  int64_t rem = col;
  for (int k = 0; k < d; ++k) {
    denom /= s.col_factors[static_cast<size_t>(k)];
    jdig[static_cast<size_t>(k)] = rem / denom;
    rem %= denom;
  }

  // Iterate all inner rank tuples (r_1..r_{d-1}) via mixed radix.
  int64_t tuples = 1;
  for (int k = 1; k < d; ++k) tuples *= s.ranks[static_cast<size_t>(k)];
  double total = 0.0;
  for (int64_t t = 0; t < tuples; ++t) {
    // Decode the tuple.
    std::vector<int64_t> r(static_cast<size_t>(d) + 1, 0);
    int64_t tt = t;
    for (int k = d - 1; k >= 1; --k) {
      r[static_cast<size_t>(k)] = tt % s.ranks[static_cast<size_t>(k)];
      tt /= s.ranks[static_cast<size_t>(k)];
    }
    double prod = 1.0;
    for (int k = 0; k < d; ++k) {
      const int64_t nk = s.col_factors[static_cast<size_t>(k)];
      const int64_t rk = s.ranks[static_cast<size_t>(k) + 1];
      const float* slice = cores.Slice(k, idig[static_cast<size_t>(k)]);
      prod *= slice[r[static_cast<size_t>(k)] * (nk * rk) +
                    jdig[static_cast<size_t>(k)] * rk +
                    r[static_cast<size_t>(k) + 1]];
    }
    total += prod;
  }
  return total;
}

class TtOracleSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(TtOracleSweep, MaterializeRowMatchesElementwiseSum) {
  const auto [d, rank] = GetParam();
  TtShape shape = MakeTtShape(48, 8, d, rank);
  TtCores cores(shape);
  Rng rng(static_cast<uint64_t>(d * 31 + rank));
  InitializeTtCoresWithTarget(cores, TtInit::kGaussian, rng, 0.5);

  std::vector<float> row(8);
  for (int64_t r : {int64_t{0}, int64_t{17}, int64_t{47}}) {
    cores.MaterializeRow(r, row.data());
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(row[static_cast<size_t>(j)], OracleElement(cores, r, j),
                  1e-4)
          << "row " << r << " col " << j << " d=" << d << " rank=" << rank;
    }
  }
}

TEST_P(TtOracleSweep, BatchedForwardMatchesElementwiseSum) {
  const auto [d, rank] = GetParam();
  TtShape shape = MakeTtShape(48, 8, d, rank);
  TtEmbeddingConfig cfg;
  cfg.shape = shape;
  cfg.block_size = 3;
  Rng rng(static_cast<uint64_t>(d * 97 + rank));
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  CsrBatch batch;
  batch.indices = {5, 40, 5};
  batch.offsets = {0, 2, 3};
  std::vector<float> out(static_cast<size_t>(2 * 8));
  emb.Forward(batch, out.data());
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)],
                OracleElement(emb.cores(), 5, j) +
                    OracleElement(emb.cores(), 40, j),
                1e-4);
    EXPECT_NEAR(out[static_cast<size_t>(8 + j)],
                OracleElement(emb.cores(), 5, j), 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TtOracleSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(TtOracle, TtSvdCoresSatisfyElementFormula) {
  Rng rng(99);
  Tensor table({30, 8});
  for (int64_t i = 0; i < table.numel(); ++i) {
    table.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  const TtCores cores = TtDecompose(table, MakeTtShape(30, 8, 3, 64));
  for (int64_t r : {int64_t{0}, int64_t{13}, int64_t{29}}) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(OracleElement(cores, r, j), table.data()[r * 8 + j], 1e-3)
          << r << "," << j;
    }
  }
}

}  // namespace
}  // namespace ttrec
