// The staged training pipeline's core guarantee: execution strategy is
// bitwise-invisible. For any fixed lookahead depth, threaded and inline
// staging produce identical models, loss histories, and snapshots at any
// thread count; depth 0 is the classic synchronous loop. Plus the failure
// modes: a throwing source surfaces as PipelineError (never a deadlock), a
// slow source changes nothing but wall-clock, async checkpoints write the
// same bytes as sync ones, and TrainConfig::Validate rejects every
// inconsistent knob combination.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dlrm/checkpoint.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/train_stages.h"
#include "dlrm/trainer.h"
#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {
namespace {

namespace fs = std::filesystem;

DlrmConfig TinyConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig TinyData() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

/// Mixed-architecture model with a cache-backed table — the case where
/// lookahead prefetch actually mutates state between steps.
std::unique_ptr<DlrmModel> MakeCachedModel(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      200, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(TinyConfig(), std::move(tables), rng);
}

/// Dense + plain TT only — no cache, so resume-under-lookahead is exact
/// (the documented cached-table caveat does not apply).
std::unique_ptr<DlrmModel> MakeUncachedModel(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      200, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  TtEmbeddingConfig t2 = tcfg;
  t2.shape = MakeTtShape(120, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(t2, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(TinyConfig(), std::move(tables), rng);
}

std::string CheckpointBytes(const DlrmModel& model) {
  std::stringstream ss;
  model.SaveCheckpoint(ss);
  return ss.str();
}

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TrainConfig BaseTrain() {
  TrainConfig cfg;
  cfg.iterations = 24;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  cfg.eval_batches = 2;
  cfg.eval_batch_size = 64;
  cfg.log_every = 4;
  return cfg;
}

struct RunOutput {
  std::string model_bytes;
  std::vector<double> loss;
  TrainResult result;
};

RunOutput RunTrain(const TrainConfig& cfg, bool cached = true,
              uint64_t seed = 42) {
  auto model = cached ? MakeCachedModel(seed) : MakeUncachedModel(seed);
  SyntheticCriteo data(TinyData());
  RunOutput out;
  out.result = TrainDlrm(*model, data, cfg);
  out.model_bytes = CheckpointBytes(*model);
  out.loss = out.result.loss_history;
  return out;
}

// --- Bitwise identity across execution strategies -------------------------

TEST(Pipeline, ThreadingIsBitwiseInvisibleAtEveryDepth) {
  for (const int64_t depth : {int64_t{0}, int64_t{1}, int64_t{4}}) {
    for (const auto opt :
         {OptimizerConfig::Kind::kSgd, OptimizerConfig::Kind::kAdagrad}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " adagrad=" + std::to_string(opt ==
                                                OptimizerConfig::Kind::kAdagrad));
      TrainConfig cfg = BaseTrain();
      cfg.optimizer = opt;
      cfg.lookahead_depth = depth;
      cfg.lookahead_threaded = false;
      cfg.num_threads = 1;
      const RunOutput base = RunTrain(cfg);

      for (const int threads : {1, 2, 8}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        TrainConfig alt = cfg;
        alt.lookahead_threaded = true;
        alt.num_threads = threads;
        const RunOutput got = RunTrain(alt);
        EXPECT_EQ(got.model_bytes, base.model_bytes);
        EXPECT_EQ(got.loss, base.loss);
        EXPECT_EQ(got.result.final_eval.accuracy,
                  base.result.final_eval.accuracy);
        EXPECT_EQ(got.result.final_eval.loss, base.result.final_eval.loss);
      }
    }
  }
}

TEST(Pipeline, PrefetchRunsAtDepthOneAndAboveOnly) {
  TrainConfig cfg = BaseTrain();
  cfg.lookahead_depth = 0;
  EXPECT_EQ(RunTrain(cfg).result.prefetched_rows, 0);

  cfg.lookahead_depth = 4;
  const RunOutput deep = RunTrain(cfg);
  EXPECT_GT(deep.result.prefetched_rows, 0);
  EXPECT_GE(deep.result.prefetch_seconds, 0.0);

  // prefetch_cache off: staging still works, caches untouched by plans.
  cfg.prefetch_cache = false;
  EXPECT_EQ(RunTrain(cfg).result.prefetched_rows, 0);
}

TEST(Pipeline, PipelineMetricsArePublished) {
  obs::MetricRegistry reg;
  TrainConfig cfg = BaseTrain();
  cfg.lookahead_depth = 2;
  cfg.lookahead_threaded = true;
  cfg.metrics = &reg;
  RunTrain(cfg);
  EXPECT_EQ(reg.counter("train.pipeline.batches_produced").Total(),
            cfg.iterations);
  EXPECT_EQ(reg.gauge("train.pipeline.depth").Value(), 2.0);
  EXPECT_EQ(reg.gauge("train.pipeline.threaded").Value(), 1.0);
  EXPECT_GT(reg.counter("train.pipeline.prefetch_rows").Total(), 0);
  EXPECT_GE(reg.gauge("train.pipeline.max_queue_depth").Value(), 1.0);
}

// --- Checkpointing under lookahead ---------------------------------------

TEST(Pipeline, SplicedSnapshotBytesMatchDirectSave) {
  auto model = MakeCachedModel(7);
  SyntheticCriteo data(TinyData());
  data.NextBatch(16);  // advance the cursor off its initial state
  SnapshotMeta meta;
  meta.iteration = 1;

  std::ostringstream payload_ss;
  BinaryWriter w(payload_ss);
  data.SaveState(w);

  std::ostringstream direct, spliced;
  SaveTrainingSnapshot(direct, *model, data, meta);
  SaveTrainingSnapshot(spliced, *model, std::string_view(payload_ss.str()),
                       meta);
  EXPECT_EQ(direct.str(), spliced.str());
}

TEST(Pipeline, SnapshotFilesIdenticalAcrossThreadingAtFixedDepth) {
  ScratchDir d1("ttrec_pipe_ck_inline");
  ScratchDir d2("ttrec_pipe_ck_threaded");
  TrainConfig cfg = BaseTrain();
  cfg.eval_batches = 0;
  cfg.lookahead_depth = 4;
  cfg.checkpoint_every = 5;

  cfg.lookahead_threaded = false;
  cfg.checkpoint_dir = d1.path();
  RunTrain(cfg);
  cfg.lookahead_threaded = true;
  cfg.checkpoint_dir = d2.path();
  RunTrain(cfg);

  CheckpointManagerConfig c1, c2;
  c1.directory = d1.path();
  c2.directory = d2.path();
  const auto s1 = CheckpointManager(c1).ListSnapshots();
  const auto s2 = CheckpointManager(c2).ListSnapshots();
  ASSERT_FALSE(s1.empty());
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(ReadFile(s1[i]), ReadFile(s2[i])) << s1[i];
  }
}

TEST(Pipeline, ResumeUnderLookaheadReplaysExactStream) {
  // The producer runs ahead of the optimizer, so the snapshot at iteration
  // N must embed the cursor as of batch N — not wherever the source
  // happens to be. If that capture were wrong, the resumed run would train
  // on a shifted stream and the final models would differ.
  ScratchDir dir("ttrec_pipe_resume");
  TrainConfig cfg = BaseTrain();
  cfg.eval_batches = 0;
  cfg.lookahead_depth = 3;
  cfg.iterations = 12;

  const RunOutput full = RunTrain(cfg, /*cached=*/false);

  TrainConfig crash = cfg;
  crash.iterations = 7;  // snapshot lands at iteration 5
  crash.checkpoint_every = 5;
  crash.checkpoint_dir = dir.path();
  RunTrain(crash, /*cached=*/false);

  TrainConfig resumed = crash;
  resumed.iterations = 12;
  resumed.resume = true;
  const RunOutput rerun = RunTrain(resumed, /*cached=*/false);
  EXPECT_EQ(rerun.result.start_iteration, 5);
  EXPECT_EQ(rerun.model_bytes, full.model_bytes);
}

TEST(Pipeline, AsyncCheckpointWritesIdenticalBytesOffTheCriticalPath) {
  ScratchDir d1("ttrec_pipe_sync_ck");
  ScratchDir d2("ttrec_pipe_async_ck");
  TrainConfig cfg = BaseTrain();
  cfg.eval_batches = 0;
  cfg.lookahead_depth = 2;
  cfg.checkpoint_every = 4;

  cfg.checkpoint_dir = d1.path();
  const RunOutput sync = RunTrain(cfg);
  cfg.checkpoint_dir = d2.path();
  cfg.async_checkpoint = true;
  const RunOutput async = RunTrain(cfg);

  EXPECT_EQ(async.model_bytes, sync.model_bytes);
  EXPECT_GT(async.result.checkpoint_background_seconds, 0.0);
  EXPECT_EQ(async.result.robustness.checkpoints_written,
            sync.result.robustness.checkpoints_written);

  CheckpointManagerConfig c1, c2;
  c1.directory = d1.path();
  c2.directory = d2.path();
  const auto s1 = CheckpointManager(c1).ListSnapshots();
  const auto s2 = CheckpointManager(c2).ListSnapshots();
  ASSERT_EQ(s1.size(), s2.size());
  ASSERT_FALSE(s1.empty());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(ReadFile(s1[i]), ReadFile(s2[i])) << s1[i];
  }

  // A fresh run can restore from the async-written snapshots.
  auto model = MakeCachedModel(42);
  SyntheticCriteo data(TinyData());
  SnapshotMeta meta;
  CheckpointManager mgr(c2);
  EXPECT_TRUE(mgr.RestoreLatest(*model, data, &meta));
  EXPECT_EQ(meta.iteration, 24);
}

TEST(Pipeline, AsyncWriteFailureSurfacesTypedFromWaitIdle) {
  ScratchDir dir("ttrec_pipe_async_fail");
  CheckpointManagerConfig cc;
  cc.directory = dir.path();
  CheckpointManager mgr(cc);

  auto model = MakeUncachedModel(3);
  SyntheticCriteo data(TinyData());
  std::ostringstream ss;
  BinaryWriter w(ss);
  data.SaveState(w);

  // Sabotage the directory: replace it with a regular file so the atomic
  // temp-file write cannot open.
  fs::remove_all(dir.path());
  std::ofstream(dir.path()) << "not a directory";

  SnapshotMeta meta;
  meta.iteration = 1;
  mgr.SaveAsync(*model, ss.str(), meta);
  EXPECT_THROW(mgr.WaitIdle(), TtRecError);
  // Once rethrown, the manager is idle again and does not re-throw.
  mgr.WaitIdle();
}

// --- Fault injection ------------------------------------------------------

/// SyntheticCriteo whose training stream throws on the Nth NextBatch call.
class ThrowingSource : public SyntheticCriteo {
 public:
  ThrowingSource(const SyntheticCriteoConfig& cfg, int64_t throw_at)
      : SyntheticCriteo(cfg), throw_at_(throw_at) {}
  MiniBatch NextBatch(int64_t batch_size) override {
    if (calls_++ == throw_at_) {
      throw std::runtime_error("injected source failure");
    }
    return SyntheticCriteo::NextBatch(batch_size);
  }

 private:
  int64_t throw_at_;
  int64_t calls_ = 0;
};

/// SyntheticCriteo that stalls on every batch — the slow-producer case.
class SlowSource : public SyntheticCriteo {
 public:
  explicit SlowSource(const SyntheticCriteoConfig& cfg)
      : SyntheticCriteo(cfg) {}
  MiniBatch NextBatch(int64_t batch_size) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return SyntheticCriteo::NextBatch(batch_size);
  }
};

TEST(Pipeline, SourceFailurePropagatesAsPipelineErrorWithoutDeadlock) {
  for (const bool threaded : {false, true}) {
    for (const int64_t throw_at : {int64_t{0}, int64_t{5}}) {
      SCOPED_TRACE("threaded=" + std::to_string(threaded) +
                   " throw_at=" + std::to_string(throw_at));
      auto model = MakeCachedModel(42);
      ThrowingSource data(TinyData(), throw_at);
      TrainConfig cfg = BaseTrain();
      cfg.eval_batches = 0;
      cfg.lookahead_depth = 2;
      cfg.lookahead_threaded = threaded;
      EXPECT_THROW(TrainDlrm(*model, data, cfg), PipelineError);
    }
  }
}

TEST(Pipeline, DepthZeroSourceFailureIsAlsoTyped) {
  auto model = MakeCachedModel(42);
  ThrowingSource data(TinyData(), 3);
  TrainConfig cfg = BaseTrain();
  cfg.eval_batches = 0;
  EXPECT_THROW(TrainDlrm(*model, data, cfg), PipelineError);
}

TEST(Pipeline, SlowSourceChangesNothingButWallClock) {
  TrainConfig cfg = BaseTrain();
  cfg.iterations = 12;
  cfg.lookahead_depth = 2;
  cfg.lookahead_threaded = false;
  auto run = [&cfg](bool slow) {
    auto model = MakeCachedModel(42);
    std::unique_ptr<SyntheticCriteo> data =
        slow ? std::make_unique<SlowSource>(TinyData())
             : std::make_unique<SyntheticCriteo>(TinyData());
    TrainDlrm(*model, *data, cfg);
    return CheckpointBytes(*model);
  };
  const std::string fast_inline = run(false);
  EXPECT_EQ(run(true), fast_inline);
  cfg.lookahead_threaded = true;
  EXPECT_EQ(run(true), fast_inline);
}

// --- LookaheadStage unit behavior ----------------------------------------

TEST(LookaheadStage, DeliversTheExactStreamInOrder) {
  SyntheticCriteo staged_src(TinyData());
  LookaheadOptions lo;
  lo.depth = 3;
  lo.threaded = true;
  lo.batch_size = 8;
  lo.total_batches = 10;
  LookaheadStage stage(staged_src, lo);

  SyntheticCriteo direct(TinyData());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_FALSE(stage.Exhausted());
    StagedBatch sb = stage.Next();
    EXPECT_EQ(sb.index, i);
    const MiniBatch want = direct.NextBatch(8);
    EXPECT_EQ(sb.batch.labels, want.labels);
    for (size_t t = 0; t < want.sparse.size(); ++t) {
      EXPECT_EQ(sb.batch.sparse[t].indices, want.sparse[t].indices);
    }
  }
  EXPECT_TRUE(stage.Exhausted());
  EXPECT_EQ(stage.stats().batches_produced, 10);
  EXPECT_LE(stage.stats().max_queue_depth, 3);
}

TEST(LookaheadStage, PlansAreSortedUniquePerSelectedTable) {
  SyntheticCriteo src(TinyData());
  LookaheadOptions lo;
  lo.depth = 1;
  lo.threaded = false;
  lo.batch_size = 32;
  lo.total_batches = 3;
  lo.plan_tables = {false, false, true};
  LookaheadStage stage(src, lo);
  for (int64_t i = 0; i < 3; ++i) {
    StagedBatch sb = stage.Next();
    ASSERT_EQ(sb.plan.size(), 3u);
    EXPECT_TRUE(sb.plan[0].empty());
    EXPECT_TRUE(sb.plan[1].empty());
    ASSERT_FALSE(sb.plan[2].empty());
    for (size_t k = 1; k < sb.plan[2].size(); ++k) {
      EXPECT_LT(sb.plan[2][k - 1], sb.plan[2][k]);
    }
  }
}

TEST(LookaheadStage, RestartRebasesAfterCursorRestore) {
  SyntheticCriteo src(TinyData());
  std::ostringstream cursor0;
  BinaryWriter w(cursor0);
  src.SaveState(w);

  LookaheadOptions lo;
  lo.depth = 2;
  lo.threaded = true;
  lo.batch_size = 8;
  lo.total_batches = 6;
  LookaheadStage stage(src, lo);
  const StagedBatch first = stage.Next();
  stage.Next();

  stage.Pause();
  std::istringstream is(cursor0.str());
  BinaryReader r(is);
  src.LoadState(r);
  stage.Restart(0);

  const StagedBatch replayed = stage.Next();
  EXPECT_EQ(replayed.index, 0);
  EXPECT_EQ(replayed.batch.labels, first.batch.labels);
  EXPECT_EQ(stage.stats().restarts, 1);
}

// --- TrainConfig::Validate ------------------------------------------------

TEST(TrainConfigValidate, AcceptsDefaultsAndFullyLoadedValidConfig) {
  TrainConfig cfg;
  cfg.Validate();

  cfg.lookahead_depth = 4;
  cfg.num_threads = 2;
  cfg.cache_budget_bytes = 1 << 20;
  cfg.cache_retune_interval = 10;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_dir = "/tmp/x";
  cfg.async_checkpoint = true;
  cfg.resume = true;
  cfg.fault.on_fault = FaultToleranceConfig::OnFault::kRollback;
  cfg.fault.spike_factor = 3.0;
  cfg.Validate();
}

TEST(TrainConfigValidate, RejectsEveryInconsistentKnobCombination) {
  const auto expect_bad = [](void (*mutate)(TrainConfig&)) {
    TrainConfig cfg;
    cfg.checkpoint_every = 5;  // valid checkpointing baseline
    cfg.checkpoint_dir = "/tmp/x";
    mutate(cfg);
    EXPECT_THROW(cfg.Validate(), ConfigError);
  };
  expect_bad([](TrainConfig& c) { c.iterations = 0; });
  expect_bad([](TrainConfig& c) { c.batch_size = 0; });
  expect_bad([](TrainConfig& c) { c.eval_batch_size = 0; });
  expect_bad([](TrainConfig& c) { c.log_every = -1; });
  expect_bad([](TrainConfig& c) { c.num_threads = -1; });
  expect_bad([](TrainConfig& c) { c.cache_budget_bytes = 1024; });
  expect_bad([](TrainConfig& c) { c.cache_retune_interval = 8; });
  expect_bad([](TrainConfig& c) { c.lookahead_depth = -1; });
  expect_bad([](TrainConfig& c) { c.checkpoint_every = -1; });
  expect_bad([](TrainConfig& c) { c.checkpoint_dir.clear(); });
  expect_bad([](TrainConfig& c) { c.checkpoint_keep_last = 0; });
  expect_bad([](TrainConfig& c) {
    c.checkpoint_every = 0;
    c.checkpoint_dir.clear();
    c.resume = true;
  });
  expect_bad([](TrainConfig& c) {
    c.checkpoint_every = 0;
    c.async_checkpoint = true;
  });
  expect_bad([](TrainConfig& c) {
    c.checkpoint_every = 0;
    c.fault.on_fault = FaultToleranceConfig::OnFault::kRollback;
  });
  expect_bad([](TrainConfig& c) { c.fault.max_rollbacks = -1; });
  expect_bad([](TrainConfig& c) { c.fault.grad_clip_norm = -1.0f; });
  expect_bad([](TrainConfig& c) { c.fault.spike_factor = -0.5; });
  expect_bad([](TrainConfig& c) { c.fault.spike_warmup = -1; });
  expect_bad([](TrainConfig& c) { c.fault.spike_ema_beta = 0.0; });
  expect_bad([](TrainConfig& c) { c.fault.spike_ema_beta = 1.0; });
  expect_bad([](TrainConfig& c) { c.report_interval_ms = -1; });
}

}  // namespace
}  // namespace ttrec
