// TtEmbeddingBag: the batched forward must equal scalar materialization;
// the batched backward must equal finite differences; stash and recompute
// paths must agree; pooling modes, per-sample weights, blocking, SGD, and
// failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/check.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

TtEmbeddingConfig SmallConfig(int num_cores, int64_t rank,
                              int64_t num_rows = 60, int64_t emb_dim = 8) {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(num_rows, emb_dim, num_cores, rank);
  cfg.block_size = 7;  // force multi-block paths even on small batches
  return cfg;
}

CsrBatch MixedBatch() {
  // 4 bags: sizes 2, 1, 0, 3 — includes an empty bag and duplicate indices.
  CsrBatch b;
  b.indices = {3, 17, 42, 3, 59, 17};
  b.offsets = {0, 2, 3, 3, 6};
  return b;
}

class TtEmbeddingSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(TtEmbeddingSweep, ForwardMatchesMaterializedRows) {
  const auto [d, rank] = GetParam();
  Rng rng(static_cast<uint64_t>(d * 100 + rank));
  TtEmbeddingBag emb(SmallConfig(d, rank), TtInit::kGaussian, rng);
  CsrBatch batch = MixedBatch();

  std::vector<float> out(static_cast<size_t>(batch.num_bags() * 8), -1.0f);
  emb.Forward(batch, out.data());

  // Oracle: scalar materialization + manual pooling.
  std::vector<float> expected(out.size(), 0.0f);
  std::vector<float> row(8);
  for (int64_t bag = 0; bag < batch.num_bags(); ++bag) {
    for (int64_t l = batch.offsets[static_cast<size_t>(bag)];
         l < batch.offsets[static_cast<size_t>(bag) + 1]; ++l) {
      emb.cores().MaterializeRow(batch.indices[static_cast<size_t>(l)],
                                 row.data());
      for (int64_t j = 0; j < 8; ++j) {
        expected[static_cast<size_t>(bag * 8 + j)] +=
            row[static_cast<size_t>(j)];
      }
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-4f) << "d=" << d << " rank=" << rank;
  }
}

TEST_P(TtEmbeddingSweep, BackwardMatchesFiniteDifferences) {
  const auto [d, rank] = GetParam();
  Rng rng(static_cast<uint64_t>(d * 1000 + rank));
  TtEmbeddingBag emb(SmallConfig(d, rank), TtInit::kGaussian, rng);
  CsrBatch batch = MixedBatch();
  const int64_t n_bags = batch.num_bags();
  const int64_t N = emb.emb_dim();

  // Loss = sum_i g_i * out_i with fixed pseudo-random g.
  std::vector<float> g(static_cast<size_t>(n_bags * N));
  Rng grng(99);
  for (float& x : g) x = static_cast<float>(grng.Uniform(-1.0, 1.0));

  auto loss = [&]() {
    std::vector<float> out(static_cast<size_t>(n_bags * N));
    emb.Forward(batch, out.data());
    double s = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      s += static_cast<double>(g[i]) * out[i];
    }
    return s;
  };

  emb.Backward(batch, g.data());

  // Spot-check several entries in every core against central differences.
  const double eps = 1e-3;
  for (int k = 0; k < emb.cores().num_cores(); ++k) {
    Tensor& core = emb.cores().core(k);
    const Tensor& grad = emb.core_grad(k);
    Rng pick(static_cast<uint64_t>(k + 7));
    for (int trial = 0; trial < 6; ++trial) {
      const int64_t idx = pick.RandInt(core.numel());
      const float orig = core[idx];
      core[idx] = orig + static_cast<float>(eps);
      const double lp = loss();
      core[idx] = orig - static_cast<float>(eps);
      const double lm = loss();
      core[idx] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(grad[idx], fd, 5e-2 * (std::abs(fd) + 1.0))
          << "core " << k << " entry " << idx << " d=" << d
          << " rank=" << rank;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TtEmbeddingSweep,
                         ::testing::Combine(::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 8)));

TEST(TtEmbeddingBag, MeanPoolingDividesByBagSize) {
  Rng rng(1);
  TtEmbeddingConfig cfg = SmallConfig(3, 4);
  cfg.pooling = PoolingMode::kMean;
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  CsrBatch batch;
  batch.indices = {5, 5, 5, 9};
  batch.offsets = {0, 3, 4};
  std::vector<float> out(static_cast<size_t>(2 * 8));
  emb.Forward(batch, out.data());

  std::vector<float> row5(8), row9(8);
  emb.cores().MaterializeRow(5, row5.data());
  emb.cores().MaterializeRow(9, row9.data());
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)], row5[static_cast<size_t>(j)],
                1e-5f);  // mean of 3 identical rows
    EXPECT_NEAR(out[static_cast<size_t>(8 + j)], row9[static_cast<size_t>(j)],
                1e-5f);
  }
}

TEST(TtEmbeddingBag, PerSampleWeightsScaleContributions) {
  Rng rng(2);
  TtEmbeddingBag emb(SmallConfig(3, 4), TtInit::kGaussian, rng);
  CsrBatch batch;
  batch.indices = {10, 20};
  batch.offsets = {0, 2};
  batch.weights = {2.0f, -0.5f};
  std::vector<float> out(8);
  emb.Forward(batch, out.data());

  std::vector<float> r10(8), r20(8);
  emb.cores().MaterializeRow(10, r10.data());
  emb.cores().MaterializeRow(20, r20.data());
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)],
                2.0f * r10[static_cast<size_t>(j)] -
                    0.5f * r20[static_cast<size_t>(j)],
                1e-5f);
  }
}

TEST(TtEmbeddingBag, LookupRowsMatchesMaterialization) {
  Rng rng(3);
  TtEmbeddingBag emb(SmallConfig(3, 8), TtInit::kSampledGaussian, rng);
  std::vector<int64_t> idx = {0, 59, 30, 30, 7};
  std::vector<float> out(idx.size() * 8);
  emb.LookupRows(idx, out.data());
  std::vector<float> row(8);
  for (size_t i = 0; i < idx.size(); ++i) {
    emb.cores().MaterializeRow(idx[i], row.data());
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(out[i * 8 + static_cast<size_t>(j)],
                  row[static_cast<size_t>(j)], 1e-4f);
    }
  }
}

TEST(TtEmbeddingBag, StashAndRecomputeBackwardAgree) {
  CsrBatch batch = MixedBatch();
  std::vector<float> g(static_cast<size_t>(batch.num_bags() * 8));
  Rng grng(55);
  for (float& x : g) x = static_cast<float>(grng.Uniform(-1.0, 1.0));

  auto run = [&](bool stash) {
    Rng rng(44);  // identical init
    TtEmbeddingConfig cfg = SmallConfig(3, 4);
    cfg.stash_intermediates = stash;
    TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
    std::vector<float> out(static_cast<size_t>(batch.num_bags() * 8));
    emb.Forward(batch, out.data());
    emb.Backward(batch, g.data());
    std::vector<Tensor> grads;
    for (int k = 0; k < emb.cores().num_cores(); ++k) {
      grads.push_back(emb.core_grad(k));
    }
    return grads;
  };

  const auto stash_grads = run(true);
  const auto recompute_grads = run(false);
  ASSERT_EQ(stash_grads.size(), recompute_grads.size());
  for (size_t k = 0; k < stash_grads.size(); ++k) {
    EXPECT_LT(MaxAbsDiff(stash_grads[k], recompute_grads[k]), 1e-5)
        << "core " << k;
  }
}

TEST(TtEmbeddingBag, DuplicateIndicesAccumulateGradients) {
  Rng rng(66);
  TtEmbeddingBag emb(SmallConfig(2, 2), TtInit::kGaussian, rng);
  // Two bags, both looking up row 7: gradient contributions must add.
  CsrBatch once;
  once.indices = {7};
  once.offsets = {0, 1};
  CsrBatch twice;
  twice.indices = {7, 7};
  twice.offsets = {0, 1, 2};

  std::vector<float> g1(8, 1.0f);
  std::vector<float> g2(16, 1.0f);

  emb.Backward(once, g1.data());
  std::vector<Tensor> single;
  for (int k = 0; k < 2; ++k) single.push_back(emb.core_grad(k));
  emb.ZeroGrad();
  emb.Backward(twice, g2.data());
  for (int k = 0; k < 2; ++k) {
    const Tensor& dbl = emb.core_grad(k);
    for (int64_t i = 0; i < dbl.numel(); ++i) {
      EXPECT_NEAR(dbl[i], 2.0f * single[static_cast<size_t>(k)][i], 1e-5f);
    }
  }
}

TEST(TtEmbeddingBag, ApplySgdMovesAgainstGradientAndClears) {
  Rng rng(77);
  TtEmbeddingBag emb(SmallConfig(3, 2), TtInit::kGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({12, 13});
  std::vector<float> out(static_cast<size_t>(2 * 8));
  emb.Forward(batch, out.data());
  std::vector<float> g(out.size(), 1.0f);
  emb.Backward(batch, g.data());

  std::vector<Tensor> before;
  std::vector<Tensor> grads;
  for (int k = 0; k < 3; ++k) {
    before.push_back(emb.cores().core(k));
    grads.push_back(emb.core_grad(k));
  }
  emb.ApplySgd(0.1f);
  for (int k = 0; k < 3; ++k) {
    const Tensor& after = emb.cores().core(k);
    for (int64_t i = 0; i < after.numel(); ++i) {
      EXPECT_NEAR(after[i],
                  before[static_cast<size_t>(k)][i] -
                      0.1f * grads[static_cast<size_t>(k)][i],
                  1e-6f);
    }
    // Gradient cleared.
    EXPECT_EQ(emb.core_grad(k).Norm(), 0.0);
  }
}

TEST(TtEmbeddingBag, SgdReducesQuadraticLoss) {
  // Regression-to-target: train the TT table so one bag matches a target
  // vector; loss must fall monotonically-ish and substantially.
  Rng rng(88);
  TtEmbeddingBag emb(SmallConfig(3, 4), TtInit::kGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({21});
  std::vector<float> target(8);
  for (int64_t j = 0; j < 8; ++j) target[static_cast<size_t>(j)] =
      0.1f * static_cast<float>(j) - 0.3f;

  double first = -1.0, last = -1.0;
  std::vector<float> out(8), grad(8);
  for (int step = 0; step < 200; ++step) {
    emb.Forward(batch, out.data());
    double loss = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      const float d = out[static_cast<size_t>(j)] - target[static_cast<size_t>(j)];
      loss += 0.5 * d * d;
      grad[static_cast<size_t>(j)] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    emb.Backward(batch, grad.data());
    emb.ApplySgd(0.5f);
  }
  EXPECT_LT(last, 1e-3 * first + 1e-8);
}

class DedupEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>> {};

// Deduplicated execution must be numerically equivalent to the plain path
// for forward AND backward, across core counts, ranks, and block sizes —
// including blocks where every lookup is the same row.
TEST_P(DedupEquivalence, ForwardAndBackwardMatchPlainPath) {
  const auto [d, rank, block_size] = GetParam();
  // Heavy-duplication batch: 3 bags over a handful of rows.
  CsrBatch batch;
  batch.indices = {5, 5, 17, 5, 42, 17, 17, 5};
  batch.offsets = {0, 3, 3, 8};
  batch.weights = {1.0f, 0.5f, 2.0f, 1.0f, -1.0f, 0.25f, 1.0f, 3.0f};
  std::vector<float> g(static_cast<size_t>(batch.num_bags() * 8));
  Rng grng(2);
  for (float& x : g) x = static_cast<float>(grng.Uniform(-1.0, 1.0));

  auto run = [&](bool dedup) {
    Rng rng(33);
    TtEmbeddingConfig cfg = SmallConfig(d, rank);
    cfg.block_size = block_size;
    cfg.deduplicate = dedup;
    TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
    std::vector<float> out(static_cast<size_t>(batch.num_bags() * 8));
    emb.Forward(batch, out.data());
    emb.Backward(batch, g.data());
    std::vector<Tensor> grads;
    for (int k = 0; k < emb.cores().num_cores(); ++k) {
      grads.push_back(emb.core_grad(k));
    }
    return std::make_pair(out, std::move(grads));
  };

  const auto [out_plain, grads_plain] = run(false);
  const auto [out_dedup, grads_dedup] = run(true);
  for (size_t i = 0; i < out_plain.size(); ++i) {
    EXPECT_NEAR(out_plain[i], out_dedup[i], 1e-5f) << "output " << i;
  }
  ASSERT_EQ(grads_plain.size(), grads_dedup.size());
  for (size_t k = 0; k < grads_plain.size(); ++k) {
    EXPECT_LT(MaxAbsDiff(grads_plain[k], grads_dedup[k]), 1e-5)
        << "core " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DedupEquivalence,
    ::testing::Combine(::testing::Values(2, 3), ::testing::Values(2, 8),
                       ::testing::Values(1, 3, 64)));

TEST(TtEmbeddingBag, DedupAllSameRow) {
  Rng rng(4);
  TtEmbeddingConfig cfg = SmallConfig(3, 4);
  cfg.deduplicate = true;
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
  CsrBatch batch;
  batch.indices.assign(20, 9);
  batch.offsets = {0, 20};
  std::vector<float> out(8);
  emb.Forward(batch, out.data());
  std::vector<float> row(8);
  emb.cores().MaterializeRow(9, row.data());
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)],
                20.0f * row[static_cast<size_t>(j)], 1e-4f);
  }
}

TEST(TtEmbeddingBag, DedupRejectsStashCombination) {
  Rng rng(5);
  TtEmbeddingConfig cfg = SmallConfig(3, 2);
  cfg.deduplicate = true;
  cfg.stash_intermediates = true;
  EXPECT_THROW(TtEmbeddingBag(cfg, TtInit::kGaussian, rng), ConfigError);
}

TEST(TtEmbeddingBag, ValidatesBatch) {
  Rng rng(9);
  TtEmbeddingBag emb(SmallConfig(3, 2), TtInit::kGaussian, rng);
  std::vector<float> out(8);

  CsrBatch bad_index = CsrBatch::FromIndices({60});  // num_rows == 60
  EXPECT_THROW(emb.Forward(bad_index, out.data()), IndexError);

  CsrBatch bad_offsets;
  bad_offsets.indices = {1};
  bad_offsets.offsets = {0, 2};
  EXPECT_THROW(emb.Forward(bad_offsets, out.data()), ShapeError);

  CsrBatch bad_weights = CsrBatch::FromIndices({1, 2});
  bad_weights.weights = {1.0f};
  std::vector<float> out2(16);
  EXPECT_THROW(emb.Forward(bad_weights, out2.data()), ShapeError);

  std::vector<int64_t> neg = {-1};
  EXPECT_THROW(emb.LookupRows(neg, out.data()), IndexError);
}

TEST(TtEmbeddingBag, LargeEmbeddingDimensions) {
  // The paper's motivating case (§5): dims 64-512 blow past accelerator
  // memory uncompressed; TT handles them with the same kernel. Verify
  // correctness at dim 64 and the compression math at paper scale.
  Rng rng(20);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(120, 64, 3, 8);
  TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({0, 77, 119});
  std::vector<float> out(static_cast<size_t>(3 * 64));
  emb.Forward(batch, out.data());
  std::vector<float> row(64);
  for (int64_t i = 0; i < 3; ++i) {
    emb.cores().MaterializeRow(batch.indices[static_cast<size_t>(i)],
                               row.data());
    for (int64_t j = 0; j < 64; ++j) {
      EXPECT_NEAR(out[static_cast<size_t>(i * 64 + j)],
                  row[static_cast<size_t>(j)], 1e-4f);
    }
  }
  // Paper scale: 10M rows x 512 dims = 20 GB dense; TT at rank 32 fits in
  // a few MB.
  const TtShape big = MakeTtShape(10131227, 512, 3, 32);
  EXPECT_GT(big.CompressionRatio(), 1000.0);
  EXPECT_LT(big.TotalParams() * 4, 32 * 1000000);  // < 32 MB
}

TEST(TtEmbeddingBag, EmptyBatchIsNoop) {
  Rng rng(10);
  TtEmbeddingBag emb(SmallConfig(3, 2), TtInit::kGaussian, rng);
  CsrBatch empty;
  empty.offsets = {0};
  std::vector<float> out;
  EXPECT_NO_THROW(emb.Forward(empty, out.data()));
}

TEST(TtEmbeddingBag, StatsCountFlopsAndLookups) {
  Rng rng(11);
  TtEmbeddingBag emb(SmallConfig(3, 4), TtInit::kGaussian, rng);
  CsrBatch batch = MixedBatch();
  std::vector<float> out(static_cast<size_t>(batch.num_bags() * 8));
  emb.Forward(batch, out.data());
  EXPECT_EQ(emb.stats().forward_calls, 1);
  EXPECT_EQ(emb.stats().lookups, batch.num_lookups());
  EXPECT_GT(emb.stats().forward_flops, 0);
  std::vector<float> g(out.size(), 1.0f);
  emb.Backward(batch, g.data());
  EXPECT_EQ(emb.stats().backward_calls, 1);
  EXPECT_GT(emb.stats().backward_flops, emb.stats().forward_flops);
}

TEST(TtEmbeddingBag, WorkspaceIsBoundedByBlockSize) {
  Rng rng(12);
  TtEmbeddingConfig small = SmallConfig(3, 8);
  small.block_size = 4;
  TtEmbeddingConfig large = SmallConfig(3, 8);
  large.block_size = 4096;
  TtEmbeddingBag a(small, TtInit::kGaussian, rng);
  TtEmbeddingBag b(large, TtInit::kGaussian, rng);
  EXPECT_LT(a.WorkspaceBytes(), b.WorkspaceBytes());
}

TEST(TtEmbeddingBag, RejectsBadBlockSize) {
  Rng rng(13);
  TtEmbeddingConfig cfg = SmallConfig(3, 2);
  cfg.block_size = 0;
  EXPECT_THROW(TtEmbeddingBag(cfg, TtInit::kGaussian, rng), ConfigError);
}

}  // namespace
}  // namespace ttrec
