// TT-SVD properties: exact reconstruction at full rank, monotone error in
// rank, agreement between decomposed cores and the batched lookup kernel.
#include <gtest/gtest.h>

#include <vector>

#include "data/csr_batch.h"
#include "tensor/check.h"
#include "tensor/random.h"
#include "tt/tt_decompose.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

Tensor RandomTable(Rng& rng, int64_t rows, int64_t dim) {
  Tensor t({rows, dim});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return t;
}

class TtSvdExactness
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>> {};

// With generous requested ranks TT-SVD must reconstruct the table exactly
// (ranks clamp to the achievable maxima).
TEST_P(TtSvdExactness, FullRankReconstructsExactly) {
  const auto [d, rows, dim] = GetParam();
  Rng rng(static_cast<uint64_t>(d * 10000 + rows + dim));
  Tensor table = RandomTable(rng, rows, dim);
  TtShape shape = MakeTtShape(rows, dim, d, /*rank=*/512);
  TtCores cores = TtDecompose(table, shape);
  EXPECT_LT(TtReconstructionError(table, cores), 1e-4)
      << "d=" << d << " rows=" << rows << " dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(Shapes, TtSvdExactness,
                         ::testing::Combine(::testing::Values(2, 3),
                                            ::testing::Values(24, 60),
                                            ::testing::Values(4, 8)));

TEST(TtDecompose, ErrorDecreasesWithRank) {
  Rng rng(123);
  Tensor table = RandomTable(rng, 64, 16);
  double prev = 1e9;
  for (int64_t rank : {1, 2, 4, 8, 16}) {
    TtShape shape = MakeTtShape(64, 16, 3, rank);
    const double err = TtReconstructionError(table, TtDecompose(table, shape));
    EXPECT_LE(err, prev + 1e-5) << "rank " << rank;
    prev = err;
  }
}

TEST(TtDecompose, LowRankTableRecoveredAtLowRank) {
  // Table assembled from a true TT model of rank 2 must be recovered
  // (near) exactly by TT-SVD at rank 2.
  TtShape gen_shape = MakeTtShapeExplicit(60, 8, {4, 15}, {2, 4}, 2);
  TtCores gen(gen_shape);
  Rng rng(9);
  InitializeTtCoresWithTarget(gen, TtInit::kGaussian, rng, 1.0);
  Tensor table = gen.MaterializeFull();

  TtShape dec_shape = MakeTtShapeExplicit(60, 8, {4, 15}, {2, 4}, 2);
  TtCores dec = TtDecompose(table, dec_shape);
  EXPECT_LT(TtReconstructionError(table, dec), 1e-4);
}

TEST(TtDecompose, PaddedRowsAreIgnored)
{
  // prod(row_factors) > num_rows: padding must not disturb the logical rows.
  Rng rng(5);
  Tensor table = RandomTable(rng, 50, 8);  // factors (4, 15) cover 60 rows
  TtShape shape = MakeTtShapeExplicit(50, 8, {4, 15}, {2, 4}, 64);
  TtCores cores = TtDecompose(table, shape);
  EXPECT_LT(TtReconstructionError(table, cores), 1e-4);
}

TEST(TtDecompose, DecomposedCoresDriveBatchedKernel) {
  // Adopting TT-SVD cores in TtEmbeddingBag must reproduce table rows
  // through the batched lookup path.
  Rng rng(17);
  Tensor table = RandomTable(rng, 60, 8);
  TtShape shape = MakeTtShape(60, 8, 3, 256);
  TtCores cores = TtDecompose(table, shape);

  TtEmbeddingConfig cfg;
  cfg.shape = cores.shape();
  TtEmbeddingBag emb(cfg, std::move(cores));
  std::vector<int64_t> idx = {0, 7, 59, 33};
  std::vector<float> out(idx.size() * 8);
  emb.LookupRows(idx, out.data());
  for (size_t i = 0; i < idx.size(); ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(out[i * 8 + static_cast<size_t>(j)],
                  table.data()[idx[i] * 8 + j], 1e-3f);
    }
  }
}

TEST(TtDecompose, RejectsMismatchedTable) {
  Rng rng(3);
  Tensor table = RandomTable(rng, 60, 8);
  TtShape shape = MakeTtShape(50, 8, 3, 4);
  EXPECT_THROW(TtDecompose(table, shape), ShapeError);
}

}  // namespace
}  // namespace ttrec
