// Baseline embedding operators: T3nsor-style full-materialization TT,
// hashing trick, low-rank factorization.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "baselines/hashed_embedding.h"
#include "baselines/quantized_embedding.h"
#include "baselines/lowrank_embedding.h"
#include "baselines/t3nsor_embedding.h"
#include "tensor/check.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

TEST(T3nsorEmbeddingBag, ForwardMatchesTtRecExactly) {
  // Same cores, different decompression strategy -> identical outputs.
  Rng r1(5), r2(5);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(60, 8, 3, 4);
  T3nsorEmbeddingBag t3(cfg, TtInit::kGaussian, r1);
  TtEmbeddingBag tt(cfg, TtInit::kGaussian, r2);

  CsrBatch batch;
  batch.indices = {3, 17, 42, 3};
  batch.offsets = {0, 2, 4};
  std::vector<float> a(static_cast<size_t>(2 * 8)), b(a.size());
  t3.Forward(batch, a.data());
  tt.Forward(batch, b.data());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-4f);
}

TEST(T3nsorEmbeddingBag, WorkingSetEqualsFullTable) {
  Rng rng(6);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(1000, 16, 3, 8);
  T3nsorEmbeddingBag t3(cfg, TtInit::kGaussian, rng);
  // The Figure 8 contrast: persistent params are tiny, working set is the
  // uncompressed table.
  EXPECT_EQ(t3.WorkingSetBytes(), 1000 * 16 * 4);
  EXPECT_LT(t3.MemoryBytes(), t3.WorkingSetBytes());
}

TEST(T3nsorEmbeddingBag, TrainsLikeTt) {
  Rng rng(7);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(40, 8, 3, 4);
  T3nsorEmbeddingBag t3(cfg, TtInit::kGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({7});
  std::vector<float> target(8, 0.3f), out(8), grad(8);
  double first = -1, last = -1;
  for (int step = 0; step < 150; ++step) {
    t3.Forward(batch, out.data());
    double loss = 0;
    for (int j = 0; j < 8; ++j) {
      const float d = out[static_cast<size_t>(j)] - target[static_cast<size_t>(j)];
      loss += 0.5 * d * d;
      grad[static_cast<size_t>(j)] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    t3.Backward(batch, grad.data());
    t3.ApplySgd(0.5f);
  }
  EXPECT_LT(last, 1e-2 * first);
}

TEST(HashedEmbeddingBag, BucketsAreStableAndInRange) {
  Rng rng(8);
  HashedEmbeddingBag emb(10000, 100, 4, PoolingMode::kSum, rng);
  std::set<int64_t> buckets;
  for (int64_t row = 0; row < 1000; ++row) {
    const int64_t b = emb.Bucket(row);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 100);
    EXPECT_EQ(b, emb.Bucket(row));
    buckets.insert(b);
  }
  // Hash spreads across most buckets.
  EXPECT_GT(buckets.size(), 90u);
}

TEST(HashedEmbeddingBag, CollidingRowsShareVectors) {
  Rng rng(9);
  HashedEmbeddingBag emb(10000, 10, 4, PoolingMode::kSum, rng);
  // Find two rows in the same bucket.
  int64_t a = 0, b = -1;
  for (int64_t row = 1; row < 10000; ++row) {
    if (emb.Bucket(row) == emb.Bucket(a)) {
      b = row;
      break;
    }
  }
  ASSERT_GE(b, 0);
  std::vector<float> oa(4), ob(4);
  CsrBatch ba = CsrBatch::FromIndices({a});
  CsrBatch bb = CsrBatch::FromIndices({b});
  emb.Forward(ba, oa.data());
  emb.Forward(bb, ob.data());
  EXPECT_EQ(oa, ob);  // the collision IS the accuracy problem
  // And training one updates the other.
  std::vector<float> g(4, 1.0f);
  emb.Backward(ba, g.data());
  emb.ApplySgd(0.5f);
  std::vector<float> oa2(4), ob2(4);
  emb.Forward(ba, oa2.data());
  emb.Forward(bb, ob2.data());
  EXPECT_EQ(oa2, ob2);
  EXPECT_NE(oa, oa2);
}

TEST(HashedEmbeddingBag, MemoryIsBucketTable) {
  Rng rng(10);
  HashedEmbeddingBag emb(1000000, 1000, 16, PoolingMode::kSum, rng);
  EXPECT_EQ(emb.MemoryBytes(), 1000 * 16 * 4);
  EXPECT_EQ(emb.num_rows(), 1000000);
  EXPECT_THROW(HashedEmbeddingBag(10, 20, 4, PoolingMode::kSum, rng),
               ConfigError);
}

TEST(LowRankEmbeddingBag, ForwardIsFactorProduct) {
  Rng rng(11);
  LowRankEmbeddingBag emb(20, 4, 3, PoolingMode::kSum, rng);
  CsrBatch batch = CsrBatch::FromIndices({5});
  std::vector<float> out(4);
  emb.Forward(batch, out.data());
  for (float x : out) EXPECT_TRUE(std::isfinite(x));
  EXPECT_EQ(emb.MemoryBytes(), (20 * 3 + 3 * 4) * 4);
}

TEST(LowRankEmbeddingBag, GradientCheck) {
  Rng rng(12);
  LowRankEmbeddingBag emb(16, 4, 2, PoolingMode::kSum, rng);
  CsrBatch batch;
  batch.indices = {3, 7, 3};
  batch.offsets = {0, 2, 3};
  std::vector<float> g = {0.5f, -1.0f, 2.0f, 0.25f, 1.0f, 1.0f, -0.5f, 0.75f};

  auto loss = [&]() {
    std::vector<float> out(static_cast<size_t>(2 * 4));
    emb.Forward(batch, out.data());
    double s = 0;
    for (size_t i = 0; i < out.size(); ++i) s += static_cast<double>(g[i]) * out[i];
    return s;
  };
  const double base = loss();
  (void)base;
  emb.Backward(batch, g.data());
  // Finite-difference via SGD trick: apply a tiny step and confirm the loss
  // drops by ~lr * ||grad||^2 (first-order).
  const double l0 = loss();
  emb.ApplySgd(1e-3f);
  const double l1 = loss();
  EXPECT_LT(l1, l0);
}

TEST(LowRankEmbeddingBag, TrainsToTarget) {
  Rng rng(13);
  LowRankEmbeddingBag emb(16, 4, 4, PoolingMode::kSum, rng);
  CsrBatch batch = CsrBatch::FromIndices({2});
  std::vector<float> target = {0.5f, -0.5f, 0.25f, 0.0f};
  std::vector<float> out(4), grad(4);
  double first = -1, last = -1;
  for (int step = 0; step < 400; ++step) {
    emb.Forward(batch, out.data());
    double loss = 0;
    for (int j = 0; j < 4; ++j) {
      const float d = out[static_cast<size_t>(j)] - target[static_cast<size_t>(j)];
      loss += 0.5 * d * d;
      grad[static_cast<size_t>(j)] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    emb.Backward(batch, grad.data());
    emb.ApplySgd(0.5f);
  }
  EXPECT_LT(last, 1e-3 * first + 1e-10);
  EXPECT_THROW(LowRankEmbeddingBag(16, 4, 0, PoolingMode::kSum, rng),
               ConfigError);
}

class QuantBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantBitsSweep, QuantizationErrorBoundedByHalfStep) {
  const int bits = GetParam();
  Rng rng(14);
  Tensor table({50, 16});
  for (int64_t i = 0; i < table.numel(); ++i) {
    table.data()[i] = static_cast<float>(rng.Uniform(-0.5, 0.5));
  }
  QuantizedEmbeddingBag q(table, bits, PoolingMode::kSum);
  // Per row, max error <= scale/2 + rounding slack; the worst-case scale is
  // range / (2^bits - 1) with range <= 1.
  const double max_step = 1.0 / ((1 << bits) - 1);
  EXPECT_LE(q.MaxQuantizationError(table), 0.51 * max_step + 1e-6);
}

TEST_P(QuantBitsSweep, ForwardPoolsDequantizedRows) {
  const int bits = GetParam();
  Rng rng(15);
  Tensor table({20, 4});
  for (int64_t i = 0; i < table.numel(); ++i) {
    table.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  QuantizedEmbeddingBag q(table, bits, PoolingMode::kSum);
  CsrBatch batch;
  batch.indices = {3, 7};
  batch.offsets = {0, 2};
  std::vector<float> out(4);
  q.Forward(batch, out.data());
  std::vector<float> r3(4), r7(4);
  q.DequantizeRow(3, r3.data());
  q.DequantizeRow(7, r7.data());
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)],
                r3[static_cast<size_t>(j)] + r7[static_cast<size_t>(j)],
                1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, QuantBitsSweep, ::testing::Values(4, 8));

TEST(QuantizedEmbeddingBag, MemoryMatchesBitWidth) {
  Tensor table({1000, 16});
  QuantizedEmbeddingBag q8(table, 8, PoolingMode::kSum);
  QuantizedEmbeddingBag q4(table, 4, PoolingMode::kSum);
  // 8-bit: 16 bytes/row payload + 8 bytes scale/offset.
  EXPECT_EQ(q8.MemoryBytes(), 1000 * (16 + 8));
  EXPECT_EQ(q4.MemoryBytes(), 1000 * (8 + 8));
  // Compression vs fp32 caps well below TT's ratios.
  const double ratio8 = 1000.0 * 16 * 4 / static_cast<double>(q8.MemoryBytes());
  EXPECT_LT(ratio8, 4.0);
}

TEST(QuantizedEmbeddingBag, InferenceOnly) {
  Tensor table({10, 4});
  QuantizedEmbeddingBag q(table, 8, PoolingMode::kSum);
  CsrBatch batch = CsrBatch::FromIndices({1});
  std::vector<float> g(4, 1.0f);
  EXPECT_THROW(q.Backward(batch, g.data()), ConfigError);
  EXPECT_THROW(q.ApplySgd(0.1f), ConfigError);
  EXPECT_THROW(QuantizedEmbeddingBag(table, 3, PoolingMode::kSum),
               ConfigError);
}

TEST(QuantizedEmbeddingBag, ConstantRowHandled) {
  Tensor table({2, 4});
  table.Fill(0.75f);
  QuantizedEmbeddingBag q(table, 8, PoolingMode::kSum);
  std::vector<float> row(4);
  q.DequantizeRow(0, row.data());
  for (float x : row) EXPECT_FLOAT_EQ(x, 0.75f);
}

}  // namespace
}  // namespace ttrec
