// RNG / distribution tests: determinism, moments, Zipf pmf agreement,
// truncated-tail sampling (Algorithm 3's inner loop), index shuffle
// bijectivity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "tensor/check.h"
#include "tensor/random.h"
#include "tensor/stats.h"

namespace ttrec {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t x = a.NextUInt64();
    EXPECT_EQ(x, b.NextUInt64());
    if (x != c.NextUInt64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformMoments) {
  Rng rng(2);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.Uniform(-2.0, 4.0));
  EXPECT_NEAR(m.mean(), 1.0, 0.02);
  EXPECT_NEAR(m.variance(), 3.0, 0.05);  // (b-a)^2/12 = 36/12
  EXPECT_GE(m.min(), -2.0);
  EXPECT_LT(m.max(), 4.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(3);
  RunningMoments m;
  for (int i = 0; i < 200000; ++i) m.Add(rng.Normal(1.5, 2.0));
  EXPECT_NEAR(m.mean(), 1.5, 0.02);
  EXPECT_NEAR(m.stddev(), 2.0, 0.02);
}

TEST(Rng, RandIntUnbiasedAndInRange) {
  Rng rng(4);
  std::vector<int64_t> counts(7, 0);
  const int64_t draws = 140000;
  for (int64_t i = 0; i < draws; ++i) {
    const int64_t x = rng.RandInt(7);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, 7);
    ++counts[static_cast<size_t>(x)];
  }
  for (int64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), draws / 7.0, 5.0 * std::sqrt(draws / 7.0));
  }
  EXPECT_THROW(rng.RandInt(0), ConfigError);
}

TEST(Rng, TruncatedTailNormalExcludesCenter) {
  Rng rng(5);
  RunningMoments m;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.TruncatedTailNormal(2.0);
    ASSERT_GT(std::abs(x), 2.0);
    m.Add(x);
  }
  EXPECT_NEAR(m.mean(), 0.0, 0.03);
  // Matches the closed-form tail stddev.
  EXPECT_NEAR(m.stddev(), TailNormalStddev(2.0), 0.02);
}

TEST(TailNormalStddev, KnownValues) {
  EXPECT_DOUBLE_EQ(TailNormalStddev(0.0), 1.0);
  // Monte-Carlo-free sanity: variance grows with the threshold.
  EXPECT_GT(TailNormalStddev(1.0), 1.0);
  EXPECT_GT(TailNormalStddev(2.0), TailNormalStddev(1.0));
  EXPECT_GT(TailNormalStddev(3.0), 3.0);  // all mass beyond |3|
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(6);
  Rng child = parent.Split();
  // Streams differ.
  bool differ = false;
  Rng parent2(6);
  Rng child2 = parent2.Split();
  for (int i = 0; i < 50; ++i) {
    const uint64_t c = child.NextUInt64();
    EXPECT_EQ(c, child2.NextUInt64());  // deterministic
    if (c != parent.NextUInt64()) differ = true;
  }
  EXPECT_TRUE(differ);
}

class ZipfPmfSweep : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(ZipfPmfSweep, EmpiricalMatchesAnalyticPmf) {
  const auto [n, s] = GetParam();
  ZipfSampler zipf(n, s);
  Rng rng(1000 + n + static_cast<int>(s * 10));
  const int64_t draws = 200000;
  std::vector<int64_t> counts(static_cast<size_t>(n), 0);
  for (int64_t i = 0; i < draws; ++i) {
    const int64_t k = zipf.Sample(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, n);
    ++counts[static_cast<size_t>(k)];
  }
  // Compare the head of the distribution (ranks with enough mass).
  for (int64_t k = 0; k < std::min<int64_t>(n, 10); ++k) {
    const double expected = zipf.Pmf(k) * static_cast<double>(draws);
    if (expected < 100.0) continue;
    EXPECT_NEAR(static_cast<double>(counts[static_cast<size_t>(k)]), expected,
                6.0 * std::sqrt(expected))
        << "rank " << k << " n=" << n << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, ZipfPmfSweep,
    ::testing::Combine(::testing::Values(10, 1000, 100000),
                       ::testing::Values(0.5, 1.0, 1.2, 2.0)));

TEST(ZipfSampler, UniformWhenExponentZero) {
  ZipfSampler zipf(100, 0.0);
  Rng rng(11);
  std::vector<int64_t> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[static_cast<size_t>(zipf.Sample(rng))];
  for (int64_t c : counts) EXPECT_NEAR(static_cast<double>(c), 1000.0, 200.0);
}

TEST(ZipfSampler, SingleElement) {
  ZipfSampler zipf(1, 1.1);
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0);
}

TEST(ZipfSampler, RejectsBadConfig) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ConfigError);
  EXPECT_THROW(ZipfSampler(10, -0.5), ConfigError);
}

TEST(ZipfSampler, PmfIsNormalizedAndMonotone) {
  ZipfSampler zipf(500, 1.3);
  double total = 0.0;
  double prev = 1.0;
  for (int64_t k = 0; k < 500; ++k) {
    const double p = zipf.Pmf(k);
    EXPECT_LE(p, prev);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

class IndexShuffleSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(IndexShuffleSweep, IsBijection) {
  const int64_t n = GetParam();
  IndexShuffle shuffle(n, 777);
  std::set<int64_t> seen;
  for (int64_t k = 0; k < n; ++k) {
    const int64_t v = shuffle.Map(k);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    seen.insert(v);
  }
  EXPECT_EQ(static_cast<int64_t>(seen.size()), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, IndexShuffleSweep,
                         ::testing::Values(1, 2, 16, 97, 1000, 4096));

TEST(IndexShuffle, RejectsOutOfRange) {
  IndexShuffle shuffle(10, 1);
  EXPECT_THROW(shuffle.Map(-1), IndexError);
  EXPECT_THROW(shuffle.Map(10), IndexError);
}

}  // namespace
}  // namespace ttrec
