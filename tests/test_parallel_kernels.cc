// Block-parallel TT kernel determinism and regression suite.
//
// Contract under test (DESIGN.md "Kernel parallelism"): forward, backward,
// and optimizer application of TtEmbeddingBag are bitwise identical for any
// global ThreadPool size, with and without dedup and stash. Plus regression
// tests for the stale-stash gradient corruption and the workspace
// accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/check.h"
#include "tensor/cpu_features.h"
#include "tensor/parallel.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

/// Restores the global pool size on scope exit so thread-count sweeps never
/// leak into other tests.
class PoolGuard {
 public:
  PoolGuard() : saved_(ThreadPool::Global().num_threads()) {}
  ~PoolGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

TtEmbeddingConfig BaseConfig() {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(/*num_rows=*/60, /*emb_dim=*/8, /*num_cores=*/3,
                          /*rank=*/4);
  cfg.block_size = 7;  // many blocks even on small batches
  return cfg;
}

/// ~180 lookups over 60 rows, bag sizes 0..5, duplicates, per-sample
/// weights. Big enough that block_size 7 yields dozens of blocks (several
/// rounds at every tested thread count).
CsrBatch BigBatch(bool with_weights) {
  CsrBatch b;
  Rng rng(42);
  b.offsets.push_back(0);
  for (int bag = 0; bag < 64; ++bag) {
    const int64_t size = static_cast<int64_t>(rng.Uniform(0.0, 5.99));
    for (int64_t i = 0; i < size; ++i) {
      b.indices.push_back(static_cast<int64_t>(rng.Uniform(0.0, 59.99)));
    }
    b.offsets.push_back(static_cast<int64_t>(b.indices.size()));
  }
  if (with_weights) {
    for (size_t i = 0; i < b.indices.size(); ++i) {
      b.weights.push_back(0.25f + 0.01f * static_cast<float>(i % 7));
    }
  }
  return b;
}

std::vector<float> FixedGrad(int64_t n) {
  std::vector<float> g(static_cast<size_t>(n));
  Rng rng(99);
  for (float& x : g) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return g;
}

struct PipelineResult {
  std::vector<float> fwd1, fwd2;
  std::vector<std::vector<float>> grads;  // dense per-core grads after step 1
  std::vector<std::vector<float>> cores;  // core params after two full steps
};

/// Two full train steps (Forward/Backward/optimizer) on two different
/// batches at the given pool size; captures every intermediate worth
/// comparing bitwise.
PipelineResult RunPipeline(const TtEmbeddingConfig& cfg, int threads,
                           bool adagrad, bool with_weights) {
  ThreadPool::SetGlobalThreads(threads);
  Rng rng(1234);
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  CsrBatch batch1 = BigBatch(with_weights);
  CsrBatch batch2 = BigBatch(with_weights);
  std::reverse(batch2.indices.begin(), batch2.indices.end());

  PipelineResult r;
  const int64_t N = emb.emb_dim();

  r.fwd1.assign(static_cast<size_t>(batch1.num_bags() * N), 0.0f);
  emb.Forward(batch1, r.fwd1.data());
  const std::vector<float> g1 = FixedGrad(batch1.num_bags() * N);
  emb.Backward(batch1, g1.data());
  for (int k = 0; k < emb.cores().num_cores(); ++k) {
    const Tensor& gk = emb.core_grad(k);
    r.grads.emplace_back(gk.data(), gk.data() + gk.numel());
  }
  if (adagrad) {
    emb.ApplyAdagrad(0.05f);
  } else {
    emb.ApplySgd(0.05f);
  }

  r.fwd2.assign(static_cast<size_t>(batch2.num_bags() * N), 0.0f);
  emb.Forward(batch2, r.fwd2.data());
  const std::vector<float> g2 = FixedGrad(batch2.num_bags() * N);
  emb.Backward(batch2, g2.data());
  if (adagrad) {
    emb.ApplyAdagrad(0.05f);
  } else {
    emb.ApplySgd(0.05f);
  }
  for (int k = 0; k < emb.cores().num_cores(); ++k) {
    const Tensor& ck = emb.cores().core(k);
    r.cores.emplace_back(ck.data(), ck.data() + ck.numel());
  }
  return r;
}

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b, const char* what,
                        int threads) {
  ASSERT_EQ(a.size(), b.size()) << what << " @ " << threads << " threads";
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << " differs from the single-thread result at " << threads
      << " threads";
}

void ExpectSamePipeline(const PipelineResult& ref, const PipelineResult& got,
                        int threads) {
  ExpectBitwiseEqual(ref.fwd1, got.fwd1, "forward (step 1)", threads);
  ExpectBitwiseEqual(ref.fwd2, got.fwd2, "forward (step 2)", threads);
  ASSERT_EQ(ref.grads.size(), got.grads.size());
  for (size_t k = 0; k < ref.grads.size(); ++k) {
    ExpectBitwiseEqual(ref.grads[k], got.grads[k], "core gradient", threads);
  }
  ASSERT_EQ(ref.cores.size(), got.cores.size());
  for (size_t k = 0; k < ref.cores.size(); ++k) {
    ExpectBitwiseEqual(ref.cores[k], got.cores[k], "core after step",
                       threads);
  }
}

struct ParallelCase {
  const char* name;
  bool dedup;
  bool stash;
  bool adagrad;
  bool weights;
  PoolingMode pooling;
};

class TtEmbeddingParallel : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(TtEmbeddingParallel, BitwiseIdenticalAcrossThreadCounts) {
  const ParallelCase& pc = GetParam();
  TtEmbeddingConfig cfg = BaseConfig();
  cfg.deduplicate = pc.dedup;
  cfg.stash_intermediates = pc.stash;
  cfg.pooling = pc.pooling;

  PoolGuard guard;
  const PipelineResult ref =
      RunPipeline(cfg, /*threads=*/1, pc.adagrad, pc.weights);
  for (int threads : {2, 8}) {
    const PipelineResult got =
        RunPipeline(cfg, threads, pc.adagrad, pc.weights);
    ExpectSamePipeline(ref, got, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TtEmbeddingParallel,
    ::testing::Values(
        ParallelCase{"plain_sgd", false, false, false, false,
                     PoolingMode::kSum},
        ParallelCase{"dedup_sgd", true, false, false, false,
                     PoolingMode::kSum},
        ParallelCase{"stash_sgd", false, true, false, false,
                     PoolingMode::kSum},
        ParallelCase{"plain_adagrad_weighted_mean", false, false, true, true,
                     PoolingMode::kMean},
        ParallelCase{"dedup_adagrad", true, false, true, false,
                     PoolingMode::kSum},
        ParallelCase{"stash_adagrad_weighted", false, true, true, true,
                     PoolingMode::kSum}),
    [](const ::testing::TestParamInfo<ParallelCase>& info) {
      return std::string(info.param.name);
    });

TEST(TtEmbeddingParallelOps, LookupRowsBitwiseIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  std::vector<int64_t> idx;
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    idx.push_back(static_cast<int64_t>(rng.Uniform(0.0, 59.99)));
  }

  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    Rng init_rng(55);
    TtEmbeddingBag emb(BaseConfig(), TtInit::kGaussian, init_rng);
    std::vector<float> out(idx.size() * static_cast<size_t>(emb.emb_dim()));
    emb.LookupRows(idx, out.data());
    return out;
  };

  const std::vector<float> ref = run(1);
  for (int threads : {2, 8}) {
    ExpectBitwiseEqual(ref, run(threads), "LookupRows", threads);
  }
}

TEST(TtEmbeddingParallelOps, ForwardInferenceMatchesForwardBitwise) {
  // ForwardInference shares the block-parallel engine with Forward (minus
  // stash/dedup); on a plain config the two must agree bitwise at any
  // thread count.
  PoolGuard guard;
  for (int threads : {1, 2, 8}) {
    ThreadPool::SetGlobalThreads(threads);
    Rng rng(11);
    TtEmbeddingBag emb(BaseConfig(), TtInit::kGaussian, rng);
    CsrBatch batch = BigBatch(/*with_weights=*/true);
    std::vector<float> train(
        static_cast<size_t>(batch.num_bags() * emb.emb_dim()), 0.0f);
    std::vector<float> serve(train.size(), 0.0f);
    emb.Forward(batch, train.data());
    emb.ForwardInference(batch, serve.data());
    ExpectBitwiseEqual(train, serve, "ForwardInference vs Forward", threads);
  }
}

TEST(TtEmbeddingStashRegression, BackwardOnDifferentBatchRecomputes) {
  // Regression: Backward used to trust the stash whenever the lookup COUNT
  // matched. Forward(A); Backward(B) with |A| == |B| replayed A's
  // intermediates and silently corrupted every gradient. With the batch
  // fingerprint the stash is rejected and intermediates are recomputed —
  // bitwise the gradients a Forward(B); Backward(B) pairing produces.
  TtEmbeddingConfig cfg = BaseConfig();
  cfg.stash_intermediates = true;

  CsrBatch a = BigBatch(/*with_weights=*/false);
  CsrBatch b = a;
  std::reverse(b.indices.begin(), b.indices.end());
  ASSERT_EQ(a.num_lookups(), b.num_lookups());
  ASSERT_NE(a.indices, b.indices);

  Rng rng1(321), rng2(321);
  TtEmbeddingBag mismatched(cfg, TtInit::kGaussian, rng1);
  TtEmbeddingBag reference(cfg, TtInit::kGaussian, rng2);

  const int64_t N = mismatched.emb_dim();
  std::vector<float> out(static_cast<size_t>(a.num_bags() * N));
  const std::vector<float> g = FixedGrad(a.num_bags() * N);

  mismatched.Forward(a, out.data());  // stashes A's intermediates
  mismatched.Backward(b, g.data());   // must NOT replay them for B

  reference.Forward(b, out.data());
  reference.Backward(b, g.data());

  for (int k = 0; k < mismatched.cores().num_cores(); ++k) {
    const Tensor& gm = mismatched.core_grad(k);
    const Tensor& gr = reference.core_grad(k);
    ASSERT_EQ(gm.numel(), gr.numel());
    EXPECT_EQ(std::memcmp(gm.data(), gr.data(),
                          static_cast<size_t>(gm.numel()) * sizeof(float)),
              0)
        << "core " << k
        << ": stale stash leaked into gradients of a different batch";
  }
}

TEST(TtEmbeddingStashRegression, MatchingBatchStillUsesStashCorrectly) {
  // The fingerprint must not break the legitimate stash path: Forward(A);
  // Backward(A) equals the recompute configuration bitwise.
  TtEmbeddingConfig stash_cfg = BaseConfig();
  stash_cfg.stash_intermediates = true;
  TtEmbeddingConfig recompute_cfg = BaseConfig();

  CsrBatch a = BigBatch(/*with_weights=*/false);
  Rng rng1(77), rng2(77);
  TtEmbeddingBag stashed(stash_cfg, TtInit::kGaussian, rng1);
  TtEmbeddingBag recomputed(recompute_cfg, TtInit::kGaussian, rng2);

  const int64_t N = stashed.emb_dim();
  std::vector<float> out(static_cast<size_t>(a.num_bags() * N));
  const std::vector<float> g = FixedGrad(a.num_bags() * N);

  stashed.Forward(a, out.data());
  stashed.Backward(a, g.data());
  recomputed.Forward(a, out.data());
  recomputed.Backward(a, g.data());

  for (int k = 0; k < stashed.cores().num_cores(); ++k) {
    const Tensor& gs = stashed.core_grad(k);
    const Tensor& gr = recomputed.core_grad(k);
    EXPECT_EQ(std::memcmp(gs.data(), gr.data(),
                          static_cast<size_t>(gs.numel()) * sizeof(float)),
              0)
        << "core " << k << ": stash and recompute paths diverged";
  }
}

/// Restores the forced SIMD dispatch tier on scope exit.
class TierGuard {
 public:
  TierGuard() : saved_(ActiveSimdTier()) {}
  ~TierGuard() { SetSimdTier(saved_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  SimdTier saved_;
};

std::vector<SimdTier> TestableTiers() {
  std::vector<SimdTier> tiers;
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

TEST(TtEmbeddingParallelTiers, PipelineBitwiseIdenticalAcrossThreadsInEveryTier) {
  // The thread-count determinism contract holds PER dispatch tier: force
  // each tier this machine supports and re-run the full pipeline sweep.
  // (Different tiers legitimately differ bitwise from each other — that
  // cross-tier gap is gated against GemmRef in test_gemm, not here.)
  PoolGuard pool_guard;
  TierGuard tier_guard;
  TtEmbeddingConfig cfg = BaseConfig();
  for (SimdTier tier : TestableTiers()) {
    SetSimdTier(tier);
    const PipelineResult ref = RunPipeline(cfg, /*threads=*/1,
                                           /*adagrad=*/false,
                                           /*with_weights=*/true);
    for (int threads : {2, 8}) {
      const PipelineResult got =
          RunPipeline(cfg, threads, /*adagrad=*/false, /*with_weights=*/true);
      SCOPED_TRACE(std::string("tier=") + SimdTierName(tier));
      ExpectSamePipeline(ref, got, threads);
    }
  }
}

TEST(TtEmbeddingParallelTiers, FusedMatchesStagedBitwiseInEveryTier) {
  // Within a tier the fused decode→GEMM-chain→pool pipeline must be
  // bitwise interchangeable with the staged round-buffer path: identical
  // per-row Gemm sequence, identical per-bag Axpy accumulation order.
  PoolGuard pool_guard;
  TierGuard tier_guard;
  CsrBatch batch = BigBatch(/*with_weights=*/true);
  std::vector<int64_t> idx;
  Rng idx_rng(13);
  for (int i = 0; i < 150; ++i) {
    idx.push_back(static_cast<int64_t>(idx_rng.Uniform(0.0, 59.99)));
  }
  for (SimdTier tier : TestableTiers()) {
    SetSimdTier(tier);
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalThreads(threads);
      TtEmbeddingConfig fused_cfg = BaseConfig();
      fused_cfg.fuse_lookup = true;
      TtEmbeddingConfig staged_cfg = BaseConfig();
      staged_cfg.fuse_lookup = false;
      Rng rng1(314), rng2(314);
      TtEmbeddingBag fused(fused_cfg, TtInit::kGaussian, rng1);
      TtEmbeddingBag staged(staged_cfg, TtInit::kGaussian, rng2);

      const int64_t N = fused.emb_dim();
      std::vector<float> out_f(static_cast<size_t>(batch.num_bags() * N));
      std::vector<float> out_s(out_f.size());
      fused.Forward(batch, out_f.data());
      staged.Forward(batch, out_s.data());
      SCOPED_TRACE(std::string("tier=") + SimdTierName(tier) +
                   " threads=" + std::to_string(threads));
      ExpectBitwiseEqual(out_f, out_s, "fused vs staged Forward", threads);

      std::vector<float> rows_f(idx.size() * static_cast<size_t>(N));
      std::vector<float> rows_s(rows_f.size());
      fused.LookupRows(idx, rows_f.data());
      staged.LookupRows(idx, rows_s.data());
      ExpectBitwiseEqual(rows_f, rows_s, "fused vs staged LookupRows",
                         threads);
    }
  }
}

TEST(TtWorkspaceRegression, AccountsForBackwardAndDedupAndThreads) {
  // Regression: WorkspaceBytes used to count only the forward intermediates
  // and pointer arrays — no backward ping-pong buffers, no slice-gradient
  // scratch, no dedup scratch, no per-thread multiplier.
  TtEmbeddingConfig cfg = BaseConfig();
  cfg.block_size = 64;
  Rng rng(5);
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  const int64_t ws1 = emb.WorkspaceBytes(/*num_threads=*/1);
  // Backward needs at least the two D ping-pong buffers on top of the
  // forward-only accounting: 2 * block * max_d_stride floats, where
  // max_d_stride >= emb_dim.
  const int64_t d_pingpong =
      2 * cfg.block_size * emb.emb_dim() *
      static_cast<int64_t>(sizeof(float));
  EXPECT_GE(ws1, d_pingpong);

  // More threads -> more concurrent block tasks -> more workspace. Both the
  // per-block-task term and the shared round buffer scale with the pool
  // width, so 8 threads need several times the single-thread bound.
  const int64_t ws8 = emb.WorkspaceBytes(/*num_threads=*/8);
  EXPECT_GT(ws8, ws1);
  EXPECT_GE(ws8, 4 * ws1);

  // Dedup adds its scratch (unique ids, mapping, expanded rows, map).
  TtEmbeddingConfig dedup_cfg = cfg;
  dedup_cfg.deduplicate = true;
  Rng rng2(5);
  TtEmbeddingBag dedup_emb(dedup_cfg, TtInit::kGaussian, rng2);
  EXPECT_GT(dedup_emb.WorkspaceBytes(1), ws1);

  // Still monotone in block size (the planner sizes blocks by memory).
  TtEmbeddingConfig big_cfg = cfg;
  big_cfg.block_size = 4096;
  Rng rng3(5);
  TtEmbeddingBag big_emb(big_cfg, TtInit::kGaussian, rng3);
  EXPECT_LT(ws1, big_emb.WorkspaceBytes(1));
}

}  // namespace
}  // namespace ttrec
