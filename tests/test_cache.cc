// Cache module: frequency tracker properties, LFU row cache, and the hybrid
// cached TT embedding (partition correctness, warm-up semantics, gradient
// routing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/cached_tt_embedding.h"
#include "cache/freq_tracker.h"
#include "cache/lfu_cache.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

TEST(FreqTracker, CountsAndTotals) {
  FreqTracker t(16);
  t.Increment(5);
  t.Increment(5);
  t.Increment(9, 3);
  EXPECT_EQ(t.Count(5), 2);
  EXPECT_EQ(t.Count(9), 3);
  EXPECT_EQ(t.Count(42), 0);
  EXPECT_EQ(t.size(), 2);
  EXPECT_EQ(t.total(), 5);
}

TEST(FreqTracker, GrowsPastInitialCapacity) {
  FreqTracker t(16);
  for (int64_t k = 0; k < 10000; ++k) t.Increment(k * 131071);
  EXPECT_EQ(t.size(), 10000);
  for (int64_t k = 0; k < 10000; k += 997) {
    EXPECT_EQ(t.Count(k * 131071), 1);
  }
}

TEST(FreqTracker, TopKOrderingWithTies) {
  FreqTracker t;
  t.Increment(1, 10);
  t.Increment(2, 30);
  t.Increment(3, 10);
  t.Increment(4, 20);
  const auto top = t.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 2);
  EXPECT_EQ(top[1], 4);
  EXPECT_EQ(top[2], 1);  // tie with 3 broken by smaller key
  EXPECT_EQ(t.TopK(100).size(), 4u);  // clamped to size
  EXPECT_TRUE(t.TopK(0).empty());
}

TEST(FreqTracker, TopKMatchesExactCountsUnderSkewedStream) {
  FreqTracker t;
  Rng rng(3);
  ZipfSampler zipf(5000, 1.3);
  std::unordered_map<int64_t, int64_t> oracle;
  for (int i = 0; i < 50000; ++i) {
    const int64_t k = zipf.Sample(rng);
    t.Increment(k);
    ++oracle[k];
  }
  for (const auto& [k, v] : oracle) EXPECT_EQ(t.Count(k), v);
  // Top-20 counts are exactly the oracle's top-20 counts.
  auto top = t.TopK(20);
  std::vector<int64_t> oracle_counts;
  for (const auto& [k, v] : oracle) oracle_counts.push_back(v);
  std::sort(oracle_counts.rbegin(), oracle_counts.rend());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(t.Count(top[i]), oracle_counts[i]);
  }
}

TEST(FreqTracker, ClearAndDecay) {
  FreqTracker t;
  t.Increment(1, 10);
  t.Increment(2, 3);
  t.Decay(0.5);
  EXPECT_EQ(t.Count(1), 5);
  EXPECT_EQ(t.Count(2), 1);
  EXPECT_EQ(t.total(), 6);
  t.Clear();
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.Count(1), 0);
  EXPECT_THROW(t.Decay(1.0), ConfigError);
  EXPECT_THROW(t.Increment(-1), IndexError);
}

TEST(LfuRowCache, PopulateFindUpdate) {
  LfuRowCache cache(4, 3);
  std::vector<int64_t> rows = {10, 20, 30};
  std::vector<float> vals = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  cache.Populate(rows, vals.data());
  EXPECT_EQ(cache.size(), 3);
  ASSERT_NE(cache.Find(20), nullptr);
  EXPECT_FLOAT_EQ(cache.Find(20)[0], 4.0f);
  EXPECT_EQ(cache.Find(99), nullptr);

  // Gradient + SGD on a cached row.
  float* g = cache.GradFor(20);
  ASSERT_NE(g, nullptr);
  g[0] = 1.0f;
  cache.ApplySgd(0.5f);
  EXPECT_FLOAT_EQ(cache.Find(20)[0], 3.5f);
  // Gradient cleared after SGD.
  EXPECT_FLOAT_EQ(cache.GradFor(20)[0], 0.0f);
}

TEST(LfuRowCache, RepopulateDiscardsOldContents) {
  LfuRowCache cache(2, 2);
  std::vector<float> v1 = {1, 1, 2, 2};
  cache.Populate(std::vector<int64_t>{5, 6}, v1.data());
  std::vector<float> v2 = {9, 9};
  cache.Populate(std::vector<int64_t>{7}, v2.data());
  EXPECT_EQ(cache.Find(5), nullptr);  // evicted, learned weights discarded
  EXPECT_EQ(cache.Find(6), nullptr);
  ASSERT_NE(cache.Find(7), nullptr);
  EXPECT_EQ(cache.size(), 1);
}

TEST(LfuRowCache, PopulateBeyondCapacityThrows) {
  // Regression: Populate used to silently truncate an oversized row set
  // (keeping the first `capacity` rows) while resetting stats as if fully
  // populated — a capacity-planning bug visible only as low hit rates.
  LfuRowCache cache(2, 1);
  std::vector<float> vals = {1, 2, 3};
  EXPECT_THROW(cache.Populate(std::vector<int64_t>{1, 2, 3}, vals.data()),
               ConfigError);
  // Exactly-capacity populations still work.
  cache.Populate(std::vector<int64_t>{1, 2}, vals.data());
  EXPECT_EQ(cache.size(), 2);
}

TEST(FreqTracker, DecayDropsDeadKeysAndShrinks) {
  // Regression: Decay used to floor counts in place and keep dead slots
  // occupied — size() never shrank, and repeated decay cycles ratcheted the
  // load factor until Grow() doubled the table over tombstones.
  FreqTracker t(16);
  for (int64_t k = 0; k < 100; ++k) t.Increment(k, 1);
  EXPECT_EQ(t.size(), 100);
  t.Decay(0.5);  // floor(0.5) == 0 for every key
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.total(), 0);
  for (int64_t k = 0; k < 100; ++k) EXPECT_EQ(t.Count(k), 0);
  // Survivors keep decayed counts; dead keys are really gone (re-inserting
  // one starts from scratch).
  t.Increment(7, 10);
  t.Increment(8, 1);
  t.Decay(0.5);
  EXPECT_EQ(t.size(), 1);
  EXPECT_EQ(t.Count(7), 5);
  EXPECT_EQ(t.Count(8), 0);
  t.Increment(8, 2);
  EXPECT_EQ(t.Count(8), 2);
}

TEST(FreqTracker, RepeatedDecayDoesNotRatchetLoadFactor) {
  // Many insert+decay cycles over disjoint key ranges: with tombstones this
  // kept growing the table; with the rebuild the tracker returns to empty
  // after every full decay.
  FreqTracker t(16);
  for (int iter = 0; iter < 50; ++iter) {
    for (int64_t k = 0; k < 64; ++k) t.Increment(iter * 1000 + k, 1);
    t.Decay(0.25);
    EXPECT_EQ(t.size(), 0) << "cycle " << iter;
  }
}

TEST(LfuRowCache, RejectsDuplicatesAndBadConfig) {
  LfuRowCache cache(4, 2);
  std::vector<float> vals = {1, 2, 3, 4};
  EXPECT_THROW(cache.Populate(std::vector<int64_t>{3, 3}, vals.data()),
               ConfigError);
  EXPECT_THROW(LfuRowCache(0, 2), ConfigError);
  EXPECT_THROW(LfuRowCache(2, 0), ConfigError);
}

TEST(LfuRowCache, HitRateAccounting) {
  LfuRowCache cache(2, 1);
  std::vector<float> vals = {1, 2};
  cache.Populate(std::vector<int64_t>{1, 2}, vals.data());
  cache.ResetStats();
  (void)cache.Find(1);
  (void)cache.Find(2);
  (void)cache.Find(3);
  (void)cache.Find(4);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
  cache.ResetStats();
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
}

// ---------------------------------------------------------------------------
// CachedTtEmbeddingBag
// ---------------------------------------------------------------------------

CachedTtConfig SmallCachedConfig(int64_t capacity = 8,
                                 int64_t warmup = 4,
                                 int64_t refresh = 2) {
  CachedTtConfig cfg;
  cfg.tt.shape = MakeTtShape(64, 8, 3, 4);
  cfg.tt.block_size = 16;
  cfg.cache_capacity = capacity;
  cfg.warmup_iterations = warmup;
  cfg.refresh_interval = refresh;
  return cfg;
}

CsrBatch SkewedBatch(Rng& rng, int64_t bags, int64_t hot_rows = 4,
                     double hot_prob = 0.8) {
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < bags; ++i) {
    idx.push_back(rng.Bernoulli(hot_prob) ? rng.RandInt(hot_rows)
                                          : hot_rows + rng.RandInt(60 - hot_rows));
  }
  return CsrBatch::FromIndices(std::move(idx));
}

TEST(CachedTtEmbeddingBag, MatchesPureTtWhileCacheCold) {
  // Before the first refresh (iteration 0), everything goes through TT, so
  // output must equal a plain TtEmbeddingBag with identical init.
  Rng r1(42), r2(42);
  CachedTtConfig cfg = SmallCachedConfig();
  CachedTtEmbeddingBag cached(cfg, TtInit::kGaussian, r1);
  TtEmbeddingConfig plain_cfg = cfg.tt;
  TtEmbeddingBag plain(plain_cfg, TtInit::kGaussian, r2);

  CsrBatch batch = CsrBatch::FromIndices({1, 5, 1, 33});
  std::vector<float> a(static_cast<size_t>(4 * 8)), b(a.size());
  cached.Forward(batch, a.data());
  plain.Forward(batch, b.data());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(CachedTtEmbeddingBag, CacheServesHotRowsAfterWarmup) {
  Rng rng(7);
  CachedTtEmbeddingBag emb(SmallCachedConfig(/*capacity=*/4, /*warmup=*/6,
                                             /*refresh=*/2),
                           TtInit::kGaussian, rng);
  Rng data_rng(99);
  std::vector<float> out(static_cast<size_t>(32 * 8));
  for (int iter = 0; iter < 10; ++iter) {
    CsrBatch batch = SkewedBatch(data_rng, 32);
    emb.Forward(batch, out.data());
  }
  EXPECT_TRUE(emb.warmed_up());
  // The 4 hot rows dominate accesses, so the cache should hold them.
  const auto cached_rows = emb.cache().CachedRows();
  std::set<int64_t> cached_set(cached_rows.begin(), cached_rows.end());
  for (int64_t hot = 0; hot < 4; ++hot) {
    EXPECT_TRUE(cached_set.contains(hot)) << "hot row " << hot;
  }
  emb.ResetStats();
  CsrBatch batch = SkewedBatch(data_rng, 64);
  emb.Forward(batch, std::vector<float>(static_cast<size_t>(64 * 8)).data());
  EXPECT_GT(emb.HitRate(), 0.5);
}

TEST(CachedTtEmbeddingBag, ForwardValueUnchangedAtRefreshBoundary) {
  // Refresh populates the cache FROM the TT cores, so the hybrid output is
  // identical to the pure-TT output immediately after a refresh.
  Rng r1(5), r2(5);
  CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/8, /*warmup=*/2,
                                         /*refresh=*/1);
  CachedTtEmbeddingBag cached(cfg, TtInit::kGaussian, r1);
  TtEmbeddingBag plain(cfg.tt, TtInit::kGaussian, r2);

  CsrBatch warm = CsrBatch::FromIndices({3, 3, 9, 9, 3});
  std::vector<float> out(static_cast<size_t>(5 * 8)), ref(out.size());
  for (int i = 0; i < 3; ++i) cached.Forward(warm, out.data());
  // No SGD applied: TT cores unchanged, cache mirrors them.
  plain.Forward(warm, ref.data());
  for (size_t i = 0; i < out.size(); ++i) EXPECT_NEAR(out[i], ref[i], 1e-5f);
}

TEST(CachedTtEmbeddingBag, GradientsRouteToCacheForHits) {
  Rng rng(11);
  CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/2, /*warmup=*/1,
                                         /*refresh=*/1);
  CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  // Warm up on rows {0, 1} so they get cached.
  CsrBatch warm = CsrBatch::FromIndices({0, 1, 0, 1});
  std::vector<float> out(static_cast<size_t>(4 * 8));
  emb.Forward(warm, out.data());
  emb.Forward(warm, out.data());
  ASSERT_NE(emb.cache().Find(0), nullptr);

  // Record cached value, train one step on row 0 only.
  std::vector<float> before(emb.cache().Find(0), emb.cache().Find(0) + 8);
  std::vector<Tensor> cores_before;
  for (int k = 0; k < 3; ++k) cores_before.push_back(emb.tt().cores().core(k));

  CsrBatch hit_only = CsrBatch::FromIndices({0});
  std::vector<float> o1(8), g1(8, 1.0f);
  emb.Forward(hit_only, o1.data());
  emb.Backward(hit_only, g1.data());
  emb.ApplySgd(0.25f);

  // Cached row moved by -lr * grad; TT cores untouched.
  const float* after = emb.cache().Find(0);
  ASSERT_NE(after, nullptr);
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(after[j], before[static_cast<size_t>(j)] - 0.25f, 1e-5f);
  }
  for (int k = 0; k < 3; ++k) {
    EXPECT_LT(MaxAbsDiff(emb.tt().cores().core(k),
                         cores_before[static_cast<size_t>(k)]),
              1e-7);
  }
}

TEST(CachedTtEmbeddingBag, MissesTrainTtCores) {
  Rng rng(13);
  CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/2, /*warmup=*/1,
                                         /*refresh=*/1);
  CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
  CsrBatch warm = CsrBatch::FromIndices({0, 1});
  std::vector<float> out(static_cast<size_t>(2 * 8));
  emb.Forward(warm, out.data());
  emb.Forward(warm, out.data());

  std::vector<Tensor> cores_before;
  for (int k = 0; k < 3; ++k) cores_before.push_back(emb.tt().cores().core(k));

  CsrBatch miss_only = CsrBatch::FromIndices({50});
  std::vector<float> o(8), g(8, 1.0f);
  emb.Forward(miss_only, o.data());
  emb.Backward(miss_only, g.data());
  emb.ApplySgd(0.1f);
  double moved = 0.0;
  for (int k = 0; k < 3; ++k) {
    moved += MaxAbsDiff(emb.tt().cores().core(k),
                        cores_before[static_cast<size_t>(k)]);
  }
  EXPECT_GT(moved, 1e-6);
}

TEST(CachedTtEmbeddingBag, MeanPoolingUsesOriginalBagSize) {
  Rng rng(17);
  CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/1, /*warmup=*/1,
                                         /*refresh=*/1);
  cfg.tt.pooling = PoolingMode::kMean;
  CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
  // Cache row 0, then pool a bag of {0 (hit), 40 (miss)}: mean must divide
  // both contributions by 2.
  CsrBatch warm = CsrBatch::FromIndices({0, 0});
  std::vector<float> out2(static_cast<size_t>(2 * 8));
  emb.Forward(warm, out2.data());
  emb.Forward(warm, out2.data());
  ASSERT_NE(emb.cache().Find(0), nullptr);

  CsrBatch mixed;
  mixed.indices = {0, 40};
  mixed.offsets = {0, 2};
  std::vector<float> out(8);
  emb.Forward(mixed, out.data());

  std::vector<float> r0(8), r40(8);
  emb.tt().cores().MaterializeRow(0, r0.data());
  emb.tt().cores().MaterializeRow(40, r40.data());
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(out[static_cast<size_t>(j)],
                0.5f * (r0[static_cast<size_t>(j)] +
                        r40[static_cast<size_t>(j)]),
                1e-5f);
  }
}

TEST(CachedTtEmbeddingBag, PeriodicRewarmAdaptsToPhaseShift) {
  // Phase 1 hits rows {0..3}; after the phase shifts to rows {50..53}, a
  // re-warming cache adapts while a frozen one keeps the stale set (the
  // paper's optional periodic warm-up, Fig 4).
  auto run = [&](int64_t rewarm_period) {
    Rng rng(21);
    CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/4, /*warmup=*/4,
                                           /*refresh=*/2);
    cfg.rewarm_period = rewarm_period;
    CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
    std::vector<float> out(static_cast<size_t>(8 * 8));
    auto phase_batch = [](int64_t base) {
      std::vector<int64_t> idx;
      for (int64_t i = 0; i < 8; ++i) idx.push_back(base + i % 4);
      return CsrBatch::FromIndices(std::move(idx));
    };
    for (int iter = 0; iter < 10; ++iter) {
      emb.Forward(phase_batch(0), out.data());  // phase 1
    }
    for (int iter = 0; iter < 40; ++iter) {
      emb.Forward(phase_batch(50), out.data());  // phase 2
    }
    return emb.cache().CachedRows();
  };

  const auto frozen = run(0);
  std::set<int64_t> frozen_set(frozen.begin(), frozen.end());
  for (int64_t r = 0; r < 4; ++r) EXPECT_TRUE(frozen_set.contains(r));

  const auto rewarmed = run(/*rewarm_period=*/8);
  std::set<int64_t> rewarmed_set(rewarmed.begin(), rewarmed.end());
  int hot_phase2 = 0;
  for (int64_t r = 50; r < 54; ++r) {
    if (rewarmed_set.contains(r)) ++hot_phase2;
  }
  EXPECT_GE(hot_phase2, 3) << "re-warm should adopt the new hot set";
}

TEST(CachedTtEmbeddingBag, RejectsBadConfig) {
  Rng rng(1);
  CachedTtConfig cfg = SmallCachedConfig();
  cfg.cache_capacity = 0;
  EXPECT_THROW(CachedTtEmbeddingBag(cfg, TtInit::kGaussian, rng), ConfigError);
  cfg = SmallCachedConfig();
  cfg.refresh_interval = 0;
  EXPECT_THROW(CachedTtEmbeddingBag(cfg, TtInit::kGaussian, rng), ConfigError);
}

TEST(CachedTtEmbeddingBag, MemoryIncludesCacheAndCores) {
  Rng rng(2);
  CachedTtEmbeddingBag emb(SmallCachedConfig(), TtInit::kGaussian, rng);
  EXPECT_GT(emb.MemoryBytes(), emb.tt().MemoryBytes());
}

TEST(FreqTracker, RejectsBadDecayFactors) {
  FreqTracker t;
  t.Increment(1, 10);
  EXPECT_THROW(t.Decay(-0.5), ConfigError);
  EXPECT_THROW(t.Decay(1.0), ConfigError);
  EXPECT_THROW(t.Decay(2.0), ConfigError);
  // A rejected decay neither touches the counts nor counts as a rebuild.
  EXPECT_EQ(t.Count(1), 10);
  EXPECT_EQ(t.decay_rebuilds(), 0);
  t.Decay(0.0);
  EXPECT_EQ(t.decay_rebuilds(), 1);
  EXPECT_EQ(t.size(), 0);
}

TEST(FreqTracker, NegativeDeltasValidateBeforeMutating) {
  FreqTracker t;
  t.Increment(5, 3);
  // Underflowing decrement: rejected, count untouched.
  EXPECT_THROW(t.Increment(5, -4), ConfigError);
  EXPECT_EQ(t.Count(5), 3);
  EXPECT_EQ(t.total(), 3);
  // Inserting a new key with a negative count is equally invalid.
  EXPECT_THROW(t.Increment(7, -1), ConfigError);
  EXPECT_EQ(t.Count(7), 0);
  EXPECT_EQ(t.size(), 1);
  // Decrement to exactly zero: the key stays (count 0) until Decay drops it.
  t.Increment(5, -3);
  EXPECT_EQ(t.Count(5), 0);
  EXPECT_EQ(t.total(), 0);
  EXPECT_EQ(t.size(), 1);
  t.Decay(0.5);
  EXPECT_EQ(t.size(), 0);
}

TEST(LfuRowCache, ThrowingPopulateLeavesCacheServable) {
  // Strong exception guarantee: a Populate that throws (duplicate or
  // negative row id) must leave the previous contents fully intact — the
  // serving path may still be reading them.
  LfuRowCache cache(4, 2);
  std::vector<float> vals = {1, 1, 2, 2};
  cache.Populate(std::vector<int64_t>{10, 20}, vals.data());
  const int64_t evictions_before = cache.evictions();
  const int64_t populates_before = cache.populates();

  std::vector<float> bad_vals = {9, 9, 8, 8};
  EXPECT_THROW(cache.Populate(std::vector<int64_t>{30, 30}, bad_vals.data()),
               ConfigError);
  EXPECT_THROW(cache.Populate(std::vector<int64_t>{30, -1}, bad_vals.data()),
               IndexError);

  // Old contents, capacity, and bookkeeping all unchanged.
  EXPECT_EQ(cache.size(), 2);
  ASSERT_NE(cache.Peek(10), nullptr);
  EXPECT_FLOAT_EQ(cache.Peek(10)[0], 1.0f);
  ASSERT_NE(cache.Peek(20), nullptr);
  EXPECT_FLOAT_EQ(cache.Peek(20)[0], 2.0f);
  EXPECT_EQ(cache.Peek(30), nullptr);
  EXPECT_EQ(cache.evictions(), evictions_before);
  EXPECT_EQ(cache.populates(), populates_before);

  // And a valid Populate afterwards still works.
  cache.Populate(std::vector<int64_t>{30, 40}, bad_vals.data());
  EXPECT_EQ(cache.size(), 2);
  ASSERT_NE(cache.Peek(30), nullptr);
}

TEST(CachedTtEmbeddingBag, RewarmWithUnalignedWarmupAndTrackingModes) {
  // warmup_iterations (5) deliberately NOT divisible by refresh_interval
  // (2): the freeze refresh at the warm-up boundary must still happen, and
  // the periodic re-warm cadence anchors on the warm-up end, not on a
  // refresh multiple. Exercised with tracking both frozen and continuous
  // after warm-up — the re-warm window must adopt the new phase either way.
  struct Outcome {
    int64_t refreshes;
    int64_t decay_rebuilds;
    std::set<int64_t> cached;
  };
  auto run = [](bool track_after_warmup) {
    Rng rng(29);
    CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/4, /*warmup=*/5,
                                           /*refresh=*/2);
    cfg.rewarm_period = 7;
    cfg.track_after_warmup = track_after_warmup;
    CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
    std::vector<float> out(static_cast<size_t>(8 * 8));
    auto phase_batch = [](int64_t base) {
      std::vector<int64_t> idx;
      for (int64_t i = 0; i < 8; ++i) idx.push_back(base + i % 4);
      return CsrBatch::FromIndices(std::move(idx));
    };
    // Phase 1 (iterations 0..5): refreshes at it 2 and 4 (cadence), then
    // the freeze at it 5 even though 5 % 2 != 0.
    for (int it = 0; it < 6; ++it) emb.Forward(phase_batch(0), out.data());
    EXPECT_TRUE(emb.warmed_up());
    EXPECT_EQ(emb.refreshes(), 3);
    {
      const auto rows = emb.cache().CachedRows();
      const std::set<int64_t> set(rows.begin(), rows.end());
      EXPECT_EQ(set, (std::set<int64_t>{0, 1, 2, 3}));
    }
    // Phase 2 (iterations 6..30): decays at it 12, 19, 26 (every 7 past
    // the warm-up end), re-warm refreshes when the re-tracking windows
    // close at it 17 and 24 (the 31 window never completes).
    for (int it = 0; it < 25; ++it) emb.Forward(phase_batch(50), out.data());
    const auto rows = emb.cache().CachedRows();
    return Outcome{emb.refreshes(), emb.tracker().decay_rebuilds(),
                   std::set<int64_t>(rows.begin(), rows.end())};
  };

  for (const bool track : {false, true}) {
    const Outcome o = run(track);
    EXPECT_EQ(o.refreshes, 5) << "track_after_warmup=" << track;
    EXPECT_EQ(o.decay_rebuilds, 3) << "track_after_warmup=" << track;
    EXPECT_EQ(o.cached, (std::set<int64_t>{50, 51, 52, 53}))
        << "track_after_warmup=" << track;
  }
}

// ---------------------------------------------------------------------------
// Incremental Insert/Erase (the lookahead-prefetch admission path)
// ---------------------------------------------------------------------------

TEST(LfuRowCache, InsertEraseFuzzMatchesReferenceMap) {
  constexpr int64_t kCap = 16, kDim = 4, kRows = 100;
  LfuRowCache cache(kCap, kDim);
  std::unordered_map<int64_t, std::vector<float>> ref;
  Rng rng(0xF022);

  const auto vec_for = [](int64_t row) {
    std::vector<float> v(kDim);
    for (int64_t d = 0; d < kDim; ++d) {
      v[static_cast<size_t>(d)] = static_cast<float>(row * 10 + d);
    }
    return v;
  };

  for (int step = 0; step < 3000; ++step) {
    const int64_t row = rng.RandInt(kRows);
    if (ref.contains(row)) {
      cache.Erase(row);
      ref.erase(row);
    } else if (static_cast<int64_t>(ref.size()) < kCap) {
      const std::vector<float> v = vec_for(row);
      cache.Insert(row, v.data());
      ref.emplace(row, v);
    }
    ASSERT_EQ(cache.size(), static_cast<int64_t>(ref.size()));
    if (step % 100 == 0) {
      for (const auto& [r, v] : ref) {
        const float* got = cache.Peek(r);
        ASSERT_NE(got, nullptr) << "row " << r << " lost at step " << step;
        for (int64_t d = 0; d < kDim; ++d) {
          ASSERT_EQ(got[d], v[static_cast<size_t>(d)]);
        }
      }
      for (int64_t probe = 0; probe < kRows; ++probe) {
        ASSERT_EQ(cache.Contains(probe), ref.contains(probe))
            << "row " << probe << " at step " << step;
      }
    }
  }
  EXPECT_GT(cache.evictions(), 0);  // Erase counts as eviction
}

TEST(LfuRowCache, InsertAndEraseValidateBeforeMutation) {
  LfuRowCache cache(2, 4);
  const std::vector<float> v(4, 1.0f);
  cache.Insert(5, v.data());
  EXPECT_THROW(cache.Insert(5, v.data()), ConfigError);   // already resident
  EXPECT_THROW(cache.Insert(-1, v.data()), IndexError);   // negative id
  cache.Insert(9, v.data());
  EXPECT_THROW(cache.Insert(7, v.data()), ConfigError);   // full
  EXPECT_THROW(cache.Erase(7), ConfigError);              // not resident
  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.Contains(5));
  EXPECT_TRUE(cache.Contains(9));
}

TEST(LfuRowCache, EraseKeepsSurvivorsValuesGradsAndAdagradState) {
  // Adagrad math is slot-independent, so a cache that held {10,20,30} and
  // erased 10 must update {20,30} exactly like a cache that only ever held
  // {20,30} with the same gradient history — which is only true if Erase's
  // slot compaction carries values, grads, AND adagrad state along.
  constexpr int64_t kDim = 4;
  const auto grad_fill = [](LfuRowCache& c, int64_t row, float g) {
    float* grad = c.GradFor(row);
    ASSERT_NE(grad, nullptr);
    for (int64_t d = 0; d < kDim; ++d) grad[d] = g;
  };
  const std::vector<float> base(kDim, 1.0f);

  LfuRowCache a(3, kDim);
  for (const int64_t r : {10, 20, 30}) a.Insert(r, base.data());
  grad_fill(a, 10, 5.0f);
  grad_fill(a, 20, 2.0f);
  grad_fill(a, 30, 3.0f);
  a.ApplyAdagrad(0.1f);
  a.Erase(10);
  grad_fill(a, 20, 2.0f);
  grad_fill(a, 30, 3.0f);
  a.ApplyAdagrad(0.1f);

  LfuRowCache b(3, kDim);
  for (const int64_t r : {20, 30}) b.Insert(r, base.data());
  grad_fill(b, 20, 2.0f);
  grad_fill(b, 30, 3.0f);
  b.ApplyAdagrad(0.1f);
  grad_fill(b, 20, 2.0f);
  grad_fill(b, 30, 3.0f);
  b.ApplyAdagrad(0.1f);

  for (const int64_t r : {20, 30}) {
    const float* va = a.Peek(r);
    const float* vb = b.Peek(r);
    for (int64_t d = 0; d < kDim; ++d) EXPECT_EQ(va[d], vb[d]) << "row " << r;
  }
}

// ---------------------------------------------------------------------------
// CachedTtEmbeddingBag::PrefetchRows
// ---------------------------------------------------------------------------

TEST(CachedTtEmbeddingBag, PrefetchAdmitsPlannedRowsDeterministically) {
  Rng rng(33);
  // warmup 0: the cache is frozen from the start, so no refresh can undo
  // what prefetch admitted.
  CachedTtEmbeddingBag emb(SmallCachedConfig(/*capacity=*/4, /*warmup=*/0),
                           TtInit::kGaussian, rng);
  const std::vector<int64_t> plan = {1, 5, 9, 3, 5, 1};  // dups welcome
  EXPECT_EQ(emb.PrefetchRows(plan), 4);
  for (const int64_t r : {1, 3, 5, 9}) EXPECT_TRUE(emb.cache().Contains(r));
  EXPECT_EQ(emb.PrefetchRows(plan), 0);  // idempotent on a satisfied plan
  EXPECT_EQ(emb.prefetch_calls(), 2);
  EXPECT_EQ(emb.prefetch_inserts(), 4);
  EXPECT_EQ(emb.prefetch_evictions(), 0);

  // Full cache: planned residents {1,3} are protected; the other residents
  // {5,9} are the victims (tracker is empty, ties break on row id) — and a
  // plan bigger than the freed room admits in sorted row order.
  EXPECT_EQ(emb.PrefetchRows(std::vector<int64_t>{1, 3, 20, 21, 22}), 2);
  const auto rows = emb.cache().CachedRows();
  EXPECT_EQ(std::set<int64_t>(rows.begin(), rows.end()),
            (std::set<int64_t>{1, 3, 20, 21}));
  EXPECT_EQ(emb.prefetch_evictions(), 2);
}

TEST(CachedTtEmbeddingBag, PrefetchedRowsServeAsExactCacheHits) {
  Rng r1(42), r2(42);
  CachedTtConfig cfg = SmallCachedConfig(/*capacity=*/4, /*warmup=*/0);
  CachedTtEmbeddingBag emb(cfg, TtInit::kGaussian, r1);
  TtEmbeddingBag plain(cfg.tt, TtInit::kGaussian, r2);

  emb.PrefetchRows(std::vector<int64_t>{20, 21});
  emb.ResetStats();
  CsrBatch batch = CsrBatch::FromIndices({20, 21});
  std::vector<float> a(static_cast<size_t>(2 * 8)), b(a.size());
  emb.Forward(batch, a.data());
  plain.Forward(batch, b.data());
  EXPECT_EQ(emb.cache().hits(), 2);
  EXPECT_EQ(emb.cache().misses(), 0);
  // The prefetched vectors were materialized from the TT cores, so the
  // hit path reproduces the pure-TT output.
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(CachedTtEmbeddingBag, PrefetchValidatesBeforeMutatingAndSkipsTracker) {
  Rng rng(5);
  CachedTtEmbeddingBag emb(SmallCachedConfig(/*capacity=*/4, /*warmup=*/0),
                           TtInit::kGaussian, rng);
  EXPECT_THROW(emb.PrefetchRows(std::vector<int64_t>{2, 999}), IndexError);
  EXPECT_EQ(emb.cache().size(), 0);
  EXPECT_EQ(emb.prefetch_inserts(), 0);

  emb.PrefetchRows(std::vector<int64_t>{7});
  // Prefetch is a hint about the future, not an observed access.
  EXPECT_EQ(emb.tracker().Count(7), 0);
}

}  // namespace
}  // namespace ttrec
