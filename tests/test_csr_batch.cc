// CsrBatch invariants and validation — the lookup format every operator
// shares.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "data/csr_batch.h"
#include "tensor/check.h"
#include "tensor/stats.h"

namespace ttrec {
namespace {

TEST(CsrBatch, FromIndicesBuildsSingletonBags) {
  CsrBatch b = CsrBatch::FromIndices({4, 9, 0});
  EXPECT_EQ(b.num_bags(), 3);
  EXPECT_EQ(b.num_lookups(), 3);
  EXPECT_EQ(b.offsets, (std::vector<int64_t>{0, 1, 2, 3}));
  EXPECT_NO_THROW(b.Validate(10));
}

TEST(CsrBatch, EmptyBatch) {
  CsrBatch b;
  EXPECT_EQ(b.num_bags(), 0);
  EXPECT_EQ(b.num_lookups(), 0);
  // Validation requires offsets to start with 0; an all-empty offsets
  // vector is malformed.
  EXPECT_THROW(b.Validate(10), ShapeError);
  b.offsets = {0};
  EXPECT_NO_THROW(b.Validate(10));
}

TEST(CsrBatch, ValidateCatchesEveryMalformation) {
  CsrBatch b;
  b.indices = {1, 2};
  b.offsets = {0, 1, 2};
  EXPECT_NO_THROW(b.Validate(5));

  CsrBatch bad = b;
  bad.offsets = {1, 2};  // does not start at 0
  EXPECT_THROW(bad.Validate(5), ShapeError);

  bad = b;
  bad.offsets = {0, 2, 1};  // decreasing
  EXPECT_THROW(bad.Validate(5), ShapeError);

  bad = b;
  bad.offsets = {0, 1, 3};  // end beyond indices
  EXPECT_THROW(bad.Validate(5), ShapeError);

  bad = b;
  bad.weights = {1.0f};  // wrong weight count
  EXPECT_THROW(bad.Validate(5), ShapeError);

  bad = b;
  bad.indices = {1, 5};  // out of range
  EXPECT_THROW(bad.Validate(5), IndexError);

  bad = b;
  bad.indices = {-1, 2};
  EXPECT_THROW(bad.Validate(5), IndexError);
}

TEST(CsrBatch, WeightsAcceptedWhenComplete) {
  CsrBatch b;
  b.indices = {0, 1, 2};
  b.offsets = {0, 3};
  b.weights = {0.5f, -1.0f, 2.0f};
  EXPECT_NO_THROW(b.Validate(3));
}

TEST(Histogram, AsciiSketchRendersAllBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.1);
  h.Add(0.6);
  const std::string art = h.ToAscii(10);
  // One line per bin, peak bin gets the widest bar.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace ttrec
