// ThreadPool / ParallelFor: full coverage of the range, no overlap, chunk
// granularity, exception propagation, and multi-thread determinism of the
// batched GEMM results.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "tensor/batched_gemm.h"
#include "tensor/check.h"
#include "tensor/parallel.h"
#include "tensor/random.h"

namespace ttrec {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(100, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

class ThreadPoolSweep : public ::testing::TestWithParam<
                            std::tuple<int, int64_t, int64_t>> {};

TEST_P(ThreadPoolSweep, CoversRangeExactlyOnce) {
  const auto [threads, total, grain] = GetParam();
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> hits(static_cast<size_t>(total));
  pool.ParallelFor(total, grain, [&](int64_t b, int64_t e) {
    ASSERT_LE(0, b);
    ASSERT_LE(b, e);
    ASSERT_LE(e, total);
    for (int64_t i = b; i < e; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ThreadPoolSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),       // threads
                       ::testing::Values(1, 7, 100, 4096),  // total
                       ::testing::Values(1, 16, 1000)));    // grain

TEST(ThreadPool, ZeroAndNegativeTotalAreNoops) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, 1, [&](int64_t, int64_t) { ran = true; });
  pool.ParallelFor(-5, 1, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, SmallRangeStaysInlineUnderGrain) {
  ThreadPool pool(8);
  // total <= grain: must be exactly one chunk [0, total).
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> chunks;
  pool.ParallelFor(10, 64, [&](int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<int64_t, int64_t>{0, 10}));
}

TEST(ThreadPool, PropagatesWorkerExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(1000, 1,
                       [&](int64_t b, int64_t) {
                         if (b > 0) throw IndexError("boom");
                       }),
      TtRecError);
  // Pool still usable afterwards.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 1, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPool, GlobalPoolResize) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
  EXPECT_THROW(ThreadPool::SetGlobalThreads(0), ConfigError);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  // BatchedGemm calls ParallelFor from inside table-level ParallelFor
  // chunks (the serving path); nested calls must run inline instead of
  // enqueuing, or the pool deadlocks on itself.
  ThreadPool pool(4);
  constexpr int64_t kOuter = 16, kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  pool.ParallelFor(kOuter, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      EXPECT_TRUE(ThreadPool::InParallelRegion());
      pool.ParallelFor(kInner, 1, [&](int64_t jb, int64_t je) {
        for (int64_t j = jb; j < je; ++j) {
          hits[static_cast<size_t>(i * kInner + j)].fetch_add(1);
        }
      });
    }
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ConcurrentCallersAreIndependent) {
  // Several external threads sharing one pool: every call must see its own
  // completion (no cross-caller waiting on a shared pending count).
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int64_t kTotal = 2000;
  std::vector<std::atomic<int64_t>> sums(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int rep = 0; rep < 5; ++rep) {
        std::atomic<int64_t> local{0};
        pool.ParallelFor(kTotal, 16, [&](int64_t b, int64_t e) {
          local.fetch_add(e - b);
        });
        // The call returned: every one of *its* chunks must have run.
        ASSERT_EQ(local.load(), kTotal);
      }
      sums[static_cast<size_t>(c)].store(1);
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& s : sums) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPool, ConcurrentCallerExceptionsStayWithTheirCall) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  std::vector<int> outcome(kCallers, -1);  // 0 = ok, 1 = threw
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      const bool should_throw = (c % 2 == 0);
      try {
        pool.ParallelFor(500, 1, [&](int64_t b, int64_t) {
          if (should_throw && b == 250) throw IndexError("caller boom");
        });
        outcome[static_cast<size_t>(c)] = 0;
      } catch (const TtRecError&) {
        outcome[static_cast<size_t>(c)] = 1;
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(outcome[static_cast<size_t>(c)], c % 2 == 0 ? 1 : 0)
        << "caller " << c;
  }
}

TEST(BatchedGemm, SameResultAcrossThreadCounts) {
  // The batch dimension is split across workers; results must be invariant.
  Rng rng(9);
  const int64_t count = 64, m = 3, n = 5, k = 4;
  std::vector<float> a(static_cast<size_t>(count * m * k));
  std::vector<float> b(static_cast<size_t>(count * k * n));
  FillUniform(rng, a, -1, 1);
  FillUniform(rng, b, -1, 1);

  auto run = [&](int threads) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<float> c(static_cast<size_t>(count * m * n), 0.0f);
    std::vector<const float*> ap, bp;
    std::vector<float*> cp;
    for (int64_t i = 0; i < count; ++i) {
      ap.push_back(a.data() + i * m * k);
      bp.push_back(b.data() + i * k * n);
      cp.push_back(c.data() + i * m * n);
    }
    BatchedGemmShape shape;
    shape.m = m;
    shape.n = n;
    shape.k = k;
    BatchedGemm(shape, ap, bp, cp);
    return c;
  };

  const auto c1 = run(1);
  const auto c4 = run(4);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_EQ(c1, c4);  // bitwise identical: same per-problem arithmetic
}

}  // namespace
}  // namespace ttrec
