// Overload-safety and model-lifecycle tests for src/serve/: deadlines
// enforced at admission and before the forward pass, bounded-wait and
// reject-when-full admission, the load governor's hysteresis state walk,
// zero-downtime hot-swap (including a hammer that swaps every few ms under
// concurrent load), and corrupt-checkpoint swap rejection. The acceptance
// bar throughout: under overload every future resolves with a typed
// outcome — no hangs, no torn results, no silent drops. Runs clean under
// TSan (-DTTREC_SANITIZE=thread).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/checkpoint.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "fault_injector.h"
#include "serve/inference_server.h"
#include "serve/inference_session.h"
#include "serve/load_governor.h"
#include "serve/micro_batcher.h"
#include "serve/serve_errors.h"
#include "tensor/check.h"
#include "tt/tt_shapes.h"

namespace ttrec {
namespace {

using serve::DeadlineExceeded;
using serve::HealthState;
using serve::InferenceRequest;
using serve::InferenceResult;
using serve::LoadGovernor;
using serve::LoadGovernorConfig;
using serve::ServerOverloaded;
using serve::ServerShutdown;

SyntheticCriteoConfig RobustDataConfig(int num_tables = 2,
                                       int64_t rows = 200) {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "serve_robust";
  cfg.spec.num_dense = 13;
  cfg.spec.table_rows.assign(static_cast<size_t>(num_tables), rows);
  cfg.zipf_exponent = 1.1;
  cfg.seed = 37;
  return cfg;
}

DlrmConfig RobustDlrmConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.index_policy = IndexPolicy::kThrow;
  return cfg;
}

/// Dense bag + TT adapter, optionally with the dense bag wrapped in a
/// SlowEmbeddingInjector whose handle is returned through `slow`.
std::unique_ptr<DlrmModel> BuildModel(
    const DatasetSpec& spec, Rng& rng, const DlrmConfig& cfg,
    testing::SlowEmbeddingInjector** slow = nullptr) {
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  auto dense = std::make_unique<DenseEmbeddingBag>(
      spec.table_rows[0], cfg.emb_dim, PoolingMode::kSum,
      DenseEmbeddingInit::UniformScaled(), rng);
  if (slow != nullptr) {
    auto injector = std::make_unique<testing::SlowEmbeddingInjector>(
        std::move(dense), std::chrono::microseconds(0));
    *slow = injector.get();
    tables.push_back(std::move(injector));
  } else {
    tables.push_back(std::move(dense));
  }
  TtEmbeddingConfig tt;
  tt.shape = MakeTtShape(spec.table_rows[1], cfg.emb_dim, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tt, TtInit::kSampledGaussian, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

InferenceRequest CopyRequest(const InferenceRequest& r) {
  InferenceRequest copy;
  copy.dense = r.dense;
  copy.sparse = r.sparse;
  copy.deadline = r.deadline;
  return copy;
}

/// Per-request single-session reference logits for `requests` on `model`.
std::vector<float> Reference(const DlrmModel& model,
                             const std::vector<InferenceRequest>& requests) {
  std::vector<float> ref(requests.size());
  serve::InferenceSession session(model);
  for (size_t i = 0; i < requests.size(); ++i) {
    MiniBatch one;
    one.dense = requests[i].dense;
    one.sparse = requests[i].sparse;
    one.labels.assign(1, 0.0f);
    session.Run(one, &ref[i]);
  }
  return ref;
}

void WaitForLookups(const testing::SlowEmbeddingInjector& inj,
                    int64_t at_least) {
  while (inj.lookups() < at_least) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// ---------------------------------------------------------------------------
// LoadGovernor state machine (unit, no server)
// ---------------------------------------------------------------------------

TEST(LoadGovernor, WalksStatesWithHysteresis) {
  LoadGovernorConfig cfg;
  cfg.enabled = false;  // drive Evaluate() by hand, no tick thread
  cfg.degrade_at = 0.5;
  cfg.shed_at = 0.9;
  cfg.recover_at = 0.25;
  LoadGovernor::Signals sig{0, 100, 0.0};
  std::vector<HealthState> entered;
  LoadGovernor g(
      cfg, [&] { return sig; },
      [&](HealthState, HealthState to) { entered.push_back(to); });

  EXPECT_EQ(g.state(), HealthState::kHealthy);
  sig.queue_depth = 49;
  EXPECT_EQ(g.Evaluate(), HealthState::kHealthy);  // below degrade_at
  sig.queue_depth = 50;
  EXPECT_EQ(g.Evaluate(), HealthState::kDegraded);
  sig.queue_depth = 40;  // hysteresis: above recover_at, stays degraded
  EXPECT_EQ(g.Evaluate(), HealthState::kDegraded);
  sig.queue_depth = 95;
  EXPECT_EQ(g.Evaluate(), HealthState::kShedding);
  sig.queue_depth = 60;  // must drain to degrade_at before leaving shedding
  EXPECT_EQ(g.Evaluate(), HealthState::kShedding);
  sig.queue_depth = 50;
  EXPECT_EQ(g.Evaluate(), HealthState::kDegraded);
  sig.queue_depth = 25;
  EXPECT_EQ(g.Evaluate(), HealthState::kHealthy);

  const std::vector<HealthState> expected = {
      HealthState::kDegraded, HealthState::kShedding, HealthState::kDegraded,
      HealthState::kHealthy};
  EXPECT_EQ(entered, expected);

  g.ForceDrain();
  EXPECT_EQ(g.state(), HealthState::kDraining);
  sig.queue_depth = 0;  // terminal: an empty queue never resurrects it
  EXPECT_EQ(g.Evaluate(), HealthState::kDraining);
  EXPECT_EQ(entered.back(), HealthState::kDraining);
}

TEST(LoadGovernor, LatencyBudgetDegradesAShallowQueue) {
  LoadGovernorConfig cfg;
  cfg.enabled = false;
  cfg.p95_budget_us = 1000;
  LoadGovernor::Signals sig{0, 100, 0.0};
  LoadGovernor g(cfg, [&] { return sig; }, nullptr);

  sig.window_p95_us = 5000.0;  // latency blown, queue empty
  EXPECT_EQ(g.Evaluate(), HealthState::kDegraded);
  sig.window_p95_us = 500.0;  // recovered
  EXPECT_EQ(g.Evaluate(), HealthState::kHealthy);
}

TEST(LoadGovernor, RejectsUnorderedThresholds) {
  LoadGovernorConfig cfg;
  cfg.recover_at = 0.8;  // > degrade_at
  cfg.degrade_at = 0.5;
  EXPECT_THROW(
      (LoadGovernor(cfg, [] { return LoadGovernor::Signals{}; }, nullptr)),
      ConfigError);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(ServeRobustness, ExpiredDeadlineRejectedAtAdmission) {
  Rng rng(61);
  SyntheticCriteo data(RobustDataConfig());
  auto model = BuildModel(data.config().spec, rng, RobustDlrmConfig());
  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  serve::InferenceServer server(*model, cfg);

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(1));
  reqs[0].deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  auto f = server.Submit(std::move(reqs[0]));
  EXPECT_THROW(f.get(), DeadlineExceeded);
  EXPECT_EQ(server.metrics().Snapshot().requests_deadline_missed, 1);
}

TEST(ServeRobustness, QueuedRequestExpiringIsDroppedBeforeForward) {
  Rng rng(67);
  SyntheticCriteo data(RobustDataConfig());
  testing::SlowEmbeddingInjector* slow = nullptr;
  auto model =
      BuildModel(data.config().spec, rng, RobustDlrmConfig(), &slow);
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 1;  // keep the stalled request's batch to itself
  cfg.governor.enabled = false;
  serve::InferenceServer server(*model, cfg);

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(2));
  slow->set_stalled(true);
  auto stalled = server.Submit(CopyRequest(reqs[0]));
  WaitForLookups(*slow, 1);  // the consumer is now wedged inside Forward

  reqs[1].deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  auto doomed = server.Submit(std::move(reqs[1]));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  slow->set_stalled(false);

  EXPECT_EQ(stalled.get().logits.size(), 1u);  // the wedged one completes
  EXPECT_THROW(doomed.get(), DeadlineExceeded);

  const int64_t lookups_after = slow->lookups();
  const serve::ServeMetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.requests_deadline_missed, 1);
  EXPECT_EQ(snap.requests_ok, 1);
  // The expired request never reached the forward pass: exactly one
  // lookup per table... and the slow table saw only the stalled request.
  EXPECT_EQ(lookups_after, 1);
}

// ---------------------------------------------------------------------------
// Admission policies and shedding
// ---------------------------------------------------------------------------

TEST(ServeRobustness, RejectWhenFullFailsFastWithTypedError) {
  Rng rng(71);
  SyntheticCriteo data(RobustDataConfig());
  testing::SlowEmbeddingInjector* slow = nullptr;
  auto model =
      BuildModel(data.config().spec, rng, RobustDlrmConfig(), &slow);
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 1;
  cfg.queue_capacity = 1;
  cfg.admission = serve::AdmissionPolicy::kRejectWhenFull;
  cfg.governor.enabled = false;
  serve::InferenceServer server(*model, cfg);

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(3));
  slow->set_stalled(true);
  auto in_flight = server.Submit(CopyRequest(reqs[0]));
  WaitForLookups(*slow, 1);
  auto queued = server.Submit(CopyRequest(reqs[1]));  // fills the queue
  auto rejected = server.Submit(CopyRequest(reqs[2]));
  // The rejection is immediate — no release of the stall needed.
  EXPECT_THROW(rejected.get(), ServerOverloaded);
  try {
    server.Submit(CopyRequest(reqs[2])).get();
    FAIL() << "expected ServerOverloaded";
  } catch (const ServerOverloaded& e) {
    EXPECT_EQ(e.retry_after(), cfg.governor.retry_after);
  }

  slow->set_stalled(false);
  EXPECT_EQ(in_flight.get().logits.size(), 1u);
  EXPECT_EQ(queued.get().logits.size(), 1u);
  EXPECT_EQ(server.metrics().Snapshot().requests_shed, 2);
}

TEST(ServeRobustness, OverloadShedsWithTypedErrorsAndNoHangs) {
  Rng rng(73);
  SyntheticCriteo data(RobustDataConfig());
  testing::SlowEmbeddingInjector* slow = nullptr;
  auto model =
      BuildModel(data.config().spec, rng, RobustDlrmConfig(), &slow);
  slow->set_delay(std::chrono::milliseconds(5));  // drain << offered load

  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 4;
  cfg.queue_capacity = 8;
  cfg.admission = serve::AdmissionPolicy::kRejectWhenFull;
  cfg.governor.tick = std::chrono::milliseconds(1);
  cfg.governor.degrade_at = 0.25;
  cfg.governor.shed_at = 0.5;
  cfg.governor.recover_at = 0.125;
  serve::InferenceServer server(*model, cfg);

  const std::vector<InferenceRequest> trace =
      serve::SplitSamples(data.EvalBatch(8));
  std::atomic<size_t> next{0};
  testing::OverloadGenerator gen(server, [&] {
    return CopyRequest(trace[next.fetch_add(1) % trace.size()]);
  });
  // >2x capacity by construction: 200 open-loop submits against an
  // 8-deep queue draining one 4-request batch per ~5ms.
  const testing::OverloadOutcome out = gen.Run(/*num_threads=*/4,
                                               /*requests_per_thread=*/50);
  // Let the governor observe the still-deep queue, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  slow->set_delay(std::chrono::microseconds(0));

  EXPECT_EQ(out.submitted, 200);
  EXPECT_EQ(out.resolved(), out.submitted);  // every future resolved: no hangs
  EXPECT_EQ(out.other, 0);                   // only typed outcomes
  EXPECT_GT(out.shed, 0);
  EXPECT_GT(out.ok, 0);

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_shed, out.shed);
  EXPECT_GT(snap.queue_depth_high_water, 0);
  // The queue sat full for many ticks; the governor must have left healthy.
  EXPECT_GT(snap.health_transitions[static_cast<size_t>(
                HealthState::kDegraded)] +
                snap.health_transitions[static_cast<size_t>(
                    HealthState::kShedding)],
            0);
  const std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"health\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"queue_depth_high_water\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"requests_shed\""), std::string::npos) << json;
  server.Shutdown();
}

TEST(ServeRobustness, DrainStopsAdmissionButFinishesQueuedWork) {
  Rng rng(79);
  SyntheticCriteo data(RobustDataConfig());
  testing::SlowEmbeddingInjector* slow = nullptr;
  auto model =
      BuildModel(data.config().spec, rng, RobustDlrmConfig(), &slow);
  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 1;
  cfg.governor.enabled = false;  // ForceDrain works regardless
  serve::InferenceServer server(*model, cfg);

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(3));
  slow->set_stalled(true);
  auto in_flight = server.Submit(CopyRequest(reqs[0]));
  WaitForLookups(*slow, 1);
  auto queued = server.Submit(CopyRequest(reqs[1]));

  server.BeginDrain();
  EXPECT_EQ(server.health(), HealthState::kDraining);
  auto late = server.Submit(CopyRequest(reqs[2]));
  EXPECT_THROW(late.get(), ServerShutdown);

  slow->set_stalled(false);
  // Draining is graceful: both admitted requests still complete.
  EXPECT_EQ(in_flight.get().logits.size(), 1u);
  EXPECT_EQ(queued.get().logits.size(), 1u);
  EXPECT_EQ(server.metrics().Snapshot().health_transitions[static_cast<size_t>(
                HealthState::kDraining)],
            1);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Hot-swap
// ---------------------------------------------------------------------------

TEST(HotSwap, PublishesNewGenerationUnderLiveTraffic) {
  Rng rng_a(83), rng_b(89);
  SyntheticCriteo data(RobustDataConfig());
  std::shared_ptr<const DlrmModel> a =
      BuildModel(data.config().spec, rng_a, RobustDlrmConfig());
  std::shared_ptr<const DlrmModel> b =
      BuildModel(data.config().spec, rng_b, RobustDlrmConfig());

  const std::vector<InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(4));
  const std::vector<float> ref_a = Reference(*a, reqs);
  const std::vector<float> ref_b = Reference(*b, reqs);
  ASSERT_NE(ref_a, ref_b);  // different weights, distinguishable logits

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  serve::InferenceServer server(a, cfg);
  EXPECT_EQ(server.generation(), 1u);

  InferenceResult r = server.Submit(CopyRequest(reqs[0])).get();
  EXPECT_EQ(r.model_generation, 1u);
  EXPECT_EQ(r.logits[0], ref_a[0]);

  EXPECT_EQ(server.SwapModel(b), 2u);
  EXPECT_EQ(server.generation(), 2u);
  r = server.Submit(CopyRequest(reqs[1])).get();
  EXPECT_EQ(r.model_generation, 2u);
  EXPECT_EQ(r.logits[0], ref_b[1]);

  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.model_generation, 2u);
  EXPECT_EQ(snap.swaps_ok, 1);
  ASSERT_EQ(snap.generations.size(), 2u);
  EXPECT_EQ(snap.generations[0].generation, 1u);
  EXPECT_EQ(snap.generations[0].requests_ok, 1);
  EXPECT_EQ(snap.generations[1].generation, 2u);
  EXPECT_EQ(snap.generations[1].requests_ok, 1);
  const std::string json = server.MetricsJson();
  EXPECT_NE(json.find("\"generations\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"generation\":2"), std::string::npos) << json;
  server.Shutdown();
}

TEST(HotSwap, IncompatibleModelRejectedIncumbentKeepsServing) {
  Rng rng_a(97), rng_c(101);
  SyntheticCriteo data(RobustDataConfig());
  std::shared_ptr<const DlrmModel> a =
      BuildModel(data.config().spec, rng_a, RobustDlrmConfig());
  // Same table count, different row counts: indices validated against the
  // incumbent could be out of range on this one — must be rejected.
  SyntheticCriteoConfig other = RobustDataConfig(2, /*rows=*/64);
  std::shared_ptr<const DlrmModel> c =
      BuildModel(other.spec, rng_c, RobustDlrmConfig());

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  serve::InferenceServer server(a, cfg);
  EXPECT_THROW(server.SwapModel(c), ConfigError);
  EXPECT_THROW(server.SwapModel(std::shared_ptr<const DlrmModel>()),
               ConfigError);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.metrics().Snapshot().swaps_rejected, 2);

  std::vector<InferenceRequest> reqs = serve::SplitSamples(data.EvalBatch(1));
  EXPECT_EQ(server.Submit(std::move(reqs[0])).get().model_generation, 1u);
  server.Shutdown();
}

TEST(HotSwap, CorruptCheckpointSwapRejectedOldGenerationServes) {
  Rng rng_a(103), rng_b(107);
  SyntheticCriteo data(RobustDataConfig());
  const DatasetSpec spec = data.config().spec;
  std::shared_ptr<const DlrmModel> a =
      BuildModel(spec, rng_a, RobustDlrmConfig());
  std::unique_ptr<DlrmModel> b = BuildModel(spec, rng_b, RobustDlrmConfig());

  const std::vector<InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(2));
  const std::vector<float> ref_b = Reference(*b, reqs);

  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "swap_good.dlrm";
  const std::string flipped = dir + "swap_flipped.dlrm";
  const std::string truncated = dir + "swap_truncated.dlrm";
  b->SaveCheckpointToFile(good);
  const auto copy_to = [&](const std::string& dst) {
    std::ifstream is(good, std::ios::binary);
    std::ofstream os(dst, std::ios::binary | std::ios::trunc);
    os << is.rdbuf();
  };
  copy_to(flipped);
  testing::FlipByte(flipped, testing::FileSize(flipped) / 2);
  copy_to(truncated);
  testing::TruncateFileAt(truncated, testing::FileSize(good) - 5);

  serve::InferenceServerConfig cfg;
  cfg.governor.enabled = false;
  cfg.model_factory = [spec, dlrm = RobustDlrmConfig()] {
    Rng standby_rng(1);  // weights are overwritten by the checkpoint load
    return BuildModel(spec, standby_rng, dlrm);
  };
  serve::InferenceServer server(a, cfg);

  EXPECT_THROW(server.SwapModel(flipped), ConfigError);
  EXPECT_THROW(server.SwapModel(truncated), ConfigError);
  EXPECT_THROW(server.SwapModel(dir + "swap_missing.dlrm"), ConfigError);
  EXPECT_EQ(server.generation(), 1u);  // incumbent untouched throughout
  EXPECT_EQ(server.Submit(CopyRequest(reqs[0])).get().model_generation, 1u);

  EXPECT_EQ(server.SwapModel(good), 2u);
  const InferenceResult r = server.Submit(CopyRequest(reqs[1])).get();
  EXPECT_EQ(r.model_generation, 2u);
  EXPECT_EQ(r.logits[0], ref_b[1]);  // bitwise the saved model's logits

  const serve::ServeMetricsSnapshot snap = server.metrics().Snapshot();
  EXPECT_EQ(snap.swaps_rejected, 3);
  EXPECT_EQ(snap.swaps_ok, 1);
  server.Shutdown();
}

TEST(HotSwap, HammerSwapsUnderLoadNeverTearResults) {
  Rng rng_a(109), rng_b(113);
  SyntheticCriteo data(RobustDataConfig());
  std::shared_ptr<const DlrmModel> a =
      BuildModel(data.config().spec, rng_a, RobustDlrmConfig());
  std::shared_ptr<const DlrmModel> b =
      BuildModel(data.config().spec, rng_b, RobustDlrmConfig());

  const std::vector<InferenceRequest> reqs =
      serve::SplitSamples(data.EvalBatch(8));
  const std::vector<float> ref_a = Reference(*a, reqs);
  const std::vector<float> ref_b = Reference(*b, reqs);

  serve::InferenceServerConfig cfg;
  cfg.max_batch_size = 8;
  cfg.max_wait = std::chrono::microseconds(500);
  cfg.governor.enabled = false;
  serve::InferenceServer server(a, cfg);

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    int i = 0;
    while (!stop.load()) {
      server.SwapModel(++i % 2 == 0 ? a : b);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int64_t> torn{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const size_t idx =
            static_cast<size_t>(p * kPerProducer + i) % reqs.size();
        const InferenceResult res =
            server.Submit(CopyRequest(reqs[idx])).get();
        ASSERT_EQ(res.logits.size(), 1u);
        // Every result is bitwise one model or the other — a torn result
        // (mixed generations inside one forward) matches neither.
        if (res.logits[0] != ref_a[idx] && res.logits[0] != ref_b[idx]) {
          torn.fetch_add(1);
        }
        ASSERT_GE(res.model_generation, 1u);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true);
  swapper.join();

  EXPECT_EQ(torn.load(), 0);
  const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
  EXPECT_EQ(snap.requests_ok, int64_t{kProducers} * kPerProducer);
  EXPECT_EQ(snap.requests_failed, 0);
  EXPECT_GT(snap.swaps_ok, 2);  // the hammer actually hammered
  // Per-generation counters partition the total exactly.
  int64_t by_generation = 0;
  for (const auto& g : snap.generations) by_generation += g.requests_ok;
  EXPECT_EQ(by_generation, snap.requests_ok);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Model-checkpoint structural verification (the swap gate)
// ---------------------------------------------------------------------------

TEST(ModelCheckpointVerify, AcceptsGoodRejectsCorrupt) {
  Rng rng(127);
  SyntheticCriteo data(RobustDataConfig());
  std::unique_ptr<DlrmModel> model =
      BuildModel(data.config().spec, rng, RobustDlrmConfig());
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "verify_model.dlrm";
  model->SaveCheckpointToFile(path);

  CheckpointFileStatus v = VerifyModelCheckpointFile(path);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.version, 1u);

  EXPECT_FALSE(VerifyModelCheckpointFile(dir + "no_such_file.dlrm").ok);

  testing::FlipByte(path, testing::FileSize(path) / 3);
  v = VerifyModelCheckpointFile(path);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("checksum"), std::string::npos) << v.error;

  model->SaveCheckpointToFile(path);
  testing::TruncateFileAt(path, 10);
  EXPECT_FALSE(VerifyModelCheckpointFile(path).ok);

  testing::TruncateFileAt(path, 3);  // shorter than the header
  v = VerifyModelCheckpointFile(path);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("truncated"), std::string::npos) << v.error;

  model->SaveCheckpointToFile(path);
  testing::FlipByte(path, 0);  // break the magic
  v = VerifyModelCheckpointFile(path);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("magic"), std::string::npos) << v.error;
}

}  // namespace
}  // namespace ttrec
