// Cache autotuning stack: miss-ratio-curve estimation (MrcProfiler),
// budget waterfilling + live retuning (CacheManager), the capacity-change
// path (LfuRowCache::Resize / CachedTtEmbeddingBag::ResizeCache), the
// cache-aware capacity planner, and the idempotent CollectStats contract
// across every EmbeddingOp implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "baselines/hashed_embedding.h"
#include "baselines/lowrank_embedding.h"
#include "baselines/quantized_embedding.h"
#include "baselines/t3nsor_embedding.h"
#include "cache/cache_manager.h"
#include "cache/cached_tt_embedding.h"
#include "cache/mrc_profiler.h"
#include "data/csr_batch.h"
#include "data/skew_shift.h"
#include "dlrm/capacity_planner.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "obs/metrics.h"
#include "tensor/check.h"
#include "tensor/random.h"

namespace ttrec {
namespace {

// ---------------------------------------------------------------------------
// MissRatioCurve / MrcProfiler
// ---------------------------------------------------------------------------

TEST(MissRatioCurve, ExactPrefixSharesAtGridPoints) {
  // Counts 40, 30, 20, 10 (total 100): hit_rate(c) is the prefix share.
  const MissRatioCurve curve =
      MissRatioCurve::FromCounts({10, 40, 20, 30}, /*num_points=*/16,
                                 /*max_capacity=*/100);
  EXPECT_EQ(curve.total_accesses(), 100);
  EXPECT_EQ(curve.distinct_keys(), 4);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(1), 0.40);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(2), 0.70);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(3), 0.90);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(4), 1.00);
  // Saturated beyond the distinct-key count; zero at zero capacity.
  EXPECT_DOUBLE_EQ(curve.HitRateAt(1000), 1.00);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(0), 0.0);
  EXPECT_DOUBLE_EQ(curve.MissRateAt(2), 0.30);
}

TEST(MissRatioCurve, InterpolatesBetweenGridPointsMonotonically) {
  // 1000 distinct keys with Zipf-ish counts on a sparse grid: the
  // interpolated curve must be nondecreasing and within [0, 1].
  std::vector<int64_t> counts;
  for (int64_t k = 1; k <= 1000; ++k) {
    counts.push_back(1 + 100000 / (k * k));
  }
  const MissRatioCurve curve =
      MissRatioCurve::FromCounts(counts, /*num_points=*/12,
                                 /*max_capacity=*/1000);
  double prev = 0.0;
  for (int64_t c = 0; c <= 1000; c += 7) {
    const double h = curve.HitRateAt(c);
    EXPECT_GE(h, prev - 1e-12) << "capacity " << c;
    EXPECT_LE(h, 1.0 + 1e-12);
    prev = h;
  }
  EXPECT_NEAR(curve.HitRateAt(1000), 1.0, 1e-12);
}

TEST(MissRatioCurve, ClampsGridToMaxCapacity) {
  const MissRatioCurve curve =
      MissRatioCurve::FromCounts({50, 30, 20}, /*num_points=*/8,
                                 /*max_capacity=*/2);
  EXPECT_EQ(curve.points().back().capacity, 2);
  // Beyond max_capacity the curve is flat at its last evaluated share.
  EXPECT_DOUBLE_EQ(curve.HitRateAt(5), 0.8);
}

TEST(MissRatioCurve, RejectsBadInputs) {
  EXPECT_THROW(MissRatioCurve::FromCounts({1}, 1, 10), ConfigError);
  EXPECT_THROW(MissRatioCurve::FromCounts({1}, 8, 0), ConfigError);
  EXPECT_THROW(MissRatioCurve::FromCounts({5, -1}, 8, 10), ConfigError);
  // Zero counts are dropped, not errors.
  const MissRatioCurve curve = MissRatioCurve::FromCounts({5, 0, 0}, 8, 10);
  EXPECT_EQ(curve.distinct_keys(), 1);
  const MissRatioCurve empty = MissRatioCurve::FromCounts({0, 0}, 8, 10);
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.HitRateAt(5), 0.0);
}

TEST(MrcProfiler, MatchesTrackerPrefixShares) {
  FreqTracker t;
  t.Increment(100, 60);
  t.Increment(200, 25);
  t.Increment(300, 10);
  t.Increment(400, 5);
  const MrcProfiler profiler;
  const MissRatioCurve curve = profiler.Profile(t, /*max_capacity=*/1000);
  EXPECT_EQ(curve.total_accesses(), t.total());
  EXPECT_EQ(curve.distinct_keys(), t.size());
  EXPECT_DOUBLE_EQ(curve.HitRateAt(1), 0.60);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(2), 0.85);
  EXPECT_DOUBLE_EQ(curve.HitRateAt(4), 1.00);
}

TEST(MrcProfiler, EmptyTrackerGivesEmptyCurve) {
  FreqTracker t;
  const MissRatioCurve curve = MrcProfiler().Profile(t, 100);
  EXPECT_TRUE(curve.empty());
  EXPECT_EQ(curve.total_accesses(), 0);
}

// ---------------------------------------------------------------------------
// ApportionCacheRows (waterfilling)
// ---------------------------------------------------------------------------

/// Brute-force optimal apportionment at row granularity.
std::vector<int64_t> BruteForceApportion(
    const std::vector<CacheApportionInput>& tables, int64_t budget_bytes,
    int64_t min_rows) {
  double total_traffic = 0.0;
  for (const auto& t : tables) {
    total_traffic += static_cast<double>(t.mrc.total_accesses());
  }
  const auto score = [&](const std::vector<int64_t>& rows) {
    double s = 0.0;
    for (size_t t = 0; t < tables.size(); ++t) {
      s += static_cast<double>(tables[t].mrc.total_accesses()) /
           total_traffic * tables[t].mrc.HitRateAt(rows[t]);
    }
    return s;
  };
  std::vector<int64_t> best(tables.size(), min_rows);
  std::vector<int64_t> cur(tables.size(), min_rows);
  double best_score = score(best);
  // Exhaustive over a small instance (2 tables).
  EXPECT_EQ(tables.size(), 2u);
  for (int64_t a = min_rows; a <= tables[0].max_rows; ++a) {
    for (int64_t b = min_rows; b <= tables[1].max_rows; ++b) {
      if (a * tables[0].bytes_per_row + b * tables[1].bytes_per_row >
          budget_bytes) {
        continue;
      }
      cur = {a, b};
      const double s = score(cur);
      if (s > best_score + 1e-12) {
        best_score = s;
        best = cur;
      }
    }
  }
  return best;
}

TEST(CacheManager, WaterfillingMatchesBruteForceOnConcaveCurves) {
  // Two tables, same byte cost: one hot and skewed, one cool and flat.
  std::vector<CacheApportionInput> tables(2);
  tables[0].mrc = MissRatioCurve::FromCounts({80, 40, 20, 10, 5, 3, 2, 1},
                                             /*num_points=*/16, 8);
  tables[0].max_rows = 8;
  tables[0].bytes_per_row = 10;
  tables[1].mrc = MissRatioCurve::FromCounts({6, 5, 4, 3, 2, 1},
                                             /*num_points=*/16, 6);
  tables[1].max_rows = 6;
  tables[1].bytes_per_row = 10;

  const std::vector<int64_t> greedy =
      ApportionCacheRows(tables, /*budget_bytes=*/80, /*min_rows=*/1,
                         /*chunk_rows=*/1);
  const std::vector<int64_t> oracle = BruteForceApportion(tables, 80, 1);

  double total_traffic = 0.0;
  for (const auto& t : tables) {
    total_traffic += static_cast<double>(t.mrc.total_accesses());
  }
  const auto score = [&](const std::vector<int64_t>& rows) {
    double s = 0.0;
    for (size_t t = 0; t < tables.size(); ++t) {
      s += static_cast<double>(tables[t].mrc.total_accesses()) /
           total_traffic * tables[t].mrc.HitRateAt(rows[t]);
    }
    return s;
  };
  // Greedy on concave curves is optimal at matching granularity.
  EXPECT_NEAR(score(greedy), score(oracle), 1e-9)
      << "greedy " << greedy[0] << "/" << greedy[1] << " vs oracle "
      << oracle[0] << "/" << oracle[1];
  // Budget respected.
  EXPECT_LE(greedy[0] * 10 + greedy[1] * 10, 80);
}

TEST(CacheManager, ApportionFavorsTrafficWeight) {
  // Identical curves, but table 0 carries 9x the traffic: it must receive
  // more rows.
  std::vector<CacheApportionInput> tables(2);
  std::vector<int64_t> hot_counts, cold_counts;
  for (int64_t k = 1; k <= 50; ++k) {
    hot_counts.push_back(9 * (100 / k));
    cold_counts.push_back(100 / k);
  }
  tables[0].mrc = MissRatioCurve::FromCounts(hot_counts, 16, 50);
  tables[0].max_rows = 50;
  tables[0].bytes_per_row = 8;
  tables[1].mrc = MissRatioCurve::FromCounts(cold_counts, 16, 50);
  tables[1].max_rows = 50;
  tables[1].bytes_per_row = 8;
  const std::vector<int64_t> rows =
      ApportionCacheRows(tables, /*budget_bytes=*/320, 1, 1);
  EXPECT_GT(rows[0], rows[1]);
}

TEST(CacheManager, ApportionRejectsBudgetBelowFloor) {
  std::vector<CacheApportionInput> tables(2);
  for (auto& t : tables) {
    t.mrc = MissRatioCurve::FromCounts({5, 3}, 8, 10);
    t.max_rows = 10;
    t.bytes_per_row = 100;
  }
  EXPECT_THROW(ApportionCacheRows(tables, /*budget_bytes=*/150, 1, 1),
               ConfigError);
  // Exactly the floor is fine.
  const std::vector<int64_t> rows = ApportionCacheRows(tables, 200, 1, 1);
  EXPECT_EQ(rows[0], 1);
  EXPECT_EQ(rows[1], 1);
}

// ---------------------------------------------------------------------------
// LfuRowCache::Resize + CachedTtEmbeddingBag::ResizeCache
// ---------------------------------------------------------------------------

TEST(CacheResize, LfuResizePreservesStatsAndCountsDrops) {
  LfuRowCache cache(4, 2);
  std::vector<float> vals = {1, 1, 2, 2, 3, 3, 4, 4};
  cache.Populate(std::vector<int64_t>{10, 20, 30, 40}, vals.data());
  (void)cache.Find(10);  // hit
  (void)cache.Find(99);  // miss
  const int64_t hits_before = cache.hits();
  const int64_t misses_before = cache.misses();

  // Shrink to 2, keeping rows 10, 20.
  std::vector<float> keep_vals = {1, 1, 2, 2};
  cache.Resize(2, std::vector<int64_t>{10, 20}, keep_vals.data());
  EXPECT_EQ(cache.capacity(), 2);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.hits(), hits_before);
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_EQ(cache.evictions(), 2);  // rows 30, 40 dropped
  ASSERT_NE(cache.Peek(10), nullptr);
  EXPECT_EQ(cache.Peek(30), nullptr);

  // Grow back to 5; nothing evicted.
  cache.Resize(5, std::vector<int64_t>{10, 20}, keep_vals.data());
  EXPECT_EQ(cache.capacity(), 5);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_THROW(cache.Resize(0, std::vector<int64_t>{}, nullptr), ConfigError);
}

TEST(CacheResize, LfuPeekDoesNotTouchStats) {
  LfuRowCache cache(2, 1);
  std::vector<float> vals = {7, 8};
  cache.Populate(std::vector<int64_t>{1, 2}, vals.data());
  cache.ResetStats();
  ASSERT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.Peek(99), nullptr);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.misses(), 0);
  EXPECT_FLOAT_EQ(cache.Peek(2)[0], 8.0f);
}

CachedTtConfig ManagerCachedConfig(int64_t rows, int64_t capacity) {
  CachedTtConfig cfg;
  cfg.tt.shape = MakeTtShape(rows, 8, 3, 4);
  cfg.cache_capacity = capacity;
  cfg.warmup_iterations = 4;
  cfg.refresh_interval = 2;
  cfg.track_after_warmup = true;
  return cfg;
}

TEST(CacheResize, CachedBagResizePreservesLearnedValues) {
  Rng rng(11);
  CachedTtEmbeddingBag emb(ManagerCachedConfig(64, 4), TtInit::kGaussian,
                           rng);
  // Warm rows 0..3 into the cache.
  std::vector<float> out(static_cast<size_t>(4 * 8));
  CsrBatch hot = CsrBatch::FromIndices({0, 1, 2, 3});
  for (int i = 0; i < 6; ++i) emb.Forward(hot, out.data());
  const float* peeked = emb.cache().Peek(0);
  ASSERT_NE(peeked, nullptr);
  // "Learn" a distinctive value on the cached (uncompressed) row. The
  // const_cast stands in for the training path's writable Find pointer.
  const_cast<float*>(peeked)[0] = 1234.5f;

  // Grow: survivors must carry the learned value, not a re-materialized
  // TT row.
  emb.ResizeCache(8);
  EXPECT_EQ(emb.cache().capacity(), 8);
  EXPECT_EQ(emb.config().cache_capacity, 8);
  EXPECT_EQ(emb.resizes(), 1);
  ASSERT_NE(emb.cache().Peek(0), nullptr);
  EXPECT_FLOAT_EQ(emb.cache().Peek(0)[0], 1234.5f);

  // Shrink keeps the hottest rows (0..3 dominate the tracker).
  emb.ResizeCache(2);
  EXPECT_EQ(emb.cache().capacity(), 2);
  EXPECT_EQ(emb.cache().size(), 2);
  std::set<int64_t> resident;
  for (const int64_t r : emb.cache().CachedRows()) resident.insert(r);
  for (const int64_t r : resident) EXPECT_LT(r, 4);

  // No-op resize does not count.
  emb.ResizeCache(2);
  EXPECT_EQ(emb.resizes(), 2);
  EXPECT_THROW(emb.ResizeCache(0), ConfigError);
  EXPECT_THROW(emb.ResizeCache(1000), ConfigError);  // > num_rows
}

// ---------------------------------------------------------------------------
// CacheManager end to end
// ---------------------------------------------------------------------------

TEST(CacheManager, RegisterValidation) {
  CacheManagerConfig mc;
  mc.budget_bytes = 1 << 20;
  CacheManager mgr(mc);
  Rng rng(5);
  CachedTtEmbeddingBag bag(ManagerCachedConfig(64, 4), TtInit::kGaussian,
                           rng);
  mgr.RegisterTable(0, &bag);
  EXPECT_THROW(mgr.RegisterTable(0, &bag), ConfigError);
  EXPECT_THROW(mgr.RegisterTable(-1, &bag), ConfigError);
  EXPECT_THROW(mgr.RegisterTable(1, nullptr), ConfigError);
  EXPECT_THROW(CacheManager(CacheManagerConfig{}), ConfigError);
}

TEST(CacheManager, RetuneShiftsCapacityTowardTraffic) {
  Rng rng(7);
  CachedTtEmbeddingBag hot(ManagerCachedConfig(128, 4), TtInit::kGaussian,
                           rng);
  CachedTtEmbeddingBag cold(ManagerCachedConfig(128, 4), TtInit::kGaussian,
                            rng);

  // Drive heavy skewed traffic into `hot`, a trickle into `cold`.
  std::vector<float> out(static_cast<size_t>(16 * 8));
  Rng traffic(13);
  ZipfSampler zipf(128, 1.3);
  for (int it = 0; it < 30; ++it) {
    std::vector<int64_t> idx;
    for (int i = 0; i < 16; ++i) idx.push_back(zipf.Sample(traffic));
    hot.Forward(CsrBatch::FromIndices(std::move(idx)), out.data());
    cold.Forward(CsrBatch::FromIndices({static_cast<int64_t>(it % 2)}),
                 out.data());
  }

  CacheManagerConfig mc;
  mc.budget_bytes = 64 * LfuRowCache::BytesPerRow(8);
  mc.chunk_rows = 1;
  CacheManager mgr(mc);
  mgr.RegisterTable(0, &hot);
  mgr.RegisterTable(1, &cold);

  const ApportionmentPlan plan = mgr.Retune();
  EXPECT_EQ(mgr.retunes(), 1);
  ASSERT_EQ(plan.tables.size(), 2u);
  EXPECT_GT(plan.tables[0].rows, plan.tables[1].rows);
  EXPECT_GT(plan.tables[0].traffic_share, plan.tables[1].traffic_share);
  EXPECT_LE(plan.used_bytes, plan.budget_bytes);
  EXPECT_GT(plan.predicted_aggregate_hit_rate, 0.0);
  // The live caches were resized to the plan.
  EXPECT_EQ(hot.cache().capacity(), plan.tables[0].rows);
  EXPECT_EQ(cold.cache().capacity(), plan.tables[1].rows);

  // Stats surface per table and are idempotent.
  obs::MetricRegistry reg;
  mgr.CollectStats(reg);
  mgr.CollectStats(reg);
  const obs::StripedCounter* retunes = reg.FindCounter("cache.mgr.retunes");
  ASSERT_NE(retunes, nullptr);
  EXPECT_EQ(retunes->Total(), 1);
  const obs::Gauge* rows0 = reg.FindGauge("cache.0.rows");
  ASSERT_NE(rows0, nullptr);
  EXPECT_DOUBLE_EQ(rows0->Value(),
                   static_cast<double>(plan.tables[0].rows));
  ASSERT_NE(reg.FindGauge("cache.1.traffic_share"), nullptr);
  ASSERT_NE(reg.FindGauge("cache.0.mrc.total_accesses"), nullptr);
}

TEST(CacheManager, TrainerRetunesDuringTraining) {
  Rng rng(23);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ManagerCachedConfig(200, 4), TtInit::kGaussian, rng));
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ManagerCachedConfig(150, 4), TtInit::kGaussian, rng));
  DlrmConfig dc;
  dc.emb_dim = 8;
  dc.bottom_hidden = {16};
  dc.top_hidden = {16};
  auto model = std::make_unique<DlrmModel>(dc, std::move(tables), rng);

  SyntheticCriteoConfig scfg;
  scfg.spec.name = "mgr_tiny";
  scfg.spec.table_rows = {200, 150};
  SyntheticCriteo data(scfg);

  obs::MetricRegistry reg;
  TrainConfig tc;
  tc.iterations = 12;
  tc.batch_size = 16;
  tc.eval_batches = 0;
  tc.log_every = 0;
  tc.metrics = &reg;
  tc.cache_budget_bytes = 32 * LfuRowCache::BytesPerRow(8);
  tc.cache_retune_interval = 4;
  TrainDlrm(*model, data, tc);

  const obs::StripedCounter* retunes =
      reg.FindCounter("train.cache_retunes");
  ASSERT_NE(retunes, nullptr);
  EXPECT_EQ(retunes->Total(), 3);  // iterations 4, 8, 12
  const obs::StripedCounter* mgr_retunes =
      reg.FindCounter("cache.mgr.retunes");
  ASSERT_NE(mgr_retunes, nullptr);
  EXPECT_EQ(mgr_retunes->Total(), 3);
  // The budget constrains the final capacities.
  int64_t total_rows = 0;
  for (int t = 0; t < model->num_tables(); ++t) {
    CachedTtEmbeddingBag* bag = model->table(t).cached_bag();
    ASSERT_NE(bag, nullptr);
    total_rows += bag->cache().capacity();
  }
  EXPECT_LE(total_rows * LfuRowCache::BytesPerRow(8),
            tc.cache_budget_bytes);

  // Mis-paired knobs are rejected.
  TrainConfig bad = tc;
  bad.cache_retune_interval = 0;
  EXPECT_THROW(TrainDlrm(*model, data, bad), ConfigError);
}

TEST(CacheManager, AutotuneBeatsStaticSplitOnSkewShift) {
  // Miniature version of bench/cache_autotune: two tables whose traffic
  // swaps at the phase boundary. Equal static split vs managed budget.
  const auto run = [](bool autotune) {
    Rng rng(31);
    CachedTtConfig c0 = ManagerCachedConfig(256, 16);
    c0.rewarm_period = 10;
    CachedTtEmbeddingBag a(c0, TtInit::kGaussian, rng);
    CachedTtEmbeddingBag b(c0, TtInit::kGaussian, rng);

    SkewShiftConfig sc;
    sc.tables = {{256, 1.2, 8.0}, {256, 1.2, 1.0}};
    sc.lookups_per_iteration = 64;
    sc.phase_length = 40;
    SkewShiftScenario scenario(sc);

    CacheManagerConfig mc;
    mc.budget_bytes = 32 * LfuRowCache::BytesPerRow(8);
    mc.chunk_rows = 1;
    CacheManager mgr(mc);
    mgr.RegisterTable(0, &a);
    mgr.RegisterTable(1, &b);

    std::vector<float> out;
    for (int it = 0; it < 80; ++it) {
      const std::vector<CsrBatch> batches = scenario.NextBatch();
      out.resize(static_cast<size_t>(batches[0].num_bags() * 8));
      a.Forward(batches[0], out.data());
      out.resize(static_cast<size_t>(batches[1].num_bags() * 8));
      b.Forward(batches[1], out.data());
      if (autotune && (it + 1) % 10 == 0) mgr.Retune();
    }
    const int64_t hits = a.cache().hits() + b.cache().hits();
    const int64_t misses = a.cache().misses() + b.cache().misses();
    return static_cast<double>(misses) / static_cast<double>(hits + misses);
  };
  const double static_miss = run(false);
  const double tuned_miss = run(true);
  EXPECT_LT(tuned_miss, static_miss);
}

// ---------------------------------------------------------------------------
// Cache-aware capacity planner
// ---------------------------------------------------------------------------

TEST(CacheManager, PlanCapacityWithCacheSplitsBudget) {
  DatasetSpec spec;
  spec.name = "planner_cache";
  spec.table_rows = {100000, 60000, 400};
  const int64_t emb_dim = 16;

  // Skewed traffic on the two big (compressible) tables.
  std::vector<int64_t> counts;
  for (int64_t k = 1; k <= 2000; ++k) counts.push_back(1 + 200000 / k);
  std::vector<MissRatioCurve> mrcs(3);
  mrcs[0] = MissRatioCurve::FromCounts(counts, 24, 100000);
  mrcs[1] = MissRatioCurve::FromCounts(counts, 24, 60000);
  // Table 2 sees no traffic.

  const int64_t budget = 2 * 1024 * 1024;
  const CacheAwarePlan plan =
      PlanCapacityWithCache(spec, emb_dim, budget, mrcs);
  EXPECT_TRUE(plan.tt.fits);
  // Combined footprint respects the budget.
  EXPECT_LE(plan.tt.total_bytes + plan.cache_budget_bytes, budget);
  ASSERT_EQ(plan.cache_rows.size(), 3u);
  // Dense tables get no cache.
  for (size_t t = 0; t < plan.cache_rows.size(); ++t) {
    if (!plan.tt.tables[t].compress) EXPECT_EQ(plan.cache_rows[t], 0);
  }
  // With strongly skewed traffic, some nonzero cache fraction should win
  // over pure TT (predicted hit rate > 0 implies rows were allocated).
  EXPECT_GT(plan.predicted_hit_rate, 0.0);
  int64_t cached_rows = 0;
  for (const int64_t r : plan.cache_rows) cached_rows += r;
  EXPECT_GT(cached_rows, 0);

  // A pure-TT sanity point: fraction list {0.0} must reproduce
  // PlanCapacity exactly.
  CachePlannerOptions opts;
  opts.cache_fractions = {0.0};
  const CacheAwarePlan pure =
      PlanCapacityWithCache(spec, emb_dim, budget, mrcs, opts);
  const CapacityPlan reference = PlanCapacity(spec, emb_dim, budget);
  EXPECT_EQ(pure.tt.total_bytes, reference.total_bytes);
  EXPECT_EQ(pure.cache_budget_bytes, 0);

  // Validation: MRC count mismatch and missing 0 fraction. (Named options
  // object: a defaulted temporary inside EXPECT_THROW trips gcc's
  // -Wmaybe-uninitialized under -Werror.)
  const CachePlannerOptions defaults;
  const std::vector<MissRatioCurve> short_mrcs(2);
  EXPECT_THROW(
      PlanCapacityWithCache(spec, emb_dim, budget, short_mrcs, defaults),
      ConfigError);
  CachePlannerOptions bad;
  bad.cache_fractions = {0.1};
  EXPECT_THROW(PlanCapacityWithCache(spec, emb_dim, budget, mrcs, bad),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Idempotent CollectStats across every EmbeddingOp implementation
// ---------------------------------------------------------------------------

/// Collects twice into one registry; every counter and gauge must match a
/// single collection into a fresh registry (the repeated-collection
/// double-count regression).
void ExpectIdempotentCollection(const EmbeddingOp& op) {
  obs::MetricRegistry once;
  op.CollectStats(once);
  obs::MetricRegistry twice;
  op.CollectStats(twice);
  op.CollectStats(twice);
  const obs::MetricsSnapshot a = once.Snapshot();
  const obs::MetricsSnapshot b = twice.Snapshot();
  ASSERT_EQ(a.counters.size(), b.counters.size()) << op.Name();
  for (size_t i = 0; i < a.counters.size(); ++i) {
    EXPECT_EQ(a.counters[i].first, b.counters[i].first) << op.Name();
    EXPECT_EQ(a.counters[i].second, b.counters[i].second)
        << op.Name() << " counter " << a.counters[i].first;
  }
  ASSERT_EQ(a.gauges.size(), b.gauges.size()) << op.Name();
  for (size_t i = 0; i < a.gauges.size(); ++i) {
    EXPECT_EQ(a.gauges[i].first, b.gauges[i].first) << op.Name();
    EXPECT_DOUBLE_EQ(a.gauges[i].second, b.gauges[i].second)
        << op.Name() << " gauge " << a.gauges[i].first;
  }
}

TEST(CacheManager, CollectStatsIsIdempotentForEveryOperator) {
  Rng rng(41);
  std::vector<std::unique_ptr<EmbeddingOp>> ops;
  ops.push_back(std::make_unique<DenseEmbeddingBag>(
      64, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(64, 8, 3, 4);
  ops.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  ops.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ManagerCachedConfig(64, 4), TtInit::kGaussian, rng));
  ops.push_back(std::make_unique<LowRankEmbeddingBag>(64, 8, 4,
                                                      PoolingMode::kSum,
                                                      rng));
  ops.push_back(std::make_unique<HashedEmbeddingBag>(64, 16, 8,
                                                     PoolingMode::kSum,
                                                     rng));
  {
    Tensor table({64, 8});
    for (int64_t i = 0; i < table.numel(); ++i) {
      table.data()[i] = static_cast<float>(i % 7) - 3.0f;
    }
    ops.push_back(std::make_unique<QuantizedEmbeddingBag>(
        table, /*bits=*/8, PoolingMode::kSum));
  }
  ops.push_back(
      std::make_unique<T3nsorEmbeddingBag>(tcfg, TtInit::kGaussian, rng));

  std::vector<float> out(static_cast<size_t>(4 * 8));
  const CsrBatch batch = CsrBatch::FromIndices({0, 3, 9, 2});
  for (auto& op : ops) {
    op->Forward(batch, out.data());
    ExpectIdempotentCollection(*op);
  }

  // Aggregation across tables into one registry still works: emb.tables
  // counts each operator exactly once even after repeated collections.
  obs::MetricRegistry agg;
  for (auto& op : ops) op->CollectStats(agg);
  for (auto& op : ops) op->CollectStats(agg);
  const obs::StripedCounter* n = agg.FindCounter("emb.tables");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->Total(), static_cast<int64_t>(ops.size()));
}

TEST(CacheManager, CachedStatsExactAfterMoreTrafficAndRecollection) {
  // The registry must track the live totals across interleaved traffic and
  // collections: collect, run more lookups, collect again — the counter
  // equals the operator's current total, not a double-counted sum.
  Rng rng(43);
  CachedTtEmbeddingBag emb(ManagerCachedConfig(64, 4), TtInit::kGaussian,
                           rng);
  std::vector<float> out(static_cast<size_t>(4 * 8));
  const CsrBatch batch = CsrBatch::FromIndices({0, 1, 2, 3});
  obs::MetricRegistry reg;
  for (int round = 0; round < 3; ++round) {
    emb.Forward(batch, out.data());
    emb.CollectStats(reg);
    const obs::StripedCounter* hits = reg.FindCounter("cache.hits");
    const obs::StripedCounter* misses = reg.FindCounter("cache.misses");
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(misses, nullptr);
    EXPECT_EQ(hits->Total(), emb.cache().hits()) << "round " << round;
    EXPECT_EQ(misses->Total(), emb.cache().misses()) << "round " << round;
  }
  // A fresh registry still receives the full cumulative totals (the
  // serving snapshot pattern).
  obs::MetricRegistry fresh;
  emb.CollectStats(fresh);
  EXPECT_EQ(fresh.FindCounter("cache.hits")->Total(), emb.cache().hits());
  EXPECT_EQ(fresh.FindCounter("cache.misses")->Total(),
            emb.cache().misses());
}

}  // namespace
}  // namespace ttrec
