// Randomized stress equivalence: for many random batch geometries (bag
// sizes 0..6, duplicate indices, random weights, both pooling modes, dedup
// on/off), the TT operator must agree with a DenseEmbeddingBag built from
// its own materialized table — forward AND one SGD step later.
#include <gtest/gtest.h>

#include <vector>

#include "dlrm/embedding_bag.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

CsrBatch RandomBatch(Rng& rng, int64_t num_rows, int64_t num_bags) {
  CsrBatch b;
  b.offsets.push_back(0);
  for (int64_t bag = 0; bag < num_bags; ++bag) {
    const int64_t size = rng.RandInt(7);  // 0..6, empties included
    for (int64_t i = 0; i < size; ++i) {
      b.indices.push_back(rng.RandInt(num_rows));
    }
    b.offsets.push_back(static_cast<int64_t>(b.indices.size()));
  }
  if (rng.Bernoulli(0.5)) {
    for (size_t i = 0; i < b.indices.size(); ++i) {
      b.weights.push_back(static_cast<float>(rng.Uniform(-2.0, 2.0)));
    }
  }
  return b;
}

class StressSweep : public ::testing::TestWithParam<
                        std::tuple<int, bool, PoolingMode>> {};

TEST_P(StressSweep, TtMatchesDenseOracleAcrossRandomBatches) {
  const auto [trial, dedup, pooling] = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(trial) * 7 + (dedup ? 1 : 0) +
          (pooling == PoolingMode::kMean ? 3 : 0));

  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(72, 8, 3, 4);
  cfg.pooling = pooling;
  cfg.deduplicate = dedup;
  cfg.block_size = 5;  // force odd block boundaries
  TtEmbeddingBag tt(cfg, TtInit::kSampledGaussian, rng);

  DenseEmbeddingBag dense(tt.cores().MaterializeFull(), pooling);

  for (int round = 0; round < 4; ++round) {
    CsrBatch batch = RandomBatch(rng, 72, 6);
    const int64_t n = batch.num_bags() * 8;
    std::vector<float> out_tt(static_cast<size_t>(n));
    std::vector<float> out_dense(static_cast<size_t>(n));
    tt.Forward(batch, out_tt.data());
    dense.Forward(batch, out_dense.data());
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_NEAR(out_tt[static_cast<size_t>(i)],
                  out_dense[static_cast<size_t>(i)], 1e-3f)
          << "round " << round << " elem " << i;
    }

    // One training step through the TT path; the dense oracle is then
    // rebuilt from the updated cores and must still agree.
    std::vector<float> g(static_cast<size_t>(n));
    for (float& x : g) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
    tt.Backward(batch, g.data());
    tt.ApplySgd(0.05f);
    dense = DenseEmbeddingBag(tt.cores().MaterializeFull(), pooling);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Trials, StressSweep,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Bool(),
                       ::testing::Values(PoolingMode::kSum,
                                         PoolingMode::kMean)));

}  // namespace
}  // namespace ttrec
