// Serialization: tensor/TT-core roundtrips, checksum protection, format
// validation, file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tensor/check.h"
#include "tensor/serialize.h"
#include "tt/tt_embedding.h"
#include "tt/tt_io.h"

namespace ttrec {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Tensor t({3, 4});
  Rng rng(1);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::stringstream ss;
  BinaryWriter w(ss);
  SaveTensor(w, t);
  w.Finish();

  BinaryReader r(ss);
  Tensor back = LoadTensor(r);
  r.Finish();
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(MaxAbsDiff(back, t), 0.0);
}

TEST(Serialize, PrimitiveRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(0xDEADBEEF);
  w.WriteI64(-42);
  w.WriteI64Vec({1, 2, 3});
  w.WriteString("tt-rec");
  w.Finish();

  BinaryReader r(ss);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadI64Vec(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadString(), "tt-rec");
  EXPECT_NO_THROW(r.Finish());
}

TEST(Serialize, ChecksumCatchesCorruption) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteI64Vec({10, 20, 30, 40});
  w.Finish();
  std::string payload = ss.str();
  payload[12] ^= 0x01;  // flip one bit inside the data

  std::stringstream corrupted(payload);
  BinaryReader r(corrupted);
  (void)r.ReadI64Vec();
  EXPECT_THROW(r.Finish(), TtRecError);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteI64(7);
  w.Finish();
  std::stringstream truncated(ss.str().substr(0, 4));
  BinaryReader r(truncated);
  EXPECT_THROW(r.ReadI64(), TtRecError);
}

TEST(TtIo, CoresRoundTripPreservesLookups) {
  Rng rng(7);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(1000, 16, 3, 8);
  TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);

  std::stringstream ss;
  SaveTtCores(ss, emb.cores());
  TtCores loaded = LoadTtCores(ss);

  EXPECT_EQ(loaded.shape().num_rows, 1000);
  EXPECT_EQ(loaded.shape().emb_dim, 16);
  std::vector<float> a(16), b(16);
  for (int64_t row : {int64_t{0}, int64_t{517}, int64_t{999}}) {
    emb.cores().MaterializeRow(row, a.data());
    loaded.MaterializeRow(row, b.data());
    for (int j = 0; j < 16; ++j) EXPECT_EQ(a[static_cast<size_t>(j)], b[static_cast<size_t>(j)]);
  }
}

TEST(TtIo, RejectsBadMagicAndVersion) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(0x12345678);
  w.Finish();
  EXPECT_THROW(LoadTtCores(ss), TtRecError);

  std::stringstream ss2;
  BinaryWriter w2(ss2);
  w2.WriteU32(0x43525454);
  w2.WriteU32(999);  // future version
  w2.Finish();
  EXPECT_THROW(LoadTtCores(ss2), TtRecError);
}

TEST(TtIo, FileRoundTripAndSize) {
  Rng rng(9);
  TtShape shape = MakeTtShape(100000, 16, 3, 16);
  TtCores cores(shape);
  InitializeTtCores(cores, TtInit::kGaussian, rng);

  const std::string path = "/tmp/ttrec_test_cores.bin";
  SaveTtCoresToFile(path, cores);
  TtCores loaded = LoadTtCoresFromFile(path);
  EXPECT_EQ(loaded.TotalParams(), cores.TotalParams());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(MaxAbsDiff(loaded.core(k), cores.core(k)), 0.0);
  }
  // The file is dominated by the core parameters, not overhead.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_LT(size, cores.TotalParams() * 4 + 1024);
  EXPECT_GT(size, cores.TotalParams() * 4);

  EXPECT_THROW(LoadTtCoresFromFile("/nonexistent/path.bin"), TtRecError);
}

}  // namespace
}  // namespace ttrec
