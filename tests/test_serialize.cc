// Serialization: tensor/TT-core roundtrips, checksum protection, format
// validation, file I/O.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tensor/check.h"
#include "tensor/serialize.h"
#include "tt/tt_embedding.h"
#include "tt/tt_io.h"

namespace ttrec {
namespace {

TEST(Serialize, TensorRoundTrip) {
  Tensor t({3, 4});
  Rng rng(1);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  std::stringstream ss;
  BinaryWriter w(ss);
  SaveTensor(w, t);
  w.Finish();

  BinaryReader r(ss);
  Tensor back = LoadTensor(r);
  r.Finish();
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(MaxAbsDiff(back, t), 0.0);
}

TEST(Serialize, PrimitiveRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(0xDEADBEEF);
  w.WriteI64(-42);
  w.WriteI64Vec({1, 2, 3});
  w.WriteString("tt-rec");
  w.Finish();

  BinaryReader r(ss);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEF);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_EQ(r.ReadI64Vec(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadString(), "tt-rec");
  EXPECT_NO_THROW(r.Finish());
}

TEST(Serialize, ChecksumCatchesCorruption) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteI64Vec({10, 20, 30, 40});
  w.Finish();
  std::string payload = ss.str();
  payload[12] ^= 0x01;  // flip one bit inside the data

  std::stringstream corrupted(payload);
  BinaryReader r(corrupted);
  (void)r.ReadI64Vec();
  EXPECT_THROW(r.Finish(), TtRecError);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteI64(7);
  w.Finish();
  std::stringstream truncated(ss.str().substr(0, 4));
  BinaryReader r(truncated);
  EXPECT_THROW(r.ReadI64(), TtRecError);
}

TEST(TtIo, CoresRoundTripPreservesLookups) {
  Rng rng(7);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(1000, 16, 3, 8);
  TtEmbeddingBag emb(cfg, TtInit::kSampledGaussian, rng);

  std::stringstream ss;
  SaveTtCores(ss, emb.cores());
  TtCores loaded = LoadTtCores(ss);

  EXPECT_EQ(loaded.shape().num_rows, 1000);
  EXPECT_EQ(loaded.shape().emb_dim, 16);
  std::vector<float> a(16), b(16);
  for (int64_t row : {int64_t{0}, int64_t{517}, int64_t{999}}) {
    emb.cores().MaterializeRow(row, a.data());
    loaded.MaterializeRow(row, b.data());
    for (int j = 0; j < 16; ++j) EXPECT_EQ(a[static_cast<size_t>(j)], b[static_cast<size_t>(j)]);
  }
}

TEST(TtIo, RejectsBadMagicAndVersion) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(0x12345678);
  w.Finish();
  EXPECT_THROW(LoadTtCores(ss), TtRecError);

  std::stringstream ss2;
  BinaryWriter w2(ss2);
  w2.WriteU32(0x43525454);
  w2.WriteU32(999);  // future version
  w2.Finish();
  EXPECT_THROW(LoadTtCores(ss2), TtRecError);
}

TEST(TtIo, FileRoundTripAndSize) {
  Rng rng(9);
  TtShape shape = MakeTtShape(100000, 16, 3, 16);
  TtCores cores(shape);
  InitializeTtCores(cores, TtInit::kGaussian, rng);

  const std::string path = "/tmp/ttrec_test_cores.bin";
  SaveTtCoresToFile(path, cores);
  TtCores loaded = LoadTtCoresFromFile(path);
  EXPECT_EQ(loaded.TotalParams(), cores.TotalParams());
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(MaxAbsDiff(loaded.core(k), cores.core(k)), 0.0);
  }
  // The file is dominated by the core parameters, not overhead.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_LT(size, cores.TotalParams() * 4 + 1024);
  EXPECT_GT(size, cores.TotalParams() * 4);

  EXPECT_THROW(LoadTtCoresFromFile("/nonexistent/path.bin"), TtRecError);
}


// ---------------------------------------------------------------------------
// CRC32-framed sections (the crash-safety layer under TTSN snapshots).

TEST(Serialize, Crc32MatchesKnownVector) {
  // IEEE CRC32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Incremental computation equals one-shot.
  uint32_t inc = Crc32("12345", 5);
  inc = Crc32("6789", 4, inc);
  EXPECT_EQ(inc, 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(Serialize, SectionRoundTrip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(0xABCD);  // unsectioned preamble
  w.BeginSection("meta");
  w.WriteI64(42);
  w.WriteString("hello");
  w.EndSection();
  w.BeginSection("empty");
  w.EndSection();
  w.Finish();

  BinaryReader r(ss);
  EXPECT_EQ(r.ReadU32(), 0xABCDu);
  const uint64_t size = r.BeginSection("meta");
  EXPECT_EQ(size, 8u + 8u + 5u);
  EXPECT_EQ(r.ReadI64(), 42);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.SectionRemaining(), 0u);
  r.EndSection();
  EXPECT_EQ(r.BeginSection("empty"), 0u);
  r.EndSection();
  r.Finish();
}

TEST(Serialize, SectionNameMismatchThrows) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.BeginSection("model");
  w.WriteI64(1);
  w.EndSection();
  w.Finish();
  BinaryReader r(ss);
  EXPECT_THROW(r.BeginSection("optim"), TtRecError);
}

TEST(Serialize, SectionCrcCatchesPayloadFlip) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.BeginSection("data");
  for (int i = 0; i < 64; ++i) w.WriteI64(i);
  w.EndSection();
  w.Finish();
  std::string bytes = ss.str();
  // Flip a byte well inside the payload (after name + size header).
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  std::stringstream bad(bytes);
  BinaryReader r(bad);
  const uint64_t size = r.BeginSection("data");
  r.SkipBytes(size);  // CRC accumulates even without interpreting bytes
  EXPECT_THROW(r.EndSection(), TtRecError);
}

TEST(Serialize, SectionOverrunAndUnderrunAreErrors) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.BeginSection("s");
  w.WriteI64(7);
  w.EndSection();
  w.Finish();
  {
    std::stringstream copy(ss.str());
    BinaryReader r(copy);
    r.BeginSection("s");
    // Unread payload left over -> EndSection refuses.
    EXPECT_THROW(r.EndSection(), TtRecError);
  }
  {
    std::stringstream copy(ss.str());
    BinaryReader r(copy);
    r.BeginSection("s");
    r.ReadI64();
    // Reading past the declared size -> overrun.
    EXPECT_THROW(r.ReadI64(), TtRecError);
  }
}

TEST(Serialize, SkipBytesWalkValidatesWholeFile) {
  // The ttrec_info-verify access pattern: walk headers, skip payloads.
  std::stringstream ss;
  BinaryWriter w(ss);
  w.WriteU32(3);  // section count
  for (const char* name : {"a", "b", "c"}) {
    w.BeginSection(name);
    w.WriteString(name);
    w.WriteI64(1234);
    w.EndSection();
  }
  w.Finish();

  BinaryReader r(ss);
  const uint32_t n = r.ReadU32();
  ASSERT_EQ(n, 3u);
  for (uint32_t i = 0; i < n; ++i) {
    const BinaryReader::SectionHeader h = r.BeginAnySection();
    EXPECT_FALSE(h.name.empty());
    r.SkipBytes(r.SectionRemaining());
    r.EndSection();
  }
  r.Finish();
}

TEST(Serialize, WriterRejectsNestedOrUnbalancedSections) {
  std::stringstream ss;
  BinaryWriter w(ss);
  w.BeginSection("outer");
  EXPECT_THROW(w.BeginSection("inner"), TtRecError);
}

}  // namespace
}  // namespace ttrec
