// Self-healing training loop: exact resume from snapshots, NaN-gradient
// recovery (skip and rollback policies), loss-spike skipping, gradient
// clipping, and out-of-range index policies.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>

#include "dlrm/checkpoint.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "fault_injector.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

namespace fs = std::filesystem;

DlrmConfig TinyConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig TinyData() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

/// Mixed-architecture model: dense + TT + cached TT.
std::unique_ptr<DlrmModel> MakeMixedModel(uint64_t seed,
                                          DlrmConfig cfg = TinyConfig()) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      200, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(cfg, std::move(tables), rng);
}

/// Like MakeMixedModel but with the dense table wrapped in a NaN-gradient
/// injector that fires on Backward call `fault_on_call`.
std::unique_ptr<DlrmModel> MakeFaultedModel(uint64_t seed,
                                            int64_t fault_on_call,
                                            testing::NanGradInjector** out) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  auto injector = std::make_unique<testing::NanGradInjector>(
      std::make_unique<DenseEmbeddingBag>(200, 8, PoolingMode::kSum,
                                          DenseEmbeddingInit::UniformScaled(),
                                          rng),
      fault_on_call);
  if (out != nullptr) *out = injector.get();
  tables.push_back(std::move(injector));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(TinyConfig(), std::move(tables), rng);
}

std::string CheckpointBytes(const DlrmModel& model) {
  std::stringstream ss;
  model.SaveCheckpoint(ss);
  return ss.str();
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_((fs::temp_directory_path() / name).string()) {
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(FaultTolerance, ResumeReproducesUninterruptedRunExactly) {
  ScratchDir dir("ttrec_resume_exact");

  TrainConfig base;
  base.batch_size = 32;
  base.lr = 0.05f;
  base.eval_batches = 0;
  base.log_every = 0;
  base.checkpoint_every = 5;
  base.checkpoint_dir = dir.path();

  // "Crashed" run: 10 iterations, snapshots at 5 and 10.
  auto crashed = MakeMixedModel(42);
  SyntheticCriteo data_a(TinyData());
  TrainConfig first = base;
  first.iterations = 10;
  (void)TrainDlrm(*crashed, data_a, first);

  // Resumed run: a DIFFERENT init seed and a FRESH data stream — the
  // snapshot must overwrite both the parameters and the batch cursor.
  auto resumed = MakeMixedModel(999);
  SyntheticCriteo data_b(TinyData());
  TrainConfig second = base;
  second.iterations = 20;
  second.resume = true;
  TrainResult rb = TrainDlrm(*resumed, data_b, second);
  EXPECT_EQ(rb.start_iteration, 10);
  EXPECT_EQ(rb.robustness.checkpoints_written, 2);  // at 15 and 20

  // Uninterrupted control: same init as the crashed run, straight to 20.
  ScratchDir dir_c("ttrec_resume_ctrl");
  auto control = MakeMixedModel(42);
  SyntheticCriteo data_c(TinyData());
  TrainConfig clean = base;
  clean.iterations = 20;
  clean.checkpoint_dir = dir_c.path();
  (void)TrainDlrm(*control, data_c, clean);

  // Bitwise identity of the full serialized state, not just predictions.
  EXPECT_EQ(CheckpointBytes(*resumed), CheckpointBytes(*control));
}

TEST(FaultTolerance, ResumeAfterTruncatedNewestSnapshotUsesOlderOne) {
  ScratchDir dir("ttrec_resume_torn");
  auto model = MakeMixedModel(7);
  SyntheticCriteo data(TinyData());
  TrainConfig cfg;
  cfg.iterations = 10;
  cfg.batch_size = 32;
  cfg.eval_batches = 0;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_dir = dir.path();
  (void)TrainDlrm(*model, data, cfg);

  CheckpointManagerConfig mc;
  mc.directory = dir.path();
  CheckpointManager manager(mc);
  auto snaps = manager.ListSnapshots();
  ASSERT_EQ(snaps.size(), 2u);
  // Tear the newest snapshot in half; recovery must fall back to iter 5.
  testing::TruncateFileAt(snaps.back(),
                          testing::FileSize(snaps.back()) / 2);

  auto recovered = MakeMixedModel(888);
  SyntheticCriteo data2(TinyData());
  SnapshotMeta meta;
  ASSERT_TRUE(manager.RestoreLatest(*recovered, data2, &meta));
  EXPECT_EQ(meta.iteration, 5);
  ASSERT_EQ(manager.skipped().size(), 1u);
  EXPECT_NE(manager.skipped()[0].find(snaps.back()), std::string::npos);
}

TEST(FaultTolerance, NanGradientSkipKeepsRunFinite) {
  testing::NanGradInjector* injector = nullptr;
  auto model = MakeFaultedModel(3, /*fault_on_call=*/7, &injector);
  SyntheticCriteo data(TinyData());
  TrainConfig cfg;
  cfg.iterations = 20;
  cfg.batch_size = 32;
  cfg.eval_batch_size = 128;
  cfg.log_every = 1;
  cfg.fault.check_non_finite = true;
  TrainResult r = TrainDlrm(*model, data, cfg);

  EXPECT_GT(injector->backward_calls(), 7);
  EXPECT_EQ(r.robustness.non_finite_grad_skips, 1);
  EXPECT_EQ(r.robustness.non_finite_loss_skips, 0);
  for (double loss : r.loss_history) EXPECT_TRUE(std::isfinite(loss));
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
  EXPECT_TRUE(std::isfinite(r.final_eval.auc));
}

TEST(FaultTolerance, UnguardedNanGradientPoisonsTheModel) {
  // Control for the test above: without the guard the same fault drives
  // the parameters non-finite — proving the guard is what saved the run.
  testing::NanGradInjector* injector = nullptr;
  auto model = MakeFaultedModel(3, /*fault_on_call=*/7, &injector);
  SyntheticCriteo data(TinyData());
  TrainConfig cfg;
  cfg.iterations = 20;
  cfg.batch_size = 32;
  cfg.eval_batch_size = 128;
  cfg.log_every = 1;
  TrainResult r = TrainDlrm(*model, data, cfg);
  bool any_non_finite = !std::isfinite(r.final_eval.loss);
  for (double loss : r.loss_history) {
    if (!std::isfinite(loss)) any_non_finite = true;
  }
  EXPECT_TRUE(any_non_finite);
}

TEST(FaultTolerance, RollbackPolicyRestoresLastSnapshot) {
  ScratchDir dir("ttrec_rollback");
  testing::NanGradInjector* injector = nullptr;
  auto model = MakeFaultedModel(5, /*fault_on_call=*/12, &injector);
  SyntheticCriteo data(TinyData());
  TrainConfig cfg;
  cfg.iterations = 20;
  cfg.batch_size = 32;
  cfg.eval_batch_size = 128;
  cfg.checkpoint_every = 5;
  cfg.checkpoint_dir = dir.path();
  cfg.fault.check_non_finite = true;
  cfg.fault.on_fault = FaultToleranceConfig::OnFault::kRollback;
  TrainResult r = TrainDlrm(*model, data, cfg);

  EXPECT_EQ(r.robustness.rollbacks, 1);
  EXPECT_EQ(r.robustness.non_finite_grad_skips, 1);
  // The transient fault fired once; after rollback the replayed steps
  // (10, 11, 12, ...) are clean, so the run finishes finite.
  EXPECT_TRUE(std::isfinite(r.final_eval.loss));
  // Rollback replayed iterations 12 -> 10, so more than 20 backward calls
  // reached the injected table.
  EXPECT_GT(injector->backward_calls(), 20);
}

TEST(FaultTolerance, LossSpikeDetectorSkipsOutliers) {
  auto model = MakeMixedModel(6);
  SyntheticCriteo data(TinyData());
  TrainConfig cfg;
  cfg.iterations = 40;
  cfg.batch_size = 32;
  cfg.eval_batches = 0;
  // A deliberately absurd threshold: after warmup, nearly every batch
  // reads as a "spike". This exercises the detector wiring end to end.
  cfg.fault.spike_factor = 1e-3;
  cfg.fault.spike_warmup = 10;
  TrainResult r = TrainDlrm(*model, data, cfg);
  EXPECT_GT(r.robustness.loss_spike_skips, 0);
  EXPECT_LE(r.robustness.loss_spike_skips, 30);  // warmup steps always apply
}

TEST(FaultTolerance, GradientClippingBoundsTheUpdate) {
  auto clipped = MakeMixedModel(9);
  auto free_run = MakeMixedModel(9);
  SyntheticCriteo data_a(TinyData());
  SyntheticCriteo data_b(TinyData());
  TrainConfig cfg;
  cfg.iterations = 15;
  cfg.batch_size = 32;
  cfg.eval_batch_size = 128;
  TrainConfig tight = cfg;
  tight.fault.grad_clip_norm = 0.05f;
  TrainResult rc = TrainDlrm(*clipped, data_a, tight);
  TrainResult rf = TrainDlrm(*free_run, data_b, cfg);
  EXPECT_GT(rc.robustness.clipped_steps, 0);
  EXPECT_EQ(rf.robustness.clipped_steps, 0);
  // Clipped at 0.05, parameters barely move from init; the free run moves
  // further. Sanity: both stay finite.
  EXPECT_TRUE(std::isfinite(rc.final_eval.loss));
  EXPECT_TRUE(std::isfinite(rf.final_eval.loss));
}

TEST(FaultTolerance, GuardsOffMatchLegacyTrainStepBitwise) {
  // The guarded step with a default guard must be numerically identical
  // to the historical TrainStep — the refactor cannot drift the seeds.
  auto a = MakeMixedModel(14);
  auto b = MakeMixedModel(14);
  SyntheticCriteo data(TinyData());
  OptimizerConfig opt = OptimizerConfig::Sgd(0.1f);
  for (int i = 0; i < 8; ++i) {
    MiniBatch batch = data.NextBatch(32);
    const double la = a->TrainStep(batch, opt);
    const StepOutcome o = b->TrainStepGuarded(batch, opt, StepGuard{});
    EXPECT_EQ(la, o.loss) << "step " << i;
    EXPECT_TRUE(o.applied);
    EXPECT_EQ(o.grad_norm, 0.0);  // guards off -> norm never computed
  }
  EXPECT_EQ(CheckpointBytes(*a), CheckpointBytes(*b));
}

TEST(FaultTolerance, IndexPolicyThrowNamesTableAndRange) {
  auto model = MakeMixedModel(21);
  SyntheticCriteo data(TinyData());
  MiniBatch batch = data.NextBatch(4);
  batch.sparse[1].indices[0] = 150;  // one past the end of table 1
  try {
    std::vector<float> logits(4);
    model->PredictLogits(batch, logits.data());
    FAIL() << "expected IndexError";
  } catch (const IndexError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("table 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("150"), std::string::npos) << msg;
  }
}

TEST(FaultTolerance, IndexPolicyClampServesAndCounts) {
  DlrmConfig cfg = TinyConfig();
  cfg.index_policy = IndexPolicy::kClampToZero;
  auto model = MakeMixedModel(21, cfg);
  auto reference = MakeMixedModel(21);  // identical weights, kThrow

  SyntheticCriteo data(TinyData());
  MiniBatch batch = data.NextBatch(4);
  MiniBatch good = batch;  // copy before poisoning
  batch.sparse[1].indices[0] = 10'000;
  batch.sparse[2].indices[1] = -3;

  std::vector<float> logits(4);
  model->PredictLogits(batch, logits.data());  // must not throw
  EXPECT_EQ(model->clamped_lookups(), 2);
  for (float v : logits) EXPECT_TRUE(std::isfinite(v));

  // In-range lookups are untouched by the policy: on a clean batch the
  // clamping model and the throwing model agree exactly.
  std::vector<float> a(4), b(4);
  model->PredictLogits(good, a.data());
  reference->PredictLogits(good, b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(model->clamped_lookups(), 2);  // clean batch added nothing
}

TEST(FaultTolerance, ClampedTrainingStepStaysFinite) {
  DlrmConfig cfg = TinyConfig();
  cfg.index_policy = IndexPolicy::kClampToZero;
  auto model = MakeMixedModel(23, cfg);
  SyntheticCriteo data(TinyData());
  MiniBatch batch = data.NextBatch(16);
  batch.sparse[0].indices[3] = 1'000'000;
  const double loss = model->TrainStep(batch, 0.1f);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_EQ(model->clamped_lookups(), 1);
  // The model remains servable after training through a bad id.
  std::vector<float> logits(16);
  model->PredictLogits(data.NextBatch(16), logits.data());
  for (float v : logits) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace ttrec
