// Jacobi SVD: reconstruction, orthogonality, ordering, truncation — across a
// parameterized shape sweep including rank-deficient inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/check.h"
#include "tensor/random.h"
#include "tensor/svd.h"

namespace ttrec {
namespace {

Tensor RandomMatrix(Rng& rng, int64_t m, int64_t n) {
  Tensor t({m, n});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return t;
}

class SvdShapes
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapes, ReconstructsInput) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 1000 + n));
  Tensor a = RandomMatrix(rng, m, n);
  SvdResult svd = Svd(a);
  Tensor rec = SvdReconstruct(svd);
  EXPECT_LT(MaxAbsDiff(a, rec), 1e-4) << m << "x" << n;
}

TEST_P(SvdShapes, SingularValuesSortedNonNegative) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 999 + n));
  SvdResult svd = Svd(RandomMatrix(rng, m, n));
  EXPECT_EQ(static_cast<int64_t>(svd.s.size()), std::min(m, n));
  for (size_t i = 0; i < svd.s.size(); ++i) {
    EXPECT_GE(svd.s[i], 0.0f);
    if (i > 0) { EXPECT_LE(svd.s[i], svd.s[i - 1]); }
  }
}

TEST_P(SvdShapes, FactorsAreOrthonormal) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 77 + n));
  SvdResult svd = Svd(RandomMatrix(rng, m, n));
  const int64_t r = static_cast<int64_t>(svd.s.size());
  // U^T U == I (columns of U orthonormal) where sigma > 0.
  for (int64_t i = 0; i < r; ++i) {
    if (svd.s[static_cast<size_t>(i)] < 1e-5f) continue;
    for (int64_t j = i; j < r; ++j) {
      if (svd.s[static_cast<size_t>(j)] < 1e-5f) continue;
      double dot = 0.0;
      for (int64_t k = 0; k < m; ++k) {
        dot += static_cast<double>(svd.u.data()[k * r + i]) *
               svd.u.data()[k * r + j];
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapes,
    ::testing::Values(std::make_pair<int64_t, int64_t>(1, 1),
                      std::make_pair<int64_t, int64_t>(4, 4),
                      std::make_pair<int64_t, int64_t>(8, 3),
                      std::make_pair<int64_t, int64_t>(3, 8),
                      std::make_pair<int64_t, int64_t>(20, 20),
                      std::make_pair<int64_t, int64_t>(64, 5),
                      std::make_pair<int64_t, int64_t>(5, 64),
                      std::make_pair<int64_t, int64_t>(50, 17)));

TEST(Svd, RankDeficientInput) {
  // Outer product: rank 1.
  const int64_t m = 12, n = 9;
  Tensor a({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      a.data()[i * n + j] =
          static_cast<float>((i + 1) * 0.5 * (j - 4) * 0.25);
    }
  }
  SvdResult svd = Svd(a);
  EXPECT_GT(svd.s[0], 0.0f);
  for (size_t i = 1; i < svd.s.size(); ++i) EXPECT_NEAR(svd.s[i], 0.0f, 1e-4f);
  EXPECT_LT(MaxAbsDiff(a, SvdReconstruct(svd)), 1e-4);
}

TEST(Svd, DiagonalMatrixRecoverySorted) {
  Tensor a({3, 3});
  a.at({0, 0}) = 1.0f;
  a.at({1, 1}) = 5.0f;
  a.at({2, 2}) = 3.0f;
  SvdResult svd = Svd(a);
  EXPECT_NEAR(svd.s[0], 5.0f, 1e-5f);
  EXPECT_NEAR(svd.s[1], 3.0f, 1e-5f);
  EXPECT_NEAR(svd.s[2], 1.0f, 1e-5f);
}

TEST(Svd, RejectsNonMatrix) {
  EXPECT_THROW(Svd(Tensor({2, 2, 2})), ShapeError);
}

TEST(TruncatedSvd, GivesBestLowRankApproximation) {
  // Build a matrix with known spectrum; truncating to rank r must leave a
  // residual equal to the dropped singular values (Eckart-Young).
  Rng rng(31337);
  const int64_t m = 20, n = 10;
  Tensor a = RandomMatrix(rng, m, n);
  SvdResult full = Svd(a);
  SvdResult trunc = TruncatedSvd(a, 3);
  ASSERT_EQ(trunc.s.size(), 3u);
  Tensor rec = SvdReconstruct(trunc);
  double err2 = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a.data()[i]) - rec.data()[i];
    err2 += d * d;
  }
  double expected2 = 0.0;
  for (size_t i = 3; i < full.s.size(); ++i) {
    expected2 += static_cast<double>(full.s[i]) * full.s[i];
  }
  EXPECT_NEAR(std::sqrt(err2), std::sqrt(expected2), 1e-3);
}

TEST(TruncatedSvd, RankClampedToMinDim) {
  Rng rng(8);
  SvdResult svd = TruncatedSvd(RandomMatrix(rng, 6, 4), 100);
  EXPECT_EQ(svd.s.size(), 4u);
  EXPECT_THROW(TruncatedSvd(RandomMatrix(rng, 4, 4), 0), ConfigError);
}

}  // namespace
}  // namespace ttrec
