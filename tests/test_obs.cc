// Observability substrate (src/obs/): concurrent counter/histogram
// exactness, registry JSON stability, trace ring overflow semantics,
// chrome trace shape, the periodic reporter, and the two contracts the
// instrumentation must never break — bitwise-identical training with
// tracing on vs off across thread counts, and robustness counters
// surfacing in the registry under injected faults.
//
// Suite names all start with "Obs" so CI's TSan shard can select them
// with a single --gtest_filter pattern.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/csr_batch.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "fault_injector.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/parallel.h"
#include "tt/tt_embedding.h"

namespace ttrec {
namespace {

class PoolGuard {
 public:
  PoolGuard() : saved_(ThreadPool::Global().num_threads()) {}
  ~PoolGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

/// Leaves the global tracer disabled and drained on scope exit so trace
/// tests never leak a capture into other tests.
class TracerGuard {
 public:
  ~TracerGuard() {
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().FlushJson();
  }
};

TEST(ObsMetrics, ConcurrentCountersAndHistogramsAreExact) {
  obs::MetricRegistry reg;
  obs::StripedCounter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h");
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int64_t i = 0; i < kPerThread; ++i) {
        c.Add(1);
        h.Record(i % 1000);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Total(), kThreads * kPerThread);
  EXPECT_EQ(h.TotalCount(), kThreads * kPerThread);
  EXPECT_GT(h.PercentileMicros(99.0), h.PercentileMicros(50.0));
}

TEST(ObsMetrics, GaugeAddAccumulatesConcurrently) {
  obs::Gauge g;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.Add(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), 4000.0);
}

TEST(ObsMetrics, RegistryJsonIsSortedAndStable) {
  obs::MetricRegistry reg;
  reg.counter("zeta").Add(3);
  reg.counter("alpha").Add(1);
  reg.gauge("mem").Set(2.5);
  reg.histogram("lat").Record(100);
  const std::string j = reg.ToJson();
  // Sorted counter keys, fixed block order, one histogram snapshot.
  EXPECT_NE(j.find("\"counters\":{\"alpha\":1,\"zeta\":3}"),
            std::string::npos)
      << j;
  EXPECT_NE(j.find("\"gauges\":{\"mem\":2.500}"), std::string::npos) << j;
  EXPECT_NE(j.find("\"lat\":{\"count\":1"), std::string::npos) << j;
  // Serialization is deterministic call-over-call.
  EXPECT_EQ(j, reg.ToJson());
  // Snapshot mirrors the same values.
  const obs::MetricsSnapshot s = reg.Snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  EXPECT_EQ(s.counters[0].first, "alpha");
  EXPECT_EQ(s.counters[1].second, 3);
  reg.Reset();
  EXPECT_EQ(reg.counter("zeta").Total(), 0);
  EXPECT_EQ(reg.histogram("lat").TotalCount(), 0);
}

TEST(ObsMetrics, NameCollisionAcrossKindsThrows) {
  obs::MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), ConfigError);
  EXPECT_THROW(reg.histogram("x"), ConfigError);
  EXPECT_EQ(reg.FindGauge("x"), nullptr);
  EXPECT_NE(reg.FindCounter("x"), nullptr);
}

TEST(ObsTrace, DisabledScopeRecordsNothing) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::Global();
  ASSERT_FALSE(tracer.enabled());
  const int64_t before = tracer.buffered();
  {
    TTREC_TRACE_SCOPE("obs.test.disabled");
  }
  EXPECT_EQ(tracer.buffered(), before);
}

#if !defined(TTREC_NO_TRACING)
TEST(ObsTrace, RingOverflowDropsOldest) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable(/*events_per_thread=*/4);
  for (int64_t i = 0; i < 10; ++i) {
    tracer.Record("obs.test.evt", /*ts_us=*/i, /*dur_us=*/1);
  }
  tracer.Disable();
  EXPECT_EQ(tracer.buffered(), 4);
  EXPECT_EQ(tracer.dropped(), 6);
  const std::string j = tracer.FlushJson();
  // The surviving window is the four NEWEST events, ts 6..9.
  for (int64_t ts : {6, 7, 8, 9}) {
    EXPECT_NE(j.find("\"ts\":" + std::to_string(ts)), std::string::npos) << j;
  }
  EXPECT_EQ(j.find("\"ts\":5,"), std::string::npos) << j;
  EXPECT_EQ(tracer.buffered(), 0);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(ObsTrace, ChromeJsonShape) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  {
    TTREC_TRACE_SCOPE("obs.test.outer");
    TTREC_TRACE_SCOPE("obs.test.inner");
  }
  tracer.Disable();
  EXPECT_EQ(tracer.buffered(), 2);
  const std::string j = tracer.FlushJson();
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ms\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"traceEvents\":["), std::string::npos) << j;
  EXPECT_NE(j.find("\"name\":\"obs.test.outer\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"name\":\"obs.test.inner\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos) << j;
}

TEST(ObsTrace, ConcurrentScopesAllSurvive) {
  TracerGuard guard;
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TTREC_TRACE_SCOPE("obs.test.mt");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  tracer.Disable();
  EXPECT_EQ(tracer.buffered(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0);
}
#endif  // !defined(TTREC_NO_TRACING)

TEST(ObsJson, WriterHandlesNestingEscapingAndNonFinite) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Kv("s", "a\"b\\c\n");
  w.Kv("i", int64_t{-7});
  w.Kv("d", 1.5, 2);
  w.Kv("nan", std::nan(""), 3);
  w.Key("arr").BeginArray().Value(1).Value(true).EndArray();
  w.Key("o").BeginObject().EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"i\":-7,\"d\":1.50,\"nan\":null,"
            "\"arr\":[1,true],\"o\":{}}");
}

TEST(ObsJson, BenchEnvelopeHeader) {
  obs::JsonWriter w;
  obs::BeginBenchEnvelope(w, "demo");
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"schema_version\":2,\"bench\":\"demo\"}");
}

TEST(ObsReporter, WritesPeriodicAndFinalLines) {
  std::ostringstream out;
  std::atomic<int> calls{0};
  {
    obs::PeriodicReporter reporter(
        [&calls] {
          calls.fetch_add(1);
          return std::string("{\"n\":1}");
        },
        std::chrono::milliseconds(5), out);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }  // destructor stops and writes the final line
  EXPECT_GE(calls.load(), 1);
  std::istringstream in(out.str());
  std::string line;
  int64_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line, "{\"n\":1}");
    ++lines;
  }
  EXPECT_EQ(lines, calls.load());
}

TEST(ObsReporter, RejectsNonPositiveInterval) {
  std::ostringstream out;
  EXPECT_THROW(obs::PeriodicReporter([] { return std::string("{}"); },
                                     std::chrono::milliseconds(0), out),
               ConfigError);
}

// ---------------------------------------------------------------------------
// Regression contracts: instrumentation must not perturb results.

TtEmbeddingConfig ObsTtConfig() {
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(/*num_rows=*/60, /*emb_dim=*/8, /*num_cores=*/3,
                          /*rank=*/4);
  cfg.block_size = 7;  // many blocks even on small batches
  return cfg;
}

CsrBatch ObsBatch() {
  CsrBatch b;
  Rng rng(42);
  b.offsets.push_back(0);
  for (int bag = 0; bag < 48; ++bag) {
    const int64_t size = static_cast<int64_t>(rng.Uniform(0.0, 5.99));
    for (int64_t i = 0; i < size; ++i) {
      b.indices.push_back(static_cast<int64_t>(rng.Uniform(0.0, 59.99)));
    }
    b.offsets.push_back(static_cast<int64_t>(b.indices.size()));
  }
  return b;
}

/// Two train steps of the TT kernels at `threads`; returns forward output
/// and final core parameters for bitwise comparison.
std::vector<std::vector<float>> RunTtSteps(int threads, bool traced) {
  ThreadPool::SetGlobalThreads(threads);
  obs::Tracer& tracer = obs::Tracer::Global();
  if (traced) {
    tracer.Enable();
  } else {
    tracer.Disable();
  }
  Rng rng(7);
  TtEmbeddingBag emb(ObsTtConfig(), TtInit::kGaussian, rng);
  const CsrBatch batch = ObsBatch();
  std::vector<float> out(static_cast<size_t>(batch.num_bags() * 8));
  std::vector<float> grad(out.size(), 0.5f);
  std::vector<std::vector<float>> captured;
  for (int step = 0; step < 2; ++step) {
    emb.Forward(batch, out.data());
    captured.push_back(out);
    emb.Backward(batch, grad.data());
    emb.ApplySgd(0.05f);
  }
  for (int c = 0; c < emb.cores().num_cores(); ++c) {
    const Tensor& t = emb.cores().core(c);
    captured.emplace_back(t.data(), t.data() + t.numel());
  }
  tracer.Disable();
  tracer.FlushJson();
  return captured;
}

TEST(ObsRegression, TracedTrainingIsBitwiseIdenticalAcrossThreads) {
  PoolGuard pool_guard;
  TracerGuard tracer_guard;
  const std::vector<std::vector<float>> ref =
      RunTtSteps(/*threads=*/1, /*traced=*/false);
  for (const int threads : {1, 2, 8}) {
    for (const bool traced : {false, true}) {
      const std::vector<std::vector<float>> got = RunTtSteps(threads, traced);
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i].size(), ref[i].size());
        EXPECT_EQ(std::memcmp(got[i].data(), ref[i].data(),
                              ref[i].size() * sizeof(float)),
                  0)
            << "threads=" << threads << " traced=" << traced
            << " capture=" << i;
      }
    }
  }
}

DlrmConfig ObsTinyConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig ObsTinyData() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "obs_tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

/// Mixed model with the dense table wrapped in a NaN-gradient injector.
std::unique_ptr<DlrmModel> ObsFaultedModel(uint64_t seed,
                                           int64_t fault_on_call) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<testing::NanGradInjector>(
      std::make_unique<DenseEmbeddingBag>(200, 8, PoolingMode::kSum,
                                          DenseEmbeddingInit::UniformScaled(),
                                          rng),
      fault_on_call));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(ObsTinyConfig(), std::move(tables), rng);
}

TEST(ObsRegression, FaultCountersSurfaceInRegistry) {
  std::unique_ptr<DlrmModel> model =
      ObsFaultedModel(/*seed=*/3, /*fault_on_call=*/4);
  SyntheticCriteo data(ObsTinyData());

  obs::MetricRegistry reg;
  TrainConfig tc;
  tc.iterations = 12;
  tc.batch_size = 16;
  tc.eval_batches = 0;
  tc.log_every = 0;
  tc.fault.check_non_finite = true;
  tc.metrics = &reg;
  const TrainResult r = TrainDlrm(*model, data, tc);

  ASSERT_GE(r.robustness.non_finite_grad_skips, 1);
  const obs::StripedCounter* skips =
      reg.FindCounter("train.non_finite_grad_skips");
  ASSERT_NE(skips, nullptr);
  EXPECT_EQ(skips->Total(), r.robustness.non_finite_grad_skips);
  const obs::StripedCounter* iters = reg.FindCounter("train.iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->Total(), tc.iterations);
  const obs::Histogram* step_us = reg.FindHistogram("train.step_us");
  ASSERT_NE(step_us, nullptr);
  EXPECT_EQ(step_us->TotalCount(), tc.iterations);
}

TEST(ObsStats, CollectStatsAggregatesAcrossTables) {
  std::unique_ptr<DlrmModel> model = ObsFaultedModel(/*seed=*/5, int64_t{1}
                                                     << 40);
  SyntheticCriteo data(ObsTinyData());
  std::vector<float> logits(16);
  for (int i = 0; i < 6; ++i) {
    model->PredictLogits(data.NextBatch(16), logits.data());
  }

  obs::MetricRegistry reg;
  for (int t = 0; t < model->num_tables(); ++t) {
    model->table(t).CollectStats(reg);
  }
  // Every table reports through the base implementation... (the injector
  // wrapper contributes the default-only stats for its dense inner op).
  const obs::StripedCounter* tables = reg.FindCounter("emb.tables");
  ASSERT_NE(tables, nullptr);
  EXPECT_EQ(tables->Total(), model->num_tables());
  const obs::Gauge* mem = reg.FindGauge("emb.memory_bytes");
  ASSERT_NE(mem, nullptr);
  EXPECT_GT(mem->Value(), 0.0);
  // ...and the cached-TT table surfaced its LFU cache counters.
  ASSERT_NE(reg.FindCounter("cache.hits"), nullptr);
  ASSERT_NE(reg.FindCounter("cache.misses"), nullptr);
  const obs::StripedCounter* lookups = reg.FindCounter("tt.lookups");
  ASSERT_NE(lookups, nullptr);
  EXPECT_GT(lookups->Total(), 0);
}

}  // namespace
}  // namespace ttrec
