// DLRM checkpointing: roundtrip prediction equality, exact training resume
// under SGD, architecture validation, cached-TT state restoration.
#include <gtest/gtest.h>

#include <sstream>

#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

DlrmConfig TinyConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig TinyData() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

/// Mixed-architecture model: dense + TT + cached TT.
std::unique_ptr<DlrmModel> MakeMixedModel(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      200, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(TinyConfig(), std::move(tables), rng);
}

TEST(Checkpoint, RoundTripPreservesPredictions) {
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(1);
  // Train a bit so state is non-trivial (warms the cache too).
  for (int i = 0; i < 10; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }

  std::stringstream ss;
  model->SaveCheckpoint(ss);

  // Different seed -> different init; load must overwrite everything.
  auto restored = MakeMixedModel(999);
  restored->LoadCheckpoint(ss);

  MiniBatch eval = data.EvalBatch(64);
  std::vector<float> a(64), b(64);
  model->PredictLogits(eval, a.data());
  restored->PredictLogits(eval, b.data());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "logit " << i;
  }
}

TEST(Checkpoint, SgdResumeIsExact) {
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(2);
  for (int i = 0; i < 8; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  auto resumed = MakeMixedModel(777);
  resumed->LoadCheckpoint(ss);

  // Continue training BOTH models on identical batches; SGD is stateless,
  // so they must stay bitwise in lockstep.
  for (int i = 0; i < 6; ++i) {
    MiniBatch batch = data.NextBatch(32);
    const double la = model->TrainStep(batch, 0.1f);
    const double lb = resumed->TrainStep(batch, 0.1f);
    EXPECT_EQ(la, lb) << "step " << i;
  }
  MiniBatch eval = data.EvalBatch(64);
  std::vector<float> a(64), b(64);
  model->PredictLogits(eval, a.data());
  resumed->PredictLogits(eval, b.data());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  auto model = MakeMixedModel(3);
  std::stringstream ss;
  model->SaveCheckpoint(ss);

  // Model with a different table type in slot 1.
  Rng rng(4);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int64_t rows : {200, 150, 120}) {
    tables.push_back(std::make_unique<DenseEmbeddingBag>(
        rows, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(),
        rng));
  }
  DlrmModel wrong(TinyConfig(), std::move(tables), rng);
  EXPECT_THROW(wrong.LoadCheckpoint(ss), ConfigError);
}

TEST(Checkpoint, RejectsCorruptedStream) {
  auto model = MakeMixedModel(5);
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  std::string payload = ss.str();
  payload[payload.size() / 2] ^= 0x40;
  std::stringstream bad(payload);
  auto victim = MakeMixedModel(5);
  EXPECT_THROW(victim->LoadCheckpoint(bad), TtRecError);

  std::stringstream not_a_checkpoint(std::string("garbage data here"));
  EXPECT_THROW(victim->LoadCheckpoint(not_a_checkpoint), TtRecError);
}

TEST(Checkpoint, FileRoundTrip) {
  auto model = MakeMixedModel(6);
  const std::string path = "/tmp/ttrec_test_ckpt.bin";
  model->SaveCheckpointToFile(path);
  auto restored = MakeMixedModel(7);
  restored->LoadCheckpointFromFile(path);
  std::remove(path.c_str());

  SyntheticCriteo data(TinyData());
  MiniBatch eval = data.EvalBatch(32);
  std::vector<float> a(32), b(32);
  model->PredictLogits(eval, a.data());
  restored->PredictLogits(eval, b.data());
  EXPECT_EQ(a, b);
  EXPECT_THROW(restored->LoadCheckpointFromFile("/nonexistent/x.bin"),
               TtRecError);
}

TEST(Checkpoint, CachedStateRestoresHitRate) {
  // The cached table's row set survives the checkpoint: the restored model
  // serves the same rows from cache immediately (no re-warm-up needed).
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(8);
  for (int i = 0; i < 10; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  auto restored = MakeMixedModel(9);
  restored->LoadCheckpoint(ss);

  auto* original =
      dynamic_cast<CachedTtEmbeddingAdapter*>(&model->table(2));
  auto* loaded =
      dynamic_cast<CachedTtEmbeddingAdapter*>(&restored->table(2));
  ASSERT_NE(original, nullptr);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(original->op().cache().CachedRows(),
            loaded->op().cache().CachedRows());
  EXPECT_EQ(original->op().iteration(), loaded->op().iteration());
  EXPECT_TRUE(loaded->op().warmed_up());
}

}  // namespace
}  // namespace ttrec
