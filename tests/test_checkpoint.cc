// DLRM checkpointing: roundtrip prediction equality, exact training resume
// under SGD, architecture validation, cached-TT state restoration, and the
// crash-safety layer (full-training-state snapshots, CRC32 sections,
// atomic writes) under injected faults.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "cache/cached_tt_embedding.h"
#include "dlrm/checkpoint.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "fault_injector.h"
#include "tensor/atomic_file.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

DlrmConfig TinyConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig TinyData() {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.table_rows = {200, 150, 120};
  cfg.teacher_scale = 4.0;
  cfg.seed = 11;
  return cfg;
}

/// Mixed-architecture model: dense + TT + cached TT.
std::unique_ptr<DlrmModel> MakeMixedModel(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      200, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(150, 8, 3, 4);
  tables.push_back(
      std::make_unique<TtEmbeddingAdapter>(tcfg, TtInit::kGaussian, rng));
  CachedTtConfig ccfg;
  ccfg.tt.shape = MakeTtShape(120, 8, 3, 4);
  ccfg.cache_capacity = 8;
  ccfg.warmup_iterations = 3;
  ccfg.refresh_interval = 1;
  tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
      ccfg, TtInit::kGaussian, rng));
  return std::make_unique<DlrmModel>(TinyConfig(), std::move(tables), rng);
}

TEST(Checkpoint, RoundTripPreservesPredictions) {
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(1);
  // Train a bit so state is non-trivial (warms the cache too).
  for (int i = 0; i < 10; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }

  std::stringstream ss;
  model->SaveCheckpoint(ss);

  // Different seed -> different init; load must overwrite everything.
  auto restored = MakeMixedModel(999);
  restored->LoadCheckpoint(ss);

  MiniBatch eval = data.EvalBatch(64);
  std::vector<float> a(64), b(64);
  model->PredictLogits(eval, a.data());
  restored->PredictLogits(eval, b.data());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "logit " << i;
  }
}

TEST(Checkpoint, SgdResumeIsExact) {
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(2);
  for (int i = 0; i < 8; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  auto resumed = MakeMixedModel(777);
  resumed->LoadCheckpoint(ss);

  // Continue training BOTH models on identical batches; SGD is stateless,
  // so they must stay bitwise in lockstep.
  for (int i = 0; i < 6; ++i) {
    MiniBatch batch = data.NextBatch(32);
    const double la = model->TrainStep(batch, 0.1f);
    const double lb = resumed->TrainStep(batch, 0.1f);
    EXPECT_EQ(la, lb) << "step " << i;
  }
  MiniBatch eval = data.EvalBatch(64);
  std::vector<float> a(64), b(64);
  model->PredictLogits(eval, a.data());
  resumed->PredictLogits(eval, b.data());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  auto model = MakeMixedModel(3);
  std::stringstream ss;
  model->SaveCheckpoint(ss);

  // Model with a different table type in slot 1.
  Rng rng(4);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int64_t rows : {200, 150, 120}) {
    tables.push_back(std::make_unique<DenseEmbeddingBag>(
        rows, 8, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(),
        rng));
  }
  DlrmModel wrong(TinyConfig(), std::move(tables), rng);
  EXPECT_THROW(wrong.LoadCheckpoint(ss), ConfigError);
}

TEST(Checkpoint, RejectsCorruptedStream) {
  auto model = MakeMixedModel(5);
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  std::string payload = ss.str();
  payload[payload.size() / 2] ^= 0x40;
  std::stringstream bad(payload);
  auto victim = MakeMixedModel(5);
  EXPECT_THROW(victim->LoadCheckpoint(bad), TtRecError);

  std::stringstream not_a_checkpoint(std::string("garbage data here"));
  EXPECT_THROW(victim->LoadCheckpoint(not_a_checkpoint), TtRecError);
}

TEST(Checkpoint, FileRoundTrip) {
  auto model = MakeMixedModel(6);
  const std::string path = "/tmp/ttrec_test_ckpt.bin";
  model->SaveCheckpointToFile(path);
  auto restored = MakeMixedModel(7);
  restored->LoadCheckpointFromFile(path);
  std::remove(path.c_str());

  SyntheticCriteo data(TinyData());
  MiniBatch eval = data.EvalBatch(32);
  std::vector<float> a(32), b(32);
  model->PredictLogits(eval, a.data());
  restored->PredictLogits(eval, b.data());
  EXPECT_EQ(a, b);
  EXPECT_THROW(restored->LoadCheckpointFromFile("/nonexistent/x.bin"),
               TtRecError);
}

TEST(Checkpoint, CachedStateRestoresHitRate) {
  // The cached table's row set survives the checkpoint: the restored model
  // serves the same rows from cache immediately (no re-warm-up needed).
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(8);
  for (int i = 0; i < 10; ++i) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
  }
  std::stringstream ss;
  model->SaveCheckpoint(ss);
  auto restored = MakeMixedModel(9);
  restored->LoadCheckpoint(ss);

  auto* original =
      dynamic_cast<CachedTtEmbeddingAdapter*>(&model->table(2));
  auto* loaded =
      dynamic_cast<CachedTtEmbeddingAdapter*>(&restored->table(2));
  ASSERT_NE(original, nullptr);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(original->op().cache().CachedRows(),
            loaded->op().cache().CachedRows());
  EXPECT_EQ(original->op().iteration(), loaded->op().iteration());
  EXPECT_TRUE(loaded->op().warmed_up());
}

// ---------------------------------------------------------------------------
// Full-training-state snapshots ("TTSN") and injected faults.

struct SnapshotFixture {
  std::string path;
  explicit SnapshotFixture(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {
    std::remove(path.c_str());
  }
  ~SnapshotFixture() { std::remove(path.c_str()); }
};

TEST(Snapshot, AdagradResumeContinuesBitwise) {
  // The snapshot carries optimizer accumulators and the data cursor, so a
  // restored Adagrad run continues bit-identically — the stronger claim
  // than the SGD-only exactness of Checkpoint.SgdResumeIsExact.
  SnapshotFixture fx("ttrec_snap_adagrad.ttsn");
  const OptimizerConfig opt = OptimizerConfig::Adagrad(0.05f);
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(31);
  for (int i = 0; i < 10; ++i) {
    (void)model->TrainStep(data.NextBatch(32), opt);
  }
  SnapshotMeta meta;
  meta.iteration = 10;
  meta.optimizer = OptimizerName(opt.kind);
  SaveTrainingSnapshotToFile(fx.path, *model, data, meta);

  auto resumed = MakeMixedModel(777);
  SyntheticCriteo data2(TinyData());  // fresh cursor, will be overwritten
  const SnapshotMeta loaded =
      LoadTrainingSnapshotFromFile(fx.path, *resumed, data2);
  EXPECT_EQ(loaded.iteration, 10);
  EXPECT_EQ(loaded.optimizer, "adagrad");

  for (int i = 0; i < 6; ++i) {
    MiniBatch ba = data.NextBatch(32);
    MiniBatch bb = data2.NextBatch(32);
    // Restored RNG cursor -> the two streams emit identical batches.
    ASSERT_EQ(ba.labels, bb.labels) << "step " << i;
    const double la = model->TrainStep(ba, opt);
    const double lb = resumed->TrainStep(bb, opt);
    EXPECT_EQ(la, lb) << "step " << i;
  }
  std::stringstream sa, sb;
  model->SaveCheckpoint(sa);
  resumed->SaveCheckpoint(sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(Snapshot, VerifyReportsSectionsWithoutLoading) {
  SnapshotFixture fx("ttrec_snap_verify.ttsn");
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(32);
  SnapshotMeta meta;
  meta.iteration = 42;
  SaveTrainingSnapshotToFile(fx.path, *model, data, meta);

  const SnapshotVerifyResult v = VerifySnapshotFile(fx.path);
  EXPECT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.version, 1u);
  EXPECT_EQ(v.iteration, 42);
  ASSERT_EQ(v.sections.size(), 4u);
  EXPECT_EQ(v.sections[0].name, "meta");
  EXPECT_EQ(v.sections[1].name, "model");
  EXPECT_EQ(v.sections[2].name, "optim");
  EXPECT_EQ(v.sections[3].name, "data");
  for (const auto& s : v.sections) EXPECT_TRUE(s.crc_ok) << s.name;
}

TEST(Snapshot, TruncationSweepNeverVerifiesOrLoads) {
  // A snapshot cut at ANY point — section boundary or mid-payload — must
  // fail verification and refuse to load. Torn writes cannot be trusted.
  SnapshotFixture fx("ttrec_snap_trunc.ttsn");
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(33);
  SaveTrainingSnapshotToFile(fx.path, *model, data, SnapshotMeta{});
  const uint64_t size = testing::FileSize(fx.path);
  ASSERT_GT(size, 16u);

  for (const double frac : {0.05, 0.3, 0.5, 0.8, 0.99}) {
    SnapshotFixture cut("ttrec_snap_trunc_cut.ttsn");
    std::filesystem::copy_file(
        fx.path, cut.path,
        std::filesystem::copy_options::overwrite_existing);
    testing::TruncateFileAt(cut.path,
                            static_cast<uint64_t>(frac * static_cast<double>(size)));
    const SnapshotVerifyResult v = VerifySnapshotFile(cut.path);
    EXPECT_FALSE(v.ok) << "fraction " << frac;
    auto victim = MakeMixedModel(33);
    SyntheticCriteo d2(TinyData());
    EXPECT_THROW(LoadTrainingSnapshotFromFile(cut.path, *victim, d2),
                 TtRecError)
        << "fraction " << frac;
  }
}

TEST(Snapshot, BitFlipIsCaughtBySectionCrc) {
  SnapshotFixture fx("ttrec_snap_flip.ttsn");
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(34);
  SaveTrainingSnapshotToFile(fx.path, *model, data, SnapshotMeta{});
  const uint64_t size = testing::FileSize(fx.path);

  // Flip one byte in the model payload (the bulk of the file) — the kind
  // of corruption the whole-file trailer alone would also catch, but the
  // section CRC pinpoints and catches without reading to EOF.
  for (const double frac : {0.25, 0.5, 0.75}) {
    SnapshotFixture bad("ttrec_snap_flip_bad.ttsn");
    std::filesystem::copy_file(
        fx.path, bad.path,
        std::filesystem::copy_options::overwrite_existing);
    testing::FlipByte(bad.path,
                      static_cast<uint64_t>(frac * static_cast<double>(size)));
    const SnapshotVerifyResult v = VerifySnapshotFile(bad.path);
    EXPECT_FALSE(v.ok) << "fraction " << frac;
    auto victim = MakeMixedModel(34);
    SyntheticCriteo d2(TinyData());
    EXPECT_THROW(LoadTrainingSnapshotFromFile(bad.path, *victim, d2),
                 TtRecError)
        << "fraction " << frac;
  }
}

TEST(Snapshot, StaleVersionIsRejectedByName) {
  SnapshotFixture fx("ttrec_snap_stale.ttsn");
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(35);
  SaveTrainingSnapshotToFile(fx.path, *model, data, SnapshotMeta{});
  // The version field is the u32 at offset 4; bump it to a future value.
  testing::FlipByte(fx.path, 4, 0x02 ^ 0x01);  // 1 -> 2
  const SnapshotVerifyResult v = VerifySnapshotFile(fx.path);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("version"), std::string::npos) << v.error;
  auto victim = MakeMixedModel(35);
  SyntheticCriteo d2(TinyData());
  EXPECT_THROW(LoadTrainingSnapshotFromFile(fx.path, *victim, d2),
               TtRecError);
}

TEST(Snapshot, AtomicWriteKeepsOldFileWhenProducerFails) {
  SnapshotFixture fx("ttrec_snap_atomic.txt");
  AtomicWriteFile(fx.path,
                  [](std::ostream& os) { os << "generation one"; });
  EXPECT_THROW(AtomicWriteFile(fx.path,
                               [](std::ostream& os) {
                                 os << "half-written garbage";
                                 throw InternalError("injected crash");
                               }),
               InternalError);
  std::ifstream is(fx.path);
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "generation one");
  // No temp droppings left next to the target.
  int neighbors = 0;
  const auto dir = std::filesystem::path(fx.path).parent_path();
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().find("ttrec_snap_atomic") == 0) {
      ++neighbors;
    }
  }
  EXPECT_EQ(neighbors, 1);
}

TEST(Snapshot, DiskFullDuringSaveThrows) {
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(36);
  testing::FailAfterStreambuf buf(64);  // "disk" fills after 64 bytes
  std::ostream os(&buf);
  EXPECT_THROW(
      SaveTrainingSnapshot(os, *model, data, SnapshotMeta{}),
      TtRecError);
}

TEST(Snapshot, ManagerRotatesAndKeepsNewest) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ttrec_mgr_rotate").string();
  std::filesystem::remove_all(dir);
  CheckpointManagerConfig mc;
  mc.directory = dir;
  mc.keep_last = 2;
  CheckpointManager manager(mc);
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(37);
  for (int64_t it : {5, 10, 15, 20}) {
    SnapshotMeta meta;
    meta.iteration = it;
    manager.Save(*model, data, meta);
  }
  const auto snaps = manager.ListSnapshots();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_NE(snaps[0].find("000000000015"), std::string::npos) << snaps[0];
  EXPECT_NE(snaps[1].find("000000000020"), std::string::npos) << snaps[1];
  std::filesystem::remove_all(dir);
}

TEST(Snapshot, RestoreLatestSkipsEveryCorruptCandidate) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ttrec_mgr_skip").string();
  std::filesystem::remove_all(dir);
  CheckpointManagerConfig mc;
  mc.directory = dir;
  mc.keep_last = 3;
  CheckpointManager manager(mc);
  SyntheticCriteo data(TinyData());
  auto model = MakeMixedModel(38);
  for (int64_t it : {5, 10, 15}) {
    (void)model->TrainStep(data.NextBatch(32), 0.1f);
    SnapshotMeta meta;
    meta.iteration = it;
    manager.Save(*model, data, meta);
  }
  auto snaps = manager.ListSnapshots();
  ASSERT_EQ(snaps.size(), 3u);
  // Newest torn, middle bit-flipped: recovery lands on the oldest.
  testing::TruncateFileAt(snaps[2], testing::FileSize(snaps[2]) - 5);
  testing::FlipByte(snaps[1], testing::FileSize(snaps[1]) / 2);

  auto recovered = MakeMixedModel(999);
  SyntheticCriteo d2(TinyData());
  SnapshotMeta meta;
  ASSERT_TRUE(manager.RestoreLatest(*recovered, d2, &meta));
  EXPECT_EQ(meta.iteration, 5);
  EXPECT_EQ(manager.skipped().size(), 2u);

  // With every snapshot corrupt, recovery reports failure, not garbage.
  testing::FlipByte(snaps[0], testing::FileSize(snaps[0]) / 3);
  auto untouched = MakeMixedModel(999);
  SyntheticCriteo d3(TinyData());
  EXPECT_FALSE(manager.RestoreLatest(*untouched, d3));
  EXPECT_EQ(manager.skipped().size(), 3u);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ttrec
