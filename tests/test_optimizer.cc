// Adagrad support across the stack: exact update rules on TT cores / dense
// tables / MLP layers / cached rows, optimizer plumbing through DlrmModel
// and the trainer, and the unsupported-operator error path.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/lowrank_embedding.h"
#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/optimizer.h"
#include "dlrm/trainer.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

TEST(OptimizerConfig, Factories) {
  const OptimizerConfig sgd = OptimizerConfig::Sgd(0.5f);
  EXPECT_EQ(sgd.kind, OptimizerConfig::Kind::kSgd);
  EXPECT_FLOAT_EQ(sgd.lr, 0.5f);
  const OptimizerConfig ada = OptimizerConfig::Adagrad(0.1f, 1e-6f);
  EXPECT_EQ(ada.kind, OptimizerConfig::Kind::kAdagrad);
  EXPECT_FLOAT_EQ(ada.eps, 1e-6f);
}

TEST(OptimizerConfig, NameRoundTrip) {
  EXPECT_EQ(OptimizerKindFromName("sgd"), OptimizerConfig::Kind::kSgd);
  EXPECT_EQ(OptimizerKindFromName("adagrad"),
            OptimizerConfig::Kind::kAdagrad);
  EXPECT_STREQ(OptimizerName(OptimizerConfig::Kind::kAdagrad), "adagrad");
  EXPECT_THROW(OptimizerKindFromName("adam"), ConfigError);
}

TEST(TtAdagrad, FirstStepMatchesClosedForm) {
  Rng rng(1);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(60, 8, 3, 2);
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);

  CsrBatch batch = CsrBatch::FromIndices({7});
  std::vector<float> out(8), g(8, 1.0f);
  emb.Forward(batch, out.data());
  emb.Backward(batch, g.data());

  std::vector<Tensor> before, grads;
  for (int k = 0; k < 3; ++k) {
    before.push_back(emb.cores().core(k));
    grads.push_back(emb.core_grad(k));
  }
  const float lr = 0.1f, eps = 1e-8f;
  emb.ApplyAdagrad(lr, eps);
  // First step: state == g^2, so w' = w - lr * g / (|g| + eps) == w - lr *
  // sign(g), elementwise (where g != 0).
  for (int k = 0; k < 3; ++k) {
    const Tensor& after = emb.cores().core(k);
    for (int64_t i = 0; i < after.numel(); ++i) {
      const float gv = grads[static_cast<size_t>(k)][i];
      const float expected =
          before[static_cast<size_t>(k)][i] -
          (gv == 0.0f ? 0.0f
                      : lr * gv / (std::abs(gv) + eps));
      EXPECT_NEAR(after[i], expected, 1e-6f) << "core " << k << " i " << i;
    }
    EXPECT_EQ(emb.core_grad(k).Norm(), 0.0);  // grads cleared
  }
}

TEST(TtAdagrad, AccumulatorShrinksLaterSteps) {
  Rng rng(2);
  TtEmbeddingConfig cfg;
  cfg.shape = MakeTtShape(60, 8, 3, 2);
  TtEmbeddingBag emb(cfg, TtInit::kGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({3});
  std::vector<float> out(8), g(8, 1.0f);

  auto step_delta = [&]() {
    emb.Forward(batch, out.data());
    emb.Backward(batch, g.data());
    const Tensor before = emb.cores().core(1);
    emb.ApplyAdagrad(0.1f);
    return MaxAbsDiff(before, emb.cores().core(1));
  };
  const double d1 = step_delta();
  // Drive several steps with consistent gradients; step sizes must shrink.
  double dn = d1;
  for (int i = 0; i < 5; ++i) dn = step_delta();
  EXPECT_LT(dn, d1);
  EXPECT_THROW(emb.ApplyAdagrad(0.1f, 0.0f), ConfigError);
}

TEST(DenseRowwiseAdagrad, MatchesManualComputation) {
  Tensor table({4, 2});
  table.Fill(1.0f);
  DenseEmbeddingBag emb(std::move(table), PoolingMode::kSum);
  CsrBatch batch = CsrBatch::FromIndices({2});
  std::vector<float> g = {3.0f, 4.0f};
  emb.Backward(batch, g.data());
  const float lr = 0.1f, eps = 1e-8f;
  emb.ApplyUpdate(OptimizerConfig::Adagrad(lr, eps));
  // Row accumulator = mean(g^2) = (9 + 16) / 2 = 12.5.
  const float scale = lr / (std::sqrt(12.5f) + eps);
  EXPECT_NEAR(emb.table().at({2, 0}), 1.0f - scale * 3.0f, 1e-6f);
  EXPECT_NEAR(emb.table().at({2, 1}), 1.0f - scale * 4.0f, 1e-6f);
  // Untouched rows unchanged.
  EXPECT_FLOAT_EQ(emb.table().at({0, 0}), 1.0f);
  // Second step on the same row uses the accumulated state (smaller step).
  emb.Backward(batch, g.data());
  const float before = emb.table().at({2, 0});
  emb.ApplyUpdate(OptimizerConfig::Adagrad(lr, eps));
  const float second_delta = before - emb.table().at({2, 0});
  EXPECT_LT(second_delta, scale * 3.0f);
  EXPECT_GT(second_delta, 0.0f);
}

TEST(MlpAdagrad, ConvergesOnRegression) {
  Rng rng(3);
  Mlp mlp({4, 16, 2}, /*final_relu=*/false, rng);
  std::vector<float> x(32), target(16);
  FillUniform(rng, x, -1, 1);
  FillUniform(rng, target, -1, 1);
  double first = -1, last = -1;
  for (int step = 0; step < 300; ++step) {
    std::vector<float> y(16), dy(16);
    mlp.Forward(x.data(), 8, y.data());
    double loss = 0;
    for (size_t i = 0; i < y.size(); ++i) {
      const float d = y[i] - target[i];
      loss += 0.5 * d * d;
      dy[i] = d;
    }
    if (step == 0) first = loss;
    last = loss;
    mlp.Backward(dy.data(), 8, nullptr);
    mlp.ApplyAdagrad(0.1f);
  }
  EXPECT_LT(last, 0.05 * first);
}

TEST(CacheAdagrad, UpdatesCachedRowsAndResetsOnPopulate) {
  LfuRowCache cache(2, 2);
  std::vector<float> vals = {1, 1, 2, 2};
  cache.Populate(std::vector<int64_t>{5, 6}, vals.data());
  float* g = cache.GradFor(5);
  g[0] = 2.0f;
  cache.ApplyAdagrad(0.1f);
  EXPECT_NEAR(cache.Find(5)[0], 1.0f - 0.1f, 1e-5f);  // sign step
  // Second identical gradient: smaller step.
  cache.GradFor(5)[0] = 2.0f;
  const float before = cache.Find(5)[0];
  cache.ApplyAdagrad(0.1f);
  EXPECT_LT(before - cache.Find(5)[0], 0.1f);
  // Repopulate clears the accumulator: a fresh row steps at full size again.
  cache.Populate(std::vector<int64_t>{7}, vals.data());
  cache.GradFor(7)[0] = 2.0f;
  const float fresh_before = cache.Find(7)[0];
  cache.ApplyAdagrad(0.1f);
  EXPECT_NEAR(fresh_before - cache.Find(7)[0], 0.1f, 1e-5f);
}

TEST(EmbeddingOpAdapters, RouteAdagrad) {
  Rng rng(4);
  TtEmbeddingConfig tcfg;
  tcfg.shape = MakeTtShape(60, 8, 3, 2);
  TtEmbeddingAdapter tt(tcfg, TtInit::kGaussian, rng);
  CsrBatch batch = CsrBatch::FromIndices({1});
  std::vector<float> out(8), g(8, 1.0f);
  tt.Forward(batch, out.data());
  tt.Backward(batch, g.data());
  const Tensor before = tt.tt().cores().core(0);
  tt.ApplyUpdate(OptimizerConfig::Adagrad(0.1f));
  EXPECT_GT(MaxAbsDiff(before, tt.tt().cores().core(0)), 1e-4);
}

TEST(EmbeddingOpAdapters, UnsupportedOperatorThrows) {
  Rng rng(5);
  LowRankEmbeddingBag lowrank(16, 4, 2, PoolingMode::kSum, rng);
  EXPECT_NO_THROW(lowrank.ApplyUpdate(OptimizerConfig::Sgd(0.1f)));
  EXPECT_THROW(lowrank.ApplyUpdate(OptimizerConfig::Adagrad(0.1f)),
               ConfigError);
}

TEST(Trainer, AdagradTrainsEndToEnd) {
  SyntheticCriteoConfig dc;
  dc.spec.name = "tiny";
  dc.spec.table_rows.assign(4, 200);
  dc.teacher_scale = 4.0;
  dc.seed = 7;
  SyntheticCriteo data(dc);

  DlrmConfig mc;
  mc.emb_dim = 8;
  mc.bottom_hidden = {16};
  mc.top_hidden = {16};
  Rng rng(6);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int64_t rows : dc.spec.table_rows) {
    TtEmbeddingConfig tcfg;
    tcfg.shape = MakeTtShape(rows, 8, 3, 4);
    tables.push_back(std::make_unique<TtEmbeddingAdapter>(
        tcfg, TtInit::kSampledGaussian, rng));
  }
  DlrmModel model(mc, std::move(tables), rng);

  TrainConfig tc;
  tc.iterations = 250;
  tc.batch_size = 64;
  tc.lr = 0.05f;
  tc.optimizer = OptimizerConfig::Kind::kAdagrad;
  tc.eval_batches = 2;
  tc.eval_batch_size = 512;
  const TrainResult r = TrainDlrm(model, data, tc);
  EXPECT_GT(r.final_eval.accuracy, 0.60);
  EXPECT_GT(r.final_eval.auc, 0.62);
  ASSERT_GE(r.loss_history.size(), 2u);
  EXPECT_LT(r.loss_history.back(), r.loss_history.front());
}

}  // namespace
}  // namespace ttrec
