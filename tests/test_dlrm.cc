// End-to-end DLRM tests: dense embedding bag correctness, model wiring,
// training actually learns the planted teacher, TT-Rec and cached TT-Rec
// drop-in equivalence of interfaces, determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "tensor/check.h"

namespace ttrec {
namespace {

TEST(DenseEmbeddingBag, ForwardGatherAndPool) {
  Tensor table({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  DenseEmbeddingBag emb(std::move(table), PoolingMode::kSum);
  CsrBatch batch;
  batch.indices = {0, 2, 3};
  batch.offsets = {0, 2, 3};
  std::vector<float> out(4);
  emb.Forward(batch, out.data());
  EXPECT_FLOAT_EQ(out[0], 6.0f);   // rows 0 + 2
  EXPECT_FLOAT_EQ(out[1], 8.0f);
  EXPECT_FLOAT_EQ(out[2], 7.0f);   // row 3
  EXPECT_FLOAT_EQ(out[3], 8.0f);
}

TEST(DenseEmbeddingBag, MeanPoolingAndWeights) {
  Tensor table({3, 1}, {1, 2, 4});
  DenseEmbeddingBag emb(std::move(table), PoolingMode::kMean);
  CsrBatch batch;
  batch.indices = {0, 1, 2};
  batch.offsets = {0, 3};
  batch.weights = {1.0f, 1.0f, 4.0f};
  std::vector<float> out(1);
  emb.Forward(batch, out.data());
  EXPECT_FLOAT_EQ(out[0], (1.0f + 2.0f + 16.0f) / 3.0f);
}

TEST(DenseEmbeddingBag, BackwardAccumulatesSparseAndSgdApplies) {
  Tensor table({5, 2});
  DenseEmbeddingBag emb(std::move(table), PoolingMode::kSum);
  CsrBatch batch;
  batch.indices = {1, 1, 4};
  batch.offsets = {0, 2, 3};
  std::vector<float> g = {1.0f, 2.0f, 3.0f, 4.0f};
  emb.Backward(batch, g.data());
  // Only rows 1 and 4 touched; row 1 accumulated twice.
  EXPECT_EQ(emb.sparse_grads().size(), 2u);
  EXPECT_FLOAT_EQ(emb.sparse_grads().at(1)[0], 2.0f);
  EXPECT_FLOAT_EQ(emb.sparse_grads().at(4)[1], 4.0f);
  emb.ApplySgd(1.0f);
  EXPECT_FLOAT_EQ(emb.table().at({1, 0}), -2.0f);
  EXPECT_FLOAT_EQ(emb.table().at({4, 1}), -4.0f);
  EXPECT_FLOAT_EQ(emb.table().at({0, 0}), 0.0f);  // untouched
  EXPECT_TRUE(emb.sparse_grads().empty());
}

TEST(DenseEmbeddingBag, InitDistributions) {
  Rng rng(3);
  DenseEmbeddingBag uni(10000, 4, PoolingMode::kSum,
                        DenseEmbeddingInit::UniformScaled(), rng);
  const double bound = 1.0 / std::sqrt(10000.0);
  for (int64_t i = 0; i < uni.table().numel(); ++i) {
    EXPECT_LE(std::abs(uni.table()[i]), bound);
  }
  DenseEmbeddingBag gauss(10000, 4, PoolingMode::kSum,
                          DenseEmbeddingInit::MatchedGaussian(10000), rng);
  double var = 0.0;
  for (int64_t i = 0; i < gauss.table().numel(); ++i) {
    var += static_cast<double>(gauss.table()[i]) * gauss.table()[i];
  }
  var /= static_cast<double>(gauss.table().numel());
  EXPECT_NEAR(var / (1.0 / (3.0 * 10000.0)), 1.0, 0.15);
}

// ---------------------------------------------------------------------------
// Full model
// ---------------------------------------------------------------------------

DlrmConfig TinyDlrmConfig() {
  DlrmConfig cfg;
  cfg.emb_dim = 8;
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  return cfg;
}

SyntheticCriteoConfig TinyDataConfig(int num_tables = 4) {
  SyntheticCriteoConfig cfg;
  cfg.spec.name = "tiny";
  cfg.spec.num_dense = 13;
  cfg.spec.table_rows.assign(static_cast<size_t>(num_tables), 200);
  cfg.zipf_exponent = 1.05;
  cfg.teacher_scale = 4.0;
  cfg.seed = 7;
  return cfg;
}

std::vector<std::unique_ptr<EmbeddingOp>> DenseTables(
    const DatasetSpec& spec, int64_t emb_dim, Rng& rng) {
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  for (int64_t rows : spec.table_rows) {
    tables.push_back(std::make_unique<DenseEmbeddingBag>(
        rows, emb_dim, PoolingMode::kSum,
        DenseEmbeddingInit::UniformScaled(), rng));
  }
  return tables;
}

TEST(DlrmModel, ForwardShapesAndDeterminism) {
  Rng rng(11);
  SyntheticCriteo data(TinyDataConfig());
  DlrmModel model(TinyDlrmConfig(),
                  DenseTables(data.config().spec, 8, rng), rng);
  MiniBatch batch = data.EvalBatch(16);
  std::vector<float> l1(16), l2(16);
  model.PredictLogits(batch, l1.data());
  model.PredictLogits(batch, l2.data());
  EXPECT_EQ(l1, l2);
}

TEST(DlrmModel, TrainingLearnsPlantedTeacher) {
  Rng rng(13);
  SyntheticCriteo data(TinyDataConfig());
  DlrmModel model(TinyDlrmConfig(),
                  DenseTables(data.config().spec, 8, rng), rng);
  TrainConfig tc;
  tc.iterations = 300;
  tc.batch_size = 64;
  tc.lr = 0.1f;
  tc.eval_batches = 2;
  tc.eval_batch_size = 512;
  const TrainResult result = TrainDlrm(model, data, tc);
  // The planted teacher is learnable: accuracy well above chance and AUC
  // clearly above 0.5. (Labels are stochastic, so ceilings are < 1.)
  EXPECT_GT(result.final_eval.accuracy, 0.62);
  EXPECT_GT(result.final_eval.auc, 0.65);
  // Loss decreased from the start.
  ASSERT_GE(result.loss_history.size(), 2u);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(DlrmModel, TtRecTrainsComparablyToBaseline) {
  // The headline accuracy claim at small scale: TT-compressed tables reach
  // accuracy close to the dense baseline on the same data.
  SyntheticCriteoConfig dc = TinyDataConfig();
  TrainConfig tc;
  tc.iterations = 250;
  tc.batch_size = 64;
  tc.lr = 0.1f;
  tc.eval_batches = 2;
  tc.eval_batch_size = 512;

  Rng rng_a(21);
  SyntheticCriteo data_a(dc);
  DlrmModel baseline(TinyDlrmConfig(), DenseTables(dc.spec, 8, rng_a), rng_a);
  const TrainResult rb = TrainDlrm(baseline, data_a, tc);

  Rng rng_b(21);
  SyntheticCriteo data_b(dc);
  std::vector<std::unique_ptr<EmbeddingOp>> tt_tables;
  for (int64_t rows : dc.spec.table_rows) {
    TtEmbeddingConfig tcfg;
    tcfg.shape = MakeTtShape(rows, 8, 3, 8);
    tt_tables.push_back(std::make_unique<TtEmbeddingAdapter>(
        tcfg, TtInit::kSampledGaussian, rng_b));
  }
  DlrmModel ttrec(TinyDlrmConfig(), std::move(tt_tables), rng_b);
  const TrainResult rt = TrainDlrm(ttrec, data_b, tc);

  EXPECT_GT(rt.final_eval.accuracy, rb.final_eval.accuracy - 0.05);
  // And it is actually smaller.
  EXPECT_LT(ttrec.EmbeddingMemoryBytes(), baseline.EmbeddingMemoryBytes());
}

TEST(DlrmModel, CachedTtRecTrainsAndHitsCache) {
  SyntheticCriteoConfig dc = TinyDataConfig();
  dc.zipf_exponent = 1.3;
  Rng rng(31);
  SyntheticCriteo data(dc);
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  std::vector<CachedTtEmbeddingAdapter*> raw;
  for (int64_t rows : dc.spec.table_rows) {
    CachedTtConfig ccfg;
    ccfg.tt.shape = MakeTtShape(rows, 8, 3, 4);
    ccfg.cache_capacity = 16;
    ccfg.warmup_iterations = 20;
    ccfg.refresh_interval = 10;
    auto t = std::make_unique<CachedTtEmbeddingAdapter>(
        ccfg, TtInit::kSampledGaussian, rng);
    raw.push_back(t.get());
    tables.push_back(std::move(t));
  }
  DlrmModel model(TinyDlrmConfig(), std::move(tables), rng);
  TrainConfig tc;
  tc.iterations = 120;
  tc.batch_size = 64;
  tc.lr = 0.1f;
  tc.eval_batches = 1;
  tc.eval_batch_size = 256;
  const TrainResult r = TrainDlrm(model, data, tc);
  EXPECT_GT(r.final_eval.accuracy, 0.55);
  for (auto* t : raw) {
    EXPECT_TRUE(t->op().warmed_up());
    EXPECT_GT(t->op().HitRate(), 0.05) << "Zipf-hot rows should hit";
  }
}

TEST(DlrmModel, Validation) {
  Rng rng(41);
  SyntheticCriteo data(TinyDataConfig());
  // emb_dim mismatch between table and model.
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      100, 4, PoolingMode::kSum, DenseEmbeddingInit::UniformScaled(), rng));
  EXPECT_THROW(DlrmModel(TinyDlrmConfig(), std::move(tables), rng),
               ConfigError);
  // Batch with wrong table count.
  DlrmModel model(TinyDlrmConfig(),
                  DenseTables(TinyDataConfig().spec, 8, rng), rng);
  MiniBatch bad = data.EvalBatch(4);
  bad.sparse.pop_back();
  std::vector<float> logits(4);
  EXPECT_THROW(model.PredictLogits(bad, logits.data()), ShapeError);
}

TEST(MakeBaselineDlrm, BuildsAllTables) {
  Rng rng(51);
  DlrmConfig cfg = TinyDlrmConfig();
  const DatasetSpec spec = KaggleSpec().Scaled(100000);
  auto model = MakeBaselineDlrm(cfg, spec, rng);
  EXPECT_EQ(model->num_tables(), 26);
  EXPECT_EQ(model->EmbeddingMemoryBytes(),
            spec.TotalEmbeddingParams(cfg.emb_dim) * 4);
}

TEST(Trainer, RecordsTimeAndHistory) {
  Rng rng(61);
  SyntheticCriteo data(TinyDataConfig(2));
  DlrmModel model(TinyDlrmConfig(),
                  DenseTables(data.config().spec, 8, rng), rng);
  TrainConfig tc;
  tc.iterations = 20;
  tc.batch_size = 16;
  tc.log_every = 5;
  tc.eval_batches = 1;
  tc.eval_batch_size = 64;
  const TrainResult r = TrainDlrm(model, data, tc);
  EXPECT_EQ(r.iterations, 20);
  EXPECT_EQ(r.loss_history.size(), 4u);
  EXPECT_GT(r.train_seconds, 0.0);
  EXPECT_GT(r.MsPerIteration(), 0.0);
}

}  // namespace
}  // namespace ttrec
