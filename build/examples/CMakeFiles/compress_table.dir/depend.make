# Empty dependencies file for compress_table.
# This may be replaced when dependencies are built.
