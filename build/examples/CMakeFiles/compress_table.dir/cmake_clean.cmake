file(REMOVE_RECURSE
  "CMakeFiles/compress_table.dir/compress_table.cpp.o"
  "CMakeFiles/compress_table.dir/compress_table.cpp.o.d"
  "compress_table"
  "compress_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
