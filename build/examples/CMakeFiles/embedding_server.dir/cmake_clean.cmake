file(REMOVE_RECURSE
  "CMakeFiles/embedding_server.dir/embedding_server.cpp.o"
  "CMakeFiles/embedding_server.dir/embedding_server.cpp.o.d"
  "embedding_server"
  "embedding_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
