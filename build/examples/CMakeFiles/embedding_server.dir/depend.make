# Empty dependencies file for embedding_server.
# This may be replaced when dependencies are built.
