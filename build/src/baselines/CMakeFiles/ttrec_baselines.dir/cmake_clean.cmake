file(REMOVE_RECURSE
  "CMakeFiles/ttrec_baselines.dir/hashed_embedding.cc.o"
  "CMakeFiles/ttrec_baselines.dir/hashed_embedding.cc.o.d"
  "CMakeFiles/ttrec_baselines.dir/lowrank_embedding.cc.o"
  "CMakeFiles/ttrec_baselines.dir/lowrank_embedding.cc.o.d"
  "CMakeFiles/ttrec_baselines.dir/quantized_embedding.cc.o"
  "CMakeFiles/ttrec_baselines.dir/quantized_embedding.cc.o.d"
  "CMakeFiles/ttrec_baselines.dir/t3nsor_embedding.cc.o"
  "CMakeFiles/ttrec_baselines.dir/t3nsor_embedding.cc.o.d"
  "libttrec_baselines.a"
  "libttrec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
