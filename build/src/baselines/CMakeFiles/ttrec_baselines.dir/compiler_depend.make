# Empty compiler generated dependencies file for ttrec_baselines.
# This may be replaced when dependencies are built.
