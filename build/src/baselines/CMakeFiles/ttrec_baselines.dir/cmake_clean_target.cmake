file(REMOVE_RECURSE
  "libttrec_baselines.a"
)
