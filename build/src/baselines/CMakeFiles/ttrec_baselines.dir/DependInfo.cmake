
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hashed_embedding.cc" "src/baselines/CMakeFiles/ttrec_baselines.dir/hashed_embedding.cc.o" "gcc" "src/baselines/CMakeFiles/ttrec_baselines.dir/hashed_embedding.cc.o.d"
  "/root/repo/src/baselines/lowrank_embedding.cc" "src/baselines/CMakeFiles/ttrec_baselines.dir/lowrank_embedding.cc.o" "gcc" "src/baselines/CMakeFiles/ttrec_baselines.dir/lowrank_embedding.cc.o.d"
  "/root/repo/src/baselines/quantized_embedding.cc" "src/baselines/CMakeFiles/ttrec_baselines.dir/quantized_embedding.cc.o" "gcc" "src/baselines/CMakeFiles/ttrec_baselines.dir/quantized_embedding.cc.o.d"
  "/root/repo/src/baselines/t3nsor_embedding.cc" "src/baselines/CMakeFiles/ttrec_baselines.dir/t3nsor_embedding.cc.o" "gcc" "src/baselines/CMakeFiles/ttrec_baselines.dir/t3nsor_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dlrm/CMakeFiles/ttrec_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ttrec_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ttrec_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
