
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tt/tt_cores.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_cores.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_cores.cc.o.d"
  "/root/repo/src/tt/tt_decompose.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_decompose.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_decompose.cc.o.d"
  "/root/repo/src/tt/tt_embedding.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_embedding.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_embedding.cc.o.d"
  "/root/repo/src/tt/tt_init.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_init.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_init.cc.o.d"
  "/root/repo/src/tt/tt_io.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_io.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_io.cc.o.d"
  "/root/repo/src/tt/tt_shapes.cc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_shapes.cc.o" "gcc" "src/tt/CMakeFiles/ttrec_tt.dir/tt_shapes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
