file(REMOVE_RECURSE
  "libttrec_tt.a"
)
