# Empty compiler generated dependencies file for ttrec_tt.
# This may be replaced when dependencies are built.
