file(REMOVE_RECURSE
  "CMakeFiles/ttrec_tt.dir/tt_cores.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_cores.cc.o.d"
  "CMakeFiles/ttrec_tt.dir/tt_decompose.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_decompose.cc.o.d"
  "CMakeFiles/ttrec_tt.dir/tt_embedding.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_embedding.cc.o.d"
  "CMakeFiles/ttrec_tt.dir/tt_init.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_init.cc.o.d"
  "CMakeFiles/ttrec_tt.dir/tt_io.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_io.cc.o.d"
  "CMakeFiles/ttrec_tt.dir/tt_shapes.cc.o"
  "CMakeFiles/ttrec_tt.dir/tt_shapes.cc.o.d"
  "libttrec_tt.a"
  "libttrec_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
