file(REMOVE_RECURSE
  "CMakeFiles/ttrec_data.dir/criteo_synth.cc.o"
  "CMakeFiles/ttrec_data.dir/criteo_synth.cc.o.d"
  "CMakeFiles/ttrec_data.dir/table_specs.cc.o"
  "CMakeFiles/ttrec_data.dir/table_specs.cc.o.d"
  "CMakeFiles/ttrec_data.dir/trace.cc.o"
  "CMakeFiles/ttrec_data.dir/trace.cc.o.d"
  "libttrec_data.a"
  "libttrec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
