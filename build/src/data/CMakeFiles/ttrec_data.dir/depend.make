# Empty dependencies file for ttrec_data.
# This may be replaced when dependencies are built.
