
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/criteo_synth.cc" "src/data/CMakeFiles/ttrec_data.dir/criteo_synth.cc.o" "gcc" "src/data/CMakeFiles/ttrec_data.dir/criteo_synth.cc.o.d"
  "/root/repo/src/data/table_specs.cc" "src/data/CMakeFiles/ttrec_data.dir/table_specs.cc.o" "gcc" "src/data/CMakeFiles/ttrec_data.dir/table_specs.cc.o.d"
  "/root/repo/src/data/trace.cc" "src/data/CMakeFiles/ttrec_data.dir/trace.cc.o" "gcc" "src/data/CMakeFiles/ttrec_data.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
