file(REMOVE_RECURSE
  "libttrec_data.a"
)
