
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cached_tt_embedding.cc" "src/cache/CMakeFiles/ttrec_cache.dir/cached_tt_embedding.cc.o" "gcc" "src/cache/CMakeFiles/ttrec_cache.dir/cached_tt_embedding.cc.o.d"
  "/root/repo/src/cache/freq_tracker.cc" "src/cache/CMakeFiles/ttrec_cache.dir/freq_tracker.cc.o" "gcc" "src/cache/CMakeFiles/ttrec_cache.dir/freq_tracker.cc.o.d"
  "/root/repo/src/cache/lfu_cache.cc" "src/cache/CMakeFiles/ttrec_cache.dir/lfu_cache.cc.o" "gcc" "src/cache/CMakeFiles/ttrec_cache.dir/lfu_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
