file(REMOVE_RECURSE
  "CMakeFiles/ttrec_cache.dir/cached_tt_embedding.cc.o"
  "CMakeFiles/ttrec_cache.dir/cached_tt_embedding.cc.o.d"
  "CMakeFiles/ttrec_cache.dir/freq_tracker.cc.o"
  "CMakeFiles/ttrec_cache.dir/freq_tracker.cc.o.d"
  "CMakeFiles/ttrec_cache.dir/lfu_cache.cc.o"
  "CMakeFiles/ttrec_cache.dir/lfu_cache.cc.o.d"
  "libttrec_cache.a"
  "libttrec_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
