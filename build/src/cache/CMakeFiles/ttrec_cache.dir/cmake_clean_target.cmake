file(REMOVE_RECURSE
  "libttrec_cache.a"
)
