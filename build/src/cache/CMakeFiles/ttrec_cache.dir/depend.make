# Empty dependencies file for ttrec_cache.
# This may be replaced when dependencies are built.
