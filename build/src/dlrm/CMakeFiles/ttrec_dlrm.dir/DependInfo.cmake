
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dlrm/capacity_planner.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/capacity_planner.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/capacity_planner.cc.o.d"
  "/root/repo/src/dlrm/embedding_bag.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/embedding_bag.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/embedding_bag.cc.o.d"
  "/root/repo/src/dlrm/interaction.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/interaction.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/interaction.cc.o.d"
  "/root/repo/src/dlrm/loss.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/loss.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/loss.cc.o.d"
  "/root/repo/src/dlrm/mlp.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/mlp.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/mlp.cc.o.d"
  "/root/repo/src/dlrm/model.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/model.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/model.cc.o.d"
  "/root/repo/src/dlrm/trainer.cc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/trainer.cc.o" "gcc" "src/dlrm/CMakeFiles/ttrec_dlrm.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/ttrec_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ttrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
