file(REMOVE_RECURSE
  "libttrec_dlrm.a"
)
