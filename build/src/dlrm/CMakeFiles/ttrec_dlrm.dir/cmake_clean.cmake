file(REMOVE_RECURSE
  "CMakeFiles/ttrec_dlrm.dir/capacity_planner.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/capacity_planner.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/embedding_bag.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/embedding_bag.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/interaction.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/interaction.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/loss.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/loss.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/mlp.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/mlp.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/model.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/model.cc.o.d"
  "CMakeFiles/ttrec_dlrm.dir/trainer.cc.o"
  "CMakeFiles/ttrec_dlrm.dir/trainer.cc.o.d"
  "libttrec_dlrm.a"
  "libttrec_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
