# Empty compiler generated dependencies file for ttrec_dlrm.
# This may be replaced when dependencies are built.
