# Empty compiler generated dependencies file for ttrec_tensor.
# This may be replaced when dependencies are built.
