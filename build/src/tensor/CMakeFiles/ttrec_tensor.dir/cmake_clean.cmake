file(REMOVE_RECURSE
  "CMakeFiles/ttrec_tensor.dir/batched_gemm.cc.o"
  "CMakeFiles/ttrec_tensor.dir/batched_gemm.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/gemm.cc.o"
  "CMakeFiles/ttrec_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/parallel.cc.o"
  "CMakeFiles/ttrec_tensor.dir/parallel.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/random.cc.o"
  "CMakeFiles/ttrec_tensor.dir/random.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/serialize.cc.o"
  "CMakeFiles/ttrec_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/stats.cc.o"
  "CMakeFiles/ttrec_tensor.dir/stats.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/svd.cc.o"
  "CMakeFiles/ttrec_tensor.dir/svd.cc.o.d"
  "CMakeFiles/ttrec_tensor.dir/tensor.cc.o"
  "CMakeFiles/ttrec_tensor.dir/tensor.cc.o.d"
  "libttrec_tensor.a"
  "libttrec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
