file(REMOVE_RECURSE
  "libttrec_tensor.a"
)
