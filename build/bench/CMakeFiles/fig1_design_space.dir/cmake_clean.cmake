file(REMOVE_RECURSE
  "CMakeFiles/fig1_design_space.dir/fig1_design_space.cc.o"
  "CMakeFiles/fig1_design_space.dir/fig1_design_space.cc.o.d"
  "CMakeFiles/fig1_design_space.dir/harness.cc.o"
  "CMakeFiles/fig1_design_space.dir/harness.cc.o.d"
  "fig1_design_space"
  "fig1_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
