# Empty compiler generated dependencies file for fig1_design_space.
# This may be replaced when dependencies are built.
