
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_accuracy.cc" "bench/CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cc.o" "gcc" "bench/CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cc.o.d"
  "/root/repo/bench/harness.cc" "bench/CMakeFiles/fig6_accuracy.dir/harness.cc.o" "gcc" "bench/CMakeFiles/fig6_accuracy.dir/harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/ttrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/ttrec_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ttrec_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ttrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
