file(REMOVE_RECURSE
  "CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cc.o"
  "CMakeFiles/fig6_accuracy.dir/fig6_accuracy.cc.o.d"
  "CMakeFiles/fig6_accuracy.dir/harness.cc.o"
  "CMakeFiles/fig6_accuracy.dir/harness.cc.o.d"
  "fig6_accuracy"
  "fig6_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
