file(REMOVE_RECURSE
  "CMakeFiles/table2_tt_shapes.dir/harness.cc.o"
  "CMakeFiles/table2_tt_shapes.dir/harness.cc.o.d"
  "CMakeFiles/table2_tt_shapes.dir/table2_tt_shapes.cc.o"
  "CMakeFiles/table2_tt_shapes.dir/table2_tt_shapes.cc.o.d"
  "table2_tt_shapes"
  "table2_tt_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_tt_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
