# Empty dependencies file for table2_tt_shapes.
# This may be replaced when dependencies are built.
