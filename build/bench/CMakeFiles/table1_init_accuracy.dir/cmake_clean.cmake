file(REMOVE_RECURSE
  "CMakeFiles/table1_init_accuracy.dir/harness.cc.o"
  "CMakeFiles/table1_init_accuracy.dir/harness.cc.o.d"
  "CMakeFiles/table1_init_accuracy.dir/table1_init_accuracy.cc.o"
  "CMakeFiles/table1_init_accuracy.dir/table1_init_accuracy.cc.o.d"
  "table1_init_accuracy"
  "table1_init_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_init_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
