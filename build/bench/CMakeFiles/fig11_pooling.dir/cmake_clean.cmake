file(REMOVE_RECURSE
  "CMakeFiles/fig11_pooling.dir/fig11_pooling.cc.o"
  "CMakeFiles/fig11_pooling.dir/fig11_pooling.cc.o.d"
  "CMakeFiles/fig11_pooling.dir/harness.cc.o"
  "CMakeFiles/fig11_pooling.dir/harness.cc.o.d"
  "fig11_pooling"
  "fig11_pooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
