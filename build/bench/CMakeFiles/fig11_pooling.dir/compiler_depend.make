# Empty compiler generated dependencies file for fig11_pooling.
# This may be replaced when dependencies are built.
