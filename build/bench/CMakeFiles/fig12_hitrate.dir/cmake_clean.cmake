file(REMOVE_RECURSE
  "CMakeFiles/fig12_hitrate.dir/fig12_hitrate.cc.o"
  "CMakeFiles/fig12_hitrate.dir/fig12_hitrate.cc.o.d"
  "CMakeFiles/fig12_hitrate.dir/harness.cc.o"
  "CMakeFiles/fig12_hitrate.dir/harness.cc.o.d"
  "fig12_hitrate"
  "fig12_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
