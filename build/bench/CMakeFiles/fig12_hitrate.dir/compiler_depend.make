# Empty compiler generated dependencies file for fig12_hitrate.
# This may be replaced when dependencies are built.
