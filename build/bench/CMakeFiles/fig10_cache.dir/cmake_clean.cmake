file(REMOVE_RECURSE
  "CMakeFiles/fig10_cache.dir/fig10_cache.cc.o"
  "CMakeFiles/fig10_cache.dir/fig10_cache.cc.o.d"
  "CMakeFiles/fig10_cache.dir/harness.cc.o"
  "CMakeFiles/fig10_cache.dir/harness.cc.o.d"
  "fig10_cache"
  "fig10_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
