file(REMOVE_RECURSE
  "CMakeFiles/fig9_reuse.dir/fig9_reuse.cc.o"
  "CMakeFiles/fig9_reuse.dir/fig9_reuse.cc.o.d"
  "CMakeFiles/fig9_reuse.dir/harness.cc.o"
  "CMakeFiles/fig9_reuse.dir/harness.cc.o.d"
  "fig9_reuse"
  "fig9_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
