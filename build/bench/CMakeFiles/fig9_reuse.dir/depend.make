# Empty dependencies file for fig9_reuse.
# This may be replaced when dependencies are built.
