file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cc.o"
  "CMakeFiles/ablation_kernels.dir/ablation_kernels.cc.o.d"
  "CMakeFiles/ablation_kernels.dir/harness.cc.o"
  "CMakeFiles/ablation_kernels.dir/harness.cc.o.d"
  "ablation_kernels"
  "ablation_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
