# Empty compiler generated dependencies file for fig3_init_pdf.
# This may be replaced when dependencies are built.
