file(REMOVE_RECURSE
  "CMakeFiles/fig3_init_pdf.dir/fig3_init_pdf.cc.o"
  "CMakeFiles/fig3_init_pdf.dir/fig3_init_pdf.cc.o.d"
  "CMakeFiles/fig3_init_pdf.dir/harness.cc.o"
  "CMakeFiles/fig3_init_pdf.dir/harness.cc.o.d"
  "fig3_init_pdf"
  "fig3_init_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_init_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
