# Empty compiler generated dependencies file for fig8_t3nsor.
# This may be replaced when dependencies are built.
