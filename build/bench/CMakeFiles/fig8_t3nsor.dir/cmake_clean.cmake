file(REMOVE_RECURSE
  "CMakeFiles/fig8_t3nsor.dir/fig8_t3nsor.cc.o"
  "CMakeFiles/fig8_t3nsor.dir/fig8_t3nsor.cc.o.d"
  "CMakeFiles/fig8_t3nsor.dir/harness.cc.o"
  "CMakeFiles/fig8_t3nsor.dir/harness.cc.o.d"
  "fig8_t3nsor"
  "fig8_t3nsor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_t3nsor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
