
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baselines.cc" "tests/CMakeFiles/ttrec_tests.dir/test_baselines.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_baselines.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/ttrec_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_checkpoint.cc" "tests/CMakeFiles/ttrec_tests.dir/test_checkpoint.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_checkpoint.cc.o.d"
  "/root/repo/tests/test_csr_batch.cc" "tests/CMakeFiles/ttrec_tests.dir/test_csr_batch.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_csr_batch.cc.o.d"
  "/root/repo/tests/test_data.cc" "tests/CMakeFiles/ttrec_tests.dir/test_data.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_data.cc.o.d"
  "/root/repo/tests/test_dlrm.cc" "tests/CMakeFiles/ttrec_tests.dir/test_dlrm.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_dlrm.cc.o.d"
  "/root/repo/tests/test_embedding_conformance.cc" "tests/CMakeFiles/ttrec_tests.dir/test_embedding_conformance.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_embedding_conformance.cc.o.d"
  "/root/repo/tests/test_gemm.cc" "tests/CMakeFiles/ttrec_tests.dir/test_gemm.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_gemm.cc.o.d"
  "/root/repo/tests/test_mlp.cc" "tests/CMakeFiles/ttrec_tests.dir/test_mlp.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_mlp.cc.o.d"
  "/root/repo/tests/test_optimizer.cc" "tests/CMakeFiles/ttrec_tests.dir/test_optimizer.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_optimizer.cc.o.d"
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/ttrec_tests.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_parallel.cc.o.d"
  "/root/repo/tests/test_planner.cc" "tests/CMakeFiles/ttrec_tests.dir/test_planner.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_planner.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/ttrec_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/ttrec_tests.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_stress_equivalence.cc" "tests/CMakeFiles/ttrec_tests.dir/test_stress_equivalence.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_stress_equivalence.cc.o.d"
  "/root/repo/tests/test_svd.cc" "tests/CMakeFiles/ttrec_tests.dir/test_svd.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_svd.cc.o.d"
  "/root/repo/tests/test_tensor.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tensor.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tensor.cc.o.d"
  "/root/repo/tests/test_tt_cores.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_cores.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_cores.cc.o.d"
  "/root/repo/tests/test_tt_decompose.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_decompose.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_decompose.cc.o.d"
  "/root/repo/tests/test_tt_embedding.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_embedding.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_embedding.cc.o.d"
  "/root/repo/tests/test_tt_oracle.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_oracle.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_oracle.cc.o.d"
  "/root/repo/tests/test_tt_shapes.cc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_shapes.cc.o" "gcc" "tests/CMakeFiles/ttrec_tests.dir/test_tt_shapes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/ttrec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/dlrm/CMakeFiles/ttrec_dlrm.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ttrec_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ttrec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
