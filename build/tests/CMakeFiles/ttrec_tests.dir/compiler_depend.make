# Empty compiler generated dependencies file for ttrec_tests.
# This may be replaced when dependencies are built.
