# Empty dependencies file for ttrec_info.
# This may be replaced when dependencies are built.
