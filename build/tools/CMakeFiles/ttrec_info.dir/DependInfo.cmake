
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ttrec_info.cc" "tools/CMakeFiles/ttrec_info.dir/ttrec_info.cc.o" "gcc" "tools/CMakeFiles/ttrec_info.dir/ttrec_info.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tt/CMakeFiles/ttrec_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ttrec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
