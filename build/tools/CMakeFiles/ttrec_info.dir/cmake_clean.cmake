file(REMOVE_RECURSE
  "CMakeFiles/ttrec_info.dir/ttrec_info.cc.o"
  "CMakeFiles/ttrec_info.dir/ttrec_info.cc.o.d"
  "ttrec_info"
  "ttrec_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttrec_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
