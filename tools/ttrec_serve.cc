// CLI demo of the serving subsystem (src/serve/): builds a mixed
// dense / cached-TT DLRM, warms the LFU caches from a Zipf-skewed synthetic
// trace, then serves a closed-loop request stream through the micro-batching
// InferenceServer and prints the telemetry snapshot as JSON.
//
// SIGINT/SIGTERM trigger a graceful drain: producers stop submitting, the
// server finishes everything in flight, and one final MetricsJson line is
// printed before exit — the snapshot is never torn by the signal.
//
//   $ ttrec_serve [--tables N] [--rows R] [--requests N] [--producers P]
//                 [--max-batch B] [--max-wait-us W] [--consumers C]
//                 [--shards S] [--partition table|row]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "serve/inference_server.h"
#include "tensor/check.h"
#include "tt/tt_shapes.h"

using namespace ttrec;

namespace {

// Signal flag: lock-free atomic stores are async-signal-safe. Producers
// poll it between requests; main turns it into a server drain.
std::atomic<bool> g_stop{false};

void HandleStopSignal(int /*sig*/) { g_stop.store(true); }

struct Options {
  int tables = 8;
  int64_t rows = 100000;
  int64_t emb_dim = 16;
  int64_t tt_rank = 16;
  int64_t warmup_batches = 30;
  int64_t requests = 2000;
  int producers = 4;
  int64_t max_batch = 32;
  int64_t max_wait_us = 200;
  int consumers = 1;
  int shards = 0;
  shard::PartitionStrategy partition = shard::PartitionStrategy::kRowRange;
  uint64_t seed = 42;
};

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --tables N       embedding tables (half cached-TT, half dense;"
      " default 8)\n"
      "  --rows R         rows per table (default 100000)\n"
      "  --requests N     total requests to serve (default 2000)\n"
      "  --producers P    closed-loop client threads (default 4)\n"
      "  --max-batch B    micro-batch cap (default 32; 1 = no batching)\n"
      "  --max-wait-us W  batch hold time in microseconds (default 200)\n"
      "  --consumers C    batching consumer threads (default 1)\n"
      "  --shards S       embedding shards per consumer's router (default 0 ="
      " unsharded)\n"
      "  --partition P    shard partition strategy: table | row (default"
      " row)\n"
      "  --seed S         trace seed (default 42)\n",
      prog);
  return 2;
}

bool ParseI64(const char* s, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

std::unique_ptr<DlrmModel> BuildModel(const Options& opt, Rng& rng) {
  DlrmConfig dlrm;
  dlrm.emb_dim = opt.emb_dim;
  dlrm.index_policy = IndexPolicy::kClampToZero;  // serving replica default
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  tables.reserve(static_cast<size_t>(opt.tables));
  for (int t = 0; t < opt.tables; ++t) {
    if (t < opt.tables / 2) {
      CachedTtConfig cfg;
      cfg.tt.shape = MakeTtShape(opt.rows, opt.emb_dim, 3, opt.tt_rank);
      cfg.cache_capacity = std::max<int64_t>(64, opt.rows / 1000);
      cfg.warmup_iterations = opt.warmup_batches / 2;
      cfg.refresh_interval = 5;
      tables.push_back(
          std::make_unique<CachedTtEmbeddingAdapter>(cfg, TtInit::kSampledGaussian, rng));
    } else {
      tables.push_back(std::make_unique<DenseEmbeddingBag>(
          opt.rows, opt.emb_dim, PoolingMode::kSum,
          DenseEmbeddingInit::UniformScaled(), rng));
    }
  }
  return std::make_unique<DlrmModel>(dlrm, std::move(tables), rng);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto next_i64 = [&](int64_t* out) {
      return i + 1 < argc && ParseI64(argv[++i], out);
    };
    int64_t v = 0;
    if (std::strcmp(a, "--tables") == 0 && next_i64(&v)) {
      opt.tables = static_cast<int>(v);
    } else if (std::strcmp(a, "--rows") == 0 && next_i64(&opt.rows)) {
    } else if (std::strcmp(a, "--requests") == 0 && next_i64(&opt.requests)) {
    } else if (std::strcmp(a, "--producers") == 0 && next_i64(&v)) {
      opt.producers = static_cast<int>(v);
    } else if (std::strcmp(a, "--max-batch") == 0 && next_i64(&opt.max_batch)) {
    } else if (std::strcmp(a, "--max-wait-us") == 0 &&
               next_i64(&opt.max_wait_us)) {
    } else if (std::strcmp(a, "--consumers") == 0 && next_i64(&v)) {
      opt.consumers = static_cast<int>(v);
    } else if (std::strcmp(a, "--shards") == 0 && next_i64(&v)) {
      opt.shards = static_cast<int>(v);
    } else if (std::strcmp(a, "--partition") == 0 && i + 1 < argc) {
      if (!shard::ParsePartitionStrategy(argv[++i], &opt.partition)) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(a, "--seed") == 0 && next_i64(&v)) {
      opt.seed = static_cast<uint64_t>(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.tables < 1 || opt.producers < 1 || opt.requests < 1) {
    return Usage(argv[0]);
  }

  try {
    Rng rng(opt.seed);
    std::unique_ptr<DlrmModel> model = BuildModel(opt, rng);

    DatasetSpec spec;
    spec.name = "serve_demo";
    spec.table_rows.assign(static_cast<size_t>(opt.tables), opt.rows);
    SyntheticCriteoConfig data_cfg;
    data_cfg.spec = spec;
    data_cfg.seed = opt.seed;
    SyntheticCriteo data(data_cfg);

    // Warm-up: the training-path forward populates and then freezes the LFU
    // caches (paper Fig 4); serving never mutates them again.
    std::printf("warming %d tables over %lld batches...\n", opt.tables,
                static_cast<long long>(opt.warmup_batches));
    std::vector<float> warm_logits(64);
    for (int64_t i = 0; i < opt.warmup_batches; ++i) {
      model->PredictLogits(data.NextBatch(64), warm_logits.data());
    }
    // Drop warm-up hit/miss counts so the snapshot reflects serving only.
    for (int t = 0; t < model->num_tables(); ++t) {
      model->table(t).ResetStats();
    }

    serve::InferenceServerConfig server_cfg;
    server_cfg.max_batch_size = opt.max_batch;
    server_cfg.max_wait = std::chrono::microseconds(opt.max_wait_us);
    server_cfg.num_consumers = opt.consumers;
    server_cfg.num_shards = opt.shards;
    server_cfg.partition = opt.partition;
    serve::InferenceServer server(*model, server_cfg);
    if (const auto plan = server.shard_plan()) {
      std::printf("%s", plan->ToString().c_str());
    }

    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);

    // Closed-loop producers: each thread submits its share one request at a
    // time, waiting for the logit before sending the next.
    const int64_t per_producer = opt.requests / opt.producers;
    std::vector<std::thread> producers;
    producers.reserve(static_cast<size_t>(opt.producers));
    for (int p = 0; p < opt.producers; ++p) {
      producers.emplace_back([&, p] {
        // Same config seed as the warm-up stream — the Zipf rank->row
        // shuffle is seed-derived, so a different seed would request a
        // disjoint hot set and defeat the frozen cache. Per-producer
        // traffic varies through the eval seed instead.
        SyntheticCriteo stream(data_cfg);
        uint64_t eval_seed = opt.seed + 1000 + static_cast<uint64_t>(p);
        int64_t sent = 0;
        while (sent < per_producer && !g_stop.load()) {
          const int64_t chunk = std::min<int64_t>(64, per_producer - sent);
          std::vector<serve::InferenceRequest> reqs =
              serve::SplitSamples(stream.EvalBatch(chunk, eval_seed++));
          for (auto& r : reqs) {
            if (g_stop.load()) break;
            try {
              server.Submit(std::move(r)).get();
            } catch (const serve::ServerShutdown&) {
              return;  // drain began under us — stop cleanly
            }
            ++sent;
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();

    if (g_stop.load()) {
      std::fprintf(stderr,
                   "signal received: draining (admission closed, in-flight "
                   "requests finishing)...\n");
    }
    // Graceful either way: stop admission, finish everything queued, join
    // the consumers — then snapshot, so the final line is never torn.
    server.BeginDrain();
    server.Shutdown();

    const serve::ServeMetricsSnapshot snap = server.SnapshotWithCacheStats();
    std::printf("\n%s\n\n", serve::ToJson(snap).c_str());
    std::printf("served %lld requests at %.0f QPS | latency p50 %.0f us, "
                "p95 %.0f us, p99 %.0f us | mean batch %.1f\n",
                static_cast<long long>(snap.requests_ok), snap.qps,
                snap.latency_p50_us, snap.latency_p95_us, snap.latency_p99_us,
                snap.mean_batch_size);
    if (snap.has_cache) {
      std::printf("LFU cache hit rate during serving: %.1f%%\n",
                  100.0 * snap.cache_hit_rate);
    }
    return 0;
  } catch (const TtRecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
