// CLI utility: inspect a saved TT-cores artifact (tt/tt_io.h format).
//
//   $ ttrec_info table.ttrc
//   10131227x16 -> (1,216,2,32) * (32,217,2,32) * (32,217,4,1) ...
#include <cstdio>

#include "tensor/check.h"
#include "tt/tt_io.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <cores-file.ttrc>\n", argv[0]);
    return 2;
  }
  try {
    const ttrec::TtCores cores = ttrec::LoadTtCoresFromFile(argv[1]);
    const ttrec::TtShape& s = cores.shape();
    std::printf("%s\n", s.ToString().c_str());
    std::printf("cores: %d\n", cores.num_cores());
    for (int k = 0; k < cores.num_cores(); ++k) {
      std::printf("  G%d: %lld slices of %lld x %lld (%lld params)\n", k,
                  static_cast<long long>(s.row_factors[static_cast<size_t>(k)]),
                  static_cast<long long>(cores.SliceRows(k)),
                  static_cast<long long>(cores.SliceCols(k)),
                  static_cast<long long>(s.CoreParams(k)));
    }
    std::printf("dense equivalent: %lld floats; reduction %.1fx\n",
                static_cast<long long>(s.DenseParams()),
                s.CompressionRatio());
    return 0;
  } catch (const ttrec::TtRecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
