// CLI utility: inspect a saved TT-cores artifact (tt/tt_io.h format), or
// structurally verify a training snapshot without loading it into a model.
//
//   $ ttrec_info table.ttrc
//   10131227x16 -> (1,216,2,32) * (32,217,2,32) * (32,217,4,1) ...
//
//   $ ttrec_info verify snapshots/snapshot-000000000100.ttsn
//   TTSN version 1, iteration 100, optimizer sgd
//     meta      29 B  crc ok
//     model  51824 B  crc ok
//     ...
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "dlrm/checkpoint.h"
#include "tensor/check.h"
#include "tt/tt_io.h"

namespace {

int Usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <command> [args]\n"
               "\n"
               "commands:\n"
               "  info <cores-file.ttrc>    describe a saved TT-cores artifact\n"
               "                            (factorization, ranks, compression)\n"
               "  verify <snapshot.ttsn>    check a training snapshot's magic,\n"
               "                            version, and section CRCs\n"
               "  help                      print this message\n"
               "\n"
               "`%s <cores-file.ttrc>` (no subcommand) is accepted as a\n"
               "shorthand for `info`.\n",
               prog, prog);
  return 2;
}

int InfoTtCores(const char* path) {
  try {
    const ttrec::TtCores cores = ttrec::LoadTtCoresFromFile(path);
    const ttrec::TtShape& s = cores.shape();
    std::printf("%s\n", s.ToString().c_str());
    std::printf("cores: %d\n", cores.num_cores());
    for (int k = 0; k < cores.num_cores(); ++k) {
      std::printf("  G%d: %lld slices of %lld x %lld (%lld params)\n", k,
                  static_cast<long long>(s.row_factors[static_cast<size_t>(k)]),
                  static_cast<long long>(cores.SliceRows(k)),
                  static_cast<long long>(cores.SliceCols(k)),
                  static_cast<long long>(s.CoreParams(k)));
    }
    std::printf("dense equivalent: %lld floats; reduction %.1fx\n",
                static_cast<long long>(s.DenseParams()),
                s.CompressionRatio());
    return 0;
  } catch (const ttrec::TtRecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

/// Validates magic, version, section CRCs, and the file trailer. Exit 0
/// only when every check passes — scriptable as a pre-restore gate.
int VerifySnapshot(const char* path) {
  const ttrec::SnapshotVerifyResult v = ttrec::VerifySnapshotFile(path);
  if (v.version != 0) {
    std::printf("TTSN version %u, iteration %lld, optimizer %s\n", v.version,
                static_cast<long long>(v.iteration),
                v.optimizer.empty() ? "?" : v.optimizer.c_str());
  }
  for (const auto& s : v.sections) {
    std::printf("  %-6s %10llu B  crc %s\n", s.name.c_str(),
                static_cast<unsigned long long>(s.size),
                s.crc_ok ? "ok" : "FAILED");
  }
  if (!v.ok) {
    std::fprintf(stderr, "INVALID: %s\n", v.error.c_str());
    return 1;
  }
  std::printf("OK: %zu sections verified\n", v.sections.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  if (std::strcmp(argv[1], "help") == 0 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    Usage(argv[0]);
    return 0;
  }
  if (std::strcmp(argv[1], "verify") == 0) {
    if (argc != 3) return Usage(argv[0]);
    return VerifySnapshot(argv[2]);
  }
  if (std::strcmp(argv[1], "info") == 0) {
    if (argc != 3) return Usage(argv[0]);
    return InfoTtCores(argv[2]);
  }
  // A lone existing-file argument is the legacy `ttrec_info <file>`
  // spelling; anything else (flags, extra args, unknown subcommands) gets
  // usage and a non-zero exit.
  if (argc == 2 && argv[1][0] != '-' &&
      std::filesystem::exists(argv[1])) {
    return InfoTtCores(argv[1]);
  }
  return Usage(argv[0]);
}
