// Trace/observability CLI for the obs/ subsystem.
//
//   ttrec_trace train    [--iterations N] [--out trace.json]
//   ttrec_trace serve    [--requests N]   [--out trace.json]
//   ttrec_trace overhead [--iterations N] [--json BENCH_obs.json]
//
// `train` and `serve` run a small mixed dense / TT / cached-TT DLRM with
// tracing enabled and write the capture as chrome://tracing JSON (open in
// Perfetto or chrome://tracing). `overhead` is the CI gate: it times the
// same training loop untraced vs traced, measures the cost of a disabled
// TraceScope directly, and writes BENCH_obs.json with the estimated
// tracing-disabled overhead — exiting nonzero when the estimate breaches
// the 3% step-time budget (DESIGN.md "Observability").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_adapters.h"
#include "dlrm/embedding_bag.h"
#include "dlrm/model.h"
#include "dlrm/trainer.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_server.h"
#include "tensor/check.h"
#include "tt/tt_shapes.h"

using namespace ttrec;

namespace {

/// Maximum tracing-disabled overhead the `overhead` subcommand tolerates,
/// as a percentage of untraced step time.
constexpr double kOverheadBudgetPct = 3.0;

struct Options {
  int64_t iterations = 40;
  int64_t requests = 512;
  int64_t batch_size = 64;
  int64_t rows = 20000;
  std::string out = "trace.json";
  std::string json = "BENCH_obs.json";
  uint64_t seed = 42;
};

int Usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <train|serve|overhead> [options]\n"
      "  --iterations N  training iterations (train/overhead; default 40)\n"
      "  --requests N    requests to serve (serve; default 512)\n"
      "  --batch-size B  training batch size (default 64)\n"
      "  --rows R        rows per embedding table (default 20000)\n"
      "  --out PATH      chrome trace output (train/serve; default "
      "trace.json)\n"
      "  --json PATH     overhead report output (overhead; default "
      "BENCH_obs.json)\n"
      "  --seed S        model/data seed (default 42)\n",
      prog);
  return 2;
}

bool ParseI64(const char* s, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Small mixed model exercising every instrumented table kind: one plain TT
/// table, one cached-TT table (LFU spans), one dense table.
std::unique_ptr<DlrmModel> BuildModel(const Options& opt, Rng& rng) {
  DlrmConfig dlrm;
  dlrm.emb_dim = 16;
  std::vector<std::unique_ptr<EmbeddingOp>> tables;
  {
    TtEmbeddingConfig cfg;
    cfg.shape = MakeTtShape(opt.rows, dlrm.emb_dim, 3, 8);
    tables.push_back(std::make_unique<TtEmbeddingAdapter>(
        cfg, TtInit::kSampledGaussian, rng));
  }
  {
    CachedTtConfig cfg;
    cfg.tt.shape = MakeTtShape(opt.rows, dlrm.emb_dim, 3, 8);
    cfg.cache_capacity = std::max<int64_t>(64, opt.rows / 100);
    cfg.warmup_iterations = 4;
    cfg.refresh_interval = 8;
    tables.push_back(std::make_unique<CachedTtEmbeddingAdapter>(
        cfg, TtInit::kSampledGaussian, rng));
  }
  tables.push_back(std::make_unique<DenseEmbeddingBag>(
      opt.rows, dlrm.emb_dim, PoolingMode::kSum,
      DenseEmbeddingInit::UniformScaled(), rng));
  return std::make_unique<DlrmModel>(dlrm, std::move(tables), rng);
}

SyntheticCriteo MakeData(const Options& opt, int num_tables) {
  DatasetSpec spec;
  spec.name = "trace_demo";
  spec.table_rows.assign(static_cast<size_t>(num_tables), opt.rows);
  SyntheticCriteoConfig cfg;
  cfg.spec = spec;
  cfg.seed = opt.seed;
  return SyntheticCriteo(cfg);
}

int WriteFile(const std::string& path, const std::string& body) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  f << body << '\n';
  return f ? 0 : 1;
}

/// Runs the standard short training loop and returns ms per iteration.
double TimedTrain(DlrmModel& model, SyntheticCriteo& data,
                  const Options& opt, obs::MetricRegistry* reg) {
  TrainConfig tc;
  tc.iterations = opt.iterations;
  tc.batch_size = opt.batch_size;
  tc.eval_batches = 0;
  tc.log_every = 0;
  tc.metrics = reg;
  const TrainResult r = TrainDlrm(model, data, tc);
  return r.MsPerIteration();
}

int RunTrain(const Options& opt) {
  Rng rng(opt.seed);
  std::unique_ptr<DlrmModel> model = BuildModel(opt, rng);
  SyntheticCriteo data = MakeData(opt, model->num_tables());

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  obs::MetricRegistry reg;
  const double ms = TimedTrain(*model, data, opt, &reg);
  tracer.Disable();

  std::printf("traced %lld iterations at %.3f ms/iter, %lld spans "
              "buffered (%lld dropped)\n",
              static_cast<long long>(opt.iterations), ms,
              static_cast<long long>(tracer.buffered()),
              static_cast<long long>(tracer.dropped()));
  std::printf("%s\n", reg.ToJson().c_str());
  if (WriteFile(opt.out, tracer.FlushJson()) != 0) return 1;
  std::printf("wrote %s (load in Perfetto / chrome://tracing)\n",
              opt.out.c_str());
  return 0;
}

int RunServe(const Options& opt) {
  Rng rng(opt.seed);
  std::unique_ptr<DlrmModel> model = BuildModel(opt, rng);
  SyntheticCriteo data = MakeData(opt, model->num_tables());

  // Warm the LFU cache through the training-path forward, then freeze.
  std::vector<float> warm_logits(64);
  for (int64_t i = 0; i < 8; ++i) {
    model->PredictLogits(data.NextBatch(64), warm_logits.data());
  }
  for (int t = 0; t < model->num_tables(); ++t) {
    model->table(t).ResetStats();
  }

  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Enable();
  {
    serve::InferenceServerConfig scfg;
    scfg.max_batch_size = 32;
    scfg.max_wait = std::chrono::microseconds(100);
    serve::InferenceServer server(*model, scfg);
    std::vector<std::future<serve::InferenceResult>> futures;
    uint64_t eval_seed = opt.seed + 1;
    int64_t sent = 0;
    while (sent < opt.requests) {
      const int64_t chunk = std::min<int64_t>(64, opt.requests - sent);
      std::vector<serve::InferenceRequest> reqs =
          serve::SplitSamples(data.EvalBatch(chunk, eval_seed++));
      for (auto& r : reqs) {
        futures.push_back(server.Submit(std::move(r)));
        ++sent;
      }
    }
    for (auto& f : futures) f.get();
    std::printf("%s\n", server.MetricsJson().c_str());
    server.Shutdown();
  }
  tracer.Disable();

  std::printf("served %lld requests, %lld spans buffered (%lld dropped)\n",
              static_cast<long long>(opt.requests),
              static_cast<long long>(tracer.buffered()),
              static_cast<long long>(tracer.dropped()));
  if (WriteFile(opt.out, tracer.FlushJson()) != 0) return 1;
  std::printf("wrote %s (load in Perfetto / chrome://tracing)\n",
              opt.out.c_str());
  return 0;
}

/// Direct cost of a tracing-disabled TraceScope, in nanoseconds. The span
/// name is a literal, the tracer is globally off — this is exactly the
/// instruction sequence every instrumented hot path pays per span.
double DisabledScopeNanos() {
  using Clock = std::chrono::steady_clock;
  constexpr int64_t kIters = 20'000'000;
  const auto t0 = Clock::now();
  for (int64_t i = 0; i < kIters; ++i) {
    TTREC_TRACE_SCOPE("obs.overhead_probe");
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(kIters);
}

int RunOverhead(const Options& opt) {
  obs::Tracer& tracer = obs::Tracer::Global();
  TTREC_CHECK(!tracer.enabled(), "overhead: tracing must start disabled");

  // Pass 1: untraced baseline (the deployment configuration).
  double untraced_ms = 0.0;
  {
    Rng rng(opt.seed);
    std::unique_ptr<DlrmModel> model = BuildModel(opt, rng);
    SyntheticCriteo data = MakeData(opt, model->num_tables());
    TimedTrain(*model, data, opt, nullptr);  // warm-up
    untraced_ms = TimedTrain(*model, data, opt, nullptr);
  }

  // Pass 2: traced, identical model/data — also yields spans per step.
  double traced_ms = 0.0;
  int64_t spans = 0;
  {
    Rng rng(opt.seed);
    std::unique_ptr<DlrmModel> model = BuildModel(opt, rng);
    SyntheticCriteo data = MakeData(opt, model->num_tables());
    TimedTrain(*model, data, opt, nullptr);  // warm-up
    tracer.Enable(1 << 20);
    traced_ms = TimedTrain(*model, data, opt, nullptr);
    tracer.Disable();
    spans = tracer.buffered() + tracer.dropped();
    tracer.FlushJson();  // discard, frees the capture
  }

  const double spans_per_step =
      static_cast<double>(spans) / static_cast<double>(opt.iterations);
  const double scope_ns = DisabledScopeNanos();
  // The product is what a tracing-disabled production step actually pays:
  // spans/step x cost of one disabled span, relative to the step itself.
  const double est_pct =
      untraced_ms > 0.0
          ? 100.0 * (spans_per_step * scope_ns * 1e-6) / untraced_ms
          : 0.0;
  const double traced_pct =
      untraced_ms > 0.0 ? 100.0 * (traced_ms / untraced_ms - 1.0) : 0.0;

  std::printf("untraced: %.3f ms/iter, traced: %.3f ms/iter (+%.2f%%)\n",
              untraced_ms, traced_ms, traced_pct);
  std::printf("%.1f spans/step x %.2f ns/disabled-span -> est disabled "
              "overhead %.4f%% (budget %.1f%%)\n",
              spans_per_step, scope_ns, est_pct, kOverheadBudgetPct);

  obs::JsonWriter w;
  obs::BeginBenchEnvelope(w, "obs_overhead");
  w.Key("config").BeginObject();
  w.Kv("iterations", opt.iterations);
  w.Kv("batch_size", opt.batch_size);
  w.Kv("rows", opt.rows);
  w.EndObject();
  w.Kv("untraced_ms_per_iter", untraced_ms, 4);
  w.Kv("traced_ms_per_iter", traced_ms, 4);
  w.Kv("traced_overhead_pct", traced_pct, 3);
  w.Kv("spans_per_step", spans_per_step, 1);
  w.Kv("disabled_scope_ns", scope_ns, 3);
  w.Kv("est_disabled_overhead_pct", est_pct, 4);
  w.Kv("overhead_budget_pct", kOverheadBudgetPct, 1);
  w.Kv("within_budget", est_pct < kOverheadBudgetPct);
  w.EndObject();
  if (WriteFile(opt.json, w.str()) != 0) return 1;
  std::printf("wrote %s\n", opt.json.c_str());

  if (est_pct >= kOverheadBudgetPct) {
    std::fprintf(stderr,
                 "FAIL: estimated disabled-tracing overhead %.4f%% exceeds "
                 "the %.1f%% budget\n",
                 est_pct, kOverheadBudgetPct);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string cmd = argv[1];
  Options opt;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    auto next_i64 = [&](int64_t* out) {
      return i + 1 < argc && ParseI64(argv[++i], out);
    };
    auto next_str = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    int64_t v = 0;
    if (std::strcmp(a, "--iterations") == 0 && next_i64(&opt.iterations)) {
    } else if (std::strcmp(a, "--requests") == 0 && next_i64(&opt.requests)) {
    } else if (std::strcmp(a, "--batch-size") == 0 &&
               next_i64(&opt.batch_size)) {
    } else if (std::strcmp(a, "--rows") == 0 && next_i64(&opt.rows)) {
    } else if (std::strcmp(a, "--out") == 0 && next_str(&opt.out)) {
    } else if (std::strcmp(a, "--json") == 0 && next_str(&opt.json)) {
    } else if (std::strcmp(a, "--seed") == 0 && next_i64(&v)) {
      opt.seed = static_cast<uint64_t>(v);
    } else {
      return Usage(argv[0]);
    }
  }
  if (opt.iterations < 1 || opt.requests < 1 || opt.batch_size < 1 ||
      opt.rows < 64) {
    return Usage(argv[0]);
  }

  try {
    if (cmd == "train") return RunTrain(opt);
    if (cmd == "serve") return RunServe(opt);
    if (cmd == "overhead") return RunOverhead(opt);
    return Usage(argv[0]);
  } catch (const TtRecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
