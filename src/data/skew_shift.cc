#include "data/skew_shift.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

SkewShiftScenario::SkewShiftScenario(SkewShiftConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  TTREC_CHECK_CONFIG(!config_.tables.empty(),
                     "SkewShiftScenario: need at least one table");
  TTREC_CHECK_CONFIG(config_.lookups_per_iteration >= 1,
                     "SkewShiftScenario: lookups_per_iteration must be >= 1");
  TTREC_CHECK_CONFIG(config_.phase_length >= 0,
                     "SkewShiftScenario: phase_length must be >= 0");
  double share_sum = 0.0;
  for (const SkewShiftTableConfig& t : config_.tables) {
    TTREC_CHECK_CONFIG(t.rows >= 1, "SkewShiftScenario: rows must be >= 1");
    TTREC_CHECK_CONFIG(t.traffic_share > 0.0,
                       "SkewShiftScenario: traffic_share must be > 0");
    share_sum += t.traffic_share;
  }
  TTREC_CHECK_CONFIG(share_sum > 0.0,
                     "SkewShiftScenario: shares must sum > 0");
  zipf_.reserve(config_.tables.size());
  for (const SkewShiftTableConfig& t : config_.tables) {
    zipf_.emplace_back(t.rows, t.zipf_exponent);
  }
  EnterPhase(0);
}

int64_t SkewShiftScenario::phase() const {
  return config_.phase_length > 0 ? iteration_ / config_.phase_length : 0;
}

int64_t SkewShiftScenario::LookupsFor(int table) const {
  TTREC_CHECK_INDEX(table >= 0 && table < num_tables(),
                    "SkewShiftScenario: bad table ", table);
  return lookups_[static_cast<size_t>(table)];
}

void SkewShiftScenario::EnterPhase(int64_t phase) {
  const size_t n = config_.tables.size();
  // Rotate the traffic shares: table t draws the share configured for
  // table (t + phase) mod n, so the heavy-traffic table changes identity
  // every phase.
  double share_sum = 0.0;
  std::vector<double> share(n, 0.0);
  for (size_t t = 0; t < n; ++t) {
    share[t] =
        config_.tables[(t + static_cast<size_t>(phase)) % n].traffic_share;
    share_sum += share[t];
  }
  lookups_.assign(n, 1);
  for (size_t t = 0; t < n; ++t) {
    lookups_[t] = std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(
               static_cast<double>(config_.lookups_per_iteration) *
               share[t] / share_sum)));
  }
  // Re-seed every table's rank->row bijection: the hot rows move, so
  // whatever a cache learned last phase is now cold.
  shuffle_.clear();
  shuffle_.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    shuffle_.emplace_back(config_.tables[t].rows,
                          config_.seed ^ (0x9E37u + 131u * t) ^
                              (static_cast<uint64_t>(phase) << 32));
  }
  current_phase_ = phase;
}

std::vector<CsrBatch> SkewShiftScenario::NextBatch() {
  if (config_.phase_length > 0) {
    const int64_t p = iteration_ / config_.phase_length;
    if (p != current_phase_) EnterPhase(p);
  }
  std::vector<CsrBatch> out;
  out.reserve(config_.tables.size());
  for (size_t t = 0; t < config_.tables.size(); ++t) {
    CsrBatch batch;
    batch.offsets = {0, lookups_[t]};
    batch.indices.reserve(static_cast<size_t>(lookups_[t]));
    for (int64_t l = 0; l < lookups_[t]; ++l) {
      const int64_t rank = zipf_[t].Sample(rng_);
      batch.indices.push_back(shuffle_[t].Map(rank));
    }
    out.push_back(std::move(batch));
  }
  ++iteration_;
  return out;
}

void SkewShiftScenario::SaveState(BinaryWriter& w) const {
  w.WriteI64(iteration_);
  uint64_t s[4];
  rng_.GetState(s);
  for (uint64_t word : s) w.WriteI64(static_cast<int64_t>(word));
}

void SkewShiftScenario::LoadState(BinaryReader& r) {
  const int64_t iteration = r.ReadI64();
  TTREC_CHECK_CONFIG(iteration >= 0,
                     "SkewShiftScenario::LoadState: negative iteration ",
                     iteration);
  uint64_t s[4];
  for (uint64_t& word : s) word = static_cast<uint64_t>(r.ReadI64());
  iteration_ = iteration;
  rng_.SetState(s);
  // Shuffles and lookup splits are pure functions of (config, phase);
  // re-derive them for the restored cursor's phase.
  EnterPhase(phase());
}

}  // namespace ttrec
