#include "data/criteo_synth.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

SyntheticCriteo::SyntheticCriteo(SyntheticCriteoConfig config)
    : config_(std::move(config)), train_rng_(config_.seed) {
  TTREC_CHECK_CONFIG(config_.spec.num_tables() > 0,
                     "SyntheticCriteo: dataset has no tables");
  TTREC_CHECK_CONFIG(config_.pooling_factor >= 1,
                     "SyntheticCriteo: pooling factor must be >= 1");
  TTREC_CHECK_CONFIG(config_.zipf_exponent >= 0.0,
                     "SyntheticCriteo: zipf exponent must be >= 0");
  TTREC_CHECK_CONFIG(
      config_.label_flip_prob >= 0.0 && config_.label_flip_prob <= 0.5,
      "SyntheticCriteo: label flip probability must be in [0, 0.5]");

  Rng setup(Mix64(config_.seed ^ 0xABCDEFull));
  zipf_.reserve(static_cast<size_t>(num_tables()));
  shuffle_.reserve(static_cast<size_t>(num_tables()));
  for (int t = 0; t < num_tables(); ++t) {
    const int64_t rows = config_.spec.table_rows[static_cast<size_t>(t)];
    zipf_.emplace_back(rows, config_.zipf_exponent);
    shuffle_.emplace_back(rows, setup.NextUInt64());
    table_weight_.push_back(setup.Normal(0.0, 1.0));
  }
  for (int64_t j = 0; j < config_.spec.num_dense; ++j) {
    dense_weight_.push_back(setup.Normal(0.0, 1.0));
  }
}

double SyntheticCriteo::TeacherValue(int table, int64_t row) const {
  TTREC_CHECK_INDEX(table >= 0 && table < num_tables(),
                    "TeacherValue: table out of range");
  TTREC_CHECK_INDEX(
      row >= 0 && row < config_.spec.table_rows[static_cast<size_t>(table)],
      "TeacherValue: row out of range");
  const uint64_t h = Mix64(
      config_.seed ^ Mix64((static_cast<uint64_t>(table) * 0x9E3779B9ull) ^
                           (static_cast<uint64_t>(row) + 0x7F4A7C15ull)));
  // Map to [-1, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;
}

double SyntheticCriteo::TeacherLogit(
    const std::vector<int64_t>& rows_per_table, const float* dense) const {
  TTREC_CHECK_SHAPE(static_cast<int>(rows_per_table.size()) == num_tables(),
                    "TeacherLogit: need one row per table");
  double acc = 0.0;
  for (int t = 0; t < num_tables(); ++t) {
    acc += table_weight_[static_cast<size_t>(t)] *
           TeacherValue(t, rows_per_table[static_cast<size_t>(t)]);
  }
  for (int64_t j = 0; j < config_.spec.num_dense; ++j) {
    acc += dense_weight_[static_cast<size_t>(j)] * dense[j];
  }
  const double norm = std::sqrt(
      static_cast<double>(num_tables() + config_.spec.num_dense));
  return config_.teacher_scale * acc / norm;
}

MiniBatch SyntheticCriteo::Generate(int64_t batch_size, Rng& rng) const {
  TTREC_CHECK_CONFIG(batch_size >= 1, "batch size must be >= 1");
  const int T = num_tables();
  const int64_t nd = config_.spec.num_dense;
  const int64_t P = config_.pooling_factor;

  MiniBatch batch;
  batch.dense = Tensor({batch_size, nd});
  batch.labels.resize(static_cast<size_t>(batch_size));
  batch.sparse.resize(static_cast<size_t>(T));
  for (int t = 0; t < T; ++t) {
    CsrBatch& cb = batch.sparse[static_cast<size_t>(t)];
    cb.indices.reserve(static_cast<size_t>(batch_size * P));
    cb.offsets.reserve(static_cast<size_t>(batch_size) + 1);
    cb.offsets.push_back(0);
  }

  std::vector<int64_t> first_rows(static_cast<size_t>(T));
  for (int64_t b = 0; b < batch_size; ++b) {
    float* dense_row = batch.dense.data() + b * nd;
    for (int64_t j = 0; j < nd; ++j) {
      dense_row[j] = static_cast<float>(rng.Normal(0.0, 1.0));
    }
    for (int t = 0; t < T; ++t) {
      CsrBatch& cb = batch.sparse[static_cast<size_t>(t)];
      for (int64_t p = 0; p < P; ++p) {
        const int64_t rank = zipf_[static_cast<size_t>(t)].Sample(rng);
        const int64_t row = shuffle_[static_cast<size_t>(t)].Map(rank);
        if (p == 0) first_rows[static_cast<size_t>(t)] = row;
        cb.indices.push_back(row);
      }
      cb.offsets.push_back(static_cast<int64_t>(cb.indices.size()));
    }
    // Label from the first lookup of each bag (the teacher models the
    // dominant feature; additional pooled lookups act as structured noise).
    const double logit = TeacherLogit(first_rows, dense_row);
    const double p_click = 1.0 / (1.0 + std::exp(-logit));
    bool y = rng.Bernoulli(p_click);
    if (rng.Bernoulli(config_.label_flip_prob)) y = !y;
    batch.labels[static_cast<size_t>(b)] = y ? 1.0f : 0.0f;
  }
  return batch;
}

MiniBatch SyntheticCriteo::NextBatch(int64_t batch_size) {
  return Generate(batch_size, train_rng_);
}

void SyntheticCriteo::SaveState(BinaryWriter& w) const {
  uint64_t s[4];
  train_rng_.GetState(s);
  for (uint64_t word : s) w.WriteI64(static_cast<int64_t>(word));
}

void SyntheticCriteo::LoadState(BinaryReader& r) {
  uint64_t s[4];
  for (uint64_t& word : s) word = static_cast<uint64_t>(r.ReadI64());
  train_rng_.SetState(s);
}

MiniBatch SyntheticCriteo::EvalBatch(int64_t batch_size,
                                     uint64_t eval_seed) const {
  Rng rng(Mix64(config_.seed ^ (eval_seed * 0x5851F42D4C957F2Dull)) |
          1ull);
  return Generate(batch_size, rng);
}

}  // namespace ttrec
