// BatchSource: the one contract every batch producer speaks.
//
// The trainer used to be hard-wired to SyntheticCriteo&. That worked until
// there were three producers — the synthetic Criteo stream, the skew-shift
// scenario, and recorded-trace replay — and a pipelined trainer that needs
// a single point to look ahead in (dlrm/train_stages.h). BatchSource is
// that point: a stateful training stream (NextBatch), a deterministic
// held-out stream (EvalBatch), and a serializable cursor (SaveState /
// LoadState) so checkpoint-resume replays the exact batches an
// uninterrupted run would have produced.
//
// Contract:
//  - NextBatch advances the stream; two sources constructed identically
//    and stepped identically produce bitwise-identical batches. Generation
//    must not depend on model or cache state (the lookahead stage may call
//    it K batches early, possibly from its own thread — but never
//    concurrently with other calls on the same source).
//  - EvalBatch is const and derived from `eval_seed` only: calling it any
//    number of times, at any point, never perturbs the training stream.
//  - SaveState/LoadState (de)serialize the training cursor only. The
//    restoring process constructs the source with the same config; the
//    payload is whatever the source needs to resume the stream exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/tensor.h"

namespace ttrec {

class BinaryWriter;
class BinaryReader;

/// One minibatch: dense features, per-table index bags, labels in {0,1}.
struct MiniBatch {
  Tensor dense;                  // batch x num_dense
  std::vector<CsrBatch> sparse;  // one CsrBatch per table, batch bags each
  std::vector<float> labels;     // batch
  int64_t batch_size() const { return static_cast<int64_t>(labels.size()); }
};

class BatchSource {
 public:
  virtual ~BatchSource() = default;

  virtual int num_tables() const = 0;

  /// Generates the next training minibatch (stateful stream).
  virtual MiniBatch NextBatch(int64_t batch_size) = 0;

  /// Generates a held-out evaluation batch; deterministic per `eval_seed`,
  /// disjoint from (and side-effect-free on) the training stream.
  virtual MiniBatch EvalBatch(int64_t batch_size,
                              uint64_t eval_seed = 1) const = 0;

  /// Serializes / restores the training-stream cursor (see the contract
  /// above). Used by dlrm/checkpoint.h to make resumed runs replay the
  /// exact batch stream.
  virtual void SaveState(BinaryWriter& w) const = 0;
  virtual void LoadState(BinaryReader& r) = 0;
};

/// Replays a pre-recorded sequence of minibatches — the third producer the
/// trainer understands, and the bridge from captured production traffic (or
/// any other source, via Record) back into training. The cursor is the
/// position in the recorded train sequence; Save/Load persist it, so a
/// resumed replay continues mid-trace.
class TraceReplaySource : public BatchSource {
 public:
  /// `train` is replayed by NextBatch in order; when `loop` is true the
  /// cursor wraps, otherwise running past the end throws ConfigError.
  /// `eval` backs EvalBatch (indexed by eval_seed); it may be empty if the
  /// consumer never evaluates.
  TraceReplaySource(std::vector<MiniBatch> train, std::vector<MiniBatch> eval,
                    bool loop = true);

  /// Records `train_batches` + `eval_batches` batches from `source` into a
  /// replayable trace. Advances `source`'s training stream.
  static TraceReplaySource Record(BatchSource& source, int64_t train_batches,
                                  int64_t train_batch_size,
                                  int64_t eval_batches,
                                  int64_t eval_batch_size);

  int num_tables() const override;
  /// Returns the next recorded batch. `batch_size` must match the recorded
  /// batch's size — a mismatch means the consumer config disagrees with the
  /// trace and throws ConfigError rather than silently truncating.
  MiniBatch NextBatch(int64_t batch_size) override;
  MiniBatch EvalBatch(int64_t batch_size, uint64_t eval_seed) const override;
  void SaveState(BinaryWriter& w) const override;
  void LoadState(BinaryReader& r) override;

  int64_t cursor() const { return cursor_; }
  int64_t train_size() const { return static_cast<int64_t>(train_.size()); }

 private:
  std::vector<MiniBatch> train_;
  std::vector<MiniBatch> eval_;
  bool loop_;
  int64_t cursor_ = 0;
};

}  // namespace ttrec
