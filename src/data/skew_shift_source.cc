#include "data/skew_shift_source.h"

#include <cmath>
#include <utility>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

SkewShiftBatchSource::SkewShiftBatchSource(SkewShiftSourceConfig config)
    : config_(std::move(config)),
      scenario_(config_.scenario),
      label_rng_(Mix64(config_.scenario.seed ^ 0x1ABE15ull)) {
  TTREC_CHECK_CONFIG(config_.num_dense >= 1,
                     "SkewShiftBatchSource: num_dense must be >= 1");
  TTREC_CHECK_CONFIG(
      config_.label_flip_prob >= 0.0 && config_.label_flip_prob <= 0.5,
      "SkewShiftBatchSource: label flip probability must be in [0, 0.5]");
  Rng setup(Mix64(config_.scenario.seed ^ 0x7EAC4Eull));
  for (int t = 0; t < scenario_.num_tables(); ++t) {
    table_weight_.push_back(setup.Normal(0.0, 1.0));
  }
  for (int64_t j = 0; j < config_.num_dense; ++j) {
    dense_weight_.push_back(setup.Normal(0.0, 1.0));
  }
}

double SkewShiftBatchSource::TeacherValue(int table, int64_t row) const {
  TTREC_CHECK_INDEX(table >= 0 && table < num_tables(),
                    "TeacherValue: table out of range");
  const uint64_t h = Mix64(
      config_.scenario.seed ^
      Mix64((static_cast<uint64_t>(table) * 0x9E3779B9ull) ^
            (static_cast<uint64_t>(row) + 0x7F4A7C15ull)));
  return static_cast<double>(h >> 11) * 0x1.0p-52 - 1.0;  // [-1, 1)
}

MiniBatch SkewShiftBatchSource::Assemble(int64_t batch_size,
                                         SkewShiftScenario& scenario,
                                         Rng& label_rng) const {
  TTREC_CHECK_CONFIG(batch_size >= 1, "batch size must be >= 1");
  const int T = num_tables();
  const int64_t nd = config_.num_dense;

  MiniBatch batch;
  batch.dense = Tensor({batch_size, nd});
  batch.labels.resize(static_cast<size_t>(batch_size));
  batch.sparse.resize(static_cast<size_t>(T));
  for (int t = 0; t < T; ++t) {
    batch.sparse[static_cast<size_t>(t)].offsets.push_back(0);
  }

  const double norm =
      std::sqrt(static_cast<double>(T) + static_cast<double>(nd));
  for (int64_t b = 0; b < batch_size; ++b) {
    float* dense_row = batch.dense.data() + b * batch.dense.dim(1);
    for (int64_t j = 0; j < nd; ++j) {
      dense_row[j] = static_cast<float>(label_rng.Normal(0.0, 1.0));
    }
    // One scenario iteration = one sample: table t's bag is the scenario's
    // whole per-iteration lookup budget for that table, so phase rotations
    // land mid-batch exactly as they do in the cache benches.
    const std::vector<CsrBatch> bags = scenario.NextBatch();
    double logit = 0.0;
    for (int t = 0; t < T; ++t) {
      CsrBatch& cb = batch.sparse[static_cast<size_t>(t)];
      const CsrBatch& bag = bags[static_cast<size_t>(t)];
      cb.indices.insert(cb.indices.end(), bag.indices.begin(),
                        bag.indices.end());
      cb.offsets.push_back(static_cast<int64_t>(cb.indices.size()));
      // The teacher models the bag's first lookup (the dominant feature);
      // the rest of the bag acts as structured noise, as in SyntheticCriteo.
      logit += table_weight_[static_cast<size_t>(t)] *
               TeacherValue(t, bag.indices.front());
    }
    for (int64_t j = 0; j < nd; ++j) {
      logit += dense_weight_[static_cast<size_t>(j)] * dense_row[j];
    }
    logit = config_.teacher_scale * logit / norm;
    const double p_click = 1.0 / (1.0 + std::exp(-logit));
    bool y = label_rng.Bernoulli(p_click);
    if (label_rng.Bernoulli(config_.label_flip_prob)) y = !y;
    batch.labels[static_cast<size_t>(b)] = y ? 1.0f : 0.0f;
  }
  return batch;
}

MiniBatch SkewShiftBatchSource::NextBatch(int64_t batch_size) {
  return Assemble(batch_size, scenario_, label_rng_);
}

MiniBatch SkewShiftBatchSource::EvalBatch(int64_t batch_size,
                                          uint64_t eval_seed) const {
  // A fresh phase-0 scenario with a reseeded sampling stream: the rank->row
  // bijections match training's phase 0 (they derive from config.seed, not
  // the stream seed), but the drawn indices, dense features, and label coin
  // flips are an independent held-out stream.
  SkewShiftScenario scenario(config_.scenario);
  scenario.ReseedStream(
      Mix64(config_.scenario.seed ^ (eval_seed * 0x5851F42D4C957F2Dull)) |
      1ull);
  Rng label_rng(
      Mix64(config_.scenario.seed ^ 0xE7A1ull ^ (eval_seed << 17)) | 1ull);
  return Assemble(batch_size, scenario, label_rng);
}

void SkewShiftBatchSource::SaveState(BinaryWriter& w) const {
  scenario_.SaveState(w);
  uint64_t s[4];
  label_rng_.GetState(s);
  for (uint64_t word : s) w.WriteI64(static_cast<int64_t>(word));
}

void SkewShiftBatchSource::LoadState(BinaryReader& r) {
  scenario_.LoadState(r);
  uint64_t s[4];
  for (uint64_t& word : s) word = static_cast<uint64_t>(r.ReadI64());
  label_rng_.SetState(s);
}

}  // namespace ttrec
