// Synthetic Criteo-like click-log generator.
//
// Substitutes the real Kaggle/Terabyte datasets (see DESIGN.md §1): each
// sample has 13 dense features, 26 categorical features (one per table,
// pooling factor P >= 1 supported for the embedding-dominated workloads of
// paper §6.6), and a binary label. The three properties the paper's
// experiments depend on are reproduced:
//
//  1. Cardinalities: per-table row counts copied from DatasetSpec.
//  2. Skew: categorical indices are Zipf-distributed ranks scattered over
//     the table by a per-table bijection (Power-Law row access, §3.1/§4.2).
//  3. Learnability: labels come from a planted logistic "teacher" whose
//     per-row latent values are hash-derived (never stored), so models can
//     genuinely reduce loss and accuracy comparisons across init/rank
//     settings are meaningful.
#pragma once

#include <cstdint>
#include <vector>

#include "data/batch_source.h"
#include "data/csr_batch.h"
#include "data/table_specs.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ttrec {

struct SyntheticCriteoConfig {
  DatasetSpec spec;
  /// Zipf exponent of the categorical index distribution (production DLRM
  /// access skew is around 1.0-1.3).
  double zipf_exponent = 1.15;
  /// Average lookups per sample per table (paper's pooling factor P;
  /// Criteo itself is P = 1).
  int64_t pooling_factor = 1;
  /// Teacher signal strength; 0 gives pure-noise labels.
  double teacher_scale = 2.0;
  /// Label noise: probability of flipping the teacher's sampled label.
  double label_flip_prob = 0.02;
  uint64_t seed = 0xC0FFEE;
};

class SyntheticCriteo : public BatchSource {
 public:
  explicit SyntheticCriteo(SyntheticCriteoConfig config);

  const SyntheticCriteoConfig& config() const { return config_; }
  int num_tables() const override { return config_.spec.num_tables(); }

  /// Generates the next training minibatch (stateful stream).
  MiniBatch NextBatch(int64_t batch_size) override;

  /// Generates a held-out evaluation batch; deterministic per `eval_seed`,
  /// disjoint stream from training.
  MiniBatch EvalBatch(int64_t batch_size, uint64_t eval_seed = 1) const override;

  /// The teacher's latent value for (table, row) in [-1, 1]; exposed for
  /// tests. Hash-derived, O(1), no storage.
  double TeacherValue(int table, int64_t row) const;

  /// Teacher logit for a full sample (used by tests to verify labels are
  /// learnable, and by the generator itself).
  double TeacherLogit(const std::vector<int64_t>& rows_per_table,
                      const float* dense) const;

  /// Serializes / restores the training-stream cursor (the train RNG
  /// state), so a resumed run replays exactly the batches an uninterrupted
  /// run would have produced. The dataset config itself is not persisted —
  /// the restoring process must construct the generator with the same
  /// SyntheticCriteoConfig.
  void SaveState(BinaryWriter& w) const override;
  void LoadState(BinaryReader& r) override;

 private:
  MiniBatch Generate(int64_t batch_size, Rng& rng) const;

  SyntheticCriteoConfig config_;
  std::vector<ZipfSampler> zipf_;
  std::vector<IndexShuffle> shuffle_;
  std::vector<double> table_weight_;  // teacher weight per table
  std::vector<double> dense_weight_;  // teacher weight per dense feature
  Rng train_rng_;
};

}  // namespace ttrec
