// Embedding-table cardinalities of the paper's two datasets.
//
// The 26 categorical features of Criteo Kaggle / Terabyte map to 26
// embedding tables (paper §5). The row counts below are the real dataset
// cardinalities (Kaggle: exact; Terabyte: the MLPerf-DLRM preprocessed
// cardinalities), which is what makes the compression-ratio experiments
// (Table 2, Figure 5) exact arithmetic rather than simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ttrec {

struct DatasetSpec {
  std::string name;
  int64_t num_dense = 13;
  std::vector<int64_t> table_rows;  // 26 entries

  int num_tables() const { return static_cast<int>(table_rows.size()); }

  /// Total embedding parameters at `emb_dim` (sum rows * dim).
  int64_t TotalEmbeddingParams(int64_t emb_dim) const;

  /// Indices of the `k` largest tables, descending by row count.
  std::vector<int> LargestTables(int k) const;

  /// Returns a copy with every table's rows divided by `factor`
  /// (minimum 4 rows) — the scale-down knob for single-core benchmarks.
  DatasetSpec Scaled(int64_t factor) const;
};

/// Criteo Kaggle Display Advertising Challenge (7 days, ~45M samples).
const DatasetSpec& KaggleSpec();

/// Criteo Terabyte Click Logs (24 days), MLPerf-DLRM preprocessing.
const DatasetSpec& TerabyteSpec();

/// The paper's Table 2 row factorizations for Kaggle's 7 largest tables
/// (row count -> hand-picked (m1, m2, m3)); used to regenerate Table 2
/// exactly. Tables not listed fall back to FactorizeRows.
std::vector<int64_t> PaperRowFactors(int64_t num_rows);

}  // namespace ttrec
