// Skew-shifted multi-table traffic scenario for cache-autotuning studies.
//
// The paper's cache evaluation (Fig 9/10) assumes a stable hot set and a
// fixed per-table skew, which is exactly the setting where any static
// capacity split looks fine. Production traffic is not that polite: tables
// trade popularity (a feature launches, a campaign ends) and each table's
// hot rows drift. This scenario manufactures the adversarial case a global
// cache autotuner must win: several tables of different sizes and Zipf
// exponents share one lookup stream, and at every phase boundary
//   1. the traffic shares rotate across tables (the heavy-traffic table
//      becomes a light one), and
//   2. every table's hot-set bijection is re-seeded (rank 0 lands on a
//      different row id), so old cached rows go cold.
// A static split sized for phase 0 strands capacity on the wrong tables in
// phase 1; an MRC-driven re-apportionment follows the traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/random.h"

namespace ttrec {

class BinaryWriter;
class BinaryReader;

struct SkewShiftTableConfig {
  int64_t rows = 0;
  /// Zipf exponent of this table's index stream.
  double zipf_exponent = 1.15;
  /// Relative share of the per-iteration lookup budget routed here during
  /// phase 0 (shares rotate by one table per phase boundary).
  double traffic_share = 1.0;
};

struct SkewShiftConfig {
  std::vector<SkewShiftTableConfig> tables;
  /// Total lookups per iteration, split across tables by the current
  /// traffic shares (each table always gets at least 1).
  int64_t lookups_per_iteration = 256;
  /// Iterations per phase; 0 = one endless phase (no shifts).
  int64_t phase_length = 0;
  uint64_t seed = 0x5EED;
};

class SkewShiftScenario {
 public:
  explicit SkewShiftScenario(SkewShiftConfig config);

  int num_tables() const { return static_cast<int>(config_.tables.size()); }
  const SkewShiftConfig& config() const { return config_; }
  int64_t iteration() const { return iteration_; }
  /// Phase index the NEXT NextBatch call draws from.
  int64_t phase() const;
  /// This table's lookups per iteration under the current rotation.
  int64_t LookupsFor(int table) const;

  /// Advances one iteration and returns one single-bag CsrBatch per table
  /// (LookupsFor(t) Zipf-distributed indices each), applying the phase
  /// rotation/reshuffle at boundaries.
  std::vector<CsrBatch> NextBatch();

  /// Replaces the sampling RNG without touching the phase machinery or the
  /// rank->row bijections (those stay functions of config.seed). Lets a
  /// held-out stream draw different indices from the *same* shuffled tables
  /// as training — the property an eval set needs.
  void ReseedStream(uint64_t seed) { rng_ = Rng(seed); }

  /// Serializes / restores the stream cursor (iteration counter + RNG).
  /// The phase rotation and shuffles are reconstructed from the config on
  /// load, so a restored scenario replays the exact iteration stream an
  /// uninterrupted one would have produced.
  void SaveState(BinaryWriter& w) const;
  void LoadState(BinaryReader& r);

 private:
  void EnterPhase(int64_t phase);

  SkewShiftConfig config_;
  std::vector<ZipfSampler> zipf_;
  std::vector<IndexShuffle> shuffle_;  // re-seeded per phase
  std::vector<int64_t> lookups_;      // per table, current rotation
  int64_t iteration_ = 0;
  int64_t current_phase_ = 0;
  Rng rng_;
};

}  // namespace ttrec
