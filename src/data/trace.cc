#include "data/trace.h"

#include <algorithm>
#include <unordered_set>

#include "tensor/check.h"

namespace ttrec {

TopKStabilityTracker::TopKStabilityTracker(int64_t k) : k_(k) {
  TTREC_CHECK_CONFIG(k >= 1, "TopKStabilityTracker: k must be >= 1");
}

void TopKStabilityTracker::Record(int64_t row) {
  ++counts_[row];
  ++total_;
}

std::vector<int64_t> TopKStabilityTracker::TopK() const {
  std::vector<std::pair<int64_t, int64_t>> items(counts_.begin(),
                                                 counts_.end());
  const size_t k = std::min(static_cast<size_t>(k_), items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<ptrdiff_t>(k),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  std::vector<int64_t> top;
  top.reserve(k);
  for (size_t i = 0; i < k; ++i) top.push_back(items[i].first);
  return top;
}

double TopKStabilityTracker::SnapshotChurn() {
  std::vector<int64_t> cur = TopK();
  double churn = 1.0;
  if (!prev_top_.empty()) {
    std::unordered_set<int64_t> prev_set(prev_top_.begin(), prev_top_.end());
    int64_t changed = 0;
    for (int64_t row : cur) {
      if (!prev_set.contains(row)) ++changed;
    }
    churn = cur.empty() ? 0.0
                        : static_cast<double>(changed) /
                              static_cast<double>(cur.size());
  }
  prev_top_ = std::move(cur);
  return churn;
}

std::vector<int64_t> ControlledHitRateTrace(
    int64_t num_rows, const std::vector<int64_t>& cached_rows,
    double hit_rate, int64_t length, Rng& rng) {
  TTREC_CHECK_CONFIG(hit_rate >= 0.0 && hit_rate <= 1.0,
                     "hit_rate must be in [0, 1]");
  TTREC_CHECK_CONFIG(num_rows >= 1, "num_rows must be >= 1");
  TTREC_CHECK_CONFIG(!cached_rows.empty() || hit_rate == 0.0,
                     "non-zero hit rate requires cached rows");
  TTREC_CHECK_CONFIG(static_cast<int64_t>(cached_rows.size()) < num_rows ||
                         hit_rate == 1.0,
                     "need non-cached rows to draw misses from");
  std::unordered_set<int64_t> cached_set(cached_rows.begin(),
                                         cached_rows.end());
  std::vector<int64_t> trace;
  trace.reserve(static_cast<size_t>(length));
  for (int64_t i = 0; i < length; ++i) {
    if (rng.Bernoulli(hit_rate)) {
      trace.push_back(
          cached_rows[static_cast<size_t>(rng.RandInt(
              static_cast<int64_t>(cached_rows.size())))]);
    } else {
      int64_t row;
      do {
        row = rng.RandInt(num_rows);
      } while (cached_set.contains(row));
      trace.push_back(row);
    }
  }
  return trace;
}

}  // namespace ttrec
