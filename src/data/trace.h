// Access-trace analysis utilities for the cache experiments.
//
// Figure 9 measures how stable the set of the most-frequently-accessed
// embedding rows is over training: cumulative access counts are snapshotted
// every few percent of progress and consecutive top-k sets are diffed.
// Figure 12 needs traces with a *controlled* cache hit rate. Both helpers
// live here.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tensor/random.h"

namespace ttrec {

/// Tracks cumulative access frequencies and reports the churn of the top-k
/// set between snapshots (the y-axis of paper Figure 9).
class TopKStabilityTracker {
 public:
  explicit TopKStabilityTracker(int64_t k);

  /// Records one access.
  void Record(int64_t row);

  /// Takes a snapshot of the current top-k set and returns the fraction of
  /// entries that differ from the previous snapshot's set (1.0 on the first
  /// snapshot; 0.0 when perfectly stable).
  double SnapshotChurn();

  /// Current top-k rows by cumulative count (ties broken by row id).
  std::vector<int64_t> TopK() const;

  int64_t total_accesses() const { return total_; }

 private:
  int64_t k_;
  int64_t total_ = 0;
  std::unordered_map<int64_t, int64_t> counts_;
  std::vector<int64_t> prev_top_;
};

/// Generates a lookup trace with an exact expected cache hit rate: each
/// index is drawn from `cached_rows` with probability `hit_rate`, otherwise
/// uniformly from the non-cached remainder of [0, num_rows). Used by the
/// Figure 12 crossover benchmark.
std::vector<int64_t> ControlledHitRateTrace(int64_t num_rows,
                                            const std::vector<int64_t>& cached_rows,
                                            double hit_rate, int64_t length,
                                            Rng& rng);

}  // namespace ttrec
