#include "data/batch_source.h"

#include <utility>

#include "tensor/check.h"
#include "tensor/serialize.h"

namespace ttrec {

TraceReplaySource::TraceReplaySource(std::vector<MiniBatch> train,
                                     std::vector<MiniBatch> eval, bool loop)
    : train_(std::move(train)), eval_(std::move(eval)), loop_(loop) {
  TTREC_CHECK_CONFIG(!train_.empty(),
                     "TraceReplaySource: need at least one recorded batch");
  const size_t tables = train_.front().sparse.size();
  TTREC_CHECK_CONFIG(tables > 0,
                     "TraceReplaySource: recorded batches have no tables");
  for (const MiniBatch& b : train_) {
    TTREC_CHECK_CONFIG(b.sparse.size() == tables,
                       "TraceReplaySource: inconsistent table count across "
                       "recorded batches (", b.sparse.size(), " vs ", tables,
                       ")");
  }
  for (const MiniBatch& b : eval_) {
    TTREC_CHECK_CONFIG(b.sparse.size() == tables,
                       "TraceReplaySource: eval batch table count ",
                       b.sparse.size(), " does not match trace (", tables,
                       ")");
  }
}

TraceReplaySource TraceReplaySource::Record(BatchSource& source,
                                            int64_t train_batches,
                                            int64_t train_batch_size,
                                            int64_t eval_batches,
                                            int64_t eval_batch_size) {
  TTREC_CHECK_CONFIG(train_batches >= 1,
                     "TraceReplaySource::Record: need >= 1 training batch");
  TTREC_CHECK_CONFIG(eval_batches >= 0,
                     "TraceReplaySource::Record: eval_batches must be >= 0");
  std::vector<MiniBatch> train;
  train.reserve(static_cast<size_t>(train_batches));
  for (int64_t i = 0; i < train_batches; ++i) {
    train.push_back(source.NextBatch(train_batch_size));
  }
  std::vector<MiniBatch> eval;
  eval.reserve(static_cast<size_t>(eval_batches));
  for (int64_t i = 0; i < eval_batches; ++i) {
    eval.push_back(
        source.EvalBatch(eval_batch_size, static_cast<uint64_t>(i + 1)));
  }
  return TraceReplaySource(std::move(train), std::move(eval));
}

int TraceReplaySource::num_tables() const {
  return static_cast<int>(train_.front().sparse.size());
}

MiniBatch TraceReplaySource::NextBatch(int64_t batch_size) {
  if (cursor_ >= static_cast<int64_t>(train_.size())) {
    TTREC_CHECK_CONFIG(loop_, "TraceReplaySource: trace exhausted after ",
                       train_.size(),
                       " batches (construct with loop=true to wrap)");
    cursor_ = 0;
  }
  const MiniBatch& rec = train_[static_cast<size_t>(cursor_)];
  TTREC_CHECK_CONFIG(rec.batch_size() == batch_size,
                     "TraceReplaySource: requested batch size ", batch_size,
                     " but batch ", cursor_, " was recorded with ",
                     rec.batch_size());
  ++cursor_;
  MiniBatch out;
  out.dense = rec.dense;
  out.sparse = rec.sparse;
  out.labels = rec.labels;
  return out;
}

MiniBatch TraceReplaySource::EvalBatch(int64_t /*batch_size*/,
                                       uint64_t eval_seed) const {
  TTREC_CHECK_CONFIG(!eval_.empty(),
                     "TraceReplaySource: no eval batches were recorded");
  // Record() stores the batch for eval_seed s at slot s-1 (MakeEvalSet uses
  // seeds 1..N), so seed s maps back to its own recording; other seeds wrap.
  const size_t n = eval_.size();
  const MiniBatch& rec =
      eval_[static_cast<size_t>((eval_seed + n - 1) % n)];
  MiniBatch out;
  out.dense = rec.dense;
  out.sparse = rec.sparse;
  out.labels = rec.labels;
  return out;
}

void TraceReplaySource::SaveState(BinaryWriter& w) const {
  w.WriteI64(cursor_);
}

void TraceReplaySource::LoadState(BinaryReader& r) {
  const int64_t cursor = r.ReadI64();
  TTREC_CHECK_CONFIG(
      cursor >= 0 && cursor <= static_cast<int64_t>(train_.size()),
      "TraceReplaySource::LoadState: cursor ", cursor,
      " outside recorded trace of ", train_.size(), " batches");
  cursor_ = cursor;
}

}  // namespace ttrec
