// BatchSource over the skew-shift scenario: full training minibatches
// (dense features, per-table bags, teacher-derived labels) whose categorical
// traffic rotates and reshuffles at phase boundaries.
//
// SkewShiftScenario produces raw per-iteration index bags for cache studies;
// this wrapper turns each scenario iteration into one *sample* — so a batch
// of B samples advances the scenario B iterations and phase boundaries land
// mid-stream exactly as they do in the cache benches. Labels come from the
// same planted hash-teacher construction as SyntheticCriteo (learnable,
// never stored), which makes the scenario usable end-to-end in TrainDlrm:
// the workload where lookahead prefetch must prove itself, because the hot
// set keeps moving.
#pragma once

#include <cstdint>

#include "data/batch_source.h"
#include "data/skew_shift.h"
#include "tensor/random.h"

namespace ttrec {

struct SkewShiftSourceConfig {
  SkewShiftConfig scenario;
  /// Dense features per sample (standard Criteo width is 13).
  int64_t num_dense = 13;
  /// Teacher signal strength; 0 gives pure-noise labels.
  double teacher_scale = 2.0;
  /// Label noise: probability of flipping the teacher's sampled label.
  double label_flip_prob = 0.02;
};

class SkewShiftBatchSource : public BatchSource {
 public:
  explicit SkewShiftBatchSource(SkewShiftSourceConfig config);

  const SkewShiftSourceConfig& config() const { return config_; }
  const SkewShiftScenario& scenario() const { return scenario_; }
  int num_tables() const override { return scenario_.num_tables(); }

  /// One sample per scenario iteration: table t's bag holds the scenario's
  /// LookupsFor(t) indices under the current phase rotation.
  MiniBatch NextBatch(int64_t batch_size) override;

  /// Held-out batch drawn from the phase-0 distribution through the same
  /// rank->row bijections as training phase 0; deterministic per eval_seed,
  /// no effect on the training stream.
  MiniBatch EvalBatch(int64_t batch_size, uint64_t eval_seed) const override;

  /// The teacher's latent value for (table, row) in [-1, 1]; hash-derived
  /// from the scenario seed, O(1), no storage.
  double TeacherValue(int table, int64_t row) const;

  void SaveState(BinaryWriter& w) const override;
  void LoadState(BinaryReader& r) override;

 private:
  MiniBatch Assemble(int64_t batch_size, SkewShiftScenario& scenario,
                     Rng& label_rng) const;

  SkewShiftSourceConfig config_;
  SkewShiftScenario scenario_;
  std::vector<double> table_weight_;  // teacher weight per table
  std::vector<double> dense_weight_;  // teacher weight per dense feature
  Rng label_rng_;
};

}  // namespace ttrec
