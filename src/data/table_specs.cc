#include "data/table_specs.h"

#include <algorithm>
#include <numeric>

#include "tensor/check.h"

namespace ttrec {

int64_t DatasetSpec::TotalEmbeddingParams(int64_t emb_dim) const {
  int64_t total = 0;
  for (int64_t rows : table_rows) total += rows * emb_dim;
  return total;
}

std::vector<int> DatasetSpec::LargestTables(int k) const {
  TTREC_CHECK_CONFIG(k >= 0 && k <= num_tables(),
                     "LargestTables: k out of range");
  std::vector<int> order(table_rows.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return table_rows[static_cast<size_t>(a)] >
           table_rows[static_cast<size_t>(b)];
  });
  order.resize(static_cast<size_t>(k));
  return order;
}

DatasetSpec DatasetSpec::Scaled(int64_t factor) const {
  TTREC_CHECK_CONFIG(factor >= 1, "scale factor must be >= 1");
  DatasetSpec out = *this;
  for (int64_t& rows : out.table_rows) {
    rows = std::max<int64_t>(4, rows / factor);
  }
  return out;
}

const DatasetSpec& KaggleSpec() {
  static const DatasetSpec spec = {
      "kaggle",
      13,
      {1460,    583,      10131227, 2202608, 305,  24,      12517,
       633,     3,        93145,    5683,    8351593, 3194, 27,
       14992,   5461306,  10,       5652,    2173, 4,       7046547,
       18,      15,       286181,   105,     142572}};
  return spec;
}

const DatasetSpec& TerabyteSpec() {
  // MLPerf-DLRM Terabyte preprocessing (max_ind_range = 40M).
  static const DatasetSpec spec = {
      "terabyte",
      13,
      {39884406, 39043,   17289,    7420,     20263,   3,        7120,
       1543,     63,      38532951, 2953546,  403346,  10,       2208,
       11938,    155,     4,        976,      14,      39979771, 25641295,
       39664984, 585935,  12972,    108,      36}};
  return spec;
}

std::vector<int64_t> PaperRowFactors(int64_t num_rows) {
  switch (num_rows) {
    case 10131227:
      return {200, 220, 250};
    case 8351593:
      return {200, 200, 209};
    case 7046547:
      return {200, 200, 200};
    case 5461306:
      return {166, 175, 188};
    case 2202608:
      return {125, 130, 136};
    case 286181:
      return {53, 72, 75};
    case 142572:
      return {50, 52, 55};
    default:
      return {};
  }
}

}  // namespace ttrec
