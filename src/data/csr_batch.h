// The lookup-batch format shared by every embedding operator in this repo.
//
// Matches the PyTorch EmbeddingBag / paper §4.1 convention: a batch of
// `num_bags` bags is described by `indices` (all row ids, concatenated) and
// `offsets` (size num_bags + 1; bag b covers indices[offsets[b] ..
// offsets[b+1])). `weights`, when non-empty, carries the per-sample weight
// alpha of Eq. (6); empty means all-ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/check.h"

namespace ttrec {

enum class PoolingMode : uint8_t { kSum, kMean };

/// What to do with an out-of-range row index in an embedding lookup.
/// Training wants hard failure (kThrow: a bad id is a data bug); serving
/// replicas often prefer to degrade gracefully (kClampToZero: the lookup
/// contributes a zero vector and the request still completes).
enum class IndexPolicy : uint8_t { kThrow, kClampToZero };

struct CsrBatch {
  std::vector<int64_t> indices;
  std::vector<int64_t> offsets;  // size num_bags + 1, offsets[0] == 0
  std::vector<float> weights;    // empty, or same size as indices

  int64_t num_bags() const {
    return offsets.empty() ? 0 : static_cast<int64_t>(offsets.size()) - 1;
  }
  int64_t num_lookups() const { return static_cast<int64_t>(indices.size()); }

  /// Validates offsets/weights consistency without looking at index values
  /// — what a serving frontend can check before it knows (or cares) which
  /// IndexPolicy the model applies. Throws ShapeError on violation.
  void ValidateStructure() const {
    TTREC_CHECK_SHAPE(!offsets.empty() && offsets.front() == 0,
                      "CsrBatch: offsets must start with 0");
    for (size_t i = 1; i < offsets.size(); ++i) {
      TTREC_CHECK_SHAPE(offsets[i] >= offsets[i - 1],
                        "CsrBatch: offsets must be non-decreasing");
    }
    TTREC_CHECK_SHAPE(offsets.back() == num_lookups(),
                      "CsrBatch: offsets must end at indices.size(), got ",
                      offsets.back(), " vs ", num_lookups());
    TTREC_CHECK_SHAPE(weights.empty() || weights.size() == indices.size(),
                      "CsrBatch: weights must be empty or match indices");
  }

  /// Validates internal consistency and that all indices are in
  /// [0, num_rows). Throws IndexError/ShapeError on violation.
  void Validate(int64_t num_rows) const {
    ValidateStructure();
    for (int64_t idx : indices) {
      TTREC_CHECK_INDEX(idx >= 0 && idx < num_rows, "CsrBatch: row index ",
                        idx, " out of range [0, ", num_rows, ")");
    }
  }

  /// Applies `policy` to every out-of-range index in this batch.
  ///  - kThrow: throws IndexError naming `table_name`, the offending row
  ///    id, and the valid range.
  ///  - kClampToZero: rewrites the lookup to contribute a zero vector
  ///    (index 0, weight 0) — bag structure is preserved, so sum and mean
  ///    pooling both see the lookup as absent.
  /// Returns the number of offending lookups.
  int64_t ApplyIndexPolicy(int64_t num_rows, IndexPolicy policy,
                           const std::string& table_name) {
    int64_t bad = 0;
    for (size_t i = 0; i < indices.size(); ++i) {
      const int64_t idx = indices[i];
      if (idx >= 0 && idx < num_rows) continue;
      TTREC_CHECK_INDEX(policy == IndexPolicy::kClampToZero, "table '",
                        table_name, "': row index ", idx,
                        " out of valid range [0, ", num_rows, ")");
      if (weights.empty()) weights.assign(indices.size(), 1.0f);
      indices[i] = 0;
      weights[i] = 0.0f;
      ++bad;
    }
    return bad;
  }

  /// Builds a single-lookup-per-bag batch (pooling factor 1, the Criteo
  /// case) from a plain index list.
  static CsrBatch FromIndices(std::vector<int64_t> idx) {
    CsrBatch b;
    b.offsets.resize(idx.size() + 1);
    for (size_t i = 0; i <= idx.size(); ++i) {
      b.offsets[i] = static_cast<int64_t>(i);
    }
    b.indices = std::move(idx);
    return b;
  }
};

}  // namespace ttrec
