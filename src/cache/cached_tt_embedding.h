// Hybrid embedding operator: TT-compressed table + LFU cache of hot rows
// (paper §4.2 and the multi-stage training process of Figure 4).
//
// Training starts with the TT cores only. During a warm-up window the
// open-addressing frequency tracker counts every index; every
// `refresh_interval` iterations the cache is repopulated with the top-K
// most-frequent rows, *materialized from the TT cores*. When the warm-up
// ends the cached set freezes (the paper observes the hot set is stable,
// Figure 9). From then on:
//   - cache hits read/update the uncompressed cached vector directly
//     (W' = W - lr * dL/dW), learning those rows *uncompressed*;
//   - misses go through the TT-EmbeddingBag forward/backward.
// Evicted rows discard their learned weights — folding them back into the
// TT cores would be streaming TT decomposition, which the paper explicitly
// leaves open.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "cache/freq_tracker.h"
#include "cache/lfu_cache.h"
#include "data/csr_batch.h"
#include "obs/metrics.h"
#include "tensor/serialize.h"
#include "tt/tt_embedding.h"

namespace ttrec {

struct CachedTtConfig {
  TtEmbeddingConfig tt;
  /// Cache capacity in rows. The paper finds 0.01% of the table sufficient
  /// (§6.5, Figure 10b).
  int64_t cache_capacity = 0;
  /// Forward iterations that constitute the warm-up window (e.g. 10% of
  /// training iterations, §6.5 / Figure 10a).
  int64_t warmup_iterations = 100;
  /// Cache repopulation cadence within the warm-up window, in iterations
  /// ("only every 100s to 1000s of iterations", §4.2).
  int64_t refresh_interval = 50;
  /// Keep counting frequencies after warm-up (costs a hash update per
  /// lookup; off by default since the frozen set no longer changes).
  bool track_after_warmup = false;
  /// Optional periodic re-warm-up (paper Fig 4: "one might consider
  /// updating the cache and repeat the warm up process periodically").
  /// Every `rewarm_period` iterations after the initial warm-up, the
  /// frequency counts are decayed (halved, favouring the current phase), a
  /// re-tracking window of warmup_iterations opens, and the cache is
  /// refreshed at its end. 0 disables (the paper's default: the hot set is
  /// stable, Fig 9).
  int64_t rewarm_period = 0;
};

class CachedTtEmbeddingBag {
 public:
  CachedTtEmbeddingBag(CachedTtConfig config, TtInit init, Rng& rng);

  int64_t num_rows() const { return tt_.num_rows(); }
  int64_t emb_dim() const { return tt_.emb_dim(); }
  const CachedTtConfig& config() const { return config_; }
  TtEmbeddingBag& tt() { return tt_; }
  const TtEmbeddingBag& tt() const { return tt_; }
  const LfuRowCache& cache() const { return cache_; }
  const FreqTracker& tracker() const { return tracker_; }
  int64_t iteration() const { return iteration_; }
  bool warmed_up() const { return iteration_ >= config_.warmup_iterations; }

  /// Pools the batch into output (num_bags x emb_dim). Advances the
  /// iteration counter and performs warm-up cache refreshes.
  void Forward(const CsrBatch& batch, float* output);

  /// Read-only serving forward: pools the batch like Forward but does NOT
  /// advance the iteration counter, track frequencies, or refresh the cache
  /// — the hot set stays exactly as the last (training-side) refresh left
  /// it.
  ///
  /// Thread-safety: safe for any number of concurrent callers, and produces
  /// output bitwise identical to Forward on a frozen cache (hits read
  /// through LfuRowCache::Find const, misses run the TT chain per lookup).
  /// Must not race with mutations (Forward, Backward, optimizer steps,
  /// RefreshCache, LoadState) — serve traffic and training steps on the
  /// same operator require external phasing.
  void ForwardInference(const CsrBatch& batch, float* output) const;

  /// Pools pre-fetched rows (one per lookup of `batch`, lookup order) with
  /// exactly ForwardInference's hit/miss split and accumulation order:
  /// misses Axpy first in lookup order, then cache hits fold on top. The
  /// indices must be the global row ids (the hit/miss split keys on them);
  /// the row data comes from `rows` — for hits those bytes equal the cached
  /// vector, for misses the TT-decoded row, so results are bitwise equal to
  /// a local ForwardInference. Const, safe for concurrent callers.
  void PoolPrefetchedRows(const CsrBatch& batch, const float* rows,
                          float* output) const;

  /// Accumulates gradients: cached rows into the cache's gradient slots,
  /// missed rows into the TT core gradients. Must be called with the same
  /// batch as the preceding Forward (standard autograd pairing) — the
  /// cache partition is recomputed and matches because refreshes only
  /// happen inside Forward.
  void Backward(const CsrBatch& batch, const float* grad_output);

  /// SGD on both the TT cores and the cached uncompressed rows.
  void ApplySgd(float lr);

  /// Adagrad on both the TT cores and the cached uncompressed rows.
  void ApplyAdagrad(float lr, float eps = 1e-8f);

  /// Discards pending gradients on both the TT cores and the cached rows.
  void ZeroGrad();

  /// Sum of squares over TT-core and cached-row gradients.
  double GradSqNorm() const;

  /// Scales TT-core and cached-row gradients (gradient clipping).
  void ScaleGrads(float scale);

  /// Serializes / restores Adagrad accumulators (TT cores + cached rows).
  void SaveOptState(BinaryWriter& w) const;
  void LoadOptState(BinaryReader& r);

  /// Forces a cache refresh from the current frequency counts (top-K rows
  /// materialized from the TT cores). Normally driven by Forward.
  void RefreshCache();

  /// Lookahead admission (BagPipe-style; the DeepRec add_to_prefetch_list
  /// shape): makes the given rows resident ahead of the batch that will
  /// touch them, so that batch's lookups hit instead of decoding TT chains.
  /// Rows already resident are left exactly as they are (learned values
  /// intact). Missing rows are materialized from the TT cores in one batch
  /// and admitted into free slots; when the cache is full, the coldest
  /// resident rows *not in `rows`* (by tracker count, ties on smaller row
  /// id — fully deterministic) are evicted to make room, never more than
  /// needed. Rows the victim scan cannot make room for are skipped. The
  /// tracker is NOT fed here — prefetch is a hint about the future, not an
  /// observed access. Returns the number of rows admitted.
  ///
  /// Determinism: given the same cache/tracker state and the same `rows`,
  /// the resulting resident set and values are identical — the pipelined
  /// trainer calls this at fixed schedule points on the compute thread, so
  /// results stay bitwise reproducible at any thread count.
  /// Must be called between steps (exclusive access, no pending gradients
  /// on the evicted rows' slots — in TrainDlrm that is any step boundary).
  /// Throws IndexError (before any mutation) if a row is out of range.
  int64_t PrefetchRows(std::span<const int64_t> rows);

  /// PrefetchRows calls / rows admitted / rows evicted to make room.
  int64_t prefetch_calls() const { return prefetch_calls_; }
  int64_t prefetch_inserts() const { return prefetch_inserts_; }
  int64_t prefetch_evictions() const { return prefetch_evictions_; }

  /// Changes the cache capacity in place — the CacheManager's global
  /// re-apportionment path. The new row set is the frequency tracker's
  /// top-`new_capacity` (falling back to the currently resident rows,
  /// hottest-first, when the tracker is empty — e.g. frozen post-warm-up
  /// with track_after_warmup off). Rows that survive keep their *learned*
  /// uncompressed values (read via Peek, so stats stay honest); rows that
  /// are new to the set are materialized from the TT cores. Shrinking drops
  /// the coldest rows (counted as evictions). Adagrad state for the cached
  /// rows is reset at the new size — checkpoints of optimizer state pair
  /// with a same-capacity construction. No-op when new_capacity matches.
  void ResizeCache(int64_t new_capacity);

  /// ResizeCache calls that actually changed the capacity.
  int64_t resizes() const { return resizes_; }

  /// Serializes TT cores + cached rows/values + the iteration counter.
  /// Frequency counts are NOT persisted: after a load inside the warm-up
  /// window the tracker rebuilds; after warm-up the restored cache set is
  /// already frozen, matching Fig 4 semantics.
  void SaveState(BinaryWriter& w) const;
  void LoadState(BinaryReader& r);

  /// Fraction of lookups served from the cache since the last ResetStats.
  double HitRate() const { return cache_.HitRate(); }
  void ResetStats() { cache_.ResetStats(); }

  /// Cache refreshes performed (warm-up cadence + final freeze + re-warms).
  int64_t refreshes() const { return refreshes_; }

  /// Adds cache and TT statistics into `reg` under the shared names
  /// (cache.hits / cache.misses / cache.evictions / cache.refreshes /
  /// cache.decay_rebuilds / cache.resizes, tt.* — see TtEmbeddingStats) so
  /// totals across several cached tables sum naturally in one registry.
  /// Collection is idempotent per registry: repeated calls publish only the
  /// delta since this operator's last collection into that registry, so a
  /// long-lived registry stays exact, while a fresh registry (the serving
  /// snapshot pattern) receives the full cumulative totals.
  void CollectStats(obs::MetricRegistry& reg) const;

  /// Parameter memory: TT cores + cache storage.
  int64_t MemoryBytes() const {
    return tt_.MemoryBytes() + cache_.MemoryBytes();
  }

  /// Peak transient kernel memory of the miss path — the block-parallel TT
  /// workspace (see TtEmbeddingBag::WorkspaceBytes). The hit path reads
  /// cached rows in place and allocates nothing beyond the reusable hit
  /// scratch.
  int64_t WorkspaceBytes(int num_threads = 0) const {
    return tt_.WorkspaceBytes(num_threads);
  }

 private:
  /// Splits `batch` into cache hits (applied immediately via `on_hit`) and
  /// a TT sub-batch carrying explicit per-lookup weights. Const (and safe
  /// for concurrent callers): only reads the cache through Find const.
  template <typename OnHit>
  CsrBatch Partition(const CsrBatch& batch, OnHit&& on_hit) const;

  struct CacheHit {
    int64_t bag;
    float weight;
    const float* vec;
  };

  CachedTtConfig config_;
  TtEmbeddingBag tt_;
  LfuRowCache cache_;
  FreqTracker tracker_;
  int64_t iteration_ = 0;
  int64_t rewarm_until_ = -1;  // end of the current re-warm window
  int64_t refreshes_ = 0;
  int64_t resizes_ = 0;
  int64_t prefetch_calls_ = 0;
  int64_t prefetch_inserts_ = 0;
  int64_t prefetch_evictions_ = 0;
  obs::StatPublisher stats_publisher_;
  std::vector<CacheHit> hit_scratch_;
};

}  // namespace ttrec
