// Open-addressing frequency hash table (paper §4.2: "In order to track the
// frequencies of all the existing indices, an open addressing hash table is
// used").
//
// Linear probing over a power-of-two table of (key, count) slots; grows at
// 70% load. Keys are embedding row ids (non-negative int64).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ttrec {

class FreqTracker {
 public:
  /// `initial_capacity` is rounded up to a power of two (min 16).
  explicit FreqTracker(int64_t initial_capacity = 1024);

  /// Adds `delta` to the count of `key` (key must be >= 0). Negative
  /// deltas are allowed (count corrections from untrusted cadence config,
  /// e.g. an MRC profiler unwinding a speculative window) but throw
  /// ConfigError when the resulting count would go negative — the key's
  /// count is left unchanged. A key decremented to exactly 0 stays in the
  /// table with count 0 until the next Decay() or Clear() drops it.
  void Increment(int64_t key, int64_t delta = 1);

  /// Current count of `key` (0 if never seen).
  int64_t Count(int64_t key) const;

  /// Number of distinct keys.
  int64_t size() const { return size_; }

  /// Total increments across all keys.
  int64_t total() const { return total_; }

  /// The k most frequent keys, descending by count (ties: smaller key
  /// first). k is clamped to size().
  std::vector<int64_t> TopK(int64_t k) const;

  /// All (key, count) pairs in unspecified order.
  std::vector<std::pair<int64_t, int64_t>> Items() const;

  /// Drops all counts.
  void Clear();

  /// Multiplies every count by `factor` in [0, 1) — exponential decay for
  /// phase-adaptive tracking. The table is rebuilt in place and keys whose
  /// count rounds to zero are dropped (size() shrinks), so repeated decay
  /// cycles never ratchet the load factor over dead slots.
  void Decay(double factor);

  /// Decay() calls so far (each one rebuilds the table).
  int64_t decay_rebuilds() const { return decay_rebuilds_; }

 private:
  struct Slot {
    int64_t key = kEmpty;
    int64_t count = 0;
  };
  static constexpr int64_t kEmpty = -1;

  size_t ProbeFor(int64_t key) const;
  void Grow();

  std::vector<Slot> slots_;
  int64_t size_ = 0;
  int64_t total_ = 0;
  int64_t decay_rebuilds_ = 0;
};

}  // namespace ttrec
