#include "cache/lfu_cache.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "tensor/check.h"

namespace ttrec {

namespace {

uint64_t HashKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ull;
  z ^= z >> 29;
  z *= 0xbf58476d1ce4e5b9ull;
  return z ^ (z >> 32);
}

}  // namespace

LfuRowCache::LfuRowCache(int64_t capacity, int64_t emb_dim)
    : capacity_(capacity), emb_dim_(emb_dim) {
  TTREC_CHECK_CONFIG(capacity >= 1, "LfuRowCache: capacity must be >= 1");
  TTREC_CHECK_CONFIG(emb_dim >= 1, "LfuRowCache: emb_dim must be >= 1");
  values_.resize(static_cast<size_t>(capacity * emb_dim), 0.0f);
  grads_.resize(static_cast<size_t>(capacity * emb_dim), 0.0f);
  const uint64_t map_cap =
      std::bit_ceil(static_cast<uint64_t>(std::max<int64_t>(16, 2 * capacity)));
  map_keys_.assign(static_cast<size_t>(map_cap), -1);
  map_slots_.assign(static_cast<size_t>(map_cap), -1);
}

int64_t LfuRowCache::SlotOf(int64_t row) const {
  const size_t mask = map_keys_.size() - 1;
  size_t i = static_cast<size_t>(HashKey(row)) & mask;
  while (map_keys_[i] != -1) {
    if (map_keys_[i] == row) return map_slots_[i];
    i = (i + 1) & mask;
  }
  return -1;
}

float* LfuRowCache::Find(int64_t row) {
  const int64_t slot = SlotOf(row);
  if (slot < 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return values_.data() + slot * emb_dim_;
}

const float* LfuRowCache::Find(int64_t row) const {
  const int64_t slot = SlotOf(row);
  if (slot < 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return values_.data() + slot * emb_dim_;
}

const float* LfuRowCache::Peek(int64_t row) const {
  const int64_t slot = SlotOf(row);
  return slot < 0 ? nullptr : values_.data() + slot * emb_dim_;
}

float* LfuRowCache::GradFor(int64_t row) {
  const int64_t slot = SlotOf(row);
  return slot < 0 ? nullptr : grads_.data() + slot * emb_dim_;
}

void LfuRowCache::PopulateImpl(int64_t new_capacity,
                               std::span<const int64_t> rows,
                               const float* values) {
  // Refuse oversized row sets outright. Truncating here would zero the
  // hit/miss stats as if the full hot set were resident while silently
  // serving a smaller one — a capacity-planning bug that surfaces only as
  // mysteriously low hit rates.
  TTREC_CHECK_CONFIG(
      rows.size() <= static_cast<size_t>(new_capacity),
      "LfuRowCache::Populate: ", rows.size(), " rows exceed capacity ",
      new_capacity, "; pass at most `capacity()` rows");
  // Build the replacement id map first: every validation failure (negative
  // id, duplicate id) throws before a single member is touched, so the
  // previous contents stay fully servable. Duplicates used to be detected
  // only mid-rebuild, after rows/values were already overwritten — the
  // caller caught ConfigError against a cache whose map was half-built and
  // whose duplicate rows burned slots.
  const uint64_t map_cap = std::bit_ceil(
      static_cast<uint64_t>(std::max<int64_t>(16, 2 * new_capacity)));
  std::vector<int64_t> new_keys(static_cast<size_t>(map_cap), -1);
  std::vector<int64_t> new_slots(static_cast<size_t>(map_cap), -1);
  const size_t mask = static_cast<size_t>(map_cap) - 1;
  for (size_t slot = 0; slot < rows.size(); ++slot) {
    const int64_t row = rows[slot];
    TTREC_CHECK_INDEX(row >= 0, "LfuRowCache: negative row id ", row);
    size_t i = static_cast<size_t>(HashKey(row)) & mask;
    while (new_keys[i] != -1) {
      // Duplicate row ids would silently shadow each other in the map.
      TTREC_CHECK_CONFIG(new_keys[i] != row,
                         "LfuRowCache::Populate: duplicate row id ", row);
      i = (i + 1) & mask;
    }
    new_keys[i] = row;
    new_slots[i] = static_cast<int64_t>(slot);
  }

  // Commit.
  const size_t n = rows.size();
  std::vector<int64_t> previous = std::move(rows_);
  rows_.assign(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(n));
  if (new_capacity != capacity_) {
    capacity_ = new_capacity;
    values_.assign(static_cast<size_t>(new_capacity * emb_dim_), 0.0f);
    grads_.assign(static_cast<size_t>(new_capacity * emb_dim_), 0.0f);
    if (!adagrad_.empty()) adagrad_.assign(values_.size(), 0.0f);
  } else {
    std::fill(grads_.begin(), grads_.end(), 0.0f);
    std::fill(adagrad_.begin(), adagrad_.end(), 0.0f);
  }
  std::memcpy(values_.data(), values, n * static_cast<size_t>(emb_dim_) *
                                           sizeof(float));
  map_keys_ = std::move(new_keys);
  map_slots_ = std::move(new_slots);
  // Count the rows that did not survive the repopulation — their learned
  // weights are gone (the streaming-decomposition gap the paper leaves
  // open), which is exactly what an operator watching `cache.evictions`
  // wants to see.
  for (const int64_t row : previous) {
    if (SlotOf(row) < 0) ++evictions_;
  }
  ++populates_;
}

void LfuRowCache::Populate(std::span<const int64_t> rows,
                           const float* values) {
  PopulateImpl(capacity_, rows, values);
}

void LfuRowCache::Insert(int64_t row, const float* value) {
  TTREC_CHECK_INDEX(row >= 0, "LfuRowCache::Insert: negative row id ", row);
  TTREC_CHECK_CONFIG(size() < capacity_,
                     "LfuRowCache::Insert: cache full (", capacity_,
                     " rows); Erase one first");
  TTREC_CHECK_CONFIG(SlotOf(row) < 0, "LfuRowCache::Insert: row ", row,
                     " already resident");
  const int64_t slot = static_cast<int64_t>(rows_.size());
  rows_.push_back(row);
  std::memcpy(values_.data() + slot * emb_dim_, value,
              static_cast<size_t>(emb_dim_) * sizeof(float));
  std::fill_n(grads_.data() + slot * emb_dim_, emb_dim_, 0.0f);
  if (!adagrad_.empty()) {
    std::fill_n(adagrad_.data() + slot * emb_dim_, emb_dim_, 0.0f);
  }
  const size_t mask = map_keys_.size() - 1;
  size_t i = static_cast<size_t>(HashKey(row)) & mask;
  while (map_keys_[i] != -1) i = (i + 1) & mask;
  map_keys_[i] = row;
  map_slots_[i] = slot;
}

void LfuRowCache::Erase(int64_t row) {
  const size_t mask = map_keys_.size() - 1;
  size_t i = static_cast<size_t>(HashKey(row)) & mask;
  while (map_keys_[i] != row) {
    TTREC_CHECK_CONFIG(map_keys_[i] != -1, "LfuRowCache::Erase: row ", row,
                       " not resident");
    i = (i + 1) & mask;
  }
  const int64_t slot = map_slots_[i];
  const int64_t last = static_cast<int64_t>(rows_.size()) - 1;

  // Backward-shift deletion (Knuth 6.4R): refill the hole so linear
  // probing never crosses a tombstone — the map stays tombstone-free, which
  // SlotOf's termination condition (first empty cell) depends on.
  size_t hole = i;
  size_t j = i;
  while (true) {
    map_keys_[hole] = -1;
    map_slots_[hole] = -1;
    while (true) {
      j = (j + 1) & mask;
      if (map_keys_[j] == -1) goto map_done;
      const size_t ideal = static_cast<size_t>(HashKey(map_keys_[j])) & mask;
      // Move j's entry back iff the hole lies cyclically within
      // [ideal, j) — i.e. the probe from its ideal cell would hit the hole
      // before reaching j.
      const bool hole_in_range = hole <= j ? (ideal <= hole || ideal > j)
                                           : (ideal <= hole && ideal > j);
      if (hole_in_range) break;
    }
    map_keys_[hole] = map_keys_[j];
    map_slots_[hole] = map_slots_[j];
    hole = j;
  }
map_done:

  // Compact the slot arrays: move the last slot's row into the vacated
  // slot (carrying its value, gradient, and Adagrad state), then shrink.
  if (slot != last) {
    const int64_t moved_row = rows_[static_cast<size_t>(last)];
    rows_[static_cast<size_t>(slot)] = moved_row;
    std::memcpy(values_.data() + slot * emb_dim_,
                values_.data() + last * emb_dim_,
                static_cast<size_t>(emb_dim_) * sizeof(float));
    std::memcpy(grads_.data() + slot * emb_dim_,
                grads_.data() + last * emb_dim_,
                static_cast<size_t>(emb_dim_) * sizeof(float));
    if (!adagrad_.empty()) {
      std::memcpy(adagrad_.data() + slot * emb_dim_,
                  adagrad_.data() + last * emb_dim_,
                  static_cast<size_t>(emb_dim_) * sizeof(float));
    }
    size_t m = static_cast<size_t>(HashKey(moved_row)) & mask;
    while (map_keys_[m] != moved_row) m = (m + 1) & mask;
    map_slots_[m] = slot;
  }
  rows_.pop_back();
  ++evictions_;
}

void LfuRowCache::Resize(int64_t new_capacity, std::span<const int64_t> rows,
                         const float* values) {
  TTREC_CHECK_CONFIG(new_capacity >= 1,
                     "LfuRowCache::Resize: capacity must be >= 1");
  PopulateImpl(new_capacity, rows, values);
}

void LfuRowCache::ApplyAdagrad(float lr, float eps) {
  TTREC_CHECK_CONFIG(eps > 0.0f, "ApplyAdagrad: eps must be positive");
  if (adagrad_.empty()) {
    adagrad_.assign(values_.size(), 0.0f);
  }
  const size_t used = rows_.size() * static_cast<size_t>(emb_dim_);
  for (size_t i = 0; i < used; ++i) {
    adagrad_[i] += grads_[i] * grads_[i];
    values_[i] -= lr * grads_[i] / (std::sqrt(adagrad_[i]) + eps);
    grads_[i] = 0.0f;
  }
}

void LfuRowCache::ApplySgd(float lr) {
  const size_t used = rows_.size() * static_cast<size_t>(emb_dim_);
  for (size_t i = 0; i < used; ++i) {
    values_[i] -= lr * grads_[i];
    grads_[i] = 0.0f;
  }
}

void LfuRowCache::ZeroGrads() {
  const size_t used = rows_.size() * static_cast<size_t>(emb_dim_);
  std::fill(grads_.begin(), grads_.begin() + static_cast<ptrdiff_t>(used),
            0.0f);
}

double LfuRowCache::GradSqNorm() const {
  const size_t used = rows_.size() * static_cast<size_t>(emb_dim_);
  double sq = 0.0;
  for (size_t i = 0; i < used; ++i) {
    sq += static_cast<double>(grads_[i]) * grads_[i];
  }
  return sq;
}

void LfuRowCache::ScaleGrads(float scale) {
  const size_t used = rows_.size() * static_cast<size_t>(emb_dim_);
  for (size_t i = 0; i < used; ++i) grads_[i] *= scale;
}

void LfuRowCache::SetAdagradState(std::vector<float> state) {
  TTREC_CHECK_CONFIG(state.empty() || state.size() == values_.size(),
                     "LfuRowCache::SetAdagradState: size mismatch (",
                     state.size(), " vs ", values_.size(), ")");
  adagrad_ = std::move(state);
}

int64_t LfuRowCache::MemoryBytes() const {
  return static_cast<int64_t>(values_.size() * sizeof(float) +
                              grads_.size() * sizeof(float) +
                              map_keys_.size() * sizeof(int64_t) +
                              map_slots_.size() * sizeof(int64_t) +
                              rows_.size() * sizeof(int64_t));
}

double LfuRowCache::HitRate() const {
  const int64_t h = hits();
  const int64_t total = h + misses();
  return total == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(total);
}

void LfuRowCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_ = 0;
  populates_ = 0;
}

}  // namespace ttrec
