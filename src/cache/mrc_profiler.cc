#include "cache/mrc_profiler.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "tensor/check.h"

namespace ttrec {

MissRatioCurve MissRatioCurve::FromCounts(std::vector<int64_t> counts,
                                          int num_points,
                                          int64_t max_capacity) {
  TTREC_CHECK_CONFIG(num_points >= 2,
                     "MissRatioCurve: num_points must be >= 2");
  TTREC_CHECK_CONFIG(max_capacity >= 1,
                     "MissRatioCurve: max_capacity must be >= 1");
  MissRatioCurve curve;
  std::sort(counts.begin(), counts.end(), std::greater<int64_t>());
  // Trailing zero counts carry no information (a key decremented to zero,
  // or a caller passing raw slot arrays) — drop them from the distinct-key
  // tally so saturation lands where the traffic actually ends.
  while (!counts.empty() && counts.back() <= 0) {
    TTREC_CHECK_CONFIG(counts.back() == 0,
                       "MissRatioCurve: negative access count ",
                       counts.back());
    counts.pop_back();
  }
  for (const int64_t c : counts) curve.total_accesses_ += c;
  curve.distinct_keys_ = static_cast<int64_t>(counts.size());
  if (counts.empty() || curve.total_accesses_ <= 0) return curve;

  // Geometric capacity grid from 1 to the saturation point (clamped to
  // max_capacity), always including both endpoints. The prefix-share curve
  // is concave, so chords between geometric samples under-estimate the true
  // hit rate by at most the gap across one ~(ratio)x step — a conservative
  // error the waterfiller can live with.
  const int64_t top =
      std::min<int64_t>(max_capacity, curve.distinct_keys_);
  std::vector<int64_t> grid;
  grid.reserve(static_cast<size_t>(num_points) + 1);
  const double ratio =
      top <= 1 ? 1.0
               : std::pow(static_cast<double>(top),
                          1.0 / static_cast<double>(num_points - 1));
  double c = 1.0;
  for (int i = 0; i < num_points; ++i) {
    const int64_t cap = std::min<int64_t>(
        top, static_cast<int64_t>(std::llround(std::ceil(c - 1e-9))));
    if (grid.empty() || cap > grid.back()) grid.push_back(cap);
    c *= ratio;
  }
  if (grid.back() < top) grid.push_back(top);

  // One pass over the sorted counts evaluates every grid point exactly.
  curve.points_.reserve(grid.size());
  int64_t prefix = 0;
  size_t next = 0;
  for (int64_t i = 0; i < top && next < grid.size(); ++i) {
    prefix += counts[static_cast<size_t>(i)];
    while (next < grid.size() && grid[next] == i + 1) {
      curve.points_.push_back(
          MrcPoint{i + 1, static_cast<double>(prefix) /
                              static_cast<double>(curve.total_accesses_)});
      ++next;
    }
  }
  return curve;
}

double MissRatioCurve::HitRateAt(int64_t capacity) const {
  if (points_.empty() || capacity <= 0) return 0.0;
  if (capacity >= points_.back().capacity) return points_.back().hit_rate;
  // Below the first grid point (capacity 1) the curve runs linearly from
  // the origin; between points, standard linear interpolation.
  const MrcPoint origin{0, 0.0};
  const MrcPoint* lo = &origin;
  for (const MrcPoint& p : points_) {
    if (p.capacity == capacity) return p.hit_rate;
    if (p.capacity > capacity) {
      const double span = static_cast<double>(p.capacity - lo->capacity);
      const double t = static_cast<double>(capacity - lo->capacity) / span;
      return lo->hit_rate + t * (p.hit_rate - lo->hit_rate);
    }
    lo = &p;
  }
  return points_.back().hit_rate;
}

MrcProfiler::MrcProfiler(MrcProfilerConfig config) : config_(config) {
  TTREC_CHECK_CONFIG(config_.num_points >= 2,
                     "MrcProfiler: num_points must be >= 2");
}

MissRatioCurve MrcProfiler::Profile(const FreqTracker& tracker,
                                    int64_t max_capacity) const {
  std::vector<int64_t> counts;
  counts.reserve(static_cast<size_t>(tracker.size()));
  for (const auto& [key, count] : tracker.Items()) counts.push_back(count);
  if (counts.empty()) return MissRatioCurve{};
  return MissRatioCurve::FromCounts(std::move(counts), config_.num_points,
                                    max_capacity);
}

}  // namespace ttrec
