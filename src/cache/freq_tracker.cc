#include "cache/freq_tracker.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "tensor/check.h"

namespace ttrec {

namespace {

uint64_t HashKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

FreqTracker::FreqTracker(int64_t initial_capacity) {
  TTREC_CHECK_CONFIG(initial_capacity >= 1,
                     "FreqTracker: capacity must be positive");
  const uint64_t cap = std::bit_ceil(
      static_cast<uint64_t>(std::max<int64_t>(16, initial_capacity)));
  slots_.assign(static_cast<size_t>(cap), Slot{});
}

size_t FreqTracker::ProbeFor(int64_t key) const {
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(HashKey(key)) & mask;
  while (slots_[i].key != kEmpty && slots_[i].key != key) {
    i = (i + 1) & mask;
  }
  return i;
}

void FreqTracker::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  for (const Slot& s : old) {
    if (s.key == kEmpty) continue;
    slots_[ProbeFor(s.key)] = s;
  }
}

void FreqTracker::Increment(int64_t key, int64_t delta) {
  TTREC_CHECK_INDEX(key >= 0, "FreqTracker: keys must be non-negative, got ",
                    key);
  const size_t i = ProbeFor(key);
  if (slots_[i].key == kEmpty) {
    TTREC_CHECK_CONFIG(delta >= 0, "FreqTracker: decrementing key ", key,
                       " by ", -delta,
                       " would make its count negative (count is 0)");
    slots_[i].key = key;
    ++size_;
    if (10 * size_ >= 7 * static_cast<int64_t>(slots_.size())) Grow();
    // Grow moved the slot; re-probe for the count update below.
    slots_[ProbeFor(key)].count += delta;
  } else {
    TTREC_CHECK_CONFIG(slots_[i].count + delta >= 0,
                       "FreqTracker: decrementing key ", key, " by ", -delta,
                       " would make its count negative (count is ",
                       slots_[i].count, ")");
    slots_[i].count += delta;
  }
  total_ += delta;
}

int64_t FreqTracker::Count(int64_t key) const {
  if (key < 0) return 0;
  const size_t i = ProbeFor(key);
  return slots_[i].key == key ? slots_[i].count : 0;
}

std::vector<int64_t> FreqTracker::TopK(int64_t k) const {
  std::vector<std::pair<int64_t, int64_t>> items = Items();
  const size_t kk = std::min(static_cast<size_t>(std::max<int64_t>(0, k)),
                             items.size());
  std::partial_sort(items.begin(), items.begin() + static_cast<ptrdiff_t>(kk),
                    items.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  std::vector<int64_t> top;
  top.reserve(kk);
  for (size_t i = 0; i < kk; ++i) top.push_back(items[i].first);
  return top;
}

std::vector<std::pair<int64_t, int64_t>> FreqTracker::Items() const {
  std::vector<std::pair<int64_t, int64_t>> items;
  items.reserve(static_cast<size_t>(size_));
  for (const Slot& s : slots_) {
    if (s.key != kEmpty) items.emplace_back(s.key, s.count);
  }
  return items;
}

void FreqTracker::Clear() {
  std::fill(slots_.begin(), slots_.end(), Slot{});
  size_ = 0;
  total_ = 0;
}

void FreqTracker::Decay(double factor) {
  TTREC_CHECK_CONFIG(factor >= 0.0 && factor < 1.0,
                     "FreqTracker: decay factor must be in [0, 1)");
  // Rebuild the table, dropping keys whose count decays to zero. Flooring
  // counts in place would leave dead slots occupied: size_ never shrinks,
  // the load factor ratchets upward across decay cycles, and Grow() ends up
  // doubling the table over tombstones that carry no information.
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size(), Slot{});
  size_ = 0;
  total_ = 0;
  for (const Slot& s : old) {
    if (s.key == kEmpty) continue;
    const int64_t decayed = static_cast<int64_t>(std::floor(
        static_cast<double>(s.count) * factor));
    if (decayed <= 0) continue;
    Slot& dst = slots_[ProbeFor(s.key)];
    dst.key = s.key;
    dst.count = decayed;
    ++size_;
    total_ += decayed;
  }
  ++decay_rebuilds_;
}

}  // namespace ttrec
