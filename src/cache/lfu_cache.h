// Fixed-capacity row cache storing uncompressed embedding vectors.
//
// This is the storage half of the paper's §4.2 cache: a slot array of
// `capacity` rows of `emb_dim` floats plus an open-addressing row-id -> slot
// map. Population is bulk ("semi-dynamic": the owner decides when to refresh
// from the frequency tracker); reads and in-place SGD updates are O(1).
// Eviction discards learned weights (paper: re-decomposing evicted rows into
// the TT cores would be streaming TT decomposition, an open problem).
//
// Thread-safety contract (the serving read path depends on this):
//  - `Find(int64_t) const` is safe to call from any number of concurrent
//    reader threads: the lookup touches only the immutable-between-Populate
//    slot map and values array, and the hit/miss statistics are relaxed
//    atomics. The returned pointer stays valid until the next Populate.
//  - Any mutation — Populate, ApplySgd/ApplyAdagrad, ZeroGrads, ScaleGrads,
//    SetAdagradState, writing through the non-const Find pointer — requires
//    exclusive access (no concurrent readers or writers). Training owns that
//    phase; serving only ever uses the const path on a frozen cache.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace ttrec {

class LfuRowCache {
 public:
  LfuRowCache(int64_t capacity, int64_t emb_dim);

  int64_t capacity() const { return capacity_; }
  int64_t emb_dim() const { return emb_dim_; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }

  /// Pointer to the cached vector for `row`, or nullptr on miss. The const
  /// overload is safe for concurrent readers (see the contract above); the
  /// non-const overload hands out a writable pointer and therefore belongs
  /// to the exclusive-access training phase.
  float* Find(int64_t row);
  const float* Find(int64_t row) const;

  /// Find without touching the hit/miss statistics — for control-plane
  /// reads (resize row carry-over, checkpointing) that must not skew
  /// HitRate(). Same concurrency contract as Find const.
  const float* Peek(int64_t row) const;

  /// Gradient accumulator slot paired with a cached row; nullptr on miss.
  float* GradFor(int64_t row);

  /// Replaces the cache contents with `rows` and their vectors from
  /// `values` (rows.size() x emb_dim). Throws ConfigError if rows.size()
  /// exceeds `capacity` — truncating would silently serve a smaller hot set
  /// while resetting stats as if fully populated — or if `rows` contains a
  /// duplicate or negative id. All validation happens before any state is
  /// touched: a throwing Populate leaves the previous contents fully
  /// servable. Gradients are zeroed. Previously cached rows keep nothing —
  /// eviction discards learned weights by design.
  void Populate(std::span<const int64_t> rows, const float* values);

  /// Incrementally admits one row with its vector (`emb_dim` floats) into a
  /// free slot — the lookahead-prefetch path, where repopulating the whole
  /// cache per plan would reset every resident row's gradients and Adagrad
  /// state. The new row's gradient (and Adagrad, when active) slot is
  /// zeroed; every other slot is untouched. Throws ConfigError when the
  /// cache is full or the row is already resident, IndexError on a negative
  /// id — all before any state changes. Exclusive-access phase only.
  void Insert(int64_t row, const float* value);

  /// Incrementally evicts one resident row, discarding its learned weights
  /// (counted in evictions()). Other rows keep values, gradients, and
  /// Adagrad state. Throws ConfigError when the row is not resident.
  /// Exclusive-access phase only.
  void Erase(int64_t row);

  /// Whether `row` is resident, without touching the hit/miss statistics.
  bool Contains(int64_t row) const { return SlotOf(row) >= 0; }

  /// Changes the capacity and atomically repopulates with `rows`/`values`
  /// (rows.size() <= new_capacity) — the CacheManager's re-apportionment
  /// path. Same validation-before-mutation contract as Populate.
  /// Hit/miss/eviction/populate statistics are preserved across the
  /// resize; previously resident rows absent from the new set count as
  /// evictions. Gradients and Adagrad state are reset at the new size.
  void Resize(int64_t new_capacity, std::span<const int64_t> rows,
              const float* values);

  /// Planning cost model: the bytes one capacity row costs at `emb_dim` —
  /// value + gradient vectors plus the 2x-provisioned id-map slots and the
  /// slot->row entry. MemoryBytes() of a populated cache tracks
  /// capacity * BytesPerRow(emb_dim) up to the map's power-of-two rounding.
  static int64_t BytesPerRow(int64_t emb_dim) {
    return static_cast<int64_t>(2 * static_cast<uint64_t>(emb_dim) *
                                sizeof(float)) +
           static_cast<int64_t>(5 * sizeof(int64_t));
  }

  /// Applies w -= lr * grad to every cached row and clears gradients.
  void ApplySgd(float lr);

  /// Elementwise Adagrad on the cached rows (state persists until the next
  /// Populate, which resets it along with the row set).
  void ApplyAdagrad(float lr, float eps = 1e-8f);

  /// Clears accumulated row gradients without applying them.
  void ZeroGrads();

  /// Sum of squares of all accumulated row gradients.
  double GradSqNorm() const;

  /// Scales all accumulated row gradients (gradient clipping).
  void ScaleGrads(float scale);

  /// Adagrad accumulator state, for checkpointing (empty when Adagrad has
  /// never run). SetAdagradState validates the size.
  const std::vector<float>& AdagradState() const { return adagrad_; }
  void SetAdagradState(std::vector<float> state);

  /// All currently cached row ids (unordered).
  std::vector<int64_t> CachedRows() const { return rows_; }

  /// Bytes for vectors + gradients + the id map.
  int64_t MemoryBytes() const;

  // Hit statistics (updated by Find; relaxed atomics so concurrent readers
  // can count without synchronizing).
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Rows dropped across all Populate() calls: previously resident rows
  /// absent from the new set (their learned weights are discarded).
  int64_t evictions() const { return evictions_; }
  /// Populate() calls so far.
  int64_t populates() const { return populates_; }
  double HitRate() const;
  void ResetStats();

 private:
  int64_t SlotOf(int64_t row) const;  // -1 if absent
  /// Shared Populate/Resize tail: validates, then commits the new capacity,
  /// row set, and id map in one shot.
  void PopulateImpl(int64_t new_capacity, std::span<const int64_t> rows,
                    const float* values);

  int64_t capacity_;
  int64_t emb_dim_;
  std::vector<int64_t> rows_;      // slot -> row id
  std::vector<float> values_;      // capacity x emb_dim
  std::vector<float> grads_;       // capacity x emb_dim
  std::vector<float> adagrad_;     // lazily sized capacity x emb_dim
  std::vector<int64_t> map_keys_;  // open addressing: row id or -1
  std::vector<int64_t> map_slots_;
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  // Mutated only inside Populate (exclusive by contract), so plain ints.
  int64_t evictions_ = 0;
  int64_t populates_ = 0;
};

}  // namespace ttrec
