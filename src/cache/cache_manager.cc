#include "cache/cache_manager.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <string>

#include "tensor/check.h"

namespace ttrec {

std::vector<int64_t> ApportionCacheRows(
    std::span<const CacheApportionInput> tables, int64_t budget_bytes,
    int64_t min_rows, int64_t chunk_rows) {
  TTREC_CHECK_CONFIG(min_rows >= 1, "ApportionCacheRows: min_rows must be "
                                    ">= 1 (LfuRowCache floor)");
  TTREC_CHECK_CONFIG(chunk_rows >= 0,
                     "ApportionCacheRows: chunk_rows must be >= 0");
  if (tables.empty()) return {};

  // Seed every table at the floor; the remainder is waterfilled.
  std::vector<int64_t> rows(tables.size(), 0);
  int64_t remaining = budget_bytes;
  int64_t min_bytes_per_row = std::numeric_limits<int64_t>::max();
  double total_traffic = 0.0;
  for (size_t t = 0; t < tables.size(); ++t) {
    TTREC_CHECK_CONFIG(tables[t].bytes_per_row >= 1,
                       "ApportionCacheRows: bytes_per_row must be >= 1");
    TTREC_CHECK_CONFIG(tables[t].max_rows >= min_rows,
                       "ApportionCacheRows: table ", t, " has max_rows ",
                       tables[t].max_rows, " below the floor ", min_rows);
    rows[t] = min_rows;
    remaining -= min_rows * tables[t].bytes_per_row;
    min_bytes_per_row = std::min(min_bytes_per_row, tables[t].bytes_per_row);
    total_traffic += static_cast<double>(tables[t].mrc.total_accesses());
  }
  TTREC_CHECK_CONFIG(remaining >= 0, "ApportionCacheRows: budget ",
                     budget_bytes, " bytes cannot cover the ", min_rows,
                     "-row floor for ", tables.size(), " tables");

  if (chunk_rows == 0) {
    chunk_rows = std::max<int64_t>(1, remaining / (min_bytes_per_row * 256));
  }

  // Greedy waterfilling: repeatedly hand one chunk of rows to the table
  // with the highest marginal traffic-weighted hit gain per byte. The MRC
  // prefix-share curves are concave, so each table's marginal gain is
  // nonincreasing and the stale-priority trick below (re-push and re-check
  // instead of decrease-key) keeps the heap honest.
  struct Candidate {
    double gain_per_byte;
    size_t table;
    int64_t at_rows;  // allocation the gain was computed at
  };
  const auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.gain_per_byte < b.gain_per_byte;
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)> heap(
      cmp);

  const auto marginal = [&](size_t t, int64_t at) -> Candidate {
    const CacheApportionInput& in = tables[t];
    const int64_t next = std::min(in.max_rows, at + chunk_rows);
    if (next <= at) return Candidate{-1.0, t, at};
    const double traffic =
        total_traffic > 0.0
            ? static_cast<double>(in.mrc.total_accesses()) / total_traffic
            : 0.0;
    const double gain =
        traffic * (in.mrc.HitRateAt(next) - in.mrc.HitRateAt(at));
    const double cost =
        static_cast<double>((next - at) * in.bytes_per_row);
    return Candidate{gain / cost, t, at};
  };

  for (size_t t = 0; t < tables.size(); ++t) {
    const Candidate c = marginal(t, rows[t]);
    if (c.gain_per_byte > 0.0) heap.push(c);
  }
  while (!heap.empty() && remaining >= min_bytes_per_row) {
    const Candidate c = heap.top();
    heap.pop();
    if (c.at_rows != rows[c.table]) continue;  // stale entry
    const CacheApportionInput& in = tables[c.table];
    int64_t step = std::min(in.max_rows - rows[c.table], chunk_rows);
    step = std::min(step, remaining / in.bytes_per_row);
    if (step <= 0) continue;
    rows[c.table] += step;
    remaining -= step * in.bytes_per_row;
    const Candidate next = marginal(c.table, rows[c.table]);
    if (next.gain_per_byte > 0.0) heap.push(next);
  }
  return rows;
}

CacheManager::CacheManager(CacheManagerConfig config)
    : config_(config),
      profiler_(MrcProfilerConfig{config.num_mrc_points}) {
  TTREC_CHECK_CONFIG(config_.budget_bytes >= 1,
                     "CacheManager: budget_bytes must be >= 1");
  TTREC_CHECK_CONFIG(config_.min_rows_per_table >= 1,
                     "CacheManager: min_rows_per_table must be >= 1");
  TTREC_CHECK_CONFIG(config_.chunk_rows >= 0,
                     "CacheManager: chunk_rows must be >= 0");
}

void CacheManager::RegisterTable(int table_id, CachedTtEmbeddingBag* bag) {
  TTREC_CHECK_CONFIG(table_id >= 0, "CacheManager: table_id must be >= 0");
  TTREC_CHECK_CONFIG(bag != nullptr, "CacheManager: bag must not be null");
  for (const Entry& e : tables_) {
    TTREC_CHECK_CONFIG(e.table_id != table_id,
                       "CacheManager: duplicate table id ", table_id);
  }
  tables_.push_back(Entry{table_id, bag});
}

ApportionmentPlan CacheManager::Plan() const {
  ApportionmentPlan plan;
  plan.budget_bytes = config_.budget_bytes;
  if (tables_.empty()) return plan;

  std::vector<CacheApportionInput> inputs;
  inputs.reserve(tables_.size());
  for (const Entry& e : tables_) {
    CacheApportionInput in;
    in.mrc = profiler_.Profile(e.bag->tracker(), e.bag->num_rows());
    in.max_rows = e.bag->num_rows();
    in.bytes_per_row = LfuRowCache::BytesPerRow(e.bag->emb_dim());
    inputs.push_back(std::move(in));
  }
  const std::vector<int64_t> rows =
      ApportionCacheRows(inputs, config_.budget_bytes,
                         config_.min_rows_per_table, config_.chunk_rows);

  double total_traffic = 0.0;
  for (const CacheApportionInput& in : inputs) {
    total_traffic += static_cast<double>(in.mrc.total_accesses());
  }
  plan.tables.reserve(tables_.size());
  double weighted_hit = 0.0;
  for (size_t t = 0; t < tables_.size(); ++t) {
    TableBudget tb;
    tb.table_id = tables_[t].table_id;
    tb.rows = rows[t];
    tb.bytes = rows[t] * inputs[t].bytes_per_row;
    tb.traffic_share =
        total_traffic > 0.0
            ? static_cast<double>(inputs[t].mrc.total_accesses()) /
                  total_traffic
            : 0.0;
    tb.predicted_hit_rate = inputs[t].mrc.HitRateAt(rows[t]);
    plan.used_bytes += tb.bytes;
    weighted_hit += tb.traffic_share * tb.predicted_hit_rate;
    plan.tables.push_back(tb);
  }
  plan.predicted_aggregate_hit_rate = weighted_hit;
  return plan;
}

ApportionmentPlan CacheManager::Retune() {
  ApportionmentPlan plan = Plan();
  for (size_t t = 0; t < tables_.size(); ++t) {
    tables_[t].bag->ResizeCache(plan.tables[t].rows);
  }
  ++retunes_;
  last_plan_ = plan;
  return plan;
}

void CacheManager::CollectStats(obs::MetricRegistry& reg) const {
  publisher_.Counter(reg, "cache.mgr.retunes", retunes_);
  if (last_plan_.tables.empty()) return;
  publisher_.Gauge(reg, "cache.mgr.budget_bytes",
                   static_cast<double>(last_plan_.budget_bytes));
  publisher_.Gauge(reg, "cache.mgr.used_bytes",
                   static_cast<double>(last_plan_.used_bytes));
  publisher_.Gauge(reg, "cache.mgr.predicted_hit_rate",
                   last_plan_.predicted_aggregate_hit_rate);
  for (const TableBudget& tb : last_plan_.tables) {
    const std::string prefix = "cache." + std::to_string(tb.table_id) + ".";
    publisher_.Gauge(reg, prefix + "rows", static_cast<double>(tb.rows));
    publisher_.Gauge(reg, prefix + "bytes", static_cast<double>(tb.bytes));
    publisher_.Gauge(reg, prefix + "traffic_share", tb.traffic_share);
    publisher_.Gauge(reg, prefix + "mrc.predicted_hit_rate",
                     tb.predicted_hit_rate);
  }
  // MRC shape stats come from the live trackers (cheap: size/total reads).
  for (const Entry& e : tables_) {
    const std::string prefix =
        "cache." + std::to_string(e.table_id) + ".mrc.";
    publisher_.Gauge(reg, prefix + "distinct_keys",
                     static_cast<double>(e.bag->tracker().size()));
    publisher_.Gauge(reg, prefix + "total_accesses",
                     static_cast<double>(e.bag->tracker().total()));
  }
}

}  // namespace ttrec
