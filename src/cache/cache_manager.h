// Global cache budget manager: one byte budget, many tables, self-tuning
// capacities.
//
// The paper sizes every table's cache independently (0.01% of its rows,
// Fig 10b). That heuristic ignores the two quantities that actually decide
// where a cached row pays off: how much traffic a table sees, and how fast
// its hit-rate curve is still climbing at the current capacity. The
// CacheManager closes that loop: it profiles each registered table's
// miss-ratio curve from the frequency counts the cache layer already keeps
// (MrcProfiler), then waterfills the global byte budget by marginal miss
// reduction — every chunk of bytes goes to the table where it removes the
// most traffic-weighted misses. Because LFU prefix-share curves are
// concave, the greedy chunk allocation is optimal up to one chunk of
// granularity.
//
// Retune() pushes the plan into the live operators through
// CachedTtEmbeddingBag::ResizeCache, which preserves learned hot rows
// across the capacity change. The same waterfilling core
// (ApportionCacheRows) is reused offline by PlanCapacityWithCache to split
// a single budget between TT ranks and cache bytes before training starts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/cached_tt_embedding.h"
#include "cache/mrc_profiler.h"
#include "obs/metrics.h"

namespace ttrec {

struct CacheManagerConfig {
  /// Global cache budget across all registered tables, in bytes (costed via
  /// LfuRowCache::BytesPerRow). Must cover min_rows_per_table for every
  /// registered table at plan time.
  int64_t budget_bytes = 0;
  /// Floor per table (LfuRowCache requires capacity >= 1).
  int64_t min_rows_per_table = 1;
  /// MRC grid resolution (see MrcProfilerConfig).
  int num_mrc_points = 24;
  /// Waterfilling granularity in rows. 0 = auto: ~1/256 of the budget, so a
  /// plan costs at most a few thousand heap operations regardless of scale.
  int64_t chunk_rows = 0;
};

/// One table's input to the waterfiller.
struct CacheApportionInput {
  MissRatioCurve mrc;
  int64_t max_rows = 0;       // never allocate beyond the table's row count
  int64_t bytes_per_row = 0;  // LfuRowCache::BytesPerRow(emb_dim)
};

/// Splits `budget_bytes` across tables by greedy marginal traffic-weighted
/// miss reduction per byte. Returns one row count per input (>= min_rows,
/// <= max_rows). Tables with empty curves (no observed traffic) receive
/// only the floor. Throws ConfigError when the budget cannot cover the
/// floor for every table.
std::vector<int64_t> ApportionCacheRows(
    std::span<const CacheApportionInput> tables, int64_t budget_bytes,
    int64_t min_rows = 1, int64_t chunk_rows = 0);

struct TableBudget {
  int table_id = 0;
  int64_t rows = 0;
  int64_t bytes = 0;
  /// This table's share of observed traffic across all registered tables.
  double traffic_share = 0.0;
  /// Interpolated MRC hit rate at the allocated capacity.
  double predicted_hit_rate = 0.0;
};

struct ApportionmentPlan {
  std::vector<TableBudget> tables;  // registration order
  int64_t budget_bytes = 0;
  int64_t used_bytes = 0;
  /// Traffic-weighted mean of the per-table predicted hit rates.
  double predicted_aggregate_hit_rate = 0.0;
};

class CacheManager {
 public:
  explicit CacheManager(CacheManagerConfig config);

  /// Registers a cached operator under a stable id (used in metric names:
  /// cache.<id>.mrc.* etc.). The bag must outlive the manager. Ids must be
  /// unique and >= 0.
  void RegisterTable(int table_id, CachedTtEmbeddingBag* bag);

  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Profiles every table's MRC from its frequency tracker and waterfills
  /// the budget. Pure planning — does not touch the operators.
  ApportionmentPlan Plan() const;

  /// Plan() + ResizeCache on every table whose allocation changed. Returns
  /// the applied plan.
  ApportionmentPlan Retune();

  /// Retune() calls so far.
  int64_t retunes() const { return retunes_; }

  /// Publishes manager gauges/counters (cache.mgr.budget_bytes /
  /// used_bytes / predicted_hit_rate / retunes) and per-table
  /// cache.<id>.rows / bytes / traffic_share / mrc.hit_rate /
  /// mrc.distinct_keys / mrc.total_accesses from the last Plan/Retune.
  /// Idempotent per registry (StatPublisher semantics); a no-op before the
  /// first Plan.
  void CollectStats(obs::MetricRegistry& reg) const;

 private:
  struct Entry {
    int table_id = 0;
    CachedTtEmbeddingBag* bag = nullptr;
  };

  CacheManagerConfig config_;
  MrcProfiler profiler_;
  std::vector<Entry> tables_;
  int64_t retunes_ = 0;
  ApportionmentPlan last_plan_;
  obs::StatPublisher publisher_;
};

}  // namespace ttrec
