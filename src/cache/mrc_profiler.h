// Online miss-ratio-curve (MRC) estimation from LFU frequency counts.
//
// The paper gives each cached table one knob — a fixed capacity, sized by
// the Fig 10b "0.01% of the table" heuristic. The production question is
// different: given ONE global memory budget and many tables of different
// skew and traffic, how many rows should each table's cache get? Answering
// it needs the whole hit-rate-vs-capacity curve per table, not one point.
//
// Under LFU with bulk refresh (our semi-dynamic cache), the curve has a
// closed form over the observed window: a cache of capacity c holds the c
// most-frequent rows, so
//
//   hit_rate(c) = (sum of the top-c counts) / (total accesses).
//
// MrcProfiler evaluates that prefix-share exactly on a geometric capacity
// grid (the curve is concave, so a sparse grid plus linear interpolation
// loses little) and returns a MissRatioCurve the CacheManager waterfills
// over. Counts come straight from the existing FreqTracker — profiling
// adds no per-lookup work beyond the tracking the cache already does.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/freq_tracker.h"

namespace ttrec {

/// One sampled point: hit rate the table would see with `capacity` cached
/// rows (over the tracked access window).
struct MrcPoint {
  int64_t capacity = 0;
  double hit_rate = 0.0;
};

/// A piecewise-linear hit-rate-vs-capacity curve. Points are strictly
/// increasing in capacity with nondecreasing hit rate (LFU prefix shares
/// are concave); capacity 0 always maps to hit rate 0.
class MissRatioCurve {
 public:
  MissRatioCurve() = default;

  /// Builds the curve from raw access counts (any order). The grid is
  /// geometric with ~`num_points` points, clamped to `max_capacity`, and
  /// always contains the exact saturation point (the number of distinct
  /// keys, where the hit rate reaches 1 over the window) when it is within
  /// range.
  static MissRatioCurve FromCounts(std::vector<int64_t> counts,
                                   int num_points, int64_t max_capacity);

  /// Hit rate at `capacity`, linearly interpolated between grid points and
  /// clamped to the curve's range (0 below the first point's share of
  /// course: capacity 0 -> 0; beyond the last point the curve is flat).
  double HitRateAt(int64_t capacity) const;
  double MissRateAt(int64_t capacity) const { return 1.0 - HitRateAt(capacity); }

  /// Total accesses in the window the curve was estimated from — the
  /// traffic weight aggregate-miss minimization multiplies by.
  int64_t total_accesses() const { return total_accesses_; }
  /// Distinct keys observed (the capacity where the curve saturates at 1).
  int64_t distinct_keys() const { return distinct_keys_; }
  bool empty() const { return points_.empty(); }
  const std::vector<MrcPoint>& points() const { return points_; }

 private:
  std::vector<MrcPoint> points_;  // ascending capacity, capacity >= 1
  int64_t total_accesses_ = 0;
  int64_t distinct_keys_ = 0;
};

struct MrcProfilerConfig {
  /// Geometric grid resolution. 24 points cover 1..10^7 rows at ~2x steps;
  /// concavity keeps the interpolation error well under a percent of hit
  /// rate for Zipf-like traffic.
  int num_points = 24;
};

/// Estimates per-table miss-ratio curves from the FreqTracker the cached
/// operator already maintains.
class MrcProfiler {
 public:
  explicit MrcProfiler(MrcProfilerConfig config = {});

  /// Curve for one table, evaluated up to `max_capacity` rows (typically
  /// the table's row count — no cache can usefully exceed it).
  MissRatioCurve Profile(const FreqTracker& tracker,
                         int64_t max_capacity) const;

 private:
  MrcProfilerConfig config_;
};

}  // namespace ttrec
