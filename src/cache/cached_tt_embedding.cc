#include "cache/cached_tt_embedding.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/gemm.h"
#include "tt/tt_io.h"

namespace ttrec {

namespace {

TtEmbeddingConfig InnerTtConfig(const CachedTtConfig& config) {
  // The hybrid operator owns pooling semantics (mean pooling must divide by
  // the *original* bag size even when some lookups are served by the
  // cache), so the inner TT op always runs kSum with explicit weights.
  TtEmbeddingConfig tt = config.tt;
  tt.pooling = PoolingMode::kSum;
  return tt;
}

}  // namespace

CachedTtEmbeddingBag::CachedTtEmbeddingBag(CachedTtConfig config, TtInit init,
                                           Rng& rng)
    : config_(std::move(config)),
      tt_(InnerTtConfig(config_), init, rng),
      cache_(std::max<int64_t>(1, config_.cache_capacity), tt_.emb_dim()),
      tracker_(std::max<int64_t>(64, 4 * config_.cache_capacity)) {
  TTREC_CHECK_CONFIG(config_.cache_capacity >= 1,
                     "CachedTtEmbeddingBag: cache_capacity must be >= 1 "
                     "(use TtEmbeddingBag directly for no cache)");
  TTREC_CHECK_CONFIG(config_.warmup_iterations >= 0,
                     "warmup_iterations must be >= 0");
  TTREC_CHECK_CONFIG(config_.refresh_interval >= 1,
                     "refresh_interval must be >= 1");
  TTREC_CHECK_CONFIG(config_.rewarm_period >= 0,
                     "rewarm_period must be >= 0");
}

template <typename OnHit>
CsrBatch CachedTtEmbeddingBag::Partition(const CsrBatch& batch,
                                         OnHit&& on_hit) const {
  const int64_t n_bags = batch.num_bags();
  CsrBatch tt_batch;
  tt_batch.offsets.reserve(static_cast<size_t>(n_bags) + 1);
  tt_batch.offsets.push_back(0);
  tt_batch.indices.reserve(batch.indices.size());
  tt_batch.weights.reserve(batch.indices.size());

  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    for (int64_t l = begin; l < end; ++l) {
      const int64_t row = batch.indices[static_cast<size_t>(l)];
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (config_.tt.pooling == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      if (const float* cached = cache_.Find(row)) {
        on_hit(b, row, w, cached);
      } else {
        tt_batch.indices.push_back(row);
        tt_batch.weights.push_back(w);
      }
    }
    tt_batch.offsets.push_back(static_cast<int64_t>(tt_batch.indices.size()));
  }
  return tt_batch;
}

void CachedTtEmbeddingBag::RefreshCache() {
  TTREC_TRACE_SCOPE("cache.refresh");
  const std::vector<int64_t> top = tracker_.TopK(cache_.capacity());
  if (top.empty()) return;
  const Tensor values = tt_.cores().MaterializeRows(top);
  cache_.Populate(top, values.data());
  ++refreshes_;
}

int64_t CachedTtEmbeddingBag::PrefetchRows(std::span<const int64_t> rows) {
  TTREC_TRACE_SCOPE("cache.prefetch");
  ++prefetch_calls_;
  // Validate and dedup into sorted order before any mutation.
  std::vector<int64_t> wanted(rows.begin(), rows.end());
  std::sort(wanted.begin(), wanted.end());
  wanted.erase(std::unique(wanted.begin(), wanted.end()), wanted.end());
  for (const int64_t row : wanted) {
    TTREC_CHECK_INDEX(row >= 0 && row < num_rows(),
                      "CachedTtEmbeddingBag::PrefetchRows: row ", row,
                      " out of range [0, ", num_rows(), ")");
  }

  std::vector<int64_t> missing;
  for (const int64_t row : wanted) {
    if (!cache_.Contains(row)) missing.push_back(row);
  }
  if (missing.empty()) return 0;

  // Make room by evicting the coldest residents that the plan does not
  // want. (count, row) ordering makes the victim set deterministic; a
  // frozen post-warm-up tracker gives every resident count 0, so victims
  // fall back to ascending row id — still deterministic, still rows the
  // upcoming batch will not touch.
  const int64_t free_slots = cache_.capacity() - cache_.size();
  int64_t need = static_cast<int64_t>(missing.size()) - free_slots;
  if (need > 0) {
    std::vector<std::pair<int64_t, int64_t>> victims;  // (count, row)
    for (const int64_t row : cache_.CachedRows()) {
      if (!std::binary_search(wanted.begin(), wanted.end(), row)) {
        victims.emplace_back(tracker_.Count(row), row);
      }
    }
    std::sort(victims.begin(), victims.end());
    const size_t evict = std::min(static_cast<size_t>(need), victims.size());
    for (size_t v = 0; v < evict; ++v) {
      cache_.Erase(victims[v].second);
      ++prefetch_evictions_;
    }
  }

  // Admit whatever now fits, hottest-independent (sorted row order — the
  // plan is a set, not a ranking). A plan larger than the whole cache
  // simply fills it; the overflow keeps going through the TT path.
  int64_t budget = cache_.capacity() - cache_.size();
  if (budget <= 0) return 0;
  if (static_cast<int64_t>(missing.size()) > budget) {
    missing.resize(static_cast<size_t>(budget));
  }
  const Tensor values = tt_.cores().MaterializeRows(missing);
  const int64_t N = emb_dim();
  for (size_t i = 0; i < missing.size(); ++i) {
    cache_.Insert(missing[i], values.data() + static_cast<int64_t>(i) * N);
  }
  prefetch_inserts_ += static_cast<int64_t>(missing.size());
  return static_cast<int64_t>(missing.size());
}

void CachedTtEmbeddingBag::CollectStats(obs::MetricRegistry& reg) const {
  // Published through StatPublisher so repeated collections into the same
  // registry are idempotent: the sources below are cumulative totals, and a
  // plain counter Add would double-count every collection after the first.
  const obs::StatPublisher& p = stats_publisher_;
  p.Counter(reg, "cache.hits", cache_.hits());
  p.Counter(reg, "cache.misses", cache_.misses());
  p.Counter(reg, "cache.evictions", cache_.evictions());
  p.Counter(reg, "cache.populates", cache_.populates());
  p.Counter(reg, "cache.refreshes", refreshes_);
  p.Counter(reg, "cache.decay_rebuilds", tracker_.decay_rebuilds());
  p.Counter(reg, "cache.resizes", resizes_);
  p.Counter(reg, "cache.prefetch_calls", prefetch_calls_);
  p.Counter(reg, "cache.prefetch_inserts", prefetch_inserts_);
  p.Counter(reg, "cache.prefetch_evictions", prefetch_evictions_);
  p.Gauge(reg, "cache.rows_resident", static_cast<double>(cache_.size()));
  p.Gauge(reg, "cache.rows_capacity", static_cast<double>(cache_.capacity()));
  const TtEmbeddingStats& tt = tt_.stats();
  p.Counter(reg, "tt.forward_calls", tt.forward_calls);
  p.Counter(reg, "tt.lookups", tt.lookups);
  p.Counter(reg, "tt.forward_flops", tt.forward_flops);
  p.Counter(reg, "tt.backward_flops", tt.backward_flops);
}

void CachedTtEmbeddingBag::ResizeCache(int64_t new_capacity) {
  TTREC_CHECK_CONFIG(new_capacity >= 1,
                     "CachedTtEmbeddingBag::ResizeCache: capacity must be "
                     ">= 1");
  TTREC_CHECK_CONFIG(new_capacity <= num_rows(),
                     "CachedTtEmbeddingBag::ResizeCache: capacity ",
                     new_capacity, " exceeds table rows ", num_rows());
  if (new_capacity == cache_.capacity()) return;
  TTREC_TRACE_SCOPE("cache.resize");

  // Pick the new hot set: the tracker's current view when it has counts,
  // otherwise the resident rows hottest-first is the best available guess
  // (a frozen post-warm-up cache with tracking off still resizes sensibly —
  // growth keeps everything, shrinkage keeps the head of the old top-K,
  // which Populate stored in descending-frequency order).
  std::vector<int64_t> keep = tracker_.TopK(new_capacity);
  if (keep.empty()) {
    keep = cache_.CachedRows();
    if (static_cast<int64_t>(keep.size()) > new_capacity) {
      keep.resize(static_cast<size_t>(new_capacity));
    }
  }

  // Carry learned uncompressed values across the resize; only rows new to
  // the set fall back to TT materialization. Peek keeps HitRate() honest.
  const int64_t N = emb_dim();
  std::vector<float> values(keep.size() * static_cast<size_t>(N));
  std::vector<int64_t> missing;
  std::vector<size_t> missing_pos;
  for (size_t i = 0; i < keep.size(); ++i) {
    if (const float* vec = cache_.Peek(keep[i])) {
      std::copy(vec, vec + N, values.data() + i * static_cast<size_t>(N));
    } else {
      missing.push_back(keep[i]);
      missing_pos.push_back(i);
    }
  }
  if (!missing.empty()) {
    const Tensor fresh = tt_.cores().MaterializeRows(missing);
    for (size_t m = 0; m < missing.size(); ++m) {
      const float* src = fresh.data() + m * static_cast<size_t>(N);
      std::copy(src, src + N,
                values.data() + missing_pos[m] * static_cast<size_t>(N));
    }
  }

  cache_.Resize(new_capacity, keep, values.data());
  config_.cache_capacity = new_capacity;
  ++resizes_;
}

void CachedTtEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();

  const bool in_warmup = iteration_ < config_.warmup_iterations;
  // Optional periodic re-warm: decay the counts (age out the previous
  // phase) and open a re-tracking window.
  if (!in_warmup && config_.rewarm_period > 0 &&
      iteration_ > config_.warmup_iterations &&
      (iteration_ - config_.warmup_iterations) % config_.rewarm_period == 0) {
    tracker_.Decay(0.5);
    rewarm_until_ =
        iteration_ + std::max<int64_t>(1, config_.warmup_iterations);
  }
  const bool tracking =
      in_warmup || config_.track_after_warmup || iteration_ < rewarm_until_;
  if (tracking) {
    for (int64_t row : batch.indices) tracker_.Increment(row);
  }
  if (in_warmup && iteration_ > 0 &&
      iteration_ % config_.refresh_interval == 0) {
    RefreshCache();
  }
  if (config_.warmup_iterations > 0 &&
      iteration_ == config_.warmup_iterations) {
    RefreshCache();  // final warm-up refresh; the set freezes here (Fig. 4)
  }
  if (rewarm_until_ > 0 && iteration_ == rewarm_until_) {
    RefreshCache();  // end of a re-warm window
  }
  ++iteration_;

  // Collect hits first, run the TT forward straight into `output` (it
  // zero-fills), then fold the cached contributions on top — no extra
  // bag-sized scratch buffer or second pass.
  hit_scratch_.clear();
  CsrBatch tt_batch = Partition(
      batch, [&](int64_t bag, int64_t /*row*/, float w, const float* vec) {
        hit_scratch_.push_back(CacheHit{bag, w, vec});
      });
  tt_.Forward(tt_batch, output);
  for (const CacheHit& hit : hit_scratch_) {
    float* dst = output + hit.bag * N;
    for (int64_t j = 0; j < N; ++j) dst[j] += hit.weight * hit.vec[j];
  }
}

void CachedTtEmbeddingBag::ForwardInference(const CsrBatch& batch,
                                            float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();

  // Same hit/miss split and fold order as Forward, but with call-local
  // scratch (no shared hit_scratch_) and zero control-plane side effects:
  // no iteration advance, no frequency tracking, no refresh.
  std::vector<CacheHit> hits;
  const CsrBatch tt_batch = Partition(
      batch, [&](int64_t bag, int64_t /*row*/, float w, const float* vec) {
        hits.push_back(CacheHit{bag, w, vec});
      });
  tt_.ForwardInference(tt_batch, output);
  for (const CacheHit& hit : hits) {
    float* dst = output + hit.bag * N;
    for (int64_t j = 0; j < N; ++j) dst[j] += hit.weight * hit.vec[j];
  }
}

void CachedTtEmbeddingBag::PoolPrefetchedRows(const CsrBatch& batch,
                                              const float* rows,
                                              float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();

  // Same hit/miss classification and weight arithmetic as Partition, but
  // keeping each lookup's original position so the row data can come from
  // `rows` instead of the cache/TT chain.
  struct Pooled {
    int64_t bag;
    float weight;
    int64_t lookup;
  };
  std::vector<Pooled> hits;
  std::vector<Pooled> misses;
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    for (int64_t l = begin; l < end; ++l) {
      const int64_t row = batch.indices[static_cast<size_t>(l)];
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (config_.tt.pooling == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      if (cache_.Find(row) != nullptr) {
        hits.push_back(Pooled{b, w, l});
      } else {
        misses.push_back(Pooled{b, w, l});
      }
    }
  }

  // ForwardInference's accumulation order: the inner TT op zero-fills and
  // Axpy's the misses in lookup order, then the hit fold runs on top.
  std::fill(output, output + n_bags * N, 0.0f);
  for (const Pooled& m : misses) {
    Axpy(N, m.weight, rows + m.lookup * N, output + m.bag * N);
  }
  for (const Pooled& h : hits) {
    float* dst = output + h.bag * N;
    const float* src = rows + h.lookup * N;
    for (int64_t j = 0; j < N; ++j) dst[j] += h.weight * src[j];
  }
}

void CachedTtEmbeddingBag::Backward(const CsrBatch& batch,
                                    const float* grad_output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();

  CsrBatch tt_batch = Partition(
      batch, [&](int64_t bag, int64_t row, float w, const float* /*vec*/) {
        float* g = cache_.GradFor(row);
        TTREC_CHECK_INTERNAL(g != nullptr,
                             "cache partition changed between fwd/bwd");
        const float* src = grad_output + bag * N;
        for (int64_t j = 0; j < N; ++j) g[j] += w * src[j];
      });

  if (tt_batch.num_lookups() > 0) {
    tt_.Backward(tt_batch, grad_output);
  }
}

void CachedTtEmbeddingBag::SaveState(BinaryWriter& w) const {
  WriteTtCores(w, tt_.cores());
  const std::vector<int64_t> rows = cache_.CachedRows();
  w.WriteI64Vec(rows);
  const int64_t N = emb_dim();
  for (int64_t row : rows) {
    // Peek, not Find: checkpointing must not inflate the hit statistics.
    const float* vec = cache_.Peek(row);
    TTREC_CHECK_INTERNAL(vec != nullptr, "cached row disappeared");
    w.WriteFloats(vec, static_cast<size_t>(N));
  }
  w.WriteI64(iteration_);
}

void CachedTtEmbeddingBag::LoadState(BinaryReader& r) {
  TtCores loaded = ReadTtCores(r);
  for (int k = 0; k < tt_.cores().num_cores(); ++k) {
    TTREC_CHECK_SHAPE(loaded.core(k).shape() == tt_.cores().core(k).shape(),
                      "CachedTtEmbeddingBag::LoadState: core shape mismatch");
    tt_.cores().core(k) = std::move(loaded.core(k));
  }
  const std::vector<int64_t> rows = r.ReadI64Vec();
  const int64_t N = emb_dim();
  std::vector<float> values(rows.size() * static_cast<size_t>(N));
  for (size_t i = 0; i < rows.size(); ++i) {
    r.ReadFloats(values.data() + i * static_cast<size_t>(N),
                 static_cast<size_t>(N));
  }
  cache_.Populate(rows, values.data());
  iteration_ = r.ReadI64();
  rewarm_until_ = -1;
  tracker_.Clear();
}

void CachedTtEmbeddingBag::ApplySgd(float lr) {
  tt_.ApplySgd(lr);
  cache_.ApplySgd(lr);
}

void CachedTtEmbeddingBag::ApplyAdagrad(float lr, float eps) {
  tt_.ApplyAdagrad(lr, eps);
  cache_.ApplyAdagrad(lr, eps);
}

void CachedTtEmbeddingBag::ZeroGrad() {
  tt_.ZeroGrad();
  cache_.ZeroGrads();
}

double CachedTtEmbeddingBag::GradSqNorm() const {
  return tt_.GradSqNorm() + cache_.GradSqNorm();
}

void CachedTtEmbeddingBag::ScaleGrads(float scale) {
  tt_.ScaleGrads(scale);
  cache_.ScaleGrads(scale);
}

void CachedTtEmbeddingBag::SaveOptState(BinaryWriter& w) const {
  tt_.SaveOptState(w);
  const std::vector<float>& acc = cache_.AdagradState();
  w.WriteU32(acc.empty() ? 0u : 1u);
  if (!acc.empty()) w.WriteFloats(acc.data(), acc.size());
}

void CachedTtEmbeddingBag::LoadOptState(BinaryReader& r) {
  tt_.LoadOptState(r);
  const uint32_t present = r.ReadU32();
  if (present == 0) {
    cache_.SetAdagradState({});
    return;
  }
  TTREC_CHECK_CONFIG(present == 1,
                     "CachedTtEmbeddingBag::LoadOptState: bad marker");
  std::vector<float> acc(
      static_cast<size_t>(cache_.capacity() * cache_.emb_dim()));
  r.ReadFloats(acc.data(), acc.size());
  cache_.SetAdagradState(std::move(acc));
}

}  // namespace ttrec
