// Post-training quantized embedding table (Guan et al. 2019, cited in the
// paper's related work §7): each row is quantized to int8 or int4 with a
// per-row affine (scale, offset) pair, for inference only.
//
// This is the other practical embedding-compression family; it caps out at
// 4-8x (bits / 32) plus per-row overhead, versus TT's 100x+ — the contrast
// the design-space bench quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "dlrm/embedding_op.h"
#include "tensor/tensor.h"

namespace ttrec {

class QuantizedEmbeddingBag : public EmbeddingOp {
 public:
  /// Quantizes a trained fp32 table. `bits` must be 4 or 8. Each row gets
  /// min/max-range affine quantization: q = round((x - min) / scale).
  QuantizedEmbeddingBag(const Tensor& table, int bits, PoolingMode pooling);

  void Forward(const CsrBatch& batch, float* output) override;

  /// Inference-only: training a quantized table is out of scope (the paper
  /// notes "quantization for training is more challenging").
  void Backward(const CsrBatch& batch, const float* grad_output) override;
  void ApplySgd(float lr) override;

  int64_t num_rows() const override { return num_rows_; }
  int64_t emb_dim() const override { return emb_dim_; }
  int bits() const { return bits_; }

  /// Quantized payload + per-row scale/offset.
  int64_t MemoryBytes() const override;
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    stats_publisher().Gauge(reg, "quantized.bits",
                            static_cast<double>(bits()));
  }
  std::string Name() const override { return "quantized_embedding_bag"; }

  /// Dequantizes one row (for error analysis / tests).
  void DequantizeRow(int64_t row, float* out) const;

  /// Max absolute quantization error across the whole table vs `reference`.
  double MaxQuantizationError(const Tensor& reference) const;

 private:
  int64_t BytesPerRow() const;

  int64_t num_rows_;
  int64_t emb_dim_;
  int bits_;
  PoolingMode pooling_;
  std::vector<uint8_t> data_;   // packed codes, row-major
  std::vector<float> scale_;    // per row
  std::vector<float> offset_;   // per row (the dequantized value of code 0)
};

}  // namespace ttrec
