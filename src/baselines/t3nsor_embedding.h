// T3nsor-style TT embedding (Hrinchuk et al. 2020) — the SOTA comparator of
// paper §6.4 / Figure 8.
//
// T3nsor stores TT cores but *decompresses the entire table on the fly* for
// each lookup batch, so its transient memory footprint during training
// equals the uncompressed table (the paper's square markers in Figure 8)
// and its forward cost scales with the full table rather than the batch.
// TT-Rec's batched per-lookup kernel is the contrast: footprint
// ~ batch_size x emb_dim, roughly #EmbRows/BatchSize smaller.
#pragma once

#include <cstdint>
#include <string>

#include "dlrm/embedding_op.h"
#include "tt/tt_embedding.h"

namespace ttrec {

class T3nsorEmbeddingBag : public EmbeddingOp {
 public:
  T3nsorEmbeddingBag(TtEmbeddingConfig config, TtInit init, Rng& rng);

  /// Materializes the full table, then gathers and pools — the defining
  /// behaviour this baseline reproduces.
  void Forward(const CsrBatch& batch, float* output) override;

  void Backward(const CsrBatch& batch, const float* grad_output) override;
  void ApplySgd(float lr) override;
  void ApplyUpdate(const OptimizerConfig& opt) override {
    if (opt.kind == OptimizerConfig::Kind::kAdagrad) {
      tt_.ApplyAdagrad(opt.lr, opt.eps);
    } else {
      tt_.ApplySgd(opt.lr);
    }
  }

  int64_t num_rows() const override { return tt_.num_rows(); }
  int64_t emb_dim() const override { return tt_.emb_dim(); }
  /// Persistent parameter memory (cores only; the materialized table is
  /// transient — see WorkingSetBytes).
  int64_t MemoryBytes() const override { return tt_.MemoryBytes(); }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    stats_publisher().Gauge(reg, "t3nsor.working_set_bytes",
                            static_cast<double>(WorkingSetBytes()));
  }
  std::string Name() const override { return "t3nsor_embedding"; }

  /// Peak transient memory of a Forward call: the fully materialized table.
  int64_t WorkingSetBytes() const {
    return num_rows() * emb_dim() * static_cast<int64_t>(sizeof(float));
  }

  TtEmbeddingBag& tt() { return tt_; }

 private:
  TtEmbeddingBag tt_;
  PoolingMode pooling_;
};

}  // namespace ttrec
