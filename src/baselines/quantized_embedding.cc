#include "baselines/quantized_embedding.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace ttrec {

int64_t QuantizedEmbeddingBag::BytesPerRow() const {
  return (emb_dim_ * bits_ + 7) / 8;
}

QuantizedEmbeddingBag::QuantizedEmbeddingBag(const Tensor& table, int bits,
                                             PoolingMode pooling)
    : num_rows_(table.dim(0)),
      emb_dim_(table.dim(1)),
      bits_(bits),
      pooling_(pooling) {
  TTREC_CHECK_CONFIG(bits == 4 || bits == 8,
                     "QuantizedEmbeddingBag: bits must be 4 or 8, got ", bits);
  TTREC_CHECK_SHAPE(table.ndim() == 2, "table must be 2-d");
  const int64_t levels = (int64_t{1} << bits_) - 1;
  data_.assign(static_cast<size_t>(num_rows_ * BytesPerRow()), 0);
  scale_.resize(static_cast<size_t>(num_rows_));
  offset_.resize(static_cast<size_t>(num_rows_));

  for (int64_t r = 0; r < num_rows_; ++r) {
    const float* row = table.data() + r * emb_dim_;
    float lo = row[0];
    float hi = row[0];
    for (int64_t j = 1; j < emb_dim_; ++j) {
      lo = std::min(lo, row[j]);
      hi = std::max(hi, row[j]);
    }
    const float scale =
        (hi > lo) ? (hi - lo) / static_cast<float>(levels) : 1.0f;
    scale_[static_cast<size_t>(r)] = scale;
    offset_[static_cast<size_t>(r)] = lo;
    uint8_t* dst = data_.data() + r * BytesPerRow();
    for (int64_t j = 0; j < emb_dim_; ++j) {
      const int64_t q = std::clamp<int64_t>(
          std::llround((row[j] - lo) / scale), 0, levels);
      if (bits_ == 8) {
        dst[j] = static_cast<uint8_t>(q);
      } else {
        // Two 4-bit codes per byte, low nibble first.
        if (j % 2 == 0) {
          dst[j / 2] = static_cast<uint8_t>(q);
        } else {
          dst[j / 2] |= static_cast<uint8_t>(q << 4);
        }
      }
    }
  }
}

void QuantizedEmbeddingBag::DequantizeRow(int64_t row, float* out) const {
  TTREC_CHECK_INDEX(row >= 0 && row < num_rows_, "row out of range");
  const uint8_t* src = data_.data() + row * BytesPerRow();
  const float scale = scale_[static_cast<size_t>(row)];
  const float offset = offset_[static_cast<size_t>(row)];
  for (int64_t j = 0; j < emb_dim_; ++j) {
    int64_t q;
    if (bits_ == 8) {
      q = src[j];
    } else {
      q = (j % 2 == 0) ? (src[j / 2] & 0x0F) : (src[j / 2] >> 4);
    }
    out[j] = offset + scale * static_cast<float>(q);
  }
}

void QuantizedEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows_);
  const int64_t N = emb_dim_;
  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  std::vector<float> row(static_cast<size_t>(N));
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      DequantizeRow(batch.indices[static_cast<size_t>(l)], row.data());
      for (int64_t j = 0; j < N; ++j) dst[j] += w * row[static_cast<size_t>(j)];
    }
  }
}

void QuantizedEmbeddingBag::Backward(const CsrBatch& /*batch*/,
                                     const float* /*grad_output*/) {
  throw ConfigError(
      "QuantizedEmbeddingBag is inference-only: quantized training is out of "
      "scope (paper §7)");
}

void QuantizedEmbeddingBag::ApplySgd(float /*lr*/) {
  throw ConfigError("QuantizedEmbeddingBag is inference-only");
}

int64_t QuantizedEmbeddingBag::MemoryBytes() const {
  return static_cast<int64_t>(data_.size() + scale_.size() * sizeof(float) +
                              offset_.size() * sizeof(float));
}

double QuantizedEmbeddingBag::MaxQuantizationError(
    const Tensor& reference) const {
  TTREC_CHECK_SHAPE(reference.dim(0) == num_rows_ &&
                        reference.dim(1) == emb_dim_,
                    "reference shape mismatch");
  std::vector<float> row(static_cast<size_t>(emb_dim_));
  double max_err = 0.0;
  for (int64_t r = 0; r < num_rows_; ++r) {
    DequantizeRow(r, row.data());
    const float* ref = reference.data() + r * emb_dim_;
    for (int64_t j = 0; j < emb_dim_; ++j) {
      max_err = std::max(max_err,
                         std::abs(static_cast<double>(ref[j]) -
                                  row[static_cast<size_t>(j)]));
    }
  }
  return max_err;
}

}  // namespace ttrec
