// Hashing-trick embedding (Weinberger et al. 2009) — the related-work
// baseline the paper contrasts against (§7): multiple rows share a bucket,
// shrinking the table at the cost of collisions (which is where its accuracy
// loss comes from; the design-space bench quantifies that).
#pragma once

#include <cstdint>
#include <string>

#include "dlrm/embedding_bag.h"
#include "dlrm/embedding_op.h"

namespace ttrec {

class HashedEmbeddingBag : public EmbeddingOp {
 public:
  /// `num_rows` is the logical (original) cardinality; `num_buckets` the
  /// physical table size. Compression ratio = num_rows / num_buckets.
  HashedEmbeddingBag(int64_t num_rows, int64_t num_buckets, int64_t emb_dim,
                     PoolingMode pooling, Rng& rng);

  void Forward(const CsrBatch& batch, float* output) override;
  void Backward(const CsrBatch& batch, const float* grad_output) override;
  void ApplySgd(float lr) override { inner_.ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    inner_.ApplyUpdate(opt);
  }

  int64_t num_rows() const override { return num_rows_; }
  int64_t emb_dim() const override { return inner_.emb_dim(); }
  int64_t num_buckets() const { return inner_.num_rows(); }
  int64_t MemoryBytes() const override { return inner_.MemoryBytes(); }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    stats_publisher().Gauge(reg, "hashed.buckets",
                            static_cast<double>(num_buckets()));
    stats_publisher().Gauge(reg, "hashed.compression",
                            static_cast<double>(num_rows()) /
                                static_cast<double>(num_buckets()));
  }
  std::string Name() const override { return "hashed_embedding_bag"; }

  /// The bucket a logical row maps to; exposed for collision analysis.
  int64_t Bucket(int64_t row) const;

 private:
  CsrBatch Remap(const CsrBatch& batch) const;

  int64_t num_rows_;
  DenseEmbeddingBag inner_;
};

}  // namespace ttrec
