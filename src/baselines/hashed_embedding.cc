#include "baselines/hashed_embedding.h"

#include "tensor/check.h"

namespace ttrec {

HashedEmbeddingBag::HashedEmbeddingBag(int64_t num_rows, int64_t num_buckets,
                                       int64_t emb_dim, PoolingMode pooling,
                                       Rng& rng)
    : num_rows_(num_rows),
      inner_(num_buckets, emb_dim, pooling,
             DenseEmbeddingInit::UniformScaled(), rng) {
  TTREC_CHECK_CONFIG(num_rows >= 1, "HashedEmbeddingBag: num_rows >= 1");
  TTREC_CHECK_CONFIG(num_buckets >= 1 && num_buckets <= num_rows,
                     "HashedEmbeddingBag: buckets must be in [1, num_rows]");
}

int64_t HashedEmbeddingBag::Bucket(int64_t row) const {
  TTREC_CHECK_INDEX(row >= 0 && row < num_rows_,
                    "HashedEmbeddingBag: row out of range");
  uint64_t z = static_cast<uint64_t>(row) * 0x9e3779b97f4a7c15ull;
  z ^= z >> 32;
  z *= 0xd6e8feb86659fd93ull;
  z ^= z >> 32;
  return static_cast<int64_t>(z % static_cast<uint64_t>(inner_.num_rows()));
}

CsrBatch HashedEmbeddingBag::Remap(const CsrBatch& batch) const {
  CsrBatch mapped = batch;
  for (int64_t& idx : mapped.indices) idx = Bucket(idx);
  return mapped;
}

void HashedEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows_);
  inner_.Forward(Remap(batch), output);
}

void HashedEmbeddingBag::Backward(const CsrBatch& batch,
                                  const float* grad_output) {
  batch.Validate(num_rows_);
  inner_.Backward(Remap(batch), grad_output);
}

}  // namespace ttrec
