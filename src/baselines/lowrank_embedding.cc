#include "baselines/lowrank_embedding.h"

#include <cmath>

#include "tensor/check.h"
#include "tensor/gemm.h"

namespace ttrec {

namespace {
int64_t ValidatedRank(int64_t rank) {
  TTREC_CHECK_CONFIG(rank >= 1, "LowRankEmbeddingBag: rank must be >= 1, got ",
                     rank);
  return rank;
}
}  // namespace

LowRankEmbeddingBag::LowRankEmbeddingBag(int64_t num_rows, int64_t emb_dim,
                                         int64_t rank, PoolingMode pooling,
                                         Rng& rng)
    : a_({num_rows, ValidatedRank(rank)}), b_({rank, emb_dim}),
      pooling_(pooling), db_({rank, emb_dim}) {
  // Product variance target 1/(3 * num_rows), split evenly between factors
  // and normalized by the rank-term count (same reasoning as TT init §3.2).
  const double target = 1.0 / (3.0 * static_cast<double>(num_rows));
  const double s = std::pow(target / static_cast<double>(rank), 0.25);
  for (int64_t i = 0; i < a_.numel(); ++i) {
    a_.data()[i] = static_cast<float>(rng.Normal(0.0, s));
  }
  for (int64_t i = 0; i < b_.numel(); ++i) {
    b_.data()[i] = static_cast<float>(rng.Normal(0.0, s));
  }
}

LowRankEmbeddingBag::LowRankEmbeddingBag(Tensor a, Tensor b,
                                         PoolingMode pooling)
    : a_(std::move(a)), b_(std::move(b)), pooling_(pooling),
      db_(b_.shape()) {
  TTREC_CHECK_SHAPE(a_.ndim() == 2 && b_.ndim() == 2 &&
                        a_.dim(1) == b_.dim(0),
                    "LowRankEmbeddingBag: factor shapes incompatible");
}

void LowRankEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t r = rank();
  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  std::vector<float> row(static_cast<size_t>(N));
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const int64_t idx = batch.indices[static_cast<size_t>(l)];
      // row = A[idx] (1 x r) * B (r x N).
      Gemv(Trans::kYes, r, N, 1.0f, b_.data(), N, a_.data() + idx * r, 0.0f,
           row.data());
      for (int64_t j = 0; j < N; ++j) dst[j] += w * row[static_cast<size_t>(j)];
    }
  }
}

void LowRankEmbeddingBag::Backward(const CsrBatch& batch,
                                   const float* grad_output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t r = rank();
  for (int64_t b = 0; b < batch.num_bags(); ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    const float* g = grad_output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const int64_t idx = batch.indices[static_cast<size_t>(l)];
      // dA[idx] += w * g * B^T  (1 x r).
      auto [it, inserted] =
          da_.try_emplace(idx, std::vector<float>(static_cast<size_t>(r)));
      for (int64_t k = 0; k < r; ++k) {
        float acc = 0.0f;
        const float* bk = b_.data() + k * N;
        for (int64_t j = 0; j < N; ++j) acc += g[j] * bk[j];
        it->second[static_cast<size_t>(k)] += w * acc;
      }
      // dB += w * A[idx]^T * g  (r x N).
      const float* arow = a_.data() + idx * r;
      for (int64_t k = 0; k < r; ++k) {
        const float ak = w * arow[k];
        float* dbk = db_.data() + k * N;
        for (int64_t j = 0; j < N; ++j) dbk[j] += ak * g[j];
      }
    }
  }
}

void LowRankEmbeddingBag::ApplySgd(float lr) {
  const int64_t r = rank();
  for (const auto& [row, grad] : da_) {
    float* dst = a_.data() + row * r;
    for (int64_t k = 0; k < r; ++k) dst[k] -= lr * grad[static_cast<size_t>(k)];
  }
  da_.clear();
  b_.Axpy(-lr, db_);
  db_.Fill(0.0f);
}

}  // namespace ttrec
