// Two-factor low-rank embedding W ~ A * B (A: rows x r, B: r x dim) — the
// rank-factorization baseline the paper's related work cites (Ghaemmaghami
// et al. 2020). The degenerate d = 2 point of the TT family; included so the
// design-space bench can place it on the memory/accuracy plane next to TT.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dlrm/embedding_op.h"
#include "tensor/random.h"
#include "tensor/tensor.h"

namespace ttrec {

class LowRankEmbeddingBag : public EmbeddingOp {
 public:
  LowRankEmbeddingBag(int64_t num_rows, int64_t emb_dim, int64_t rank,
                      PoolingMode pooling, Rng& rng);

  /// Adopts existing factors (e.g. from a truncated SVD of a trained
  /// table): a is rows x rank, b is rank x dim.
  LowRankEmbeddingBag(Tensor a, Tensor b, PoolingMode pooling);

  void Forward(const CsrBatch& batch, float* output) override;
  void Backward(const CsrBatch& batch, const float* grad_output) override;
  void ApplySgd(float lr) override;

  int64_t num_rows() const override { return a_.dim(0); }
  int64_t emb_dim() const override { return b_.dim(1); }
  int64_t rank() const { return b_.dim(0); }
  int64_t MemoryBytes() const override {
    return (a_.numel() + b_.numel()) * static_cast<int64_t>(sizeof(float));
  }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    stats_publisher().Gauge(reg, "lowrank.rank",
                            static_cast<double>(rank()));
  }
  std::string Name() const override { return "lowrank_embedding_bag"; }

 private:
  Tensor a_;  // rows x rank
  Tensor b_;  // rank x dim
  PoolingMode pooling_;
  std::unordered_map<int64_t, std::vector<float>> da_;  // sparse A grads
  Tensor db_;
};

}  // namespace ttrec
