#include "baselines/t3nsor_embedding.h"

#include <algorithm>

#include "tensor/check.h"

namespace ttrec {

T3nsorEmbeddingBag::T3nsorEmbeddingBag(TtEmbeddingConfig config, TtInit init,
                                       Rng& rng)
    : tt_(config, init, rng), pooling_(config.pooling) {}

void T3nsorEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  // Full on-the-fly decompression: this allocation IS the baseline's
  // memory behaviour (Figure 8).
  const Tensor full = tt_.cores().MaterializeFull();

  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const float* src =
          full.data() + batch.indices[static_cast<size_t>(l)] * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += w * src[j];
    }
  }
}

void T3nsorEmbeddingBag::Backward(const CsrBatch& batch,
                                  const float* grad_output) {
  // Gradient math w.r.t. the TT cores is identical to TT-Rec's; T3nsor's
  // distinction is the forward decompression strategy.
  tt_.Backward(batch, grad_output);
}

void T3nsorEmbeddingBag::ApplySgd(float lr) { tt_.ApplySgd(lr); }

}  // namespace ttrec
