#include "obs/reporter.h"

#include <utility>

#include "tensor/check.h"

namespace ttrec::obs {

PeriodicReporter::PeriodicReporter(Producer producer,
                                   std::chrono::milliseconds interval,
                                   std::ostream& out)
    : producer_(std::move(producer)), interval_(interval), out_(&out) {
  Start();
}

PeriodicReporter::PeriodicReporter(Producer producer,
                                   std::chrono::milliseconds interval,
                                   const std::string& path)
    : producer_(std::move(producer)), interval_(interval) {
  file_.open(path, std::ios::out | std::ios::app);
  TTREC_CHECK_CONFIG(file_.is_open(), "PeriodicReporter: cannot open ", path);
  out_ = &file_;
  Start();
}

void PeriodicReporter::Start() {
  TTREC_CHECK_CONFIG(interval_.count() > 0,
                     "PeriodicReporter: interval must be positive");
  thread_ = std::thread([this] { Loop(); });
}

void PeriodicReporter::WriteLine() {
  // Producer runs outside mu_ — it may itself take locks (registry
  // snapshot) and must not deadlock against Stop().
  const std::string line = producer_();
  (*out_) << line << '\n';
  out_->flush();
  std::lock_guard<std::mutex> lock(mu_);
  ++lines_;
}

void PeriodicReporter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    WriteLine();
    lock.lock();
  }
}

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  WriteLine();  // final line: the end-of-run state always lands on disk
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

int64_t PeriodicReporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

}  // namespace ttrec::obs
