#include "obs/trace.h"

#include <algorithm>

#include "obs/json_writer.h"

namespace ttrec::obs {

Tracer& Tracer::Global() {
  // Leaked singleton: TraceScope dtors can run during static teardown of
  // other translation units, so the tracer must never be destroyed first.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Ring& Tracer::LocalRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>());
    Ring& r = *rings_.back();
    r.tid = static_cast<uint32_t>(rings_.size() - 1);
    r.buf.resize(static_cast<size_t>(capacity_));
    ring = &r;
  }
  return *ring;
}

void Tracer::Enable(int64_t events_per_thread) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<int64_t>(1, events_per_thread);
  for (auto& r : rings_) {
    std::lock_guard<std::mutex> rlock(r->mu);
    r->buf.assign(static_cast<size_t>(capacity_), TraceEvent{});
    r->next = 0;
    r->count = 0;
    r->dropped = 0;
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() {
  enabled_.store(false, std::memory_order_release);
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const char* name, int64_t ts_us, int64_t dur_us) {
  Ring& r = LocalRing();
  std::lock_guard<std::mutex> lock(r.mu);  // uncontended except during flush
  const int64_t cap = static_cast<int64_t>(r.buf.size());
  if (cap == 0) return;
  r.buf[static_cast<size_t>(r.next)] = TraceEvent{name, ts_us, dur_us};
  r.next = (r.next + 1) % cap;
  if (r.count < cap) {
    ++r.count;
  } else {
    ++r.dropped;  // the cursor just overwrote the oldest event
  }
}

std::string Tracer::FlushJson() {
  struct Flat {
    TraceEvent e;
    uint32_t tid;
  };
  std::vector<Flat> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& r : rings_) {
      std::lock_guard<std::mutex> rlock(r->mu);
      const int64_t cap = static_cast<int64_t>(r->buf.size());
      // Oldest event sits at the write cursor once the ring has wrapped.
      const int64_t first = r->count == cap ? r->next : 0;
      for (int64_t i = 0; i < r->count; ++i) {
        events.push_back(
            Flat{r->buf[static_cast<size_t>((first + i) % cap)], r->tid});
      }
      r->next = 0;
      r->count = 0;
      r->dropped = 0;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Flat& a, const Flat& b) {
                     return a.e.ts_us < b.e.ts_us;
                   });

  JsonWriter w;
  w.BeginObject();
  w.Kv("displayTimeUnit", "ms");
  w.Key("traceEvents").BeginArray();
  for (const Flat& f : events) {
    w.BeginObject();
    w.Kv("name", f.e.name);
    w.Kv("cat", "ttrec");
    w.Kv("ph", "X");
    w.Kv("ts", f.e.ts_us);
    w.Kv("dur", f.e.dur_us);
    w.Kv("pid", 1);
    w.Kv("tid", f.tid);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

int64_t Tracer::buffered() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rlock(r->mu);
    total += r->count;
  }
  return total;
}

int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rlock(r->mu);
    total += r->dropped;
  }
  return total;
}

}  // namespace ttrec::obs
