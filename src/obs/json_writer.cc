#include "json_writer.h"

#include <cmath>
#include <cstdio>

#include "tensor/check.h"

namespace ttrec::obs {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    TTREC_CHECK(stack_.back() == '[',
                "JsonWriter: value inside an object requires a Key() first");
    if (has_items_.back()) out_.push_back(',');
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  stack_.push_back('{');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  TTREC_CHECK(!stack_.empty() && stack_.back() == '{' && !after_key_,
              "JsonWriter: unbalanced EndObject()");
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  stack_.push_back('[');
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  TTREC_CHECK(!stack_.empty() && stack_.back() == '[' && !after_key_,
              "JsonWriter: unbalanced EndArray()");
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view k) {
  TTREC_CHECK(!stack_.empty() && stack_.back() == '{' && !after_key_,
              "JsonWriter: Key() is only valid directly inside an object");
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  AppendEscaped(out_, k);
  out_.push_back(':');
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(double v, int precision) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  BeforeValue();
  AppendEscaped(out_, v);
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  BeforeValue();
  out_ += json;
  return *this;
}

void BeginBenchEnvelope(JsonWriter& w, std::string_view bench_name) {
  w.BeginObject();
  w.Kv("schema_version", kBenchSchemaVersion);
  w.Kv("bench", bench_name);
}

}  // namespace ttrec::obs
