// Unified metrics substrate shared by the trainer, the TT kernels, the LFU
// cache, and the serving subsystem.
//
// The write-side primitives (StripedCounter, Histogram) are the lock-free
// designs proven in the serving layer, promoted here so every subsystem
// records through one implementation:
//   - StripedCounter stripes increments across cache-line-padded atomic
//     cells chosen by thread identity (relaxed ordering — counts, not
//     synchronization).
//   - Histogram is a fixed geometric-bucket atomic array: Record() is one
//     relaxed fetch_add, percentiles interpolate linearly inside the
//     winning bucket (~25% bucket-width resolution). Bucket bounds are
//     bit-identical to the original serving histogram so migrated
//     consumers report the same percentiles.
//
// MetricRegistry names these primitives. Creation (the first counter()/
// gauge()/histogram() call for a name) takes a mutex; the returned
// reference is stable for the registry's lifetime, so hot paths look up
// once and record lock-free thereafter. Snapshot()/ToJson() read without
// stopping writers — a snapshot under load is approximate at the margin of
// in-flight increments.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ttrec::obs {

/// Contention-resistant counter: each increment lands on one of kStripes
/// cache-line-padded cells chosen by thread identity; Total() sums all
/// cells.
class StripedCounter {
 public:
  void Add(int64_t n);
  int64_t Total() const;
  void Reset();

 private:
  static constexpr int kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// A last-write-wins double. Set() for instantaneous readings (queue depth,
/// bytes resident); Add() for accumulating contributions from several
/// sources into one figure (e.g. per-table memory summed across a model).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed geometric-bucket histogram. Values are conventionally
/// microseconds (hence the accessor names), but any non-negative int64
/// works. Record() is a single relaxed fetch_add; PercentileMicros
/// interpolates linearly inside the winning bucket.
class Histogram {
 public:
  Histogram();

  void Record(int64_t micros);
  int64_t TotalCount() const;
  /// p in (0, 100]. Returns 0 when the histogram is empty.
  double PercentileMicros(double p) const;
  double MeanMicros() const;
  void Reset();

 private:
  // Bucket i covers [bounds_[i], bounds_[i+1]) µs; bounds grow by ~1.25x
  // per bucket, so 96 buckets reach past half an hour.
  static constexpr int kBuckets = 96;
  int BucketFor(int64_t micros) const;

  std::array<int64_t, kBuckets + 1> bounds_;
  std::array<std::atomic<int64_t>, kBuckets> counts_{};
  std::atomic<int64_t> sum_micros_{0};
};

/// Point-in-time read of one histogram.
struct HistogramSnapshot {
  int64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Point-in-time read of a whole registry, sorted by metric name within
/// each kind (counters, gauges, histograms) so serialization is stable.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,p50,
  /// p95,p99}}} with keys in sorted order.
  std::string ToJson() const;
};

/// Named metrics. counter("x")/gauge("x")/histogram("x") create on first
/// use and return a reference that stays valid for the registry's
/// lifetime — cache it in hot paths; only the first lookup locks. A name
/// may be used for only one metric kind.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  StripedCounter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// nullptr when no metric of that kind exists under `name`.
  const StripedCounter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every registered metric (the metrics stay registered) and
  /// forgets all publication baselines (see StatPublisher), so the next
  /// publication after a Reset contributes full cumulative values again.
  void Reset();

  // Publication-baseline side channel used by StatPublisher. Returns the
  // value this (publisher, name) pair last stored in this registry (0 / 0.0
  // when it never published here) and records `value` as the new baseline.
  // Baselines live outside Snapshot()/ToJson().
  int64_t ExchangeCounterBaseline(uint64_t publisher_id, std::string_view name,
                                  int64_t value);
  double ExchangeGaugeBaseline(uint64_t publisher_id, std::string_view name,
                               double value);

 private:
  mutable std::mutex mu_;
  // std::map keeps names sorted, which Snapshot() relies on for stable
  // output; unique_ptr keeps references stable across rehash-free inserts.
  std::map<std::string, std::unique_ptr<StripedCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  // Keyed "name\x1f<publisher id>". Bounded by publishers x names, and a
  // registry that dies takes its baselines with it — no cross-registry
  // state.
  std::map<std::string, int64_t, std::less<>> counter_baselines_;
  std::map<std::string, double, std::less<>> gauge_baselines_;
};

/// Idempotent metric publication for objects that re-export *cumulative*
/// internal statistics (EmbeddingOp::CollectStats and friends). Publishing
/// a total with plain counter(name).Add(total) double-counts on the second
/// call; StatPublisher instead records, per (publisher, registry, name),
/// the value last published and adds only the delta. A fresh registry has
/// no baseline, so one-shot "collect into a throwaway registry" snapshots
/// still receive full totals, while repeated collection into a long-lived
/// registry stays exact. Each instance carries a process-unique id so
/// several publishers can share one metric name and their contributions
/// sum.
class StatPublisher {
 public:
  StatPublisher();
  /// Copies get a fresh id: a copied object publishes its own totals and
  /// must not inherit the original's baselines.
  StatPublisher(const StatPublisher&) : StatPublisher() {}
  StatPublisher& operator=(const StatPublisher&) { return *this; }

  /// reg.counter(name) ends up at exactly `cumulative` worth of this
  /// publisher's contribution (plus other publishers'), no matter how many
  /// times this is called. The counter is created even when the delta is 0.
  void Counter(MetricRegistry& reg, std::string_view name,
               int64_t cumulative) const;
  /// Same contract for gauges: this publisher's contribution to the summed
  /// gauge tracks `value` instead of accumulating per call.
  void Gauge(MetricRegistry& reg, std::string_view name, double value) const;

  uint64_t id() const { return id_; }

 private:
  uint64_t id_;
};

}  // namespace ttrec::obs
