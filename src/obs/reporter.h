// PeriodicReporter: a background thread that appends one JSON line per
// interval to a stream or file — the "what is the run doing right now"
// feed for long training jobs and live servers.
//
// The reporter is deliberately dumb: it owns cadence, shutdown, and
// flushing; the caller supplies a producer callback returning the line
// body (typically MetricRegistry::ToJson() or an InferenceServer metrics
// dump). One final line is always written on Stop() so short runs still
// leave a record.
#pragma once

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>

namespace ttrec::obs {

class PeriodicReporter {
 public:
  /// Returns one JSON object (no trailing newline); called from the
  /// reporter thread, so it must be safe to run concurrently with the
  /// instrumented code — registry snapshots are.
  using Producer = std::function<std::string()>;

  /// Appends to `out` every `interval`. The stream must outlive the
  /// reporter.
  PeriodicReporter(Producer producer, std::chrono::milliseconds interval,
                   std::ostream& out);
  /// Same, appending to the file at `path` (created if missing). Throws
  /// ttrec::ConfigError when the file cannot be opened.
  PeriodicReporter(Producer producer, std::chrono::milliseconds interval,
                   const std::string& path);

  /// Stops the thread, writing one final line first. Idempotent; also run
  /// by the destructor.
  void Stop();
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Lines written so far (including the final Stop() line once stopped).
  int64_t lines_written() const;

 private:
  void Start();
  void Loop();
  void WriteLine();

  Producer producer_;
  std::chrono::milliseconds interval_;
  std::ofstream file_;   // only used by the path constructor
  std::ostream* out_;    // points at file_ or the caller's stream

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  int64_t lines_ = 0;
  std::thread thread_;
};

}  // namespace ttrec::obs
