#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <thread>

#include "obs/json_writer.h"
#include "tensor/check.h"

namespace ttrec::obs {

namespace {

int ThreadStripe(int stripes) {
  // Hash of the thread id, computed once per thread. A plain modulo of the
  // hash is fine: we need spread, not uniformity.
  static thread_local const size_t tid_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<int>(tid_hash % static_cast<size_t>(stripes));
}

}  // namespace

void StripedCounter::Add(int64_t n) {
  cells_[static_cast<size_t>(ThreadStripe(kStripes))].value.fetch_add(
      n, std::memory_order_relaxed);
}

int64_t StripedCounter::Total() const {
  int64_t total = 0;
  for (const Cell& c : cells_) total += c.value.load(std::memory_order_relaxed);
  return total;
}

void StripedCounter::Reset() {
  for (Cell& c : cells_) c.value.store(0, std::memory_order_relaxed);
}

void Gauge::Add(double d) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + d,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() {
  bounds_[0] = 0;
  double v = 1.0;
  for (int i = 1; i <= kBuckets; ++i) {
    // Strictly increasing integer bounds: geometric growth once the 1.25x
    // step exceeds one microsecond, +1 before that.
    bounds_[static_cast<size_t>(i)] =
        std::max(bounds_[static_cast<size_t>(i - 1)] + 1,
                 static_cast<int64_t>(std::llround(v)));
    v *= 1.25;
  }
}

int Histogram::BucketFor(int64_t micros) const {
  if (micros < 0) micros = 0;
  // Last bound is an interpolation anchor, not a cap: values beyond it land
  // in the final bucket.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), micros);
  const int idx = static_cast<int>(it - bounds_.begin()) - 1;
  return std::min(idx, kBuckets - 1);
}

void Histogram::Record(int64_t micros) {
  counts_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros < 0 ? 0 : micros, std::memory_order_relaxed);
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::MeanMicros() const {
  const int64_t n = TotalCount();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double Histogram::PercentileMicros(double p) const {
  std::array<int64_t, kBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(i)];
  }
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t c = counts[static_cast<size_t>(i)];
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      const double lo = static_cast<double>(bounds_[static_cast<size_t>(i)]);
      const double hi =
          static_cast<double>(bounds_[static_cast<size_t>(i + 1)]);
      const double frac =
          std::clamp((target - cum) / static_cast<double>(c), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += static_cast<double>(c);
  }
  return static_cast<double>(bounds_[kBuckets]);
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

std::string MetricsSnapshot::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) w.Kv(name, value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) w.Kv(name, value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms) {
    w.Key(name).BeginObject();
    w.Kv("count", h.count);
    w.Kv("mean", h.mean);
    w.Kv("p50", h.p50);
    w.Kv("p95", h.p95);
    w.Kv("p99", h.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

StripedCounter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TTREC_CHECK_CONFIG(gauges_.find(name) == gauges_.end() &&
                         histograms_.find(name) == histograms_.end(),
                     "metric name already used by a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::make_unique<StripedCounter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TTREC_CHECK_CONFIG(counters_.find(name) == counters_.end() &&
                         histograms_.find(name) == histograms_.end(),
                     "metric name already used by a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  TTREC_CHECK_CONFIG(counters_.find(name) == counters_.end() &&
                         gauges_.find(name) == gauges_.end(),
                     "metric name already used by a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

const StripedCounter* MetricRegistry::FindCounter(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricRegistry::FindGauge(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->Total());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->Value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->TotalCount();
    hs.mean = h->MeanMicros();
    hs.p50 = h->PercentileMicros(50.0);
    hs.p95 = h->PercentileMicros(95.0);
    hs.p99 = h->PercentileMicros(99.0);
    s.histograms.emplace_back(name, hs);
  }
  return s;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  counter_baselines_.clear();
  gauge_baselines_.clear();
}

namespace {

std::string BaselineKey(std::string_view name, uint64_t publisher_id) {
  std::string key(name);
  key.push_back('\x1f');
  key += std::to_string(publisher_id);
  return key;
}

}  // namespace

int64_t MetricRegistry::ExchangeCounterBaseline(uint64_t publisher_id,
                                                std::string_view name,
                                                int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t& slot = counter_baselines_[BaselineKey(name, publisher_id)];
  const int64_t prev = slot;
  slot = value;
  return prev;
}

double MetricRegistry::ExchangeGaugeBaseline(uint64_t publisher_id,
                                             std::string_view name,
                                             double value) {
  std::lock_guard<std::mutex> lock(mu_);
  double& slot = gauge_baselines_[BaselineKey(name, publisher_id)];
  const double prev = slot;
  slot = value;
  return prev;
}

StatPublisher::StatPublisher() {
  static std::atomic<uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

void StatPublisher::Counter(MetricRegistry& reg, std::string_view name,
                            int64_t cumulative) const {
  StripedCounter& c = reg.counter(name);  // exists even at a zero delta
  const int64_t prev = reg.ExchangeCounterBaseline(id_, name, cumulative);
  if (cumulative != prev) c.Add(cumulative - prev);
}

void StatPublisher::Gauge(MetricRegistry& reg, std::string_view name,
                          double value) const {
  class Gauge& g = reg.gauge(name);
  const double prev = reg.ExchangeGaugeBaseline(id_, name, value);
  if (value != prev) g.Add(value - prev);
}

}  // namespace ttrec::obs
