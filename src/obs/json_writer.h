// Minimal streaming JSON writer — the single serialization surface for
// every machine-readable artifact this repo emits: MetricRegistry
// snapshots, ServeMetrics telemetry, chrome://tracing dumps, and the
// BENCH_*.json envelopes the bench binaries write for CI.
//
// Key order is exactly the call order (deterministic output), commas and
// nesting are handled by a state stack, and doubles are printed with a
// caller-chosen fixed precision so diffs of two runs stay line-stable.
// No external dependency, no DOM — append-only.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ttrec::obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits the key of the next object member. Must be directly followed by
  /// a Value/Begin* call.
  JsonWriter& Key(std::string_view k);

  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(uint32_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(uint64_t v) { return Value(static_cast<int64_t>(v)); }
  /// Fixed-precision double ("%.<precision>f"); non-finite values are
  /// emitted as null (JSON has no NaN/Inf).
  JsonWriter& Value(double v, int precision = 3);
  JsonWriter& Value(bool v);
  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  /// Splices pre-serialized JSON verbatim (e.g. a nested registry dump).
  JsonWriter& RawValue(std::string_view json);

  /// Key(k) + Value(v) in one call, for flat blocks.
  template <typename T>
  JsonWriter& Kv(std::string_view k, T v) {
    Key(k);
    return Value(v);
  }
  JsonWriter& Kv(std::string_view k, double v, int precision) {
    Key(k);
    return Value(v, precision);
  }

  /// The serialized document. Valid once every Begin* has been closed.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  std::vector<char> stack_;       // '{' or '['
  std::vector<bool> has_items_;   // per open scope: need a comma?
  bool after_key_ = false;
};

/// Opens the shared bench-artifact envelope: `{"schema_version":2,
/// "bench":"<name>",` — the caller then writes its config echo and metric
/// blocks and closes the object. Every BENCH_*.json starts this way so CI
/// consumers can dispatch on one stable header.
void BeginBenchEnvelope(JsonWriter& w, std::string_view bench_name);

/// Current bench-envelope schema version.
/// v2: kernel bench artifacts stamp the machine (cpu_model) and SIMD
/// dispatch tier (simd_tier_detected / simd_tier_active) and report
/// achieved GFLOP/s / bytes/s per kernel, so perf numbers are attributable
/// and the speedup claims are checkable from the artifact alone.
inline constexpr int kBenchSchemaVersion = 2;

}  // namespace ttrec::obs
