// Low-overhead tracing: RAII spans recorded into per-thread ring buffers,
// flushable as chrome://tracing ("trace event format") JSON that loads
// directly in Perfetto / chrome://tracing.
//
// Cost model, in order of how often each case runs:
//   - Tracing disabled (the default): a TraceScope is one relaxed atomic
//     load and two register writes — no clock read, no allocation, ~1-2ns.
//     The deterministic parallel kernels never observe it.
//   - Compiled out: building with -DTTREC_NO_TRACING turns the
//     TTREC_TRACE_SCOPE macro into a no-op statement, removing even that
//     load.
//   - Tracing enabled: ctor reads the steady clock; dtor reads it again
//     and appends one fixed-size event to the calling thread's ring
//     buffer (a briefly-held uncontended per-thread mutex, so flushing
//     from another thread stays race-free under TSan).
//
// Ring buffers drop the OLDEST events when full: a capture that outlives
// its buffer keeps the most recent window, which is the window you want
// when something just went slow. Buffers are owned by the global Tracer
// (not the thread), so events recorded by short-lived threads survive into
// FlushJson().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ttrec::obs {

/// One completed span ("ph":"X" in the trace event format). `name` must be
/// a string with static storage duration (literals) — events store the
/// pointer, not a copy.
struct TraceEvent {
  const char* name = nullptr;
  int64_t ts_us = 0;   // start, µs since the tracer's enable epoch
  int64_t dur_us = 0;  // duration, µs
};

/// Process-global trace collector. All methods are thread-safe.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts (or restarts) a capture: resets the time epoch, clears all
  /// buffered events, and sizes every per-thread ring to
  /// `events_per_thread`.
  void Enable(int64_t events_per_thread = 1 << 16);
  /// Stops recording. Buffered events stay available for FlushJson().
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since the enable epoch.
  int64_t NowMicros() const;
  /// Appends a completed span to the calling thread's ring buffer.
  void Record(const char* name, int64_t ts_us, int64_t dur_us);

  /// Drains every ring into one chrome trace-event JSON document
  /// ({"displayTimeUnit":"ms","traceEvents":[...]}), events sorted by
  /// start time. Clears the buffers and the dropped counter.
  std::string FlushJson();

  /// Events currently buffered across all rings.
  int64_t buffered() const;
  /// Events overwritten (oldest-first) since the last Enable()/FlushJson().
  int64_t dropped() const;

 private:
  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> buf;  // capacity-sized once registered
    int64_t next = 0;             // write cursor
    int64_t count = 0;            // valid events, <= buf.size()
    int64_t dropped = 0;
    uint32_t tid = 0;  // small sequential id for the "tid" JSON field
  };

  Tracer() = default;
  Ring& LocalRing();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;                     // guards rings_ / capacity_
  std::vector<std::unique_ptr<Ring>> rings_;  // stable addresses, never shrinks
  int64_t capacity_ = 1 << 16;
};

/// RAII span: times the enclosing scope and records it under `name` (a
/// string literal) when tracing is enabled. When disabled, construction is
/// a single relaxed load.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    Tracer& t = Tracer::Global();
    if (!t.enabled()) return;  // fast path: name_ stays null, dtor is free
    name_ = name;
    start_us_ = t.NowMicros();
  }
  ~TraceScope() {
    if (name_ == nullptr) return;
    Tracer& t = Tracer::Global();
    t.Record(name_, start_us_, t.NowMicros() - start_us_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_us_ = 0;
};

}  // namespace ttrec::obs

// Instrumentation entry point. Expands to a scoped RAII span, or to a
// no-op statement when the build defines TTREC_NO_TRACING (the
// compiled-out kill switch for zero-overhead builds).
#define TTREC_TRACE_CONCAT_INNER_(a, b) a##b
#define TTREC_TRACE_CONCAT_(a, b) TTREC_TRACE_CONCAT_INNER_(a, b)
#if defined(TTREC_NO_TRACING)
#define TTREC_TRACE_SCOPE(name) static_cast<void>(0)
#else
#define TTREC_TRACE_SCOPE(name)                                      \
  ::ttrec::obs::TraceScope TTREC_TRACE_CONCAT_(ttrec_trace_scope_,   \
                                               __COUNTER__)((name))
#endif
