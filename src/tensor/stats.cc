#include "tensor/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <sstream>

#include "tensor/check.h"

namespace ttrec {

void RunningMoments::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::AddAll(std::span<const float> xs) {
  for (float x : xs) Add(x);
}

double RunningMoments::variance() const {
  return count_ >= 2 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningMoments::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / num_bins) {
  TTREC_CHECK_CONFIG(hi > lo, "Histogram: hi must exceed lo");
  TTREC_CHECK_CONFIG(num_bins >= 1, "Histogram: need at least one bin");
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

void Histogram::Add(double x) {
  int bin = static_cast<int>((x - lo_) / width_);
  bin = std::clamp(bin, 0, num_bins() - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(std::span<const float> xs) {
  for (float x : xs) Add(x);
}

double Histogram::bin_center(int i) const {
  TTREC_CHECK_INDEX(i >= 0 && i < num_bins(), "Histogram bin out of range");
  return lo_ + (i + 0.5) * width_;
}

int64_t Histogram::count(int i) const {
  TTREC_CHECK_INDEX(i >= 0 && i < num_bins(), "Histogram bin out of range");
  return counts_[static_cast<size_t>(i)];
}

double Histogram::Density(int i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(i)) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::ToAscii(int max_width) const {
  int64_t peak = 1;
  for (int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (int i = 0; i < num_bins(); ++i) {
    const int w = static_cast<int>(
        static_cast<double>(count(i)) / static_cast<double>(peak) * max_width);
    os.width(9);
    os.precision(3);
    os << std::fixed << bin_center(i) << " |" << std::string(w, '#') << "\n";
  }
  return os.str();
}

double GaussianPdf(double x, double mu, double sigma2) {
  TTREC_CHECK_CONFIG(sigma2 > 0.0, "GaussianPdf: sigma2 must be positive");
  const double d = x - mu;
  return std::exp(-0.5 * d * d / sigma2) /
         std::sqrt(2.0 * std::numbers::pi * sigma2);
}

double KlUniformVsGaussian(double a, double b, double mu, double sigma2) {
  TTREC_CHECK_CONFIG(b > a, "KlUniformVsGaussian: b must exceed a");
  TTREC_CHECK_CONFIG(sigma2 > 0.0, "KlUniformVsGaussian: sigma2 > 0 required");
  // D = -ln(b-a) + 0.5 ln(2 pi sigma2) + E_U[(x-mu)^2] / (2 sigma2), with
  // E_U[(x-mu)^2] = ((b-mu)^3 - (a-mu)^3) / (3 (b-a)).
  const double second_moment =
      (std::pow(b - mu, 3) - std::pow(a - mu, 3)) / (3.0 * (b - a));
  return -std::log(b - a) +
         0.5 * std::log(2.0 * std::numbers::pi * sigma2) +
         second_moment / (2.0 * sigma2);
}

double KlHistogramVsGaussian(const Histogram& hist, double mu, double sigma2) {
  double kl = 0.0;
  for (int i = 0; i < hist.num_bins(); ++i) {
    const double p = hist.Density(i);
    if (p <= 0.0) continue;
    const double q =
        std::max(GaussianPdf(hist.bin_center(i), mu, sigma2),
                 std::numeric_limits<double>::min());
    kl += p * std::log(p / q) * hist.bin_width();
  }
  return kl;
}

}  // namespace ttrec
