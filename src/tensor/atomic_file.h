// Crash-safe file replacement: write-to-temp + flush + fsync + rename.
//
// A `kill -9`, full disk, or power loss during a save must never leave a
// torn file at the destination path: either the old contents survive intact
// or the new contents are complete. POSIX rename(2) within one filesystem
// gives exactly that guarantee once the temp file's data has reached disk.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace ttrec {

/// Atomically replaces `path`: `produce` writes the payload into a
/// temporary file in the same directory, which is then flushed, fsync'd,
/// and renamed over `path` (the directory entry is fsync'd too). On any
/// failure — including an exception thrown by `produce` — the temp file is
/// removed and the destination is left untouched. Throws TtRecError on
/// I/O failure.
void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& produce);

}  // namespace ttrec
