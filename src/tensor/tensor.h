// A minimal dense float tensor: contiguous row-major storage plus a shape.
//
// The heavy kernels in this library (GEMM, TT contraction) operate on raw
// float pointers with explicit dimensions for speed; Tensor exists to own
// storage, carry shape metadata through module boundaries, and provide
// bounds-checked element access for tests and glue code.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "tensor/check.h"

namespace ttrec {

/// Dense row-major float tensor with owned storage.
class Tensor {
 public:
  /// An empty 0-d tensor with no elements.
  Tensor() = default;

  /// Allocates a zero-initialized tensor with the given shape.
  /// Every dimension must be positive.
  explicit Tensor(std::vector<int64_t> shape);

  /// Convenience: Tensor({2, 3}).
  Tensor(std::initializer_list<int64_t> shape)
      : Tensor(std::vector<int64_t>(shape)) {}

  /// Wraps existing data (copied) with a shape; sizes must agree.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int i) const;
  int ndim() const { return static_cast<int>(shape_.size()); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  /// Bounds-checked element access; `idx` must have ndim() entries.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  /// Linear (flat) element access, bounds-checked.
  float& operator[](int64_t i);
  float operator[](int64_t i) const;

  /// Reinterprets the tensor with a new shape of identical numel.
  void Reshape(std::vector<int64_t> new_shape);

  /// Sets all elements to `value`.
  void Fill(float value);

  /// Elementwise this += alpha * other. Shapes must match exactly.
  void Axpy(float alpha, const Tensor& other);

  /// Frobenius norm of the tensor.
  double Norm() const;

  /// Returns the product of `shape`, validating positivity.
  static int64_t NumelOf(const std::vector<int64_t>& shape);

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> idx) const;

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Max absolute elementwise difference between two same-shaped tensors.
double MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace ttrec
