#include "tensor/tensor.h"

#include <cmath>

namespace ttrec {

int64_t Tensor::NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    TTREC_CHECK_SHAPE(d > 0, "tensor dimensions must be positive, got ", d);
    TTREC_CHECK_SHAPE(n <= (int64_t{1} << 40) / d,
                      "tensor too large: numel overflow");
    n *= d;
  }
  return n;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(NumelOf(shape_)), 0.0f) {}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  TTREC_CHECK_SHAPE(NumelOf(shape_) == static_cast<int64_t>(data_.size()),
                    "shape/data size mismatch: shape numel ", NumelOf(shape_),
                    " vs data size ", data_.size());
}

int64_t Tensor::dim(int i) const {
  TTREC_CHECK_INDEX(i >= 0 && i < ndim(), "dim index ", i, " out of range for ",
                    ndim(), "-d tensor");
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> idx) const {
  TTREC_CHECK_INDEX(static_cast<int>(idx.size()) == ndim(), "expected ",
                    ndim(), " indices, got ", idx.size());
  int64_t flat = 0;
  int i = 0;
  for (int64_t v : idx) {
    const int64_t d = shape_[static_cast<size_t>(i)];
    TTREC_CHECK_INDEX(v >= 0 && v < d, "index ", v, " out of range [0, ", d,
                      ") in dim ", i);
    flat = flat * d + v;
    ++i;
  }
  return flat;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(FlatIndex(idx))];
}

float& Tensor::operator[](int64_t i) {
  TTREC_CHECK_INDEX(i >= 0 && i < numel(), "flat index ", i,
                    " out of range [0, ", numel(), ")");
  return data_[static_cast<size_t>(i)];
}

float Tensor::operator[](int64_t i) const {
  TTREC_CHECK_INDEX(i >= 0 && i < numel(), "flat index ", i,
                    " out of range [0, ", numel(), ")");
  return data_[static_cast<size_t>(i)];
}

void Tensor::Reshape(std::vector<int64_t> new_shape) {
  TTREC_CHECK_SHAPE(NumelOf(new_shape) == numel(),
                    "reshape numel mismatch: ", NumelOf(new_shape), " vs ",
                    numel());
  shape_ = std::move(new_shape);
}

void Tensor::Fill(float value) {
  for (float& x : data_) x = value;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  TTREC_CHECK_SHAPE(shape_ == other.shape_, "Axpy shape mismatch");
  const float* o = other.data();
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * o[i];
}

double Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

double MaxAbsDiff(const Tensor& a, const Tensor& b) {
  TTREC_CHECK_SHAPE(a.shape() == b.shape(), "MaxAbsDiff shape mismatch");
  double m = 0.0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(pa[i]) - pb[i]));
  }
  return m;
}

}  // namespace ttrec
