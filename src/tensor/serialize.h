// Minimal versioned binary serialization for tensors and POD vectors.
//
// Little-endian, length-prefixed sections, FNV-1a checksum trailer. Used to
// persist TT cores (tt/tt_io.h) and embedding tables so compressed models
// can be exported from training and loaded by serving replicas.
//
// Crash-safety layer: writers can additionally frame payloads into named,
// CRC32-protected sections ([name][i64 size][payload][u32 crc32]). A torn
// or bit-flipped file is then detected at the granularity of one section —
// without parsing the payload — which is what the checkpoint verifier
// (dlrm/checkpoint.h, `ttrec_info verify`) relies on.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ttrec {

/// Running CRC32 (IEEE 802.3, polynomial 0xEDB88320). Pass the previous
/// return value as `crc` to continue over multiple buffers; start with 0.
uint32_t Crc32(const void* data, size_t bytes, uint32_t crc = 0);

/// FNV-1a offset basis — the seed for Fnv1a, and the value the
/// BinaryWriter/BinaryReader whole-file trailers start from.
inline constexpr uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;

/// Running 64-bit FNV-1a. Pass the previous return value as `h` to continue
/// over multiple buffers. External verifiers (dlrm/checkpoint.h) use this
/// to recompute a file's trailer without a BinaryReader.
uint64_t Fnv1a(const void* data, size_t bytes, uint64_t h = kFnv1aOffset);

/// Streaming writer with a running FNV-1a checksum.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os);

  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteI64Vec(const std::vector<int64_t>& v);
  void WriteFloats(const float* data, size_t count);
  void WriteString(const std::string& s);

  /// Appends pre-serialized bytes verbatim — no length prefix, no framing.
  /// The payload-splice path: a producer captures some state with its own
  /// BinaryWriter into a buffer, and a later writer splices those bytes
  /// into a section as if the original Write* calls had happened here
  /// (dlrm/checkpoint.h uses this to embed a batch-stream cursor that was
  /// captured earlier than the snapshot is assembled). The resulting file
  /// bytes, CRCs, and trailer are identical to the direct-write path.
  void WriteBytes(const void* data, size_t bytes);

  /// Begins a named, CRC32-protected section. Writes between BeginSection
  /// and EndSection are buffered; EndSection emits
  /// [name][i64 payload size][payload][u32 crc32] to the stream. Sections
  /// do not nest.
  void BeginSection(const std::string& name);
  void EndSection();

  /// Writes the checksum trailer; call exactly once, last.
  void Finish();

  uint64_t checksum() const { return checksum_; }

 private:
  void WriteRaw(const void* data, size_t bytes);
  void WriteToStream(const void* data, size_t bytes);

  std::ostream& os_;
  uint64_t checksum_;
  bool finished_ = false;
  bool in_section_ = false;
  std::string section_name_;
  std::vector<char> section_buf_;
};

/// Streaming reader that mirrors BinaryWriter and validates the trailer.
class BinaryReader {
 public:
  /// Header of a section as stored on disk.
  struct SectionHeader {
    std::string name;
    uint64_t size = 0;
  };

  explicit BinaryReader(std::istream& is);

  uint32_t ReadU32();
  int64_t ReadI64();
  std::vector<int64_t> ReadI64Vec();
  void ReadFloats(float* data, size_t count);
  std::string ReadString();

  /// Reads a section header without constraining the name (used by
  /// verifiers that walk unknown files). Subsequent reads are tracked
  /// against the declared size and a running CRC32 until EndSection.
  SectionHeader BeginAnySection();

  /// Reads a section header and checks the name matches; returns the
  /// payload size. Throws TtRecError on mismatch.
  uint64_t BeginSection(const std::string& expected_name);

  /// Validates that exactly the declared payload size was consumed and
  /// that the stored CRC32 matches the bytes read. Throws on corruption.
  void EndSection();

  /// Consumes `bytes` payload bytes without interpreting them (still
  /// feeds the CRC32/FNV checksums) — lets a verifier validate sections
  /// without materializing tensors.
  void SkipBytes(uint64_t bytes);

  /// Unconsumed payload bytes of the current section (0 outside one).
  uint64_t SectionRemaining() const {
    return in_section_ ? section_remaining_ : 0;
  }

  /// Reads and validates the checksum trailer; throws TtRecError on
  /// mismatch or short stream.
  void Finish();

 private:
  void ReadRaw(void* data, size_t bytes);

  std::istream& is_;
  uint64_t checksum_;
  bool in_section_ = false;
  std::string section_name_;
  uint64_t section_remaining_ = 0;
  uint32_t section_crc_ = 0;
};

/// Tensor <-> stream (shape + raw float data).
void SaveTensor(BinaryWriter& w, const Tensor& t);
Tensor LoadTensor(BinaryReader& r);

}  // namespace ttrec
