// Minimal versioned binary serialization for tensors and POD vectors.
//
// Little-endian, length-prefixed sections, FNV-1a checksum trailer. Used to
// persist TT cores (tt/tt_io.h) and embedding tables so compressed models
// can be exported from training and loaded by serving replicas.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ttrec {

/// Streaming writer with a running FNV-1a checksum.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os);

  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteI64Vec(const std::vector<int64_t>& v);
  void WriteFloats(const float* data, size_t count);
  void WriteString(const std::string& s);

  /// Writes the checksum trailer; call exactly once, last.
  void Finish();

  uint64_t checksum() const { return checksum_; }

 private:
  void WriteRaw(const void* data, size_t bytes);

  std::ostream& os_;
  uint64_t checksum_;
  bool finished_ = false;
};

/// Streaming reader that mirrors BinaryWriter and validates the trailer.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is);

  uint32_t ReadU32();
  int64_t ReadI64();
  std::vector<int64_t> ReadI64Vec();
  void ReadFloats(float* data, size_t count);
  std::string ReadString();

  /// Reads and validates the checksum trailer; throws TtRecError on
  /// mismatch or short stream.
  void Finish();

 private:
  void ReadRaw(void* data, size_t bytes);

  std::istream& is_;
  uint64_t checksum_;
};

/// Tensor <-> stream (shape + raw float data).
void SaveTensor(BinaryWriter& w, const Tensor& t);
Tensor LoadTensor(BinaryReader& r);

}  // namespace ttrec
