#include "tensor/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/check.h"

namespace ttrec {

namespace {

// One-sided Jacobi on the columns of `a` (m x n, column-major accumulation
// done in-place on a row-major buffer). Accumulates right rotations into v
// (n x n, starts as identity). After convergence the columns of `a` are
// U * diag(s).
void JacobiSweeps(std::vector<double>& a, int64_t m, int64_t n,
                  std::vector<double>& v, int max_sweeps, double tol) {
  auto col_dot = [&](int64_t p, int64_t q) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += a[i * n + p] * a[i * n + q];
    return s;
  };
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double app = col_dot(p, p);
        const double aqq = col_dot(q, q);
        const double apq = col_dot(p, q);
        if (std::abs(apq) <= tol * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        // Classic Jacobi rotation annihilating the (p, q) Gram entry.
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(tau) + std::sqrt(1.0 + tau * tau)), tau);
        const double cs = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = cs * t;
        for (int64_t i = 0; i < m; ++i) {
          const double ap = a[i * n + p];
          const double aq = a[i * n + q];
          a[i * n + p] = cs * ap - sn * aq;
          a[i * n + q] = sn * ap + cs * aq;
        }
        for (int64_t i = 0; i < n; ++i) {
          const double vp = v[i * n + p];
          const double vq = v[i * n + q];
          v[i * n + p] = cs * vp - sn * vq;
          v[i * n + q] = sn * vp + cs * vq;
        }
      }
    }
    if (converged) break;
  }
}

SvdResult SvdTall(const Tensor& input) {
  // Requires m >= n.
  const int64_t m = input.dim(0);
  const int64_t n = input.dim(1);
  std::vector<double> a(input.data(), input.data() + input.numel());
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[i * n + i] = 1.0;
  JacobiSweeps(a, m, n, v, /*max_sweeps=*/60, /*tol=*/1e-10);

  // Column norms are the singular values; sort descending.
  std::vector<double> sigma(static_cast<size_t>(n), 0.0);
  for (int64_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (int64_t i = 0; i < m; ++i) s += a[i * n + j] * a[i * n + j];
    sigma[static_cast<size_t>(j)] = std::sqrt(s);
  }
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return sigma[x] > sigma[y]; });

  SvdResult out;
  out.u = Tensor({m, n});
  out.vt = Tensor({n, n});
  out.s.resize(static_cast<size_t>(n));
  for (int64_t jj = 0; jj < n; ++jj) {
    const int64_t j = order[static_cast<size_t>(jj)];
    const double s = sigma[static_cast<size_t>(j)];
    out.s[static_cast<size_t>(jj)] = static_cast<float>(s);
    // Left vectors: normalized columns. Zero singular value -> zero column
    // (rank deficiency); the reconstruction is unaffected.
    const double inv = (s > 0.0) ? 1.0 / s : 0.0;
    for (int64_t i = 0; i < m; ++i) {
      out.u.data()[i * n + jj] = static_cast<float>(a[i * n + j] * inv);
    }
    for (int64_t i = 0; i < n; ++i) {
      out.vt.data()[jj * n + i] = static_cast<float>(v[i * n + j]);
    }
  }
  return out;
}

Tensor TransposeTensor(const Tensor& a) {
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor t({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) t.data()[j * m + i] = a.data()[i * n + j];
  }
  return t;
}

}  // namespace

SvdResult Svd(const Tensor& a, int max_sweeps, double tol) {
  TTREC_CHECK_SHAPE(a.ndim() == 2, "Svd expects a matrix, got ", a.ndim(),
                    "-d tensor");
  (void)max_sweeps;
  (void)tol;
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  if (m >= n) return SvdTall(a);
  // A = U S V^T  <=>  A^T = V S U^T: decompose the transpose and swap roles.
  SvdResult t = SvdTall(TransposeTensor(a));
  SvdResult out;
  out.s = std::move(t.s);
  out.u = TransposeTensor(t.vt);  // m x r
  out.vt = TransposeTensor(t.u);  // r x n
  return out;
}

SvdResult TruncatedSvd(const Tensor& a, int64_t rank, int max_sweeps,
                       double tol) {
  TTREC_CHECK_CONFIG(rank >= 1, "TruncatedSvd: rank must be >= 1, got ", rank);
  SvdResult full = Svd(a, max_sweeps, tol);
  const int64_t r_full = static_cast<int64_t>(full.s.size());
  const int64_t r = std::min(rank, r_full);
  if (r == r_full) return full;

  const int64_t m = full.u.dim(0);
  const int64_t n = full.vt.dim(1);
  SvdResult out;
  out.s.assign(full.s.begin(), full.s.begin() + r);
  out.u = Tensor({m, r});
  out.vt = Tensor({r, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      out.u.data()[i * r + j] = full.u.data()[i * r_full + j];
    }
  }
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out.vt.data()[i * n + j] = full.vt.data()[i * n + j];
    }
  }
  return out;
}

Tensor SvdReconstruct(const SvdResult& svd) {
  const int64_t m = svd.u.dim(0);
  const int64_t r = svd.u.dim(1);
  const int64_t n = svd.vt.dim(1);
  TTREC_CHECK_SHAPE(static_cast<int64_t>(svd.s.size()) == r &&
                        svd.vt.dim(0) == r,
                    "SvdReconstruct: inconsistent ranks");
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t k = 0; k < r; ++k) {
      const float us = svd.u.data()[i * r + k] * svd.s[static_cast<size_t>(k)];
      const float* v = svd.vt.data() + k * n;
      float* o = out.data() + i * n;
      for (int64_t j = 0; j < n; ++j) o[j] += us * v[j];
    }
  }
  return out;
}

}  // namespace ttrec
