#include "tensor/batched_gemm.h"

#include "tensor/check.h"
#include "tensor/parallel.h"

namespace ttrec {

namespace {

void CheckShape(const BatchedGemmShape& s) {
  TTREC_CHECK_SHAPE(s.m >= 0 && s.n >= 0 && s.k >= 0,
                    "BatchedGemm dims must be non-negative");
}

}  // namespace

void BatchedGemm(const BatchedGemmShape& shape, std::span<const float* const> a,
                 std::span<const float* const> b, std::span<float* const> c,
                 bool deterministic) {
  CheckShape(shape);
  TTREC_CHECK_SHAPE(a.size() == b.size() && b.size() == c.size(),
                    "BatchedGemm: pointer array sizes differ: ", a.size(), "/",
                    b.size(), "/", c.size());
  const int64_t count = static_cast<int64_t>(a.size());
  if (count == 0) return;

  auto run_one = [&](int64_t i) {
    TTREC_CHECK_INDEX(a[i] != nullptr && b[i] != nullptr && c[i] != nullptr,
                      "BatchedGemm: null pointer in problem ", i);
    Gemm(shape.ta, shape.tb, shape.m, shape.n, shape.k, shape.alpha, a[i],
         (shape.ta == Trans::kNo) ? shape.k : shape.m, b[i],
         (shape.tb == Trans::kNo) ? shape.n : shape.k, shape.beta, c[i],
         shape.n);
  };

  // Deterministic mode runs the batch in order on this thread. Nested calls
  // (issued from inside a ParallelFor chunk — e.g. a TT block task) also go
  // inline explicitly: the pool's re-entrancy would run them inline anyway,
  // but taking the branch here skips queue bookkeeping and documents that a
  // batched GEMM inside an outer parallel region is sequential-in-order,
  // which the TT kernels' determinism contract relies on.
  if (deterministic || ThreadPool::InParallelRegion()) {
    for (int64_t i = 0; i < count; ++i) run_one(i);
    return;
  }
  // Grain sized so each worker gets a few thousand FLOPs minimum; tiny TT
  // problems otherwise drown in scheduling overhead.
  const int64_t flops = std::max<int64_t>(1, shape.m * shape.n * shape.k);
  const int64_t grain = std::max<int64_t>(1, 16384 / flops);
  ParallelFor(
      count,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) run_one(i);
      },
      grain);
}

void StridedBatchedGemm(const BatchedGemmShape& shape, const float* a,
                        int64_t stride_a, const float* b, int64_t stride_b,
                        float* c, int64_t stride_c, int64_t count) {
  CheckShape(shape);
  TTREC_CHECK_SHAPE(count >= 0, "StridedBatchedGemm: negative count");
  if (ThreadPool::InParallelRegion()) {
    for (int64_t i = 0; i < count; ++i) {
      Gemm(shape.ta, shape.tb, shape.m, shape.n, shape.k, shape.alpha,
           a + i * stride_a, (shape.ta == Trans::kNo) ? shape.k : shape.m,
           b + i * stride_b, (shape.tb == Trans::kNo) ? shape.n : shape.k,
           shape.beta, c + i * stride_c, shape.n);
    }
    return;
  }
  const int64_t flops = std::max<int64_t>(1, shape.m * shape.n * shape.k);
  const int64_t grain = std::max<int64_t>(1, 16384 / flops);
  ParallelFor(
      count,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          Gemm(shape.ta, shape.tb, shape.m, shape.n, shape.k, shape.alpha,
               a + i * stride_a, (shape.ta == Trans::kNo) ? shape.k : shape.m,
               b + i * stride_b, (shape.tb == Trans::kNo) ? shape.n : shape.k,
               shape.beta, c + i * stride_c, shape.n);
        }
      },
      grain);
}

}  // namespace ttrec
