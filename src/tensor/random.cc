#include "tensor/random.h"

#include <cmath>
#include <numbers>
#include <numeric>

#include "tensor/check.h"

namespace ttrec {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUInt64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUInt64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TTREC_CHECK_CONFIG(lo <= hi, "Uniform: lo > hi");
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::RandInt(int64_t n) {
  TTREC_CHECK_CONFIG(n > 0, "RandInt: n must be positive, got ", n);
  // Rejection to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = max() - max() % un;
  uint64_t x;
  do {
    x = NextUInt64();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; uses one fresh pair per call for reproducibility under
  // Split()/interleaving (no cached second value).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::TruncatedTailNormal(double threshold) {
  TTREC_CHECK_CONFIG(threshold >= 0.0,
                     "TruncatedTailNormal: threshold must be >= 0");
  // Acceptance probability for t=2 is ~4.6%; with the sizes of TT cores
  // (<2M entries) plain rejection is fast enough and exact.
  for (;;) {
    const double x = Normal();
    if (std::abs(x) > threshold) return x;
  }
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Split() { return Rng(NextUInt64()); }

void Rng::GetState(uint64_t out[4]) const {
  for (int i = 0; i < 4; ++i) out[i] = s_[i];
}

void Rng::SetState(const uint64_t in[4]) {
  for (int i = 0; i < 4; ++i) s_[i] = in[i];
}

double TailNormalStddev(double threshold) {
  if (threshold <= 0.0) return 1.0;
  // For X ~ N(0,1) conditioned on |X| > t: E[X]=0 and
  // Var = 1 + t*phi(t)/Q(t), with phi the pdf and Q the two-sided tail mass
  // of the half distribution. Derivation: symmetry + the truncated-normal
  // second moment.
  const double t = threshold;
  const double phi =
      std::exp(-0.5 * t * t) / std::sqrt(2.0 * std::numbers::pi);
  const double tail = 0.5 * std::erfc(t / std::numbers::sqrt2);  // P(X > t)
  return std::sqrt(1.0 + t * phi / tail);
}

// ---------------------------------------------------------------------------
// ZipfSampler (Hormann & Derflinger rejection-inversion, as in Apache
// Commons RejectionInversionZipfSampler). Internally samples ranks in
// [1, n] with pmf 1/k^s and returns k-1.
// ---------------------------------------------------------------------------

namespace {

// log1p(x)/x, stable near zero.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

// expm1(x)/x, stable near zero.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + 0.5 * x * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

}  // namespace

ZipfSampler::ZipfSampler(int64_t n, double s) : n_(n), s_(s) {
  TTREC_CHECK_CONFIG(n >= 1, "ZipfSampler: n must be >= 1, got ", n);
  TTREC_CHECK_CONFIG(s >= 0.0, "ZipfSampler: s must be >= 0, got ", s);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfSampler::H(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) t = -1.0;  // guard rounding at the left boundary
  return std::exp(Helper1(t) * x);
}

int64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (s_ == 0.0) return rng.RandInt(n_);
  for (;;) {
    const double u =
        h_integral_n_ + rng.NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= HIntegral(static_cast<double>(k) + 0.5) -
                 H(static_cast<double>(k))) {
      return k - 1;
    }
  }
}

double ZipfSampler::Pmf(int64_t k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < n_, "ZipfSampler::Pmf: rank out of range");
  if (norm_ < 0.0) {
    double z = 0.0;
    for (int64_t i = 1; i <= n_; ++i) z += std::pow(static_cast<double>(i), -s_);
    norm_ = z;
  }
  return std::pow(static_cast<double>(k + 1), -s_) / norm_;
}

IndexShuffle::IndexShuffle(int64_t n, uint64_t seed) : n_(n) {
  TTREC_CHECK_CONFIG(n >= 1, "IndexShuffle: n must be >= 1");
  Rng rng(seed);
  // Pick a multiplier coprime with n (odd + not sharing factors). Try
  // random candidates; density of coprimes guarantees quick success.
  do {
    a_ = 1 + rng.RandInt(n_);
  } while (std::gcd(a_, n_) != 1);
  b_ = rng.RandInt(n_);
}

int64_t IndexShuffle::Map(int64_t k) const {
  TTREC_CHECK_INDEX(k >= 0 && k < n_, "IndexShuffle::Map: index out of range");
  return static_cast<int64_t>(
      (static_cast<__int128>(a_) * k + b_) % n_);
}

void FillUniform(Rng& rng, std::vector<float>& out, double lo, double hi) {
  for (float& x : out) x = static_cast<float>(rng.Uniform(lo, hi));
}

void FillNormal(Rng& rng, std::vector<float>& out, double mean, double stddev) {
  for (float& x : out) x = static_cast<float>(rng.Normal(mean, stddev));
}

}  // namespace ttrec
