// A small work-stealing-free thread pool and a blocking parallel_for.
//
// TT-EmbeddingBag batches thousands of tiny GEMMs; on multi-core hosts the
// batch dimension is split across pool workers (the CPU analogue of the
// paper's batched cuBLAS launch). The pool is created lazily and sized from
// std::thread::hardware_concurrency() unless overridden. On a single-core
// host parallel_for degrades to an inline loop with zero overhead.
//
// Concurrency contract (the serving layer depends on both):
//  - ParallelFor may be called from several threads at once; every call has
//    its own completion state, so independent callers neither wait on each
//    other's chunks nor steal each other's exceptions.
//  - ParallelFor is re-entrant: a call made from inside a pool task (or from
//    the caller-executed chunk of an enclosing ParallelFor) runs inline on
//    the current thread instead of enqueuing. This lets an outer loop shard
//    coarse work (e.g. one embedding table per worker) while inner kernels
//    (BatchedGemm) still call ParallelFor without deadlocking the pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ttrec {

/// Fixed-size thread pool executing `void(int64_t begin, int64_t end)` range
/// tasks. Thread-safe; tasks must not throw (exceptions are rethrown on the
/// calling thread from ParallelFor).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `num_threads == 1`
  /// creates no worker threads; everything runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(begin, end)` over [0, total) split into roughly equal chunks,
  /// one per worker; blocks until all chunks finish. `grain` is the minimum
  /// chunk size (small ranges run inline). Safe to call concurrently from
  /// multiple threads and from inside pool tasks (nested calls run inline).
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// True while the current thread is executing a ParallelFor chunk (either
  /// as a pool worker or as the calling thread running its own share).
  static bool InParallelRegion();

  /// Process-wide pool, sized from hardware_concurrency (min 1).
  static ThreadPool& Global();

  /// Resizes the global pool; for tests and benchmark sweeps.
  static void SetGlobalThreads(int num_threads);

 private:
  /// Per-ParallelFor completion state, stack-allocated by the call so
  /// concurrent calls are fully independent.
  struct CallState {
    int pending = 0;
    std::exception_ptr error;
  };

  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
    CallState* call = nullptr;
  };

  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  bool shutdown_ = false;
};

/// Shorthand for ThreadPool::Global().ParallelFor with a default grain.
void ParallelFor(int64_t total, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain = 64);

}  // namespace ttrec
