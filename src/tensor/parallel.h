// A small work-stealing-free thread pool and a blocking parallel_for.
//
// TT-EmbeddingBag batches thousands of tiny GEMMs; on multi-core hosts the
// batch dimension is split across pool workers (the CPU analogue of the
// paper's batched cuBLAS launch). The pool is created lazily and sized from
// std::thread::hardware_concurrency() unless overridden. On a single-core
// host parallel_for degrades to an inline loop with zero overhead.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ttrec {

/// Fixed-size thread pool executing `void(int64_t begin, int64_t end)` range
/// tasks. Thread-safe; tasks must not throw (exceptions are rethrown on the
/// calling thread from ParallelFor).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1). `num_threads == 1`
  /// creates no worker threads; everything runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(begin, end)` over [0, total) split into roughly equal chunks,
  /// one per worker; blocks until all chunks finish. `grain` is the minimum
  /// chunk size (small ranges run inline).
  void ParallelFor(int64_t total, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// Process-wide pool, sized from hardware_concurrency (min 1).
  static ThreadPool& Global();

  /// Resizes the global pool; for tests and benchmark sweeps.
  static void SetGlobalThreads(int num_threads);

 private:
  struct Task {
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
  };

  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Task> queue_;
  int pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

/// Shorthand for ThreadPool::Global().ParallelFor with a default grain.
void ParallelFor(int64_t total, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain = 64);

}  // namespace ttrec
