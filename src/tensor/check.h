// Error types and check macros used across the TT-Rec library.
//
// All precondition violations throw typed exceptions derived from
// ttrec::TtRecError so callers can distinguish configuration mistakes
// (ShapeError/ConfigError), bad runtime inputs (IndexError), and internal
// invariant failures (InternalError).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ttrec {

/// Base class for all errors thrown by the TT-Rec library.
class TtRecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Incompatible tensor/matrix shapes (e.g. GEMM inner-dimension mismatch).
class ShapeError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

/// An index is outside the valid range (e.g. embedding row id >= num rows).
class IndexError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

/// A configuration value is invalid (e.g. rank 0, empty factorization).
class ConfigError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

/// An internal invariant was violated; indicates a library bug.
class InternalError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

namespace detail {

template <typename Error, typename... Parts>
[[noreturn]] void ThrowChecked(const char* cond, const char* file, int line,
                               const Parts&... parts) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed (" << cond << ")";
  if constexpr (sizeof...(parts) > 0) {
    os << ": ";
    (os << ... << parts);
  }
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ttrec

#define TTREC_CHECK_IMPL(cond, error_type, ...)                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ttrec::detail::ThrowChecked<error_type>(#cond, __FILE__, __LINE__,  \
                                                ##__VA_ARGS__);             \
    }                                                                       \
  } while (0)

/// Generic precondition; throws ttrec::TtRecError.
#define TTREC_CHECK(cond, ...) \
  TTREC_CHECK_IMPL(cond, ::ttrec::TtRecError, ##__VA_ARGS__)

/// Shape precondition; throws ttrec::ShapeError.
#define TTREC_CHECK_SHAPE(cond, ...) \
  TTREC_CHECK_IMPL(cond, ::ttrec::ShapeError, ##__VA_ARGS__)

/// Index precondition; throws ttrec::IndexError.
#define TTREC_CHECK_INDEX(cond, ...) \
  TTREC_CHECK_IMPL(cond, ::ttrec::IndexError, ##__VA_ARGS__)

/// Configuration precondition; throws ttrec::ConfigError.
#define TTREC_CHECK_CONFIG(cond, ...) \
  TTREC_CHECK_IMPL(cond, ::ttrec::ConfigError, ##__VA_ARGS__)

/// Internal invariant; throws ttrec::InternalError.
#define TTREC_CHECK_INTERNAL(cond, ...) \
  TTREC_CHECK_IMPL(cond, ::ttrec::InternalError, ##__VA_ARGS__)
