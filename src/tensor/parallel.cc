#include "tensor/parallel.h"

#include <algorithm>
#include <memory>

#include "tensor/check.h"

namespace ttrec {

namespace {

// Depth of ParallelFor chunk execution on this thread. Non-zero means we are
// inside a pool task (or the caller's own chunk) and nested ParallelFor
// calls must run inline: queuing from a worker and then blocking on the
// result could leave every worker waiting on tasks nobody is free to run.
thread_local int tls_parallel_depth = 0;

struct RegionGuard {
  RegionGuard() { ++tls_parallel_depth; }
  ~RegionGuard() { --tls_parallel_depth; }
};

}  // namespace

bool ThreadPool::InParallelRegion() { return tls_parallel_depth > 0; }

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = queue_.back();
      queue_.pop_back();
    }
    try {
      RegionGuard in_region;
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!task.call->error) task.call->error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--task.call->pending == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(int64_t total, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t max_chunks = (total + grain - 1) / grain;
  const int64_t num_chunks =
      std::min<int64_t>(max_chunks, static_cast<int64_t>(num_threads_));
  if (num_chunks <= 1 || workers_.empty() || InParallelRegion()) {
    fn(0, total);
    return;
  }
  const int64_t chunk = (total + num_chunks - 1) / num_chunks;
  CallState call;
  call.pending = static_cast<int>(num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One chunk stays on the calling thread; the rest go to the queue.
    for (int64_t c = 1; c < num_chunks; ++c) {
      queue_.push_back(
          Task{&fn, c * chunk, std::min(total, (c + 1) * chunk), &call});
    }
  }
  cv_.notify_all();
  // Run the caller's chunk, but never unwind before the workers finish —
  // their tasks reference `fn` and `call` on this stack frame.
  std::exception_ptr caller_error;
  try {
    RegionGuard in_region;
    fn(0, std::min(total, chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&call] { return call.pending == 0; });
  const std::exception_ptr err = caller_error ? caller_error : call.error;
  if (err) std::rethrow_exception(err);
}

namespace {
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool = std::make_unique<ThreadPool>(
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency())));
  return pool;
}
std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}
}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  return *GlobalPoolSlot();
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  TTREC_CHECK_CONFIG(num_threads >= 1, "thread count must be >= 1, got ",
                     num_threads);
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  GlobalPoolSlot() = std::make_unique<ThreadPool>(num_threads);
}

void ParallelFor(int64_t total, const std::function<void(int64_t, int64_t)>& fn,
                 int64_t grain) {
  ThreadPool::Global().ParallelFor(total, grain, fn);
}

}  // namespace ttrec
