#include "tensor/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "tensor/check.h"

namespace ttrec {

namespace {

/// fsync the file (or directory) at `path`; returns false on failure.
/// Directories need O_RDONLY; regular files accept it too.
bool FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& produce) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  try {
    {
      std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
      TTREC_CHECK(os.is_open(), "AtomicWriteFile: cannot open temp file ",
                  tmp);
      produce(os);
      os.flush();
      TTREC_CHECK(os.good() && !os.fail(),
                  "AtomicWriteFile: write to ", tmp, " failed (disk full?)");
      os.close();
      TTREC_CHECK(!os.fail(), "AtomicWriteFile: closing ", tmp, " failed");
    }
    // Data must be durable before the rename becomes visible, otherwise a
    // crash could expose a renamed-but-empty file.
    const int fd = ::open(tmp.c_str(), O_WRONLY);
    TTREC_CHECK(fd >= 0, "AtomicWriteFile: cannot reopen ", tmp,
                " for fsync");
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    TTREC_CHECK(synced, "AtomicWriteFile: fsync of ", tmp, " failed");
    TTREC_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "AtomicWriteFile: rename ", tmp, " -> ", path, " failed");
    // Best effort: persist the directory entry as well.
    (void)FsyncPath(ParentDir(path));
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace ttrec
