// Singular value decomposition via one-sided Jacobi rotations.
//
// Used by the TT-SVD decomposition path (compressing a pre-trained embedding
// table into TT cores, `tt/tt_decompose.h`) and by the low-rank baseline.
// One-sided Jacobi is simple, numerically robust, and accurate for the
// moderate matrix sizes that appear in TT unfoldings; it is O(m n^2) per
// sweep, so callers should orient the input so n <= m (TruncatedSvd does
// this automatically).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ttrec {

/// Thin SVD result: A (m x n) = U (m x r) * diag(s) (r) * V^T (r x n),
/// with r = min(m, n) and singular values in non-increasing order.
struct SvdResult {
  Tensor u;               // m x r
  std::vector<float> s;   // r, descending
  Tensor vt;              // r x n
};

/// Computes the thin SVD of a row-major m x n matrix.
/// `max_sweeps` bounds Jacobi sweeps; convergence is declared when all
/// off-diagonal column dot products are below `tol` relative to column norms.
SvdResult Svd(const Tensor& a, int max_sweeps = 60, double tol = 1e-10);

/// Thin SVD truncated to the leading `rank` singular triplets
/// (rank is clamped to min(m, n)).
SvdResult TruncatedSvd(const Tensor& a, int64_t rank, int max_sweeps = 60,
                       double tol = 1e-10);

/// Reconstructs U * diag(s) * V^T. For tests and error reporting.
Tensor SvdReconstruct(const SvdResult& svd);

}  // namespace ttrec
