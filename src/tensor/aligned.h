// 64-byte-aligned allocation for SIMD kernel operands.
//
// The vector microkernels use unaligned loads, so alignment is a
// performance contract (no cache-line-split loads, full-width prefetch
// lines), never a correctness one: results are bitwise identical for any
// operand alignment within a dispatch tier. Round buffers, block scratch,
// and GEMM workspaces all allocate through AlignedVec so the hot path
// touches cache-line-clean memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <vector>

namespace ttrec {

/// Alignment of every SIMD-facing buffer: one x86 cache line, which also
/// covers the widest vector register (64-byte ZMM).
inline constexpr std::size_t kSimdAlign = 64;

/// Minimal C++17 allocator handing out kSimdAlign-aligned storage.
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/// Rounds a byte count up to the aligned-allocation granularity; workspace
/// accounting uses this so reported bounds cover the padded allocations.
constexpr int64_t AlignedBytes(int64_t bytes) {
  constexpr int64_t a = static_cast<int64_t>(kSimdAlign);
  return (bytes + a - 1) / a * a;
}

}  // namespace ttrec
