// Statistics utilities for the weight-initialization study (paper §3.2,
// Table 1, Figure 3): streaming moments, histograms, and the closed-form
// KL divergence between a uniform distribution and a Gaussian that drives
// the paper's choice of N(0, 1/(3n)).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ttrec {

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningMoments {
 public:
  void Add(double x);
  void AddAll(std::span<const float> xs);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; out-of-range samples are
/// clamped into the edge bins and counted.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_bins);

  void Add(double x);
  void AddAll(std::span<const float> xs);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  double bin_center(int i) const;
  double bin_width() const { return width_; }
  int64_t count(int i) const;

  /// Empirical density of bin i (count normalized by total * bin width).
  double Density(int i) const;

  /// Renders an ASCII sketch, one line per bin; for bench output.
  std::string ToAscii(int max_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

/// Closed-form KL divergence D(U(a,b) || N(mu, sigma2)).
/// The minimizer over (mu, sigma2) is mu=(a+b)/2, sigma2=(b-a)^2/12 — the
/// identity the paper uses to pick N(0, 1/(3n)) as the initializer that
/// best mimics Uniform(-1/sqrt(n), 1/sqrt(n)).
double KlUniformVsGaussian(double a, double b, double mu, double sigma2);

/// Empirical KL divergence D(hist || N(mu, sigma2)) over the histogram's
/// support; bins with zero mass contribute nothing.
double KlHistogramVsGaussian(const Histogram& hist, double mu, double sigma2);

/// Standard normal density.
double GaussianPdf(double x, double mu, double sigma2);

}  // namespace ttrec
