// AVX2+FMA GEMM kernel tier. Compiled with -mavx2 -mfma (see
// src/tensor/CMakeLists.txt); only reached when CPUID reports those
// features, so no runtime guards here.
//
// Kernel shapes target TT-Rec's GEMM chain: A is one reconstructed-row
// stage (m = 1..8 typical, up to a column-factor product), B is a core
// slice with n = n_k * R_k (tens to a few hundred columns), k = R_{k-1}
// (8..64). Register blocking is therefore MR=4 rows x (8 or 16) columns
// with the full k loop in the accumulators — no cache blocking needed at
// these sizes.
//
// Determinism: unaligned loads only, column/row tail handling is a pure
// function of (m, n, k), and every reduction has a fixed order. alpha and
// beta are applied once after the k loop (C = alpha*acc + beta*C), which
// rounds differently from the scalar tier's per-term alpha — cross-tier
// agreement is gated against GemmRef in tests, not bitwise.
#include <immintrin.h>

#include "tensor/gemm_kernels.h"

namespace ttrec {
namespace internal {
namespace {

// Fixed-shape horizontal sum: (lo+hi) pairwise then across the 128-bit
// lane. Order never depends on data or alignment.
inline float Hsum256(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// One MR x (NV*8) tile of the broadcast (NN/TN) formulation. Row r of
// op(A) has element p at a[r * a_row_stride + p * a_p_stride]; NN passes
// (lda, 1), TN passes (1, lda), so both transposes share this kernel.
template <int MR, int NV>
inline void BroadcastTile(int64_t k, float alpha, const float* a,
                          int64_t a_row_stride, int64_t a_p_stride,
                          const float* b, int64_t ldb, float beta, float* c,
                          int64_t ldc) {
  __m256 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = b + p * ldb;
    __m256 bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm256_loadu_ps(bp + 8 * v);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(a[r * a_row_stride + p * a_p_stride]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  for (int r = 0; r < MR; ++r) {
    float* cr = c + r * ldc;
    for (int v = 0; v < NV; ++v) {
      __m256 out = _mm256_mul_ps(va, acc[r][v]);
      if (beta != 0.0f) {
        out = _mm256_add_ps(out, _mm256_mul_ps(_mm256_set1_ps(beta),
                                               _mm256_loadu_ps(cr + 8 * v)));
      }
      _mm256_storeu_ps(cr + 8 * v, out);
    }
  }
}

// One MR x 4 tile using 128-bit vectors — covers the 4..7-column tail.
// This is a hot shape, not a corner case: a TT chain's last stage has
// n = n_{d-1} * R_d with R_d = 1, so n is a single small column factor
// (2 or 4 for emb_dim 16) and never reaches the 8-wide panels.
template <int MR>
inline void BroadcastTile4(int64_t k, float alpha, const float* a,
                           int64_t a_row_stride, int64_t a_p_stride,
                           const float* b, int64_t ldb, float beta, float* c,
                           int64_t ldc) {
  __m128 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m128 bv = _mm_loadu_ps(b + p * ldb);
    for (int r = 0; r < MR; ++r) {
      acc[r] = _mm_fmadd_ps(_mm_set1_ps(a[r * a_row_stride + p * a_p_stride]),
                            bv, acc[r]);
    }
  }
  const __m128 va = _mm_set1_ps(alpha);
  for (int r = 0; r < MR; ++r) {
    float* cr = c + r * ldc;
    __m128 out = _mm_mul_ps(va, acc[r]);
    if (beta != 0.0f) {
      out = _mm_add_ps(out, _mm_mul_ps(_mm_set1_ps(beta), _mm_loadu_ps(cr)));
    }
    _mm_storeu_ps(cr, out);
  }
}

// Scalar column tail (< 4 remaining columns) of the broadcast form.
template <int MR>
inline void BroadcastTail(int64_t n_rem, int64_t k, float alpha,
                          const float* a, int64_t a_row_stride,
                          int64_t a_p_stride, const float* b, int64_t ldb,
                          float beta, float* c, int64_t ldc) {
  for (int r = 0; r < MR; ++r) {
    const float* ar = a + r * a_row_stride;
    float* cr = c + r * ldc;
    for (int64_t j = 0; j < n_rem; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += ar[p * a_p_stride] * b[p * ldb + j];
      cr[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * cr[j]);
    }
  }
}

// Full column sweep for a fixed block of MR rows: 16-wide panels, then an
// 8-wide panel, a 4-wide tile, then the scalar tail. Panel boundaries
// depend only on n.
template <int MR>
inline void BroadcastRows(int64_t n, int64_t k, float alpha, const float* a,
                          int64_t a_row_stride, int64_t a_p_stride,
                          const float* b, int64_t ldb, float beta, float* c,
                          int64_t ldc) {
  int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    BroadcastTile<MR, 2>(k, alpha, a, a_row_stride, a_p_stride, b + j, ldb,
                         beta, c + j, ldc);
  }
  if (j + 8 <= n) {
    BroadcastTile<MR, 1>(k, alpha, a, a_row_stride, a_p_stride, b + j, ldb,
                         beta, c + j, ldc);
    j += 8;
  }
  if (j + 4 <= n) {
    BroadcastTile4<MR>(k, alpha, a, a_row_stride, a_p_stride, b + j, ldb, beta,
                       c + j, ldc);
    j += 4;
  }
  if (j < n) {
    BroadcastTail<MR>(n - j, k, alpha, a, a_row_stride, a_p_stride, b + j, ldb,
                      beta, c + j, ldc);
  }
}

void GemmBroadcast(bool a_trans, int64_t m, int64_t n, int64_t k, float alpha,
                   const float* a, int64_t lda, const float* b, int64_t ldb,
                   float beta, float* c, int64_t ldc) {
  const int64_t a_row_stride = a_trans ? 1 : lda;
  const int64_t a_p_stride = a_trans ? lda : 1;
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    BroadcastRows<4>(n, k, alpha, a + (a_trans ? i : i * lda), a_row_stride,
                     a_p_stride, b, ldb, beta, c + i * ldc, ldc);
  }
  const float* ai = a + (a_trans ? i : i * lda);
  float* ci = c + i * ldc;
  switch (m - i) {
    case 3:
      BroadcastRows<3>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    case 2:
      BroadcastRows<2>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    case 1:
      BroadcastRows<1>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    default:
      break;
  }
}

void GemmNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  GemmBroadcast(false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void GemmTN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  GemmBroadcast(true, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

// Dot formulation for B^T: both operand rows are contiguous in k.
inline float DotAvx2(const float* x, const float* y, int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  int64_t p = 0;
  for (; p + 8 <= k; p += 8)
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + p), _mm256_loadu_ps(y + p), acc);
  float s = Hsum256(acc);
  for (; p < k; ++p) s += x[p] * y[p];
  return s;
}

void GemmNT(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float d = DotAvx2(ai, b + j * ldb, k);
      ci[j] = alpha * d + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

// A^T * B^T strides both operands; not on any hot path, so fall through to
// the portable loops (still deterministic — it's a fixed kernel).
void GemmTT(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  ScalarKernelTable().tt(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i,
        _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace

const GemmKernelTable& Avx2KernelTable() {
  static const GemmKernelTable table = {GemmNN, GemmTN, GemmNT, GemmTT, Axpy};
  return table;
}

}  // namespace internal
}  // namespace ttrec
