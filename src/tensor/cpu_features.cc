#include "tensor/cpu_features.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define TTREC_X86 1
#include <cpuid.h>
#endif

namespace ttrec {

namespace {

#ifdef TTREC_X86

// XCR0: which register state the OS saves/restores. AVX needs XMM+YMM
// (bits 1-2); AVX-512 additionally opmask + ZMM_Hi256 + Hi16_ZMM
// (bits 5-7). CPUID feature bits alone are not enough — a kernel that
// doesn't context-switch ZMM state would corrupt it.
uint64_t ReadXcr0() {
  uint32_t eax, edx;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

SimdTier DetectHardware() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return SimdTier::kScalar;
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool avx = (ecx & bit_AVX) != 0;
  const bool fma = (ecx & bit_FMA) != 0;
  if (!osxsave || !avx || !fma) return SimdTier::kScalar;
  const uint64_t xcr0 = ReadXcr0();
  if ((xcr0 & 0x6) != 0x6) return SimdTier::kScalar;  // XMM+YMM not saved

  unsigned eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (!__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
    return SimdTier::kScalar;
  }
  if ((ebx7 & bit_AVX2) == 0) return SimdTier::kScalar;

  const bool zmm_state = (xcr0 & 0xe6) == 0xe6;
  const bool avx512 = (ebx7 & bit_AVX512F) && (ebx7 & bit_AVX512BW) &&
                      (ebx7 & bit_AVX512DQ) && (ebx7 & bit_AVX512VL);
  if (zmm_state && avx512) return SimdTier::kAvx512;
  return SimdTier::kAvx2;
}

#else  // !TTREC_X86

SimdTier DetectHardware() { return SimdTier::kScalar; }

#endif

SimdTier ClampToCompiled(SimdTier t) {
#ifndef TTREC_HAVE_AVX512
  if (t == SimdTier::kAvx512) t = SimdTier::kAvx2;
#endif
#ifndef TTREC_HAVE_AVX2
  if (t == SimdTier::kAvx2) t = SimdTier::kScalar;
#endif
  return t;
}

/// Parses a TTREC_SIMD value; returns false (leaving `out` untouched) on
/// anything unrecognized.
bool ParseTierName(const char* s, SimdTier* out) {
  if (std::strcmp(s, "scalar") == 0) {
    *out = SimdTier::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = SimdTier::kAvx2;
    return true;
  }
  if (std::strcmp(s, "avx512") == 0) {
    *out = SimdTier::kAvx512;
    return true;
  }
  return false;
}

SimdTier ResolveFromEnv() {
  const SimdTier detected = DetectedSimdTier();
  const char* env = std::getenv("TTREC_SIMD");
  if (env == nullptr || env[0] == '\0') return detected;
  SimdTier requested;
  if (!ParseTierName(env, &requested)) {
    std::fprintf(stderr,
                 "ttrec: ignoring unknown TTREC_SIMD=%s "
                 "(expected scalar|avx2|avx512)\n",
                 env);
    return detected;
  }
  if (static_cast<int>(requested) > static_cast<int>(detected)) {
    std::fprintf(stderr,
                 "ttrec: TTREC_SIMD=%s not available on this CPU/build; "
                 "using %s\n",
                 env, SimdTierName(detected));
    return detected;
  }
  return requested;
}

// Active tier, -1 = not yet resolved. Lazily resolved on first use; a
// racing double-resolve is benign (both writers store the same value).
std::atomic<int> g_active_tier{-1};

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = ClampToCompiled(DetectHardware());
  return tier;
}

SimdTier ActiveSimdTier() {
  const int t = g_active_tier.load(std::memory_order_acquire);
  if (t >= 0) return static_cast<SimdTier>(t);
  const SimdTier resolved = ResolveFromEnv();
  g_active_tier.store(static_cast<int>(resolved), std::memory_order_release);
  return resolved;
}

void SetSimdTier(SimdTier tier) {
  const SimdTier detected = DetectedSimdTier();
  if (static_cast<int>(tier) > static_cast<int>(detected)) tier = detected;
  g_active_tier.store(static_cast<int>(tier), std::memory_order_release);
}

void ResetSimdTier() {
  g_active_tier.store(-1, std::memory_order_release);
}

std::string CpuModelName() {
#ifdef TTREC_X86
  unsigned max_ext = __get_cpuid_max(0x80000000u, nullptr);
  if (max_ext < 0x80000004u) return "unknown";
  char brand[49] = {};
  unsigned* words = reinterpret_cast<unsigned*>(brand);
  for (unsigned leaf = 0; leaf < 3; ++leaf) {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(0x80000002u + leaf, &eax, &ebx, &ecx, &edx)) {
      return "unknown";
    }
    words[leaf * 4 + 0] = eax;
    words[leaf * 4 + 1] = ebx;
    words[leaf * 4 + 2] = ecx;
    words[leaf * 4 + 3] = edx;
  }
  brand[48] = '\0';
  // CPUID pads the brand with leading spaces.
  const char* p = brand;
  while (*p == ' ') ++p;
  return *p ? std::string(p) : "unknown";
#else
  return "unknown";
#endif
}

}  // namespace ttrec
