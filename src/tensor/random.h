// Deterministic random number generation and the distributions used by
// TT-Rec: uniform/normal weight init, the tail-truncated normal behind the
// paper's sampled-Gaussian initializer (Algorithm 3), and the Zipf sampler
// that models the skewed categorical-feature access pattern of
// recommendation data (paper §3.1, §4.2).
//
// Everything is seeded explicitly; no global state. The engine is
// xoshiro256++ seeded through splitmix64, which gives high-quality streams
// that are reproducible across platforms (unlike std:: distributions).
#pragma once

#include <cstdint>
#include <vector>

namespace ttrec {

/// xoshiro256++ engine with splitmix64 seeding. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return NextUInt64(); }

  uint64_t NextUInt64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  int64_t RandInt(int64_t n);

  /// Standard Box-Muller normal with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Standard normal conditioned on |x| > threshold ("tail sampling").
  /// This is the resample-while-|x|<=t loop of the paper's Algorithm 3,
  /// which removes near-zero mass from TT-core entries.
  double TruncatedTailNormal(double threshold);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Creates an independent child stream (for per-table/per-worker RNGs).
  Rng Split();

  /// Engine-state access for checkpointing: a restored Rng continues the
  /// exact stream it was saved from (byte-identical draws).
  void GetState(uint64_t out[4]) const;
  void SetState(const uint64_t in[4]);

 private:
  uint64_t s_[4];
};

/// Standard deviation of the standard normal conditioned on |x| > t.
/// Used to rescale tail-sampled TT cores to a target product variance.
double TailNormalStddev(double threshold);

/// Zipf(s) sampler over {0, 1, ..., n-1} with pmf proportional to
/// 1/(k+1)^s, via Hormann-Derflinger rejection-inversion. O(1) memory,
/// ~constant expected time per draw for any n (tables here have up to
/// tens of millions of rows). s == 0 degenerates to uniform.
class ZipfSampler {
 public:
  /// n >= 1; s >= 0. s around 1.0-1.5 matches production embedding-access
  /// skew reported for DLRMs.
  ZipfSampler(int64_t n, double s);

  int64_t n() const { return n_; }
  double s() const { return s_; }

  /// Draws a 0-based rank (0 = most probable).
  int64_t Sample(Rng& rng) const;

  /// Exact pmf of rank k (0-based); O(n) normalization is computed lazily
  /// and cached on first call — intended for tests and analysis.
  double Pmf(int64_t k) const;

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  int64_t n_;
  double s_;
  double h_integral_x1_;
  double h_integral_n_;
  double threshold_;
  mutable double norm_ = -1.0;  // lazy pmf normalizer
};

/// A cheap bijection on [0, n) used to scatter Zipf ranks across row ids so
/// that "hot" rows are not clustered at the front of an embedding table.
class IndexShuffle {
 public:
  /// Builds a pseudo-random affine bijection k -> (a*k + b) mod n.
  IndexShuffle(int64_t n, uint64_t seed);

  int64_t Map(int64_t k) const;
  int64_t n() const { return n_; }

 private:
  int64_t n_;
  int64_t a_;
  int64_t b_;
};

/// Fills `out` with iid draws from Uniform(lo, hi).
void FillUniform(Rng& rng, std::vector<float>& out, double lo, double hi);

/// Fills `out` with iid draws from N(mean, stddev^2).
void FillNormal(Rng& rng, std::vector<float>& out, double mean, double stddev);

}  // namespace ttrec
