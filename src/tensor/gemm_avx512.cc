// AVX-512 GEMM kernel tier. Compiled with -mavx512f/bw/dq/vl (see
// src/tensor/CMakeLists.txt); only reached when CPUID + XCR0 report full
// ZMM state support.
//
// Same structure as the AVX2 tier — broadcast formulation for NN/TN, dot
// formulation for NT — but 16-wide, and ragged column/k tails use masked
// loads/stores instead of scalar loops: the mask is a pure function of the
// remainder, so tails stay deterministic and branch-free.
#include <immintrin.h>

#include "tensor/gemm_kernels.h"

namespace ttrec {
namespace internal {
namespace {

// One MR x (NV*16) full tile of the broadcast (NN/TN) formulation; see
// gemm_avx2.cc for the shared addressing scheme.
template <int MR, int NV>
inline void BroadcastTile(int64_t k, float alpha, const float* a,
                          int64_t a_row_stride, int64_t a_p_stride,
                          const float* b, int64_t ldb, float beta, float* c,
                          int64_t ldc) {
  __m512 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const float* bp = b + p * ldb;
    __m512 bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm512_loadu_ps(bp + 16 * v);
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(a[r * a_row_stride + p * a_p_stride]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm512_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  const __m512 va = _mm512_set1_ps(alpha);
  for (int r = 0; r < MR; ++r) {
    float* cr = c + r * ldc;
    for (int v = 0; v < NV; ++v) {
      __m512 out = _mm512_mul_ps(va, acc[r][v]);
      if (beta != 0.0f) {
        out = _mm512_add_ps(out, _mm512_mul_ps(_mm512_set1_ps(beta),
                                               _mm512_loadu_ps(cr + 16 * v)));
      }
      _mm512_storeu_ps(cr + 16 * v, out);
    }
  }
}

// Masked column tail: the final 1..15 columns as one predicated tile.
template <int MR>
inline void BroadcastTailMasked(int64_t n_rem, int64_t k, float alpha,
                                const float* a, int64_t a_row_stride,
                                int64_t a_p_stride, const float* b,
                                int64_t ldb, float beta, float* c,
                                int64_t ldc) {
  const __mmask16 mask =
      static_cast<__mmask16>((1u << static_cast<unsigned>(n_rem)) - 1u);
  __m512 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm512_setzero_ps();
  for (int64_t p = 0; p < k; ++p) {
    const __m512 bv = _mm512_maskz_loadu_ps(mask, b + p * ldb);
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(a[r * a_row_stride + p * a_p_stride]);
      acc[r] = _mm512_fmadd_ps(av, bv, acc[r]);
    }
  }
  const __m512 va = _mm512_set1_ps(alpha);
  for (int r = 0; r < MR; ++r) {
    float* cr = c + r * ldc;
    __m512 out = _mm512_mul_ps(va, acc[r]);
    if (beta != 0.0f) {
      out = _mm512_add_ps(out, _mm512_mul_ps(_mm512_set1_ps(beta),
                                             _mm512_maskz_loadu_ps(mask, cr)));
    }
    _mm512_mask_storeu_ps(cr, mask, out);
  }
}

template <int MR>
inline void BroadcastRows(int64_t n, int64_t k, float alpha, const float* a,
                          int64_t a_row_stride, int64_t a_p_stride,
                          const float* b, int64_t ldb, float beta, float* c,
                          int64_t ldc) {
  int64_t j = 0;
  for (; j + 32 <= n; j += 32) {
    BroadcastTile<MR, 2>(k, alpha, a, a_row_stride, a_p_stride, b + j, ldb,
                         beta, c + j, ldc);
  }
  if (j + 16 <= n) {
    BroadcastTile<MR, 1>(k, alpha, a, a_row_stride, a_p_stride, b + j, ldb,
                         beta, c + j, ldc);
    j += 16;
  }
  if (j < n) {
    BroadcastTailMasked<MR>(n - j, k, alpha, a, a_row_stride, a_p_stride,
                            b + j, ldb, beta, c + j, ldc);
  }
}

void GemmBroadcast(bool a_trans, int64_t m, int64_t n, int64_t k, float alpha,
                   const float* a, int64_t lda, const float* b, int64_t ldb,
                   float beta, float* c, int64_t ldc) {
  const int64_t a_row_stride = a_trans ? 1 : lda;
  const int64_t a_p_stride = a_trans ? lda : 1;
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    BroadcastRows<4>(n, k, alpha, a + (a_trans ? i : i * lda), a_row_stride,
                     a_p_stride, b, ldb, beta, c + i * ldc, ldc);
  }
  const float* ai = a + (a_trans ? i : i * lda);
  float* ci = c + i * ldc;
  switch (m - i) {
    case 3:
      BroadcastRows<3>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    case 2:
      BroadcastRows<2>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    case 1:
      BroadcastRows<1>(n, k, alpha, ai, a_row_stride, a_p_stride, b, ldb, beta,
                       ci, ldc);
      break;
    default:
      break;
  }
}

void GemmNN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  GemmBroadcast(false, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void GemmTN(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  GemmBroadcast(true, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

// Dot over k with a masked k-tail. _mm512_reduce_add_ps lowers to a fixed
// shuffle tree, so the reduction order is a constant of the binary.
//
// GCC 12 flags that lowering with a false-positive -Wmaybe-uninitialized:
// the extract step passes _mm256_undefined_pd() as the (fully overwritten)
// merge source of a mask builtin.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
inline float Dot512(const float* x, const float* y, int64_t k) {
  __m512 acc = _mm512_setzero_ps();
  int64_t p = 0;
  for (; p + 16 <= k; p += 16)
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(x + p), _mm512_loadu_ps(y + p), acc);
  if (p < k) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << static_cast<unsigned>(k - p)) - 1u);
    acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, x + p),
                          _mm512_maskz_loadu_ps(mask, y + p), acc);
  }
  return _mm512_reduce_add_ps(acc);
}

void GemmNT(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float d = Dot512(ai, b + j * ldb, k);
      ci[j] = alpha * d + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}
#pragma GCC diagnostic pop

// Off the hot path; reuse the portable loops.
void GemmTT(int64_t m, int64_t n, int64_t k, float alpha, const float* a,
            int64_t lda, const float* b, int64_t ldb, float beta, float* c,
            int64_t ldc) {
  ScalarKernelTable().tt(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  const __m512 va = _mm512_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i,
        _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  }
  if (i < n) {
    const __mmask16 mask =
        static_cast<__mmask16>((1u << static_cast<unsigned>(n - i)) - 1u);
    const __m512 out =
        _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(mask, x + i),
                        _mm512_maskz_loadu_ps(mask, y + i));
    _mm512_mask_storeu_ps(y + i, mask, out);
  }
}

}  // namespace

const GemmKernelTable& Avx512KernelTable() {
  static const GemmKernelTable table = {GemmNN, GemmTN, GemmNT, GemmTT, Axpy};
  return table;
}

}  // namespace internal
}  // namespace ttrec
