#include "tensor/gemm.h"

#include "tensor/check.h"

namespace ttrec {

namespace {

// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C. The i-k-j loop order
// streams B and C rows, which GCC vectorizes; fine for the small blocky
// matrices TT contraction produces.
void GemmNN(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* ai = a + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const float aip = alpha * ai[p];
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha * A^T (m x k, stored k x m) * B (k x n) + beta * C.
void GemmTN(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    for (int64_t p = 0; p < k; ++p) {
      const float aip = alpha * a[p * lda + i];
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha * A (m x k) * B^T (k x n, stored n x k) + beta * C.
// Dot-product formulation: both A row and B row are streamed contiguously.
void GemmNT(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

// C = alpha * A^T * B^T + beta * C.
void GemmTT(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

void CheckGemmArgs(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k,
                   int64_t lda, int64_t ldb, int64_t ldc) {
  TTREC_CHECK_SHAPE(m >= 0 && n >= 0 && k >= 0,
                    "GEMM dims must be non-negative: m=", m, " n=", n,
                    " k=", k);
  const int64_t a_cols = (ta == Trans::kNo) ? k : m;
  const int64_t b_cols = (tb == Trans::kNo) ? n : k;
  TTREC_CHECK_SHAPE(lda >= a_cols, "GEMM lda (", lda, ") < A columns (",
                    a_cols, ")");
  TTREC_CHECK_SHAPE(ldb >= b_cols, "GEMM ldb (", ldb, ") < B columns (",
                    b_cols, ")");
  TTREC_CHECK_SHAPE(ldc >= n, "GEMM ldc (", ldc, ") < n (", n, ")");
}

}  // namespace

void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc) {
  CheckGemmArgs(ta, tb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Degenerate product: C = beta * C.
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] = beta == 0.0f ? 0.0f : beta * ci[j];
    }
    return;
  }
  if (ta == Trans::kNo && tb == Trans::kNo) {
    GemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (ta == Trans::kYes && tb == Trans::kNo) {
    GemmTN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (ta == Trans::kNo && tb == Trans::kYes) {
    GemmNT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    GemmTT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }
}

void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  const int64_t lda = (ta == Trans::kNo) ? k : m;
  const int64_t ldb = (tb == Trans::kNo) ? n : k;
  Gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void GemmRef(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
             const float* a, int64_t lda, const float* b, int64_t ldb,
             float beta, float* c, int64_t ldc) {
  CheckGemmArgs(ta, tb, m, n, k, lda, ldb, ldc);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = (ta == Trans::kNo) ? a[i * lda + p] : a[p * lda + i];
        const float bv = (tb == Trans::kNo) ? b[p * ldb + j] : b[j * ldb + p];
        acc += static_cast<double>(av) * bv;
      }
      const double prev = (beta == 0.0f) ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(alpha * acc + prev);
    }
  }
}

void Gemv(Trans ta, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y) {
  // Treat as GEMM with a 1-column B / C.
  if (ta == Trans::kNo) {
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * lda;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += ai[j] * x[j];
      y[i] = alpha * acc + (beta == 0.0f ? 0.0f : beta * y[i]);
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      y[j] = beta == 0.0f ? 0.0f : beta * y[j];
    }
    for (int64_t i = 0; i < m; ++i) {
      const float xi = alpha * x[i];
      const float* ai = a + i * lda;
      for (int64_t j = 0; j < n; ++j) y[j] += xi * ai[j];
    }
  }
}

}  // namespace ttrec
