// Argument validation + runtime SIMD dispatch for Gemm/Axpy. The per-tier
// loop kernels live in gemm_scalar.cc / gemm_avx2.cc / gemm_avx512.cc.
#include "tensor/gemm.h"

#include "tensor/check.h"
#include "tensor/cpu_features.h"
#include "tensor/gemm_kernels.h"

namespace ttrec {

namespace internal {

const GemmKernelTable& KernelTableFor(SimdTier tier) {
  switch (tier) {
#ifdef TTREC_HAVE_AVX512
    case SimdTier::kAvx512:
      return Avx512KernelTable();
#endif
#ifdef TTREC_HAVE_AVX2
    case SimdTier::kAvx2:
      return Avx2KernelTable();
#endif
    default:
      return ScalarKernelTable();
  }
}

}  // namespace internal

namespace {

void CheckGemmArgs(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k,
                   int64_t lda, int64_t ldb, int64_t ldc) {
  TTREC_CHECK_SHAPE(m >= 0 && n >= 0 && k >= 0,
                    "GEMM dims must be non-negative: m=", m, " n=", n,
                    " k=", k);
  const int64_t a_cols = (ta == Trans::kNo) ? k : m;
  const int64_t b_cols = (tb == Trans::kNo) ? n : k;
  TTREC_CHECK_SHAPE(lda >= a_cols, "GEMM lda (", lda, ") < A columns (",
                    a_cols, ")");
  TTREC_CHECK_SHAPE(ldb >= b_cols, "GEMM ldb (", ldb, ") < B columns (",
                    b_cols, ")");
  TTREC_CHECK_SHAPE(ldc >= n, "GEMM ldc (", ldc, ") < n (", n, ")");
}

}  // namespace

void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc) {
  CheckGemmArgs(ta, tb, m, n, k, lda, ldb, ldc);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    // Degenerate product: C = beta * C.
    for (int64_t i = 0; i < m; ++i) {
      float* ci = c + i * ldc;
      for (int64_t j = 0; j < n; ++j) ci[j] = beta == 0.0f ? 0.0f : beta * ci[j];
    }
    return;
  }
  const internal::GemmKernelTable& t =
      internal::KernelTableFor(ActiveSimdTier());
  if (ta == Trans::kNo && tb == Trans::kNo) {
    t.nn(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (ta == Trans::kYes && tb == Trans::kNo) {
    t.tn(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else if (ta == Trans::kNo && tb == Trans::kYes) {
    t.nt(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  } else {
    t.tt(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  }
}

void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c) {
  const int64_t lda = (ta == Trans::kNo) ? k : m;
  const int64_t ldb = (tb == Trans::kNo) ? n : k;
  Gemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void Axpy(int64_t n, float alpha, const float* x, float* y) {
  TTREC_CHECK_SHAPE(n >= 0, "Axpy length must be non-negative: n=", n);
  if (n == 0 || alpha == 0.0f) return;
  internal::KernelTableFor(ActiveSimdTier()).axpy(n, alpha, x, y);
}

void GemmRef(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
             const float* a, int64_t lda, const float* b, int64_t ldb,
             float beta, float* c, int64_t ldc) {
  CheckGemmArgs(ta, tb, m, n, k, lda, ldb, ldc);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = (ta == Trans::kNo) ? a[i * lda + p] : a[p * lda + i];
        const float bv = (tb == Trans::kNo) ? b[p * ldb + j] : b[j * ldb + p];
        acc += static_cast<double>(av) * bv;
      }
      const double prev = (beta == 0.0f) ? 0.0 : beta * c[i * ldc + j];
      c[i * ldc + j] = static_cast<float>(alpha * acc + prev);
    }
  }
}

void Gemv(Trans ta, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y) {
  // Treat as GEMM with a 1-column B / C.
  if (ta == Trans::kNo) {
    for (int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * lda;
      float acc = 0.0f;
      for (int64_t j = 0; j < n; ++j) acc += ai[j] * x[j];
      y[i] = alpha * acc + (beta == 0.0f ? 0.0f : beta * y[i]);
    }
  } else {
    for (int64_t j = 0; j < n; ++j) {
      y[j] = beta == 0.0f ? 0.0f : beta * y[j];
    }
    for (int64_t i = 0; i < m; ++i) {
      const float xi = alpha * x[i];
      const float* ai = a + i * lda;
      for (int64_t j = 0; j < n; ++j) y[j] += xi * ai[j];
    }
  }
}

}  // namespace ttrec
