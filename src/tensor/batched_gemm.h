// Pointer-array batched GEMM: the CPU mirror of cuBLAS GemmBatchedEx, which
// the paper's TT-EmbeddingBag kernel (Algorithm 1/2) is built on.
//
// A batch is `count` independent products with identical dimensions and
// per-problem A/B/C pointers. TT-Rec sets these pointers to TT-core slices
// and intermediate buffers, one problem per embedding lookup, and launches
// one batch per TT stage. On CPU the batch dimension is split across the
// global thread pool.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/gemm.h"

namespace ttrec {

/// Dimensions shared by every problem in a batch.
struct BatchedGemmShape {
  Trans ta = Trans::kNo;
  Trans tb = Trans::kNo;
  int64_t m = 0;
  int64_t n = 0;
  int64_t k = 0;
  float alpha = 1.0f;
  float beta = 0.0f;
};

/// For each i in [0, count): C[i] = alpha * op(A[i]) * op(B[i]) + beta * C[i].
/// All matrices contiguous (lda = op-cols as in the Gemm overload).
/// Preconditions: the three spans have equal size; pointers non-null.
///
/// Safe to call with C pointers that alias *across* problems only when
/// beta == 1 and `deterministic` is true (accumulation runs single-threaded
/// in batch order); otherwise behaviour is undefined, matching cuBLAS.
///
/// When called from inside an outer ParallelFor chunk (a nested call — e.g.
/// from a block-parallel TT kernel task) the batch runs inline on the
/// current thread in batch order, deterministically: outer parallelism owns
/// the pool, inner batches never re-enter it.
void BatchedGemm(const BatchedGemmShape& shape,
                 std::span<const float* const> a,
                 std::span<const float* const> b, std::span<float* const> c,
                 bool deterministic = false);

/// Strided flavor: problem i uses a + i*stride_a etc. Matches
/// cublasGemmStridedBatchedEx; used when intermediates live in one big
/// contiguous buffer.
void StridedBatchedGemm(const BatchedGemmShape& shape, const float* a,
                        int64_t stride_a, const float* b, int64_t stride_b,
                        float* c, int64_t stride_c, int64_t count);

}  // namespace ttrec
