#include "tensor/serialize.h"

#include <algorithm>
#include <array>
#include <istream>
#include <limits>
#include <ostream>

#include "tensor/check.h"

namespace ttrec {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvUpdate(uint64_t h, const void* data, size_t bytes) {
  return Fnv1a(data, bytes, h);
}

std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint32_t Crc32(const void* data, size_t bytes, uint32_t crc) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

BinaryWriter::BinaryWriter(std::ostream& os) : os_(os), checksum_(kFnvOffset) {}

void BinaryWriter::WriteToStream(const void* data, size_t bytes) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(os_.good(), "BinaryWriter: stream write failed");
  checksum_ = FnvUpdate(checksum_, data, bytes);
}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  TTREC_CHECK(!finished_, "BinaryWriter: write after Finish");
  if (in_section_) {
    const auto* p = static_cast<const char*>(data);
    section_buf_.insert(section_buf_.end(), p, p + bytes);
    return;
  }
  WriteToStream(data, bytes);
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteI64Vec(const std::vector<int64_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(int64_t));
}

void BinaryWriter::WriteFloats(const float* data, size_t count) {
  WriteI64(static_cast<int64_t>(count));
  if (count > 0) WriteRaw(data, count * sizeof(float));
}

void BinaryWriter::WriteBytes(const void* data, size_t bytes) {
  if (bytes > 0) WriteRaw(data, bytes);
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::BeginSection(const std::string& name) {
  TTREC_CHECK(!in_section_, "BinaryWriter: sections do not nest (already in '",
              section_name_, "')");
  TTREC_CHECK(!finished_, "BinaryWriter: BeginSection after Finish");
  in_section_ = true;
  section_name_ = name;
  section_buf_.clear();
}

void BinaryWriter::EndSection() {
  TTREC_CHECK(in_section_, "BinaryWriter: EndSection without BeginSection");
  in_section_ = false;
  WriteString(section_name_);
  WriteI64(static_cast<int64_t>(section_buf_.size()));
  if (!section_buf_.empty()) {
    WriteToStream(section_buf_.data(), section_buf_.size());
  }
  WriteU32(Crc32(section_buf_.data(), section_buf_.size()));
  section_buf_.clear();
}

void BinaryWriter::Finish() {
  TTREC_CHECK(!finished_, "BinaryWriter: Finish called twice");
  TTREC_CHECK(!in_section_, "BinaryWriter: Finish inside section '",
              section_name_, "'");
  const uint64_t sum = checksum_;
  os_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
  TTREC_CHECK(os_.good(), "BinaryWriter: trailer write failed");
  finished_ = true;
}

BinaryReader::BinaryReader(std::istream& is) : is_(is), checksum_(kFnvOffset) {}

void BinaryReader::ReadRaw(void* data, size_t bytes) {
  if (in_section_) {
    TTREC_CHECK(bytes <= section_remaining_, "BinaryReader: section '",
                section_name_, "' overrun (corrupt length: wanted ", bytes,
                " bytes, ", section_remaining_, " left)");
  }
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(is_.gcount() == static_cast<std::streamsize>(bytes),
              "BinaryReader: truncated stream (wanted ", bytes, " bytes, got ",
              is_.gcount(), ")");
  checksum_ = FnvUpdate(checksum_, data, bytes);
  if (in_section_) {
    section_remaining_ -= bytes;
    section_crc_ = Crc32(data, bytes, section_crc_);
  }
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64Vec() {
  const int64_t n = ReadI64();
  TTREC_CHECK(n >= 0 && n < (int64_t{1} << 32),
              "BinaryReader: implausible vector length ", n);
  std::vector<int64_t> v(static_cast<size_t>(n));
  if (n > 0) ReadRaw(v.data(), static_cast<size_t>(n) * sizeof(int64_t));
  return v;
}

void BinaryReader::ReadFloats(float* data, size_t count) {
  const int64_t n = ReadI64();
  TTREC_CHECK(n == static_cast<int64_t>(count),
              "BinaryReader: float section length mismatch: expected ", count,
              ", stored ", n);
  if (count > 0) ReadRaw(data, count * sizeof(float));
}

std::string BinaryReader::ReadString() {
  const int64_t n = ReadI64();
  TTREC_CHECK(n >= 0 && n < (int64_t{1} << 24),
              "BinaryReader: implausible string length ", n);
  std::string s(static_cast<size_t>(n), '\0');
  if (n > 0) ReadRaw(s.data(), static_cast<size_t>(n));
  return s;
}

BinaryReader::SectionHeader BinaryReader::BeginAnySection() {
  TTREC_CHECK(!in_section_, "BinaryReader: sections do not nest (already in '",
              section_name_, "')");
  SectionHeader h;
  h.name = ReadString();
  const int64_t size = ReadI64();
  TTREC_CHECK(size >= 0, "BinaryReader: negative section size for '", h.name,
              "'");
  h.size = static_cast<uint64_t>(size);
  in_section_ = true;
  section_name_ = h.name;
  section_remaining_ = h.size;
  section_crc_ = 0;
  return h;
}

uint64_t BinaryReader::BeginSection(const std::string& expected_name) {
  const SectionHeader h = BeginAnySection();
  TTREC_CHECK(h.name == expected_name, "BinaryReader: expected section '",
              expected_name, "', found '", h.name, "'");
  return h.size;
}

void BinaryReader::EndSection() {
  TTREC_CHECK(in_section_, "BinaryReader: EndSection without BeginSection");
  TTREC_CHECK(section_remaining_ == 0, "BinaryReader: section '",
              section_name_, "' has ", section_remaining_,
              " unread payload bytes");
  const uint32_t computed = section_crc_;
  in_section_ = false;
  const uint32_t stored = ReadU32();
  TTREC_CHECK(stored == computed, "BinaryReader: CRC32 mismatch in section '",
              section_name_, "' (file corrupted)");
}

void BinaryReader::SkipBytes(uint64_t bytes) {
  char buf[4096];
  while (bytes > 0) {
    const size_t chunk =
        static_cast<size_t>(std::min<uint64_t>(bytes, sizeof(buf)));
    ReadRaw(buf, chunk);
    bytes -= chunk;
  }
}

void BinaryReader::Finish() {
  TTREC_CHECK(!in_section_, "BinaryReader: Finish inside section '",
              section_name_, "'");
  const uint64_t computed = checksum_;
  uint64_t stored;
  is_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  TTREC_CHECK(is_.gcount() == sizeof(stored),
              "BinaryReader: missing checksum trailer");
  TTREC_CHECK(stored == computed, "BinaryReader: checksum mismatch (file "
              "corrupted or format drift)");
}

void SaveTensor(BinaryWriter& w, const Tensor& t) {
  w.WriteI64Vec(t.shape());
  w.WriteFloats(t.data(), static_cast<size_t>(t.numel()));
}

Tensor LoadTensor(BinaryReader& r) {
  std::vector<int64_t> shape = r.ReadI64Vec();
  Tensor t(shape.empty() ? Tensor() : Tensor(shape));
  if (!shape.empty()) {
    r.ReadFloats(t.data(), static_cast<size_t>(t.numel()));
  } else {
    r.ReadFloats(nullptr, 0);
  }
  return t;
}

}  // namespace ttrec
