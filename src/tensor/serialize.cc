#include "tensor/serialize.h"

#include <istream>
#include <limits>
#include <ostream>

#include "tensor/check.h"

namespace ttrec {

namespace {
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t FnvUpdate(uint64_t h, const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

BinaryWriter::BinaryWriter(std::ostream& os) : os_(os), checksum_(kFnvOffset) {}

void BinaryWriter::WriteRaw(const void* data, size_t bytes) {
  TTREC_CHECK(!finished_, "BinaryWriter: write after Finish");
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(os_.good(), "BinaryWriter: stream write failed");
  checksum_ = FnvUpdate(checksum_, data, bytes);
}

void BinaryWriter::WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
void BinaryWriter::WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }

void BinaryWriter::WriteI64Vec(const std::vector<int64_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(int64_t));
}

void BinaryWriter::WriteFloats(const float* data, size_t count) {
  WriteI64(static_cast<int64_t>(count));
  if (count > 0) WriteRaw(data, count * sizeof(float));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  if (!s.empty()) WriteRaw(s.data(), s.size());
}

void BinaryWriter::Finish() {
  TTREC_CHECK(!finished_, "BinaryWriter: Finish called twice");
  const uint64_t sum = checksum_;
  os_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
  TTREC_CHECK(os_.good(), "BinaryWriter: trailer write failed");
  finished_ = true;
}

BinaryReader::BinaryReader(std::istream& is) : is_(is), checksum_(kFnvOffset) {}

void BinaryReader::ReadRaw(void* data, size_t bytes) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  TTREC_CHECK(is_.gcount() == static_cast<std::streamsize>(bytes),
              "BinaryReader: truncated stream (wanted ", bytes, " bytes, got ",
              is_.gcount(), ")");
  checksum_ = FnvUpdate(checksum_, data, bytes);
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v;
  ReadRaw(&v, sizeof(v));
  return v;
}

std::vector<int64_t> BinaryReader::ReadI64Vec() {
  const int64_t n = ReadI64();
  TTREC_CHECK(n >= 0 && n < (int64_t{1} << 32),
              "BinaryReader: implausible vector length ", n);
  std::vector<int64_t> v(static_cast<size_t>(n));
  if (n > 0) ReadRaw(v.data(), static_cast<size_t>(n) * sizeof(int64_t));
  return v;
}

void BinaryReader::ReadFloats(float* data, size_t count) {
  const int64_t n = ReadI64();
  TTREC_CHECK(n == static_cast<int64_t>(count),
              "BinaryReader: float section length mismatch: expected ", count,
              ", stored ", n);
  if (count > 0) ReadRaw(data, count * sizeof(float));
}

std::string BinaryReader::ReadString() {
  const int64_t n = ReadI64();
  TTREC_CHECK(n >= 0 && n < (int64_t{1} << 24),
              "BinaryReader: implausible string length ", n);
  std::string s(static_cast<size_t>(n), '\0');
  if (n > 0) ReadRaw(s.data(), static_cast<size_t>(n));
  return s;
}

void BinaryReader::Finish() {
  const uint64_t computed = checksum_;
  uint64_t stored;
  is_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  TTREC_CHECK(is_.gcount() == sizeof(stored),
              "BinaryReader: missing checksum trailer");
  TTREC_CHECK(stored == computed, "BinaryReader: checksum mismatch (file "
              "corrupted or format drift)");
}

void SaveTensor(BinaryWriter& w, const Tensor& t) {
  w.WriteI64Vec(t.shape());
  w.WriteFloats(t.data(), static_cast<size_t>(t.numel()));
}

Tensor LoadTensor(BinaryReader& r) {
  std::vector<int64_t> shape = r.ReadI64Vec();
  Tensor t(shape.empty() ? Tensor() : Tensor(shape));
  if (!shape.empty()) {
    r.ReadFloats(t.data(), static_cast<size_t>(t.numel()));
  } else {
    r.ReadFloats(nullptr, 0);
  }
  return t;
}

}  // namespace ttrec
