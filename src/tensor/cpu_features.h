// Runtime CPU capability detection and SIMD dispatch-tier selection.
//
// The GEMM microkernels ship in up to three tiers — portable scalar,
// AVX2+FMA, and AVX-512 (F/BW/DQ/VL) — compiled into separate translation
// units with per-file ISA flags. Which tier actually runs is decided once
// at startup from CPUID/XCR0, clamped by what this binary was compiled
// with, and optionally overridden DOWN via the TTREC_SIMD environment
// variable or SetSimdTier() (bench sweeps, CI's forced-scalar job).
//
// Determinism contract: results are bitwise reproducible within a tier
// (same inputs, any thread count, any operand alignment). Different tiers
// round differently (FMA, vectorized reduction order); cross-tier
// agreement is gated against GemmRef at tight tolerance in test_gemm.
#pragma once

#include <string>

namespace ttrec {

/// Dispatch tiers, ordered: a CPU that supports tier t supports every
/// tier below it, and any tier may be selected at or below the detected one.
enum class SimdTier : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// "scalar" / "avx2" / "avx512" — the names TTREC_SIMD accepts and the
/// labels stamped into BENCH_kernels.json and the obs registry.
const char* SimdTierName(SimdTier tier);

/// Best tier this process can run: hardware capability (CPUID + OS state
/// via XCR0) intersected with the kernel TUs compiled into this binary.
/// Cached after the first call.
SimdTier DetectedSimdTier();

/// The tier Gemm/Axpy dispatch on right now: DetectedSimdTier() clamped by
/// the TTREC_SIMD override (scalar|avx2|avx512; unknown values are ignored
/// with a warning, requests above the detected tier clamp down) and by the
/// last SetSimdTier() call.
SimdTier ActiveSimdTier();

/// Programmatic override for tests and bench tier sweeps. Requests above
/// DetectedSimdTier() clamp down. Takes effect for subsequent kernel
/// calls; do not change the tier while kernels are in flight if bitwise
/// reproducibility of that computation matters.
void SetSimdTier(SimdTier tier);

/// Drops any SetSimdTier() override and re-resolves from CPUID + TTREC_SIMD.
void ResetSimdTier();

/// CPU brand string via CPUID (e.g. "Intel(R) Xeon(R) CPU @ 2.10GHz");
/// "unknown" on non-x86 builds. Stamped into bench artifacts so perf
/// numbers are attributable to the machine that produced them.
std::string CpuModelName();

}  // namespace ttrec
