// Single-precision GEMM on row-major matrices.
//
// TT-Rec's lookup kernel is a chain of *small* matrix products (dims are
// products of TT ranks <= 64 and column factors <= 8), so the implementation
// favors low fixed overhead and register-blocked microkernels over cache
// blocking for huge matrices. Gemm/Axpy dispatch at runtime across SIMD
// tiers (scalar / AVX2+FMA / AVX-512; see tensor/cpu_features.h for the
// selection and determinism contract). A separate reference implementation
// exists purely as a test oracle.
#pragma once

#include <cstdint>

namespace ttrec {

enum class Trans : uint8_t { kNo, kYes };

/// C = alpha * op(A) * op(B) + beta * C.
///
/// All matrices are row-major. `m`, `n`, `k` are the dimensions *after*
/// applying the transposes: op(A) is m x k, op(B) is k x n, C is m x n.
/// `lda`/`ldb`/`ldc` are leading dimensions (row strides) of the stored
/// (untransposed) matrices.
void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, int64_t lda, const float* b, int64_t ldb, float beta,
          float* c, int64_t ldc);

/// Convenience overload for contiguous matrices (ld = row length).
void Gemm(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
          const float* a, const float* b, float beta, float* c);

/// y += alpha * x over n contiguous floats, dispatched like Gemm. Bitwise
/// deterministic within a SIMD tier for any operand alignment; used for
/// the pooling accumulation in the TT lookup kernels so the fused and
/// staged paths share one reduction kernel.
void Axpy(int64_t n, float alpha, const float* x, float* y);

/// Naive triple-loop oracle with identical semantics; for tests only.
void GemmRef(Trans ta, Trans tb, int64_t m, int64_t n, int64_t k, float alpha,
             const float* a, int64_t lda, const float* b, int64_t ldb,
             float beta, float* c, int64_t ldc);

/// y = alpha * op(A) * x + beta * y (matrix-vector).
void Gemv(Trans ta, int64_t m, int64_t n, float alpha, const float* a,
          int64_t lda, const float* x, float beta, float* y);

}  // namespace ttrec
