// Scalar (portable) GEMM kernel tier.
//
// These loops are the original pre-dispatch implementation moved here
// verbatim: the scalar tier must keep producing bitwise the same results
// the project produced before SIMD dispatch existed, because it is both
// the portable fallback and the reproducibility baseline CI pins with
// TTREC_SIMD=scalar. This file is compiled with the project's default
// flags only — no -mavx2/-mfma — so the compiler cannot contract these
// loops differently from the seed build.
#include "tensor/gemm_kernels.h"

namespace ttrec {
namespace internal {
namespace {

// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C. The i-k-j loop order
// streams B and C rows, which GCC vectorizes; fine for the small blocky
// matrices TT contraction produces.
void GemmNN(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* ai = a + i * lda;
    for (int64_t p = 0; p < k; ++p) {
      const float aip = alpha * ai[p];
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha * A^T (m x k, stored k x m) * B (k x n) + beta * C.
void GemmTN(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    for (int64_t p = 0; p < k; ++p) {
      const float aip = alpha * a[p * lda + i];
      const float* bp = b + p * ldb;
      for (int64_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

// C = alpha * A (m x k) * B^T (k x n, stored n x k) + beta * C.
// Dot-product formulation: both A row and B row are streamed contiguously.
void GemmNT(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * ldb;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

// C = alpha * A^T * B^T + beta * C.
void GemmTT(int64_t m, int64_t n, int64_t k, float alpha,
            const float* __restrict a, int64_t lda,
            const float* __restrict b, int64_t ldb, float beta,
            float* __restrict c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* ci = c + i * ldc;
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * lda + i] * b[j * ldb + p];
      ci[j] = alpha * acc + (beta == 0.0f ? 0.0f : beta * ci[j]);
    }
  }
}

// Matches the pooling loop TtEmbeddingBag used before Axpy existed
// (dst[j] += w * src[j]), so staged pooling on the scalar tier is
// arithmetically unchanged from the seed.
void Axpy(int64_t n, float alpha, const float* __restrict x,
          float* __restrict y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace

const GemmKernelTable& ScalarKernelTable() {
  static const GemmKernelTable table = {GemmNN, GemmTN, GemmNT, GemmTT, Axpy};
  return table;
}

}  // namespace internal
}  // namespace ttrec
