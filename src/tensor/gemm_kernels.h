// Internal kernel table behind Gemm/Axpy runtime dispatch.
//
// Each SIMD tier (scalar, AVX2+FMA, AVX-512) lives in its own translation
// unit compiled with per-file ISA flags and exports one GemmKernelTable.
// The public Gemm/Axpy entry points in gemm.cc validate arguments, handle
// degenerate shapes, then jump through the table for ActiveSimdTier().
//
// Kernel preconditions (established by the dispatcher, kernels may assume):
// m > 0, n > 0, k > 0, alpha != 0, leading dims already validated. Kernels
// must be bitwise deterministic for fixed (shape, inputs) regardless of
// operand alignment — unaligned loads only, tail strategy a pure function
// of the shape.
#pragma once

#include <cstdint>

#include "tensor/cpu_features.h"

namespace ttrec {
namespace internal {

/// One transpose case of C = alpha * op(A) * op(B) + beta * C (row-major).
using GemmKernelFn = void (*)(int64_t m, int64_t n, int64_t k, float alpha,
                              const float* a, int64_t lda, const float* b,
                              int64_t ldb, float beta, float* c, int64_t ldc);

/// y += alpha * x over n contiguous floats.
using AxpyFn = void (*)(int64_t n, float alpha, const float* x, float* y);

struct GemmKernelTable {
  GemmKernelFn nn;  // A, B both untransposed
  GemmKernelFn tn;  // A transposed
  GemmKernelFn nt;  // B transposed
  GemmKernelFn tt;  // both transposed
  AxpyFn axpy;
};

/// Portable tier; arithmetic identical to the pre-dispatch scalar GEMM.
const GemmKernelTable& ScalarKernelTable();

#ifdef TTREC_HAVE_AVX2
const GemmKernelTable& Avx2KernelTable();
#endif
#ifdef TTREC_HAVE_AVX512
const GemmKernelTable& Avx512KernelTable();
#endif

/// Table for a tier this binary was compiled with (callers only pass tiers
/// at or below DetectedSimdTier(), which is already clamped to the build).
const GemmKernelTable& KernelTableFor(SimdTier tier);

}  // namespace internal
}  // namespace ttrec
