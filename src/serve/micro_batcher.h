// Coalesces queued requests into one MiniBatch for a single forward pass.
//
// Correctness contract: because every layer of the const inference path
// computes each sample independently in a fixed order (see
// dlrm/model.h PredictLogits const), the logits of a request are bitwise
// identical whether it runs alone or folded into a micro-batch — batching
// changes throughput, never results. tests/test_serve.cc asserts this.
#pragma once

#include <cstdint>
#include <vector>

#include "data/criteo_synth.h"
#include "serve/request_queue.h"

namespace ttrec::serve {

/// The assembled unit of work a consumer executes.
struct MicroBatch {
  /// Concatenation of the requests' samples, in queue order. Labels are
  /// zero-filled — MiniBatch sizes itself off labels, and the forward pass
  /// never reads them.
  MiniBatch batch;
  /// The requests, same order as their samples; promises still pending.
  std::vector<PendingRequest> requests;
  /// Request r owns samples [sample_offsets[r], sample_offsets[r+1]).
  std::vector<int64_t> sample_offsets;
};

class MicroBatcher {
 public:
  MicroBatcher(int num_tables, int64_t num_dense);

  /// Concatenates `requests` (already shape-validated by Submit) into one
  /// MicroBatch. Per-table CsrBatches are merged by appending indices and
  /// shifting offsets; per-lookup weights are materialized as all-ones
  /// whenever any request in the batch carries explicit weights for that
  /// table, so mixed batches pool identically to their solo runs.
  MicroBatch Assemble(std::vector<PendingRequest> requests) const;

  int num_tables() const { return num_tables_; }
  int64_t num_dense() const { return num_dense_; }

 private:
  int num_tables_;
  int64_t num_dense_;
};

/// The inverse of Assemble: one single-sample InferenceRequest per sample
/// of `batch` (labels dropped). How load generators and tests turn a
/// criteo_synth MiniBatch into a request stream.
std::vector<InferenceRequest> SplitSamples(const MiniBatch& batch);

}  // namespace ttrec::serve
