#include "serve/inference_server.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "dlrm/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_session.h"
#include "tensor/check.h"

namespace ttrec::serve {

namespace {

const DlrmModel& Deref(const std::shared_ptr<const DlrmModel>& model) {
  TTREC_CHECK_CONFIG(model != nullptr,
                     "InferenceServer: model must be non-null");
  return *model;
}

int64_t Micros(std::chrono::steady_clock::duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

}  // namespace

InferenceServer::InferenceServer(std::shared_ptr<const DlrmModel> model,
                                 InferenceServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity),
      batcher_(Deref(model).num_tables(), model->config().num_dense),
      effective_max_batch_(config_.max_batch_size),
      effective_max_wait_us_(config_.max_wait.count()) {
  TTREC_CHECK_CONFIG(config_.max_batch_size >= 1,
                     "InferenceServer: max_batch_size must be >= 1");
  TTREC_CHECK_CONFIG(config_.num_consumers >= 1,
                     "InferenceServer: num_consumers must be >= 1");
  TTREC_CHECK_CONFIG(config_.num_shards >= 0,
                     "InferenceServer: num_shards must be >= 0");
  TTREC_CHECK_CONFIG(config_.keep_generation_metrics >= 0,
                     "InferenceServer: keep_generation_metrics must be >= 0");
  metrics_.SetGenerationRetention(config_.keep_generation_metrics);
  auto slot = std::make_shared<ModelSlot>();
  slot->model = std::move(model);
  slot->generation = 1;
  if (config_.num_shards >= 1) {
    // The plan is computed once, from the incumbent model's actual table
    // footprints, and kept for the server's lifetime: swaps only admit
    // row-compatible models, so the same plan stays valid across them.
    slot->plan = std::make_shared<const shard::ShardPlan>(
        shard::MakeShardPlanForModel(*slot->model, config_.partition,
                                     config_.num_shards));
    slot->shards = shard::BuildShards(slot->model, slot->plan);
    shard_telemetry_.reserve(static_cast<size_t>(config_.num_shards));
    for (int s = 0; s < config_.num_shards; ++s) {
      const ServeMetrics::ShardMetrics m = metrics_.Shard(s);
      shard_telemetry_.push_back(
          shard::ShardTelemetry{&m.queries, &m.lookups, &m.latency_us});
    }
  }
  slot_ = std::move(slot);
  governor_ = std::make_unique<LoadGovernor>(
      config_.governor,
      [this]() -> LoadGovernor::Signals {
        return LoadGovernor::Signals{queue_.size(), queue_.capacity(),
                                     metrics_.WindowLatencyP95AndReset()};
      },
      [this](HealthState from, HealthState to) {
        OnHealthTransition(from, to);
      });
  StartServing();
}

InferenceServer::InferenceServer(const DlrmModel& model,
                                 InferenceServerConfig config)
    // Aliasing a null owner makes a non-owning shared_ptr: the caller keeps
    // the model alive, as the ctor contract requires.
    : InferenceServer(std::shared_ptr<const DlrmModel>(
                          std::shared_ptr<const DlrmModel>(), &model),
                      std::move(config)) {}

void InferenceServer::StartServing() {
  consumers_.reserve(static_cast<size_t>(config_.num_consumers));
  for (int i = 0; i < config_.num_consumers; ++i) {
    consumers_.emplace_back([this] { ConsumerLoop(); });
  }
  governor_->Start();
  if (!config_.report_path.empty() && config_.report_interval.count() > 0) {
    reporter_ = std::make_unique<obs::PeriodicReporter>(
        [this] { return MetricsJson(); }, config_.report_interval,
        config_.report_path);
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::BeginDrain() { governor_->ForceDrain(); }

void InferenceServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  governor_->ForceDrain();  // records the transition; Submit now rejects
  governor_->Stop();
  queue_.Close();
  for (std::thread& t : consumers_) {
    if (t.joinable()) t.join();
  }
  if (reporter_ != nullptr) reporter_->Stop();  // final line post-drain
}

std::shared_ptr<const InferenceServer::ModelSlot>
InferenceServer::CurrentSlot() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_;
}

uint64_t InferenceServer::generation() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_->generation;
}

std::shared_ptr<const shard::ShardPlan> InferenceServer::shard_plan() const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return slot_->plan;
}

void InferenceServer::ValidateRequest(const InferenceRequest& r,
                                      const DlrmModel& model) const {
  const int64_t S = r.num_samples();
  TTREC_CHECK_SHAPE(r.dense.ndim() == 2 && S >= 1 &&
                        r.dense.dim(1) == model.config().num_dense,
                    "InferenceRequest: dense must be (num_samples x ",
                    model.config().num_dense, ")");
  TTREC_CHECK_SHAPE(
      static_cast<int>(r.sparse.size()) == model.num_tables(),
      "InferenceRequest: has ", r.sparse.size(),
      " sparse features, model has ", model.num_tables(), " tables");
  const bool strict = model.config().index_policy == IndexPolicy::kThrow;
  for (int t = 0; t < model.num_tables(); ++t) {
    const CsrBatch& cb = r.sparse[static_cast<size_t>(t)];
    TTREC_CHECK_SHAPE(cb.num_bags() == S, "InferenceRequest: table ", t,
                      " has ", cb.num_bags(), " bags for ", S, " samples");
    // Index-range errors fail this request alone, here at Submit time —
    // under kClampToZero the forward pass absorbs them instead. Validity
    // survives a swap between here and execution: SwapModel only admits
    // models with identical table row counts.
    if (strict) {
      cb.Validate(model.table(t).num_rows());
    } else {
      cb.ValidateStructure();
    }
  }
}

void InferenceServer::ValidateSwapCompatible(const DlrmModel& incumbent,
                                             const DlrmModel& next) const {
  // Identical architecture keeps every in-flight artifact valid across the
  // swap: the MicroBatcher's table/dense counts, indices validated against
  // generation G but executed on G+1, and consumers' scratch shapes.
  TTREC_CHECK_CONFIG(next.num_tables() == incumbent.num_tables(),
                     "SwapModel: table count mismatch (incumbent ",
                     incumbent.num_tables(), ", next ", next.num_tables(),
                     ")");
  TTREC_CHECK_CONFIG(
      next.config().num_dense == incumbent.config().num_dense,
      "SwapModel: num_dense mismatch (incumbent ",
      incumbent.config().num_dense, ", next ", next.config().num_dense, ")");
  TTREC_CHECK_CONFIG(next.config().emb_dim == incumbent.config().emb_dim,
                     "SwapModel: emb_dim mismatch (incumbent ",
                     incumbent.config().emb_dim, ", next ",
                     next.config().emb_dim, ")");
  TTREC_CHECK_CONFIG(
      next.config().index_policy == incumbent.config().index_policy,
      "SwapModel: index_policy mismatch — admission validation semantics "
      "must not change under a live swap");
  for (int t = 0; t < incumbent.num_tables(); ++t) {
    TTREC_CHECK_CONFIG(
        next.table(t).num_rows() == incumbent.table(t).num_rows(),
        "SwapModel: table ", t, " row count mismatch (incumbent ",
        incumbent.table(t).num_rows(), ", next ", next.table(t).num_rows(),
        ")");
  }
}

uint64_t InferenceServer::SwapModel(std::shared_ptr<const DlrmModel> next) {
  std::lock_guard<std::mutex> lock(model_mu_);
  std::vector<std::shared_ptr<const shard::EmbeddingShard>> standby;
  try {
    TTREC_CHECK_CONFIG(next != nullptr, "SwapModel: model must be non-null");
    ValidateSwapCompatible(*slot_->model, *next);
    if (slot_->plan != nullptr) {
      // Prepare: construct the ENTIRE standby shard fleet against the
      // incumbent plan before anything publishes. Either every shard
      // validates, or the incumbent fleet keeps serving untouched — a
      // micro-batch can never fan out over a mixed-generation fleet.
      standby = shard::BuildShards(next, slot_->plan);
    }
  } catch (...) {
    metrics_.RecordSwapRejected();
    throw;
  }
  for (size_t s = 0; s < standby.size(); ++s) {
    metrics_.Shard(static_cast<int>(s)).swaps_prepared.Add(1);
  }
  // Commit: one pointer store publishes model + fleet atomically.
  auto fresh = std::make_shared<ModelSlot>();
  fresh->model = std::move(next);
  fresh->generation = slot_->generation + 1;
  fresh->plan = slot_->plan;
  fresh->shards = std::move(standby);
  slot_ = std::move(fresh);
  metrics_.RecordSwapOk(slot_->generation);
  return slot_->generation;
}

uint64_t InferenceServer::SwapModel(const std::string& checkpoint_path) {
  std::shared_ptr<const DlrmModel> standby;
  try {
    TTREC_CHECK_CONFIG(config_.model_factory != nullptr,
                       "SwapModel(path): config.model_factory is unset — "
                       "the server cannot build a standby model");
    // Structural pre-check (magic, version, checksum trailer) before any
    // parsing: a corrupt file must not even reach deserialization.
    const CheckpointFileStatus v = VerifyModelCheckpointFile(checkpoint_path);
    TTREC_CHECK_CONFIG(v.ok, "SwapModel: rejecting checkpoint '",
                       checkpoint_path, "': ", v.error);
    std::unique_ptr<DlrmModel> loaded = config_.model_factory();
    TTREC_CHECK_CONFIG(loaded != nullptr,
                       "SwapModel: model_factory returned null");
    loaded->LoadCheckpointFromFile(checkpoint_path);
    standby = std::shared_ptr<const DlrmModel>(std::move(loaded));
  } catch (...) {
    // Anything wrong with the candidate is counted here; the publish step
    // below counts its own (compatibility) rejections.
    metrics_.RecordSwapRejected();
    throw;
  }
  return SwapModel(std::move(standby));
}

std::future<InferenceResult> InferenceServer::Submit(
    InferenceRequest request) {
  std::promise<InferenceResult> promise;
  std::future<InferenceResult> future = promise.get_future();
  const auto reject = [&](std::exception_ptr err) {
    promise.set_exception(std::move(err));
    return std::move(future);
  };
  if (shut_down_.load(std::memory_order_acquire)) {
    metrics_.RecordRequestFailed();
    return reject(std::make_exception_ptr(
        ServerShutdown("Submit: server is shut down")));
  }
  switch (health()) {
    case HealthState::kDraining:
      metrics_.RecordRequestFailed();
      return reject(std::make_exception_ptr(
          ServerShutdown("Submit: server is draining")));
    case HealthState::kShedding:
      metrics_.RecordShed();
      return reject(std::make_exception_ptr(
          ServerOverloaded("Submit: shedding load",
                           config_.governor.retry_after)));
    case HealthState::kHealthy:
    case HealthState::kDegraded:
      break;
  }
  const auto now = std::chrono::steady_clock::now();
  if (request.expired(now)) {
    metrics_.RecordDeadlineMissed();
    return reject(std::make_exception_ptr(
        DeadlineExceeded("Submit: deadline already passed at admission")));
  }
  try {
    const std::shared_ptr<const ModelSlot> slot = CurrentSlot();
    ValidateRequest(request, *slot->model);
  } catch (...) {
    metrics_.RecordRequestFailed();
    return reject(std::current_exception());
  }

  PendingRequest item;
  item.request = std::move(request);
  item.promise = std::move(promise);
  item.enqueued_at = now;

  // How long admission may block: the policy's budget, further clipped by
  // the request's own deadline (never wait for space past the point where
  // the answer is useless).
  auto admission_deadline = kNoDeadline;
  switch (config_.admission) {
    case AdmissionPolicy::kBlock:
      break;
    case AdmissionPolicy::kBlockWithTimeout:
      admission_deadline = now + config_.admission_timeout;
      break;
    case AdmissionPolicy::kRejectWhenFull:
      admission_deadline = std::chrono::steady_clock::time_point::min();
      break;
  }
  admission_deadline = std::min(admission_deadline, item.request.deadline);

  switch (queue_.PushUntil(item, admission_deadline)) {
    case RequestQueue::PushResult::kOk:
      break;
    case RequestQueue::PushResult::kClosed:
      metrics_.RecordRequestFailed();
      item.promise.set_exception(std::make_exception_ptr(
          ServerShutdown("Submit: server shut down during admission")));
      break;
    case RequestQueue::PushResult::kTimedOut:
      if (item.request.expired(std::chrono::steady_clock::now())) {
        metrics_.RecordDeadlineMissed();
        item.promise.set_exception(std::make_exception_ptr(DeadlineExceeded(
            "Submit: deadline passed while waiting for queue space")));
      } else {
        metrics_.RecordShed();
        item.promise.set_exception(std::make_exception_ptr(
            ServerOverloaded("Submit: queue full",
                             config_.governor.retry_after)));
      }
      break;
  }
  return future;
}

void InferenceServer::OnHealthTransition(HealthState /*from*/,
                                         HealthState to) {
  metrics_.RecordHealthTransition(to);
  switch (to) {
    case HealthState::kHealthy:
    case HealthState::kDraining:
      // Nominal knobs; a drain also wants them — empty the queue at full
      // batching throughput.
      effective_max_batch_.store(config_.max_batch_size,
                                 std::memory_order_relaxed);
      effective_max_wait_us_.store(config_.max_wait.count(),
                                   std::memory_order_relaxed);
      break;
    case HealthState::kDegraded:
    case HealthState::kShedding: {
      // Latency-first: close batches early and keep them small, so queued
      // requests start executing sooner.
      const int64_t cap =
          config_.governor.degraded_max_batch > 0
              ? config_.governor.degraded_max_batch
              : std::max<int64_t>(1, config_.max_batch_size / 4);
      effective_max_batch_.store(std::min(config_.max_batch_size, cap),
                                 std::memory_order_relaxed);
      effective_max_wait_us_.store(
          config_.governor.degraded_max_wait.count(),
          std::memory_order_relaxed);
      break;
    }
  }
}

void InferenceServer::ConsumerLoop() {
  std::shared_ptr<const ModelSlot> slot = CurrentSlot();
  // A sharded slot serves through a per-consumer ShardRouter (fan-out/join
  // over the slot's fleet); an unsharded one through an InferenceSession.
  // The topology is fixed at construction, so exactly one is ever built.
  const bool sharded = !slot->shards.empty();
  std::unique_ptr<InferenceSession> session;
  std::unique_ptr<shard::ShardRouter> router;
  const auto rebuild = [&](const std::shared_ptr<const ModelSlot>& s) {
    if (sharded) {
      router = std::make_unique<shard::ShardRouter>(s->model, s->plan,
                                                    s->shards,
                                                    shard_telemetry_);
    } else {
      session = std::make_unique<InferenceSession>(*s->model);
    }
  };
  rebuild(slot);
  // Generation-labeled metrics are looked up once per generation change
  // (a mutex) and recorded lock-free after.
  std::shared_ptr<ServeMetrics::GenerationBlock> gen =
      metrics_.Generation(slot->generation);
  std::vector<float> logits;
  for (;;) {
    std::vector<PendingRequest> items;
    {
      TTREC_TRACE_SCOPE("serve.queue_wait");
      items = queue_.PopBatch(
          effective_max_batch_.load(std::memory_order_relaxed),
          std::chrono::microseconds(
              effective_max_wait_us_.load(std::memory_order_relaxed)));
    }
    if (items.empty()) return;  // closed and drained

    // Deadline triage before any forward work: computing logits nobody is
    // waiting for is exactly the waste that deepens an overload. The most
    // lenient surviving deadline also becomes the fan-out deadline a
    // sharded batch carries: a shard refuses work only once EVERY member
    // is already expired (tighter members keep the existing semantics —
    // admitted at triage, answered even if they lapse mid-forward).
    auto batch_deadline = kNoDeadline;
    {
      const auto now = std::chrono::steady_clock::now();
      size_t kept = 0;
      auto latest = std::chrono::steady_clock::time_point::min();
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].request.expired(now)) {
          // Count before failing the promise: a waiter released by
          // set_exception must already see this miss in a snapshot.
          metrics_.RecordDeadlineMissed();
          items[i].promise.set_exception(std::make_exception_ptr(
              DeadlineExceeded("deadline passed while queued")));
        } else {
          latest = std::max(latest, items[i].request.deadline);
          if (kept != i) items[kept] = std::move(items[i]);
          ++kept;
        }
      }
      if (kept < items.size()) {
        items.resize(kept);
        if (items.empty()) continue;
      }
      batch_deadline = latest;
    }

    // Pin one generation for the whole micro-batch: every sample in it is
    // served by exactly this model, and holding the slot's shared_ptr keeps
    // the model alive even if a swap retires it mid-batch.
    if (std::shared_ptr<const ModelSlot> cur = CurrentSlot();
        cur->generation != slot->generation) {
      slot = std::move(cur);
      rebuild(slot);
      gen = metrics_.Generation(slot->generation);
    }

    const auto batch_start = std::chrono::steady_clock::now();
    MicroBatch mb = [&] {
      TTREC_TRACE_SCOPE("serve.assemble");
      return batcher_.Assemble(std::move(items));
    }();
    const int64_t B = mb.batch.batch_size();
    metrics_.RecordBatch(B);
    logits.assign(static_cast<size_t>(B), 0.0f);
    try {
      TTREC_TRACE_SCOPE("serve.inference");
      if (sharded) {
        router->Run(mb.batch, logits.data(), batch_deadline);
      } else {
        session->Run(mb.batch, logits.data());
      }
    } catch (const DeadlineExceeded&) {
      // A shard refused the fan-out because every member had expired:
      // typed deadline misses, never untyped drops.
      const std::exception_ptr err = std::current_exception();
      metrics_.RecordDeadlineMissed(static_cast<int64_t>(mb.requests.size()));
      for (PendingRequest& pr : mb.requests) pr.promise.set_exception(err);
      continue;
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      metrics_.RecordRequestFailed(
          static_cast<int64_t>(mb.requests.size()));
      for (PendingRequest& pr : mb.requests) pr.promise.set_exception(err);
      continue;
    }
    const auto done = std::chrono::steady_clock::now();
    TTREC_TRACE_SCOPE("serve.split");
    for (size_t r = 0; r < mb.requests.size(); ++r) {
      PendingRequest& pr = mb.requests[r];
      InferenceResult result;
      result.micro_batch_size = B;
      result.model_generation = slot->generation;
      result.logits.assign(logits.begin() + mb.sample_offsets[r],
                           logits.begin() + mb.sample_offsets[r + 1]);
      const int64_t latency_us = Micros(done - pr.enqueued_at);
      metrics_.RecordRequestOk(latency_us,
                               Micros(batch_start - pr.enqueued_at));
      gen->ok.Add(1);
      gen->latency.Record(latency_us);
      pr.promise.set_value(std::move(result));
    }
  }
}

ServeMetricsSnapshot InferenceServer::SnapshotWithCacheStats() const {
  ServeMetricsSnapshot s = metrics_.Snapshot();
  s.queue_depth_high_water = static_cast<int64_t>(queue_.high_water());
  s.health = health();
  const std::shared_ptr<const ModelSlot> slot = CurrentSlot();
  if (slot->plan != nullptr) {
    s.num_shards = slot->plan->num_shards();
    s.partition = shard::ToString(slot->plan->strategy());
  }
  const DlrmModel& model = *slot->model;
  // Collect every table into a fresh registry: cached tables Add() into the
  // shared cache.* names, so per-model totals fall out of the registry
  // semantics — no dynamic_cast on concrete adapter types.
  obs::MetricRegistry stats;
  for (int t = 0; t < model.num_tables(); ++t) {
    model.table(t).CollectStats(stats);
  }
  if (const obs::StripedCounter* hits = stats.FindCounter("cache.hits")) {
    s.has_cache = true;
    s.cache_hits = hits->Total();
  }
  if (const obs::StripedCounter* misses = stats.FindCounter("cache.misses")) {
    s.has_cache = true;
    s.cache_misses = misses->Total();
  }
  if (s.has_cache && s.cache_hits + s.cache_misses > 0) {
    s.cache_hit_rate =
        static_cast<double>(s.cache_hits) /
        static_cast<double>(s.cache_hits + s.cache_misses);
  }
  return s;
}

std::string InferenceServer::MetricsJson() const {
  return ToJson(SnapshotWithCacheStats());
}

}  // namespace ttrec::serve
