#include "serve/inference_server.h"

#include <exception>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_session.h"
#include "tensor/check.h"

namespace ttrec::serve {

InferenceServer::InferenceServer(const DlrmModel& model,
                                 InferenceServerConfig config)
    : model_(model),
      config_(config),
      queue_(config.queue_capacity),
      batcher_(model.num_tables(), model.config().num_dense) {
  TTREC_CHECK_CONFIG(config_.max_batch_size >= 1,
                     "InferenceServer: max_batch_size must be >= 1");
  TTREC_CHECK_CONFIG(config_.num_consumers >= 1,
                     "InferenceServer: num_consumers must be >= 1");
  consumers_.reserve(static_cast<size_t>(config_.num_consumers));
  for (int i = 0; i < config_.num_consumers; ++i) {
    consumers_.emplace_back([this] { ConsumerLoop(); });
  }
  if (!config_.report_path.empty() && config_.report_interval.count() > 0) {
    reporter_ = std::make_unique<obs::PeriodicReporter>(
        [this] { return MetricsJson(); }, config_.report_interval,
        config_.report_path);
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

void InferenceServer::Shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.Close();
  for (std::thread& t : consumers_) {
    if (t.joinable()) t.join();
  }
  if (reporter_ != nullptr) reporter_->Stop();  // final line post-drain
}

void InferenceServer::ValidateRequest(const InferenceRequest& r) const {
  const int64_t S = r.num_samples();
  TTREC_CHECK_SHAPE(r.dense.ndim() == 2 && S >= 1 &&
                        r.dense.dim(1) == model_.config().num_dense,
                    "InferenceRequest: dense must be (num_samples x ",
                    model_.config().num_dense, ")");
  TTREC_CHECK_SHAPE(
      static_cast<int>(r.sparse.size()) == model_.num_tables(),
      "InferenceRequest: has ", r.sparse.size(),
      " sparse features, model has ", model_.num_tables(), " tables");
  const bool strict =
      model_.config().index_policy == IndexPolicy::kThrow;
  for (int t = 0; t < model_.num_tables(); ++t) {
    const CsrBatch& cb = r.sparse[static_cast<size_t>(t)];
    TTREC_CHECK_SHAPE(cb.num_bags() == S, "InferenceRequest: table ", t,
                      " has ", cb.num_bags(), " bags for ", S, " samples");
    // Index-range errors fail this request alone, here at Submit time —
    // under kClampToZero the forward pass absorbs them instead.
    if (strict) {
      cb.Validate(model_.table(t).num_rows());
    } else {
      cb.ValidateStructure();
    }
  }
}

std::future<InferenceResult> InferenceServer::Submit(
    InferenceRequest request) {
  std::promise<InferenceResult> promise;
  std::future<InferenceResult> future = promise.get_future();
  try {
    ValidateRequest(request);
  } catch (...) {
    metrics_.RecordRequestFailed();
    promise.set_exception(std::current_exception());
    return future;
  }
  PendingRequest item;
  item.request = std::move(request);
  item.promise = std::move(promise);
  item.enqueued_at = std::chrono::steady_clock::now();
  if (!queue_.Push(std::move(item))) {
    metrics_.RecordRequestFailed();  // Push already failed the promise
  }
  return future;
}

void InferenceServer::ConsumerLoop() {
  InferenceSession session(model_);
  std::vector<float> logits;
  for (;;) {
    std::vector<PendingRequest> items;
    {
      TTREC_TRACE_SCOPE("serve.queue_wait");
      items = queue_.PopBatch(config_.max_batch_size, config_.max_wait);
    }
    if (items.empty()) return;  // closed and drained

    const auto batch_start = std::chrono::steady_clock::now();
    MicroBatch mb = [&] {
      TTREC_TRACE_SCOPE("serve.assemble");
      return batcher_.Assemble(std::move(items));
    }();
    const int64_t B = mb.batch.batch_size();
    metrics_.RecordBatch(B);
    logits.assign(static_cast<size_t>(B), 0.0f);
    try {
      TTREC_TRACE_SCOPE("serve.inference");
      session.Run(mb.batch, logits.data());
    } catch (...) {
      const std::exception_ptr err = std::current_exception();
      metrics_.RecordRequestFailed(
          static_cast<int64_t>(mb.requests.size()));
      for (PendingRequest& pr : mb.requests) pr.promise.set_exception(err);
      continue;
    }
    const auto done = std::chrono::steady_clock::now();
    TTREC_TRACE_SCOPE("serve.split");
    for (size_t r = 0; r < mb.requests.size(); ++r) {
      PendingRequest& pr = mb.requests[r];
      InferenceResult result;
      result.micro_batch_size = B;
      result.logits.assign(
          logits.begin() + mb.sample_offsets[r],
          logits.begin() + mb.sample_offsets[r + 1]);
      const auto us = [](auto d) {
        return std::chrono::duration_cast<std::chrono::microseconds>(d)
            .count();
      };
      metrics_.RecordRequestOk(us(done - pr.enqueued_at),
                               us(batch_start - pr.enqueued_at));
      pr.promise.set_value(std::move(result));
    }
  }
}

ServeMetricsSnapshot InferenceServer::SnapshotWithCacheStats() const {
  ServeMetricsSnapshot s = metrics_.Snapshot();
  // Collect every table into a fresh registry: cached tables Add() into the
  // shared cache.* names, so per-model totals fall out of the registry
  // semantics — no dynamic_cast on concrete adapter types.
  obs::MetricRegistry stats;
  for (int t = 0; t < model_.num_tables(); ++t) {
    model_.table(t).CollectStats(stats);
  }
  if (const obs::StripedCounter* hits = stats.FindCounter("cache.hits")) {
    s.has_cache = true;
    s.cache_hits = hits->Total();
  }
  if (const obs::StripedCounter* misses = stats.FindCounter("cache.misses")) {
    s.has_cache = true;
    s.cache_misses = misses->Total();
  }
  if (s.has_cache && s.cache_hits + s.cache_misses > 0) {
    s.cache_hit_rate =
        static_cast<double>(s.cache_hits) /
        static_cast<double>(s.cache_hits + s.cache_misses);
  }
  return s;
}

std::string InferenceServer::MetricsJson() const {
  return ToJson(SnapshotWithCacheStats());
}

}  // namespace ttrec::serve
