#include "serve/request_queue.h"

#include <utility>

#include "serve/serve_errors.h"
#include "tensor/check.h"

namespace ttrec::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  TTREC_CHECK_CONFIG(capacity >= 1, "RequestQueue: capacity must be >= 1");
}

RequestQueue::PushResult RequestQueue::PushUntil(
    PendingRequest& item, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto admissible = [this] {
    return closed_ || items_.size() < capacity_;
  };
  if (deadline == kNoDeadline) {
    // wait_until with time_point::max() overflows on some libstdc++
    // versions, so the unbounded mode takes the plain wait.
    not_full_.wait(lock, admissible);
  } else if (!not_full_.wait_until(lock, deadline, admissible)) {
    return PushResult::kTimedOut;
  }
  // The wake reasons are checked in a fixed priority order under the lock:
  // a producer that raced Close() always observes kClosed here (never
  // enqueues onto a closed queue), and the caller — the only owner of the
  // item — fails the promise exactly once.
  if (closed_) return PushResult::kClosed;
  items_.push_back(std::move(item));
  if (items_.size() > high_water_) high_water_ = items_.size();
  lock.unlock();
  not_empty_.notify_one();
  return PushResult::kOk;
}

RequestQueue::PushResult RequestQueue::TryPush(PendingRequest& item) {
  return PushUntil(item, std::chrono::steady_clock::time_point::min());
}

bool RequestQueue::Push(PendingRequest item) {
  if (PushUntil(item, kNoDeadline) == PushResult::kOk) return true;
  item.promise.set_exception(std::make_exception_ptr(
      ServerShutdown("InferenceServer: shut down, request rejected")));
  return false;
}

std::vector<PendingRequest> RequestQueue::PopBatch(
    int64_t max_items, std::chrono::microseconds max_wait) {
  std::vector<PendingRequest> out;
  if (max_items < 1) max_items = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return out;  // closed and drained

  const auto deadline = std::chrono::steady_clock::now() + max_wait;
  for (;;) {
    while (!items_.empty() &&
           static_cast<int64_t>(out.size()) < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (static_cast<int64_t>(out.size()) >= max_items || closed_) break;
    // Batch not full: wake any producers blocked on the space just freed
    // before waiting for stragglers to coalesce — a full-queue producer
    // must not stall behind this consumer's coalescing window.
    lock.unlock();
    not_full_.notify_all();
    lock.lock();
    if (!not_empty_.wait_until(lock, deadline, [this] {
          return closed_ || !items_.empty();
        })) {
      break;  // deadline passed
    }
    if (items_.empty()) break;  // woken by Close with nothing left
  }
  lock.unlock();
  not_full_.notify_all();
  return out;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

size_t RequestQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace ttrec::serve
