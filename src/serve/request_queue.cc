#include "serve/request_queue.h"

#include <stdexcept>
#include <utility>

#include "tensor/check.h"

namespace ttrec::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  TTREC_CHECK_CONFIG(capacity >= 1, "RequestQueue: capacity must be >= 1");
}

bool RequestQueue::Push(PendingRequest item) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (!closed_) {
      items_.push_back(std::move(item));
      lock.unlock();
      not_empty_.notify_one();
      return true;
    }
  }
  item.promise.set_exception(std::make_exception_ptr(
      std::runtime_error("InferenceServer: shut down, request rejected")));
  return false;
}

std::vector<PendingRequest> RequestQueue::PopBatch(
    int64_t max_items, std::chrono::microseconds max_wait) {
  std::vector<PendingRequest> out;
  if (max_items < 1) max_items = 1;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return out;  // closed and drained

  const auto deadline = std::chrono::steady_clock::now() + max_wait;
  for (;;) {
    while (!items_.empty() &&
           static_cast<int64_t>(out.size()) < max_items) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    if (static_cast<int64_t>(out.size()) >= max_items || closed_) break;
    // Batch not full: wait (up to the deadline) for stragglers to coalesce.
    if (not_empty_.wait_until(lock, deadline, [this] {
          return closed_ || !items_.empty();
        })) {
      if (items_.empty()) break;  // woken by Close with nothing left
      continue;
    }
    break;  // deadline passed
  }
  lock.unlock();
  not_full_.notify_all();
  return out;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

}  // namespace ttrec::serve
