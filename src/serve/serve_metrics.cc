#include "serve/serve_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

namespace ttrec::serve {

namespace {

int ThreadStripe(int stripes) {
  // Hash of the thread id, computed once per thread. A plain modulo of the
  // hash is fine: we need spread, not uniformity.
  static thread_local const size_t tid_hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<int>(tid_hash % static_cast<size_t>(stripes));
}

}  // namespace

void StripedCounter::Add(int64_t n) {
  cells_[static_cast<size_t>(ThreadStripe(kStripes))].value.fetch_add(
      n, std::memory_order_relaxed);
}

int64_t StripedCounter::Total() const {
  int64_t total = 0;
  for (const Cell& c : cells_) total += c.value.load(std::memory_order_relaxed);
  return total;
}

void StripedCounter::Reset() {
  for (Cell& c : cells_) c.value.store(0, std::memory_order_relaxed);
}

LatencyHistogram::LatencyHistogram() {
  bounds_[0] = 0;
  double v = 1.0;
  for (int i = 1; i <= kBuckets; ++i) {
    // Strictly increasing integer bounds: geometric growth once the 1.25x
    // step exceeds one microsecond, +1 before that.
    bounds_[static_cast<size_t>(i)] =
        std::max(bounds_[static_cast<size_t>(i - 1)] + 1,
                 static_cast<int64_t>(std::llround(v)));
    v *= 1.25;
  }
}

int LatencyHistogram::BucketFor(int64_t micros) const {
  if (micros < 0) micros = 0;
  // Last bound is an interpolation anchor, not a cap: values beyond it land
  // in the final bucket.
  const auto it =
      std::upper_bound(bounds_.begin(), bounds_.end(), micros);
  const int idx = static_cast<int>(it - bounds_.begin()) - 1;
  return std::min(idx, kBuckets - 1);
}

void LatencyHistogram::Record(int64_t micros) {
  counts_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  sum_micros_.fetch_add(micros < 0 ? 0 : micros, std::memory_order_relaxed);
}

int64_t LatencyHistogram::TotalCount() const {
  int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::MeanMicros() const {
  const int64_t n = TotalCount();
  if (n == 0) return 0.0;
  return static_cast<double>(sum_micros_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double LatencyHistogram::PercentileMicros(double p) const {
  std::array<int64_t, kBuckets> counts;
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        counts_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(i)];
  }
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t c = counts[static_cast<size_t>(i)];
    if (c == 0) continue;
    if (cum + static_cast<double>(c) >= target) {
      const double lo = static_cast<double>(bounds_[static_cast<size_t>(i)]);
      const double hi =
          static_cast<double>(bounds_[static_cast<size_t>(i + 1)]);
      const double frac =
          std::clamp((target - cum) / static_cast<double>(c), 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    cum += static_cast<double>(c);
  }
  return static_cast<double>(bounds_[kBuckets]);
}

void LatencyHistogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_micros_.store(0, std::memory_order_relaxed);
}

ServeMetrics::ServeMetrics() : start_(std::chrono::steady_clock::now()) {}

void ServeMetrics::RecordRequestOk(int64_t latency_us, int64_t queue_wait_us) {
  ok_.Add(1);
  latency_.Record(latency_us);
  queue_wait_.Record(queue_wait_us);
}

void ServeMetrics::RecordRequestFailed(int64_t n) { failed_.Add(n); }

void ServeMetrics::RecordBatch(int64_t batch_size) {
  batches_.Add(1);
  samples_.Add(batch_size);
  int bucket = 0;
  for (int64_t s = batch_size; s > 1 && bucket + 1 < kBatchSizeBuckets;
       s >>= 1) {
    ++bucket;
  }
  batch_size_hist_[static_cast<size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

ServeMetricsSnapshot ServeMetrics::Snapshot() const {
  ServeMetricsSnapshot s;
  const auto now = std::chrono::steady_clock::now();
  s.uptime_seconds =
      std::chrono::duration<double>(now - start_).count();
  s.requests_ok = ok_.Total();
  s.requests_failed = failed_.Total();
  s.samples = samples_.Total();
  s.batches = batches_.Total();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.requests_ok) / s.uptime_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.samples) / static_cast<double>(s.batches)
          : 0.0;
  s.latency_mean_us = latency_.MeanMicros();
  s.latency_p50_us = latency_.PercentileMicros(50.0);
  s.latency_p95_us = latency_.PercentileMicros(95.0);
  s.latency_p99_us = latency_.PercentileMicros(99.0);
  s.queue_wait_mean_us = queue_wait_.MeanMicros();
  s.queue_wait_p50_us = queue_wait_.PercentileMicros(50.0);
  s.queue_wait_p95_us = queue_wait_.PercentileMicros(95.0);
  s.queue_wait_p99_us = queue_wait_.PercentileMicros(99.0);
  s.batch_size_hist.resize(kBatchSizeBuckets);
  for (int i = 0; i < kBatchSizeBuckets; ++i) {
    s.batch_size_hist[static_cast<size_t>(i)] =
        batch_size_hist_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
  }
  return s;
}

void ServeMetrics::Reset() {
  start_ = std::chrono::steady_clock::now();
  ok_.Reset();
  failed_.Reset();
  samples_.Reset();
  batches_.Reset();
  latency_.Reset();
  queue_wait_.Reset();
  for (auto& c : batch_size_hist_) c.store(0, std::memory_order_relaxed);
}

namespace {

void AppendKv(std::string& out, const char* key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f", key, v);
  out += buf;
}

void AppendKv(std::string& out, const char* key, int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%lld", key,
                static_cast<long long>(v));
  out += buf;
}

}  // namespace

std::string ToJson(const ServeMetricsSnapshot& s) {
  std::string j = "{";
  AppendKv(j, "uptime_seconds", s.uptime_seconds);
  j += ",";
  AppendKv(j, "requests_ok", s.requests_ok);
  j += ",";
  AppendKv(j, "requests_failed", s.requests_failed);
  j += ",";
  AppendKv(j, "samples", s.samples);
  j += ",";
  AppendKv(j, "batches", s.batches);
  j += ",";
  AppendKv(j, "qps", s.qps);
  j += ",";
  AppendKv(j, "mean_batch_size", s.mean_batch_size);
  j += ",\"latency_us\":{";
  AppendKv(j, "mean", s.latency_mean_us);
  j += ",";
  AppendKv(j, "p50", s.latency_p50_us);
  j += ",";
  AppendKv(j, "p95", s.latency_p95_us);
  j += ",";
  AppendKv(j, "p99", s.latency_p99_us);
  j += "},\"queue_wait_us\":{";
  AppendKv(j, "mean", s.queue_wait_mean_us);
  j += ",";
  AppendKv(j, "p50", s.queue_wait_p50_us);
  j += ",";
  AppendKv(j, "p95", s.queue_wait_p95_us);
  j += ",";
  AppendKv(j, "p99", s.queue_wait_p99_us);
  j += "},\"batch_size_hist\":{";
  bool first = true;
  for (size_t i = 0; i < s.batch_size_hist.size(); ++i) {
    if (s.batch_size_hist[i] == 0) continue;
    if (!first) j += ",";
    first = false;
    char key[32];
    std::snprintf(key, sizeof(key), "%lld",
                  static_cast<long long>(int64_t{1} << i));
    j += "\"";
    j += key;
    j += "\":";
    char val[32];
    std::snprintf(val, sizeof(val), "%lld",
                  static_cast<long long>(s.batch_size_hist[i]));
    j += val;
  }
  j += "}";
  if (s.has_cache) {
    j += ",\"cache\":{";
    AppendKv(j, "hits", s.cache_hits);
    j += ",";
    AppendKv(j, "misses", s.cache_misses);
    j += ",";
    AppendKv(j, "hit_rate", s.cache_hit_rate);
    j += "}";
  }
  j += "}";
  return j;
}

}  // namespace ttrec::serve
