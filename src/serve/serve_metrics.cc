#include "serve/serve_metrics.h"

#include "obs/json_writer.h"
#include "tensor/cpu_features.h"

namespace ttrec::serve {

ServeMetrics::ServeMetrics()
    : start_(std::chrono::steady_clock::now()),
      ok_(registry_.counter("serve.requests_ok")),
      failed_(registry_.counter("serve.requests_failed")),
      samples_(registry_.counter("serve.samples")),
      batches_(registry_.counter("serve.batches")),
      latency_(registry_.histogram("serve.latency_us")),
      queue_wait_(registry_.histogram("serve.queue_wait_us")) {
  // Which SIMD kernel tier lookups dispatch on (0=scalar, 1=avx2,
  // 2=avx512) — latency telemetry is only comparable within a tier.
  registry_.gauge("kernel.simd_tier")
      .Set(static_cast<double>(static_cast<int>(ActiveSimdTier())));
}

void ServeMetrics::RecordRequestOk(int64_t latency_us, int64_t queue_wait_us) {
  ok_.Add(1);
  latency_.Record(latency_us);
  queue_wait_.Record(queue_wait_us);
}

void ServeMetrics::RecordRequestFailed(int64_t n) { failed_.Add(n); }

void ServeMetrics::RecordBatch(int64_t batch_size) {
  batches_.Add(1);
  samples_.Add(batch_size);
  int bucket = 0;
  for (int64_t s = batch_size; s > 1 && bucket + 1 < kBatchSizeBuckets;
       s >>= 1) {
    ++bucket;
  }
  batch_size_hist_[static_cast<size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

ServeMetricsSnapshot ServeMetrics::Snapshot() const {
  ServeMetricsSnapshot s;
  const auto now = std::chrono::steady_clock::now();
  s.uptime_seconds = std::chrono::duration<double>(now - start_).count();
  s.requests_ok = ok_.Total();
  s.requests_failed = failed_.Total();
  s.samples = samples_.Total();
  s.batches = batches_.Total();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.requests_ok) / s.uptime_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.samples) / static_cast<double>(s.batches)
          : 0.0;
  s.latency_mean_us = latency_.MeanMicros();
  s.latency_p50_us = latency_.PercentileMicros(50.0);
  s.latency_p95_us = latency_.PercentileMicros(95.0);
  s.latency_p99_us = latency_.PercentileMicros(99.0);
  s.queue_wait_mean_us = queue_wait_.MeanMicros();
  s.queue_wait_p50_us = queue_wait_.PercentileMicros(50.0);
  s.queue_wait_p95_us = queue_wait_.PercentileMicros(95.0);
  s.queue_wait_p99_us = queue_wait_.PercentileMicros(99.0);
  s.batch_size_hist.resize(kBatchSizeBuckets);
  for (int i = 0; i < kBatchSizeBuckets; ++i) {
    s.batch_size_hist[static_cast<size_t>(i)] =
        batch_size_hist_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
  }
  return s;
}

void ServeMetrics::Reset() {
  start_ = std::chrono::steady_clock::now();
  registry_.Reset();
  for (auto& c : batch_size_hist_) c.store(0, std::memory_order_relaxed);
}

std::string ToJson(const ServeMetricsSnapshot& s) {
  // Byte-compatible with the pre-obs hand-rolled serializer: same key
  // order, %.3f doubles, zero batch-size buckets skipped, `cache` block
  // only when a cache exists.
  obs::JsonWriter w;
  w.BeginObject();
  w.Kv("uptime_seconds", s.uptime_seconds);
  w.Kv("requests_ok", s.requests_ok);
  w.Kv("requests_failed", s.requests_failed);
  w.Kv("samples", s.samples);
  w.Kv("batches", s.batches);
  w.Kv("qps", s.qps);
  w.Kv("mean_batch_size", s.mean_batch_size);
  w.Key("latency_us").BeginObject();
  w.Kv("mean", s.latency_mean_us);
  w.Kv("p50", s.latency_p50_us);
  w.Kv("p95", s.latency_p95_us);
  w.Kv("p99", s.latency_p99_us);
  w.EndObject();
  w.Key("queue_wait_us").BeginObject();
  w.Kv("mean", s.queue_wait_mean_us);
  w.Kv("p50", s.queue_wait_p50_us);
  w.Kv("p95", s.queue_wait_p95_us);
  w.Kv("p99", s.queue_wait_p99_us);
  w.EndObject();
  w.Key("batch_size_hist").BeginObject();
  for (size_t i = 0; i < s.batch_size_hist.size(); ++i) {
    if (s.batch_size_hist[i] == 0) continue;
    w.Kv(std::to_string(int64_t{1} << i), s.batch_size_hist[i]);
  }
  w.EndObject();
  if (s.has_cache) {
    w.Key("cache").BeginObject();
    w.Kv("hits", s.cache_hits);
    w.Kv("misses", s.cache_misses);
    w.Kv("hit_rate", s.cache_hit_rate);
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

}  // namespace ttrec::serve
