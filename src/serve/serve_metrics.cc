#include "serve/serve_metrics.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "obs/json_writer.h"
#include "tensor/cpu_features.h"

namespace ttrec::serve {

const char* ToString(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
    case HealthState::kDraining:
      return "draining";
  }
  return "unknown";
}

ServeMetrics::ServeMetrics()
    : start_(std::chrono::steady_clock::now()),
      ok_(registry_.counter("serve.requests_ok")),
      failed_(registry_.counter("serve.requests_failed")),
      shed_(registry_.counter("serve.requests_shed")),
      deadline_missed_(registry_.counter("serve.requests_deadline_missed")),
      samples_(registry_.counter("serve.samples")),
      batches_(registry_.counter("serve.batches")),
      latency_(registry_.histogram("serve.latency_us")),
      queue_wait_(registry_.histogram("serve.queue_wait_us")),
      transitions_{&registry_.counter("serve.health.to_healthy"),
                   &registry_.counter("serve.health.to_degraded"),
                   &registry_.counter("serve.health.to_shedding"),
                   &registry_.counter("serve.health.to_draining")},
      health_state_(registry_.gauge("serve.health_state")),
      model_generation_(registry_.gauge("serve.model_generation")),
      swaps_ok_(registry_.counter("serve.swaps_ok")),
      swaps_rejected_(registry_.counter("serve.swaps_rejected")) {
  // Which SIMD kernel tier lookups dispatch on (0=scalar, 1=avx2,
  // 2=avx512) — latency telemetry is only comparable within a tier.
  registry_.gauge("kernel.simd_tier")
      .Set(static_cast<double>(static_cast<int>(ActiveSimdTier())));
  model_generation_.Set(1.0);
}

void ServeMetrics::RecordRequestOk(int64_t latency_us, int64_t queue_wait_us) {
  ok_.Add(1);
  latency_.Record(latency_us);
  queue_wait_.Record(queue_wait_us);
  window_latency_.Record(latency_us);
}

void ServeMetrics::RecordRequestFailed(int64_t n) { failed_.Add(n); }

void ServeMetrics::RecordShed(int64_t n) { shed_.Add(n); }

void ServeMetrics::RecordDeadlineMissed(int64_t n) {
  deadline_missed_.Add(n);
}

void ServeMetrics::RecordBatch(int64_t batch_size) {
  batches_.Add(1);
  samples_.Add(batch_size);
  int bucket = 0;
  for (int64_t s = batch_size; s > 1 && bucket + 1 < kBatchSizeBuckets;
       s >>= 1) {
    ++bucket;
  }
  batch_size_hist_[static_cast<size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServeMetrics::RecordHealthTransition(HealthState to) {
  transitions_[static_cast<size_t>(to)]->Add(1);
  health_state_.Set(static_cast<double>(static_cast<int>(to)));
}

void ServeMetrics::RecordSwapOk(uint64_t new_generation) {
  swaps_ok_.Add(1);
  model_generation_.Set(static_cast<double>(new_generation));
  std::lock_guard<std::mutex> lock(gen_mu_);
  if (gen_retention_ > 0 &&
      new_generation >= static_cast<uint64_t>(gen_retention_)) {
    // Keep the newest `gen_retention_` generations: prune every block at
    // least that far behind the generation just published. Consumers still
    // holding a pruned block's shared_ptr record into it harmlessly; it
    // just stops appearing in snapshots.
    const uint64_t oldest_kept =
        new_generation - static_cast<uint64_t>(gen_retention_) + 1;
    gen_blocks_.erase(gen_blocks_.begin(),
                      gen_blocks_.lower_bound(oldest_kept));
  }
}

void ServeMetrics::RecordSwapRejected() { swaps_rejected_.Add(1); }

std::shared_ptr<ServeMetrics::GenerationBlock> ServeMetrics::Generation(
    uint64_t generation) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  std::shared_ptr<GenerationBlock>& block = gen_blocks_[generation];
  if (block == nullptr) block = std::make_shared<GenerationBlock>();
  return block;
}

void ServeMetrics::SetGenerationRetention(int64_t keep) {
  std::lock_guard<std::mutex> lock(gen_mu_);
  gen_retention_ = keep;
}

ServeMetrics::ShardMetrics ServeMetrics::Shard(int shard) {
  const std::string prefix = "serve.shard." + std::to_string(shard);
  return ShardMetrics{registry_.counter(prefix + ".queries"),
                      registry_.counter(prefix + ".lookups"),
                      registry_.histogram(prefix + ".latency_us"),
                      registry_.counter(prefix + ".swaps_prepared")};
}

double ServeMetrics::WindowLatencyP95AndReset() {
  const double p95 =
      window_latency_.TotalCount() > 0 ? window_latency_.PercentileMicros(95.0)
                                       : 0.0;
  window_latency_.Reset();
  return p95;
}

namespace {

/// Parses "serve.shard.<s>.<leaf>" into (s, leaf); false for other names.
bool ParseShardMetric(std::string_view name, int* shard,
                      std::string_view* leaf) {
  constexpr std::string_view kPrefix = "serve.shard.";
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  name.remove_prefix(kPrefix.size());
  const size_t dot = name.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  *shard = static_cast<int>(
      std::strtol(std::string(name.substr(0, dot)).c_str(), nullptr, 10));
  *leaf = name.substr(dot + 1);
  return true;
}

ShardSnapshot& ShardEntry(std::vector<ShardSnapshot>& shards, int shard) {
  for (ShardSnapshot& s : shards) {
    if (s.shard == shard) return s;
  }
  shards.push_back(ShardSnapshot{});
  shards.back().shard = shard;
  return shards.back();
}

}  // namespace

ServeMetricsSnapshot ServeMetrics::Snapshot() const {
  ServeMetricsSnapshot s;
  const auto now = std::chrono::steady_clock::now();
  s.uptime_seconds = std::chrono::duration<double>(now - start_).count();
  s.requests_ok = ok_.Total();
  s.requests_failed = failed_.Total();
  s.requests_shed = shed_.Total();
  s.requests_deadline_missed = deadline_missed_.Total();
  s.samples = samples_.Total();
  s.batches = batches_.Total();
  s.qps = s.uptime_seconds > 0.0
              ? static_cast<double>(s.requests_ok) / s.uptime_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.samples) / static_cast<double>(s.batches)
          : 0.0;
  s.latency_mean_us = latency_.MeanMicros();
  s.latency_p50_us = latency_.PercentileMicros(50.0);
  s.latency_p95_us = latency_.PercentileMicros(95.0);
  s.latency_p99_us = latency_.PercentileMicros(99.0);
  s.queue_wait_mean_us = queue_wait_.MeanMicros();
  s.queue_wait_p50_us = queue_wait_.PercentileMicros(50.0);
  s.queue_wait_p95_us = queue_wait_.PercentileMicros(95.0);
  s.queue_wait_p99_us = queue_wait_.PercentileMicros(99.0);
  s.batch_size_hist.resize(kBatchSizeBuckets);
  for (int i = 0; i < kBatchSizeBuckets; ++i) {
    s.batch_size_hist[static_cast<size_t>(i)] =
        batch_size_hist_[static_cast<size_t>(i)].load(
            std::memory_order_relaxed);
  }
  s.health = static_cast<HealthState>(
      static_cast<int>(health_state_.Value()));
  for (size_t i = 0; i < transitions_.size(); ++i) {
    s.health_transitions[i] = transitions_[i]->Total();
  }
  s.model_generation = static_cast<uint64_t>(model_generation_.Value());
  s.swaps_ok = swaps_ok_.Total();
  s.swaps_rejected = swaps_rejected_.Total();

  // Per-generation blocks: copy the shared_ptrs under the lock, read the
  // lock-free metrics outside it. The map is ordered, so the snapshot is
  // ascending by generation without a sort.
  std::vector<std::pair<uint64_t, std::shared_ptr<GenerationBlock>>> blocks;
  {
    std::lock_guard<std::mutex> lock(gen_mu_);
    blocks.assign(gen_blocks_.begin(), gen_blocks_.end());
  }
  s.generations.reserve(blocks.size());
  for (const auto& [gen, block] : blocks) {
    GenerationSnapshot g;
    g.generation = gen;
    g.requests_ok = block->ok.Total();
    g.latency_p95_us = block->latency.TotalCount() > 0
                           ? block->latency.PercentileMicros(95.0)
                           : 0.0;
    s.generations.push_back(g);
  }

  // Per-shard metrics are registry-named (shards are never pruned); one
  // registry snapshot yields all of them.
  const obs::MetricsSnapshot reg = registry_.Snapshot();
  int shard = 0;
  std::string_view leaf;
  for (const auto& [name, total] : reg.counters) {
    if (!ParseShardMetric(name, &shard, &leaf)) continue;
    if (leaf == "queries") {
      ShardEntry(s.shards, shard).queries = total;
    } else if (leaf == "lookups") {
      ShardEntry(s.shards, shard).lookups = total;
    } else if (leaf == "swaps_prepared") {
      ShardEntry(s.shards, shard).swaps_prepared = total;
    }
  }
  for (const auto& [name, hist] : reg.histograms) {
    if (ParseShardMetric(name, &shard, &leaf) && leaf == "latency_us") {
      ShardEntry(s.shards, shard).latency_p95_us = hist.p95;
    }
  }
  std::sort(s.shards.begin(), s.shards.end(),
            [](const ShardSnapshot& a, const ShardSnapshot& b) {
              return a.shard < b.shard;
            });
  return s;
}

void ServeMetrics::Reset() {
  start_ = std::chrono::steady_clock::now();
  registry_.Reset();
  window_latency_.Reset();
  model_generation_.Set(1.0);
  for (auto& c : batch_size_hist_) c.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(gen_mu_);
  gen_blocks_.clear();
}

std::string ToJson(const ServeMetricsSnapshot& s) {
  // Pre-overload-safety keys keep their order and formats (%.3f doubles,
  // zero batch-size buckets skipped, `cache` block only when a cache
  // exists); the health/swap additions are appended before `cache`.
  obs::JsonWriter w;
  w.BeginObject();
  w.Kv("uptime_seconds", s.uptime_seconds);
  w.Kv("requests_ok", s.requests_ok);
  w.Kv("requests_failed", s.requests_failed);
  w.Kv("requests_shed", s.requests_shed);
  w.Kv("requests_deadline_missed", s.requests_deadline_missed);
  w.Kv("samples", s.samples);
  w.Kv("batches", s.batches);
  w.Kv("qps", s.qps);
  w.Kv("mean_batch_size", s.mean_batch_size);
  w.Key("latency_us").BeginObject();
  w.Kv("mean", s.latency_mean_us);
  w.Kv("p50", s.latency_p50_us);
  w.Kv("p95", s.latency_p95_us);
  w.Kv("p99", s.latency_p99_us);
  w.EndObject();
  w.Key("queue_wait_us").BeginObject();
  w.Kv("mean", s.queue_wait_mean_us);
  w.Kv("p50", s.queue_wait_p50_us);
  w.Kv("p95", s.queue_wait_p95_us);
  w.Kv("p99", s.queue_wait_p99_us);
  w.EndObject();
  w.Key("batch_size_hist").BeginObject();
  for (size_t i = 0; i < s.batch_size_hist.size(); ++i) {
    if (s.batch_size_hist[i] == 0) continue;
    w.Kv(std::to_string(int64_t{1} << i), s.batch_size_hist[i]);
  }
  w.EndObject();
  w.Key("health").BeginObject();
  w.Kv("state", ToString(s.health));
  w.Key("transitions").BeginObject();
  for (int i = 0; i < 4; ++i) {
    w.Kv(ToString(static_cast<HealthState>(i)),
         s.health_transitions[static_cast<size_t>(i)]);
  }
  w.EndObject();
  w.EndObject();
  w.Kv("queue_depth_high_water", s.queue_depth_high_water);
  w.Key("model").BeginObject();
  w.Kv("generation", s.model_generation);
  w.Kv("swaps_ok", s.swaps_ok);
  w.Kv("swaps_rejected", s.swaps_rejected);
  w.EndObject();
  w.Key("generations").BeginObject();
  for (const GenerationSnapshot& g : s.generations) {
    w.Key(std::to_string(g.generation)).BeginObject();
    w.Kv("requests_ok", g.requests_ok);
    w.Kv("latency_p95_us", g.latency_p95_us);
    w.EndObject();
  }
  w.EndObject();
  if (s.num_shards > 0) {
    w.Key("sharding").BeginObject();
    w.Kv("num_shards", static_cast<int64_t>(s.num_shards));
    w.Kv("partition", s.partition);
    w.Key("shards").BeginObject();
    for (const ShardSnapshot& sh : s.shards) {
      w.Key(std::to_string(sh.shard)).BeginObject();
      w.Kv("queries", sh.queries);
      w.Kv("lookups", sh.lookups);
      w.Kv("latency_p95_us", sh.latency_p95_us);
      w.Kv("swaps_prepared", sh.swaps_prepared);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  if (s.has_cache) {
    w.Key("cache").BeginObject();
    w.Kv("hits", s.cache_hits);
    w.Kv("misses", s.cache_misses);
    w.Kv("hit_rate", s.cache_hit_rate);
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

}  // namespace ttrec::serve
