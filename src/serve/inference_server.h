// The serving front door: Submit() a request, get a std::future for its
// logits. Internally: bounded RequestQueue -> MicroBatcher -> per-consumer
// InferenceSession running the const forward pass, with ServeMetrics
// recording batch sizes, queue waits, and end-to-end latency.
//
//   producers ──Submit──▶ RequestQueue ──PopBatch──▶ consumer threads
//                                                    │  MicroBatcher
//                                                    │  InferenceSession
//                                                    ▼
//                                        promises fulfilled, ServeMetrics
//
// Thread-safety: Submit may be called from any number of threads. The model
// must stay frozen (no training / checkpoint loads / table swaps) for the
// server's lifetime — the const forward contract in dlrm/model.h.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dlrm/model.h"
#include "obs/reporter.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_metrics.h"

namespace ttrec::serve {

struct InferenceServerConfig {
  /// Micro-batch cap in requests: a consumer closes its batch as soon as
  /// it has gathered this many (equals samples for the common
  /// one-sample-per-request client). 1 disables batching — the
  /// one-request-at-a-time baseline in bench/serve_throughput.
  int64_t max_batch_size = 32;
  /// How long a consumer holds an under-full batch open waiting for
  /// stragglers. Larger values raise batch sizes (and throughput) at the
  /// cost of per-request latency.
  std::chrono::microseconds max_wait{200};
  /// Queue bound; producers block when serving falls behind (backpressure
  /// instead of unbounded memory growth).
  size_t queue_capacity = 1024;
  /// Consumer threads, each with its own InferenceSession. One is usually
  /// right when the forward pass itself shards across the ThreadPool; more
  /// helps when batches are small and per-batch overhead dominates.
  int num_consumers = 1;
  /// When non-empty and report_interval > 0, a PeriodicReporter appends one
  /// MetricsJson() line per interval to this file for the server's
  /// lifetime (plus a final line at shutdown).
  std::string report_path;
  std::chrono::milliseconds report_interval{0};
};

class InferenceServer {
 public:
  /// The server holds a reference: `model` must outlive it and stay frozen.
  InferenceServer(const DlrmModel& model, InferenceServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Validates and enqueues `request`; the future resolves with its logits
  /// once a consumer has run its micro-batch. A malformed request (shape
  /// mismatch, or out-of-range index under IndexPolicy::kThrow) fails only
  /// its own future, at Submit time, and never poisons a micro-batch.
  /// Blocks while the queue is full; fails fast after Shutdown.
  std::future<InferenceResult> Submit(InferenceRequest request);

  /// Closes the queue, drains in-flight work, joins consumers. Idempotent;
  /// the destructor calls it.
  void Shutdown();

  const ServeMetrics& metrics() const { return metrics_; }

  /// Snapshot + cache hit stats from the model's cached-TT tables (summed
  /// across tables; absent when no table carries an LFU cache).
  ServeMetricsSnapshot SnapshotWithCacheStats() const;
  std::string MetricsJson() const;

  const InferenceServerConfig& config() const { return config_; }
  size_t queue_depth() const { return queue_.size(); }

 private:
  void ConsumerLoop();
  void ValidateRequest(const InferenceRequest& request) const;

  const DlrmModel& model_;
  InferenceServerConfig config_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  ServeMetrics metrics_;
  std::vector<std::thread> consumers_;
  std::unique_ptr<obs::PeriodicReporter> reporter_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace ttrec::serve
