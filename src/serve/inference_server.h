// The serving front door: Submit() a request, get a std::future for its
// logits. Internally: bounded RequestQueue -> MicroBatcher -> per-consumer
// InferenceSession running the const forward pass, with ServeMetrics
// recording batch sizes, queue waits, and end-to-end latency.
//
//   producers ──Submit──▶ RequestQueue ──PopBatch──▶ consumer threads
//        ▲                     ▲                     │  MicroBatcher
//        │ typed rejections    │ LoadGovernor        │  InferenceSession
//        │ (shed/deadline/     │ (healthy→degraded   │  (pins one model
//        │  shutdown)          │  →shedding)         │   generation)
//                                                    ▼
//                                        promises fulfilled, ServeMetrics
//
// Overload safety: requests carry deadlines (expired work is failed with
// DeadlineExceeded before the forward pass, at admission or by the
// consumer), admission is bounded (block / block-with-timeout / reject-
// immediately), and a LoadGovernor walks the server through
// healthy → degraded → shedding → draining as queue depth and windowed p95
// latency move (serve/load_governor.h).
//
// Model lifecycle: the server holds a generation-tagged
// shared_ptr<const DlrmModel>. SwapModel publishes a new generation under
// live traffic — consumers pin the generation for the lifetime of one
// micro-batch, so no request ever sees a torn mix of models, and the old
// generation is freed once the last consumer moves on. Checkpoint swaps
// load into a standby model first; a corrupt or mismatched checkpoint is
// rejected while the incumbent generation keeps serving.
//
// Thread-safety: Submit and SwapModel may be called from any number of
// threads. The model behind any published shared_ptr must stay frozen (no
// training / checkpoint loads / table swaps) — the const forward contract
// in dlrm/model.h; replacing the model is done by publishing a *new*
// DlrmModel via SwapModel, never by mutating a live one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dlrm/model.h"
#include "obs/reporter.h"
#include "serve/load_governor.h"
#include "serve/micro_batcher.h"
#include "serve/request_queue.h"
#include "serve/serve_errors.h"
#include "serve/serve_metrics.h"
#include "shard/embedding_shard.h"
#include "shard/shard_plan.h"
#include "shard/shard_router.h"

namespace ttrec::serve {

/// What Submit does when the queue is full.
enum class AdmissionPolicy {
  /// Block until space (bounded by the request's own deadline, if any) —
  /// classic backpressure, the historical behavior.
  kBlock,
  /// Block up to admission_timeout, then fail with ServerOverloaded.
  kBlockWithTimeout,
  /// Fail with ServerOverloaded immediately — the client owns the retry.
  kRejectWhenFull,
};

struct InferenceServerConfig {
  /// Micro-batch cap in requests: a consumer closes its batch as soon as
  /// it has gathered this many (equals samples for the common
  /// one-sample-per-request client). 1 disables batching — the
  /// one-request-at-a-time baseline in bench/serve_throughput. In the
  /// degraded health state the effective cap shrinks (see governor).
  int64_t max_batch_size = 32;
  /// How long a consumer holds an under-full batch open waiting for
  /// stragglers. Larger values raise batch sizes (and throughput) at the
  /// cost of per-request latency. Shrunk while degraded.
  std::chrono::microseconds max_wait{200};
  /// Queue bound; what happens when it fills is `admission`'s call.
  size_t queue_capacity = 1024;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Wait budget under kBlockWithTimeout (a request's earlier deadline
  /// still wins).
  std::chrono::microseconds admission_timeout{5000};
  /// Consumer threads, each with its own InferenceSession. One is usually
  /// right when the forward pass itself shards across the ThreadPool; more
  /// helps when batches are small and per-batch overhead dominates.
  int num_consumers = 1;
  /// Health-state machine knobs; governor.enabled = false pins kHealthy.
  LoadGovernorConfig governor;
  /// Builds an architecture-matched empty model for SwapModel(path) to
  /// load a checkpoint into. Unset: checkpoint swaps are rejected.
  std::function<std::unique_ptr<DlrmModel>()> model_factory;
  /// When non-empty and report_interval > 0, a PeriodicReporter appends one
  /// MetricsJson() line per interval to this file for the server's
  /// lifetime (plus a final line at shutdown).
  std::string report_path;
  std::chrono::milliseconds report_interval{0};
  /// Embedding shards per consumer's router. 0 (default) serves the
  /// classic single-process path; >= 1 partitions the tables per
  /// `partition` and fans each micro-batch's lookups out over the shards
  /// (bitwise identical logits — see shard/shard_router.h).
  int num_shards = 0;
  shard::PartitionStrategy partition = shard::PartitionStrategy::kRowRange;
  /// Per-generation metric blocks kept behind the newest swap; 0 keeps
  /// every generation forever (the pre-pruning behavior — canary analysis
  /// that partitions requests_ok across all generations needs this).
  int64_t keep_generation_metrics = 0;
};

class InferenceServer {
 public:
  /// The server shares ownership: the model lives at least until the last
  /// micro-batch pinned to its generation completes. It starts as
  /// generation 1.
  InferenceServer(std::shared_ptr<const DlrmModel> model,
                  InferenceServerConfig config);
  /// Non-owning convenience for callers with a stack- or member-owned
  /// model: `model` must outlive the server AND every generation swap
  /// (the server cannot extend its lifetime).
  InferenceServer(const DlrmModel& model, InferenceServerConfig config);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Validates and enqueues `request`; the future resolves with its logits
  /// once a consumer has run its micro-batch. Failures are always
  /// delivered through the future, typed (serve/serve_errors.h):
  /// ShapeError/IndexError for malformed requests (which fail alone and
  /// never poison a micro-batch), DeadlineExceeded when request.deadline
  /// passes before the forward pass, ServerOverloaded when shedding or
  /// when admission times out, ServerShutdown after BeginDrain/Shutdown.
  std::future<InferenceResult> Submit(InferenceRequest request);

  /// Atomically publishes `next` as the new serving generation under live
  /// traffic; in-flight micro-batches finish on the generation they
  /// pinned. Returns the new generation. Throws ConfigError (and counts a
  /// rejected swap) when `next` is architecturally incompatible with the
  /// incumbent — the old generation keeps serving.
  uint64_t SwapModel(std::shared_ptr<const DlrmModel> next);

  /// Loads `checkpoint_path` into a standby model built by
  /// config.model_factory, then publishes it. Verification-first: a
  /// corrupt, truncated, or mismatched checkpoint throws (counted as a
  /// rejected swap) before anything is published — the incumbent
  /// generation is never disturbed.
  uint64_t SwapModel(const std::string& checkpoint_path);

  /// Generation currently being published to new micro-batches.
  uint64_t generation() const;

  /// Stops admission for good (Submit fails with ServerShutdown) while
  /// consumers finish everything already queued — the graceful half of
  /// shutdown, usable long before Shutdown() joins the threads.
  void BeginDrain();

  /// BeginDrain + closes the queue, drains in-flight work, joins
  /// consumers. Idempotent; the destructor calls it.
  void Shutdown();

  HealthState health() const { return governor_->state(); }

  const ServeMetrics& metrics() const { return metrics_; }

  /// Snapshot + queue high-water + cache hit stats from the model's
  /// cached-TT tables (summed across tables; absent when no table carries
  /// an LFU cache).
  ServeMetricsSnapshot SnapshotWithCacheStats() const;
  std::string MetricsJson() const;

  const InferenceServerConfig& config() const { return config_; }
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_high_water() const { return queue_.high_water(); }

  /// The partition plan a sharded server routes by (fixed for the server's
  /// lifetime — swaps revalidate against it); nullptr when unsharded.
  std::shared_ptr<const shard::ShardPlan> shard_plan() const;

 private:
  /// One published model: consumers pin a slot per micro-batch, so a swap
  /// frees the old model only after its last batch completes. On a sharded
  /// server the slot also carries the full shard fleet for its generation —
  /// built ("prepared") before the slot publishes ("commits"), so no
  /// micro-batch ever runs on a torn mixed-generation fleet.
  struct ModelSlot {
    std::shared_ptr<const DlrmModel> model;
    uint64_t generation = 1;
    std::shared_ptr<const shard::ShardPlan> plan;  // null when unsharded
    std::vector<std::shared_ptr<const shard::EmbeddingShard>> shards;
  };

  std::shared_ptr<const ModelSlot> CurrentSlot() const;
  void ConsumerLoop();
  void ValidateRequest(const InferenceRequest& request,
                       const DlrmModel& model) const;
  void ValidateSwapCompatible(const DlrmModel& incumbent,
                              const DlrmModel& next) const;
  void OnHealthTransition(HealthState from, HealthState to);
  void StartServing();

  InferenceServerConfig config_;
  mutable std::mutex model_mu_;          // guards slot_ publication
  std::shared_ptr<const ModelSlot> slot_;
  RequestQueue queue_;
  MicroBatcher batcher_;
  ServeMetrics metrics_;
  /// Batching knobs consumers actually use; the governor rewrites them on
  /// health transitions.
  std::atomic<int64_t> effective_max_batch_;
  std::atomic<int64_t> effective_max_wait_us_;
  std::unique_ptr<LoadGovernor> governor_;
  /// serve.shard.<s>.* hooks handed to every consumer's router (stable
  /// registry references; one entry per shard, empty when unsharded).
  std::vector<shard::ShardTelemetry> shard_telemetry_;
  std::vector<std::thread> consumers_;
  std::unique_ptr<obs::PeriodicReporter> reporter_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace ttrec::serve
