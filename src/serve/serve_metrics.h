// Latency / throughput telemetry for the serving subsystem.
//
// Since the unified observability layer landed, this is a thin facade over
// ttrec::obs: the striped counters and geometric histograms that used to
// live here are now obs::StripedCounter / obs::Histogram (bit-identical
// bucket bounds, so percentiles are unchanged), and ServeMetrics records
// into a private obs::MetricRegistry. The snapshot struct and ToJson()
// output are byte-compatible with the pre-migration format — `ttrec_serve`
// and `bench/serve_throughput` consumers parse the same keys.
//
// Hot-path properties are inherited from obs: Record* methods are
// lock-free, and Snapshot()/ToJson() read without stopping the world, so a
// snapshot taken under load is approximate at the margin of in-flight
// increments.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ttrec::serve {

/// Historical names, now provided by the shared observability layer.
using StripedCounter = obs::StripedCounter;
using LatencyHistogram = obs::Histogram;

/// A point-in-time read of ServeMetrics, plus the cache stats the server
/// fills in from the model's cached-TT tables (has_cache == false when the
/// model serves without an LFU cache).
struct ServeMetricsSnapshot {
  double uptime_seconds = 0.0;
  int64_t requests_ok = 0;
  int64_t requests_failed = 0;
  int64_t samples = 0;
  int64_t batches = 0;
  double qps = 0.0;              // completed requests / uptime
  double mean_batch_size = 0.0;  // samples / batches

  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  double queue_wait_mean_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double queue_wait_p99_us = 0.0;

  /// batch_size_hist[i] = batches whose size fell in [2^i, 2^(i+1)).
  std::vector<int64_t> batch_size_hist;

  bool has_cache = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
};

/// Serializes a snapshot as a single JSON object (stable key order, no
/// external dependency).
std::string ToJson(const ServeMetricsSnapshot& s);

/// The server-side metrics hub. All Record* methods are thread-safe and
/// lock-free; Snapshot() may run concurrently with recording.
class ServeMetrics {
 public:
  ServeMetrics();

  /// A request completed: end-to-end latency (Submit -> result set) and the
  /// time it spent queued before its micro-batch started executing.
  void RecordRequestOk(int64_t latency_us, int64_t queue_wait_us);
  void RecordRequestFailed(int64_t n = 1);
  /// A micro-batch of `batch_size` samples began executing.
  void RecordBatch(int64_t batch_size);

  ServeMetricsSnapshot Snapshot() const;
  void Reset();

  /// The backing registry, for callers that want the raw named metrics
  /// (e.g. a PeriodicReporter producer). Names: serve.requests_ok,
  /// serve.requests_failed, serve.samples, serve.batches,
  /// serve.latency_us, serve.queue_wait_us.
  const obs::MetricRegistry& registry() const { return registry_; }

 private:
  static constexpr int kBatchSizeBuckets = 16;  // up to 2^16-sample batches

  obs::MetricRegistry registry_;  // must precede the references below
  std::chrono::steady_clock::time_point start_;
  obs::StripedCounter& ok_;
  obs::StripedCounter& failed_;
  obs::StripedCounter& samples_;
  obs::StripedCounter& batches_;
  obs::Histogram& latency_;
  obs::Histogram& queue_wait_;
  // Linear power-of-two batch-size buckets; a geometric obs::Histogram
  // would blur the exact power-of-two keys ToJson() reports.
  std::array<std::atomic<int64_t>, kBatchSizeBuckets> batch_size_hist_{};
};

}  // namespace ttrec::serve
