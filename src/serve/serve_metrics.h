// Latency / throughput telemetry for the serving subsystem.
//
// Everything on the hot path (per-request and per-batch recording) is
// lock-free: counters are striped across cache-line-padded atomic cells to
// keep producer threads from bouncing one line, and histograms are fixed
// geometric-bucket atomic arrays. Readers (Snapshot / ToJson) sum without
// stopping the world, so a snapshot taken under load is approximate at the
// margin of in-flight increments — fine for telemetry, documented here so
// nobody asserts exact equality against a live server.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ttrec::serve {

/// Contention-resistant counter: each increment lands on one of kStripes
/// cache-line-padded cells chosen by thread identity; Total() sums all
/// cells. Relaxed ordering throughout — counts, not synchronization.
class StripedCounter {
 public:
  void Add(int64_t n);
  int64_t Total() const;
  void Reset();

 private:
  static constexpr int kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };
  std::array<Cell, kStripes> cells_;
};

/// Fixed geometric-bucket histogram over microsecond values. Record() is a
/// single relaxed fetch_add; PercentileMicros interpolates linearly inside
/// the winning bucket, so p50/p95/p99 carry ~25% bucket-width resolution —
/// the right trade for a hot path that must never take a lock.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(int64_t micros);
  int64_t TotalCount() const;
  /// p in (0, 100]. Returns 0 when the histogram is empty.
  double PercentileMicros(double p) const;
  double MeanMicros() const;
  void Reset();

 private:
  // Bucket i covers [bounds_[i], bounds_[i+1]) µs; bounds grow by ~1.25x
  // per bucket, so 96 buckets reach past half an hour.
  static constexpr int kBuckets = 96;
  int BucketFor(int64_t micros) const;

  std::array<int64_t, kBuckets + 1> bounds_;
  std::array<std::atomic<int64_t>, kBuckets> counts_{};
  std::atomic<int64_t> sum_micros_{0};
};

/// A point-in-time read of ServeMetrics, plus the cache stats the server
/// fills in from the model's cached-TT tables (has_cache == false when the
/// model serves without an LFU cache).
struct ServeMetricsSnapshot {
  double uptime_seconds = 0.0;
  int64_t requests_ok = 0;
  int64_t requests_failed = 0;
  int64_t samples = 0;
  int64_t batches = 0;
  double qps = 0.0;              // completed requests / uptime
  double mean_batch_size = 0.0;  // samples / batches

  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  double queue_wait_mean_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double queue_wait_p99_us = 0.0;

  /// batch_size_hist[i] = batches whose size fell in [2^i, 2^(i+1)).
  std::vector<int64_t> batch_size_hist;

  bool has_cache = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
};

/// Serializes a snapshot as a single JSON object (stable key order, no
/// external dependency).
std::string ToJson(const ServeMetricsSnapshot& s);

/// The server-side metrics hub. All Record* methods are thread-safe and
/// lock-free; Snapshot() may run concurrently with recording.
class ServeMetrics {
 public:
  ServeMetrics();

  /// A request completed: end-to-end latency (Submit -> result set) and the
  /// time it spent queued before its micro-batch started executing.
  void RecordRequestOk(int64_t latency_us, int64_t queue_wait_us);
  void RecordRequestFailed(int64_t n = 1);
  /// A micro-batch of `batch_size` samples began executing.
  void RecordBatch(int64_t batch_size);

  ServeMetricsSnapshot Snapshot() const;
  void Reset();

 private:
  static constexpr int kBatchSizeBuckets = 16;  // up to 2^16-sample batches

  std::chrono::steady_clock::time_point start_;
  StripedCounter ok_;
  StripedCounter failed_;
  StripedCounter samples_;
  StripedCounter batches_;
  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
  std::array<std::atomic<int64_t>, kBatchSizeBuckets> batch_size_hist_{};
};

}  // namespace ttrec::serve
