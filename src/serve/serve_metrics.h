// Latency / throughput telemetry for the serving subsystem.
//
// Since the unified observability layer landed, this is a thin facade over
// ttrec::obs: the striped counters and geometric histograms that used to
// live here are now obs::StripedCounter / obs::Histogram (bit-identical
// bucket bounds, so percentiles are unchanged), and ServeMetrics records
// into a private obs::MetricRegistry. The snapshot struct and ToJson()
// output keep the pre-migration keys in the same order — `ttrec_serve`
// and `bench/serve_throughput` consumers parse the same fields — with the
// overload-safety additions (shed/deadline counters, health state and
// transition counts, queue high-water, per-generation blocks) appended.
//
// Hot-path properties are inherited from obs: Record* methods are
// lock-free, and Snapshot()/ToJson() read without stopping the world, so a
// snapshot taken under load is approximate at the margin of in-flight
// increments.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ttrec::serve {

/// Historical names, now provided by the shared observability layer.
using StripedCounter = obs::StripedCounter;
using LatencyHistogram = obs::Histogram;

/// The server's overload posture, walked by the load governor (and forced
/// to kDraining by BeginDrain/Shutdown). Ordered by severity.
enum class HealthState {
  kHealthy = 0,   // nominal: configured batching knobs
  kDegraded = 1,  // latency-first: shrunken max_wait, capped micro-batches
  kShedding = 2,  // admission rejects with ServerOverloaded + retry-after
  kDraining = 3,  // admission closed for good; in-flight work finishes
};

const char* ToString(HealthState s);

/// Per-model-generation slice of the snapshot — the canary-vs-incumbent
/// comparison a hot-swap rollout watches.
struct GenerationSnapshot {
  uint64_t generation = 0;
  int64_t requests_ok = 0;
  double latency_p95_us = 0.0;
};

/// Per-shard slice of the snapshot (sharded servers only): how much work
/// the router sent shard `shard` and how long its partial lookups took.
struct ShardSnapshot {
  int shard = 0;
  int64_t queries = 0;   // partial-lookup calls
  int64_t lookups = 0;   // embedding lookups routed here
  double latency_p95_us = 0.0;
  int64_t swaps_prepared = 0;  // standby shards built for a two-phase swap
};

/// A point-in-time read of ServeMetrics, plus the cache stats the server
/// fills in from the model's cached-TT tables (has_cache == false when the
/// model serves without an LFU cache).
struct ServeMetricsSnapshot {
  double uptime_seconds = 0.0;
  int64_t requests_ok = 0;
  int64_t requests_failed = 0;
  /// Typed-rejection counts, disjoint from requests_failed: shed at
  /// admission (ServerOverloaded) and expired before the forward pass
  /// (DeadlineExceeded).
  int64_t requests_shed = 0;
  int64_t requests_deadline_missed = 0;
  int64_t samples = 0;
  int64_t batches = 0;
  double qps = 0.0;              // completed requests / uptime
  double mean_batch_size = 0.0;  // samples / batches

  double latency_mean_us = 0.0;
  double latency_p50_us = 0.0;
  double latency_p95_us = 0.0;
  double latency_p99_us = 0.0;

  double queue_wait_mean_us = 0.0;
  double queue_wait_p50_us = 0.0;
  double queue_wait_p95_us = 0.0;
  double queue_wait_p99_us = 0.0;

  /// batch_size_hist[i] = batches whose size fell in [2^i, 2^(i+1)).
  std::vector<int64_t> batch_size_hist;

  HealthState health = HealthState::kHealthy;
  /// health_transitions[s] = times the server entered state s.
  std::array<int64_t, 4> health_transitions{};
  /// Filled by InferenceServer from RequestQueue::high_water().
  int64_t queue_depth_high_water = 0;

  uint64_t model_generation = 0;  // currently serving generation
  int64_t swaps_ok = 0;
  int64_t swaps_rejected = 0;
  /// Ascending by generation; empty until the first request completes.
  /// Retired generations disappear once pruned (SetGenerationRetention).
  std::vector<GenerationSnapshot> generations;

  /// Sharding topology, filled by the server (0 = unsharded; the JSON
  /// `sharding` block is emitted only when num_shards > 0, so unsharded
  /// output is byte-identical to the pre-sharding format).
  int num_shards = 0;
  std::string partition;
  /// Ascending by shard id; empty on unsharded servers.
  std::vector<ShardSnapshot> shards;

  bool has_cache = false;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
};

/// Serializes a snapshot as a single JSON object (stable key order, no
/// external dependency).
std::string ToJson(const ServeMetricsSnapshot& s);

/// The server-side metrics hub. All Record* methods are thread-safe and
/// lock-free; Snapshot() may run concurrently with recording.
class ServeMetrics {
 public:
  /// One model generation's metrics. Lives OUTSIDE the registry (which has
  /// no removal API) so retired generations can be pruned; consumers hold
  /// the shared_ptr for the generation they serve, so a block they still
  /// record into survives its own pruning and simply stops being reported.
  struct GenerationBlock {
    obs::StripedCounter ok;
    obs::Histogram latency;
  };

  /// Stable registry references for one shard's serve.shard.<s>.* metrics —
  /// looked up once at server construction (shard count never changes) and
  /// recorded through lock-free thereafter.
  struct ShardMetrics {
    obs::StripedCounter& queries;
    obs::StripedCounter& lookups;
    obs::Histogram& latency_us;
    obs::StripedCounter& swaps_prepared;
  };

  ServeMetrics();

  /// A request completed: end-to-end latency (Submit -> result set) and the
  /// time it spent queued before its micro-batch started executing.
  void RecordRequestOk(int64_t latency_us, int64_t queue_wait_us);
  void RecordRequestFailed(int64_t n = 1);
  /// Load shedding rejected a request at admission (ServerOverloaded).
  void RecordShed(int64_t n = 1);
  /// A request's deadline expired before its forward pass ran.
  void RecordDeadlineMissed(int64_t n = 1);
  /// A micro-batch of `batch_size` samples began executing.
  void RecordBatch(int64_t batch_size);

  /// The server entered `to`: bumps the per-state transition counter and
  /// the serve.health_state gauge.
  void RecordHealthTransition(HealthState to);
  /// SwapModel verdicts; on success `new_generation` becomes the gauge
  /// value reported as model_generation.
  void RecordSwapOk(uint64_t new_generation);
  void RecordSwapRejected();

  /// Creates (first use) and returns generation `generation`'s block.
  /// Consumers cache the returned pointer per generation change (a mutex
  /// here) and record lock-free for the batches that follow.
  std::shared_ptr<GenerationBlock> Generation(uint64_t generation);

  /// Keep per-generation blocks for at most `keep` generations behind the
  /// newest successful swap; older blocks are pruned by RecordSwapOk so a
  /// long-lived server with frequent swaps doesn't grow MetricsJson()
  /// unboundedly. 0 (the default) keeps every generation forever — the
  /// pre-pruning behavior, which some consumers rely on to partition
  /// requests_ok exactly across generations.
  void SetGenerationRetention(int64_t keep);

  /// Creates (first use) and returns shard-labeled metrics:
  /// serve.shard.<s>.{queries,lookups,latency_us,swaps_prepared}.
  ShardMetrics Shard(int shard);

  /// p95 of request latency since the previous call, then starts a new
  /// window — the governor's fresh-latency signal (the lifetime histogram
  /// above is too sluggish to detect an overload onset). Single consumer:
  /// the governor thread.
  double WindowLatencyP95AndReset();

  ServeMetricsSnapshot Snapshot() const;
  void Reset();

  /// The backing registry, for callers that want the raw named metrics
  /// (e.g. a PeriodicReporter producer). Names: serve.requests_ok,
  /// serve.requests_failed, serve.requests_shed,
  /// serve.requests_deadline_missed, serve.samples, serve.batches,
  /// serve.latency_us, serve.queue_wait_us, serve.health_state,
  /// serve.health.to_*, serve.model_generation, serve.swaps_ok,
  /// serve.swaps_rejected, serve.shard.<s>.*. Per-generation blocks live
  /// outside the registry (prunable) and appear only in Snapshot().
  const obs::MetricRegistry& registry() const { return registry_; }

 private:
  static constexpr int kBatchSizeBuckets = 16;  // up to 2^16-sample batches

  obs::MetricRegistry registry_;  // must precede the references below
  std::chrono::steady_clock::time_point start_;
  obs::StripedCounter& ok_;
  obs::StripedCounter& failed_;
  obs::StripedCounter& shed_;
  obs::StripedCounter& deadline_missed_;
  obs::StripedCounter& samples_;
  obs::StripedCounter& batches_;
  obs::Histogram& latency_;
  obs::Histogram& queue_wait_;
  std::array<obs::StripedCounter*, 4> transitions_;
  obs::Gauge& health_state_;
  obs::Gauge& model_generation_;
  obs::StripedCounter& swaps_ok_;
  obs::StripedCounter& swaps_rejected_;
  /// Governor window; lives outside the registry so the lifetime
  /// serve.latency_us percentiles stay monotone-sample.
  obs::Histogram window_latency_;
  /// Per-generation blocks, keyed by generation, pruned by RecordSwapOk
  /// when a retention is set. shared_ptr so a consumer mid-batch on a
  /// pruned generation keeps recording into a live (unreported) block.
  mutable std::mutex gen_mu_;
  std::map<uint64_t, std::shared_ptr<GenerationBlock>> gen_blocks_;
  int64_t gen_retention_ = 0;  // 0 = keep every generation
  // Linear power-of-two batch-size buckets; a geometric obs::Histogram
  // would blur the exact power-of-two keys ToJson() reports.
  std::array<std::atomic<int64_t>, kBatchSizeBuckets> batch_size_hist_{};
};

}  // namespace ttrec::serve
