// The producer side of the serving pipeline: request/result types and the
// bounded MPMC queue that feeds the batching consumers.
//
// Thread-safety: every RequestQueue method may be called concurrently from
// any number of producer and consumer threads. PendingRequest itself is
// move-only (it carries a std::promise) and owned by exactly one thread at
// a time — the producer until Push, the queue while enqueued, one consumer
// after PopBatch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/tensor.h"

namespace ttrec::serve {

/// One inference request: `dense` is (num_samples x num_dense) and `sparse`
/// holds one CsrBatch per table with num_samples bags each. Most clients
/// send a single sample; multi-sample requests ride through unchanged and
/// get one logit per sample back.
struct InferenceRequest {
  Tensor dense;
  std::vector<CsrBatch> sparse;

  int64_t num_samples() const {
    return dense.ndim() == 2 ? dense.dim(0) : 0;
  }
};

struct InferenceResult {
  std::vector<float> logits;  // one per request sample
  /// Size of the micro-batch this request was folded into — telemetry for
  /// the client; the logits themselves are batching-invariant.
  int64_t micro_batch_size = 0;
};

/// A request plus its delivery machinery, as stored on the queue.
struct PendingRequest {
  InferenceRequest request;
  std::promise<InferenceResult> promise;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Bounded FIFO between producers (Submit) and batching consumers.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  /// Blocks while the queue is full. If the queue is (or becomes) closed,
  /// fails the item's promise with a shutdown error and returns false.
  bool Push(PendingRequest item);

  /// Takes up to `max_items` requests. Blocks until at least one is
  /// available, then keeps collecting until `max_items` are gathered or
  /// `max_wait` has elapsed since the first was taken — the micro-batching
  /// policy knob: larger waits trade first-request latency for bigger
  /// batches. Once the queue is closed, drains without waiting; an empty
  /// return means closed-and-drained (the consumer's exit signal).
  std::vector<PendingRequest> PopBatch(int64_t max_items,
                                       std::chrono::microseconds max_wait);

  /// Closes the queue: subsequent Push calls fail, blocked pushers wake and
  /// fail, consumers drain what remains and then get empty batches.
  void Close();

  bool closed() const;
  size_t size() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace ttrec::serve
