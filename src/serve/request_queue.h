// The producer side of the serving pipeline: request/result types and the
// bounded MPMC queue that feeds the batching consumers.
//
// Thread-safety: every RequestQueue method may be called concurrently from
// any number of producer and consumer threads. PendingRequest itself is
// move-only (it carries a std::promise) and owned by exactly one thread at
// a time — the producer until Push, the queue while enqueued, one consumer
// after PopBatch.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "data/csr_batch.h"
#include "tensor/tensor.h"

namespace ttrec::serve {

/// Sentinel deadline: the request is willing to wait forever.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// One inference request: `dense` is (num_samples x num_dense) and `sparse`
/// holds one CsrBatch per table with num_samples bags each. Most clients
/// send a single sample; multi-sample requests ride through unchanged and
/// get one logit per sample back.
struct InferenceRequest {
  Tensor dense;
  std::vector<CsrBatch> sparse;
  /// Absolute deadline: once it passes, the server fails the future with
  /// DeadlineExceeded instead of computing logits nobody is waiting for —
  /// checked at admission, and again by the consumer before the forward
  /// pass. kNoDeadline (the default) opts out.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;

  int64_t num_samples() const {
    return dense.ndim() == 2 ? dense.dim(0) : 0;
  }

  bool has_deadline() const { return deadline != kNoDeadline; }
  bool expired(std::chrono::steady_clock::time_point now) const {
    return has_deadline() && now >= deadline;
  }
};

struct InferenceResult {
  std::vector<float> logits;  // one per request sample
  /// Size of the micro-batch this request was folded into — telemetry for
  /// the client; the logits themselves are batching-invariant.
  int64_t micro_batch_size = 0;
  /// Generation of the model that served this request (1 for the model the
  /// server started with, +1 per successful SwapModel). Every sample of a
  /// request is computed by exactly this generation — micro-batches never
  /// mix generations.
  uint64_t model_generation = 0;
};

/// A request plus its delivery machinery, as stored on the queue.
struct PendingRequest {
  InferenceRequest request;
  std::promise<InferenceResult> promise;
  std::chrono::steady_clock::time_point enqueued_at;
};

/// Bounded FIFO between producers (Submit) and batching consumers.
class RequestQueue {
 public:
  /// Why a push did not enqueue. On kOk the item has been consumed; on
  /// kClosed / kTimedOut the item (promise included) stays with the
  /// caller, which owns the failure: exactly one party ever touches the
  /// promise, so a producer racing Close() cannot double-fail it.
  enum class PushResult { kOk, kClosed, kTimedOut };

  explicit RequestQueue(size_t capacity);

  /// Admission primitive with a bounded wait: blocks until space, the
  /// queue closes, or `deadline` passes — whichever comes first.
  /// kNoDeadline blocks indefinitely (the classic backpressure mode); a
  /// deadline already in the past is a try-push.
  PushResult PushUntil(PendingRequest& item,
                       std::chrono::steady_clock::time_point deadline);

  /// Non-blocking admission: enqueue only if space is free right now.
  PushResult TryPush(PendingRequest& item);

  /// Legacy convenience: blocks while the queue is full. If the queue is
  /// (or becomes) closed, fails the item's promise with ServerShutdown and
  /// returns false.
  bool Push(PendingRequest item);

  /// Takes up to `max_items` requests. Blocks until at least one is
  /// available, then keeps collecting until `max_items` are gathered or
  /// `max_wait` has elapsed since the first was taken — the micro-batching
  /// policy knob: larger waits trade first-request latency for bigger
  /// batches. Once the queue is closed, drains without waiting; an empty
  /// return means closed-and-drained (the consumer's exit signal).
  std::vector<PendingRequest> PopBatch(int64_t max_items,
                                       std::chrono::microseconds max_wait);

  /// Closes the queue: subsequent pushes fail with kClosed, pushers
  /// blocked in PushUntil wake promptly, consumers drain what remains and
  /// then get empty batches.
  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Deepest the queue has ever been — the overload post-mortem figure
  /// exported as queue_depth_high_water in the metrics snapshot.
  size_t high_water() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingRequest> items_;
  size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ttrec::serve
