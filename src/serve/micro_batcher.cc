#include "serve/micro_batcher.h"

#include <cstring>
#include <utility>

#include "tensor/check.h"

namespace ttrec::serve {

MicroBatcher::MicroBatcher(int num_tables, int64_t num_dense)
    : num_tables_(num_tables), num_dense_(num_dense) {
  TTREC_CHECK_CONFIG(num_tables >= 1, "MicroBatcher: need >= 1 table");
  TTREC_CHECK_CONFIG(num_dense >= 1,
                     "MicroBatcher: num_dense must be positive");
}

MicroBatch MicroBatcher::Assemble(
    std::vector<PendingRequest> requests) const {
  TTREC_CHECK(!requests.empty(), "MicroBatcher: empty request set");
  MicroBatch mb;
  mb.sample_offsets.reserve(requests.size() + 1);
  mb.sample_offsets.push_back(0);
  int64_t total = 0;
  for (const PendingRequest& pr : requests) {
    total += pr.request.num_samples();
    mb.sample_offsets.push_back(total);
  }

  mb.batch.dense = Tensor({total, num_dense_});
  mb.batch.labels.assign(static_cast<size_t>(total), 0.0f);
  for (size_t r = 0; r < requests.size(); ++r) {
    const Tensor& d = requests[r].request.dense;
    std::memcpy(mb.batch.dense.data() +
                    mb.sample_offsets[r] * num_dense_,
                d.data(),
                static_cast<size_t>(d.numel()) * sizeof(float));
  }

  mb.batch.sparse.resize(static_cast<size_t>(num_tables_));
  for (int t = 0; t < num_tables_; ++t) {
    CsrBatch& merged = mb.batch.sparse[static_cast<size_t>(t)];
    int64_t lookups = 0;
    bool any_weights = false;
    for (const PendingRequest& pr : requests) {
      const CsrBatch& cb = pr.request.sparse[static_cast<size_t>(t)];
      lookups += cb.num_lookups();
      any_weights = any_weights || !cb.weights.empty();
    }
    merged.indices.reserve(static_cast<size_t>(lookups));
    merged.offsets.reserve(static_cast<size_t>(total) + 1);
    merged.offsets.push_back(0);
    if (any_weights) merged.weights.reserve(static_cast<size_t>(lookups));
    for (const PendingRequest& pr : requests) {
      const CsrBatch& cb = pr.request.sparse[static_cast<size_t>(t)];
      const int64_t base = merged.num_lookups();
      merged.indices.insert(merged.indices.end(), cb.indices.begin(),
                            cb.indices.end());
      for (size_t b = 1; b < cb.offsets.size(); ++b) {
        merged.offsets.push_back(base + cb.offsets[b]);
      }
      if (any_weights) {
        if (cb.weights.empty()) {
          merged.weights.insert(merged.weights.end(),
                                static_cast<size_t>(cb.num_lookups()), 1.0f);
        } else {
          merged.weights.insert(merged.weights.end(), cb.weights.begin(),
                                cb.weights.end());
        }
      }
    }
  }

  mb.requests = std::move(requests);
  return mb;
}

std::vector<InferenceRequest> SplitSamples(const MiniBatch& batch) {
  const int64_t B = batch.batch_size();
  const int64_t nd = batch.dense.ndim() == 2 ? batch.dense.dim(1) : 0;
  TTREC_CHECK_SHAPE(batch.dense.ndim() == 2 && batch.dense.dim(0) == B,
                    "SplitSamples: dense must be (batch x num_dense)");
  std::vector<InferenceRequest> out(static_cast<size_t>(B));
  for (int64_t s = 0; s < B; ++s) {
    InferenceRequest& r = out[static_cast<size_t>(s)];
    r.dense = Tensor({1, nd});
    std::memcpy(r.dense.data(), batch.dense.data() + s * nd,
                static_cast<size_t>(nd) * sizeof(float));
    r.sparse.resize(batch.sparse.size());
    for (size_t t = 0; t < batch.sparse.size(); ++t) {
      const CsrBatch& cb = batch.sparse[t];
      const int64_t lo = cb.offsets[static_cast<size_t>(s)];
      const int64_t hi = cb.offsets[static_cast<size_t>(s) + 1];
      CsrBatch& bag = r.sparse[t];
      bag.indices.assign(cb.indices.begin() + lo, cb.indices.begin() + hi);
      bag.offsets = {0, hi - lo};
      if (!cb.weights.empty()) {
        bag.weights.assign(cb.weights.begin() + lo, cb.weights.begin() + hi);
      }
    }
  }
  return out;
}

}  // namespace ttrec::serve
