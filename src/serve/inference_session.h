// A read-only forward executor bound to a frozen DlrmModel.
//
// One session = one caller at a time: the session owns the InferenceScratch
// so repeated Run calls reuse working memory instead of reallocating.
// Concurrent serving uses one session per consumer thread over the shared
// const model — safe by the PredictLogits-const contract (dlrm/model.h), as
// long as nothing mutates the model (no TrainStep / LoadCheckpoint /
// ReplaceTable) while sessions are live.
#pragma once

#include <cstdint>
#include <vector>

#include "dlrm/model.h"

namespace ttrec::serve {

class InferenceSession {
 public:
  explicit InferenceSession(const DlrmModel& model) : model_(model) {}

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Writes one logit per sample into `logits` (batch.batch_size() floats).
  /// Table lookups shard across the global ThreadPool; results are bitwise
  /// identical for any micro-batching of the same samples.
  void Run(const MiniBatch& batch, float* logits) {
    model_.PredictLogits(batch, logits, scratch_);
  }

  std::vector<float> Run(const MiniBatch& batch) {
    std::vector<float> logits(static_cast<size_t>(batch.batch_size()));
    Run(batch, logits.data());
    return logits;
  }

  const DlrmModel& model() const { return model_; }

  /// Upper bound on the transient working memory of one Run call, for
  /// replica capacity planning: every table's kernel workspace on top of
  /// the session-owned scratch. Run shards tables across the pool one
  /// table per chunk (dlrm/model.h), so within a call each table's TT
  /// kernel executes single-threaded — hence WorkspaceBytes(1) per table.
  /// The session scratch itself (MLP activations, per-table outputs) is
  /// sized by the first Run and reused; this estimate reflects its current
  /// allocation.
  int64_t WorkspaceBytesEstimate() const {
    int64_t bytes = 0;
    for (int t = 0; t < model_.num_tables(); ++t) {
      bytes += model_.table(t).WorkspaceBytes(/*num_threads=*/1);
    }
    auto vec_bytes = [](const std::vector<float>& v) {
      return static_cast<int64_t>(v.capacity() * sizeof(float));
    };
    bytes += vec_bytes(scratch_.bottom_out) + vec_bytes(scratch_.inter_out);
    for (const auto& v : scratch_.bottom_act) bytes += vec_bytes(v);
    for (const auto& v : scratch_.emb_out) bytes += vec_bytes(v);
    for (const auto& v : scratch_.top_act) bytes += vec_bytes(v);
    return bytes;
  }

  /// Lookups zeroed under IndexPolicy::kClampToZero since construction.
  int64_t clamped_lookups() const { return scratch_.clamped_lookups; }

 private:
  const DlrmModel& model_;
  InferenceScratch scratch_;
};

}  // namespace ttrec::serve
