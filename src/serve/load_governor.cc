#include "serve/load_governor.h"

#include <utility>

#include "tensor/check.h"

namespace ttrec::serve {

LoadGovernor::LoadGovernor(LoadGovernorConfig config, Sampler sampler,
                           TransitionHook on_transition)
    : config_(config),
      sampler_(std::move(sampler)),
      on_transition_(std::move(on_transition)) {
  TTREC_CHECK_CONFIG(sampler_ != nullptr, "LoadGovernor: sampler required");
  TTREC_CHECK_CONFIG(
      config_.recover_at <= config_.degrade_at &&
          config_.degrade_at <= config_.shed_at,
      "LoadGovernor: thresholds must order recover_at <= degrade_at <= "
      "shed_at");
  TTREC_CHECK_CONFIG(config_.tick.count() > 0,
                     "LoadGovernor: tick must be positive");
}

LoadGovernor::~LoadGovernor() { Stop(); }

void LoadGovernor::Start() {
  if (!config_.enabled || thread_.joinable()) return;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      // Evaluate without the lock: the sampler may take the server's model
      // or queue locks, and Stop() must never wait behind a slow sample.
      lock.unlock();
      Evaluate();
      lock.lock();
      cv_.wait_for(lock, config_.tick, [this] { return stopping_; });
    }
  });
}

void LoadGovernor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

HealthState LoadGovernor::Next(HealthState cur, const Signals& s) const {
  const double frac =
      s.queue_capacity > 0
          ? static_cast<double>(s.queue_depth) /
                static_cast<double>(s.queue_capacity)
          : 0.0;
  const bool p95_over = config_.p95_budget_us > 0 &&
                        s.window_p95_us >
                            static_cast<double>(config_.p95_budget_us);
  switch (cur) {
    case HealthState::kHealthy:
      if (frac >= config_.shed_at) return HealthState::kShedding;
      if (frac >= config_.degrade_at || p95_over) {
        return HealthState::kDegraded;
      }
      return cur;
    case HealthState::kDegraded:
      if (frac >= config_.shed_at) return HealthState::kShedding;
      if (frac <= config_.recover_at && !p95_over) {
        return HealthState::kHealthy;
      }
      return cur;
    case HealthState::kShedding:
      // Recovery from shedding steps down through degraded — the queue
      // must first drain well below the shed threshold.
      if (frac <= config_.degrade_at) return HealthState::kDegraded;
      return cur;
    case HealthState::kDraining:
      return cur;  // terminal
  }
  return cur;
}

HealthState LoadGovernor::Evaluate() {
  const HealthState cur = state();
  if (cur == HealthState::kDraining) return cur;
  const HealthState next = Next(cur, sampler_());
  if (next != cur) {
    // Tick thread and test callers never race each other by contract, and
    // ForceDrain wins any race by being re-checked in SetState.
    SetState(next);
  }
  return state();
}

void LoadGovernor::ForceDrain() {
  if (state() == HealthState::kDraining) return;
  SetState(HealthState::kDraining);
}

void LoadGovernor::SetState(HealthState to) {
  const HealthState from = state();
  // Draining is sticky: a concurrent ForceDrain must not be overwritten by
  // an in-flight Evaluate's verdict.
  int expected = static_cast<int>(from);
  if (from == HealthState::kDraining ||
      !state_.compare_exchange_strong(expected, static_cast<int>(to),
                                      std::memory_order_acq_rel)) {
    return;
  }
  if (on_transition_) on_transition_(from, to);
}

}  // namespace ttrec::serve
