// Admission control + graceful degradation for the InferenceServer.
//
// A small background thread samples queue depth (against capacity) and the
// windowed p95 request latency each tick and walks the server through the
// explicit health states of serve_metrics.h:
//
//             depth/cap >= shed_at ────────────────┐
//   healthy ──depth/cap >= degrade_at or p95 over──▶ degraded ──▶ shedding
//      ▲        budget                                 │  ▲          │
//      └── depth/cap <= recover_at and p95 ok ─────────┘  └──────────┘
//                                                    depth/cap <= degrade_at
//
// Degraded mode favors latency over throughput (the server shrinks its
// coalescing window and caps micro-batch size); shedding mode rejects at
// admission with a retry-after hint; draining (entered only via
// ForceDrain, never by sampling) is terminal. Hysteresis comes from
// recover_at < degrade_at < shed_at — the state cannot flap on a depth
// hovering at one threshold.
//
// The governor owns no serving machinery: it reads Signals through a
// callback and announces transitions through another, so it is testable
// with a synthetic queue and reusable by a future multi-shard router.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "serve/serve_metrics.h"

namespace ttrec::serve {

struct LoadGovernorConfig {
  /// false: the server stays kHealthy forever (modulo ForceDrain) and no
  /// tick thread is started.
  bool enabled = true;
  /// Sampling cadence. Reaction time to an overload onset is one tick.
  std::chrono::milliseconds tick{20};
  /// Queue-depth fractions (depth / capacity) driving the state machine;
  /// must satisfy recover_at <= degrade_at <= shed_at.
  double degrade_at = 0.5;
  double shed_at = 0.9;
  double recover_at = 0.25;
  /// Windowed-p95 latency budget in µs; p95 > p95_budget_us enters (and
  /// holds) degraded even with a shallow queue. 0 disables the latency
  /// signal — queue depth alone governs.
  int64_t p95_budget_us = 0;
  /// Backoff hint carried by ServerOverloaded rejections while shedding.
  std::chrono::milliseconds retry_after{50};
  /// Degraded-mode overrides the server applies: micro-batch cap (0 means
  /// max(1, max_batch_size / 4)) and coalescing window.
  int64_t degraded_max_batch = 0;
  std::chrono::microseconds degraded_max_wait{0};
};

class LoadGovernor {
 public:
  /// What one tick sees.
  struct Signals {
    size_t queue_depth = 0;
    size_t queue_capacity = 1;
    double window_p95_us = 0.0;
  };

  using Sampler = std::function<Signals()>;
  /// Called from the governor thread (or Evaluate's caller) on every
  /// transition, after state() already reads `to`.
  using TransitionHook = std::function<void(HealthState from, HealthState to)>;

  LoadGovernor(LoadGovernorConfig config, Sampler sampler,
               TransitionHook on_transition);
  ~LoadGovernor();

  LoadGovernor(const LoadGovernor&) = delete;
  LoadGovernor& operator=(const LoadGovernor&) = delete;

  /// Starts the tick thread (no-op when disabled). Stop() is idempotent
  /// and also run by the destructor.
  void Start();
  void Stop();

  HealthState state() const {
    return static_cast<HealthState>(state_.load(std::memory_order_acquire));
  }

  /// One sampling step: reads Signals, applies the state machine, fires
  /// the hook on change, returns the new state. The tick thread calls
  /// this; tests may drive it directly on a stopped governor.
  HealthState Evaluate();

  /// Forces kDraining, a terminal state Evaluate never leaves.
  void ForceDrain();

  const LoadGovernorConfig& config() const { return config_; }

 private:
  HealthState Next(HealthState cur, const Signals& s) const;
  void SetState(HealthState to);

  LoadGovernorConfig config_;
  Sampler sampler_;
  TransitionHook on_transition_;
  std::atomic<int> state_{static_cast<int>(HealthState::kHealthy)};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace ttrec::serve
