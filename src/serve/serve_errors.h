// Typed rejections of the serving layer. Every way the server can refuse
// or abandon a request maps to one subclass, so clients can branch on the
// failure kind (retry elsewhere, drop, or surface a bug) instead of
// string-matching what():
//
//   ServerShutdown    the server is draining or gone — do not retry here.
//   DeadlineExceeded  the request's deadline passed before its logits were
//                     computed (at admission or in the queue) — the work
//                     was never run, retrying is safe.
//   ServerOverloaded  load shedding at admission; carries a retry-after
//                     hint sized by the load governor.
//
// All derive from TtRecError (and therefore std::runtime_error), so
// pre-existing catch sites keep working.
#pragma once

#include <chrono>
#include <string>

#include "tensor/check.h"

namespace ttrec::serve {

/// Base of every serving-layer rejection.
class ServeError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

/// The server is shut down or draining: admission is closed for good.
class ServerShutdown : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The request's deadline expired before the forward pass ran. The logits
/// were never computed — a retry cannot observe a duplicate side effect.
class DeadlineExceeded : public ServeError {
 public:
  using ServeError::ServeError;
};

/// Rejected at admission by load shedding (queue full under the
/// reject-when-full policy, or the governor in the shedding state).
/// `retry_after()` is the server's backoff hint.
class ServerOverloaded : public ServeError {
 public:
  ServerOverloaded(const std::string& what,
                   std::chrono::milliseconds retry_after)
      : ServeError(what), retry_after_(retry_after) {}

  std::chrono::milliseconds retry_after() const { return retry_after_; }

 private:
  std::chrono::milliseconds retry_after_;
};

}  // namespace ttrec::serve
