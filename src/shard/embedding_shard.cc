#include "shard/embedding_shard.h"

#include "dlrm/model.h"
#include "serve/serve_errors.h"
#include "tensor/check.h"

namespace ttrec::shard {

EmbeddingShard::EmbeddingShard(std::shared_ptr<const DlrmModel> model,
                               std::shared_ptr<const ShardPlan> plan,
                               int shard_id)
    : model_(std::move(model)), plan_(std::move(plan)), shard_id_(shard_id) {
  TTREC_CHECK_CONFIG(model_ != nullptr, "EmbeddingShard: null model");
  TTREC_CHECK_CONFIG(plan_ != nullptr, "EmbeddingShard: null plan");
  TTREC_CHECK_CONFIG(shard_id_ >= 0 && shard_id_ < plan_->num_shards(),
                     "EmbeddingShard: shard id ", shard_id_,
                     " outside plan's [0, ", plan_->num_shards(), ")");
  TTREC_CHECK_CONFIG(
      plan_->num_tables() == model_->num_tables(),
      "EmbeddingShard: plan has ", plan_->num_tables(), " tables, model has ",
      model_->num_tables());
  piece_by_table_.assign(static_cast<size_t>(model_->num_tables()), nullptr);
  for (int t = 0; t < model_->num_tables(); ++t) {
    const int64_t rows = model_->table(t).num_rows();
    TTREC_CHECK_CONFIG(plan_->table_rows(t) == rows, "EmbeddingShard: plan "
                       "sizes table ", t, " at ", plan_->table_rows(t),
                       " rows, model has ", rows);
    for (const ShardPiece& p : plan_->table_pieces(t)) {
      TTREC_CHECK_CONFIG(p.row_end <= rows, "EmbeddingShard: piece [",
                         p.row_begin, ", ", p.row_end, ") of table ", t,
                         " exceeds its ", rows, " rows");
      if (p.shard == shard_id_) {
        piece_by_table_[static_cast<size_t>(t)] = &p;
      }
    }
  }
}

int64_t EmbeddingShard::QueryLookups(const ShardQuery& query) {
  int64_t n = 0;
  for (const ShardTableQuery& tq : query.tables) {
    n += tq.whole_batch != nullptr ? tq.whole_batch->num_lookups()
                                   : tq.pooled.num_lookups();
    n += static_cast<int64_t>(tq.fetch.size());
  }
  return n;
}

void EmbeddingShard::PartialLookup(const ShardQuery& query,
                                   ShardReply& reply) const {
  if (std::chrono::steady_clock::now() > query.deadline) {
    throw serve::DeadlineExceeded("shard " + std::to_string(shard_id_) +
                                  ": deadline expired before partial lookup");
  }
  reply.tables.resize(query.tables.size());
  const int64_t d = model_->config().emb_dim;

  for (size_t i = 0; i < query.tables.size(); ++i) {
    const ShardTableQuery& tq = query.tables[i];
    ShardTableReply& tr = reply.tables[static_cast<size_t>(i)];
    const int t = tq.table;
    TTREC_CHECK_CONFIG(t >= 0 && t < model_->num_tables(),
                       "shard ", shard_id_, ": query names table ", t);
    const ShardPiece* p = piece_by_table_[static_cast<size_t>(t)];
    TTREC_CHECK_CONFIG(p != nullptr, "shard ", shard_id_,
                       ": query names table ", t, " but this shard owns no "
                       "piece of it");
    const EmbeddingOp& op = model_->table(t);

    if (tq.whole_batch != nullptr) {
      // Single-owner fast path: the op validates and pools the router's
      // batch directly — identical to the unsharded table loop.
      tr.pooled_out.assign(
          static_cast<size_t>(tq.whole_batch->num_bags() * d), 0.0f);
      op.ForwardInference(*tq.whole_batch, tr.pooled_out.data());
    } else if (tq.pooled.num_bags() > 0) {
      // Interior bags: rewrite local ids back to global and pool the
      // compacted sub-batch on the full operator. Batching invariance makes
      // each bag's pooled vector bitwise equal to its unsharded value.
      tr.remapped.offsets = tq.pooled.offsets;
      tr.remapped.weights = tq.pooled.weights;
      tr.remapped.indices.resize(tq.pooled.indices.size());
      for (size_t l = 0; l < tq.pooled.indices.size(); ++l) {
        const int64_t local = tq.pooled.indices[l];
        TTREC_CHECK_INDEX(local >= 0 && local < p->rows(), "shard ",
                          shard_id_, ", table ", t, ": local row ", local,
                          " outside piece of ", p->rows(), " rows");
        tr.remapped.indices[l] = local + p->row_begin;
      }
      tr.pooled_out.assign(static_cast<size_t>(tq.pooled.num_bags() * d),
                           0.0f);
      op.ForwardInference(tr.remapped, tr.pooled_out.data());
    } else {
      tr.pooled_out.clear();
    }

    if (!tq.fetch.empty()) {
      // Split bags: decode raw rows (single unweighted lookups reproduce
      // exact row bits on every op); the router pools them.
      tr.fetch_global.resize(tq.fetch.size());
      for (size_t l = 0; l < tq.fetch.size(); ++l) {
        const int64_t local = tq.fetch[l];
        TTREC_CHECK_INDEX(local >= 0 && local < p->rows(), "shard ",
                          shard_id_, ", table ", t, ": local fetch row ",
                          local, " outside piece of ", p->rows(), " rows");
        tr.fetch_global[l] = local + p->row_begin;
      }
      tr.fetch_out.assign(tq.fetch.size() * static_cast<size_t>(d), 0.0f);
      op.ForwardInference(CsrBatch::FromIndices(tr.fetch_global),
                          tr.fetch_out.data());
    } else {
      tr.fetch_out.clear();
    }
  }
}

std::vector<std::shared_ptr<const EmbeddingShard>> BuildShards(
    std::shared_ptr<const DlrmModel> model,
    std::shared_ptr<const ShardPlan> plan) {
  TTREC_CHECK_CONFIG(plan != nullptr, "BuildShards: null plan");
  std::vector<std::shared_ptr<const EmbeddingShard>> shards;
  shards.reserve(static_cast<size_t>(plan->num_shards()));
  for (int s = 0; s < plan->num_shards(); ++s) {
    shards.push_back(std::make_shared<const EmbeddingShard>(model, plan, s));
  }
  return shards;
}

}  // namespace ttrec::shard
