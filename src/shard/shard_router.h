// ShardRouter: fans one micro-batch's embedding lookups out to N
// EmbeddingShards and joins the partial results bitwise identically to the
// single-process forward. The dense tower, sanitize pass, interaction, and
// top tower stay on the router (the "dense compute" node of the BagPipe
// topology); only the embedding stage is distributed.
//
// Split, per table:
//   single owner   the whole (sanitized) CsrBatch goes to the owning shard
//                  by pointer — zero copies, the shard runs the exact
//                  unsharded table lookup.
//   interior bag   all of a bag's lookups land on one shard: the bag joins
//                  that shard's compacted `pooled` sub-batch (ids rebased
//                  to the piece). Batching invariance of the const forward
//                  path makes the pooled vector bitwise equal.
//   split bag      lookups straddle shards: each shard decodes its rows raw
//                  (`fetch`), and the router pools them in ORIGINAL lookup
//                  order through the table op's PoolPrefetchedRows — the
//                  same weights, the same accumulation kernel, the same
//                  order as the unsharded lookup, so float non-
//                  associativity never leaks into the logits.
//
// Join order is deterministic (ascending shard id, then original bag
// order); all shard outputs land in disjoint emb_out regions, so the
// result is independent of fan-out scheduling. Errors: the first failing
// shard (lowest id) rethrows on the caller — shard deadline misses arrive
// as serve::DeadlineExceeded and flow through the PR 7 typed-error path.
//
// A router instance is single-consumer (owns its scratch); make one per
// consumer thread. Shards are shared and immutable.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/model.h"
#include "obs/metrics.h"
#include "shard/embedding_shard.h"
#include "shard/shard_plan.h"

namespace ttrec::shard {

/// Per-shard observability hooks (serve.shard.<s>.* in the server's
/// registry). All pointers optional; the router never owns them.
struct ShardTelemetry {
  obs::StripedCounter* queries = nullptr;  // partial-lookup calls
  obs::StripedCounter* lookups = nullptr;  // lookups routed to the shard
  obs::Histogram* latency_us = nullptr;    // per-query shard latency
};

class ShardRouter {
 public:
  /// `shards` must be plan->num_shards() instances, one per shard id, all
  /// built against `model` and `plan`. `telemetry` is optional — empty, or
  /// one entry per shard.
  ShardRouter(std::shared_ptr<const DlrmModel> model,
              std::shared_ptr<const ShardPlan> plan,
              std::vector<std::shared_ptr<const EmbeddingShard>> shards,
              std::vector<ShardTelemetry> telemetry = {});

  const ShardPlan& plan() const { return *plan_; }
  const DlrmModel& model() const { return *model_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Full forward over the fan-out/join path: logits are bitwise identical
  /// to model().PredictLogits(batch, logits, scratch) const. Throws what
  /// the single-process path throws (ShapeError/IndexError/ConfigError),
  /// plus serve::DeadlineExceeded when `deadline` expires before a shard
  /// runs its partial lookup.
  void Run(const MiniBatch& batch, float* logits,
           std::chrono::steady_clock::time_point deadline =
               std::chrono::steady_clock::time_point::max());

  /// Lookups routed to each shard by the last Run (telemetry/tests).
  const std::vector<int64_t>& last_shard_lookups() const {
    return last_shard_lookups_;
  }

 private:
  /// Splits `batch` (post-sanitize) into queries_[s]; fills the split-bag
  /// bookkeeping consumed by JoinEmbeddings.
  void SplitBatch(const MiniBatch& batch);
  /// Runs queries_[s] on every shard with work, in parallel.
  void FanOut(std::chrono::steady_clock::time_point deadline);
  /// Assembles scratch_.emb_out from the shard replies.
  void JoinEmbeddings(const MiniBatch& batch, int64_t B);

  std::shared_ptr<const DlrmModel> model_;
  std::shared_ptr<const ShardPlan> plan_;
  std::vector<std::shared_ptr<const EmbeddingShard>> shards_;
  std::vector<ShardTelemetry> telemetry_;

  InferenceScratch scratch_;

  // Reused per Run.
  std::vector<ShardQuery> queries_;
  std::vector<ShardReply> replies_;
  std::vector<int64_t> last_shard_lookups_;

  // Per (shard, table): index into queries_[s].tables, or -1.
  std::vector<int> table_slot_;  // num_shards x num_tables

  struct SplitLoc {
    int shard;
    int64_t pos;  // index into that shard's fetch list for this table slot
  };
  // Per table: the bags that straddle shards and where each of their
  // lookups went, in original lookup order.
  struct TableSplits {
    std::vector<int64_t> bags;
    std::vector<SplitLoc> locs;
    CsrBatch pool_batch;            // global ids, full bags, sliced weights
    std::vector<float> gathered;    // locs.size() x emb_dim
    std::vector<float> pooled;      // bags.size() x emb_dim
  };
  std::vector<TableSplits> splits_;
};

}  // namespace ttrec::shard
