// EmbeddingShard: one in-process serving shard. It holds a shared_ptr to
// the full (immutable, generation-pinned) DlrmModel but answers lookups
// only for the pieces a ShardPlan assigns it — the process-local stand-in
// for a remote embedding server in the BagPipe-style disaggregated
// topology. Everything it runs goes through the const ForwardInference
// path, so any number of shards (and routers) share one model with zero
// copies and full thread safety.
//
// The shard answers two kinds of partial work per table:
//   pooled   whole bags whose lookups all land on this shard — pooled here,
//            in a compacted sub-batch (valid because the const forward path
//            is batching-invariant: a bag's pooled vector is bitwise the
//            same however bags are grouped into batches).
//   fetch    individual rows of bags that straddle shards — decoded here
//            and returned raw; the ROUTER pools them in original lookup
//            order (EmbeddingOp::PoolPrefetchedRows) so floating-point
//            accumulation order never depends on the shard topology.
//
// Construction validates the plan against the model (table count, row
// ranges) — this is the "prepare" half of the two-phase coordinated swap:
// the server builds a full standby set of shards for the incoming model
// and only publishes ("commit") once every one constructed.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/csr_batch.h"
#include "shard/shard_plan.h"

namespace ttrec {
class DlrmModel;
}

namespace ttrec::shard {

/// The per-table slice of work a router sends one shard.
struct ShardTableQuery {
  int table = 0;
  /// Fast path: the shard owns this whole table and every bag goes to it —
  /// points at the router's (already sanitized) CsrBatch, no copy/remap.
  const CsrBatch* whole_batch = nullptr;
  /// Bags fully owned by this shard, compacted, with LOCAL row ids
  /// (global - row_begin). weights carries the original per-lookup weights
  /// of those bags (or empty for all-ones).
  CsrBatch pooled;
  /// Original bag index of each `pooled` bag (for the router's join).
  std::vector<int64_t> pooled_bags;
  /// LOCAL row ids to decode raw, in the order the router will pool them.
  std::vector<int64_t> fetch;
};

struct ShardQuery {
  std::vector<ShardTableQuery> tables;
  /// Absolute deadline; serve::kNoDeadline (time_point::max()) disables.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Per-table results, parallel to ShardQuery::tables. Buffers are owned by
/// the reply and reused across calls (router keeps one per shard).
struct ShardTableReply {
  std::vector<float> pooled_out;  // pooled bags (or whole batch) x emb_dim
  std::vector<float> fetch_out;   // fetch.size() x emb_dim
  CsrBatch remapped;              // scratch: local -> global rewrite
  std::vector<int64_t> fetch_global;  // scratch
};

struct ShardReply {
  std::vector<ShardTableReply> tables;
};

class EmbeddingShard {
 public:
  /// Validates this shard's pieces against the model: every piece's table
  /// exists and its row range lies within the table. Throws ConfigError on
  /// mismatch (the swap-prepare failure path).
  EmbeddingShard(std::shared_ptr<const DlrmModel> model,
                 std::shared_ptr<const ShardPlan> plan, int shard_id);

  int shard_id() const { return shard_id_; }
  const ShardPlan& plan() const { return *plan_; }
  const DlrmModel& model() const { return *model_; }
  /// This shard's piece of table `t`, or nullptr when it owns none of it.
  const ShardPiece* piece(int t) const {
    return piece_by_table_[static_cast<size_t>(t)];
  }

  /// Answers `query` into `reply` (resized to match). Checks the deadline
  /// once at entry and throws serve::DeadlineExceeded if it already passed
  /// — a late shard fails the whole request typed instead of silently
  /// serving stale work. Throws ConfigError if a table query names a table
  /// this shard owns no piece of, IndexError on local ids outside the
  /// piece. Const and safe for concurrent callers (distinct replies).
  void PartialLookup(const ShardQuery& query, ShardReply& reply) const;

  /// Total lookups (pooled + fetch) a query carries — telemetry helper.
  static int64_t QueryLookups(const ShardQuery& query);

 private:
  std::shared_ptr<const DlrmModel> model_;
  std::shared_ptr<const ShardPlan> plan_;
  int shard_id_;
  std::vector<const ShardPiece*> piece_by_table_;
};

/// One shard per plan slot, all over `model`. Throws (ConfigError) if any
/// shard fails validation — the atomic "prepare" of a coordinated swap:
/// either the full standby fleet constructs, or nothing is published.
std::vector<std::shared_ptr<const EmbeddingShard>> BuildShards(
    std::shared_ptr<const DlrmModel> model,
    std::shared_ptr<const ShardPlan> plan);

}  // namespace ttrec::shard
