// Deterministic partitioning of a DLRM's embedding tables across serving
// shards — the assignment half of the multi-shard router (ROADMAP item 1,
// BagPipe-style disaggregated embedding serving).
//
// Two strategies:
//   kTable    whole tables packed onto shards by LPT greedy bin-packing
//             over per-table parameter bytes (largest table first, onto the
//             least-loaded shard) — zero per-lookup routing cost, but the
//             biggest table bounds one shard's load.
//   kRowRange every table's row space [0, rows) is cut into num_shards
//             contiguous ranges (floor(s*R/N) boundaries), so each shard
//             serves a slice of EVERY table — per-lookup routing, but
//             lookups of even a single giant table spread across the fleet.
//
// A plan is a pure function of (table_rows, table_bytes, strategy,
// num_shards): same inputs, same assignment, on every replica — which is
// what lets a router and a remote shard agree on ownership without a
// coordination service. Plans serialize through BinaryWriter/BinaryReader
// so a deployment can pin the assignment in an artifact.
//
// Byte estimates come from the live model (EmbeddingOp::MemoryBytes) or
// from the capacity planner (dlrm/capacity_planner.h), so TT-rank memory
// planning drives placement: a TT-compressed 10M-row table packs onto a
// shard by its compressed footprint, not its logical row count.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tensor/serialize.h"

namespace ttrec {
class DlrmModel;
struct DatasetSpec;
struct PlannerOptions;
}  // namespace ttrec

namespace ttrec::shard {

enum class PartitionStrategy : uint8_t {
  kTable = 0,
  kRowRange = 1,
};

const char* ToString(PartitionStrategy s);
/// Parses "table" / "row" (also accepts "row_range"); false on anything else.
bool ParsePartitionStrategy(const std::string& text, PartitionStrategy* out);

/// One contiguous slice of one table, owned by one shard. Row ids are
/// global; a shard addresses the slice locally as [0, rows()).
struct ShardPiece {
  int table = 0;
  int shard = 0;
  int64_t row_begin = 0;
  int64_t row_end = 0;  // exclusive
  /// Estimated parameter bytes of this slice (drives LPT packing and the
  /// per-shard memory totals of the topology dump).
  int64_t bytes = 0;

  int64_t rows() const { return row_end - row_begin; }
};

/// The full, validated assignment. Immutable once built; shards and routers
/// share it by const reference (or shared_ptr) across model generations —
/// a swap replaces parameters, never the topology.
class ShardPlan {
 public:
  /// Validates and adopts `pieces`: for every table they must exactly
  /// partition [0, table_rows[t]) with at most one piece per (table, shard)
  /// pair, and every shard id must be in [0, num_shards). Pieces are
  /// re-sorted by (table, row_begin). Throws ConfigError on violation.
  ShardPlan(PartitionStrategy strategy, int num_shards,
            std::vector<ShardPiece> pieces, std::vector<int64_t> table_rows);

  PartitionStrategy strategy() const { return strategy_; }
  int num_shards() const { return num_shards_; }
  int num_tables() const { return static_cast<int>(table_rows_.size()); }
  int64_t table_rows(int t) const {
    return table_rows_[static_cast<size_t>(t)];
  }

  /// All pieces, sorted by (table, row_begin).
  const std::vector<ShardPiece>& pieces() const { return pieces_; }
  /// The pieces of one table, ascending row_begin.
  std::span<const ShardPiece> table_pieces(int t) const;
  /// True when one shard owns the whole table (always under kTable).
  bool single_owner(int t) const { return table_pieces(t).size() == 1; }
  /// The piece owning (table, row). Throws IndexError when `row` is outside
  /// [0, table_rows(t)).
  const ShardPiece& PieceFor(int t, int64_t row) const;

  /// Estimated parameter bytes resident on `s` (sum of its pieces).
  int64_t shard_bytes(int s) const {
    return shard_bytes_[static_cast<size_t>(s)];
  }

  void Save(BinaryWriter& w) const;
  static ShardPlan Load(BinaryReader& r);

  /// Human-readable topology dump — one line per shard plus a header; what
  /// `ttrec_serve --shards N` prints at startup.
  std::string ToString() const;

 private:
  PartitionStrategy strategy_;
  int num_shards_;
  std::vector<ShardPiece> pieces_;     // sorted by (table, row_begin)
  std::vector<int64_t> table_rows_;
  std::vector<size_t> table_begin_;    // pieces_ slice per table, size T+1
  std::vector<int64_t> shard_bytes_;
};

/// Builds a plan from raw table geometry. `table_bytes` supplies the
/// per-table parameter estimates (same length as `table_rows`); kRowRange
/// prorates them by slice length.
ShardPlan MakeShardPlan(const std::vector<int64_t>& table_rows,
                        const std::vector<int64_t>& table_bytes,
                        PartitionStrategy strategy, int num_shards);

/// Plan for a live model, using each table's actual MemoryBytes() — a
/// TT-compressed table packs by its compressed footprint.
ShardPlan MakeShardPlanForModel(const DlrmModel& model,
                                PartitionStrategy strategy, int num_shards);

/// Plan straight from the capacity planner: PlanCapacity picks per-table
/// compression (dense vs TT at some rank) for `budget_bytes`, and the
/// resulting per-table byte estimates drive placement — TT-rank selection
/// and shard packing co-decided before any model exists.
ShardPlan MakeShardPlanFromCapacity(const DatasetSpec& spec, int64_t emb_dim,
                                    int64_t budget_bytes,
                                    PartitionStrategy strategy, int num_shards,
                                    const PlannerOptions& options);

}  // namespace ttrec::shard
