#include "shard/shard_plan.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "dlrm/capacity_planner.h"
#include "dlrm/model.h"
#include "tensor/check.h"

namespace ttrec::shard {

const char* ToString(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kTable:
      return "table";
    case PartitionStrategy::kRowRange:
      return "row";
  }
  return "unknown";
}

bool ParsePartitionStrategy(const std::string& text, PartitionStrategy* out) {
  if (text == "table") {
    *out = PartitionStrategy::kTable;
    return true;
  }
  if (text == "row" || text == "row_range") {
    *out = PartitionStrategy::kRowRange;
    return true;
  }
  return false;
}

ShardPlan::ShardPlan(PartitionStrategy strategy, int num_shards,
                     std::vector<ShardPiece> pieces,
                     std::vector<int64_t> table_rows)
    : strategy_(strategy),
      num_shards_(num_shards),
      pieces_(std::move(pieces)),
      table_rows_(std::move(table_rows)) {
  TTREC_CHECK_CONFIG(num_shards_ >= 1, "ShardPlan: num_shards must be >= 1");
  TTREC_CHECK_CONFIG(!table_rows_.empty(), "ShardPlan: no tables");
  std::sort(pieces_.begin(), pieces_.end(),
            [](const ShardPiece& a, const ShardPiece& b) {
              return a.table != b.table ? a.table < b.table
                                        : a.row_begin < b.row_begin;
            });
  const int T = num_tables();
  table_begin_.assign(static_cast<size_t>(T) + 1, 0);
  shard_bytes_.assign(static_cast<size_t>(num_shards_), 0);
  size_t i = 0;
  for (int t = 0; t < T; ++t) {
    table_begin_[static_cast<size_t>(t)] = i;
    int64_t expect = 0;
    std::vector<bool> shard_seen(static_cast<size_t>(num_shards_), false);
    while (i < pieces_.size() && pieces_[i].table == t) {
      const ShardPiece& p = pieces_[i];
      TTREC_CHECK_CONFIG(p.shard >= 0 && p.shard < num_shards_,
                         "ShardPlan: piece of table ", t, " names shard ",
                         p.shard, " outside [0, ", num_shards_, ")");
      TTREC_CHECK_CONFIG(p.row_begin == expect && p.row_end > p.row_begin,
                         "ShardPlan: table ", t,
                         " pieces must partition the row space; got [",
                         p.row_begin, ", ", p.row_end, ") after row ", expect);
      TTREC_CHECK_CONFIG(!shard_seen[static_cast<size_t>(p.shard)],
                         "ShardPlan: table ", t,
                         " assigns two pieces to shard ", p.shard);
      shard_seen[static_cast<size_t>(p.shard)] = true;
      shard_bytes_[static_cast<size_t>(p.shard)] += p.bytes;
      expect = p.row_end;
      ++i;
    }
    TTREC_CHECK_CONFIG(expect == table_rows_[static_cast<size_t>(t)],
                       "ShardPlan: table ", t, " pieces cover [0, ", expect,
                       ") but the table has ",
                       table_rows_[static_cast<size_t>(t)], " rows");
  }
  TTREC_CHECK_CONFIG(i == pieces_.size(),
                     "ShardPlan: piece references table ", pieces_[i].table,
                     " outside [0, ", T, ")");
  table_begin_[static_cast<size_t>(T)] = i;
}

std::span<const ShardPiece> ShardPlan::table_pieces(int t) const {
  TTREC_CHECK_INDEX(t >= 0 && t < num_tables(), "ShardPlan: table ", t,
                    " out of range");
  const size_t b = table_begin_[static_cast<size_t>(t)];
  const size_t e = table_begin_[static_cast<size_t>(t) + 1];
  return {pieces_.data() + b, e - b};
}

const ShardPiece& ShardPlan::PieceFor(int t, int64_t row) const {
  const std::span<const ShardPiece> ps = table_pieces(t);
  TTREC_CHECK_INDEX(row >= 0 && row < table_rows(t), "ShardPlan: row ", row,
                    " outside table ", t, " range [0, ", table_rows(t), ")");
  // Last piece with row_begin <= row. Piece counts are tiny (<= num_shards),
  // but keep it logarithmic for fat fleets.
  auto it = std::upper_bound(
      ps.begin(), ps.end(), row,
      [](int64_t r, const ShardPiece& p) { return r < p.row_begin; });
  return *(it - 1);
}

void ShardPlan::Save(BinaryWriter& w) const {
  w.WriteU32(0x53504C4E);  // "SPLN"
  w.WriteU32(1);           // version
  w.WriteU32(static_cast<uint32_t>(strategy_));
  w.WriteI64(num_shards_);
  w.WriteI64Vec(table_rows_);
  w.WriteI64(static_cast<int64_t>(pieces_.size()));
  for (const ShardPiece& p : pieces_) {
    w.WriteI64(p.table);
    w.WriteI64(p.shard);
    w.WriteI64(p.row_begin);
    w.WriteI64(p.row_end);
    w.WriteI64(p.bytes);
  }
}

ShardPlan ShardPlan::Load(BinaryReader& r) {
  TTREC_CHECK_CONFIG(r.ReadU32() == 0x53504C4E,
                     "ShardPlan::Load: bad magic (not a shard plan)");
  const uint32_t version = r.ReadU32();
  TTREC_CHECK_CONFIG(version == 1, "ShardPlan::Load: unsupported version ",
                     version);
  const auto strategy = static_cast<PartitionStrategy>(r.ReadU32());
  const int num_shards = static_cast<int>(r.ReadI64());
  std::vector<int64_t> table_rows = r.ReadI64Vec();
  const int64_t n = r.ReadI64();
  TTREC_CHECK_CONFIG(n >= 0, "ShardPlan::Load: negative piece count");
  std::vector<ShardPiece> pieces(static_cast<size_t>(n));
  for (ShardPiece& p : pieces) {
    p.table = static_cast<int>(r.ReadI64());
    p.shard = static_cast<int>(r.ReadI64());
    p.row_begin = r.ReadI64();
    p.row_end = r.ReadI64();
    p.bytes = r.ReadI64();
  }
  // The constructor re-validates every invariant, so a corrupted file that
  // survives the checksum still cannot produce an inconsistent plan.
  return ShardPlan(strategy, num_shards, std::move(pieces),
                   std::move(table_rows));
}

std::string ShardPlan::ToString() const {
  std::ostringstream os;
  os << "shard plan: " << shard::ToString(strategy_) << " partition, "
     << num_shards_ << " shard(s), " << num_tables() << " table(s)\n";
  for (int s = 0; s < num_shards_; ++s) {
    os << "  shard " << s << ": " << shard_bytes(s) << " bytes";
    int64_t rows = 0;
    int tables = 0;
    for (const ShardPiece& p : pieces_) {
      if (p.shard != s) continue;
      ++tables;
      rows += p.rows();
    }
    os << ", " << tables << " piece(s), " << rows << " rows [";
    bool first = true;
    for (const ShardPiece& p : pieces_) {
      if (p.shard != s) continue;
      if (!first) os << " ";
      first = false;
      os << "t" << p.table;
      if (p.row_begin != 0 || p.row_end != table_rows(p.table)) {
        os << ":" << p.row_begin << "-" << p.row_end;
      }
    }
    os << "]\n";
  }
  return os.str();
}

ShardPlan MakeShardPlan(const std::vector<int64_t>& table_rows,
                        const std::vector<int64_t>& table_bytes,
                        PartitionStrategy strategy, int num_shards) {
  TTREC_CHECK_CONFIG(num_shards >= 1,
                     "MakeShardPlan: num_shards must be >= 1");
  TTREC_CHECK_CONFIG(table_bytes.size() == table_rows.size(),
                     "MakeShardPlan: table_bytes/table_rows size mismatch");
  const int T = static_cast<int>(table_rows.size());
  std::vector<ShardPiece> pieces;
  switch (strategy) {
    case PartitionStrategy::kTable: {
      // LPT greedy bin-packing: biggest table first onto the least-loaded
      // shard. Ties break toward the lower table index / lower shard id, so
      // the assignment is a pure function of the inputs.
      std::vector<int> order(static_cast<size_t>(T));
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const int64_t ba = table_bytes[static_cast<size_t>(a)];
        const int64_t bb = table_bytes[static_cast<size_t>(b)];
        return ba != bb ? ba > bb : a < b;
      });
      std::vector<int64_t> load(static_cast<size_t>(num_shards), 0);
      for (int t : order) {
        int best = 0;
        for (int s = 1; s < num_shards; ++s) {
          if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
            best = s;
          }
        }
        load[static_cast<size_t>(best)] += table_bytes[static_cast<size_t>(t)];
        pieces.push_back(ShardPiece{t, best, 0,
                                    table_rows[static_cast<size_t>(t)],
                                    table_bytes[static_cast<size_t>(t)]});
      }
      break;
    }
    case PartitionStrategy::kRowRange: {
      for (int t = 0; t < T; ++t) {
        const int64_t R = table_rows[static_cast<size_t>(t)];
        const int64_t B = table_bytes[static_cast<size_t>(t)];
        for (int s = 0; s < num_shards; ++s) {
          const int64_t lo = R * s / num_shards;
          const int64_t hi = R * (s + 1) / num_shards;
          if (hi <= lo) continue;  // more shards than rows: skip empty slices
          // Prorate the byte estimate by slice length (exact for dense
          // tables; for TT the cores are shared, so this is the planner's
          // amortized view).
          pieces.push_back(
              ShardPiece{t, s, lo, hi, B * (hi - lo) / std::max<int64_t>(R, 1)});
        }
      }
      break;
    }
  }
  return ShardPlan(strategy, num_shards, std::move(pieces), table_rows);
}

ShardPlan MakeShardPlanForModel(const DlrmModel& model,
                                PartitionStrategy strategy, int num_shards) {
  std::vector<int64_t> rows;
  std::vector<int64_t> bytes;
  rows.reserve(static_cast<size_t>(model.num_tables()));
  bytes.reserve(static_cast<size_t>(model.num_tables()));
  for (int t = 0; t < model.num_tables(); ++t) {
    rows.push_back(model.table(t).num_rows());
    bytes.push_back(model.table(t).MemoryBytes());
  }
  return MakeShardPlan(rows, bytes, strategy, num_shards);
}

ShardPlan MakeShardPlanFromCapacity(const DatasetSpec& spec, int64_t emb_dim,
                                    int64_t budget_bytes,
                                    PartitionStrategy strategy, int num_shards,
                                    const PlannerOptions& options) {
  const CapacityPlan cap = PlanCapacity(spec, emb_dim, budget_bytes, options);
  std::vector<int64_t> rows;
  std::vector<int64_t> bytes;
  rows.reserve(cap.tables.size());
  bytes.reserve(cap.tables.size());
  for (const TablePlan& t : cap.tables) {
    rows.push_back(t.rows);
    bytes.push_back(t.bytes);
  }
  return MakeShardPlan(rows, bytes, strategy, num_shards);
}

}  // namespace ttrec::shard
