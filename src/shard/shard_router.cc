#include "shard/shard_router.h"

#include <cstring>

#include "tensor/check.h"
#include "tensor/parallel.h"

namespace ttrec::shard {

ShardRouter::ShardRouter(
    std::shared_ptr<const DlrmModel> model,
    std::shared_ptr<const ShardPlan> plan,
    std::vector<std::shared_ptr<const EmbeddingShard>> shards,
    std::vector<ShardTelemetry> telemetry)
    : model_(std::move(model)),
      plan_(std::move(plan)),
      shards_(std::move(shards)),
      telemetry_(std::move(telemetry)) {
  TTREC_CHECK_CONFIG(model_ != nullptr, "ShardRouter: null model");
  TTREC_CHECK_CONFIG(plan_ != nullptr, "ShardRouter: null plan");
  TTREC_CHECK_CONFIG(
      static_cast<int>(shards_.size()) == plan_->num_shards(),
      "ShardRouter: plan wants ", plan_->num_shards(), " shards, got ",
      shards_.size());
  for (int s = 0; s < num_shards(); ++s) {
    TTREC_CHECK_CONFIG(shards_[static_cast<size_t>(s)] != nullptr,
                       "ShardRouter: null shard ", s);
    TTREC_CHECK_CONFIG(shards_[static_cast<size_t>(s)]->shard_id() == s,
                       "ShardRouter: shard at index ", s, " reports id ",
                       shards_[static_cast<size_t>(s)]->shard_id());
  }
  TTREC_CHECK_CONFIG(
      telemetry_.empty() ||
          static_cast<int>(telemetry_.size()) == num_shards(),
      "ShardRouter: telemetry must be empty or one entry per shard");
  queries_.resize(static_cast<size_t>(num_shards()));
  replies_.resize(static_cast<size_t>(num_shards()));
  splits_.resize(static_cast<size_t>(model_->num_tables()));
}

void ShardRouter::Run(const MiniBatch& batch, float* logits,
                      std::chrono::steady_clock::time_point deadline) {
  model_->ForwardDenseInference(batch, scratch_);
  SplitBatch(batch);
  FanOut(deadline);
  JoinEmbeddings(batch, batch.batch_size());
  model_->ForwardTailInference(batch.batch_size(), logits, scratch_);
}

void ShardRouter::SplitBatch(const MiniBatch& batch) {
  const int T = model_->num_tables();
  const int S = num_shards();
  const int64_t B = batch.batch_size();

  for (int s = 0; s < S; ++s) queries_[static_cast<size_t>(s)].tables.clear();
  table_slot_.assign(static_cast<size_t>(S) * static_cast<size_t>(T), -1);
  last_shard_lookups_.assign(static_cast<size_t>(S), 0);

  auto slot = [&](int s, int t) -> ShardTableQuery& {
    int& idx = table_slot_[static_cast<size_t>(s) * static_cast<size_t>(T) +
                           static_cast<size_t>(t)];
    if (idx < 0) {
      idx = static_cast<int>(queries_[static_cast<size_t>(s)].tables.size());
      ShardTableQuery tq;
      tq.table = t;
      tq.pooled.offsets.push_back(0);
      queries_[static_cast<size_t>(s)].tables.push_back(std::move(tq));
    }
    return queries_[static_cast<size_t>(s)].tables[static_cast<size_t>(idx)];
  };

  for (int t = 0; t < T; ++t) {
    const CsrBatch& cb = model_->SparseForInference(batch, t, scratch_);
    TTREC_CHECK_SHAPE(cb.num_bags() == B, "table ", t, " has ", cb.num_bags(),
                      " bags for batch size ", B);
    TableSplits& sp = splits_[static_cast<size_t>(t)];
    sp.bags.clear();
    sp.locs.clear();
    sp.pool_batch.indices.clear();
    sp.pool_batch.weights.clear();
    sp.pool_batch.offsets.assign(1, 0);

    if (plan_->single_owner(t)) {
      const int owner = plan_->table_pieces(t)[0].shard;
      slot(owner, t).whole_batch = &cb;
      last_shard_lookups_[static_cast<size_t>(owner)] += cb.num_lookups();
      continue;
    }

    for (int64_t b = 0; b < B; ++b) {
      const int64_t begin = cb.offsets[static_cast<size_t>(b)];
      const int64_t end = cb.offsets[static_cast<size_t>(b) + 1];
      if (begin == end) continue;  // empty bag: joins as zeros, like pooling

      const ShardPiece& first =
          plan_->PieceFor(t, cb.indices[static_cast<size_t>(begin)]);
      bool interior = true;
      for (int64_t l = begin + 1; l < end; ++l) {
        if (plan_->PieceFor(t, cb.indices[static_cast<size_t>(l)]).shard !=
            first.shard) {
          interior = false;
          break;
        }
      }

      if (interior) {
        // One shard owns the whole bag (a shard has at most one piece per
        // table, so `first` covers every lookup): compact it into that
        // shard's pooled sub-batch with rebased ids.
        ShardTableQuery& tq = slot(first.shard, t);
        for (int64_t l = begin; l < end; ++l) {
          tq.pooled.indices.push_back(cb.indices[static_cast<size_t>(l)] -
                                      first.row_begin);
        }
        if (!cb.weights.empty()) {
          tq.pooled.weights.insert(
              tq.pooled.weights.end(),
              cb.weights.begin() + static_cast<int64_t>(begin),
              cb.weights.begin() + static_cast<int64_t>(end));
        }
        tq.pooled.offsets.push_back(
            static_cast<int64_t>(tq.pooled.indices.size()));
        tq.pooled_bags.push_back(b);
        last_shard_lookups_[static_cast<size_t>(first.shard)] += end - begin;
      } else {
        // Straddling bag: every lookup becomes a raw-row fetch on its
        // owner; the join pools them in this original order.
        sp.bags.push_back(b);
        for (int64_t l = begin; l < end; ++l) {
          const int64_t row = cb.indices[static_cast<size_t>(l)];
          const ShardPiece& p = plan_->PieceFor(t, row);
          ShardTableQuery& tq = slot(p.shard, t);
          sp.locs.push_back(
              SplitLoc{p.shard, static_cast<int64_t>(tq.fetch.size())});
          tq.fetch.push_back(row - p.row_begin);
          sp.pool_batch.indices.push_back(row);
          ++last_shard_lookups_[static_cast<size_t>(p.shard)];
        }
        if (!cb.weights.empty()) {
          sp.pool_batch.weights.insert(
              sp.pool_batch.weights.end(),
              cb.weights.begin() + static_cast<int64_t>(begin),
              cb.weights.begin() + static_cast<int64_t>(end));
        }
        sp.pool_batch.offsets.push_back(
            static_cast<int64_t>(sp.pool_batch.indices.size()));
      }
    }
  }
}

void ShardRouter::FanOut(std::chrono::steady_clock::time_point deadline) {
  const int S = num_shards();
  std::vector<std::exception_ptr> errors(static_cast<size_t>(S));
  ParallelFor(
      S,
      [&](int64_t lo, int64_t hi) {
        for (int64_t s = lo; s < hi; ++s) {
          ShardQuery& q = queries_[static_cast<size_t>(s)];
          if (q.tables.empty()) continue;
          q.deadline = deadline;
          const auto t0 = std::chrono::steady_clock::now();
          try {
            shards_[static_cast<size_t>(s)]->PartialLookup(
                q, replies_[static_cast<size_t>(s)]);
          } catch (...) {
            errors[static_cast<size_t>(s)] = std::current_exception();
          }
          if (!telemetry_.empty()) {
            const ShardTelemetry& tm = telemetry_[static_cast<size_t>(s)];
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (tm.queries != nullptr) tm.queries->Add(1);
            if (tm.lookups != nullptr) {
              tm.lookups->Add(last_shard_lookups_[static_cast<size_t>(s)]);
            }
            if (tm.latency_us != nullptr) tm.latency_us->Record(us);
          }
        }
      },
      /*grain=*/1);
  // Deterministic error selection: the lowest failing shard id wins, not
  // whichever task lost the scheduling race.
  for (int s = 0; s < S; ++s) {
    if (errors[static_cast<size_t>(s)]) {
      std::rethrow_exception(errors[static_cast<size_t>(s)]);
    }
  }
}

void ShardRouter::JoinEmbeddings(const MiniBatch& batch, int64_t B) {
  const int T = model_->num_tables();
  const int S = num_shards();
  const int64_t d = model_->config().emb_dim;
  const size_t row_bytes = static_cast<size_t>(d) * sizeof(float);

  scratch_.emb_out.resize(static_cast<size_t>(T));
  for (int t = 0; t < T; ++t) {
    scratch_.emb_out[static_cast<size_t>(t)].assign(
        static_cast<size_t>(B * d), 0.0f);
  }

  // Pooled results: whole-table blocks and interior bags copy straight in
  // (each bag written by exactly one shard).
  for (int s = 0; s < S; ++s) {
    const ShardQuery& q = queries_[static_cast<size_t>(s)];
    const ShardReply& r = replies_[static_cast<size_t>(s)];
    for (size_t i = 0; i < q.tables.size(); ++i) {
      const ShardTableQuery& tq = q.tables[i];
      const ShardTableReply& tr = r.tables[i];
      float* out = scratch_.emb_out[static_cast<size_t>(tq.table)].data();
      if (tq.whole_batch != nullptr) {
        std::memcpy(out, tr.pooled_out.data(),
                    static_cast<size_t>(B) * row_bytes);
      } else {
        for (size_t k = 0; k < tq.pooled_bags.size(); ++k) {
          std::memcpy(out + tq.pooled_bags[k] * d,
                      tr.pooled_out.data() + static_cast<int64_t>(k) * d,
                      row_bytes);
        }
      }
    }
  }

  // Split bags: gather each table's fetched rows back into original lookup
  // order and pool them through the table's own kernel.
  (void)batch;
  for (int t = 0; t < T; ++t) {
    TableSplits& sp = splits_[static_cast<size_t>(t)];
    if (sp.bags.empty()) continue;
    sp.gathered.resize(sp.locs.size() * static_cast<size_t>(d));
    for (size_t k = 0; k < sp.locs.size(); ++k) {
      const SplitLoc& loc = sp.locs[k];
      const int slot = table_slot_[static_cast<size_t>(loc.shard) *
                                       static_cast<size_t>(T) +
                                   static_cast<size_t>(t)];
      const ShardTableReply& tr =
          replies_[static_cast<size_t>(loc.shard)]
              .tables[static_cast<size_t>(slot)];
      std::memcpy(sp.gathered.data() + static_cast<int64_t>(k) * d,
                  tr.fetch_out.data() + loc.pos * d, row_bytes);
    }
    sp.pooled.assign(sp.bags.size() * static_cast<size_t>(d), 0.0f);
    model_->table(t).PoolPrefetchedRows(sp.pool_batch, sp.gathered.data(),
                                        sp.pooled.data());
    float* out = scratch_.emb_out[static_cast<size_t>(t)].data();
    for (size_t k = 0; k < sp.bags.size(); ++k) {
      std::memcpy(out + sp.bags[k] * d,
                  sp.pooled.data() + static_cast<int64_t>(k) * d, row_bytes);
    }
  }
}

}  // namespace ttrec::shard
