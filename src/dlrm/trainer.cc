#include "dlrm/trainer.h"

#include <chrono>

#include "tensor/check.h"

namespace ttrec {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

std::vector<MiniBatch> MakeEvalSet(const SyntheticCriteo& data,
                                   const TrainConfig& config) {
  std::vector<MiniBatch> eval;
  eval.reserve(static_cast<size_t>(config.eval_batches));
  for (int64_t i = 0; i < config.eval_batches; ++i) {
    eval.push_back(data.EvalBatch(config.eval_batch_size,
                                  static_cast<uint64_t>(i + 1)));
  }
  return eval;
}

TrainResult TrainDlrm(DlrmModel& model, SyntheticCriteo& data,
                      const TrainConfig& config) {
  TTREC_CHECK_CONFIG(config.iterations >= 1, "need >= 1 training iteration");
  TTREC_CHECK_CONFIG(config.batch_size >= 1, "batch size must be positive");

  OptimizerConfig opt;
  opt.kind = config.optimizer;
  opt.lr = config.lr;
  opt.eps = config.adagrad_eps;

  TrainResult result;
  result.iterations = config.iterations;
  for (int64_t it = 0; it < config.iterations; ++it) {
    const auto t0 = Clock::now();
    MiniBatch batch = data.NextBatch(config.batch_size);
    const auto t1 = Clock::now();
    const double loss = model.TrainStep(batch, opt);
    const auto t2 = Clock::now();
    result.data_seconds += Seconds(t0, t1);
    result.train_seconds += Seconds(t1, t2);
    if (config.log_every > 0 && it % config.log_every == 0) {
      result.loss_history.push_back(loss);
    }
  }
  if (config.eval_batches > 0) {
    result.final_eval = model.Evaluate(MakeEvalSet(data, config));
  }
  return result;
}

}  // namespace ttrec
