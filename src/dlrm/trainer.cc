#include "dlrm/trainer.h"

#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <utility>

#include "cache/cache_manager.h"
#include "dlrm/checkpoint.h"
#include "dlrm/train_stages.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/cpu_features.h"
#include "tensor/parallel.h"

namespace ttrec {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Bias-corrected EMA of applied batch losses — the loss-spike baseline.
class LossEma {
 public:
  explicit LossEma(double beta) : beta_(beta) {}
  void Observe(double loss) {
    ema_ = beta_ * ema_ + (1.0 - beta_) * loss;
    correction_ *= beta_;
    ++count_;
  }
  int64_t count() const { return count_; }
  double value() const { return ema_ / (1.0 - correction_); }
  void Reset() {
    ema_ = 0.0;
    correction_ = 1.0;
    count_ = 0;
  }

 private:
  double beta_;
  double ema_ = 0.0;
  double correction_ = 1.0;  // beta^count, for bias correction
  int64_t count_ = 0;
};
}  // namespace

void TrainConfig::Validate() const {
  TTREC_CHECK_CONFIG(iterations >= 1, "need >= 1 training iteration");
  TTREC_CHECK_CONFIG(batch_size >= 1, "batch size must be positive");
  TTREC_CHECK_CONFIG(eval_batches >= 0, "eval_batches must be >= 0");
  TTREC_CHECK_CONFIG(eval_batches == 0 || eval_batch_size >= 1,
                     "eval_batch_size must be positive when eval_batches > 0");
  TTREC_CHECK_CONFIG(log_every >= 0, "log_every must be >= 0 (0 = never)");
  TTREC_CHECK_CONFIG(num_threads >= 0,
                     "num_threads must be >= 0 (0 = leave the pool as-is)");
  TTREC_CHECK_CONFIG(
      (cache_budget_bytes > 0) == (cache_retune_interval > 0),
      "cache autotuning needs both cache_budget_bytes and "
      "cache_retune_interval set (or neither)");
  TTREC_CHECK_CONFIG(cache_budget_bytes >= 0,
                     "cache_budget_bytes must be >= 0");
  TTREC_CHECK_CONFIG(cache_retune_interval >= 0,
                     "cache_retune_interval must be >= 0");
  TTREC_CHECK_CONFIG(lookahead_depth >= 0,
                     "lookahead_depth must be >= 0 (0 = synchronous loop)");
  TTREC_CHECK_CONFIG(checkpoint_every >= 0, "checkpoint_every must be >= 0");
  TTREC_CHECK_CONFIG(checkpoint_every == 0 || !checkpoint_dir.empty(),
                     "checkpoint_every > 0 requires checkpoint_dir");
  TTREC_CHECK_CONFIG(checkpoint_keep_last >= 1,
                     "checkpoint_keep_last must be >= 1");
  TTREC_CHECK_CONFIG(!resume || !checkpoint_dir.empty(),
                     "resume requires checkpoint_dir");
  TTREC_CHECK_CONFIG(!async_checkpoint || checkpoint_every > 0,
                     "async_checkpoint requires checkpoint_every > 0");
  TTREC_CHECK_CONFIG(
      fault.on_fault != FaultToleranceConfig::OnFault::kRollback ||
          checkpoint_every > 0,
      "rollback fault policy requires checkpointing (checkpoint_every > 0)");
  TTREC_CHECK_CONFIG(fault.max_rollbacks >= 0, "max_rollbacks must be >= 0");
  TTREC_CHECK_CONFIG(fault.grad_clip_norm >= 0.0f,
                     "grad_clip_norm must be >= 0 (0 disables)");
  TTREC_CHECK_CONFIG(fault.spike_factor >= 0.0,
                     "spike_factor must be >= 0 (0 disables)");
  TTREC_CHECK_CONFIG(fault.spike_warmup >= 0, "spike_warmup must be >= 0");
  TTREC_CHECK_CONFIG(
      fault.spike_ema_beta > 0.0 && fault.spike_ema_beta < 1.0,
      "spike_ema_beta must be in (0, 1)");
  TTREC_CHECK_CONFIG(report_interval_ms >= 0,
                     "report_interval_ms must be >= 0");
}

std::vector<MiniBatch> MakeEvalSet(const BatchSource& data,
                                   const TrainConfig& config) {
  std::vector<MiniBatch> eval;
  eval.reserve(static_cast<size_t>(config.eval_batches));
  for (int64_t i = 0; i < config.eval_batches; ++i) {
    eval.push_back(data.EvalBatch(config.eval_batch_size,
                                  static_cast<uint64_t>(i + 1)));
  }
  return eval;
}

TrainResult TrainDlrm(DlrmModel& model, BatchSource& data,
                      const TrainConfig& config) {
  config.Validate();
  if (config.num_threads > 0) {
    ThreadPool::SetGlobalThreads(config.num_threads);
  }

  OptimizerConfig opt;
  opt.kind = config.optimizer;
  opt.lr = config.lr;
  opt.eps = config.adagrad_eps;

  TrainResult result;
  result.iterations = config.iterations;

  std::unique_ptr<CheckpointManager> ckpt;
  if (config.checkpoint_every > 0 || config.resume) {
    CheckpointManagerConfig cc;
    cc.directory = config.checkpoint_dir;
    cc.keep_last = config.checkpoint_keep_last;
    ckpt = std::make_unique<CheckpointManager>(cc);
  }
  if (config.resume && ckpt != nullptr) {
    const auto t0 = Clock::now();
    SnapshotMeta meta;
    if (ckpt->RestoreLatest(model, data, &meta)) {
      TTREC_CHECK_CONFIG(
          meta.optimizer == OptimizerName(opt.kind),
          "resume: snapshot was trained with '", meta.optimizer,
          "', this run uses '", OptimizerName(opt.kind), "'");
      result.start_iteration = meta.iteration;
    }
    result.checkpoint_seconds += Seconds(t0, Clock::now());
  }

  // Global cache autotuning: one byte budget waterfilled across every
  // cache-backed table, re-apportioned on a fixed cadence.
  std::unique_ptr<CacheManager> cache_mgr;
  if (config.cache_budget_bytes > 0) {
    CacheManagerConfig mc;
    mc.budget_bytes = config.cache_budget_bytes;
    auto mgr = std::make_unique<CacheManager>(mc);
    for (int t = 0; t < model.num_tables(); ++t) {
      if (CachedTtEmbeddingBag* bag = model.table(t).cached_bag()) {
        mgr->RegisterTable(t, bag);
      }
    }
    if (mgr->num_tables() > 0) cache_mgr = std::move(mgr);
  }

  StepGuard guard;
  guard.check_non_finite = config.fault.check_non_finite;
  guard.grad_clip_norm = config.fault.grad_clip_norm;

  LossEma ema(config.fault.spike_ema_beta);
  const int64_t clamped_before = model.clamped_lookups();
  int rollbacks_left = config.fault.max_rollbacks;

  // Observability: publish into the caller's registry when given; a
  // reporter without a registry gets a run-local one. `bump` is for rare
  // events (name lookup each time); the per-iteration metrics cache their
  // references outside the loop.
  obs::MetricRegistry local_registry;
  obs::MetricRegistry* reg = config.metrics;
  const bool want_reporter =
      !config.report_path.empty() && config.report_interval_ms > 0;
  if (reg == nullptr && want_reporter) reg = &local_registry;
  if (reg != nullptr) {
    // Which SIMD kernel tier served this run (0=scalar, 1=avx2, 2=avx512);
    // perf regressions are uninterpretable without it.
    reg->gauge("kernel.simd_tier")
        .Set(static_cast<double>(static_cast<int>(ActiveSimdTier())));
    reg->gauge("train.pipeline.depth")
        .Set(static_cast<double>(config.lookahead_depth));
    reg->gauge("train.pipeline.threaded")
        .Set(config.lookahead_threaded ? 1.0 : 0.0);
  }
  const auto bump = [reg](const char* name, int64_t n = 1) {
    if (reg != nullptr && n != 0) reg->counter(name).Add(n);
  };
  obs::StripedCounter* iterations_c =
      reg != nullptr ? &reg->counter("train.iterations") : nullptr;
  obs::Histogram* step_us_h =
      reg != nullptr ? &reg->histogram("train.step_us") : nullptr;
  obs::Histogram* data_us_h =
      reg != nullptr ? &reg->histogram("train.data_us") : nullptr;
  obs::Histogram* prefetch_us_h =
      reg != nullptr && config.lookahead_depth >= 1
          ? &reg->histogram("train.pipeline.prefetch_us")
          : nullptr;
  std::unique_ptr<obs::PeriodicReporter> reporter;
  if (want_reporter) {
    reporter = std::make_unique<obs::PeriodicReporter>(
        [reg] { return reg->ToJson(); },
        std::chrono::milliseconds(config.report_interval_ms),
        config.report_path);
  }

  // --- The staged pipeline (DESIGN.md §4.15) -------------------------------
  // A lookahead stage produces batches up to `lookahead_depth` ahead of the
  // optimizer — on its own thread when lookahead_threaded — and the compute
  // stage keeps a window of the next depth+1 staged batches. Each staged
  // batch's prefetch plan is applied to the caches the moment it enters the
  // window: a fixed sequence point on the compute thread, so cache contents
  // at every step are a pure function of (depth, stream), never of thread
  // timing. Depth 0 degenerates to the classic synchronous loop, bit for
  // bit: no thread, no plans, one batch generated right before its step.
  const int64_t depth = config.lookahead_depth;
  std::vector<CachedTtEmbeddingBag*> prefetch_bags(
      static_cast<size_t>(model.num_tables()), nullptr);
  LookaheadOptions lo;
  lo.depth = depth;
  lo.threaded = config.lookahead_threaded;
  lo.batch_size = config.batch_size;
  lo.start_index = result.start_iteration;
  lo.total_batches = config.iterations - result.start_iteration;
  lo.capture_state = ckpt != nullptr && config.checkpoint_every > 0;
  if (depth >= 1 && config.prefetch_cache) {
    bool any_cached = false;
    std::vector<bool> plan_tables(static_cast<size_t>(model.num_tables()),
                                  false);
    for (int t = 0; t < model.num_tables(); ++t) {
      if (CachedTtEmbeddingBag* bag = model.table(t).cached_bag()) {
        prefetch_bags[static_cast<size_t>(t)] = bag;
        plan_tables[static_cast<size_t>(t)] = true;
        any_cached = true;
      }
    }
    if (any_cached) lo.plan_tables = std::move(plan_tables);
  }
  LookaheadStage stage(data, lo);
  std::deque<StagedBatch> window;

  // Applies one staged batch's prefetch plan to the cache-backed tables;
  // returns the wall-clock spent (TT row materialization ahead of its
  // batch — overlap bookkeeping, not data-wait).
  const auto apply_prefetch = [&](StagedBatch& sb) -> double {
    if (sb.plan.empty()) return 0.0;
    const auto p0 = Clock::now();
    TTREC_TRACE_SCOPE("train.prefetch");
    int64_t admitted = 0;
    for (size_t t = 0; t < sb.plan.size(); ++t) {
      if (prefetch_bags[t] == nullptr || sb.plan[t].empty()) continue;
      admitted += prefetch_bags[t]->PrefetchRows(sb.plan[t]);
    }
    const double s = Seconds(p0, Clock::now());
    result.prefetched_rows += admitted;
    result.prefetch_seconds += s;
    bump("train.pipeline.prefetch_rows", admitted);
    if (prefetch_us_h != nullptr) {
      prefetch_us_h->Record(static_cast<int64_t>(1e6 * s));
    }
    return s;
  };

  for (int64_t it = result.start_iteration; it < config.iterations; ++it) {
    const auto t0 = Clock::now();
    double prefetch_s = 0.0;
    {
      // Refill the window through batch it + depth, applying each staged
      // batch's plan on arrival — the "before step i, plans for batches
      // <= i + K have been applied" sequence point.
      TTREC_TRACE_SCOPE("train.batch_gen");
      while (!stage.Exhausted() &&
             (window.empty() || window.back().index < it + depth)) {
        window.push_back(stage.Next());
        prefetch_s += apply_prefetch(window.back());
      }
    }
    TTREC_CHECK_INTERNAL(!window.empty() && window.front().index == it,
                         "pipeline window out of sync at iteration ", it);
    StagedBatch staged = std::move(window.front());
    window.pop_front();
    const auto t1 = Clock::now();

    guard.skip_loss_above =
        (config.fault.spike_factor > 0.0 &&
         ema.count() >= config.fault.spike_warmup)
            ? config.fault.spike_factor * ema.value()
            : std::numeric_limits<double>::infinity();

    const StepOutcome o = [&] {
      TTREC_TRACE_SCOPE("train.step");
      return model.TrainStepGuarded(staged.batch, opt, guard);
    }();
    const auto t2 = Clock::now();
    result.data_seconds += Seconds(t0, t1) - prefetch_s;
    result.train_seconds += Seconds(t1, t2);
    if (iterations_c != nullptr) {
      iterations_c->Add(1);
      data_us_h->Record(
          static_cast<int64_t>(1e6 * (Seconds(t0, t1) - prefetch_s)));
      step_us_h->Record(static_cast<int64_t>(1e6 * Seconds(t1, t2)));
    }

    if (o.non_finite_loss) {
      ++result.robustness.non_finite_loss_skips;
      bump("train.non_finite_loss_skips");
    }
    if (o.non_finite_grad) {
      ++result.robustness.non_finite_grad_skips;
      bump("train.non_finite_grad_skips");
    }
    if (o.loss_spike_skipped) {
      ++result.robustness.loss_spike_skips;
      bump("train.loss_spike_skips");
    }
    if (o.clipped) {
      ++result.robustness.clipped_steps;
      bump("train.clipped_steps");
    }
    if (o.applied) {
      ema.Observe(o.loss);
    } else if (config.fault.on_fault ==
                   FaultToleranceConfig::OnFault::kRollback &&
               ckpt != nullptr && rollbacks_left > 0) {
      const auto r0 = Clock::now();
      TTREC_TRACE_SCOPE("train.rollback");
      // The restore rewrites the source's cursor, which the producer thread
      // may be reading — suspend it first. On success the stage rebases to
      // the snapshot's iteration (regenerating the replayed stream from the
      // restored cursor); on failure it resumes exactly where it was.
      stage.Pause();
      SnapshotMeta meta;
      if (ckpt->RestoreLatest(model, data, &meta)) {
        result.checkpoint_seconds += Seconds(r0, Clock::now());
        ++result.robustness.rollbacks;
        bump("train.rollbacks");
        --rollbacks_left;
        ema.Reset();  // the baseline belongs to the discarded trajectory
        window.clear();
        stage.Restart(meta.iteration);
        it = meta.iteration - 1;  // loop increment resumes at meta.iteration
        continue;
      }
      stage.Resume();
      result.checkpoint_seconds += Seconds(r0, Clock::now());
      // No usable snapshot: fall through to skip-batch behavior.
    }

    if (config.log_every > 0 && it % config.log_every == 0) {
      result.loss_history.push_back(o.loss);
    }

    if (cache_mgr != nullptr &&
        (it + 1) % config.cache_retune_interval == 0) {
      TTREC_TRACE_SCOPE("train.cache_retune");
      cache_mgr->Retune();
      bump("train.cache_retunes");
      if (reg != nullptr) cache_mgr->CollectStats(*reg);
    }

    if (ckpt != nullptr && config.checkpoint_every > 0 &&
        (it + 1) % config.checkpoint_every == 0) {
      const auto c0 = Clock::now();
      TTREC_TRACE_SCOPE("train.checkpoint");
      SnapshotMeta meta;
      meta.iteration = it + 1;
      meta.optimizer = OptimizerName(opt.kind);
      // The source may have run ahead of this step, so the snapshot embeds
      // the cursor the stage captured right after batch `it` was drawn —
      // byte-identical to what a synchronous save would have serialized.
      if (config.async_checkpoint) {
        ckpt->SaveAsync(model, std::move(staged.source_state), meta);
      } else {
        ckpt->Save(model, std::string_view(staged.source_state), meta);
      }
      const double ckpt_s = Seconds(c0, Clock::now());
      result.checkpoint_seconds += ckpt_s;
      ++result.robustness.checkpoints_written;
      bump("train.checkpoints_written");
      if (reg != nullptr) {
        reg->histogram("train.checkpoint_us")
            .Record(static_cast<int64_t>(1e6 * ckpt_s));
      }
    }
  }
  if (ckpt != nullptr && config.async_checkpoint) {
    // Drain the background writer; only the tail that outlives the loop is
    // critical-path time.
    const auto w0 = Clock::now();
    ckpt->WaitIdle();
    result.checkpoint_seconds += Seconds(w0, Clock::now());
    result.checkpoint_background_seconds = ckpt->background_write_seconds();
  }
  result.robustness.clamped_lookups =
      model.clamped_lookups() - clamped_before;
  bump("train.clamped_lookups", result.robustness.clamped_lookups);

  const LookaheadStage::Stats ss = stage.stats();
  bump("train.pipeline.batches_produced", ss.batches_produced);
  bump("train.pipeline.consumer_wait_us", ss.consumer_wait_us);
  bump("train.pipeline.producer_wait_us", ss.producer_wait_us);
  bump("train.pipeline.restarts", ss.restarts);
  if (reg != nullptr) {
    reg->gauge("train.pipeline.max_queue_depth")
        .Set(static_cast<double>(ss.max_queue_depth));
  }

  if (config.eval_batches > 0) {
    TTREC_TRACE_SCOPE("train.eval");
    result.final_eval = model.Evaluate(MakeEvalSet(data, config));
  }
  return result;
}

}  // namespace ttrec
