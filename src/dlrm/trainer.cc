#include "dlrm/trainer.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "cache/cache_manager.h"
#include "dlrm/checkpoint.h"
#include "obs/reporter.h"
#include "obs/trace.h"
#include "tensor/check.h"
#include "tensor/cpu_features.h"
#include "tensor/parallel.h"

namespace ttrec {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Bias-corrected EMA of applied batch losses — the loss-spike baseline.
class LossEma {
 public:
  explicit LossEma(double beta) : beta_(beta) {}
  void Observe(double loss) {
    ema_ = beta_ * ema_ + (1.0 - beta_) * loss;
    correction_ *= beta_;
    ++count_;
  }
  int64_t count() const { return count_; }
  double value() const { return ema_ / (1.0 - correction_); }
  void Reset() {
    ema_ = 0.0;
    correction_ = 1.0;
    count_ = 0;
  }

 private:
  double beta_;
  double ema_ = 0.0;
  double correction_ = 1.0;  // beta^count, for bias correction
  int64_t count_ = 0;
};
}  // namespace

std::vector<MiniBatch> MakeEvalSet(const SyntheticCriteo& data,
                                   const TrainConfig& config) {
  std::vector<MiniBatch> eval;
  eval.reserve(static_cast<size_t>(config.eval_batches));
  for (int64_t i = 0; i < config.eval_batches; ++i) {
    eval.push_back(data.EvalBatch(config.eval_batch_size,
                                  static_cast<uint64_t>(i + 1)));
  }
  return eval;
}

TrainResult TrainDlrm(DlrmModel& model, SyntheticCriteo& data,
                      const TrainConfig& config) {
  TTREC_CHECK_CONFIG(config.iterations >= 1, "need >= 1 training iteration");
  TTREC_CHECK_CONFIG(config.batch_size >= 1, "batch size must be positive");
  TTREC_CHECK_CONFIG(
      config.checkpoint_every == 0 || !config.checkpoint_dir.empty(),
      "checkpoint_every > 0 requires checkpoint_dir");
  TTREC_CHECK_CONFIG(
      config.fault.on_fault != FaultToleranceConfig::OnFault::kRollback ||
          config.checkpoint_every > 0,
      "rollback fault policy requires checkpointing (checkpoint_every > 0)");
  TTREC_CHECK_CONFIG(config.num_threads >= 0,
                     "num_threads must be >= 0 (0 = leave the pool as-is)");
  TTREC_CHECK_CONFIG(
      (config.cache_budget_bytes > 0) == (config.cache_retune_interval > 0),
      "cache autotuning needs both cache_budget_bytes and "
      "cache_retune_interval set (or neither)");
  if (config.num_threads > 0) {
    ThreadPool::SetGlobalThreads(config.num_threads);
  }

  OptimizerConfig opt;
  opt.kind = config.optimizer;
  opt.lr = config.lr;
  opt.eps = config.adagrad_eps;

  TrainResult result;
  result.iterations = config.iterations;

  std::unique_ptr<CheckpointManager> ckpt;
  if (config.checkpoint_every > 0 || config.resume) {
    TTREC_CHECK_CONFIG(!config.checkpoint_dir.empty(),
                       "resume requires checkpoint_dir");
    CheckpointManagerConfig cc;
    cc.directory = config.checkpoint_dir;
    cc.keep_last = config.checkpoint_keep_last;
    ckpt = std::make_unique<CheckpointManager>(cc);
  }
  if (config.resume && ckpt != nullptr) {
    const auto t0 = Clock::now();
    SnapshotMeta meta;
    if (ckpt->RestoreLatest(model, data, &meta)) {
      TTREC_CHECK_CONFIG(
          meta.optimizer == OptimizerName(opt.kind),
          "resume: snapshot was trained with '", meta.optimizer,
          "', this run uses '", OptimizerName(opt.kind), "'");
      result.start_iteration = meta.iteration;
    }
    result.checkpoint_seconds += Seconds(t0, Clock::now());
  }

  // Global cache autotuning: one byte budget waterfilled across every
  // cache-backed table, re-apportioned on a fixed cadence.
  std::unique_ptr<CacheManager> cache_mgr;
  if (config.cache_budget_bytes > 0) {
    CacheManagerConfig mc;
    mc.budget_bytes = config.cache_budget_bytes;
    auto mgr = std::make_unique<CacheManager>(mc);
    for (int t = 0; t < model.num_tables(); ++t) {
      if (CachedTtEmbeddingBag* bag = model.table(t).cached_bag()) {
        mgr->RegisterTable(t, bag);
      }
    }
    if (mgr->num_tables() > 0) cache_mgr = std::move(mgr);
  }

  StepGuard guard;
  guard.check_non_finite = config.fault.check_non_finite;
  guard.grad_clip_norm = config.fault.grad_clip_norm;

  LossEma ema(config.fault.spike_ema_beta);
  const int64_t clamped_before = model.clamped_lookups();
  int rollbacks_left = config.fault.max_rollbacks;

  // Observability: publish into the caller's registry when given; a
  // reporter without a registry gets a run-local one. `bump` is for rare
  // events (name lookup each time); the per-iteration metrics cache their
  // references outside the loop.
  obs::MetricRegistry local_registry;
  obs::MetricRegistry* reg = config.metrics;
  const bool want_reporter =
      !config.report_path.empty() && config.report_interval_ms > 0;
  if (reg == nullptr && want_reporter) reg = &local_registry;
  if (reg != nullptr) {
    // Which SIMD kernel tier served this run (0=scalar, 1=avx2, 2=avx512);
    // perf regressions are uninterpretable without it.
    reg->gauge("kernel.simd_tier")
        .Set(static_cast<double>(static_cast<int>(ActiveSimdTier())));
  }
  const auto bump = [reg](const char* name, int64_t n = 1) {
    if (reg != nullptr && n != 0) reg->counter(name).Add(n);
  };
  obs::StripedCounter* iterations_c =
      reg != nullptr ? &reg->counter("train.iterations") : nullptr;
  obs::Histogram* step_us_h =
      reg != nullptr ? &reg->histogram("train.step_us") : nullptr;
  obs::Histogram* data_us_h =
      reg != nullptr ? &reg->histogram("train.data_us") : nullptr;
  std::unique_ptr<obs::PeriodicReporter> reporter;
  if (want_reporter) {
    reporter = std::make_unique<obs::PeriodicReporter>(
        [reg] { return reg->ToJson(); },
        std::chrono::milliseconds(config.report_interval_ms),
        config.report_path);
  }

  for (int64_t it = result.start_iteration; it < config.iterations; ++it) {
    const auto t0 = Clock::now();
    MiniBatch batch = [&] {
      TTREC_TRACE_SCOPE("train.batch_gen");
      return data.NextBatch(config.batch_size);
    }();
    const auto t1 = Clock::now();

    guard.skip_loss_above =
        (config.fault.spike_factor > 0.0 &&
         ema.count() >= config.fault.spike_warmup)
            ? config.fault.spike_factor * ema.value()
            : std::numeric_limits<double>::infinity();

    const StepOutcome o = [&] {
      TTREC_TRACE_SCOPE("train.step");
      return model.TrainStepGuarded(batch, opt, guard);
    }();
    const auto t2 = Clock::now();
    result.data_seconds += Seconds(t0, t1);
    result.train_seconds += Seconds(t1, t2);
    if (iterations_c != nullptr) {
      iterations_c->Add(1);
      data_us_h->Record(static_cast<int64_t>(1e6 * Seconds(t0, t1)));
      step_us_h->Record(static_cast<int64_t>(1e6 * Seconds(t1, t2)));
    }

    if (o.non_finite_loss) {
      ++result.robustness.non_finite_loss_skips;
      bump("train.non_finite_loss_skips");
    }
    if (o.non_finite_grad) {
      ++result.robustness.non_finite_grad_skips;
      bump("train.non_finite_grad_skips");
    }
    if (o.loss_spike_skipped) {
      ++result.robustness.loss_spike_skips;
      bump("train.loss_spike_skips");
    }
    if (o.clipped) {
      ++result.robustness.clipped_steps;
      bump("train.clipped_steps");
    }
    if (o.applied) {
      ema.Observe(o.loss);
    } else if (config.fault.on_fault ==
                   FaultToleranceConfig::OnFault::kRollback &&
               ckpt != nullptr && rollbacks_left > 0) {
      const auto r0 = Clock::now();
      TTREC_TRACE_SCOPE("train.rollback");
      SnapshotMeta meta;
      if (ckpt->RestoreLatest(model, data, &meta)) {
        result.checkpoint_seconds += Seconds(r0, Clock::now());
        ++result.robustness.rollbacks;
        bump("train.rollbacks");
        --rollbacks_left;
        ema.Reset();  // the baseline belongs to the discarded trajectory
        it = meta.iteration - 1;  // loop increment resumes at meta.iteration
        continue;
      }
      result.checkpoint_seconds += Seconds(r0, Clock::now());
      // No usable snapshot: fall through to skip-batch behavior.
    }

    if (config.log_every > 0 && it % config.log_every == 0) {
      result.loss_history.push_back(o.loss);
    }

    if (cache_mgr != nullptr &&
        (it + 1) % config.cache_retune_interval == 0) {
      TTREC_TRACE_SCOPE("train.cache_retune");
      cache_mgr->Retune();
      bump("train.cache_retunes");
      if (reg != nullptr) cache_mgr->CollectStats(*reg);
    }

    if (ckpt != nullptr && config.checkpoint_every > 0 &&
        (it + 1) % config.checkpoint_every == 0) {
      const auto c0 = Clock::now();
      TTREC_TRACE_SCOPE("train.checkpoint");
      SnapshotMeta meta;
      meta.iteration = it + 1;
      meta.optimizer = OptimizerName(opt.kind);
      ckpt->Save(model, data, meta);
      const double ckpt_s = Seconds(c0, Clock::now());
      result.checkpoint_seconds += ckpt_s;
      ++result.robustness.checkpoints_written;
      bump("train.checkpoints_written");
      if (reg != nullptr) {
        reg->histogram("train.checkpoint_us")
            .Record(static_cast<int64_t>(1e6 * ckpt_s));
      }
    }
  }
  result.robustness.clamped_lookups =
      model.clamped_lookups() - clamped_before;
  bump("train.clamped_lookups", result.robustness.clamped_lookups);

  if (config.eval_batches > 0) {
    TTREC_TRACE_SCOPE("train.eval");
    result.final_eval = model.Evaluate(MakeEvalSet(data, config));
  }
  return result;
}

}  // namespace ttrec
