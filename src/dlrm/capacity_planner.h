// Memory-budget capacity planner: navigates TT-Rec's design space (paper
// Figure 1 / conclusion: "TT-Rec offers a flexible design space between
// memory capacity, training time and model accuracy ... navigated according
// to the desired optimization goal").
//
// Given a dataset's table cardinalities and an embedding-memory budget, the
// planner picks which tables to TT-compress and at what rank, using the
// paper's empirical structure:
//   - compressing the LARGEST tables buys the most memory per unit of
//     accuracy risk (Table 2 / Fig 5: the 7 largest are 99% of capacity);
//   - accuracy saturates in rank (Fig 6), so prefer the highest allowed
//     rank that fits before compressing additional tables;
//   - tables where TT would not actually shrink memory stay dense.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/table_specs.h"
#include "tt/tt_shapes.h"

namespace ttrec {

struct TablePlan {
  int table = 0;        // index into the DatasetSpec
  int64_t rows = 0;
  bool compress = false;
  int64_t rank = 0;     // valid when compress
  int64_t bytes = 0;    // resulting memory for this table
};

struct CapacityPlan {
  std::vector<TablePlan> tables;  // one entry per spec table, spec order
  int64_t total_bytes = 0;
  int64_t dense_bytes = 0;  // all-dense reference
  bool fits = false;        // total_bytes <= budget
  double CompressionRatio() const {
    return total_bytes > 0 ? static_cast<double>(dense_bytes) /
                                 static_cast<double>(total_bytes)
                           : 0.0;
  }
  std::string ToString() const;
};

struct PlannerOptions {
  /// Candidate TT ranks, ascending. The planner prefers the largest that
  /// fits (rank-saturating accuracy, Fig 6).
  std::vector<int64_t> allowed_ranks = {8, 16, 32, 64};
  int num_cores = 3;
};

/// Plans per-table compression so total embedding memory fits
/// `budget_bytes`. If even the most aggressive plan (every shrinkable table
/// at the minimum rank) exceeds the budget, returns that plan with
/// fits == false.
CapacityPlan PlanCapacity(const DatasetSpec& spec, int64_t emb_dim,
                          int64_t budget_bytes,
                          const PlannerOptions& options = {});

/// TT parameter bytes for one table at the given rank (auto factorization).
int64_t TtTableBytes(int64_t rows, int64_t emb_dim, int num_cores,
                     int64_t rank);

}  // namespace ttrec
