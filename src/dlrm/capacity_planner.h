// Memory-budget capacity planner: navigates TT-Rec's design space (paper
// Figure 1 / conclusion: "TT-Rec offers a flexible design space between
// memory capacity, training time and model accuracy ... navigated according
// to the desired optimization goal").
//
// Given a dataset's table cardinalities and an embedding-memory budget, the
// planner picks which tables to TT-compress and at what rank, using the
// paper's empirical structure:
//   - compressing the LARGEST tables buys the most memory per unit of
//     accuracy risk (Table 2 / Fig 5: the 7 largest are 99% of capacity);
//   - accuracy saturates in rank (Fig 6), so prefer the highest allowed
//     rank that fits before compressing additional tables;
//   - tables where TT would not actually shrink memory stay dense.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cache/mrc_profiler.h"
#include "data/table_specs.h"
#include "tt/tt_shapes.h"

namespace ttrec {

struct TablePlan {
  int table = 0;        // index into the DatasetSpec
  int64_t rows = 0;
  bool compress = false;
  int64_t rank = 0;     // valid when compress
  int64_t bytes = 0;    // resulting memory for this table
};

struct CapacityPlan {
  std::vector<TablePlan> tables;  // one entry per spec table, spec order
  int64_t total_bytes = 0;
  int64_t dense_bytes = 0;  // all-dense reference
  bool fits = false;        // total_bytes <= budget
  double CompressionRatio() const {
    return total_bytes > 0 ? static_cast<double>(dense_bytes) /
                                 static_cast<double>(total_bytes)
                           : 0.0;
  }
  std::string ToString() const;
};

struct PlannerOptions {
  /// Candidate TT ranks, ascending. The planner prefers the largest that
  /// fits (rank-saturating accuracy, Fig 6).
  std::vector<int64_t> allowed_ranks = {8, 16, 32, 64};
  int num_cores = 3;
};

/// Plans per-table compression so total embedding memory fits
/// `budget_bytes`. If even the most aggressive plan (every shrinkable table
/// at the minimum rank) exceeds the budget, returns that plan with
/// fits == false.
CapacityPlan PlanCapacity(const DatasetSpec& spec, int64_t emb_dim,
                          int64_t budget_bytes,
                          const PlannerOptions& options = {});

/// TT parameter bytes for one table at the given rank (auto factorization).
int64_t TtTableBytes(int64_t rows, int64_t emb_dim, int num_cores,
                     int64_t rank);

/// A capacity plan that splits one budget between TT cores and hot-row
/// caches. `cache_rows[t]` is the planned cache capacity for spec table t
/// (0 for tables the TT plan leaves dense — they serve from the full
/// uncompressed table and need no cache).
struct CacheAwarePlan {
  CapacityPlan tt;
  int64_t cache_budget_bytes = 0;
  std::vector<int64_t> cache_rows;
  /// Traffic-weighted aggregate hit rate the MRCs predict for the
  /// compressed tables at the planned capacities.
  double predicted_hit_rate = 0.0;
  /// Fraction of the budget handed to caches (the swept knob).
  double cache_fraction = 0.0;
  std::string ToString() const;
};

struct CachePlannerOptions {
  PlannerOptions tt;
  /// Candidate budget fractions to hand the cache layer. 0 must be present
  /// (pure-TT fallback when caching buys nothing or the TT plan needs the
  /// whole budget to fit).
  std::vector<double> cache_fractions = {0.0,  0.02, 0.05, 0.1,
                                         0.15, 0.2,  0.3};
  /// Per-table floor when apportioning cache rows.
  int64_t min_cache_rows = 1;
};

/// Splits `budget_bytes` between TT compression and hot-row caches using
/// per-table miss-ratio curves (`mrcs[t]`, one per spec table, e.g. from a
/// profiling run or a historical trace; empty curves mean "no traffic
/// observed" and draw only the floor). For each candidate cache fraction
/// the remainder goes through PlanCapacity; the cache slice is waterfilled
/// (ApportionCacheRows) over the tables that plan compressed. The fraction
/// with the highest predicted traffic-weighted hit rate wins; ties and
/// non-fitting TT plans fall back toward smaller fractions, so the result
/// always fits whenever PlanCapacity alone would.
CacheAwarePlan PlanCapacityWithCache(const DatasetSpec& spec, int64_t emb_dim,
                                     int64_t budget_bytes,
                                     std::span<const MissRatioCurve> mrcs,
                                     const CachePlannerOptions& options = {});

}  // namespace ttrec
