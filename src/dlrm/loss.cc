#include "dlrm/loss.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tensor/check.h"

namespace ttrec {

double BceWithLogits(std::span<const float> logits,
                     std::span<const float> labels, float* grad_logits) {
  TTREC_CHECK_SHAPE(logits.size() == labels.size(),
                    "BceWithLogits: size mismatch");
  TTREC_CHECK_SHAPE(!logits.empty(), "BceWithLogits: empty batch");
  const double inv_n = 1.0 / static_cast<double>(logits.size());
  double loss = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    const double x = logits[i];
    const double y = labels[i];
    TTREC_CHECK(y == 0.0 || y == 1.0, "labels must be 0 or 1");
    // loss = max(x, 0) - x*y + log(1 + exp(-|x|)).
    loss += std::max(x, 0.0) - x * y + std::log1p(std::exp(-std::abs(x)));
    if (grad_logits != nullptr) {
      const double sig = 1.0 / (1.0 + std::exp(-x));
      grad_logits[i] = static_cast<float>((sig - y) * inv_n);
    }
  }
  return loss * inv_n;
}

double BinaryAccuracy(std::span<const float> logits,
                      std::span<const float> labels) {
  TTREC_CHECK_SHAPE(logits.size() == labels.size(),
                    "BinaryAccuracy: size mismatch");
  if (logits.empty()) return 0.0;
  int64_t correct = 0;
  for (size_t i = 0; i < logits.size(); ++i) {
    const bool pred = logits[i] >= 0.0f;  // sigmoid(x) >= 0.5  <=>  x >= 0
    const bool truth = labels[i] >= 0.5f;
    if (pred == truth) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(logits.size());
}

double AucRoc(std::span<const float> scores, std::span<const float> labels) {
  TTREC_CHECK_SHAPE(scores.size() == labels.size(), "AucRoc: size mismatch");
  const size_t n = scores.size();
  if (n == 0) return 0.5;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Average ranks over tie groups, accumulate rank-sum of positives.
  double pos_rank_sum = 0.0;
  int64_t num_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double avg_rank = 0.5 * (static_cast<double>(i) +
                                   static_cast<double>(j)) + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[order[k]] >= 0.5f) {
        pos_rank_sum += avg_rank;
        ++num_pos;
      }
    }
    i = j + 1;
  }
  const int64_t num_neg = static_cast<int64_t>(n) - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  return (pos_rank_sum -
          static_cast<double>(num_pos) * (num_pos + 1) / 2.0) /
         (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace ttrec
