// Staged training pipeline: the lookahead half of TrainDlrm.
//
// BagPipe's observation (PAPERS.md) is that a recommendation trainer knows
// its future: the sample stream is decided by the data source, not the
// model, so a stage running ahead of the optimizer can (a) have the next
// batch assembled before the compute stage wants it and (b) tell the
// embedding caches which rows the next K batches will touch while the
// current step is still grinding through its GEMMs. LookaheadStage is that
// stage. It produces StagedBatch records — the minibatch itself, one
// sorted-unique row list ("prefetch plan") per cache-backed table, and the
// source's serialized cursor — either inline (depth 0: the synchronous
// loop, byte-for-byte) or from a producer thread feeding a bounded queue
// (depth K >= 1: classic double buffering, the producer runs at most K
// batches ahead).
//
// Determinism contract (the bitwise-identity gate in test_pipeline.cc):
//  - Batch generation never reads model or cache state, so the stream a
//    producer thread generates is bitwise the stream the inline path
//    generates. Threading is pure overlap.
//  - The stage itself never touches a cache. Plans are *data* — the
//    consumer applies them (CachedTtEmbeddingBag::PrefetchRows) on the
//    compute thread at fixed sequence points, so cache mutation order is a
//    function of the schedule, not of thread timing.
//  - Consequently `threaded` on/off cannot change results at any depth;
//    the lookahead *depth* is a semantic knob (it decides when prefetch
//    plans exist to be applied), exactly like cache capacity.
//
// A producer-side failure (the source throws) is captured, the queue is
// closed, and the next Next() call rethrows it wrapped in PipelineError —
// typed, and never a deadlock: every queue wait also watches the done flag.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/batch_source.h"
#include "tensor/check.h"

namespace ttrec {

/// A failure inside the staged pipeline (producer thread or stage
/// machinery), distinct from the data source's own typed errors so callers
/// can tell "the stream is broken" from "the config is wrong".
class PipelineError : public TtRecError {
 public:
  using TtRecError::TtRecError;
};

struct LookaheadOptions {
  /// How many batches ahead of the compute stage the producer may run.
  /// 0 = inline synchronous generation (no thread, no plans, no capture
  /// overhead beyond what the caller asks for).
  int64_t depth = 0;
  /// Generate on a producer thread (depth >= 1 only). Off = the same
  /// staged semantics executed inline on the caller's thread; results are
  /// bitwise identical either way.
  bool threaded = true;
  /// Samples per batch passed to BatchSource::NextBatch.
  int64_t batch_size = 1;
  /// Index of the first batch to produce and how many to produce in total
  /// (the consumer's [start_index, start_index + total_batches) window).
  int64_t start_index = 0;
  int64_t total_batches = 0;
  /// plan_tables[t] selects tables whose future row ids are worth planning
  /// (the cache-backed ones). Empty = no plans. Plans are only built at
  /// depth >= 1 — at depth 0 there is no "future" to prefetch.
  std::vector<bool> plan_tables;
  /// Capture BatchSource::SaveState after generating each batch, so a
  /// checkpoint at iteration i can embed the cursor as of batch i even
  /// while the source itself has already run ahead to batch i + K.
  bool capture_state = false;
};

struct StagedBatch {
  int64_t index = 0;
  MiniBatch batch;
  /// Per table: sorted unique row ids this batch touches (empty for tables
  /// not selected by plan_tables, and always at depth 0).
  std::vector<std::vector<int64_t>> plan;
  /// BatchSource cursor captured immediately after this batch was drawn
  /// (empty unless capture_state) — the "data" section payload of a
  /// snapshot taken after step `index`.
  std::string source_state;
};

class LookaheadStage {
 public:
  /// The stage has exclusive use of `source`'s training stream between
  /// construction and destruction (EvalBatch stays fair game — it is
  /// const and side-effect-free by the BatchSource contract).
  LookaheadStage(BatchSource& source, LookaheadOptions options);
  ~LookaheadStage();

  LookaheadStage(const LookaheadStage&) = delete;
  LookaheadStage& operator=(const LookaheadStage&) = delete;

  /// True once all total_batches have been handed out.
  bool Exhausted() const;

  /// Blocks for the next staged batch (in index order). Throws
  /// PipelineError if the producer (or inline generation) failed.
  StagedBatch Next();

  /// Suspends the producer thread (joins it; already-staged batches stay
  /// queued). The caller may then touch `source` safely — the rollback
  /// path must restore the cursor without racing the producer. Resume()
  /// continues exactly where production stopped; Restart() rebases
  /// instead. No-ops in inline mode.
  void Pause();
  void Resume();

  /// Rebases the stage after the caller restored `source` to an earlier
  /// cursor (checkpoint rollback): stops the producer, discards everything
  /// staged, and resumes producing at `next_index`. The consumer's
  /// iteration window becomes [next_index, start_index + total_batches).
  void Restart(int64_t next_index);

  struct Stats {
    int64_t batches_produced = 0;
    /// Time the consumer spent blocked in Next() waiting for the producer.
    int64_t consumer_wait_us = 0;
    /// Time the producer spent blocked on a full queue (compute-bound run)
    /// — only meaningful when threaded.
    int64_t producer_wait_us = 0;
    int64_t max_queue_depth = 0;
    int64_t restarts = 0;
  };
  /// Safe to call between Next() calls (not concurrently with them).
  Stats stats() const;

 private:
  StagedBatch Produce(int64_t index);  // shared inline/threaded generation
  void ProducerLoop();
  void StopProducer();
  void StartProducer();

  BatchSource& source_;
  LookaheadOptions options_;
  int64_t end_index_ = 0;    // one past the last batch to produce
  int64_t next_produce_ = 0; // next index the producer will generate
  int64_t next_consume_ = 0; // next index Next() will return

  // Threaded mode: bounded queue of at most `depth` staged batches.
  std::thread producer_;
  mutable std::mutex mu_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<StagedBatch> queue_;
  std::exception_ptr producer_error_;
  bool stop_requested_ = false;
  bool producer_done_ = false;

  Stats stats_;  // guarded by mu_ when a producer thread exists
};

}  // namespace ttrec
