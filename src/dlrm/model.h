// The full DLRM (paper Figure 2): bottom MLP over dense features, one
// embedding operator per categorical table (baseline EmbeddingBag, TT-Rec,
// or cached TT-Rec — freely mixed per table), dot interaction, top MLP,
// BCE-with-logits. Manual backprop end to end, plain SGD (the MLPerf-DLRM
// optimizer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_op.h"
#include "dlrm/interaction.h"
#include "dlrm/mlp.h"
#include "dlrm/optimizer.h"
#include "tensor/random.h"

namespace ttrec {

struct DlrmConfig {
  int64_t num_dense = 13;
  int64_t emb_dim = 16;
  /// Hidden sizes of the bottom tower; the final layer always maps to
  /// emb_dim (MLPerf Kaggle reference: 512-256-64-16).
  std::vector<int64_t> bottom_hidden = {64, 32};
  /// Hidden sizes of the top tower; a final linear-to-1 layer is appended
  /// (MLPerf Kaggle reference: 512-256-1).
  std::vector<int64_t> top_hidden = {64, 32};
  /// Out-of-range categorical ids: throw (training — a bad id is a data
  /// bug) or clamp to a zero-vector contribution (serving — the request
  /// still completes). Clamped lookups are counted in clamped_lookups().
  IndexPolicy index_policy = IndexPolicy::kThrow;
};

/// Per-step guard limits for the fault-tolerant training loop. The default
/// guard checks nothing and is numerically identical to a bare TrainStep.
struct StepGuard {
  /// Detect non-finite loss (before backward) and non-finite gradients
  /// (before the optimizer step); the offending batch is skipped.
  bool check_non_finite = false;
  /// Global L2 gradient-norm clipping threshold; 0 disables.
  float grad_clip_norm = 0.0f;
  /// Skip the update (before backward) when the batch loss reaches this
  /// value — the trainer's loss-spike detector sets it per step.
  double skip_loss_above = std::numeric_limits<double>::infinity();
};

/// What a guarded training step actually did.
struct StepOutcome {
  double loss = 0.0;
  bool applied = true;            // false: parameters were left untouched
  bool non_finite_loss = false;
  bool non_finite_grad = false;
  bool loss_spike_skipped = false;  // skip_loss_above triggered
  bool clipped = false;
  double grad_norm = 0.0;  // global L2 norm (0 when guards are off)
};

struct EvalMetrics {
  double loss = 0.0;
  double accuracy = 0.0;
  double auc = 0.5;
};

/// Caller-owned working memory for the const PredictLogits overload. The
/// serving layer keeps one per session so concurrent inference threads never
/// share mutable buffers; reusing an instance across calls avoids
/// per-request allocation churn.
struct InferenceScratch {
  std::vector<float> bottom_out;                  // B x d
  std::vector<std::vector<float>> bottom_act;     // bottom-MLP hidden layers
  std::vector<std::vector<float>> emb_out;        // per table, B x d
  std::vector<float> inter_out;                   // B x inter_dim
  std::vector<std::vector<float>> top_act;        // top-MLP hidden layers
  std::vector<CsrBatch> sanitized_sparse;         // only under kClampToZero
  /// Lookups rewritten to zero-vectors under IndexPolicy::kClampToZero,
  /// accumulated across calls using this scratch.
  int64_t clamped_lookups = 0;
};

class DlrmModel {
 public:
  /// `tables` supplies one EmbeddingOp per categorical feature; all must
  /// share config.emb_dim.
  DlrmModel(const DlrmConfig& config,
            std::vector<std::unique_ptr<EmbeddingOp>> tables, Rng& rng);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const DlrmConfig& config() const { return config_; }
  EmbeddingOp& table(int t) { return *tables_[static_cast<size_t>(t)]; }
  const EmbeddingOp& table(int t) const {
    return *tables_[static_cast<size_t>(t)];
  }

  /// Replaces table `t` in place — the post-training compression workflow
  /// (e.g. swap a trained dense table for its TT-SVD or quantized form and
  /// re-evaluate). The replacement must match emb_dim and num_rows.
  void ReplaceTable(int t, std::unique_ptr<EmbeddingOp> op);

  /// Forward only; writes one logit per sample into `logits`.
  void PredictLogits(const MiniBatch& batch, float* logits);

  /// Read-only forward for serving: same arithmetic as PredictLogits (the
  /// logits are bitwise identical for any micro-batching of the same
  /// requests), but const — no activation caching, no cache refresh, no
  /// table state mutation. All working memory lives in the caller-owned
  /// `scratch`, so concurrent callers with distinct scratches are safe as
  /// long as nothing mutates the model (no TrainStep / LoadCheckpoint /
  /// ReplaceTable in flight). Table lookups are sharded across the global
  /// ThreadPool, one table per chunk.
  void PredictLogits(const MiniBatch& batch, float* logits,
                     InferenceScratch& scratch) const;

  // Staged const forward — PredictLogits(const) split at the embedding
  // boundary so the shard router (src/shard/) can substitute its fan-out/
  // join for the local table loop while reusing the dense tower, the
  // sanitize pass, and the interaction/top tower unchanged. Calling the
  // three stages in order on one scratch is bitwise identical to
  // PredictLogits(const).

  /// Stage 1: shape checks, bottom MLP into scratch.bottom_out, and (under
  /// kClampToZero) the serial sanitize pass into scratch.sanitized_sparse.
  void ForwardDenseInference(const MiniBatch& batch,
                             InferenceScratch& scratch) const;
  /// Stage 2: the table-parallel embedding loop into scratch.emb_out.
  /// Reads scratch.sanitized_sparse when the model clamps (stage 1 must
  /// have run on this scratch).
  void ForwardEmbeddingsInference(const MiniBatch& batch,
                                  InferenceScratch& scratch) const;
  /// Stage 3: dot interaction + top MLP from scratch.{bottom_out,emb_out}.
  void ForwardTailInference(int64_t batch_size, float* logits,
                            InferenceScratch& scratch) const;

  /// The lookup batch table `t` sees in the staged const forward: the
  /// sanitized copy in `scratch` when the model clamps, `batch.sparse[t]`
  /// otherwise. Valid after ForwardDenseInference.
  const CsrBatch& SparseForInference(const MiniBatch& batch, int t,
                                     const InferenceScratch& scratch) const {
    return config_.index_policy == IndexPolicy::kClampToZero
               ? scratch.sanitized_sparse[static_cast<size_t>(t)]
               : batch.sparse[static_cast<size_t>(t)];
  }

  /// Forward + backward + SGD step; returns the batch BCE loss.
  double TrainStep(const MiniBatch& batch, float lr);

  /// Forward + backward + optimizer step (SGD or Adagrad applied to MLPs
  /// and every embedding table); returns the batch BCE loss.
  double TrainStep(const MiniBatch& batch, const OptimizerConfig& opt);

  /// TrainStep with fault guards: non-finite loss/gradient detection,
  /// global-norm gradient clipping, and a loss ceiling (spike skip). When
  /// a guard fires the parameters (and optimizer state) are left exactly
  /// as they were — the batch is dropped, gradients discarded. With the
  /// default StepGuard this is bit-identical to TrainStep.
  StepOutcome TrainStepGuarded(const MiniBatch& batch,
                               const OptimizerConfig& opt,
                               const StepGuard& guard);

  /// Forward + metrics on a held-out batch (no parameter updates).
  EvalMetrics Evaluate(const MiniBatch& batch);

  /// Averaged metrics over several evaluation batches.
  EvalMetrics Evaluate(const std::vector<MiniBatch>& batches);

  /// Serializes MLP towers and every table's learned parameters into a
  /// versioned, checksummed checkpoint. Optimizer state is not persisted
  /// (exact resume under SGD; Adagrad restarts its accumulators).
  void SaveCheckpoint(std::ostream& os) const;

  /// Restores a checkpoint into this model; the architecture (table count,
  /// per-table operator type and shape, MLP dims) must match the one that
  /// saved it.
  void LoadCheckpoint(std::istream& is);

  void SaveCheckpointToFile(const std::string& path) const;
  void LoadCheckpointFromFile(const std::string& path);

  /// Writer-level flavors (no magic/trailer) so the model state can embed
  /// inside a larger artifact, e.g. a full-training-state snapshot
  /// (dlrm/checkpoint.h).
  void SaveState(BinaryWriter& w) const;
  void LoadState(BinaryReader& r);

  /// Optimizer state (Adagrad accumulators of both towers and every
  /// table); an empty marker under pure SGD.
  void SaveOptState(BinaryWriter& w) const;
  void LoadOptState(BinaryReader& r);

  /// Discards all pending gradients (towers and tables).
  void ZeroGrad();

  /// Lookups rewritten to zero-vectors under IndexPolicy::kClampToZero.
  int64_t clamped_lookups() const { return clamped_lookups_; }

  int64_t EmbeddingMemoryBytes() const;
  int64_t MlpMemoryBytes() const {
    return bottom_.MemoryBytes() + top_.MemoryBytes();
  }
  int64_t TotalMemoryBytes() const {
    return EmbeddingMemoryBytes() + MlpMemoryBytes();
  }

 private:
  /// Runs the forward pass and leaves activations cached for backward.
  void ForwardInternal(const MiniBatch& batch, float* logits);

  /// The lookup batch table `t` actually sees: the sanitized copy under
  /// IndexPolicy::kClampToZero, the caller's batch otherwise.
  const CsrBatch& SparseFor(const MiniBatch& batch, int t) const;

  DlrmConfig config_;
  std::vector<std::unique_ptr<EmbeddingOp>> tables_;
  Mlp bottom_;
  Mlp top_;
  DotInteraction interaction_;

  // Forward activations reused by backward.
  std::vector<float> bottom_out_;            // B x d
  std::vector<std::vector<float>> emb_out_;  // per table, B x d
  std::vector<float> inter_out_;             // B x inter_dim
  std::vector<CsrBatch> sanitized_sparse_;   // only used under kClampToZero
  int64_t clamped_lookups_ = 0;
};

/// Convenience factory: builds a DLRM over `spec` where every table is an
/// uncompressed DenseEmbeddingBag (the paper's baseline).
std::unique_ptr<DlrmModel> MakeBaselineDlrm(const DlrmConfig& config,
                                            const DatasetSpec& spec, Rng& rng);

}  // namespace ttrec
