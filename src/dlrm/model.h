// The full DLRM (paper Figure 2): bottom MLP over dense features, one
// embedding operator per categorical table (baseline EmbeddingBag, TT-Rec,
// or cached TT-Rec — freely mixed per table), dot interaction, top MLP,
// BCE-with-logits. Manual backprop end to end, plain SGD (the MLPerf-DLRM
// optimizer).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/embedding_op.h"
#include "dlrm/interaction.h"
#include "dlrm/mlp.h"
#include "dlrm/optimizer.h"
#include "tensor/random.h"

namespace ttrec {

struct DlrmConfig {
  int64_t num_dense = 13;
  int64_t emb_dim = 16;
  /// Hidden sizes of the bottom tower; the final layer always maps to
  /// emb_dim (MLPerf Kaggle reference: 512-256-64-16).
  std::vector<int64_t> bottom_hidden = {64, 32};
  /// Hidden sizes of the top tower; a final linear-to-1 layer is appended
  /// (MLPerf Kaggle reference: 512-256-1).
  std::vector<int64_t> top_hidden = {64, 32};
};

struct EvalMetrics {
  double loss = 0.0;
  double accuracy = 0.0;
  double auc = 0.5;
};

class DlrmModel {
 public:
  /// `tables` supplies one EmbeddingOp per categorical feature; all must
  /// share config.emb_dim.
  DlrmModel(const DlrmConfig& config,
            std::vector<std::unique_ptr<EmbeddingOp>> tables, Rng& rng);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const DlrmConfig& config() const { return config_; }
  EmbeddingOp& table(int t) { return *tables_[static_cast<size_t>(t)]; }

  /// Replaces table `t` in place — the post-training compression workflow
  /// (e.g. swap a trained dense table for its TT-SVD or quantized form and
  /// re-evaluate). The replacement must match emb_dim and num_rows.
  void ReplaceTable(int t, std::unique_ptr<EmbeddingOp> op);

  /// Forward only; writes one logit per sample into `logits`.
  void PredictLogits(const MiniBatch& batch, float* logits);

  /// Forward + backward + SGD step; returns the batch BCE loss.
  double TrainStep(const MiniBatch& batch, float lr);

  /// Forward + backward + optimizer step (SGD or Adagrad applied to MLPs
  /// and every embedding table); returns the batch BCE loss.
  double TrainStep(const MiniBatch& batch, const OptimizerConfig& opt);

  /// Forward + metrics on a held-out batch (no parameter updates).
  EvalMetrics Evaluate(const MiniBatch& batch);

  /// Averaged metrics over several evaluation batches.
  EvalMetrics Evaluate(const std::vector<MiniBatch>& batches);

  /// Serializes MLP towers and every table's learned parameters into a
  /// versioned, checksummed checkpoint. Optimizer state is not persisted
  /// (exact resume under SGD; Adagrad restarts its accumulators).
  void SaveCheckpoint(std::ostream& os) const;

  /// Restores a checkpoint into this model; the architecture (table count,
  /// per-table operator type and shape, MLP dims) must match the one that
  /// saved it.
  void LoadCheckpoint(std::istream& is);

  void SaveCheckpointToFile(const std::string& path) const;
  void LoadCheckpointFromFile(const std::string& path);

  int64_t EmbeddingMemoryBytes() const;
  int64_t MlpMemoryBytes() const {
    return bottom_.MemoryBytes() + top_.MemoryBytes();
  }
  int64_t TotalMemoryBytes() const {
    return EmbeddingMemoryBytes() + MlpMemoryBytes();
  }

 private:
  /// Runs the forward pass and leaves activations cached for backward.
  void ForwardInternal(const MiniBatch& batch, float* logits);

  DlrmConfig config_;
  std::vector<std::unique_ptr<EmbeddingOp>> tables_;
  Mlp bottom_;
  Mlp top_;
  DotInteraction interaction_;

  // Forward activations reused by backward.
  std::vector<float> bottom_out_;            // B x d
  std::vector<std::vector<float>> emb_out_;  // per table, B x d
  std::vector<float> inter_out_;             // B x inter_dim
};

/// Convenience factory: builds a DLRM over `spec` where every table is an
/// uncompressed DenseEmbeddingBag (the paper's baseline).
std::unique_ptr<DlrmModel> MakeBaselineDlrm(const DlrmConfig& config,
                                            const DatasetSpec& spec, Rng& rng);

}  // namespace ttrec
