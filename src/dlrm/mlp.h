// Multi-layer perceptron for the DLRM's bottom (dense-feature) and top
// (post-interaction) towers, with manual backprop and SGD.
//
// Layers are Linear (+ optional ReLU). Weights use the DLRM reference
// initialization: W ~ N(0, sqrt(2/(fan_in + fan_out))), b ~ N(0, sqrt(1/out)).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/random.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace ttrec {

/// One fully-connected layer; caches activations for backward.
class LinearLayer {
 public:
  LinearLayer(int64_t in_dim, int64_t out_dim, bool relu, Rng& rng);

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }
  bool relu() const { return relu_; }

  /// y (batch x out) = act(x (batch x in) * W^T + b). Caches x and y.
  void Forward(const float* x, int64_t batch, float* y);

  /// Forward without caching activations: same arithmetic (bitwise
  /// identical output), const, safe for concurrent callers. Backward may
  /// not follow this call.
  void ForwardInference(const float* x, int64_t batch, float* y) const;

  /// Accumulates dW/db from dy (batch x out); writes dx (batch x in) unless
  /// null. Must follow a Forward with the same batch size.
  void Backward(const float* dy, int64_t batch, float* dx);

  void ApplySgd(float lr);
  /// Elementwise Adagrad; the accumulator is allocated on first use.
  void ApplyAdagrad(float lr, float eps = 1e-8f);
  void ZeroGrad();

  /// Sum of squares of the accumulated weight and bias gradients.
  double GradSqNorm() const;
  /// Scales accumulated gradients (gradient clipping).
  void ScaleGrads(float scale);

  int64_t NumParams() const { return weight_.numel() + bias_.numel(); }

  /// Serializes / restores weights and biases (not optimizer state).
  void SaveState(BinaryWriter& w) const;
  void LoadState(BinaryReader& r);

  /// Serializes / restores the Adagrad accumulators (empty marker when
  /// Adagrad has never run).
  void SaveOptState(BinaryWriter& w) const;
  void LoadOptState(BinaryReader& r);

  Tensor& weight() { return weight_; }  // out x in
  Tensor& bias() { return bias_; }      // out
  const Tensor& weight_grad() const { return dweight_; }
  const Tensor& bias_grad() const { return dbias_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  bool relu_;
  Tensor weight_;   // out x in
  Tensor bias_;     // out
  Tensor dweight_;
  Tensor dbias_;
  Tensor adagrad_weight_;  // lazily allocated by ApplyAdagrad
  Tensor adagrad_bias_;
  std::vector<float> cached_x_;  // batch x in
  std::vector<float> cached_y_;  // batch x out (post-activation)
  int64_t cached_batch_ = 0;
};

/// A stack of LinearLayers. `dims` = {in, h1, ..., out}; ReLU after every
/// layer except optionally the last.
class Mlp {
 public:
  Mlp(std::vector<int64_t> dims, bool final_relu, Rng& rng);

  int64_t in_dim() const { return layers_.front().in_dim(); }
  int64_t out_dim() const { return layers_.back().out_dim(); }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  LinearLayer& layer(int i) { return layers_[static_cast<size_t>(i)]; }
  const LinearLayer& layer(int i) const {
    return layers_[static_cast<size_t>(i)];
  }

  /// y (batch x out_dim); caches per-layer activations.
  void Forward(const float* x, int64_t batch, float* y);

  /// Forward without touching the tower's own activation buffers: the
  /// caller provides `act` (resized to num_layers() - 1 inter-layer
  /// buffers). Const and safe for concurrent callers, each with its own
  /// `act`; output is bitwise identical to Forward.
  void ForwardInference(const float* x, int64_t batch, float* y,
                        std::vector<std::vector<float>>& act) const;

  /// Propagates dy back; writes dx (batch x in_dim) unless null.
  void Backward(const float* dy, int64_t batch, float* dx);

  void ApplySgd(float lr);
  void ApplyAdagrad(float lr, float eps = 1e-8f);
  void ZeroGrad();
  double GradSqNorm() const;
  void ScaleGrads(float scale);

  int64_t NumParams() const;
  void SaveState(BinaryWriter& w) const;
  void LoadState(BinaryReader& r);
  void SaveOptState(BinaryWriter& w) const;
  void LoadOptState(BinaryReader& r);
  int64_t MemoryBytes() const {
    return NumParams() * static_cast<int64_t>(sizeof(float));
  }

 private:
  std::vector<LinearLayer> layers_;
  std::vector<std::vector<float>> act_;  // inter-layer activation buffers
};

}  // namespace ttrec
