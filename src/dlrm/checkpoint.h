// Crash-safe full-training-state snapshots.
//
// A snapshot captures everything a resumed run needs to continue
// bit-identically to an uninterrupted one: model parameters (TT cores and
// dense tables alike), optimizer accumulators, the data stream's RNG
// cursor, and the iteration counter. On-disk layout ("TTSN" version 1):
//
//   u32 magic 0x4E535454 ("TTSN")
//   u32 version (1)
//   u32 section count
//   section "meta"  : i64 iteration, string optimizer name
//   section "model" : DlrmModel::SaveState payload
//   section "optim" : DlrmModel::SaveOptState payload
//   section "data"  : BatchSource::SaveState payload
//   u64 FNV-1a whole-file trailer
//
// Each section is CRC32-framed (tensor/serialize.h), so VerifySnapshotFile
// detects torn writes and bit flips without parsing tensors into a model.
// Files are always written through AtomicWriteFile: a crash mid-save
// leaves the previous snapshot untouched.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "data/batch_source.h"
#include "dlrm/model.h"

namespace ttrec {

/// Resume bookkeeping persisted alongside the tensors.
struct SnapshotMeta {
  /// Training iterations completed when the snapshot was taken.
  int64_t iteration = 0;
  /// OptimizerName() of the saving run; checked on resume so Adagrad
  /// accumulators are never silently applied to an SGD run (or dropped).
  std::string optimizer = "sgd";
};

/// Stream-level save/load. Load throws TtRecError (or a subclass) on any
/// corruption or architecture mismatch; it never half-applies silently —
/// callers wanting skip-and-continue semantics should pre-verify with
/// VerifySnapshotFile (as CheckpointManager::RestoreLatest does).
void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          const BatchSource& data, const SnapshotMeta& meta);
/// Same file format, but the "data" section is spliced from a cursor
/// payload captured earlier with BatchSource::SaveState into a separate
/// BinaryWriter (the pipelined trainer's path: under lookahead the source
/// has already advanced past the snapshot point, so the stage captures the
/// cursor batch-by-batch and the snapshot embeds the right one). Produces
/// bytes identical to the direct overload given the same cursor.
void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          std::string_view data_state,
                          const SnapshotMeta& meta);
SnapshotMeta LoadTrainingSnapshot(std::istream& is, DlrmModel& model,
                                  BatchSource& data);

/// File-level flavors; saving is atomic (temp + fsync + rename).
void SaveTrainingSnapshotToFile(const std::string& path,
                                const DlrmModel& model,
                                const BatchSource& data,
                                const SnapshotMeta& meta);
SnapshotMeta LoadTrainingSnapshotFromFile(const std::string& path,
                                          DlrmModel& model,
                                          BatchSource& data);

struct SnapshotSectionInfo {
  std::string name;
  uint64_t size = 0;
  bool crc_ok = false;
};

struct SnapshotVerifyResult {
  bool ok = false;
  uint32_t version = 0;
  int64_t iteration = -1;  // from the "meta" section when readable
  std::string optimizer;
  /// Sections in file order; a section with crc_ok == false is where
  /// validation stopped.
  std::vector<SnapshotSectionInfo> sections;
  std::string error;  // empty when ok
};

/// Structurally validates a snapshot — magic, version, every section's
/// declared size and CRC32, and the whole-file trailer — without loading
/// tensors into a model. Never throws; failures land in `error`.
SnapshotVerifyResult VerifySnapshotFile(const std::string& path);

/// Verdict on a model-parameter checkpoint file ("DLRM" format, written by
/// DlrmModel::SaveCheckpointToFile — not the "TTSN" training snapshot).
struct CheckpointFileStatus {
  bool ok = false;
  uint32_t version = 0;
  std::string error;  // empty when ok
};

/// Structurally validates a model checkpoint — magic, version, and the
/// whole-file FNV-1a trailer — without constructing a model or parsing a
/// single tensor. Never throws. This is the gate
/// serve::InferenceServer::SwapModel(path) runs before loading a standby:
/// a truncated or bit-flipped file is rejected before deserialization can
/// misinterpret a corrupt length as a multi-gigabyte allocation.
CheckpointFileStatus VerifyModelCheckpointFile(const std::string& path);

struct CheckpointManagerConfig {
  /// Directory snapshots live in; created if missing.
  std::string directory;
  /// Snapshot files are named `<prefix>-<iteration padded to 12>.ttsn`.
  std::string prefix = "snapshot";
  /// Rotation depth: after each Save, only the newest `keep_last`
  /// snapshots are kept.
  int keep_last = 3;
};

/// Owns a directory of rotated snapshots: atomic saves, keep-last-K
/// pruning, and restore-from-newest-valid (corrupt files are skipped, not
/// fatal — that is the point of keeping more than one).
///
/// Saves come in two flavors. Save() serializes and writes on the calling
/// thread. SaveAsync() serializes on the calling thread (the part that must
/// see a quiescent model) but hands the bytes to a background writer thread
/// for the fsync-heavy file I/O — the pipelined trainer's off-critical-path
/// checkpoint. The writer preserves the same atomic temp+fsync+rename
/// guarantees; WaitIdle() (called automatically by RestoreLatest and the
/// destructor) drains it, and a background write failure is rethrown,
/// typed, from the next WaitIdle/SaveAsync call.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerConfig config);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  const CheckpointManagerConfig& config() const { return config_; }

  /// Path the snapshot for `iteration` is (or would be) written to.
  std::string PathFor(int64_t iteration) const;

  /// Atomically writes the snapshot for meta.iteration, prunes old files,
  /// and returns the path written.
  std::string Save(const DlrmModel& model, const BatchSource& data,
                   const SnapshotMeta& meta);
  /// Same, with a pre-captured data-stream cursor payload (see the
  /// SaveTrainingSnapshot splice overload).
  std::string Save(const DlrmModel& model, std::string_view data_state,
                   const SnapshotMeta& meta);

  /// Serializes the snapshot now, writes it on the background thread, and
  /// returns the path it will land at. The model may mutate freely once
  /// this returns. Requires a pre-captured cursor payload: under lookahead
  /// the source has already moved on, and serializing it later would
  /// checkpoint the wrong cursor.
  std::string SaveAsync(const DlrmModel& model, std::string data_state,
                        const SnapshotMeta& meta);

  /// Blocks until every queued async write has been committed (or failed).
  /// Rethrows the first background failure, if any.
  void WaitIdle();

  /// Restores the newest snapshot that passes full verification AND loads
  /// cleanly; anything corrupt, truncated, or mismatched is skipped (see
  /// skipped()). Returns false when no usable snapshot exists — the model
  /// and data stream are untouched in that case. Drains pending async
  /// writes first, so "newest" includes everything already queued.
  bool RestoreLatest(DlrmModel& model, BatchSource& data,
                     SnapshotMeta* meta_out = nullptr);

  /// Snapshot paths in this manager's directory, ascending by iteration.
  std::vector<std::string> ListSnapshots() const;

  /// Human-readable "<path>: <reason>" entries for snapshots the last
  /// RestoreLatest had to skip.
  const std::vector<std::string>& skipped() const { return skipped_; }

  /// Completed SaveAsync file writes, and the wall-clock the background
  /// thread spent writing them (the cost TrainDlrm keeps off its critical
  /// path).
  int64_t async_writes_completed() const;
  double background_write_seconds() const;

 private:
  void Prune();
  void WriterLoop();
  void CommitBytes(const std::string& path, const std::string& bytes);

  CheckpointManagerConfig config_;
  std::vector<std::string> skipped_;

  struct PendingWrite {
    std::string path;
    std::string bytes;
  };
  // Background writer state; the thread starts on first SaveAsync.
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<PendingWrite> pending_;
  std::exception_ptr writer_error_;
  std::thread writer_;
  bool writer_busy_ = false;
  bool stop_writer_ = false;
  int64_t async_completed_ = 0;
  double background_seconds_ = 0.0;
};

}  // namespace ttrec
