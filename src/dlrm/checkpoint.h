// Crash-safe full-training-state snapshots.
//
// A snapshot captures everything a resumed run needs to continue
// bit-identically to an uninterrupted one: model parameters (TT cores and
// dense tables alike), optimizer accumulators, the data stream's RNG
// cursor, and the iteration counter. On-disk layout ("TTSN" version 1):
//
//   u32 magic 0x4E535454 ("TTSN")
//   u32 version (1)
//   u32 section count
//   section "meta"  : i64 iteration, string optimizer name
//   section "model" : DlrmModel::SaveState payload
//   section "optim" : DlrmModel::SaveOptState payload
//   section "data"  : SyntheticCriteo::SaveState payload
//   u64 FNV-1a whole-file trailer
//
// Each section is CRC32-framed (tensor/serialize.h), so VerifySnapshotFile
// detects torn writes and bit flips without parsing tensors into a model.
// Files are always written through AtomicWriteFile: a crash mid-save
// leaves the previous snapshot untouched.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/model.h"

namespace ttrec {

/// Resume bookkeeping persisted alongside the tensors.
struct SnapshotMeta {
  /// Training iterations completed when the snapshot was taken.
  int64_t iteration = 0;
  /// OptimizerName() of the saving run; checked on resume so Adagrad
  /// accumulators are never silently applied to an SGD run (or dropped).
  std::string optimizer = "sgd";
};

/// Stream-level save/load. Load throws TtRecError (or a subclass) on any
/// corruption or architecture mismatch; it never half-applies silently —
/// callers wanting skip-and-continue semantics should pre-verify with
/// VerifySnapshotFile (as CheckpointManager::RestoreLatest does).
void SaveTrainingSnapshot(std::ostream& os, const DlrmModel& model,
                          const SyntheticCriteo& data,
                          const SnapshotMeta& meta);
SnapshotMeta LoadTrainingSnapshot(std::istream& is, DlrmModel& model,
                                  SyntheticCriteo& data);

/// File-level flavors; saving is atomic (temp + fsync + rename).
void SaveTrainingSnapshotToFile(const std::string& path,
                                const DlrmModel& model,
                                const SyntheticCriteo& data,
                                const SnapshotMeta& meta);
SnapshotMeta LoadTrainingSnapshotFromFile(const std::string& path,
                                          DlrmModel& model,
                                          SyntheticCriteo& data);

struct SnapshotSectionInfo {
  std::string name;
  uint64_t size = 0;
  bool crc_ok = false;
};

struct SnapshotVerifyResult {
  bool ok = false;
  uint32_t version = 0;
  int64_t iteration = -1;  // from the "meta" section when readable
  std::string optimizer;
  /// Sections in file order; a section with crc_ok == false is where
  /// validation stopped.
  std::vector<SnapshotSectionInfo> sections;
  std::string error;  // empty when ok
};

/// Structurally validates a snapshot — magic, version, every section's
/// declared size and CRC32, and the whole-file trailer — without loading
/// tensors into a model. Never throws; failures land in `error`.
SnapshotVerifyResult VerifySnapshotFile(const std::string& path);

/// Verdict on a model-parameter checkpoint file ("DLRM" format, written by
/// DlrmModel::SaveCheckpointToFile — not the "TTSN" training snapshot).
struct CheckpointFileStatus {
  bool ok = false;
  uint32_t version = 0;
  std::string error;  // empty when ok
};

/// Structurally validates a model checkpoint — magic, version, and the
/// whole-file FNV-1a trailer — without constructing a model or parsing a
/// single tensor. Never throws. This is the gate
/// serve::InferenceServer::SwapModel(path) runs before loading a standby:
/// a truncated or bit-flipped file is rejected before deserialization can
/// misinterpret a corrupt length as a multi-gigabyte allocation.
CheckpointFileStatus VerifyModelCheckpointFile(const std::string& path);

struct CheckpointManagerConfig {
  /// Directory snapshots live in; created if missing.
  std::string directory;
  /// Snapshot files are named `<prefix>-<iteration padded to 12>.ttsn`.
  std::string prefix = "snapshot";
  /// Rotation depth: after each Save, only the newest `keep_last`
  /// snapshots are kept.
  int keep_last = 3;
};

/// Owns a directory of rotated snapshots: atomic saves, keep-last-K
/// pruning, and restore-from-newest-valid (corrupt files are skipped, not
/// fatal — that is the point of keeping more than one).
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointManagerConfig config);

  const CheckpointManagerConfig& config() const { return config_; }

  /// Path the snapshot for `iteration` is (or would be) written to.
  std::string PathFor(int64_t iteration) const;

  /// Atomically writes the snapshot for meta.iteration, prunes old files,
  /// and returns the path written.
  std::string Save(const DlrmModel& model, const SyntheticCriteo& data,
                   const SnapshotMeta& meta);

  /// Restores the newest snapshot that passes full verification AND loads
  /// cleanly; anything corrupt, truncated, or mismatched is skipped (see
  /// skipped()). Returns false when no usable snapshot exists — the model
  /// and data stream are untouched in that case.
  bool RestoreLatest(DlrmModel& model, SyntheticCriteo& data,
                     SnapshotMeta* meta_out = nullptr);

  /// Snapshot paths in this manager's directory, ascending by iteration.
  std::vector<std::string> ListSnapshots() const;

  /// Human-readable "<path>: <reason>" entries for snapshots the last
  /// RestoreLatest had to skip.
  const std::vector<std::string>& skipped() const { return skipped_; }

 private:
  void Prune();

  CheckpointManagerConfig config_;
  std::vector<std::string> skipped_;
};

}  // namespace ttrec
