// Training-loop driver: runs SGD over any BatchSource (the synthetic
// Criteo stream, the skew-shift scenario, recorded-trace replay), tracks
// loss history and wall-clock time, and evaluates on held-out batches —
// producing exactly the (accuracy, loss, time, memory) tuples the paper's
// evaluation section plots.
//
// The loop is a staged pipeline (dlrm/train_stages.h, DESIGN.md §4.15): a
// lookahead stage runs up to `lookahead_depth` batches ahead of the
// optimizer, pre-assembling batches (on its own thread when
// `lookahead_threaded`) and pre-populating the LFU caches with the rows
// future batches will touch, and checkpoints can move their file I/O to a
// background writer (`async_checkpoint`). At depth 0 it degenerates to the
// classic synchronous loop, bit for bit.
//
// The loop is fault-tolerant: per-step guards (non-finite loss/gradient
// detection, gradient clipping, loss-spike skip), periodic full-training-
// state snapshots (dlrm/checkpoint.h), resume-from-newest-valid, and an
// optional rollback-to-last-checkpoint fault policy. All of it is off by
// default — the bare configuration trains bit-identically to the original
// loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/batch_source.h"
#include "data/criteo_synth.h"
#include "dlrm/model.h"
#include "dlrm/optimizer.h"
#include "obs/metrics.h"

namespace ttrec {

struct FaultToleranceConfig {
  /// Skip batches whose loss or global gradient norm is non-finite.
  bool check_non_finite = false;
  /// Global L2 gradient-norm clipping threshold; 0 disables.
  float grad_clip_norm = 0.0f;
  /// Loss-spike detector: after `spike_warmup` applied steps, a batch
  /// whose loss exceeds `spike_factor` x the bias-corrected EMA of
  /// applied losses is treated as a fault. 0 disables.
  double spike_factor = 0.0;
  int64_t spike_warmup = 20;
  double spike_ema_beta = 0.98;
  /// Response to a detected fault (non-finite or spike): drop the batch
  /// and keep going, or restore the newest valid snapshot and replay.
  /// Rollback needs checkpointing enabled; it targets transient faults
  /// (a flipped bit in an accumulator) — a fault that deterministically
  /// recurs burns through `max_rollbacks` and then degrades to skipping.
  enum class OnFault { kSkipBatch, kRollback };
  OnFault on_fault = OnFault::kSkipBatch;
  int max_rollbacks = 3;
};

struct TrainConfig {
  int64_t iterations = 200;
  int64_t batch_size = 128;
  float lr = 0.1f;
  /// SGD (the paper / MLPerf default) or Adagrad (production extension).
  OptimizerConfig::Kind optimizer = OptimizerConfig::Kind::kSgd;
  float adagrad_eps = 1e-8f;
  /// Held-out evaluation batches generated once up front.
  int64_t eval_batches = 4;
  int64_t eval_batch_size = 512;
  /// Record a loss sample every `log_every` iterations (0 = never).
  int64_t log_every = 10;

  /// Resize the global ThreadPool before training (0 = leave it alone).
  /// The TT kernels are block-parallel and deterministic for any value, so
  /// this is purely a throughput knob; results are bitwise identical.
  int num_threads = 0;

  /// Global cache autotuning (src/cache/cache_manager.h): when both knobs
  /// are > 0 the trainer builds a CacheManager over every cache-backed
  /// table (EmbeddingOp::cached_bag()) and every `cache_retune_interval`
  /// iterations re-apportions `cache_budget_bytes` across their caches by
  /// marginal miss reduction from the live miss-ratio curves, resizing the
  /// caches in place. Tables keep their learned hot rows across retunes.
  /// Set both or neither; a model with no cache-backed tables ignores the
  /// knobs. Retune activity is published into `metrics` (cache.mgr.*,
  /// cache.<t>.*) when set.
  int64_t cache_budget_bytes = 0;
  int64_t cache_retune_interval = 0;

  /// Lookahead depth K of the staged pipeline: before step `it` runs, the
  /// batches up to `it + K` have been generated and their prefetch plans
  /// applied to the caches. 0 = the classic synchronous loop (no thread,
  /// no plans). Depth is a *semantic* knob, like cache capacity: raising
  /// it changes which rows are resident when a batch arrives (more hits,
  /// fewer TT decodes), so results differ *across* depths — while for any
  /// fixed depth, execution strategy (threaded on/off, any num_threads) is
  /// bitwise irrelevant. DESIGN.md §4.15 has the staleness-freedom
  /// argument.
  int64_t lookahead_depth = 0;
  /// Run batch generation on a producer thread (depth >= 1 only). Purely a
  /// throughput knob: the same staged schedule executed inline yields
  /// bitwise-identical results.
  bool lookahead_threaded = true;
  /// Apply each staged batch's row plan to every cache-backed table
  /// (CachedTtEmbeddingBag::PrefetchRows) before the step that consumes
  /// it. Only meaningful at depth >= 1; inert for models with no cached
  /// tables.
  bool prefetch_cache = true;

  /// Snapshot the full training state every N iterations (0 = never);
  /// requires checkpoint_dir.
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  int checkpoint_keep_last = 3;
  /// Before training, restore the newest valid snapshot from
  /// checkpoint_dir (no-op when none exists). A resumed run replays the
  /// exact batch stream of an uninterrupted one.
  bool resume = false;
  /// Move snapshot file I/O (the fsync-heavy half) to a background writer
  /// thread. Serialization still happens at the step boundary, so the
  /// snapshot bytes are identical to a synchronous save; only the wall
  /// clock moves. Requires checkpoint_every > 0.
  bool async_checkpoint = false;

  /// Throws ConfigError on any invalid value or inconsistent combination
  /// (both-or-neither knob pairs, fault policies without their
  /// prerequisites). TrainDlrm calls this first; exposed so benches and
  /// config loaders can fail fast before building a model.
  void Validate() const;

  /// Observability: when set, the trainer publishes into this registry as
  /// it runs — per-iteration histograms (train.step_us, train.data_us,
  /// train.checkpoint_us) and live counters mirroring RobustnessCounters
  /// (train.iterations, train.non_finite_loss_skips, ...). Not owned; must
  /// outlive the TrainDlrm call. The same registry can be shared across
  /// sequential runs (counters keep accumulating).
  obs::MetricRegistry* metrics = nullptr;
  /// When non-empty and report_interval_ms > 0, a PeriodicReporter appends
  /// one registry-JSON line per interval to this file during the run (plus
  /// a final line). Uses `metrics` when set, else a run-local registry.
  std::string report_path;
  int64_t report_interval_ms = 0;

  FaultToleranceConfig fault;
};

/// What the guards and the checkpointer actually did during a run.
struct RobustnessCounters {
  int64_t non_finite_loss_skips = 0;
  int64_t non_finite_grad_skips = 0;
  int64_t loss_spike_skips = 0;
  int64_t clipped_steps = 0;
  int64_t rollbacks = 0;
  int64_t checkpoints_written = 0;
  /// Out-of-range lookups rewritten under IndexPolicy::kClampToZero.
  int64_t clamped_lookups = 0;
  int64_t TotalSkips() const {
    return non_finite_loss_skips + non_finite_grad_skips + loss_spike_skips;
  }
};

struct TrainResult {
  std::vector<double> loss_history;  // sampled every log_every iterations
  EvalMetrics final_eval;
  double train_seconds = 0.0;        // excluding data generation and eval
  /// Wall-clock the compute stage spent acquiring batches: generation when
  /// synchronous, waiting on the producer when pipelined — the overlap win
  /// shows up as this shrinking while train_seconds holds.
  double data_seconds = 0.0;
  /// Wall-clock spent applying lookahead prefetch plans to the caches
  /// (materializing TT rows ahead of their batch).
  double prefetch_seconds = 0.0;
  /// Wall-clock spent writing (and, on resume, restoring) snapshots —
  /// the checkpoint overhead to report against train_seconds. With
  /// async_checkpoint this is only the serialize half; the file I/O
  /// lands in checkpoint_background_seconds instead.
  double checkpoint_seconds = 0.0;
  /// Background-writer wall-clock for async snapshots (overlapped with
  /// training, not part of the critical path).
  double checkpoint_background_seconds = 0.0;
  /// Rows admitted into embedding caches by lookahead prefetch.
  int64_t prefetched_rows = 0;
  int64_t iterations = 0;
  /// First iteration this run actually executed (> 0 after a resume).
  int64_t start_iteration = 0;
  RobustnessCounters robustness;
  double MsPerIteration() const {
    return iterations > 0 ? 1000.0 * train_seconds /
                                static_cast<double>(iterations)
                          : 0.0;
  }
};

/// Trains `model` on batches from `data` and returns the result summary.
/// Accepts any BatchSource — SyntheticCriteo, SkewShiftBatchSource,
/// TraceReplaySource — so existing SyntheticCriteo call sites pass their
/// generator unchanged.
TrainResult TrainDlrm(DlrmModel& model, BatchSource& data,
                      const TrainConfig& config);

/// Builds the standard held-out evaluation set used by TrainDlrm (exposed
/// so sweeps can evaluate multiple models on identical data).
std::vector<MiniBatch> MakeEvalSet(const BatchSource& data,
                                   const TrainConfig& config);

}  // namespace ttrec
