// Training-loop driver: runs SGD over the synthetic Criteo stream, tracks
// loss history and wall-clock time, and evaluates on held-out batches —
// producing exactly the (accuracy, loss, time, memory) tuples the paper's
// evaluation section plots.
#pragma once

#include <cstdint>
#include <vector>

#include "data/criteo_synth.h"
#include "dlrm/model.h"
#include "dlrm/optimizer.h"

namespace ttrec {

struct TrainConfig {
  int64_t iterations = 200;
  int64_t batch_size = 128;
  float lr = 0.1f;
  /// SGD (the paper / MLPerf default) or Adagrad (production extension).
  OptimizerConfig::Kind optimizer = OptimizerConfig::Kind::kSgd;
  float adagrad_eps = 1e-8f;
  /// Held-out evaluation batches generated once up front.
  int64_t eval_batches = 4;
  int64_t eval_batch_size = 512;
  /// Record a loss sample every `log_every` iterations (0 = never).
  int64_t log_every = 10;
};

struct TrainResult {
  std::vector<double> loss_history;  // sampled every log_every iterations
  EvalMetrics final_eval;
  double train_seconds = 0.0;        // excluding data generation and eval
  double data_seconds = 0.0;
  int64_t iterations = 0;
  double MsPerIteration() const {
    return iterations > 0 ? 1000.0 * train_seconds /
                                static_cast<double>(iterations)
                          : 0.0;
  }
};

/// Trains `model` on batches from `data` and returns the result summary.
TrainResult TrainDlrm(DlrmModel& model, SyntheticCriteo& data,
                      const TrainConfig& config);

/// Builds the standard held-out evaluation set used by TrainDlrm (exposed
/// so sweeps can evaluate multiple models on identical data).
std::vector<MiniBatch> MakeEvalSet(const SyntheticCriteo& data,
                                   const TrainConfig& config);

}  // namespace ttrec
