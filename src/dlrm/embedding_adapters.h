// EmbeddingOp adapters wrapping the TT operators into the DLRM.
#pragma once

#include <memory>
#include <string>

#include "cache/cached_tt_embedding.h"
#include "dlrm/embedding_op.h"
#include "tt/tt_embedding.h"
#include "tt/tt_io.h"

namespace ttrec {

/// TT-Rec without cache.
class TtEmbeddingAdapter : public EmbeddingOp {
 public:
  TtEmbeddingAdapter(TtEmbeddingConfig config, TtInit init, Rng& rng)
      : tt_(std::move(config), init, rng) {}

  /// Adopts pre-built cores (e.g. from TtDecompose of a trained table).
  TtEmbeddingAdapter(TtEmbeddingConfig config, TtCores cores)
      : tt_(std::move(config), std::move(cores)) {}

  void Forward(const CsrBatch& batch, float* output) override {
    tt_.Forward(batch, output);
  }
  void ForwardInference(const CsrBatch& batch, float* output) const override {
    tt_.ForwardInference(batch, output);
  }
  void PoolPrefetchedRows(const CsrBatch& batch, const float* rows,
                          float* output) const override {
    tt_.PoolPrefetchedRows(batch, rows, output);
  }
  void Backward(const CsrBatch& batch, const float* grad_output) override {
    tt_.Backward(batch, grad_output);
  }
  void ApplySgd(float lr) override { tt_.ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    if (opt.kind == OptimizerConfig::Kind::kAdagrad) {
      tt_.ApplyAdagrad(opt.lr, opt.eps);
    } else {
      tt_.ApplySgd(opt.lr);
    }
  }
  void SaveState(BinaryWriter& w) const override {
    WriteTtCores(w, tt_.cores());
  }
  void LoadState(BinaryReader& r) override {
    TtCores loaded = ReadTtCores(r);
    TTREC_CHECK_CONFIG(loaded.shape().TotalParams() ==
                           tt_.cores().shape().TotalParams(),
                       "TtEmbeddingAdapter::LoadState: TT shape mismatch");
    for (int k = 0; k < tt_.cores().num_cores(); ++k) {
      TTREC_CHECK_SHAPE(loaded.core(k).shape() == tt_.cores().core(k).shape(),
                        "TtEmbeddingAdapter::LoadState: core shape mismatch");
      tt_.cores().core(k) = std::move(loaded.core(k));
    }
  }

  void SaveOptState(BinaryWriter& w) const override { tt_.SaveOptState(w); }
  void LoadOptState(BinaryReader& r) override { tt_.LoadOptState(r); }

  void ZeroGrad() override { tt_.ZeroGrad(); }
  double GradSqNorm() const override { return tt_.GradSqNorm(); }
  void ScaleGrads(float scale) override { tt_.ScaleGrads(scale); }

  int64_t num_rows() const override { return tt_.num_rows(); }
  int64_t emb_dim() const override { return tt_.emb_dim(); }
  int64_t MemoryBytes() const override { return tt_.MemoryBytes(); }
  int64_t WorkspaceBytes(int num_threads = 0) const override {
    return tt_.WorkspaceBytes(num_threads);
  }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    const TtEmbeddingStats& st = tt_.stats();
    const obs::StatPublisher& p = stats_publisher();
    p.Counter(reg, "tt.forward_calls", st.forward_calls);
    p.Counter(reg, "tt.lookups", st.lookups);
    p.Counter(reg, "tt.forward_flops", st.forward_flops);
    p.Counter(reg, "tt.backward_flops", st.backward_flops);
  }
  std::string Name() const override { return "tt_embedding"; }

  TtEmbeddingBag& tt() { return tt_; }
  const TtEmbeddingBag& tt() const { return tt_; }

 private:
  TtEmbeddingBag tt_;
};

/// TT-Rec with the LFU cache of §4.2.
class CachedTtEmbeddingAdapter : public EmbeddingOp {
 public:
  CachedTtEmbeddingAdapter(CachedTtConfig config, TtInit init, Rng& rng)
      : op_(std::move(config), init, rng) {}

  void Forward(const CsrBatch& batch, float* output) override {
    op_.Forward(batch, output);
  }
  void ForwardInference(const CsrBatch& batch, float* output) const override {
    op_.ForwardInference(batch, output);
  }
  void PoolPrefetchedRows(const CsrBatch& batch, const float* rows,
                          float* output) const override {
    op_.PoolPrefetchedRows(batch, rows, output);
  }
  void Backward(const CsrBatch& batch, const float* grad_output) override {
    op_.Backward(batch, grad_output);
  }
  void ApplySgd(float lr) override { op_.ApplySgd(lr); }
  void ApplyUpdate(const OptimizerConfig& opt) override {
    if (opt.kind == OptimizerConfig::Kind::kAdagrad) {
      op_.ApplyAdagrad(opt.lr, opt.eps);
    } else {
      op_.ApplySgd(opt.lr);
    }
  }
  void SaveState(BinaryWriter& w) const override { op_.SaveState(w); }
  void LoadState(BinaryReader& r) override { op_.LoadState(r); }

  void SaveOptState(BinaryWriter& w) const override { op_.SaveOptState(w); }
  void LoadOptState(BinaryReader& r) override { op_.LoadOptState(r); }

  void ZeroGrad() override { op_.ZeroGrad(); }
  double GradSqNorm() const override { return op_.GradSqNorm(); }
  void ScaleGrads(float scale) override { op_.ScaleGrads(scale); }

  int64_t num_rows() const override { return op_.num_rows(); }
  int64_t emb_dim() const override { return op_.emb_dim(); }
  int64_t MemoryBytes() const override { return op_.MemoryBytes(); }
  int64_t WorkspaceBytes(int num_threads = 0) const override {
    return op_.WorkspaceBytes(num_threads);
  }
  void CollectStats(obs::MetricRegistry& reg) const override {
    EmbeddingOp::CollectStats(reg);
    op_.CollectStats(reg);
  }
  void ResetStats() override { op_.ResetStats(); }
  CachedTtEmbeddingBag* cached_bag() override { return &op_; }
  std::string Name() const override { return "cached_tt_embedding"; }

  CachedTtEmbeddingBag& op() { return op_; }
  const CachedTtEmbeddingBag& op() const { return op_; }

 private:
  CachedTtEmbeddingBag op_;
};

}  // namespace ttrec
