#include "dlrm/embedding_bag.h"

#include <cmath>

#include "tensor/check.h"

namespace ttrec {

DenseEmbeddingInit DenseEmbeddingInit::MatchedGaussian(int64_t num_rows) {
  return Gaussian(1.0 / (3.0 * static_cast<double>(num_rows)));
}

DenseEmbeddingBag::DenseEmbeddingBag(int64_t num_rows, int64_t emb_dim,
                                     PoolingMode pooling,
                                     DenseEmbeddingInit init, Rng& rng)
    : table_({num_rows, emb_dim}), pooling_(pooling) {
  switch (init.kind) {
    case DenseEmbeddingInit::Kind::kUniformScaled: {
      const double a = 1.0 / std::sqrt(static_cast<double>(num_rows));
      for (int64_t i = 0; i < table_.numel(); ++i) {
        table_.data()[i] = static_cast<float>(rng.Uniform(-a, a));
      }
      break;
    }
    case DenseEmbeddingInit::Kind::kGaussian: {
      TTREC_CHECK_CONFIG(init.sigma2 > 0.0,
                         "Gaussian init variance must be positive");
      const double s = std::sqrt(init.sigma2);
      for (int64_t i = 0; i < table_.numel(); ++i) {
        table_.data()[i] = static_cast<float>(rng.Normal(0.0, s));
      }
      break;
    }
  }
}

DenseEmbeddingBag::DenseEmbeddingBag(Tensor table, PoolingMode pooling)
    : table_(std::move(table)), pooling_(pooling) {
  TTREC_CHECK_SHAPE(table_.ndim() == 2,
                    "DenseEmbeddingBag: table must be 2-d");
}

void DenseEmbeddingBag::Forward(const CsrBatch& batch, float* output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const float* src =
          table_.data() + batch.indices[static_cast<size_t>(l)] * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += w * src[j];
    }
  }
}

void DenseEmbeddingBag::ForwardInference(const CsrBatch& batch,
                                         float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const float* src =
          table_.data() + batch.indices[static_cast<size_t>(l)] * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += w * src[j];
    }
  }
}

void DenseEmbeddingBag::PoolPrefetchedRows(const CsrBatch& batch,
                                           const float* rows,
                                           float* output) const {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  const int64_t n_bags = batch.num_bags();
  std::fill(output, output + n_bags * N, 0.0f);
  for (int64_t b = 0; b < n_bags; ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    float* dst = output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      const float* src = rows + l * N;
      for (int64_t j = 0; j < N; ++j) dst[j] += w * src[j];
    }
  }
}

void DenseEmbeddingBag::Backward(const CsrBatch& batch,
                                 const float* grad_output) {
  batch.Validate(num_rows());
  const int64_t N = emb_dim();
  for (int64_t b = 0; b < batch.num_bags(); ++b) {
    const int64_t begin = batch.offsets[static_cast<size_t>(b)];
    const int64_t end = batch.offsets[static_cast<size_t>(b) + 1];
    const int64_t bag_size = end - begin;
    const float* g = grad_output + b * N;
    for (int64_t l = begin; l < end; ++l) {
      float w = batch.weights.empty() ? 1.0f
                                      : batch.weights[static_cast<size_t>(l)];
      if (pooling_ == PoolingMode::kMean && bag_size > 0) {
        w /= static_cast<float>(bag_size);
      }
      auto [it, inserted] = grads_.try_emplace(
          batch.indices[static_cast<size_t>(l)],
          std::vector<float>(static_cast<size_t>(N), 0.0f));
      std::vector<float>& acc = it->second;
      for (int64_t j = 0; j < N; ++j) acc[static_cast<size_t>(j)] += w * g[j];
    }
  }
}

void DenseEmbeddingBag::ApplyUpdate(const OptimizerConfig& opt) {
  if (opt.kind == OptimizerConfig::Kind::kSgd) {
    ApplySgd(opt.lr);
    return;
  }
  TTREC_CHECK_CONFIG(opt.eps > 0.0f, "adagrad eps must be positive");
  if (rowwise_adagrad_.empty()) {
    rowwise_adagrad_.assign(static_cast<size_t>(num_rows()), 0.0f);
  }
  const int64_t N = emb_dim();
  for (const auto& [row, grad] : grads_) {
    double sq = 0.0;
    for (int64_t j = 0; j < N; ++j) {
      sq += static_cast<double>(grad[static_cast<size_t>(j)]) *
            grad[static_cast<size_t>(j)];
    }
    float& acc = rowwise_adagrad_[static_cast<size_t>(row)];
    acc += static_cast<float>(sq / static_cast<double>(N));
    const float scale = opt.lr / (std::sqrt(acc) + opt.eps);
    float* dst = table_.data() + row * N;
    for (int64_t j = 0; j < N; ++j) {
      dst[j] -= scale * grad[static_cast<size_t>(j)];
    }
  }
  grads_.clear();
}

void DenseEmbeddingBag::SaveState(BinaryWriter& w) const {
  SaveTensor(w, table_);
}

void DenseEmbeddingBag::LoadState(BinaryReader& r) {
  Tensor t = LoadTensor(r);
  TTREC_CHECK_SHAPE(t.shape() == table_.shape(),
                    "DenseEmbeddingBag::LoadState: table shape mismatch");
  table_ = std::move(t);
  grads_.clear();
}

void DenseEmbeddingBag::SaveOptState(BinaryWriter& w) const {
  w.WriteU32(rowwise_adagrad_.empty() ? 0u : 1u);
  if (!rowwise_adagrad_.empty()) {
    w.WriteFloats(rowwise_adagrad_.data(), rowwise_adagrad_.size());
  }
}

void DenseEmbeddingBag::LoadOptState(BinaryReader& r) {
  const uint32_t present = r.ReadU32();
  if (present == 0) {
    rowwise_adagrad_.clear();
    return;
  }
  TTREC_CHECK_CONFIG(present == 1,
                     "DenseEmbeddingBag::LoadOptState: bad marker");
  rowwise_adagrad_.assign(static_cast<size_t>(num_rows()), 0.0f);
  r.ReadFloats(rowwise_adagrad_.data(), rowwise_adagrad_.size());
}

double DenseEmbeddingBag::GradSqNorm() const {
  double sq = 0.0;
  for (const auto& [row, grad] : grads_) {
    (void)row;
    for (float g : grad) sq += static_cast<double>(g) * g;
  }
  return sq;
}

void DenseEmbeddingBag::ScaleGrads(float scale) {
  for (auto& [row, grad] : grads_) {
    (void)row;
    for (float& g : grad) g *= scale;
  }
}

void DenseEmbeddingBag::ApplySgd(float lr) {
  const int64_t N = emb_dim();
  for (const auto& [row, grad] : grads_) {
    float* dst = table_.data() + row * N;
    for (int64_t j = 0; j < N; ++j) dst[j] -= lr * grad[static_cast<size_t>(j)];
  }
  grads_.clear();
}

}  // namespace ttrec
